// tcq is the interactive TelegraphCQ client. Statements end with ';'
// and may span lines. Continuous queries open cursors whose rows stream
// to the terminal as "[cursor] row"; CLOSE <n>; cancels one.
//
// Usage:
//
//	tcq -addr 127.0.0.1:5432
//	tcq -addr 127.0.0.1:5432 -f setup.sql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"telegraphcq/internal/server"
	"telegraphcq/internal/sql"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5432", "FrontEnd address of tcqd")
	script := flag.String("f", "", "execute statements from file, then exit")
	flag.Parse()

	cli, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cli.Close()

	run := func(stmt string) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return
		}
		upper := strings.ToUpper(stmt)
		switch {
		case strings.HasPrefix(upper, "SELECT"):
			id, rows, err := cli.Query(stmt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Printf("cursor %d open; rows follow (CLOSE %d; to cancel)\n", id, id)
			go func() {
				for r := range rows {
					fmt.Printf("[%d] %s\n", id, r)
				}
				fmt.Printf("cursor %d done\n", id)
			}()
		case strings.HasPrefix(upper, "CLOSE"):
			var id int
			if _, err := fmt.Sscanf(upper, "CLOSE %d", &id); err != nil {
				fmt.Fprintln(os.Stderr, "usage: CLOSE <cursor>;")
				return
			}
			if err := cli.CloseCursor(id); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Printf("cursor %d closed\n", id)
		default:
			if err := cli.Exec(stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Println("ok")
		}
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stmts, err := sql.ParseScript(string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		_ = stmts // parsed for validation; send raw split below
		for _, stmt := range splitStatements(string(data)) {
			run(stmt)
		}
		return
	}

	fmt.Println("telegraphcq client — end statements with ';' (Ctrl-D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var buf strings.Builder
	fmt.Print("tcq> ")
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			for _, stmt := range splitStatements(buf.String()) {
				run(stmt)
			}
			buf.Reset()
			fmt.Print("tcq> ")
		}
	}
}

// splitStatements splits on ';' outside single-quoted strings.
func splitStatements(s string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\'' {
			inStr = !inStr
		}
		if c == ';' && !inStr {
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}
