// Command tcqload measures the fan-out subsystem at scale: it runs an
// embedded catalog + executor, submits one standing query, attaches N
// fan-out subscribers (mock clients), drives paced ingest through the
// normal Push path, and reports per-policy delivery latency
// (p50/p95/p99 of frame birth → consume) and loss.
//
// The subscribers are serviced by a small pool of polling workers —
// each worker owns a shard and drains frames with TryNextFrame — so the
// harness itself stays at O(workers) goroutines while the engine side
// exercises the real tree (relay stages, refcounted frames, QoS books).
//
// Usage:
//
//	tcqload -subs 100000 -dur 30s                     # the E11 run
//	tcqload -subs 100000 -policy drop-oldest,block    # compare policies
//	tcqload -subs 1000 -dur 10s -policy block \
//	        -assert-zero-loss -max-p99 250ms -hist hist.txt   # CI smoke
//
// Exit status is non-zero when an assertion fails: shed counters that
// do not reconcile (offered != consumed+dedup+shed), an encode count
// that scaled with subscribers instead of frames, -assert-zero-loss
// violated, or -max-p99 exceeded.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/fanout"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/tuple"
)

func main() {
	var (
		subs     = flag.Int("subs", 100000, "concurrent mock subscribers")
		dur      = flag.Duration("dur", 30*time.Second, "ingest duration")
		rate     = flag.Int("rate", 5000, "ingest rows per second")
		batch    = flag.Int("batch", 500, "max rows per PushBatch")
		policies = flag.String("policy", "drop-oldest", "comma-separated overflow policies, assigned round-robin")
		queue    = flag.Int("queue", 64, "per-subscriber frame ring capacity")
		timeout  = flag.Duration("timeout", fjord.DefaultBlockTimeout, "block-policy offer timeout")
		sampleP  = flag.Float64("sample", 0.5, "sample-policy admit probability")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "polling workers servicing the subscribers")
		cohorts  = flag.Int("cohorts", 0, "spread subscribers over this many shared-cursor cohorts (0 = none)")
		drain    = flag.Duration("drain", 5*time.Second, "grace period to drain queued frames after ingest stops")
		histOut  = flag.String("hist", "", "write the merged latency histogram to this file")
		zeroLoss = flag.Bool("assert-zero-loss", false, "exit 1 if any subscriber shed a frame")
		maxP99   = flag.Duration("max-p99", 0, "exit 1 if overall p99 delivery latency exceeds this (0 = no bound)")
		verbose  = flag.Bool("v", false, "print per-second progress")
	)
	flag.Parse()

	pols, err := parsePolicies(*policies)
	if err != nil {
		fatal(err)
	}

	// Embedded engine: the load path under test is Push → EO → Hub →
	// fan-out tree → subscriber ring, i.e. everything but the TCP write.
	cat := catalog.New()
	x := executor.New(cat, executor.Options{SampleInterval: -1})
	defer x.Close()

	cols := []tuple.Column{
		{Source: "gen", Name: "k", Kind: tuple.KindInt},
		{Source: "gen", Name: "v", Kind: tuple.KindFloat},
	}
	src, err := cat.CreateStream("gen", cols, false)
	if err != nil {
		fatal(err)
	}
	// Lossless ingress edge: loss, if any, must happen at the subscriber
	// edge where the policies under test live — not upstream of them.
	src.SetQoS(fjord.QoS{Policy: fjord.Block, BlockTimeout: time.Second})

	st, err := sql.Parse("SELECT * FROM gen")
	if err != nil {
		fatal(err)
	}
	id, err := x.SubmitDetached(st.(*sql.Select))
	if err != nil {
		fatal(err)
	}
	tree, err := x.FanoutTree(id)
	if err != nil {
		fatal(err)
	}

	// Attach the fleet.
	attachStart := time.Now()
	fleet := make([]*fanout.Subscriber, *subs)
	for i := range fleet {
		opts := fanout.SubOptions{
			QoS: fjord.QoS{
				Policy:       pols[i%len(pols)],
				SampleP:      *sampleP,
				BlockTimeout: *timeout,
			},
			Queue: *queue,
		}
		if *cohorts > 0 {
			opts.Cohort = fmt.Sprintf("c%03d", i%*cohorts)
		}
		sub, err := tree.Attach(opts)
		if err != nil {
			fatal(fmt.Errorf("attach %d/%d: %w", i, *subs, err))
		}
		fleet[i] = sub
	}
	attachTook := time.Since(attachStart)
	fmt.Printf("attached %d subscribers in %v (%.0f/s), tree stages=%d\n",
		*subs, attachTook.Round(time.Millisecond),
		float64(*subs)/attachTook.Seconds(), tree.Stats().Stages)

	// Workers: each owns fleet[w], fleet[w+W], ... and drains frames into
	// per-policy histograms (merged after the run; Histogram is not
	// goroutine-safe by design).
	stopWorkers := make(chan struct{})
	var wg sync.WaitGroup
	hists := make([][]*fanout.Histogram, *workers)
	for w := 0; w < *workers; w++ {
		hists[w] = make([]*fanout.Histogram, len(pols))
		for p := range pols {
			hists[w][p] = &fanout.Histogram{}
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idle := true
				for i := w; i < len(fleet); i += *workers {
					h := hists[w][i%len(pols)]
					// Bounded burst per subscriber per sweep so one hot
					// ring cannot starve the rest of the shard.
					for k := 0; k < 32; k++ {
						f, ok := fleet[i].TryNextFrame()
						if !ok {
							break
						}
						h.Record(time.Since(f.Born()))
						f.Release()
						idle = false
					}
				}
				select {
				case <-stopWorkers:
					return
				default:
				}
				if idle {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(w)
	}

	// Paced ingest: fixed ticks, rate/tickHz rows each.
	const tickHz = 50
	perTick := *rate / tickHz
	if perTick < 1 {
		perTick = 1
	}
	var pushed int64
	ingestStart := time.Now()
	stopProgress := make(chan struct{})
	if *verbose {
		go func() {
			tk := time.NewTicker(time.Second)
			defer tk.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tk.C:
					s := tree.Stats()
					fmt.Printf("  t=%v pushed=%d frames=%d offered=%d consumed=%d shed=%d pending=%d\n",
						time.Since(ingestStart).Round(time.Second), pushed,
						s.Published, s.Offered, s.Consumed, s.Shed, s.Pending)
				}
			}
		}()
	}
	tick := time.NewTicker(time.Second / tickHz)
	deadline := time.Now().Add(*dur)
	rows := make([][]tuple.Value, 0, perTick)
	for time.Now().Before(deadline) {
		<-tick.C
		for got := 0; got < perTick; {
			n := perTick - got
			if n > *batch {
				n = *batch
			}
			rows = rows[:0]
			for j := 0; j < n; j++ {
				rows = append(rows, []tuple.Value{
					tuple.Int(pushed + int64(j)),
					tuple.Float(float64(pushed+int64(j)) * 0.5),
				})
			}
			if _, err := x.PushBatch("gen", rows); err != nil {
				fatal(err)
			}
			pushed += int64(n)
			got += n
		}
	}
	tick.Stop()
	ingestTook := time.Since(ingestStart)

	// Flush in-flight tuples through the EOs, then let the workers drain
	// the tree. Stop waiting when it is empty or stops shrinking (a
	// saturated Block fleet may legitimately still be paying timeouts).
	_ = x.Barrier()
	drainBy := time.Now().Add(*drain)
	last, stalled := -1, 0
	for time.Now().Before(drainBy) && stalled < 200 {
		p := tree.Pending()
		if p == 0 {
			break
		}
		if p == last {
			stalled++
		} else {
			stalled, last = 0, p
		}
		time.Sleep(time.Millisecond)
	}
	close(stopWorkers)
	wg.Wait()
	if *verbose {
		close(stopProgress)
	}

	// ---------------------------------------------------------- report
	stats := tree.Stats()
	enc := tree.Encoder()
	fmt.Printf("\ningest: %d rows in %v (%.0f rows/s), %d frames published (%d rows framed)\n",
		pushed, ingestTook.Round(time.Millisecond), float64(pushed)/ingestTook.Seconds(),
		stats.Published, stats.PublishedRows)

	exit := 0

	// Encode-once: serializations must track frames, not frame×subs.
	naive := stats.Published * int64(*subs)
	fmt.Printf("encode-once: %d live encodes for %d frames across %d subscribers (naive per-sub encoding = %d)\n",
		enc.LiveEncodes(), stats.Published, *subs, naive)
	if enc.LiveEncodes() != stats.Published {
		fmt.Printf("FAIL encode-once violated: %d encodes != %d published frames\n",
			enc.LiveEncodes(), stats.Published)
		exit = 1
	}

	// Reconciliation: every offered frame is accounted for exactly once.
	if got := stats.Consumed + stats.Dedup + stats.Shed + stats.Pending; got != stats.Offered {
		fmt.Printf("FAIL shed counters do not reconcile: offered=%d but consumed+dedup+shed+pending=%d\n",
			stats.Offered, got)
		exit = 1
	} else {
		fmt.Printf("reconciled: offered=%d = consumed=%d + dedup=%d + shed=%d + pending=%d\n",
			stats.Offered, stats.Consumed, stats.Dedup, stats.Shed, stats.Pending)
	}

	// Per-policy books + latency.
	all := &fanout.Histogram{}
	fmt.Printf("\n%-12s %8s %14s %14s %12s %8s %10s %10s %10s\n",
		"policy", "subs", "offered", "consumed", "shed", "loss%", "p50", "p95", "p99")
	for p, pol := range pols {
		var offered, consumed, shed int64
		n := 0
		for i := p; i < len(fleet); i += len(pols) {
			ss := fleet[i].Stats()
			offered += ss.Offered
			consumed += ss.Consumed
			shed += ss.Shed
			n++
		}
		h := &fanout.Histogram{}
		for w := range hists {
			h.Merge(hists[w][p])
		}
		all.Merge(h)
		loss := 0.0
		if offered > 0 {
			loss = 100 * float64(shed) / float64(offered)
		}
		fmt.Printf("%-12s %8d %14d %14d %12d %7.3f%% %10v %10v %10v\n",
			pol, n, offered, consumed, shed, loss,
			h.Percentile(50).Round(time.Microsecond),
			h.Percentile(95).Round(time.Microsecond),
			h.Percentile(99).Round(time.Microsecond))
		if *zeroLoss && shed > 0 {
			fmt.Printf("FAIL zero-loss assertion: policy %v shed %d frames\n", pol, shed)
			exit = 1
		}
	}
	p99 := all.Percentile(99)
	fmt.Printf("\noverall: %d frame deliveries, p50=%v p95=%v p99=%v max=%v\n",
		all.Count(),
		all.Percentile(50).Round(time.Microsecond),
		all.Percentile(95).Round(time.Microsecond),
		p99.Round(time.Microsecond),
		all.Max().Round(time.Microsecond))
	if *maxP99 > 0 && p99 > *maxP99 {
		fmt.Printf("FAIL p99 %v exceeds bound %v\n", p99.Round(time.Microsecond), *maxP99)
		exit = 1
	}

	if *histOut != "" {
		if err := writeHist(*histOut, all, *subs, pols, p99); err != nil {
			fatal(err)
		}
		fmt.Printf("histogram written to %s\n", *histOut)
	}
	os.Exit(exit)
}

func parsePolicies(s string) ([]fjord.OverflowPolicy, error) {
	var out []fjord.OverflowPolicy
	for _, part := range strings.Split(s, ",") {
		p, err := fjord.ParseOverflowPolicy(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// writeHist dumps the merged latency histogram as "floor_ns count"
// lines with a '#'-prefixed summary header (the CI artifact format).
func writeHist(path string, h *fanout.Histogram, subs int, pols []fjord.OverflowPolicy, p99 time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	names := make([]string, len(pols))
	for i, p := range pols {
		names[i] = p.String()
	}
	fmt.Fprintf(f, "# tcqload delivery-latency histogram (ns buckets, log-linear)\n")
	fmt.Fprintf(f, "# subs=%d policies=%s samples=%d p50=%d p95=%d p99=%d max=%d\n",
		subs, strings.Join(names, ","), h.Count(),
		h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
	h.Buckets(func(floor time.Duration, count uint64) {
		fmt.Fprintf(f, "%d %d\n", int64(floor), count)
	})
	return f.Sync()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcqload:", err)
	os.Exit(1)
}
