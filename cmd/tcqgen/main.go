// tcqgen feeds synthetic workloads into a running tcqd's Wrapper port:
// the paper's stock ticker, skewed network flows, or sensor readings —
// with controllable rate and burstiness (§1.1's "extremely high or
// bursty" arrivals).
//
// Usage:
//
//	tcqgen -addr 127.0.0.1:5433 -workload stocks -n 100000 -rate 5000
//
// The matching streams (create them via tcq first):
//
//	CREATE STREAM ClosingStockPrices (timestamp int, stockSymbol string, closingPrice float);
//	CREATE STREAM flows (src string, dst string, port int, bytes float);
//	CREATE STREAM sensors (node int, temp float, light float);
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"telegraphcq/internal/server"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "Wrapper address of tcqd")
	wl := flag.String("workload", "stocks", "stocks|flows|sensors")
	n := flag.Int("n", 10000, "tuples to generate")
	rate := flag.Float64("rate", 0, "tuples/second (0 = unpaced)")
	burst := flag.Int("burst", 1, "tuples per burst")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var rows []*tuple.Tuple
	var stream string
	switch *wl {
	case "stocks":
		stream = "ClosingStockPrices"
		rows = workload.Stocks{Seed: *seed}.Rows(*n)
	case "flows":
		stream = "flows"
		rows = workload.Flows{Seed: *seed}.Rows(*n)
	case "sensors":
		stream = "sensors"
		rows = workload.Sensors{Seed: *seed, SpikeProb: 0.01}.Rows(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	push, err := server.DialPush(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer push.Close()

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(*burst) / *rate)
	}
	start := time.Now()
	for i, r := range rows {
		fields := make([]string, len(r.Values))
		for j, v := range r.Values {
			fields[j] = v.String()
		}
		if err := push.Push(stream, fields...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if interval > 0 && (i+1)%*burst == 0 {
			_ = push.Flush()
			time.Sleep(interval)
		}
	}
	_ = push.Flush()
	el := time.Since(start)
	fmt.Printf("pushed %d %s tuples in %v (%.0f/s)\n",
		len(rows), *wl, el.Round(time.Millisecond), float64(len(rows))/el.Seconds())
}
