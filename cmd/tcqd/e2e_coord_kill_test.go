// End-to-end coordinator kill-recovery: real tcqd processes, a SIGKILL
// of the *coordinator* mid-stream, restart from the durable journal, and
// a hot-join — with a byte-for-byte comparison against a single-process
// run.
//
// Topology: two self-registering workers (started BEFORE the
// coordinator exists, so the registration backoff path is exercised),
// one coordinator with -listen and -journal, and a local-fold reference
// fed the identical stream. The coordinator is killed -9 after a
// barrier, restarted on the same registry address and journal, a third
// worker hot-joins, and the test asserts
//
//   - the restarted coordinator resumes from the journal (epoch ≥ 2),
//   - streaming continues and BARRIER succeeds (zero acked-tuple loss),
//   - the joiner is admitted and filled by the rebalancer,
//   - COLLECT output is byte-identical to the single-process run.
package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// reservePort picks a loopback address that is free right now — the
// registry must live at a known address before the coordinator exists,
// because the workers are started first and dial it under backoff.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestE2ECoordinatorKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	logDir := os.Getenv("TCQD_E2E_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("node logs in %s", logDir)
	bin := buildTCQD(t)

	const heartbeat = 150 * time.Millisecond
	regAddr := reservePort(t)
	journal := filepath.Join(t.TempDir(), "coord.journal")

	// Workers first: they must converge onto a coordinator that does not
	// exist yet — the registration supervisor's backoff, not a crash.
	for i := 0; i < 2; i++ {
		n := startNode(t, bin, logDir, fmt.Sprintf("worker%d", i), "telegraphcq: exchange on ",
			"-role=worker", "-exchange", "127.0.0.1:0",
			"-coordinator", regAddr, "-name", fmt.Sprintf("w%d", i))
		n.waitAddr(t)
	}

	coordArgs := func() []string {
		return []string{
			"-role=coordinator", "-ingest", "127.0.0.1:0",
			"-listen", regAddr, "-journal", journal,
			"-heartbeat", heartbeat.String(),
		}
	}
	coord := startNode(t, bin, logDir, "coordinator", "telegraphcq: ingest on ", coordArgs()...)
	ref := startNode(t, bin, logDir, "reference", "telegraphcq: ingest on ",
		"-role=coordinator", "-ingest", "127.0.0.1:0")

	clusterIn := dialIngest(t, coord.waitAddr(t))
	refIn := dialIngest(t, ref.waitAddr(t))

	// Integer values keep every per-group sum exactly representable, so
	// fold order cannot perturb the bytes of the final output.
	line := func(i int) string {
		return fmt.Sprintf("sensor-%03d,%d", i%101, i%23)
	}
	route := func(ic *ingestConn, i int) {
		l := line(i)
		ic.send(t, l)
		refIn.send(t, l)
	}

	for i := 0; i < 2000; i++ {
		route(clusterIn, i)
	}
	// The barrier bounds the blast radius of the kill: everything acked
	// is journal-covered (floors) or worker-held; nothing the reference
	// has seen can be lost.
	if got := clusterIn.cmd(t, "BARRIER"); got != "OK" {
		t.Fatalf("pre-kill barrier: %s", got)
	}

	if err := coord.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9 coordinator: %v", err)
	}
	coord.cmd.Wait()
	t.Logf("killed coordinator mid-stream")

	// Restart from the journal on the same registry address: the roster,
	// shard map, and ack floors replay; the fleet reconnects.
	coord2 := startNode(t, bin, logDir, "coordinator2", "telegraphcq: ingest on ", coordArgs()...)
	clusterIn2 := dialIngest(t, coord2.waitAddr(t))

	for i := 2000; i < 4000; i++ {
		route(clusterIn2, i)
		if i%200 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	// Hot-join a third worker at runtime; the rebalancer must fill it.
	joiner := startNode(t, bin, logDir, "worker2", "telegraphcq: exchange on ",
		"-role=worker", "-exchange", "127.0.0.1:0",
		"-coordinator", regAddr, "-name", "w2")
	joiner.waitAddr(t)

	deadline := time.Now().Add(30 * time.Second)
	for {
		stats := clusterIn2.cmd(t, "STATS")
		if statsField(t, stats, "joins") >= 1 && statsField(t, stats, "rebalances") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never admitted+rebalanced: %s", stats)
		}
		time.Sleep(200 * time.Millisecond)
	}

	for i := 4000; i < 6000; i++ {
		route(clusterIn2, i)
		if i%200 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	if got := clusterIn2.cmd(t, "BARRIER"); got != "OK" {
		t.Fatalf("post-recovery barrier (acked tuples lost?): %s", got)
	}
	clusterOut := clusterIn2.collect(t)
	refOut := refIn.collect(t)
	if clusterOut != refOut {
		t.Fatalf("cluster output diverged from single-process run after coordinator recovery:\n--- cluster ---\n%s--- reference ---\n%s",
			clusterOut, refOut)
	}
	if clusterOut == "" {
		t.Fatal("empty COLLECT output")
	}

	stats := clusterIn2.cmd(t, "STATS")
	t.Logf("recovered-coordinator stats: %s", stats)
	if statsField(t, stats, "epoch") < 2 {
		t.Fatalf("restart did not bump the fencing epoch: %s", stats)
	}
	if statsField(t, stats, "lost") != 0 {
		t.Fatalf("buckets lost across coordinator restart: %s", stats)
	}
	// The new incarnation's counters cover only post-restart routing:
	// 4000 entries, each acked exactly once.
	if statsField(t, stats, "routed") != 4000 || statsField(t, stats, "acked") != 4000 {
		t.Fatalf("routed/acked mismatch after recovery: %s", stats)
	}
}
