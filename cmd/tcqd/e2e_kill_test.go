// End-to-end kill-recovery harness: real tcqd processes, a real
// SIGKILL, and a byte-for-byte comparison against a single-process run.
//
// Topology: one coordinator + three workers over loopback TCP, plus a
// local-fold coordinator fed the identical stream as the reference. A
// primary worker is killed -9 mid-stream; the test then asserts
//
//   - the stream finishes and BARRIER succeeds (zero acked-tuple loss),
//   - COLLECT output is byte-identical to the single-process run,
//   - STATS shows promotions > 0, lost = 0, and a detection latency
//     within two heartbeat intervals.
//
// Set TCQD_E2E_LOG_DIR to keep per-node logs (CI uploads them as an
// artifact on failure); TCQD_E2E_RACE=1 builds the nodes with -race.
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTCQD compiles the daemon once per test binary.
func buildTCQD(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tcqd")
	args := []string{"build"}
	if os.Getenv("TCQD_E2E_RACE") == "1" {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "telegraphcq/cmd/tcqd")
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build tcqd: %v\n%s", err, out)
	}
	return bin
}

// node is one spawned tcqd process with its stdout scanned for the
// listen-address announcement and teed to a log file.
type node struct {
	name string
	cmd  *exec.Cmd
	addr chan string
}

// startNode launches tcqd with args and resolves the address announced
// with the given prefix (e.g. "telegraphcq: exchange on ").
func startNode(t *testing.T, bin, logDir, name, announce string, args ...string) *node {
	t.Helper()
	logf, err := os.Create(filepath.Join(logDir, name+".log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = logf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	n := &node{name: name, cmd: cmd, addr: make(chan string, 1)}
	go func() {
		defer logf.Close()
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logf, line)
			if rest, ok := strings.CutPrefix(line, announce); ok {
				select {
				case n.addr <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return n
}

func (n *node) waitAddr(t *testing.T) string {
	t.Helper()
	select {
	case a := <-n.addr:
		return a
	case <-time.After(15 * time.Second):
		t.Fatalf("%s: no listen announcement within 15s", n.name)
		return ""
	}
}

// ingestConn wraps the coordinator's line protocol.
type ingestConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func dialIngest(t *testing.T, addr string) *ingestConn {
	t.Helper()
	var c net.Conn
	var err error
	for i := 0; i < 50; i++ {
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial ingest %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return &ingestConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

func (ic *ingestConn) send(t *testing.T, line string) {
	t.Helper()
	if _, err := ic.w.WriteString(line + "\n"); err != nil {
		t.Fatalf("ingest write: %v", err)
	}
}

func (ic *ingestConn) cmd(t *testing.T, cmd string) string {
	t.Helper()
	ic.send(t, cmd)
	if err := ic.w.Flush(); err != nil {
		t.Fatalf("ingest flush: %v", err)
	}
	ic.c.SetReadDeadline(time.Now().Add(60 * time.Second))
	line, err := ic.r.ReadString('\n')
	if err != nil {
		t.Fatalf("ingest read after %s: %v", cmd, err)
	}
	return strings.TrimSpace(line)
}

// collect issues COLLECT and returns the raw reply up to END.
func (ic *ingestConn) collect(t *testing.T) string {
	t.Helper()
	ic.send(t, "COLLECT")
	if err := ic.w.Flush(); err != nil {
		t.Fatalf("ingest flush: %v", err)
	}
	var sb strings.Builder
	ic.c.SetReadDeadline(time.Now().Add(60 * time.Second))
	for {
		line, err := ic.r.ReadString('\n')
		if err != nil {
			t.Fatalf("ingest read during COLLECT: %v", err)
		}
		if strings.TrimSpace(line) == "END" {
			return sb.String()
		}
		if strings.HasPrefix(line, "ERR") {
			t.Fatalf("COLLECT failed: %s", line)
		}
		sb.WriteString(line)
	}
}

func statsField(t *testing.T, stats, key string) int64 {
	t.Helper()
	for _, f := range strings.Fields(stats) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			var n int64
			if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
				t.Fatalf("bad %s in %q", key, stats)
			}
			return n
		}
	}
	t.Fatalf("no %s in %q", key, stats)
	return 0
}

func TestE2EKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	logDir := os.Getenv("TCQD_E2E_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("node logs in %s", logDir)
	bin := buildTCQD(t)

	const heartbeat = 150 * time.Millisecond

	// Three workers, then the coordinator over them, then the
	// single-process reference.
	var workerAddrs []string
	var workerNodes []*node
	for i := 0; i < 3; i++ {
		n := startNode(t, bin, logDir, fmt.Sprintf("worker%d", i), "telegraphcq: exchange on ",
			"-role=worker", "-exchange", "127.0.0.1:0")
		workerNodes = append(workerNodes, n)
		workerAddrs = append(workerAddrs, n.waitAddr(t))
	}
	coord := startNode(t, bin, logDir, "coordinator", "telegraphcq: ingest on ",
		"-role=coordinator", "-ingest", "127.0.0.1:0",
		"-workers", strings.Join(workerAddrs, ","),
		"-heartbeat", heartbeat.String())
	ref := startNode(t, bin, logDir, "reference", "telegraphcq: ingest on ",
		"-role=coordinator", "-ingest", "127.0.0.1:0")

	clusterIn := dialIngest(t, coord.waitAddr(t))
	refIn := dialIngest(t, ref.waitAddr(t))

	// Integer values keep every per-group sum exactly representable, so
	// fold order cannot perturb the bytes of the final output.
	line := func(i int) string {
		return fmt.Sprintf("sensor-%03d,%d", i%101, i%23)
	}
	route := func(i int) {
		l := line(i)
		clusterIn.send(t, l)
		refIn.send(t, l)
	}

	for i := 0; i < 2000; i++ {
		route(i)
	}
	if got := clusterIn.cmd(t, "BARRIER"); got != "OK" {
		t.Fatalf("pre-kill barrier: %s", got)
	}

	// Kill a primary with prejudice. Worker 0 is a primary for a third
	// of the buckets under the static shard map.
	killed := workerNodes[0]
	if err := killed.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9 %s: %v", killed.name, err)
	}
	killed.cmd.Wait()
	t.Logf("killed %s mid-stream", killed.name)

	// Keep streaming through detection, promotion, and repair.
	for i := 2000; i < 6000; i++ {
		route(i)
		if i%200 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	if got := clusterIn.cmd(t, "BARRIER"); got != "OK" {
		t.Fatalf("post-kill barrier (acked tuples lost?): %s", got)
	}
	clusterOut := clusterIn.collect(t)
	refOut := refIn.collect(t)
	if clusterOut != refOut {
		t.Fatalf("cluster output diverged from single-process run:\n--- cluster ---\n%s--- reference ---\n%s",
			clusterOut, refOut)
	}
	if clusterOut == "" {
		t.Fatal("empty COLLECT output")
	}

	stats := clusterIn.cmd(t, "STATS")
	t.Logf("cluster stats: %s", stats)
	if statsField(t, stats, "promotions") == 0 {
		t.Fatal("no promotions recorded after killing a primary")
	}
	if statsField(t, stats, "lost") != 0 {
		t.Fatal("buckets lost despite process pairs")
	}
	if d := statsField(t, stats, "detect_ms"); d > 2*heartbeat.Milliseconds() {
		t.Fatalf("detection latency %dms exceeds 2 heartbeats (%dms)", d, 2*heartbeat.Milliseconds())
	}
	if statsField(t, stats, "routed") != 6000 || statsField(t, stats, "acked") != 6000 {
		t.Fatalf("routed/acked mismatch: %s", stats)
	}
}
