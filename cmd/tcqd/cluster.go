// Cluster roles: `tcqd -role=worker` runs one networked Flux node,
// `tcqd -role=coordinator` owns the shard map and exposes a line-based
// ingest front. With no -workers the coordinator folds locally — the
// single-process reference the kill-recovery harness compares against.
//
// Ingest protocol (one TCP connection, newline-delimited):
//
//	key,value      route one observation (no reply)
//	BARRIER        flush; replies "OK" or "ERR <reason>"
//	COLLECT        barrier + grouped result: "key count sum" lines, then "END"
//	STATS          one line of robustness counters
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/cluster"
	"telegraphcq/internal/flux"
	"telegraphcq/internal/ingress"
	"telegraphcq/internal/telemetry"
)

// sink abstracts where routed entries go: a real coordinator or the
// local single-process fold.
type sink interface {
	Route(key string, val float64) error
	Barrier(timeout time.Duration) error
	Collect(timeout time.Duration) (flux.BucketState, error)
	StatsLine() string
}

// coordSink adapts cluster.Coordinator to the ingest front.
type coordSink struct{ c *cluster.Coordinator }

func (s coordSink) Route(key string, val float64) error { return s.c.Route(key, val) }
func (s coordSink) Barrier(d time.Duration) error       { return s.c.Barrier(d) }
func (s coordSink) Collect(d time.Duration) (flux.BucketState, error) {
	return s.c.Collect(d)
}
func (s coordSink) StatsLine() string {
	st := s.c.Stats()
	return fmt.Sprintf("routed=%d acked=%d retransmits=%d promotions=%d moves=%d repairs=%d lost=%d detect_ms=%d epoch=%d joins=%d rebalances=%d",
		st.Routed, st.Acked, st.Retransmits, st.Promotions, st.Moves, st.Repairs, st.BucketsLost,
		st.LastDetect.Milliseconds(), st.Epoch, st.Joins, st.RebalanceMovesSkew+st.RebalanceMovesJoin)
}

// localSink is the single-process reference: same ingest protocol, one
// in-memory fold.
type localSink struct {
	mu     sync.Mutex
	st     flux.BucketState
	routed int64
}

func newLocalSink() *localSink { return &localSink{st: flux.BucketState{}} }

func (s *localSink) Route(key string, val float64) error {
	s.mu.Lock()
	s.st.Fold(key, val)
	s.routed++
	s.mu.Unlock()
	return nil
}
func (s *localSink) Barrier(time.Duration) error { return nil }
func (s *localSink) Collect(time.Duration) (flux.BucketState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Clone(), nil
}
func (s *localSink) StatsLine() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("routed=%d acked=%d retransmits=0 promotions=0 moves=0 repairs=0 lost=0 detect_ms=0 epoch=0 joins=0 rebalances=0",
		s.routed, s.routed)
}

// runWorker is the `-role=worker` main: one exchange listener, state in
// memory, runs until signaled. The exchange bind retries under backoff
// (a restarting node races its own port's TIME_WAIT), and with
// -coordinator set the worker registers itself — started before the
// coordinator exists, it converges instead of dying.
func runWorker(exchange, coordinator, name, chaosSpec string) int {
	w := cluster.NewWorker()
	if chaosSpec != "" {
		inj, err := chaos.Parse(chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -chaos spec: %v\n", err)
			return 2
		}
		w.SetChaos(inj)
		fmt.Printf("telegraphcq: CHAOS MODE %s\n", chaosSpec)
	}
	addr, err := listenWithRetry(w, exchange)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("telegraphcq: exchange on %s\n", addr)
	if coordinator != "" {
		if name == "" {
			name = addr
		}
		w.StartRegister(coordinator, name, ingress.Backoff{})
		fmt.Printf("telegraphcq: registering %q with coordinator %s\n", name, coordinator)
	}
	waitForSignal()
	w.Close()
	fmt.Println("telegraphcq: worker shut down")
	return 0
}

// listenWithRetry binds the exchange listener under the same supervised
// exponential backoff + jitter the source wrappers use; a held port (a
// predecessor draining, TIME_WAIT) is a transient fault, not a reason
// to exit.
func listenWithRetry(w *cluster.Worker, exchange string) (string, error) {
	var mu sync.Mutex
	var addr string
	done := make(chan struct{})
	sup := ingress.NewSupervisor("exchange-bind", func(stop <-chan struct{}) error {
		a, err := w.Listen(exchange)
		if err != nil {
			return err
		}
		mu.Lock()
		addr = a
		mu.Unlock()
		close(done)
		return nil // clean completion: the bind is held, supervision ends
	}, ingress.Backoff{Budget: 10})
	sup.Start()
	for {
		select {
		case <-done:
			mu.Lock()
			defer mu.Unlock()
			return addr, nil
		case <-time.After(50 * time.Millisecond):
			if sup.State() == ingress.HealthDown {
				select {
				case <-done: // bound succeeded just as supervision wound down
					mu.Lock()
					defer mu.Unlock()
					return addr, nil
				default:
					return "", fmt.Errorf("exchange bind %s: %s", exchange, sup.Snapshot().LastErr)
				}
			}
		}
	}
}

// runCoordinator is the `-role=coordinator` main: connect the worker
// fleet (statically dialed, journal-recovered, and/or self-registering
// through -listen — or fold locally with none of those), then serve the
// ingest front until signaled.
func runCoordinator(ingest, workersCSV, listen, journal string, buckets int, heartbeat time.Duration, metricsAddr string) int {
	var s sink
	var coord *cluster.Coordinator
	if workersCSV == "" && listen == "" && journal == "" {
		s = newLocalSink()
		fmt.Println("telegraphcq: coordinator in local-fold mode (no -workers)")
	} else {
		cfg := cluster.Config{
			Buckets:   buckets,
			Heartbeat: heartbeat,
			Listen:    listen,
			Journal:   journal,
		}
		if workersCSV != "" {
			cfg.Workers = strings.Split(workersCSV, ",")
		}
		var err error
		coord, err = cluster.NewCoordinator(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := coord.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		s = coordSink{coord}
		if ra := coord.RegistryAddr(); ra != "" {
			fmt.Printf("telegraphcq: registry on %s\n", ra)
		}
		fmt.Printf("telegraphcq: coordinating %d workers (epoch %d)\n", len(coord.NodeStates()), coord.Epoch())
	}

	if metricsAddr != "" && coord != nil {
		reg := telemetry.NewRegistry()
		coord.Register(reg)
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			coord.Close()
			return 1
		}
		defer ln.Close()
		go serveMetrics(ln, reg)
		fmt.Printf("telegraphcq: metrics on http://%s/metrics\n", ln.Addr())
	}

	ln, err := net.Listen("tcp", ingest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if coord != nil {
			coord.Close()
		}
		return 1
	}
	fmt.Printf("telegraphcq: ingest on %s\n", ln.Addr())

	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveIngest(conn, s)
			}()
		}
	}()

	waitForSignal()
	ln.Close()
	// Flush what's in flight before leaving; bounded so a dead fleet
	// cannot wedge shutdown.
	if err := s.Barrier(5 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "telegraphcq: final barrier: %v\n", err)
	}
	if coord != nil {
		coord.Close()
	}
	wg.Wait()
	fmt.Println("telegraphcq: coordinator shut down")
	return 0
}

// opTimeout bounds ingest-front barriers and collects.
const opTimeout = 30 * time.Second

// serveIngest runs the line protocol on one connection.
func serveIngest(conn net.Conn, s sink) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	out := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "BARRIER":
			if err := s.Barrier(opTimeout); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case line == "COLLECT":
			st, err := s.Collect(opTimeout)
			if err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				// Sorted keys and %g values: byte-identical across a
				// cluster run and a local-fold run for exactly
				// representable sums.
				for _, k := range st.Keys() {
					g := st[k]
					fmt.Fprintf(out, "%s %d %g\n", k, g.Count, g.Sum)
				}
				fmt.Fprintln(out, "END")
			}
		case line == "STATS":
			fmt.Fprintln(out, s.StatsLine())
		default:
			key, valStr, ok := strings.Cut(line, ",")
			if !ok {
				fmt.Fprintf(out, "ERR bad line %q\n", line)
				break
			}
			val, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
			if err != nil {
				fmt.Fprintf(out, "ERR bad value %q\n", valStr)
				break
			}
			if err := s.Route(key, val); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			}
			continue // data lines get no reply; don't flush per line
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// serveMetrics is a minimal /metrics endpoint for the coordinator role
// (the full server's telemetry stack belongs to the engine process).
func serveMetrics(ln net.Listener, reg *telemetry.Registry) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			br := bufio.NewReader(c)
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			var body strings.Builder
			reg.WritePrometheus(&body)
			fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
				body.Len(), body.String())
		}(conn)
	}
}

// waitForSignal blocks until SIGINT/SIGTERM; a second signal forces
// exit, the operator's escape hatch from a stuck drain.
func waitForSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("telegraphcq: shutting down (signal again to force exit)")
	go func() {
		<-sig
		fmt.Println("telegraphcq: forced exit")
		os.Exit(1)
	}()
}
