// tcqd is the TelegraphCQ daemon: it listens on a FrontEnd port for SQL
// (DDL, INSERT, continuous SELECT with FOR-loop windows) and on a
// Wrapper port for pushed stream data ("stream,field,field,..." lines).
//
// Usage:
//
//	tcqd -front :5432 -wrapper :5433
//
// Try it with cmd/tcq (interactive client) and cmd/tcqgen (data
// generator).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"telegraphcq/internal/executor"
	"telegraphcq/internal/server"
)

func main() {
	front := flag.String("front", "127.0.0.1:5432", "FrontEnd (query) listen address")
	wrapper := flag.String("wrapper", "127.0.0.1:5433", "Wrapper (data ingress) listen address")
	metricsAddr := flag.String("metrics-addr", "", "telemetry HTTP listen address (/metrics, /statz, /healthz); empty disables")
	mode := flag.String("class-mode", "footprint", "query class placement: footprint|single|per-query")
	batch := flag.Int("batch", 1, "eddy tuple-batching knob")
	hops := flag.Int("fixed-hops", 1, "eddy operator-fixing knob")
	flag.Parse()

	opts := executor.Options{Batch: *batch, FixedHops: *hops}
	switch *mode {
	case "footprint":
		opts.Mode = executor.ClassByFootprint
	case "single":
		opts.Mode = executor.ClassSingle
	case "per-query":
		opts.Mode = executor.ClassPerQuery
	default:
		fmt.Fprintf(os.Stderr, "bad -class-mode %q\n", *mode)
		os.Exit(2)
	}

	srv := server.New(opts)
	f, w, err := srv.Start(*front, *wrapper)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("telegraphcq: frontend on %s, wrapper on %s\n", f, w)
	if *metricsAddr != "" {
		m, err := srv.StartMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			srv.Close()
			os.Exit(1)
		}
		fmt.Printf("telegraphcq: metrics on http://%s/metrics\n", m)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("telegraphcq: shutting down")
	srv.Close()
}
