// tcqd is the TelegraphCQ daemon: it listens on a FrontEnd port for SQL
// (DDL, INSERT, continuous SELECT with FOR-loop windows) and on a
// Wrapper port for pushed stream data ("stream,field,field,..." lines).
//
// Usage:
//
//	tcqd -front :5432 -wrapper :5433
//
// Try it with cmd/tcq (interactive client) and cmd/tcqgen (data
// generator).
//
// With -role, tcqd instead joins a networked Flux deployment (see
// internal/cluster and cluster.go in this package):
//
//	tcqd -role=worker -exchange 127.0.0.1:6001
//	tcqd -role=coordinator -workers 127.0.0.1:6001,127.0.0.1:6002 -ingest 127.0.0.1:6000
//
// Dynamic membership (workers find the coordinator, not the reverse):
//
//	tcqd -role=coordinator -listen 127.0.0.1:6005 -journal /var/lib/tcq/coord.journal -ingest 127.0.0.1:6000
//	tcqd -role=worker -exchange 127.0.0.1:6001 -coordinator 127.0.0.1:6005 -name node-a
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/server"
)

func main() {
	front := flag.String("front", "127.0.0.1:5432", "FrontEnd (query) listen address")
	wrapper := flag.String("wrapper", "127.0.0.1:5433", "Wrapper (data ingress) listen address")
	metricsAddr := flag.String("metrics-addr", "", "telemetry HTTP listen address (/metrics, /statz, /healthz); empty disables")
	mode := flag.String("class-mode", "footprint", "query class placement: footprint|single|per-query")
	batch := flag.Int("batch", 0, "eddy tuple-batching knob (0 = auto: full drains when compiled, 1 otherwise)")
	shards := flag.Int("shards", 0, "eddy shards per EO (0/1 = single engine; queries may override with WITH (shards=N))")
	hops := flag.Int("fixed-hops", 1, "eddy operator-fixing knob")
	compiled := flag.Bool("compiled", true, "compile predicates/projections to columnar bytecode (queries may override with WITH (compiled=on|off))")
	chaosSpec := flag.String("chaos", "", `fault injection spec, e.g. "seed=7,drop=0.01,stall=0.05,corrupt=0.02" (see internal/chaos)`)
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "max time to flush in-flight tuples on SIGINT/SIGTERM")
	role := flag.String("role", "", "cluster role: coordinator|worker (empty = standalone engine)")
	exchange := flag.String("exchange", "127.0.0.1:6001", "worker role: exchange listen address")
	workers := flag.String("workers", "", "coordinator role: comma-separated worker exchange addresses (empty = local fold)")
	ingest := flag.String("ingest", "127.0.0.1:6000", "coordinator role: ingest listen address")
	buckets := flag.Int("buckets", 0, "coordinator role: partition bucket count (0 = 8 per worker)")
	heartbeat := flag.Duration("heartbeat", 100*time.Millisecond, "coordinator role: failure-detection interval")
	listen := flag.String("listen", "", "coordinator role: worker registry listen address (empty = static -workers membership only)")
	journal := flag.String("journal", "", "coordinator role: durable shard-map journal path (empty = in-memory only)")
	coordinator := flag.String("coordinator", "", "worker role: coordinator registry address to register with (empty = wait to be dialed)")
	name := flag.String("name", "", "worker role: stable node name for rejoin identity (default = exchange address)")
	flag.Parse()

	switch *role {
	case "":
	case "worker":
		os.Exit(runWorker(*exchange, *coordinator, *name, *chaosSpec))
	case "coordinator":
		os.Exit(runCoordinator(*ingest, *workers, *listen, *journal, *buckets, *heartbeat, *metricsAddr))
	default:
		fmt.Fprintf(os.Stderr, "bad -role %q (want coordinator or worker)\n", *role)
		os.Exit(2)
	}

	if *shards < 0 || *shards > 64 {
		fmt.Fprintf(os.Stderr, "bad -shards %d (want 0..64)\n", *shards)
		os.Exit(2)
	}
	opts := executor.Options{Batch: *batch, Shards: *shards, FixedHops: *hops}
	if !*compiled {
		opts.CompiledExpr = executor.ExprInterpreted
	}
	if *chaosSpec != "" {
		inj, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -chaos spec: %v\n", err)
			os.Exit(2)
		}
		opts.Chaos = inj
		fmt.Printf("telegraphcq: CHAOS MODE %s\n", *chaosSpec)
	}
	switch *mode {
	case "footprint":
		opts.Mode = executor.ClassByFootprint
	case "single":
		opts.Mode = executor.ClassSingle
	case "per-query":
		opts.Mode = executor.ClassPerQuery
	default:
		fmt.Fprintf(os.Stderr, "bad -class-mode %q\n", *mode)
		os.Exit(2)
	}

	srv := server.New(opts)
	f, w, err := srv.Start(*front, *wrapper)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("telegraphcq: frontend on %s, wrapper on %s\n", f, w)
	if *metricsAddr != "" {
		m, err := srv.StartMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			srv.Close()
			os.Exit(1)
		}
		fmt.Printf("telegraphcq: metrics on http://%s/metrics\n", m)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("telegraphcq: draining (signal again to force exit)")
	go func() {
		// A second signal skips the drain: operators must always have a
		// way to make the process leave now.
		<-sig
		fmt.Println("telegraphcq: forced exit")
		os.Exit(1)
	}()
	srv.Drain(*drainTimeout)
	fmt.Println("telegraphcq: shut down")
}
