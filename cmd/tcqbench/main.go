// tcqbench regenerates the experiment tables of EXPERIMENTS.md: each
// experiment (E1–E10) reproduces one performance claim of the
// TelegraphCQ paper or its companion systems. See DESIGN.md §4 for the
// experiment ↔ claim ↔ module map.
//
// Usage:
//
//	tcqbench               # run everything at scale 1
//	tcqbench -run E3,E6    # selected experiments
//	tcqbench -scale 4      # more tuples, smoother numbers
//	tcqbench -shards 1,8   # shard counts for the sharded E10 rows
//	tcqbench -json out/    # also write BENCH_<id>.json per experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"telegraphcq/internal/experiments"
)

// benchResult is the machine-readable form of one experiment table,
// written as BENCH_<id>.json for harnesses diffing runs over time.
type benchResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Scale   int        `json:"scale"`
	// Host parallelism context: sharded rows only show speedup when
	// GOMAXPROCS gives the shards real cores to run on.
	Shards     []int  `json:"shards"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	ElapsedMs  int64  `json:"elapsed_ms"`
	Timestamp  string `json:"timestamp"` // RFC 3339
}

// parseShards parses the -shards comma list, enforcing the same bounds
// the SQL WITH (shards=N) clause does.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 64 {
			return nil, fmt.Errorf("-shards: %q is not a shard count in [1,64]", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	scale := flag.Int("scale", 1, "workload scale factor")
	shards := flag.String("shards", "1,2,4", "comma-separated eddy shard counts for the sharded experiment rows")
	jsonDir := flag.String("json", "", "directory to write BENCH_<id>.json results (empty disables)")
	flag.Parse()

	sweep, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	experiments.ShardSweep = sweep

	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E12"}
	if *run != "" {
		ids = ids[:0]
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	var tables []*experiments.Table
	var elapsed []time.Duration
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		tab := experiments.ByID(id, *scale)
		if tab == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E10, E12)\n", id)
			os.Exit(2)
		}
		tables = append(tables, tab)
		elapsed = append(elapsed, time.Since(t0))
	}
	for i, tab := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tab.Render())
	}
	fmt.Printf("\n%d experiment(s) in %v (scale %d)\n", len(tables), time.Since(start).Round(time.Millisecond), *scale)

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		now := time.Now().UTC().Format(time.RFC3339)
		for i, tab := range tables {
			res := benchResult{
				ID: tab.ID, Title: tab.Title, Claim: tab.Claim,
				Columns: tab.Columns, Rows: tab.Rows, Notes: tab.Notes,
				Scale: *scale, Shards: sweep,
				GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
				ElapsedMs: elapsed[i].Milliseconds(), Timestamp: now,
			}
			data, err := json.MarshalIndent(&res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+tab.ID+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
