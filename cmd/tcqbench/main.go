// tcqbench regenerates the experiment tables of EXPERIMENTS.md: each
// experiment (E1–E10) reproduces one performance claim of the
// TelegraphCQ paper or its companion systems. See DESIGN.md §4 for the
// experiment ↔ claim ↔ module map.
//
// Usage:
//
//	tcqbench               # run everything at scale 1
//	tcqbench -run E3,E6    # selected experiments
//	tcqbench -scale 4      # more tuples, smoother numbers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"telegraphcq/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()

	var tables []*experiments.Table
	start := time.Now()
	if *run == "" {
		tables = experiments.All(*scale)
	} else {
		for _, id := range strings.Split(*run, ",") {
			tab := experiments.ByID(strings.TrimSpace(id), *scale)
			if tab == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E10)\n", id)
				os.Exit(2)
			}
			tables = append(tables, tab)
		}
	}
	for i, tab := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tab.Render())
	}
	fmt.Printf("\n%d experiment(s) in %v (scale %d)\n", len(tables), time.Since(start).Round(time.Millisecond), *scale)
}
