// Command tcqcheck is the differential correctness oracle: it runs
// seeded random workloads through a naive reference interpreter and
// through the real engine under a sweep of adaptivity configs (shard
// count, batch size, routing policy, EO placement, optional fault
// injection), and
// diffs per-query output multisets. On a mismatch it greedily shrinks
// the workload and writes a minimal replayable .tcq repro.
//
// Usage:
//
//	tcqcheck -seeds 200            # sweep seeds 1..200
//	tcqcheck -seed 1337            # one seed, verbose
//	tcqcheck -replay bug.tcq       # re-run a pinned/shrunken repro
//	tcqcheck -seeds 50 -chaos      # add a queue-full chaos config
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"telegraphcq/internal/refimpl"
)

func main() {
	var (
		seed   = flag.Int64("seed", 0, "check exactly this seed (0 = use -seeds sweep)")
		seeds  = flag.Int64("seeds", 50, "number of seeds to sweep")
		start  = flag.Int64("start", 1, "first seed of the sweep")
		chaos  = flag.Bool("chaos", false, "add a queue-full fault-injection config to the sweep")
		out    = flag.String("out", ".", "directory for shrunken .tcq repros")
		replay = flag.String("replay", "", "replay a .tcq workload instead of generating")
		budget = flag.Int("shrink-budget", 400, "max engine re-runs spent shrinking a failure")
		v      = flag.Bool("v", false, "log every seed, not just failures")
	)
	flag.Parse()

	cfgs := refimpl.Configs(*chaos)

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		w, err := refimpl.Decode(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *replay, err))
		}
		m, err := refimpl.CheckWorkload(w, cfgs)
		if err != nil {
			fatal(err)
		}
		if m != nil {
			fmt.Fprintln(os.Stderr, m)
			os.Exit(1)
		}
		fmt.Printf("%s: ok across %d configs\n", *replay, len(cfgs))
		return
	}

	lo, hi := *start, *start+*seeds-1
	if *seed != 0 {
		lo, hi, *v = *seed, *seed, true
	}
	failures := 0
	for s := lo; s <= hi; s++ {
		w, m, err := refimpl.CheckSeed(s, cfgs, *budget)
		if err != nil {
			fatal(fmt.Errorf("seed %d: %w", s, err))
		}
		if m == nil {
			if *v {
				fmt.Printf("seed %d: ok (%d queries, %d events, %d configs)\n",
					s, len(w.Queries), len(w.Events), len(cfgs))
			}
			continue
		}
		failures++
		fmt.Fprintln(os.Stderr, m)
		path := filepath.Join(*out, fmt.Sprintf("tcqcheck-seed%d.tcq", s))
		if f, err := os.Create(path); err == nil {
			if err := w.Encode(f); err == nil {
				fmt.Fprintf(os.Stderr, "  minimal repro: %s (replay with tcqcheck -replay %s)\n", path, path)
			}
			f.Close()
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d seeds failed\n", failures, hi-lo+1)
		os.Exit(1)
	}
	fmt.Printf("%d seeds ok across %d configs\n", hi-lo+1, len(cfgs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcqcheck:", err)
	os.Exit(1)
}
