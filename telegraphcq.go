// Package telegraphcq is a from-scratch Go implementation of
// TelegraphCQ (Chandrasekaran et al., 2003): a shared, continuously
// adaptive engine for continuous queries over unbounded data streams.
//
// The engine routes tuples with Eddies (per-tuple adaptive routing),
// stores join state in SteMs (state modules shared across queries),
// evaluates all registered selections at once with CACQ grouped filters,
// supports the paper's for-loop window construct (snapshot, landmark,
// sliding/hopping, backward windows), archives streams to disk through a
// log-structured store and buffer pool, and scales out with Flux
// (load-balancing, fault-tolerant exchange) over a simulated cluster.
//
// Quick start:
//
//	db := telegraphcq.New(telegraphcq.Options{})
//	defer db.Close()
//	db.MustExec(`CREATE STREAM quotes (sym string, price float)`)
//	q, _ := db.Submit(`SELECT sym, price FROM quotes WHERE price > 100`)
//	go func() {
//	    for {
//	        row, ok := q.Next()
//	        if !ok { return }
//	        fmt.Println(row)
//	    }
//	}()
//	db.Push("quotes", telegraphcq.String("MSFT"), telegraphcq.Float(130))
//
// See examples/ for complete programs and DESIGN.md for the paper ↔
// module map.
package telegraphcq

import (
	"telegraphcq/internal/core"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/server"
	"telegraphcq/internal/storage"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// System is an embedded TelegraphCQ instance (single process, many
// Execution Objects). Create one with New.
type System = core.System

// Query is a standing continuous query handle returned by Submit.
type Query = core.Query

// Options configures a System.
type Options = core.Options

// ExecutorOptions tunes query-class placement and the adapting-adaptivity
// knobs (batching, operator fixing).
type ExecutorOptions = executor.Options

// Tuple is a result row.
type Tuple = tuple.Tuple

// Value is one typed cell of a row.
type Value = tuple.Value

// WindowSpec is a programmatic for-loop window (the SQL FOR construct
// parsed into code form); used with ScanHistory.
type WindowSpec = window.Spec

// Class-mode constants for ExecutorOptions.Mode.
const (
	ClassByFootprint = executor.ClassByFootprint
	ClassSingle      = executor.ClassSingle
	ClassPerQuery    = executor.ClassPerQuery
)

// Buffer pool replacement policies for Options.Replacement.
const (
	LRU   = storage.LRU
	Clock = storage.Clock
)

// New creates an embedded system.
func New(opts Options) *System { return core.NewSystem(opts) }

// NewServer creates a network daemon speaking the TelegraphCQ line
// protocol on a FrontEnd port (queries) and a Wrapper port (data).
func NewServer(opts ExecutorOptions) *server.Server { return server.New(opts) }

// Dial connects a client to a TelegraphCQ daemon's FrontEnd port.
func Dial(addr string) (*server.Client, error) { return server.Dial(addr) }

// DialPush connects a data producer to a daemon's Wrapper port.
func DialPush(addr string) (*server.PushConn, error) { return server.DialPush(addr) }

// Int builds an integer value.
func Int(i int64) Value { return tuple.Int(i) }

// Float builds a floating-point value.
func Float(f float64) Value { return tuple.Float(f) }

// String builds a string value.
func String(s string) Value { return tuple.String(s) }

// Bool builds a boolean value.
func Bool(b bool) Value { return tuple.Bool(b) }

// Null builds the SQL NULL value.
func Null() Value { return tuple.Null() }

// Backward builds a backward-moving window spec for historical browsing
// with System.ScanHistory (§4.1.1: "windows that move backwards starting
// from the present time").
func Backward(stream string, width, hop, iterations int64) *WindowSpec {
	return window.Backward(stream, width, hop, iterations)
}

// Sliding builds a forward-hopping window spec for ScanHistory replays.
func Sliding(stream string, width, hop, iterations int64) *WindowSpec {
	return window.Sliding(stream, width, hop, iterations)
}
