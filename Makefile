GO ?= go

.PHONY: build test race vet bench benchjson oracle clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Machine-readable experiment results: one BENCH_<id>.json per table,
# written into the repo root (CI uploads them as an artifact).
benchjson:
	$(GO) run ./cmd/tcqbench -json .

# Differential correctness oracle: 200 seeded workloads diffed against
# the reference interpreter across the config sweep, then again with
# queue-full fault injection. Failures leave tcqcheck-seed*.tcq repros.
oracle:
	$(GO) run ./cmd/tcqcheck -seeds 200
	$(GO) run ./cmd/tcqcheck -seeds 200 -chaos

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json
