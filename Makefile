GO ?= go

.PHONY: build test race vet bench benchjson oracle loadtest clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Machine-readable experiment results: one BENCH_<id>.json per table,
# written into the repo root (CI uploads them as an artifact).
benchjson:
	$(GO) run ./cmd/tcqbench -json .

# Differential correctness oracle: 200 seeded workloads diffed against
# the reference interpreter across the config sweep, then again with
# queue-full fault injection. Failures leave tcqcheck-seed*.tcq repros.
oracle:
	$(GO) run ./cmd/tcqcheck -seeds 200
	$(GO) run ./cmd/tcqcheck -seeds 200 -chaos

# Fan-out smoke gate (the CI job): 1k subscribers under the block
# policy for 10s must lose nothing and keep p99 delivery latency under
# 250ms; the latency histogram lands in loadtest-hist.txt. The full
# 100k-subscriber E11 run is `go run ./cmd/tcqload` with defaults.
loadtest:
	$(GO) run ./cmd/tcqload -subs 1000 -dur 10s -policy block \
		-assert-zero-loss -max-p99 250ms -hist loadtest-hist.txt

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json loadtest-hist.txt
