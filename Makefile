GO ?= go

.PHONY: build test race vet bench benchjson clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Machine-readable experiment results: one BENCH_<id>.json per table,
# written into the repo root (CI uploads them as an artifact).
benchjson:
	$(GO) run ./cmd/tcqbench -json .

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json
