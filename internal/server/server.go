// Package server wires the TelegraphCQ process structure of Figure 5: a
// Postmaster accepting client connections, FrontEnd sessions that parse
// and plan statements and stream results back over multiplexed cursors
// (the proxy lets one connection hold many cursors), the shared Executor,
// and a Wrapper ingress port where push sources deliver data.
//
// Wire protocol (text lines over TCP):
//
//	client → server:  <SQL statement> ;           (may span lines)
//	                  SUBSCRIBE <cursor> [WITH (...)] ;  (join a standing query's fan-out)
//	                  SUBSCRIBE SELECT ... [WITH (...)] ; (submit + join)
//	                  CLOSE <cursor> ;
//	                  FETCH <cursor> <offset> ;   (pull/spool cursors)
//	server → client:  ok <text>
//	                  cursor <id> push|spool
//	                  row <id> <comma-separated values>
//	                  rows <id> <count> <nextOffset>
//	                  fail <id> <message>   (query died; done follows)
//	                  done <id>
//	                  error <message>
//
// Wrapper port: one CSV line per tuple, "stream,field,field,...".
package server

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/fanout"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/ingress"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/telemetry"
	"telegraphcq/internal/tuple"
)

// Server is the TelegraphCQ daemon.
type Server struct {
	Cat  *catalog.Catalog
	Exec *executor.Executor
	// Sources supervises the server's outbound (push-client, pull)
	// wrappers; its health snapshots feed the tcq_sources system stream
	// and the tcq_source_* metrics.
	Sources *ingress.Registry

	wrapper *ingress.PushServer
	lnFront net.Listener
	metrics *http.Server
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// New builds a server around a catalog and executor options. When
// opts.Chaos is set, the wrapper port injects the same fault schedule
// as the executor (tcqd -chaos).
func New(opts executor.Options) *Server {
	cat := catalog.New()
	s := &Server{
		Cat:     cat,
		Exec:    executor.New(cat, opts),
		Sources: ingress.NewRegistry(),
		conns:   map[net.Conn]struct{}{},
	}
	s.wrapper = ingress.NewPushServer(func(stream string, vals []tuple.Value) error {
		_, err := s.Exec.Push(stream, vals)
		return err
	})
	s.wrapper.Chaos = opts.Chaos
	s.Exec.SetSourceStats(func() []executor.SourceStat {
		snaps := s.Sources.Snapshots()
		out := make([]executor.SourceStat, len(snaps))
		for i, sn := range snaps {
			out[i] = executor.SourceStat{
				Name:     sn.Name,
				State:    sn.State,
				Restarts: sn.Restarts,
				Failures: sn.Failures,
				Rows:     sn.Rows,
				LastErr:  sn.LastErr,
			}
		}
		return out
	})
	return s
}

// Start listens on the FrontEnd and Wrapper addresses (use port :0 to
// pick free ports) and returns the bound addresses.
func (s *Server) Start(frontAddr, wrapperAddr string) (front, wrapper string, err error) {
	ln, err := net.Listen("tcp", frontAddr)
	if err != nil {
		return "", "", err
	}
	s.lnFront = ln
	wrapper, err = s.wrapper.Listen(wrapperAddr)
	if err != nil {
		ln.Close()
		return "", "", err
	}
	s.wg.Add(1)
	go s.postmaster()
	return ln.Addr().String(), wrapper, nil
}

// StartMetrics serves the telemetry endpoints (/metrics Prometheus
// text, /statz JSON, /healthz) on addr; returns the bound address.
func (s *Server) StartMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.metrics = &http.Server{Handler: s.Exec.Metrics().Handler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.metrics.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// postmaster accepts connections and forks a FrontEnd session for each
// (the fork-per-connection model of Figure 4, with goroutines for
// processes).
func (s *Server) postmaster() {
	defer s.wg.Done()
	for {
		conn, err := s.lnFront.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			sess := &session{srv: s, conn: conn}
			sess.run()
		}()
	}
}

// Close shuts down listeners, sessions, and the executor.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Session goroutines block reading their client's socket; a daemon
	// that cannot exit until every client hangs up is not shut-downable,
	// so sever the connections here.
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if s.lnFront != nil {
		s.lnFront.Close()
	}
	if s.metrics != nil {
		s.metrics.Close()
	}
	s.Sources.StopAll()
	s.wrapper.Close()
	s.Exec.Close()
	s.wg.Wait()
}

// Drain is the graceful variant of Close (SIGINT/SIGTERM in tcqd):
// ingress stops first (supervised sources, then the wrapper port, so no
// new data enters), then a Barrier flushes every in-flight tuple through
// the EOs to subscribers, then the server closes. If the barrier does
// not complete within timeout the shutdown proceeds anyway — a stuck
// drain must not wedge process exit.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	s.Sources.StopAll()
	s.wrapper.Close()
	deadline := time.Now().Add(timeout)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Exec.Barrier()
	}()
	select {
	case <-done:
		// The barrier put every in-flight tuple into subscription queues;
		// now let the session pumps write them to the wire before the
		// connections are severed. Stop when the queues are empty — or
		// when they stop making progress (a disconnected PSoup client's
		// orphaned subscription will never drain; don't wait for it).
		stalled := 0
		last := -1
		for time.Now().Before(deadline) && stalled < 50 {
			queued := 0
			for _, sub := range s.Exec.Hub().Subscriptions() {
				queued += sub.Len()
			}
			for _, tr := range s.Exec.FanoutTrees() {
				queued += tr.Pending()
			}
			if queued == 0 {
				break
			}
			if queued == last {
				stalled++
			} else {
				stalled = 0
				last = queued
			}
			time.Sleep(time.Millisecond)
		}
	case <-time.After(time.Until(deadline)):
	}
	s.Close()
}

// --------------------------------------------------------------- session

type session struct {
	srv  *Server
	conn net.Conn
	wmu  sync.Mutex // serializes writes from pump goroutines
	pubs sync.WaitGroup
	subs map[int]*cursorState // cursor id → pump state
}

// cursorState is one open cursor's session-side bookkeeping. owned
// marks cursors whose CLOSE cancels the query itself (a plain SELECT,
// or the submitting SUBSCRIBE SELECT); a SUBSCRIBE that merely joined a
// standing query's fan-out detaches without killing the query for
// everyone else.
type cursorState struct {
	stop  func()
	owned bool
}

func (c *session) run() {
	defer c.conn.Close()
	c.subs = map[int]*cursorState{}
	defer func() {
		for _, cs := range c.subs {
			cs.stop()
		}
		c.pubs.Wait()
	}()
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var stmt strings.Builder
	for sc.Scan() {
		line := sc.Text()
		// Accumulate until an unquoted ';'.
		stmt.WriteString(line)
		stmt.WriteByte('\n')
		if !endsStatement(stmt.String()) {
			continue
		}
		text := strings.TrimSpace(stmt.String())
		stmt.Reset()
		text = strings.TrimSuffix(text, ";")
		if strings.TrimSpace(text) == "" {
			continue
		}
		c.dispatch(text)
	}
}

// endsStatement reports whether the buffered text ends with a ';'
// outside string literals.
func endsStatement(s string) bool {
	inStr := false
	last := byte(0)
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch == '\'' {
			inStr = !inStr
		}
		if !inStr && ch == ';' {
			last = ';'
		} else if !isSpace(ch) {
			last = ch
		}
	}
	return last == ';' && !inStr
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func (c *session) send(format string, args ...any) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	fmt.Fprintf(c.conn, format+"\n", args...)
}

func (c *session) sendErr(err error) {
	c.send("error %s", strings.ReplaceAll(err.Error(), "\n", " "))
}

func (c *session) dispatch(text string) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return
	}
	switch strings.ToUpper(fields[0]) {
	case "CLOSE":
		c.closeCursor(fields)
		return
	case "FETCH":
		c.fetch(fields)
		return
	}
	st, err := sql.Parse(text)
	if err != nil {
		c.sendErr(err)
		return
	}
	switch stmt := st.(type) {
	case *sql.CreateStream:
		src, err := c.srv.Cat.CreateStream(stmt.Name, stmt.Cols, stmt.Archived)
		if err != nil {
			c.sendErr(err)
			return
		}
		if stmt.With != nil {
			// WITH (overflow = ..., rate = ..., timeout_ms = ...) — the
			// policy was validated at parse time.
			pol, err := fjord.ParseOverflowPolicy(stmt.With.Overflow)
			if err != nil {
				c.sendErr(err)
				return
			}
			src.SetQoS(fjord.QoS{
				Policy:       pol,
				SampleP:      stmt.With.SampleP,
				BlockTimeout: time.Duration(stmt.With.TimeoutMs) * time.Millisecond,
			})
		}
		c.srv.wrapper.Register(stmt.Name, src.Schema)
		c.send("ok created stream %s", stmt.Name)
	case *sql.CreateTable:
		if _, err := c.srv.Cat.CreateTable(stmt.Name, stmt.Cols); err != nil {
			c.sendErr(err)
			return
		}
		c.send("ok created table %s", stmt.Name)
	case *sql.Insert:
		src, err := c.srv.Cat.Lookup(stmt.Table)
		if err != nil {
			c.sendErr(err)
			return
		}
		for _, row := range stmt.Rows {
			if err := src.Insert(tuple.New(src.Schema, row...)); err != nil {
				c.sendErr(err)
				return
			}
		}
		c.send("ok inserted %d", len(stmt.Rows))
	case *sql.DropSource:
		if err := c.srv.Cat.Drop(stmt.Name); err != nil {
			c.sendErr(err)
			return
		}
		c.send("ok dropped %s", stmt.Name)
	case *sql.Select:
		c.openCursor(stmt)
	case *sql.Subscribe:
		c.openFanout(stmt)
	case *sql.ShowStats:
		c.showStats(stmt)
	default:
		c.sendErr(fmt.Errorf("server: unsupported statement"))
	}
}

// showStats dumps the telemetry registry as "row -1 <metric line>"
// entries (Prometheus text syntax per row) followed by "ok stats <n>".
// The continuous counterpart is a CQ over the tcq_* system streams.
func (c *session) showStats(stmt *sql.ShowStats) {
	samples := c.srv.Exec.Metrics().Gather()
	n := 0
	for i := range samples {
		if stmt.Like != "" && !strings.HasPrefix(samples[i].Name, stmt.Like) {
			continue
		}
		c.send("row -1 %s", strings.TrimSuffix(telemetry.PrometheusLine(&samples[i]), "\n"))
		n++
	}
	c.send("ok stats %d", n)
}

// openCursor submits a continuous query and pumps its results to the
// client as "row <id> ..." lines until closed.
func (c *session) openCursor(stmt *sql.Select) {
	id, sub, err := c.srv.Exec.Submit(stmt)
	if err != nil {
		c.sendErr(err)
		return
	}
	// Also spool so FETCH works for disconnected retrieval.
	c.srv.Exec.Hub().SpoolFor(id, 0)
	c.send("cursor %d push", id)
	stopped := make(chan struct{})
	c.subs[id] = &cursorState{stop: func() { close(stopped) }, owned: true}
	c.pubs.Add(1)
	go func() {
		defer c.pubs.Done()
		for {
			select {
			case <-stopped:
				return
			default:
			}
			row, ok := sub.TryNext()
			if !ok {
				row2, ok2 := waitNext(sub, stopped)
				if !ok2 {
					// A quarantined query closes its subscription with a
					// terminal error; tell the client why before done.
					if err := sub.Err(); err != nil {
						c.send("fail %d %s", id, strings.ReplaceAll(err.Error(), "\n", " "))
					}
					c.send("done %d", id)
					return
				}
				row = row2
			}
			c.send("row %d %s", id, row.String())
			// The consumer retires rows it has written to the wire (a
			// no-op for rows the spool retained).
			tuple.Recycle(row)
		}
	}()
}

// openFanout attaches this session to a query's fan-out tree
// (SUBSCRIBE <id> / SUBSCRIBE SELECT ...) and pumps shared pre-encoded
// frames to the client. Unlike openCursor's per-row fmt.Fprintf, the
// pump writes frame bytes verbatim: the serialization ran once per
// delivered batch, query-wide, no matter how many sessions subscribe.
func (c *session) openFanout(stmt *sql.Subscribe) {
	opts := fanout.SubOptions{}
	if w := stmt.With; w != nil {
		pol, err := fjord.ParseOverflowPolicy(w.Overflow)
		if err != nil {
			c.sendErr(err)
			return
		}
		opts.QoS = fjord.QoS{
			Policy:       pol,
			SampleP:      w.SampleP,
			BlockTimeout: time.Duration(w.TimeoutMs) * time.Millisecond,
		}
		opts.Cohort = w.Cohort
		opts.Queue = int(w.Queue)
		opts.Replay = w.Replay
	}
	var (
		id  int
		sub *fanout.Subscriber
		err error
	)
	if stmt.Sel != nil {
		id, sub, err = c.srv.Exec.SubmitFanout(stmt.Sel, opts)
	} else {
		id = int(stmt.Query)
		sub, err = c.srv.Exec.SubscribeFanout(id, opts)
	}
	if err != nil {
		c.sendErr(err)
		return
	}
	if old, ok := c.subs[id]; ok {
		old.stop() // one cursor id per session; displace the older pump
	}
	c.send("cursor %d push", id)
	// Closing the subscriber wakes a pump blocked in NextFrame — no
	// sidecar wait goroutine needed (cf. waitNext for legacy cursors).
	c.subs[id] = &cursorState{stop: sub.Close, owned: stmt.Sel != nil}
	c.pubs.Add(1)
	go func() {
		defer c.pubs.Done()
		for {
			f, ok := sub.NextFrame()
			if !ok {
				if !sub.Closed() { // the query ended, not the client
					if err := sub.Err(); err != nil {
						c.send("fail %d %s", id, strings.ReplaceAll(err.Error(), "\n", " "))
					}
				}
				c.send("done %d", id)
				sub.Close() // release anything racing in; idempotent
				return
			}
			c.wmu.Lock()
			_, _ = c.conn.Write(f.Bytes())
			c.wmu.Unlock()
			f.Release()
		}
	}()
}

// waitNext blocks for the next row or stop.
func waitNext(sub interface {
	Next() (*tuple.Tuple, bool)
}, stopped chan struct{}) (*tuple.Tuple, bool) {
	type res struct {
		t  *tuple.Tuple
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		t, ok := sub.Next()
		ch <- res{t, ok}
	}()
	select {
	case r := <-ch:
		return r.t, r.ok
	case <-stopped:
		return nil, false
	}
}

func (c *session) closeCursor(fields []string) {
	if len(fields) != 2 {
		c.sendErr(fmt.Errorf("usage: CLOSE <cursor>"))
		return
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		c.sendErr(err)
		return
	}
	owned := true // CLOSE on a cursor this session never opened cancels (legacy behavior)
	if cs, ok := c.subs[id]; ok {
		cs.stop()
		owned = cs.owned
		delete(c.subs, id)
	}
	if !owned {
		// A joined fan-out cursor detaches without cancelling the query
		// other subscribers still read.
		c.send("ok closed %d", id)
		return
	}
	if err := c.srv.Exec.Cancel(id); err != nil {
		c.sendErr(err)
		return
	}
	c.send("ok closed %d", id)
}

func (c *session) fetch(fields []string) {
	if len(fields) != 3 {
		c.sendErr(fmt.Errorf("usage: FETCH <cursor> <offset>"))
		return
	}
	id, err1 := strconv.Atoi(fields[1])
	off, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		c.sendErr(fmt.Errorf("bad FETCH arguments"))
		return
	}
	sp := c.srv.Exec.Hub().SpoolFor(id, 0)
	rows, next := sp.Fetch(off)
	c.send("rows %d %d %d", id, len(rows), next)
	for _, r := range rows {
		c.send("row %d %s", id, r.String())
	}
}
