package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"telegraphcq/internal/executor"
)

func startServer(t *testing.T) (*Server, string, string) {
	t.Helper()
	s := New(executor.Options{})
	front, wrapper, err := s.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, front, wrapper
}

func recvRows(t *testing.T, ch <-chan string, n int) []string {
	t.Helper()
	var out []string
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case r, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, r)
		case <-deadline:
			t.Fatalf("timeout: got %d of %d rows (%v)", len(out), n, out)
		}
	}
	return out
}

func TestEndToEndFilterQuery(t *testing.T) {
	_, front, wrapper := startServer(t)
	cli, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Exec(`CREATE STREAM stocks (sym string, price float)`); err != nil {
		t.Fatal(err)
	}
	_, rows, err := cli.Query(`SELECT sym, price FROM stocks WHERE price > 50`)
	if err != nil {
		t.Fatal(err)
	}

	push, err := DialPush(wrapper)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()
	_ = push.Push("stocks", "MSFT", "60")
	_ = push.Push("stocks", "IBM", "40")
	_ = push.Push("stocks", "MSFT", "70")
	_ = push.Flush()

	got := recvRows(t, rows, 2)
	if got[0] != "MSFT,60" || got[1] != "MSFT,70" {
		t.Fatalf("rows: %v", got)
	}
}

func TestDDLErrorsReported(t *testing.T) {
	_, front, _ := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM s (a int)`); err != nil {
		t.Fatal(err)
	}
	if err := cli.Exec(`CREATE STREAM s (a int)`); err == nil {
		t.Fatal("duplicate stream accepted")
	}
	if err := cli.Exec(`SELECT FROM`); err == nil {
		t.Fatal("syntax error accepted")
	}
	if err := cli.Exec(`DROP STREAM nope`); err == nil {
		t.Fatal("drop unknown accepted")
	}
}

func TestInsertAndStreamTableJoin(t *testing.T) {
	_, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	for _, stmt := range []string{
		`CREATE STREAM trades (sym string, qty int)`,
		`CREATE TABLE companies (sym string, hq string)`,
		`INSERT INTO companies VALUES ('MSFT', 'Redmond'), ('IBM', 'Armonk')`,
	} {
		if err := cli.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	_, rows, err := cli.Query(`
		SELECT trades.sym, companies.hq, qty FROM trades, companies
		WHERE trades.sym = companies.sym`)
	if err != nil {
		t.Fatal(err)
	}
	push, _ := DialPush(wrapper)
	defer push.Close()
	_ = push.Push("trades", "IBM", "100")
	_ = push.Push("trades", "ORCL", "5")
	_ = push.Flush()
	got := recvRows(t, rows, 1)
	if got[0] != "IBM,Armonk,100" {
		t.Fatalf("rows: %v", got)
	}
}

func TestMultipleCursorsOneConnection(t *testing.T) {
	_, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	_ = cli.Exec(`CREATE STREAM s (v float)`)
	id1, rows1, err := cli.Query(`SELECT v FROM s WHERE v > 10`)
	if err != nil {
		t.Fatal(err)
	}
	id2, rows2, err := cli.Query(`SELECT v FROM s WHERE v > 20`)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("cursor ids collide")
	}
	push, _ := DialPush(wrapper)
	defer push.Close()
	for _, v := range []string{"5", "15", "25"} {
		_ = push.Push("s", v)
	}
	_ = push.Flush()
	r1 := recvRows(t, rows1, 2)
	r2 := recvRows(t, rows2, 1)
	if r1[0] != "15" || r1[1] != "25" || r2[0] != "25" {
		t.Fatalf("rows: %v / %v", r1, r2)
	}
}

func TestCloseCursorStopsRows(t *testing.T) {
	_, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	_ = cli.Exec(`CREATE STREAM s (v float)`)
	id, rows, _ := cli.Query(`SELECT v FROM s`)
	push, _ := DialPush(wrapper)
	defer push.Close()
	_ = push.Push("s", "1")
	_ = push.Flush()
	recvRows(t, rows, 1)
	if err := cli.CloseCursor(id); err != nil {
		t.Fatal(err)
	}
	_ = push.Push("s", "2")
	_ = push.Flush()
	time.Sleep(50 * time.Millisecond)
	select {
	case r, ok := <-rows:
		if ok {
			t.Fatalf("row after close: %q", r)
		}
	default:
	}
}

func TestFetchSpooledResults(t *testing.T) {
	// Disconnected operation: rows accumulate in the spool; the client
	// fetches on reconnect.
	_, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	_ = cli.Exec(`CREATE STREAM s (v float)`)
	id, _, err := cli.Query(`SELECT v FROM s WHERE v >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	push, _ := DialPush(wrapper)
	defer push.Close()
	for i := 0; i < 10; i++ {
		_ = push.Push("s", fmt.Sprintf("%d", i))
	}
	_ = push.Flush()
	// Poll the spool until all 10 rows landed.
	var rows []string
	var next int64
	deadline := time.Now().Add(5 * time.Second)
	for len(rows) < 10 && time.Now().Before(deadline) {
		got, n, err := cli.Fetch(id, next)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, got...)
		next = n
		time.Sleep(5 * time.Millisecond)
	}
	if len(rows) != 10 || rows[0] != "0" || rows[9] != "9" {
		t.Fatalf("fetched: %v", rows)
	}
	// Fetching from the end returns nothing new.
	got, _, err := cli.Fetch(id, next)
	if err != nil || len(got) != 0 {
		t.Fatalf("tail fetch: %v %v", got, err)
	}
}

func TestAggregateOverWire(t *testing.T) {
	_, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	_ = cli.Exec(`CREATE STREAM s (sym string, price float)`)
	_, rows, err := cli.Query(`
		SELECT avg(price) FROM s WHERE sym = 'MSFT'
		for (t = ST; ; t += 3) { WindowIs(s, t + 1, t + 3); }`)
	if err != nil {
		t.Fatal(err)
	}
	push, _ := DialPush(wrapper)
	defer push.Close()
	for i := 1; i <= 7; i++ {
		_ = push.Push("s", "MSFT", fmt.Sprintf("%d", i))
	}
	_ = push.Flush()
	got := recvRows(t, rows, 2)
	// Windows [1,3] avg 2 and [4,6] avg 5.
	if !strings.HasSuffix(got[0], ",2") || !strings.HasSuffix(got[1], ",5") {
		t.Fatalf("agg rows: %v", got)
	}
}

func TestWrapperRejectsMalformedLines(t *testing.T) {
	s, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	_ = cli.Exec(`CREATE STREAM s (v int)`)
	push, _ := DialPush(wrapper)
	defer push.Close()
	_ = push.Push("nostream", "1") // unknown stream
	_ = push.Push("s", "notanint") // parse error
	_ = push.Push("s", "42")       // fine
	_ = push.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for s.wrapperErrs() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.wrapperErrs() != 2 {
		t.Fatalf("wrapper errors = %d", s.wrapperErrs())
	}
}

func (s *Server) wrapperErrs() int64 { return s.wrapper.Errs() }

func TestWrapperErrorReplies(t *testing.T) {
	_, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM s (v int)`); err != nil {
		t.Fatal(err)
	}
	push, _ := DialPush(wrapper)
	defer push.Close()

	_ = push.Push("nostream", "1")
	_ = push.Flush()
	msg, err := push.ReadError(2 * time.Second)
	if err != nil {
		t.Fatalf("no reply for unknown stream: %v", err)
	}
	if !strings.HasPrefix(msg, "error 1 ") || !strings.Contains(msg, `unknown stream "nostream"`) {
		t.Fatalf("unknown-stream reply = %q", msg)
	}

	_ = push.Push("s", "notanint")
	_ = push.Flush()
	msg, err = push.ReadError(2 * time.Second)
	if err != nil {
		t.Fatalf("no reply for malformed line: %v", err)
	}
	if !strings.HasPrefix(msg, "error 2 ") || !strings.Contains(msg, "column v") {
		t.Fatalf("parse-error reply = %q", msg)
	}

	// A valid line draws no reply.
	_ = push.Push("s", "42")
	_ = push.Flush()
	if msg, err := push.ReadError(150 * time.Millisecond); err == nil {
		t.Fatalf("unexpected reply for valid line: %q", msg)
	}
}

func TestShowStatsOverWire(t *testing.T) {
	s, front, wrapper := startServer(t)
	cli, _ := Dial(front)
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM s (v int)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Query(`SELECT v FROM s WHERE v > 0`); err != nil {
		t.Fatal(err)
	}
	push, _ := DialPush(wrapper)
	defer push.Close()
	for i := 1; i <= 5; i++ {
		_ = push.Push("s", fmt.Sprintf("%d", i))
	}
	_ = push.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for s.wrapper.Rows() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Exec.Barrier(); err != nil {
		t.Fatal(err)
	}

	lines, err := cli.ShowStats("")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, l := range lines {
		name, _, _ := strings.Cut(l, "{")
		name, _, _ = strings.Cut(name, " ")
		found[name] = true
	}
	for _, want := range []string{"tcq_eos", "tcq_queries_active", "tcq_eddy_admitted_total", "tcq_module_routed_total"} {
		if !found[want] {
			t.Fatalf("SHOW STATS missing %s in %d lines", want, len(lines))
		}
	}

	// LIKE narrows to the prefix.
	lines, err = cli.ShowStats("tcq_eddy_")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("SHOW STATS LIKE 'tcq_eddy_' returned nothing")
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "tcq_eddy_") {
			t.Fatalf("LIKE filter leaked %q", l)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, front, _ := startServer(t)
	addr, err := s.StartMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, _ := Dial(front)
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM s (v int)`); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"# TYPE tcq_eos gauge", "tcq_queries_active"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := New(executor.Options{})
	_, _, err := s.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
}

func TestSubscribeFanoutOverWire(t *testing.T) {
	_, front, wrapper := startServer(t)
	owner, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	if err := owner.Exec(`CREATE STREAM stocks (sym string, price float)`); err != nil {
		t.Fatal(err)
	}
	id, ownRows, err := owner.Query(`SUBSCRIBE SELECT sym, price FROM stocks WHERE price > 50`)
	if err != nil {
		t.Fatal(err)
	}

	// A second connection joins the standing query's fan-out by id.
	joiner, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	jid, joinRows, err := joiner.Query(fmt.Sprintf(`SUBSCRIBE %d WITH (overflow = 'block')`, id))
	if err != nil {
		t.Fatal(err)
	}
	if jid != id {
		t.Fatalf("joined cursor %d, want %d", jid, id)
	}

	push, err := DialPush(wrapper)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()
	_ = push.Push("stocks", "MSFT", "60")
	_ = push.Push("stocks", "IBM", "40")
	_ = push.Push("stocks", "MSFT", "70")
	_ = push.Flush()

	// Both sessions see the same shared-encoded rows.
	for name, ch := range map[string]<-chan string{"owner": ownRows, "joiner": joinRows} {
		got := recvRows(t, ch, 2)
		if got[0] != "MSFT,60" || got[1] != "MSFT,70" {
			t.Fatalf("%s rows: %v", name, got)
		}
	}

	// CLOSE on the joined cursor detaches that session only: the query
	// keeps running for the owner.
	if err := joiner.CloseCursor(id); err != nil {
		t.Fatal(err)
	}
	_ = push.Push("stocks", "GOOG", "90")
	_ = push.Flush()
	if got := recvRows(t, ownRows, 1); got[0] != "GOOG,90" {
		t.Fatalf("owner after joiner close: %v", got)
	}

	// CLOSE on the owning cursor cancels the query itself.
	if err := owner.CloseCursor(id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := joiner.Query(fmt.Sprintf(`SUBSCRIBE %d`, id)); err == nil {
		t.Fatal("subscribed to a cancelled query")
	}
}

func TestSubscribeReplayOverWire(t *testing.T) {
	_, front, wrapper := startServer(t)
	owner, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	if err := owner.Exec(`CREATE STREAM ticks (v int)`); err != nil {
		t.Fatal(err)
	}
	id, ownRows, err := owner.Query(`SUBSCRIBE SELECT v FROM ticks`)
	if err != nil {
		t.Fatal(err)
	}

	push, err := DialPush(wrapper)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()
	for i := 1; i <= 3; i++ {
		_ = push.Push("ticks", fmt.Sprintf("%d", i))
	}
	_ = push.Flush()
	recvRows(t, ownRows, 3) // history is delivered and spooled

	// A late joiner with replay catches up from the retained spool.
	late, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	_, lateRows, err := late.Query(fmt.Sprintf(`SUBSCRIBE %d WITH (replay = true)`, id))
	if err != nil {
		t.Fatal(err)
	}
	got := recvRows(t, lateRows, 3)
	for i, want := range []string{"1", "2", "3"} {
		if got[i] != want {
			t.Fatalf("replayed rows: %v", got)
		}
	}

	// And keeps receiving live rows after the catch-up.
	_ = push.Push("ticks", "4")
	_ = push.Flush()
	if got := recvRows(t, lateRows, 1); got[0] != "4" {
		t.Fatalf("live after replay: %v", got)
	}
}

func TestSubscribeUnknownQueryRejected(t *testing.T) {
	_, front, _ := startServer(t)
	cli, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, _, err := cli.Query(`SUBSCRIBE 424242`); err == nil {
		t.Fatal("subscribe to unknown query succeeded")
	}
}

// The forced-exit path: an operator's second signal calls Close while
// Drain is still waiting on a backlog. The forced Close must sever live
// sessions — even one whose pump is wedged against a client that never
// reads — and let the pending Drain finish instead of wedging shutdown.
func TestDrainForcedCloseSeversLiveSessions(t *testing.T) {
	srv, front, wrapper := startServer(t)
	cli, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM s (payload string)`); err != nil {
		t.Fatal(err)
	}

	// A raw subscriber that opens a cursor and then never reads: its
	// session pump backs up against the TCP buffer, so the subscription
	// queue cannot drain on its own.
	raw, err := net.Dial("tcp", front)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	fmt.Fprintln(raw, "SELECT payload FROM s;")
	br := bufio.NewReader(raw)
	ack, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(ack, "cursor ") {
		t.Fatalf("cursor ack: %q %v", ack, err)
	}

	// Enough data to fill the socket buffers and leave a stuck backlog.
	push, err := DialPush(wrapper)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()
	payload := strings.Repeat("x", 512)
	for i := 0; i < 16384; i++ {
		_ = push.Push("s", payload)
	}
	_ = push.Flush()
	queued := func() int {
		n := 0
		for _, sub := range srv.Exec.Hub().Subscriptions() {
			n += sub.Len()
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if queued() == 0 {
		t.Fatal("subscription backlog never formed")
	}

	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		srv.Drain(60 * time.Second)
	}()
	// Give Drain time to stop ingress and enter its wait loop; with the
	// backlog stuck it must still be pending when the force arrives.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-drainDone:
		t.Fatal("drain finished with a wedged subscriber backlog")
	default:
	}

	srv.Close() // second signal: force

	select {
	case <-drainDone:
	case <-time.After(10 * time.Second):
		t.Fatal("forced close did not unblock the pending drain")
	}
	// The wedged session was severed: the socket reaches EOF/reset even
	// though its queue never drained.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, raw); err != nil && !errors.Is(err, io.EOF) {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("severed session still open after forced close")
		}
	}
	// And the control session is dead too: the next statement fails.
	if err := cli.Exec(`CREATE STREAM late (v float)`); err == nil {
		t.Fatal("statement succeeded on a force-closed server")
	}
}
