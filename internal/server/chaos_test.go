package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/ingress"
	"telegraphcq/internal/tuple"
)

// TestChaosEndToEnd is the whole failure-handling subsystem in one run:
// a remote source that keeps dropping its connection, a supervised
// push-client wrapper that reconnects, a block-policy stream that loses
// nothing the engine accepted, a wrapper port corrupting lines under an
// injector — and through all of it the server keeps answering queries.
func TestChaosEndToEnd(t *testing.T) {
	srv := New(executor.Options{
		SubscriptionCap: 1 << 16,
	})
	front, _, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialWith(front, ClientOptions{AckTimeout: 2 * time.Second, FetchTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM quakes (region string, mag float) WITH (overflow = 'block', timeout_ms = 5000)`); err != nil {
		t.Fatal(err)
	}
	_, rows, err := cli.Query(`SELECT region, mag FROM quakes`)
	if err != nil {
		t.Fatal(err)
	}

	// A chaotic remote source: every accepted connection sends a few
	// rows (one corrupt) and hangs up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			for j := 0; j < 8; j++ {
				if j == 3 {
					fmt.Fprintln(conn, "not;a;row")
				} else {
					fmt.Fprintf(conn, "R%d,%d.5\n", i, j)
				}
			}
			conn.Close()
		}
	}()

	// Supervise a push-client wrapper that feeds the engine directly.
	schema := tuple.NewSchema(
		tuple.Column{Source: "quakes", Name: "region", Kind: tuple.KindString},
		tuple.Column{Source: "quakes", Name: "mag", Kind: tuple.KindFloat},
	)
	pc := &ingress.PushClient{Stream: "quakes", Schema: schema}
	sup := srv.Sources.Supervise("quakes", func(stop <-chan struct{}) error {
		_, err := pc.Run(ln.Addr().String(), func(stream string, vals []tuple.Value) error {
			_, perr := srv.Exec.Push(stream, vals)
			return perr
		})
		if err == nil {
			// The remote hung up cleanly: retry, this source never ends.
			return errors.New("source disconnected")
		}
		return err
	}, ingress.Backoff{Initial: time.Millisecond, Max: 5 * time.Millisecond, Seed: 9, HealthyAfter: time.Hour})
	defer func() { pc.Stop(); sup.Stop() }()

	// Wait for rows to flow across several reconnects.
	got := recvRows(t, rows, 30)
	if len(got) < 30 {
		t.Fatalf("only %d rows across reconnects", len(got))
	}
	snap := sup.Snapshot()
	if snap.Restarts < 2 {
		t.Fatalf("restarts=%d, want >=2", snap.Restarts)
	}
	if pc.BadRows() == 0 {
		t.Fatal("corrupt rows were not skipped")
	}

	// The block policy lost nothing the engine accepted.
	if shed := srv.Exec.StreamShed("quakes"); shed != 0 {
		t.Fatalf("block policy shed %d tuples", shed)
	}

	// Supervisor health is visible to operators via SHOW STATS.
	stats, err := cli.ShowStats("tcq_source")
	if err != nil {
		t.Fatal(err)
	}
	var sawRestarts bool
	for _, line := range stats {
		if strings.HasPrefix(line, "tcq_source_restarts_total") && !strings.Contains(line, " 0") {
			sawRestarts = true
		}
	}
	if !sawRestarts {
		t.Fatalf("restarts not visible in SHOW STATS: %v", stats)
	}

	// And through the tcq_sources system stream, as a continuous query.
	_, srcRows, err := cli.Query(`SELECT source, state, restarts FROM tcq_sources`)
	if err != nil {
		t.Fatal(err)
	}
	srv.Exec.SampleSystemStreams()
	sourceRows := recvRows(t, srcRows, 1)
	if !strings.Contains(sourceRows[0], "quakes") {
		t.Fatalf("tcq_sources row: %q", sourceRows[0])
	}

	// After all that chaos the server still answers plain DDL.
	if err := cli.Exec(`CREATE STREAM heartbeat (n int)`); err != nil {
		t.Fatalf("server unhealthy after chaos: %v", err)
	}
}

// TestWrapperPortChaos sends rows through the wrapper ingress port with
// an injector corrupting lines mid-flight: corrupt rows are rejected
// with error replies, clean rows are delivered, the port stays up.
func TestWrapperPortChaos(t *testing.T) {
	srv := New(executor.Options{
		Chaos: chaos.New(chaos.Config{Seed: 17, Corrupt: 0.2}),
	})
	front, wrapperAddr, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM ticks (n int)`); err != nil {
		t.Fatal(err)
	}
	push, err := DialPush(wrapperAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := push.Push("ticks", fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := push.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	w := srv.wrapper
	for w.Rows()+w.Errs() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Rows()+w.Errs() != n {
		t.Fatalf("rows %d + errs %d != sent %d", w.Rows(), w.Errs(), n)
	}
	if w.Errs() == 0 {
		t.Fatal("20% corruption produced no rejects")
	}
	if w.Rows() == 0 {
		t.Fatal("no clean rows survived")
	}
}

// TestQueryFailReportedToClient exercises the fail protocol verb: a
// panic quarantines the query server-side, and the client observes the
// closed cursor with a QueryErr explaining why — while the connection
// itself remains usable.
func TestQueryFailReportedToClient(t *testing.T) {
	srv := New(executor.Options{
		Chaos: chaos.New(chaos.Config{Seed: 29, PanicStream: "stocks"}),
	})
	front, wrapperAddr, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM stocks (sym string, price float)`); err != nil {
		t.Fatal(err)
	}
	id, rows, err := cli.Query(`SELECT sym, price FROM stocks`)
	if err != nil {
		t.Fatal(err)
	}
	push, err := DialPush(wrapperAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer push.Close()
	_ = push.Push("stocks", "MSFT", "50.5")
	_ = push.Flush()

	// The cursor must terminate (not hang) once the query is quarantined.
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-rows:
			open = ok
		case <-deadline:
			t.Fatal("cursor did not close after server-side panic")
		}
	}
	qerr := cli.QueryErr(id)
	if qerr == nil || !strings.Contains(qerr.Error(), "quarantined") {
		t.Fatalf("QueryErr=%v, want quarantine explanation", qerr)
	}
	// The connection survives the dead cursor.
	if err := cli.Exec(`CREATE STREAM after (n int)`); err != nil {
		t.Fatalf("connection unusable after fail: %v", err)
	}
}

// TestDrainFlushesInFlight checks graceful shutdown: rows pushed just
// before Drain still reach the subscriber before the server exits.
func TestDrainFlushesInFlight(t *testing.T) {
	srv := New(executor.Options{SubscriptionCap: 1 << 12})
	front, _, err := srv.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(front)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Exec(`CREATE STREAM s (n int)`); err != nil {
		t.Fatal(err)
	}
	_, rows, err := cli.Query(`SELECT n FROM s`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := srv.Exec.Push("s", []tuple.Value{tuple.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { srv.Drain(10 * time.Second); close(done) }()
	got := recvRows(t, rows, n)
	if len(got) != n {
		t.Fatalf("drain delivered %d of %d", len(got), n)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return")
	}
}
