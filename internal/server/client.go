package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ClientOptions configures a FrontEnd client's patience. The zero value
// gives the historical defaults; tests shorten them so a dead server
// fails fast instead of eating the suite's time budget.
type ClientOptions struct {
	// AckTimeout bounds the wait for a statement's ok/error/cursor reply
	// (0 → 5s).
	AckTimeout time.Duration
	// FetchTimeout bounds the wait for the row bodies of a FETCH or
	// SHOW STATS response (0 → 5s).
	FetchTimeout time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 5 * time.Second
	}
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 5 * time.Second
	}
	return o
}

// Client speaks the FrontEnd protocol: one connection, many cursors
// (the proxy of Figure 5 collapses into the client here).
type Client struct {
	conn net.Conn
	wmu  sync.Mutex
	opts ClientOptions

	mu    sync.Mutex
	acks  chan string // ok / error / cursor / rows responses, in order
	rows  map[int]chan string
	fails map[int]string // cursor id → terminal error ("fail" lines)
	// pending buffers rows that raced ahead of the cursor's channel
	// registration: a fan-out SUBSCRIBE with replay starts streaming the
	// instant the server acks, possibly before Query has mapped the id.
	pending   map[int][]string
	doneEarly map[int]bool // done seen before the cursor was registered
	done      chan struct{}
}

// Dial connects to a TelegraphCQ FrontEnd with default options.
func Dial(addr string) (*Client, error) { return DialWith(addr, ClientOptions{}) }

// DialWith connects to a TelegraphCQ FrontEnd with explicit options.
func DialWith(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:      conn,
		opts:      opts.withDefaults(),
		acks:      make(chan string, 64),
		rows:      map[int]chan string{},
		fails:     map[int]string{},
		pending:   map[int][]string{},
		doneEarly: map[int]bool{},
		done:      make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "row "):
			rest := line[4:]
			idx := strings.IndexByte(rest, ' ')
			if idx < 0 {
				continue
			}
			id, err := strconv.Atoi(rest[:idx])
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch := c.rows[id]
			if ch == nil && len(c.pending[id]) < 65536 {
				c.pending[id] = append(c.pending[id], rest[idx+1:])
			}
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- rest[idx+1:]:
				default: // client stalled: shed
				}
			}
		case strings.HasPrefix(line, "fail "):
			// "fail <id> <message>": the query died server-side; record
			// why so QueryErr can report it after done closes the channel.
			rest := line[5:]
			idx := strings.IndexByte(rest, ' ')
			if idx < 0 {
				continue
			}
			if id, err := strconv.Atoi(rest[:idx]); err == nil {
				c.mu.Lock()
				c.fails[id] = rest[idx+1:]
				c.mu.Unlock()
			}
		case strings.HasPrefix(line, "done "):
			id, err := strconv.Atoi(strings.TrimSpace(line[5:]))
			if err == nil {
				c.mu.Lock()
				if ch := c.rows[id]; ch != nil {
					close(ch)
					delete(c.rows, id)
				} else {
					c.doneEarly[id] = true
				}
				c.mu.Unlock()
			}
		default:
			select {
			case c.acks <- line:
			default:
			}
		}
	}
}

func (c *Client) sendLine(s string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := fmt.Fprintln(c.conn, s)
	return err
}

func (c *Client) ack(timeout time.Duration) (string, error) {
	select {
	case line := <-c.acks:
		if strings.HasPrefix(line, "error ") {
			return "", fmt.Errorf("%s", line[6:])
		}
		return line, nil
	case <-c.done:
		return "", fmt.Errorf("connection closed")
	case <-time.After(timeout):
		return "", fmt.Errorf("timeout waiting for server")
	}
}

// QueryErr reports the terminal error the server announced for a
// cursor ("fail <id> <msg>"), or nil while the query is healthy. The
// row channel closes after the error is recorded, so a consumer that
// sees the channel close can ask QueryErr why.
func (c *Client) QueryErr(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if msg, ok := c.fails[id]; ok {
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// Exec runs a DDL/INSERT statement and waits for its ack.
func (c *Client) Exec(stmt string) error {
	if err := c.sendLine(terminate(stmt)); err != nil {
		return err
	}
	_, err := c.ack(c.opts.AckTimeout)
	return err
}

// Query submits a continuous query; rows stream into the returned
// channel as CSV strings until the cursor is closed.
func (c *Client) Query(stmt string) (int, <-chan string, error) {
	ch := make(chan string, 4096)
	if err := c.sendLine(terminate(stmt)); err != nil {
		return 0, nil, err
	}
	line, err := c.ack(c.opts.AckTimeout)
	if err != nil {
		return 0, nil, err
	}
	var id int
	var mode string
	if _, err := fmt.Sscanf(line, "cursor %d %s", &id, &mode); err != nil {
		return 0, nil, fmt.Errorf("unexpected response %q", line)
	}
	c.mu.Lock()
	// Flush rows (and a terminal done) that beat this registration.
	for _, r := range c.pending[id] {
		select {
		case ch <- r:
		default:
		}
	}
	delete(c.pending, id)
	if c.doneEarly[id] {
		delete(c.doneEarly, id)
		close(ch)
	} else {
		c.rows[id] = ch
	}
	c.mu.Unlock()
	return id, ch, nil
}

// Fetch retrieves spooled rows of a cursor from an offset (pull mode,
// for intermittent clients). It returns the rows and the next offset.
func (c *Client) Fetch(id int, offset int64) ([]string, int64, error) {
	// Route this cursor's rows into a private channel for the duration.
	ch := make(chan string, 65536)
	c.mu.Lock()
	prev := c.rows[id]
	c.rows[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if prev != nil {
			c.rows[id] = prev
		} else {
			delete(c.rows, id)
		}
		c.mu.Unlock()
	}()

	if err := c.sendLine(fmt.Sprintf("FETCH %d %d;", id, offset)); err != nil {
		return nil, 0, err
	}
	line, err := c.ack(c.opts.AckTimeout)
	if err != nil {
		return nil, 0, err
	}
	var rid, count int
	var next int64
	if _, err := fmt.Sscanf(line, "rows %d %d %d", &rid, &count, &next); err != nil {
		return nil, 0, fmt.Errorf("unexpected response %q", line)
	}
	out := make([]string, 0, count)
	deadline := time.After(c.opts.FetchTimeout)
	for len(out) < count {
		select {
		case r := <-ch:
			out = append(out, r)
		case <-deadline:
			return out, next, fmt.Errorf("timeout fetching rows")
		}
	}
	return out, next, nil
}

// ShowStats runs SHOW STATS [LIKE 'prefix'] and returns the metric
// lines (Prometheus text syntax, one per sample).
func (c *Client) ShowStats(like string) ([]string, error) {
	// Stats rows arrive tagged with the pseudo-cursor -1.
	ch := make(chan string, 65536)
	c.mu.Lock()
	c.rows[-1] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.rows, -1)
		c.mu.Unlock()
	}()
	stmt := "SHOW STATS"
	if like != "" {
		stmt += " LIKE '" + like + "'"
	}
	if err := c.sendLine(terminate(stmt)); err != nil {
		return nil, err
	}
	line, err := c.ack(c.opts.AckTimeout)
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(line, "ok stats %d", &n); err != nil {
		return nil, fmt.Errorf("unexpected response %q", line)
	}
	out := make([]string, 0, n)
	deadline := time.After(c.opts.FetchTimeout)
	for len(out) < n {
		select {
		case r := <-ch:
			out = append(out, r)
		case <-deadline:
			return out, fmt.Errorf("timeout reading stats")
		}
	}
	return out, nil
}

// CloseCursor cancels a standing query.
func (c *Client) CloseCursor(id int) error {
	c.mu.Lock()
	if ch := c.rows[id]; ch != nil {
		delete(c.rows, id)
		close(ch)
	}
	c.mu.Unlock()
	if err := c.sendLine(fmt.Sprintf("CLOSE %d;", id)); err != nil {
		return err
	}
	_, err := c.ack(c.opts.AckTimeout)
	return err
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

func terminate(s string) string {
	t := strings.TrimSpace(s)
	if !strings.HasSuffix(t, ";") {
		t += ";"
	}
	return t
}

// PushConn is a minimal writer for the Wrapper ingress port.
type PushConn struct {
	conn net.Conn
	w    *bufio.Writer
	r    *bufio.Reader
}

// DialPush connects to the Wrapper port.
func DialPush(addr string) (*PushConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &PushConn{conn: conn, w: bufio.NewWriter(conn), r: bufio.NewReader(conn)}, nil
}

// ReadError reads one per-line error reply from the wrapper port
// ("error <line#> <why>"), blocking up to timeout. It returns an error
// on timeout — the absence of a reply means the lines were accepted.
func (p *PushConn) ReadError(timeout time.Duration) (string, error) {
	if err := p.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return "", err
	}
	defer p.conn.SetReadDeadline(time.Time{})
	line, err := p.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// Push sends one tuple as "stream,field,...".
func (p *PushConn) Push(stream string, fields ...string) error {
	_, err := p.w.WriteString(stream + "," + strings.Join(fields, ",") + "\n")
	return err
}

// Flush forces buffered rows out.
func (p *PushConn) Flush() error { return p.w.Flush() }

// Close flushes and closes.
func (p *PushConn) Close() error {
	_ = p.w.Flush()
	return p.conn.Close()
}
