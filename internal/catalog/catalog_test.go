package catalog

import (
	"testing"

	"telegraphcq/internal/tuple"
)

func cols(names ...string) []tuple.Column {
	out := make([]tuple.Column, len(names))
	for i, n := range names {
		out[i] = tuple.Column{Name: n, Kind: tuple.KindFloat}
	}
	return out
}

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	s, err := c.CreateStream("quotes", cols("price"), true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindStream || !s.Archived || s.Schema.Cols[0].Source != "quotes" {
		t.Fatalf("stream: %+v", s)
	}
	got, err := c.Lookup("quotes")
	if err != nil || got != s {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Fatal("lookup unknown succeeded")
	}
	if err := c.Drop("quotes"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("quotes"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func TestCreateValidation(t *testing.T) {
	c := New()
	if _, err := c.CreateStream("", cols("a"), false); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.CreateStream("s", nil, false); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := c.CreateStream("s", []tuple.Column{{Name: ""}}, false); err == nil {
		t.Fatal("unnamed column accepted")
	}
	if _, err := c.CreateStream("s", cols("a", "a"), false); err == nil {
		t.Fatal("duplicate column accepted")
	}
	_, _ = c.CreateStream("s", cols("a"), false)
	if _, err := c.CreateTable("s", cols("a")); err == nil {
		t.Fatal("duplicate source accepted")
	}
}

func TestTableInsert(t *testing.T) {
	c := New()
	tab, _ := c.CreateTable("t", cols("a", "b"))
	if err := tab.Insert(tuple.New(tab.Schema, tuple.Float(1), tuple.Float(2))); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(tuple.New(tab.Schema, tuple.Float(1))); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if got := tab.Rows(); len(got) != 1 || got[0].Values[1].F != 2 {
		t.Fatalf("rows: %v", got)
	}
	st, _ := c.CreateStream("str", cols("a"), false)
	if err := st.Insert(tuple.New(st.Schema, tuple.Float(1))); err == nil {
		t.Fatal("insert into stream accepted")
	}
}

func TestSeqAssignment(t *testing.T) {
	c := New()
	s, _ := c.CreateStream("s", cols("a"), false)
	if s.NextSeq() != 1 || s.NextSeq() != 2 || s.CurSeq() != 2 {
		t.Fatal("sequence numbers wrong")
	}
}

func TestResolveColumn(t *testing.T) {
	c := New()
	_, _ = c.CreateStream("a", cols("x", "y"), false)
	_, _ = c.CreateStream("b", cols("y", "z"), false)
	src, err := c.ResolveColumn("x", []string{"a", "b"})
	if err != nil || src != "a" {
		t.Fatalf("x: %s %v", src, err)
	}
	if _, err := c.ResolveColumn("y", []string{"a", "b"}); err == nil {
		t.Fatal("ambiguous column resolved")
	}
	if _, err := c.ResolveColumn("w", []string{"a", "b"}); err == nil {
		t.Fatal("unknown column resolved")
	}
	// Restricting the candidate set disambiguates.
	if src, err := c.ResolveColumn("y", []string{"b"}); err != nil || src != "b" {
		t.Fatalf("restricted: %s %v", src, err)
	}
}

func TestNames(t *testing.T) {
	c := New()
	_, _ = c.CreateStream("zebra", cols("a"), false)
	_, _ = c.CreateTable("apple", cols("a"))
	got := c.Names()
	if len(got) != 2 || got[0] != "apple" || got[1] != "zebra" {
		t.Fatalf("names: %v", got)
	}
}
