// Package catalog is TelegraphCQ's metadata store: stream and table
// definitions, their schemas, and column-name resolution for unqualified
// references. It corresponds to the System Catalog inherited from
// PostgreSQL in Figure 4 (one of the components reused "with only
// minimal change").
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// SourceKind distinguishes unbounded streams from static tables.
type SourceKind uint8

const (
	KindStream SourceKind = iota
	KindTable
)

func (k SourceKind) String() string {
	if k == KindTable {
		return "table"
	}
	return "stream"
}

// Source is a named stream or table.
type Source struct {
	Name   string
	Kind   SourceKind
	Schema *tuple.Schema
	// Archived streams are spooled to disk for historical queries.
	Archived bool
	// System marks engine-owned introspection streams (tcq_operators,
	// tcq_queues, tcq_queries): queryable like any stream, fed by the
	// telemetry sampler, and protected from DROP.
	System bool

	mu   sync.RWMutex
	rows []*tuple.Tuple // table contents (streams keep none here)
	seq  int64          // stream: last assigned sequence number
	qos  fjord.QoS      // per-stream overflow policy (zero = drop-newest)
}

// SetQoS installs the stream's overflow policy (DDL WITH options).
func (s *Source) SetQoS(q fjord.QoS) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.qos = q
}

// QoS returns the stream's overflow policy.
func (s *Source) QoS() fjord.QoS {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.qos
}

// Rows returns a snapshot of a table's contents.
func (s *Source) Rows() []*tuple.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*tuple.Tuple(nil), s.rows...)
}

// Insert appends a row to a table.
func (s *Source) Insert(t *tuple.Tuple) error {
	if s.Kind != KindTable {
		return fmt.Errorf("catalog: INSERT into stream %s (use a wrapper)", s.Name)
	}
	if len(t.Values) != s.Schema.Arity() {
		return fmt.Errorf("catalog: %s expects %d values, got %d", s.Name, s.Schema.Arity(), len(t.Values))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, t)
	return nil
}

// NextSeq assigns the next logical sequence number for a stream (tuples
// are stamped at ingress; logical time is per stream).
func (s *Source) NextSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// AdvanceTo accepts a source-assigned logical timestamp (the paper's
// "multiple simultaneous notions of time", §4.1): seq may repeat the
// current instant (simultaneous tuples) but must not move backwards.
func (s *Source) AdvanceTo(seq int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < s.seq {
		return fmt.Errorf("catalog: %s: timestamp %d before current %d", s.Name, seq, s.seq)
	}
	s.seq = seq
	return nil
}

// CurSeq returns the last assigned sequence number.
func (s *Source) CurSeq() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Catalog is the metadata root.
type Catalog struct {
	mu      sync.RWMutex
	sources map[string]*Source
}

// New builds an empty catalog.
func New() *Catalog {
	return &Catalog{sources: map[string]*Source{}}
}

// CreateStream registers a stream with the given columns. Column sources
// are forced to the stream name.
func (c *Catalog) CreateStream(name string, cols []tuple.Column, archived bool) (*Source, error) {
	return c.create(name, cols, KindStream, archived)
}

// CreateTable registers a static table.
func (c *Catalog) CreateTable(name string, cols []tuple.Column) (*Source, error) {
	return c.create(name, cols, KindTable, false)
}

// CreateSystemStream registers an engine-owned introspection stream —
// the Telegraph style of exposing system state as ordinary queryable
// streams. System streams cannot be dropped.
func (c *Catalog) CreateSystemStream(name string, cols []tuple.Column) (*Source, error) {
	s, err := c.create(name, cols, KindStream, false)
	if err != nil {
		return nil, err
	}
	s.System = true
	return s, nil
}

func (c *Catalog) create(name string, cols []tuple.Column, kind SourceKind, archived bool) (*Source, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty source name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: %s has no columns", name)
	}
	qualified := make([]tuple.Column, len(cols))
	seen := map[string]bool{}
	for i, col := range cols {
		if col.Name == "" {
			return nil, fmt.Errorf("catalog: %s column %d unnamed", name, i)
		}
		if seen[col.Name] {
			return nil, fmt.Errorf("catalog: %s: duplicate column %s", name, col.Name)
		}
		seen[col.Name] = true
		col.Source = name
		qualified[i] = col
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.sources[name]; dup {
		return nil, fmt.Errorf("catalog: %s already exists", name)
	}
	s := &Source{Name: name, Kind: kind, Schema: tuple.NewSchema(qualified...), Archived: archived}
	c.sources[name] = s
	return s, nil
}

// Lookup returns the named source.
func (c *Catalog) Lookup(name string) (*Source, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sources[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown stream or table %q", name)
	}
	return s, nil
}

// Drop removes a source definition. System streams are engine-owned and
// cannot be dropped.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sources[name]
	if !ok {
		return fmt.Errorf("catalog: unknown stream or table %q", name)
	}
	if s.System {
		return fmt.Errorf("catalog: %s is a system stream and cannot be dropped", name)
	}
	delete(c.sources, name)
	return nil
}

// Names lists registered sources, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sources))
	for n := range c.sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResolveColumn finds the unique source (among the given candidates)
// defining an unqualified column name.
func (c *Catalog) ResolveColumn(name string, among []string) (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	found := ""
	for _, srcName := range among {
		s, ok := c.sources[srcName]
		if !ok {
			continue
		}
		if _, err := s.Schema.ColumnIndex(srcName, name); err == nil {
			if found != "" {
				return "", fmt.Errorf("catalog: column %q is ambiguous (%s, %s)", name, found, srcName)
			}
			found = srcName
		}
	}
	if found == "" {
		return "", fmt.Errorf("catalog: unknown column %q", name)
	}
	return found, nil
}
