package cacq

import (
	"testing"

	"telegraphcq/internal/expr"
)

// Q0: equi-join stocks.sym = news.sym. Q1: pure Cartesian stocks x news.
// Both share the same SteMs. Q1 must see the full cross product.
func TestCartesianSharesStemWithEquiJoin(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	if err := e.AddQuery(&Query{
		ID:      0,
		Sources: []string{"stocks", "news"},
		Where:   expr.Bin(expr.OpEq, expr.Col("stocks", "sym"), expr.Col("news", "sym")),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery(&Query{
		ID:      1,
		Sources: []string{"stocks", "news"},
	}); err != nil {
		t.Fatal(err)
	}
	_ = e.Push(stock(1, "MSFT", 50))
	_ = e.Push(news(1, "MSFT", 0.9))
	_ = e.Push(news(2, "IBM", 0.5))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.rows[0]); got != 1 {
		t.Errorf("equi-join rows = %d, want 1", got)
	}
	if got := len(s.rows[1]); got != 2 {
		t.Errorf("cartesian rows = %d, want 2 (1 stock x 2 news)", got)
	}
}

// Cartesian alone (control): should work per the PR's fix.
func TestCartesianAlone(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	if err := e.AddQuery(&Query{
		ID:      1,
		Sources: []string{"stocks", "news"},
	}); err != nil {
		t.Fatal(err)
	}
	_ = e.Push(stock(1, "MSFT", 50))
	_ = e.Push(news(1, "MSFT", 0.9))
	_ = e.Push(news(2, "IBM", 0.5))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.rows[1]); got != 2 {
		t.Errorf("cartesian rows = %d, want 2", got)
	}
}
