package cacq

import (
	"fmt"
	"math/rand"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

var stockSchema = tuple.NewSchema(
	tuple.Column{Source: "stocks", Name: "day", Kind: tuple.KindInt},
	tuple.Column{Source: "stocks", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "stocks", Name: "price", Kind: tuple.KindFloat},
)

var newsSchema = tuple.NewSchema(
	tuple.Column{Source: "news", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "news", Name: "score", Kind: tuple.KindFloat},
)

func stock(seq int64, sym string, price float64) *tuple.Tuple {
	t := tuple.New(stockSchema, tuple.Int(seq), tuple.String(sym), tuple.Float(price))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func news(seq int64, sym string, score float64) *tuple.Tuple {
	t := tuple.New(newsSchema, tuple.String(sym), tuple.Float(score))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

type sink struct {
	rows map[int][]*tuple.Tuple
}

func newSink() *sink { return &sink{rows: map[int][]*tuple.Tuple{}} }

func (s *sink) deliver(id int, row *tuple.Tuple) {
	s.rows[id] = append(s.rows[id], row)
}

func TestSingleFilterQuery(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	err := e.AddQuery(&Query{
		ID:      0,
		Sources: []string{"stocks"},
		Where: expr.Bin(expr.OpAnd,
			expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("MSFT"))),
			expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(50)))),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := []*tuple.Tuple{
		stock(1, "MSFT", 60), stock(2, "MSFT", 40),
		stock(3, "IBM", 70), stock(4, "MSFT", 55),
	}
	for _, d := range data {
		if err := e.Push(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.rows[0]) != 2 {
		t.Fatalf("delivered %d rows", len(s.rows[0]))
	}
	if e.Delivered(0) != 2 || e.Stats().Delivered != 2 || e.Stats().Pushed != 4 {
		t.Fatalf("stats: %+v", e.Stats())
	}
}

func TestMultipleQueriesSharedFilters(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	// 50 queries: price > i*2 for query i.
	for i := 0; i < 50; i++ {
		err := e.AddQuery(&Query{
			ID:      i,
			Sources: []string{"stocks"},
			Where:   expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(float64(i*2)))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// One grouped filter serves all 50 queries.
	if len(e.gfilters) != 1 {
		t.Fatalf("grouped filters = %d", len(e.gfilters))
	}
	for seq := int64(1); seq <= 100; seq++ {
		_ = e.Push(stock(seq, "X", float64(seq)))
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Query i receives prices strictly greater than 2i: count = 100 - 2i.
	for i := 0; i < 50; i++ {
		want := 100 - 2*i
		if got := len(s.rows[i]); got != want {
			t.Fatalf("query %d: %d rows, want %d", i, got, want)
		}
	}
}

func TestProjectionAndSelectNames(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	err := e.AddQuery(&Query{
		ID:          0,
		Sources:     []string{"stocks"},
		Select:      []expr.Expr{expr.Col("", "price"), expr.Col("", "day")},
		SelectNames: []string{"closingPrice", "timestamp"},
		Where:       expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("MSFT"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Push(stock(1, "MSFT", 50))
	_ = e.Run()
	rows := s.rows[0]
	if len(rows) != 1 || rows[0].Schema.Arity() != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0].Schema.Cols[0].Name != "closingPrice" || rows[0].Values[0].F != 50 {
		t.Fatalf("row: %v %v", rows[0].Schema, rows[0])
	}
}

func TestJoinQueryAcrossStreams(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	err := e.AddQuery(&Query{
		ID:      0,
		Sources: []string{"stocks", "news"},
		Where: expr.Bin(expr.OpAnd,
			expr.Bin(expr.OpEq, expr.Col("stocks", "sym"), expr.Col("news", "sym")),
			expr.Bin(expr.OpGt, expr.Col("news", "score"), expr.Lit(tuple.Float(0.5)))),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Push(stock(1, "MSFT", 50))
	_ = e.Push(news(1, "MSFT", 0.9))
	_ = e.Push(news(2, "MSFT", 0.1)) // fails score filter
	_ = e.Push(news(3, "IBM", 0.9))  // no stock match
	_ = e.Push(stock(2, "MSFT", 60)) // joins with news seq 1 (0.9)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.rows[0]) != 2 {
		for _, r := range s.rows[0] {
			t.Logf("row: %v", r)
		}
		t.Fatalf("join rows = %d, want 2", len(s.rows[0]))
	}
}

func TestFilterAndJoinQueriesCoexist(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	// q0: filter on stocks only.
	_ = e.AddQuery(&Query{
		ID: 0, Sources: []string{"stocks"},
		Where: expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(0))),
	})
	// q1: join stocks-news.
	_ = e.AddQuery(&Query{
		ID: 1, Sources: []string{"stocks", "news"},
		Where: expr.Bin(expr.OpEq, expr.Col("stocks", "sym"), expr.Col("news", "sym")),
	})
	_ = e.Push(stock(1, "A", 10))
	_ = e.Push(news(1, "A", 1))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// q0 gets the base stock tuple only; q1 gets the join only.
	if len(s.rows[0]) != 1 || s.rows[0][0].Schema.HasSource("news") {
		t.Fatalf("q0 rows: %v", s.rows[0])
	}
	if len(s.rows[1]) != 1 || !s.rows[1][0].Schema.HasSource("news") {
		t.Fatalf("q1 rows: %v", s.rows[1])
	}
}

func TestAggregateQuery(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	// Paper example 3: AVG(price) for MSFT over 5-day windows hopping 5.
	err := e.AddQuery(&Query{
		ID:        0,
		Sources:   []string{"stocks"},
		Where:     expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("MSFT"))),
		Window:    window.Sliding("stocks", 5, 5, 10),
		Aggs:      []operator.AggSpec{{Kind: operator.AggAvg, Arg: expr.Col("", "price")}},
		StartTime: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 11; seq++ {
		_ = e.Push(stock(seq, "MSFT", float64(seq)))
		_ = e.Push(stock(seq, "IBM", 1000)) // filtered out
		_ = e.Run()
	}
	rows := s.rows[0]
	if len(rows) != 2 {
		t.Fatalf("agg rows = %d", len(rows))
	}
	if rows[0].Values[1].F != 3 || rows[1].Values[1].F != 8 {
		t.Fatalf("avgs: %v %v", rows[0], rows[1])
	}
}

func TestWindowedJoinEvictsStems(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	err := e.AddQuery(&Query{
		ID:      0,
		Sources: []string{"stocks", "news"},
		Where:   expr.Bin(expr.OpEq, expr.Col("stocks", "sym"), expr.Col("news", "sym")),
		Window: &window.Spec{
			Domain: tuple.LogicalTime,
			Init:   window.STExpr(0),
			Cond:   window.Cond{Op: window.CondTrue},
			Step:   1,
			Defs: []window.Def{
				{Stream: "stocks", Left: window.TExpr(-4), Right: window.TExpr(0)},
				{Stream: "news", Left: window.TExpr(-4), Right: window.TExpr(0)},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 100; seq++ {
		_ = e.Push(stock(seq, fmt.Sprintf("s%d", seq), 1))
		_ = e.Push(news(seq, fmt.Sprintf("s%d", seq+1000), 1))
		_ = e.Run()
	}
	// Retention width 5: stems hold at most the last 5 sequence numbers.
	if size := e.stems["stocks"].SteM().Size(); size > 5 {
		t.Fatalf("stocks stem = %d tuples, want <= 5", size)
	}
	if size := e.stems["news"].SteM().Size(); size > 5 {
		t.Fatalf("news stem = %d tuples, want <= 5", size)
	}
}

func TestRemoveQueryStopsDelivery(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	_ = e.AddQuery(&Query{
		ID: 0, Sources: []string{"stocks"},
		Where: expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(0))),
	})
	_ = e.AddQuery(&Query{
		ID: 1, Sources: []string{"stocks"},
		Where: expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(0))),
	})
	_ = e.Push(stock(1, "A", 1))
	_ = e.Run()
	e.RemoveQuery(0)
	_ = e.Push(stock(2, "A", 1))
	_ = e.Run()
	if len(s.rows[0]) != 1 {
		t.Fatalf("q0 rows after removal = %d", len(s.rows[0]))
	}
	if len(s.rows[1]) != 2 {
		t.Fatalf("q1 rows = %d", len(s.rows[1]))
	}
	if e.QueryCount() != 1 {
		t.Fatalf("QueryCount = %d", e.QueryCount())
	}
}

func TestResidualPredicate(t *testing.T) {
	// An OR factor cannot enter a grouped filter; it must still be
	// enforced (at delivery).
	s := newSink()
	e := NewEngine(nil, s.deliver)
	_ = e.AddQuery(&Query{
		ID: 0, Sources: []string{"stocks"},
		Where: expr.Bin(expr.OpOr,
			expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("A"))),
			expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("B")))),
	})
	for i, sym := range []string{"A", "B", "C"} {
		_ = e.Push(stock(int64(i+1), sym, 1))
	}
	_ = e.Run()
	if len(s.rows[0]) != 2 {
		t.Fatalf("rows = %d", len(s.rows[0]))
	}
}

func TestPushErrors(t *testing.T) {
	e := NewEngine(nil, func(int, *tuple.Tuple) {})
	// No queries: pushes are dropped silently.
	if err := e.Push(stock(1, "A", 1)); err != nil {
		t.Fatal(err)
	}
	// Multi-source tuple rejected.
	j := tuple.Concat(stock(1, "A", 1), news(1, "A", 1))
	if err := e.Push(j); err == nil {
		t.Fatal("multi-source push accepted")
	}
}

func TestAddQueryErrors(t *testing.T) {
	e := NewEngine(nil, func(int, *tuple.Tuple) {})
	if err := e.AddQuery(&Query{ID: 0}); err == nil {
		t.Fatal("no sources accepted")
	}
	_ = e.AddQuery(&Query{ID: 1, Sources: []string{"stocks"}})
	if err := e.AddQuery(&Query{ID: 1, Sources: []string{"stocks"}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := e.AddQuery(&Query{
		ID: 2, Sources: []string{"stocks"},
		Aggs: []operator.AggSpec{{Kind: operator.AggCount}},
	}); err == nil {
		t.Fatal("aggregate without window accepted")
	}
}

// Shared vs unshared ground truth: the shared engine must deliver the
// same rows per query as one isolated engine per query.
func TestSharedMatchesUnshared(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	syms := []string{"A", "B", "C", "D"}
	const nq = 16
	mkQuery := func(i int) *Query {
		return &Query{
			ID:      i,
			Sources: []string{"stocks"},
			Where: expr.Bin(expr.OpAnd,
				expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String(syms[i%len(syms)]))),
				expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(float64(i))))),
		}
	}
	var data []*tuple.Tuple
	for seq := int64(1); seq <= 500; seq++ {
		data = append(data, stock(seq, syms[r.Intn(len(syms))], float64(r.Intn(30))))
	}

	shared := newSink()
	se := NewEngine(nil, shared.deliver)
	for i := 0; i < nq; i++ {
		if err := se.AddQuery(mkQuery(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range data {
		_ = se.Push(d.Clone())
		_ = se.Run()
	}

	for i := 0; i < nq; i++ {
		solo := newSink()
		ue := NewEngine(nil, solo.deliver)
		if err := ue.AddQuery(mkQuery(i)); err != nil {
			t.Fatal(err)
		}
		for _, d := range data {
			_ = ue.Push(d.Clone())
			_ = ue.Run()
		}
		if len(solo.rows[i]) != len(shared.rows[i]) {
			t.Fatalf("query %d: shared=%d unshared=%d rows",
				i, len(shared.rows[i]), len(solo.rows[i]))
		}
	}
}

func TestFlushClosesAggregates(t *testing.T) {
	s := newSink()
	e := NewEngine(nil, s.deliver)
	_ = e.AddQuery(&Query{
		ID:      0,
		Sources: []string{"stocks"},
		Window:  window.Landmark("stocks", 1, 5, 5),
		Aggs:    []operator.AggSpec{{Kind: operator.AggCount}},
	})
	for seq := int64(1); seq <= 5; seq++ {
		_ = e.Push(stock(seq, "A", 1))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(s.rows[0]) != 1 || s.rows[0][0].Values[1].I != 5 {
		t.Fatalf("flush rows: %v", s.rows[0])
	}
}
