// Package cacq implements Continuously Adaptive Continuous Queries
// (Madden et al., SIGMOD 2002; §3.1 of the TelegraphCQ paper): a single
// Eddy executes the "super-query" that is the disjunction of all
// registered client queries. Per-tuple lineage (the Queries bitmap)
// records which clients remain interested; grouped filters evaluate all
// single-variable boolean factors over an attribute at once; SteMs are
// shared across every query that joins the same pair of streams.
package cacq

import (
	"fmt"
	"math"
	"sort"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/expr/prog"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// Query is one client continuous query registered with the engine.
type Query struct {
	// ID is the client-assigned identifier; it indexes lineage bitmaps
	// and must be small and unique within the engine.
	ID int
	// Select lists output expressions (ignored when Aggs is set).
	Select []expr.Expr
	// SelectNames optionally names the output columns.
	SelectNames []string
	// Where is the full predicate; the engine decomposes it into
	// grouped-filter factors, SteM join factors, and a residual.
	Where expr.Expr
	// Sources is the query footprint: the streams/tables it reads.
	Sources []string
	// Window, when set, scopes join state and drives aggregates.
	Window *window.Spec
	// GroupBy and Aggs turn the query into a windowed aggregate.
	GroupBy []*expr.ColumnRef
	Aggs    []operator.AggSpec
	// StartTime binds ST in the window's for-loop.
	StartTime int64
}

// Footprint returns the sorted source set (query-class key, §4.2.2).
func (q *Query) Footprint() []string {
	fp := append([]string(nil), q.Sources...)
	sort.Strings(fp)
	return fp
}

// Deliver receives one result row for one query.
type Deliver func(queryID int, row *tuple.Tuple)

// registered is the engine-side state of one query.
type registered struct {
	q        *Query
	fpKey    string
	residual expr.Expr
	// resid is the compiled form of residual (nil when interpreting).
	resid   *prog.PredCache
	project *operator.Project
	agg      *operator.WindowAgg
	// retention is the per-source tuple retention width implied by the
	// query's window (math.MaxInt64 = keep forever).
	retention map[string]int64
	// delivered counts result rows; touched only by the owning EO.
	delivered int64
}

// Engine is a shared CACQ dataflow over one query class.
type Engine struct {
	ed       *eddy.Eddy
	deliver  Deliver
	gfilters map[string]*operator.GroupedFilter // per qualified column
	stems    map[string]*operator.StemModule    // per source
	queries  map[int]*registered
	// interest maps source → bitset of query IDs reading it.
	interest map[string]*bitset.Set
	maxSeq   map[string]int64

	// compiled selects the expression path: bytecode programs over
	// columnar batches (default), or the tree-walking interpreter
	// (WITH (compiled=off), the oracle's reference sweep).
	compiled bool

	stats EngineStats
}

// EngineStats is a snapshot of engine-level activity.
type EngineStats struct {
	Pushed    int64
	Delivered int64
}

// QueryInfo is the introspectable state of one registered query.
type QueryInfo struct {
	ID        int
	Sources   []string
	Delivered int64
}

// Introspection is a snapshot of the engine's shared state: grouped
// filters, SteM modules, and registered queries. Like every engine
// accessor it must be taken on the owning Execution Object's thread;
// telemetry reaches it through the EO's control channel.
type Introspection struct {
	Filters []*operator.GroupedFilter
	Stems   []*operator.StemModule
	Queries []QueryInfo
}

// NewEngine builds an empty shared engine. policy nil defaults to a
// lottery with seed 1.
func NewEngine(policy eddy.Policy, deliver Deliver) *Engine {
	if policy == nil {
		policy = eddy.NewLottery(1)
	}
	e := &Engine{
		deliver:  deliver,
		gfilters: map[string]*operator.GroupedFilter{},
		stems:    map[string]*operator.StemModule{},
		queries:  map[int]*registered{},
		interest: map[string]*bitset.Set{},
		maxSeq:   map[string]int64{},
		compiled: true,
	}
	e.ed = eddy.New(nil, policy, e.output)
	e.ed.Vectorized = true
	return e
}

// SetCompiled toggles compiled expression evaluation for the whole
// engine: the eddy's vectorized batch path plus compiled residual and
// projection evaluation. Queries already registered are retargeted.
func (e *Engine) SetCompiled(on bool) {
	e.compiled = on
	e.ed.Vectorized = on
	for _, r := range e.queries {
		if on && r.residual != nil {
			r.resid = prog.NewPredCache(r.residual)
		} else {
			r.resid = nil
		}
		if r.project != nil {
			r.project.SetCompiled(on)
		}
	}
}

// Eddy exposes the underlying router (stats, knobs).
func (e *Engine) Eddy() *eddy.Eddy { return e.ed }

// Stats returns a snapshot of engine counters. Must be called from the
// owning Execution Object's thread.
func (e *Engine) Stats() EngineStats { return e.stats }

// QueryCount returns the number of registered queries.
func (e *Engine) QueryCount() int { return len(e.queries) }

// Introspect builds a fresh snapshot of shared modules and registered
// queries. Must be called from the owning Execution Object's thread;
// telemetry scrapers reach it through the EO's control channel.
func (e *Engine) Introspect() *Introspection {
	in := &Introspection{}
	for _, g := range e.gfilters {
		in.Filters = append(in.Filters, g)
	}
	sort.Slice(in.Filters, func(i, j int) bool { return in.Filters[i].Name() < in.Filters[j].Name() })
	for _, sm := range e.stems {
		in.Stems = append(in.Stems, sm)
	}
	sort.Slice(in.Stems, func(i, j int) bool { return in.Stems[i].Name() < in.Stems[j].Name() })
	for id, r := range e.queries {
		in.Queries = append(in.Queries, QueryInfo{ID: id, Sources: r.q.Footprint(), Delivered: r.delivered})
	}
	sort.Slice(in.Queries, func(i, j int) bool { return in.Queries[i].ID < in.Queries[j].ID })
	return in
}

// AddQuery registers q: its boolean factors are folded into the shared
// grouped filters and SteMs, and its bit joins the interest set of each
// source it reads.
func (e *Engine) AddQuery(q *Query) error {
	if _, dup := e.queries[q.ID]; dup {
		return fmt.Errorf("cacq: duplicate query id %d", q.ID)
	}
	if len(q.Sources) == 0 {
		return fmt.Errorf("cacq: query %d has no sources", q.ID)
	}
	r := &registered{q: q, retention: map[string]int64{}}
	fp := q.Footprint()
	r.fpKey = fmt.Sprint(fp)

	// Decompose the predicate.
	var residuals []expr.Expr
	var joinFactors []expr.JoinFactor
	for _, factor := range expr.Conjuncts(q.Where) {
		if rf, ok := expr.AsRangeFactor(factor); ok {
			col := rf.Col
			if col.Source == "" && len(q.Sources) == 1 {
				// Qualify unqualified columns on single-source queries so
				// grouped filters shared across queries agree on the key.
				col = expr.Col(q.Sources[0], col.Name)
				rf.Col = col
			}
			g := e.gfilters[col.String()]
			if g == nil {
				g = operator.NewGroupedFilter(col)
				e.gfilters[col.String()] = g
				e.ed.AddModule(g)
			}
			if err := g.AddFactor(q.ID, rf); err != nil {
				return err
			}
			continue
		}
		if jf, ok := expr.AsJoinFactor(factor); ok && jf.Left.Source != "" &&
			jf.Right.Source != "" && jf.Left.Source != jf.Right.Source {
			joinFactors = append(joinFactors, jf)
			continue
		}
		residuals = append(residuals, factor)
	}
	r.residual = expr.Conjoin(residuals)
	if e.compiled && r.residual != nil {
		r.resid = prog.NewPredCache(r.residual)
	}

	// Join factors: ensure a SteM per joined source, register factors.
	for _, jf := range joinFactors {
		for _, side := range []*expr.ColumnRef{jf.Left, jf.Right} {
			sm := e.stems[side.Source]
			if sm == nil {
				var keyExpr expr.Expr
				var indexCol *expr.ColumnRef
				if jf.Op == expr.OpEq {
					keyExpr = expr.Col(side.Source, side.Name)
					indexCol = expr.Col(side.Source, side.Name)
				}
				sm = operator.NewStemModule(side.Source, stem.New(side.Source, keyExpr), nil, indexCol)
				e.stems[side.Source] = sm
				e.ed.AddModule(sm)
			}
			sm.AddFactor(jf)
		}
	}

	// Source pairs no join factor links are Cartesian: without SteMs the
	// pair would never form and the query would silently emit nothing.
	// Give each side a match-all probe against the other.
	if len(q.Sources) > 1 {
		linked := map[string]bool{}
		for _, jf := range joinFactors {
			linked[jf.Left.Source+"\x00"+jf.Right.Source] = true
			linked[jf.Right.Source+"\x00"+jf.Left.Source] = true
		}
		for i, a := range q.Sources {
			for _, b := range q.Sources[i+1:] {
				if linked[a+"\x00"+b] {
					continue
				}
				for _, pair := range [][2]string{{a, b}, {b, a}} {
					sm := e.stems[pair[0]]
					if sm == nil {
						sm = operator.NewStemModule(pair[0], stem.New(pair[0], nil), nil, nil)
						e.stems[pair[0]] = sm
						e.ed.AddModule(sm)
					}
					sm.AddCross(pair[1])
				}
			}
		}
	}

	// Window: retention per source and optional aggregate.
	if q.Window != nil {
		if err := q.Window.Validate(); err != nil {
			return fmt.Errorf("cacq: query %d window: %w", q.ID, err)
		}
		// Per-definition retention: the two sides of a band join may
		// declare different widths, and eviction must honor each.
		for _, d := range q.Window.Defs {
			r.retention[d.Stream] = q.Window.Retention(d.Stream)
		}
	}
	if len(q.Aggs) > 0 {
		if q.Window == nil || len(q.Sources) != 1 {
			return fmt.Errorf("cacq: query %d: aggregates need a window over a single stream", q.ID)
		}
		agg, err := operator.NewWindowAgg(fmt.Sprintf("q%d.agg", q.ID),
			q.Sources[0], q.Window, q.StartTime, q.GroupBy, q.Aggs, operator.StrategyAuto)
		if err != nil {
			return err
		}
		r.agg = agg
	} else if len(q.Select) > 0 {
		r.project = operator.NewProject(fmt.Sprintf("q%d", q.ID), q.Select, q.SelectNames)
		if !e.compiled {
			r.project.SetCompiled(false)
		}
	}

	for _, src := range q.Sources {
		in := e.interest[src]
		if in == nil {
			in = bitset.New(q.ID + 1)
			e.interest[src] = in
		}
		in.Add(q.ID)
	}
	e.queries[q.ID] = r
	return nil
}

// RemoveQuery deregisters a query; its grouped-filter factors are
// deleted and its interest bits cleared. In-flight tuples may still
// carry its bit; delivery drops rows for unknown queries.
func (e *Engine) RemoveQuery(id int) {
	r, ok := e.queries[id]
	if !ok {
		return
	}
	delete(e.queries, id)
	for _, g := range e.gfilters {
		g.RemoveQuery(id)
	}
	for _, src := range r.q.Sources {
		if in := e.interest[src]; in != nil {
			in.Remove(id)
		}
	}
}

// Push admits one source tuple. The tuple's schema must name its source
// stream; its Queries lineage is initialized to the interest set.
func (e *Engine) Push(t *tuple.Tuple) error {
	if len(t.Schema.Sources) != 1 {
		return fmt.Errorf("cacq: pushed tuple must have exactly one source, got %v", t.Schema.Sources)
	}
	src := t.Schema.Sources[0]
	in := e.interest[src]
	if in == nil || in.Empty() {
		tuple.Recycle(t) // no query reads this stream; Push owns the tuple
		return nil
	}
	t.Lineage().Queries.CopyFrom(in)
	e.stats.Pushed++
	if t.TS.Seq > e.maxSeq[src] {
		e.maxSeq[src] = t.TS.Seq
	}
	if err := e.ed.Admit(t); err != nil {
		return err
	}
	e.evict(src)
	return nil
}

// AdvanceSeq raises a source's sequence high-water mark without pushing
// a tuple, applying any window eviction the advance implies. Sharded
// executors use it to keep every shard's eviction horizon on the global
// stream frontier: a shard only receives its hash class of a stream's
// tuples, so its own maxSeq would lag and stale SteM state would answer
// probes a single-shard engine would never match. Must be called from
// the engine's owning thread.
func (e *Engine) AdvanceSeq(src string, seq int64) {
	if seq <= e.maxSeq[src] {
		return
	}
	e.maxSeq[src] = seq
	e.evict(src)
}

// evict drops SteM state no window can reach anymore: tuples older than
// maxSeq − (largest retention over queries reading src) + 1.
func (e *Engine) evict(src string) {
	sm := e.stems[src]
	if sm == nil {
		return
	}
	maxRet := int64(0)
	anyQuery := false
	for _, r := range e.queries {
		for _, qsrc := range r.q.Sources {
			if qsrc != src {
				continue
			}
			anyQuery = true
			ret, ok := r.retention[src]
			if !ok {
				ret = math.MaxInt64 // unwindowed join: keep everything
			}
			if ret > maxRet {
				maxRet = ret
			}
		}
	}
	if !anyQuery || maxRet == math.MaxInt64 || maxRet == 0 {
		return
	}
	horizon := e.maxSeq[src] - maxRet + 1
	if horizon > 0 {
		sm.EvictBefore(horizon)
	}
}

// Run processes all queued work to quiescence.
func (e *Engine) Run() error { return e.ed.RunUntilIdle(0) }

// Flush ends the input streams and drains all state.
func (e *Engine) Flush() error {
	if err := e.ed.Flush(); err != nil {
		return err
	}
	// Close per-query aggregates.
	for id, r := range e.queries {
		if r.agg != nil {
			if err := r.agg.Flush(e.aggEmit(id, r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// output is the eddy's completion callback: demultiplex to queries.
// The engine owns the completed tuple here: consumers that keep it
// (raw deliveries, window buffers) retain it inside deliverTo, so the
// trailing Recycle returns only truly retired tuples to the pool.
func (e *Engine) output(t *tuple.Tuple) {
	if t.Lin == nil {
		tuple.Recycle(t)
		return
	}
	srcs := t.Schema.Sources
	t.Lin.Queries.ForEach(func(id int) bool {
		r, ok := e.queries[id]
		if !ok {
			return true // query left the system
		}
		// Exact footprint match: a query over {S} must not receive
		// {S,T} join tuples and vice versa.
		if !sameSources(srcs, r.q.Sources) {
			return true
		}
		e.deliverTo(id, r, t)
		return true
	})
	tuple.Recycle(t)
}

func sameSources(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (e *Engine) deliverTo(id int, r *registered, t *tuple.Tuple) {
	if r.residual != nil {
		var ok bool
		var err error
		if r.resid != nil {
			ok, err = r.resid.Truthy(t) // compiled, interpreter fallback
		} else {
			ok, err = expr.Truthy(r.residual, t)
		}
		if err != nil || !ok {
			return
		}
	}
	if r.agg != nil {
		t.Retain() // the window buffer keeps the row until the window closes
		_, _ = r.agg.Process(t, e.aggEmit(id, r))
		return
	}
	row := t
	if r.project != nil {
		var err error
		row, err = r.project.Apply(t)
		if err != nil {
			return
		}
	} else {
		// Raw delivery shares the completed tuple itself — possibly with
		// several queries' subscriptions and spools — so it must never be
		// recycled. Projected rows are fresh per query and stay eligible.
		t.Retain()
	}
	r.delivered++
	e.stats.Delivered++
	e.deliver(id, row)
}

func (e *Engine) aggEmit(id int, r *registered) operator.Emit {
	return func(row *tuple.Tuple) {
		r.delivered++
		e.stats.Delivered++
		e.deliver(id, row)
	}
}

// Delivered returns the per-query delivered row count.
func (e *Engine) Delivered(id int) int64 {
	if r, ok := e.queries[id]; ok {
		return r.delivered
	}
	return 0
}
