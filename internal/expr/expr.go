// Package expr provides the typed expression trees used in predicates,
// projections, and window bounds. Because an Eddy changes join order
// continuously, intermediate tuples arrive in "a multitude of formats"
// (§4.2.2): expressions therefore resolve column references against each
// tuple's own schema at evaluation time, with a lock-free fixed-size
// cache keyed by schema identity so the hot path stays cheap even when
// one shared plan expression alternates between intermediate formats.
package expr

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"telegraphcq/internal/tuple"
)

// Expr is a node in an expression tree.
type Expr interface {
	// Eval computes the expression over t. Type errors surface as Go
	// errors; SQL three-valued logic maps NULL-involving comparisons to
	// false (sufficient for the CQ dialect, which has no IS NULL).
	Eval(t *tuple.Tuple) (tuple.Value, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// ---------------------------------------------------------------- column

// ColumnRef names a column, optionally qualified by stream/alias.
type ColumnRef struct {
	Source string
	Name   string
	cache  atomic.Pointer[colCacheSet]
}

type colCache struct {
	schema *tuple.Schema
	idx    int
}

// colCacheSize is the number of schema resolutions one ColumnRef
// remembers. A plan expression shared across eddy shards sees each
// shard's intermediate formats interleaved; a single-entry cache
// ping-pongs between them, so keep a small working set instead.
const colCacheSize = 4

// colCacheSet is an immutable snapshot of recent resolutions; Resolve
// publishes a fresh copy on miss (lost updates only cost a re-lookup).
type colCacheSet struct {
	n       int // ring cursor for the next insertion
	entries [colCacheSize]colCache
}

// Col returns a column reference expression.
func Col(source, name string) *ColumnRef {
	return &ColumnRef{Source: source, Name: name}
}

// Resolve returns the column index of the reference in s.
func (c *ColumnRef) Resolve(s *tuple.Schema) (int, error) {
	cs := c.cache.Load()
	if cs != nil {
		for i := range cs.entries {
			if cs.entries[i].schema == s {
				return cs.entries[i].idx, nil
			}
		}
	}
	i, err := s.ColumnIndex(c.Source, c.Name)
	if err != nil {
		return -1, err
	}
	next := &colCacheSet{}
	if cs != nil {
		*next = *cs
	}
	next.entries[next.n%colCacheSize] = colCache{schema: s, idx: i}
	next.n++
	c.cache.Store(next)
	return i, nil
}

func (c *ColumnRef) Eval(t *tuple.Tuple) (tuple.Value, error) {
	i, err := c.Resolve(t.Schema)
	if err != nil {
		return tuple.Null(), err
	}
	return t.Values[i], nil
}

func (c *ColumnRef) String() string {
	if c.Source == "" {
		return c.Name
	}
	return c.Source + "." + c.Name
}

// --------------------------------------------------------------- literal

// Literal is a constant value.
type Literal struct{ V tuple.Value }

// Lit wraps a value as an expression.
func Lit(v tuple.Value) Literal { return Literal{V: v} }

func (l Literal) Eval(*tuple.Tuple) (tuple.Value, error) { return l.V, nil }

func (l Literal) String() string {
	if l.V.K == tuple.KindString {
		return "'" + strings.ReplaceAll(l.V.S, "'", "''") + "'"
	}
	return l.V.String()
}

// ---------------------------------------------------------------- binary

// Op enumerates binary operators.
type Op uint8

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var opNames = map[Op]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
}

func (o Op) String() string { return opNames[o] }

// IsComparison reports whether o is a comparison operator.
func (o Op) IsComparison() bool { return o <= OpGe }

// Negate returns the complementary comparison (used when a grouped filter
// normalizes "literal OP column" into "column OP' literal").
func (o Op) Negate() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return o // =, != are symmetric
	}
}

// Binary applies Op to two sub-expressions.
type Binary struct {
	Op          Op
	Left, Right Expr
}

// Bin builds a binary expression.
func Bin(op Op, l, r Expr) *Binary { return &Binary{Op: op, Left: l, Right: r} }

func (b *Binary) Eval(t *tuple.Tuple) (tuple.Value, error) {
	// Short-circuit boolean connectives.
	if b.Op == OpAnd || b.Op == OpOr {
		lv, err := b.Left.Eval(t)
		if err != nil {
			return tuple.Null(), err
		}
		lb, err := TruthValue(b.Op, lv)
		if err != nil {
			return tuple.Null(), err
		}
		if b.Op == OpAnd && !lb {
			return tuple.Bool(false), nil
		}
		if b.Op == OpOr && lb {
			return tuple.Bool(true), nil
		}
		rv, err := b.Right.Eval(t)
		if err != nil {
			return tuple.Null(), err
		}
		rb, err := TruthValue(b.Op, rv)
		if err != nil {
			return tuple.Null(), err
		}
		return tuple.Bool(rb), nil
	}

	lv, err := b.Left.Eval(t)
	if err != nil {
		return tuple.Null(), err
	}
	rv, err := b.Right.Eval(t)
	if err != nil {
		return tuple.Null(), err
	}

	if b.Op.IsComparison() {
		return Comparison(b.Op, lv, rv)
	}

	return Arith(b.Op, lv, rv)
}

// TruthValue maps an AND/OR operand to its truth value: booleans as
// themselves, NULL as false (SQL unknown), anything else a type error —
// consistent with the comparison path, which also rejects mixed kinds.
func TruthValue(op Op, v tuple.Value) (bool, error) {
	switch v.K {
	case tuple.KindBool:
		return v.B, nil
	case tuple.KindNull:
		return false, nil
	default:
		return false, fmt.Errorf("boolean operator %s on %s", op, v.K)
	}
}

// Comparison applies a comparison operator to two already-evaluated
// values. Shared by the interpreter and the compiled bytecode path so
// their semantics cannot diverge.
func Comparison(op Op, lv, rv tuple.Value) (tuple.Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return tuple.Bool(false), nil // SQL unknown → false
	}
	cmp, ok := tuple.Compare(lv, rv)
	if !ok {
		return tuple.Null(), fmt.Errorf("cannot compare %s with %s", lv.K, rv.K)
	}
	var res bool
	switch op {
	case OpEq:
		res = cmp == 0
	case OpNe:
		res = cmp != 0
	case OpLt:
		res = cmp < 0
	case OpLe:
		res = cmp <= 0
	case OpGt:
		res = cmp > 0
	case OpGe:
		res = cmp >= 0
	}
	return tuple.Bool(res), nil
}

// Arith applies an arithmetic operator to two already-evaluated values.
// Shared by the interpreter and the compiled bytecode path.
func Arith(op Op, lv, rv tuple.Value) (tuple.Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return tuple.Null(), nil
	}
	if !lv.Numeric() || !rv.Numeric() {
		return tuple.Null(), fmt.Errorf("arithmetic on %s and %s", lv.K, rv.K)
	}
	// Integer arithmetic when both sides are integral.
	if lv.K != tuple.KindFloat && rv.K != tuple.KindFloat {
		a, b := lv.AsInt(), rv.AsInt()
		switch op {
		case OpAdd:
			return tuple.Int(a + b), nil
		case OpSub:
			return tuple.Int(a - b), nil
		case OpMul:
			return tuple.Int(a * b), nil
		case OpDiv:
			if b == 0 {
				return tuple.Null(), fmt.Errorf("division by zero")
			}
			return tuple.Int(a / b), nil
		case OpMod:
			if b == 0 {
				return tuple.Null(), fmt.Errorf("division by zero")
			}
			return tuple.Int(a % b), nil
		}
	}
	a, b := lv.AsFloat(), rv.AsFloat()
	switch op {
	case OpAdd:
		return tuple.Float(a + b), nil
	case OpSub:
		return tuple.Float(a - b), nil
	case OpMul:
		return tuple.Float(a * b), nil
	case OpDiv:
		if b == 0 {
			return tuple.Null(), fmt.Errorf("division by zero")
		}
		return tuple.Float(a / b), nil
	case OpMod:
		if b == 0 {
			// Keep parity with the integer path: math.Mod(a, 0) would
			// silently yield NaN where `x % 0` raises.
			return tuple.Null(), fmt.Errorf("division by zero")
		}
		return tuple.Float(math.Mod(a, b)), nil
	}
	return tuple.Null(), fmt.Errorf("unknown operator %v", op)
}

func (b *Binary) String() string {
	return "(" + b.Left.String() + " " + b.Op.String() + " " + b.Right.String() + ")"
}

// ----------------------------------------------------------------- unary

// Unary applies NOT or numeric negation.
type Unary struct {
	Neg   bool // true: arithmetic negation; false: logical NOT
	Child Expr
}

// Not negates a boolean expression.
func Not(e Expr) *Unary { return &Unary{Neg: false, Child: e} }

// Neg negates a numeric expression.
func Neg(e Expr) *Unary { return &Unary{Neg: true, Child: e} }

func (u *Unary) Eval(t *tuple.Tuple) (tuple.Value, error) {
	v, err := u.Child.Eval(t)
	if err != nil {
		return tuple.Null(), err
	}
	if u.Neg {
		return Negate(v)
	}
	return NotValue(v)
}

// Negate applies arithmetic negation to an already-evaluated value.
// Shared by the interpreter and the compiled bytecode path.
func Negate(v tuple.Value) (tuple.Value, error) {
	switch v.K {
	case tuple.KindInt:
		return tuple.Int(-v.I), nil
	case tuple.KindFloat:
		return tuple.Float(-v.F), nil
	case tuple.KindNull:
		return v, nil
	default:
		return tuple.Null(), fmt.Errorf("negation of %s", v.K)
	}
}

// NotValue applies logical NOT to an already-evaluated value. Shared by
// the interpreter and the compiled bytecode path.
func NotValue(v tuple.Value) (tuple.Value, error) {
	if v.K != tuple.KindBool {
		if v.IsNull() {
			return tuple.Bool(false), nil
		}
		return tuple.Null(), fmt.Errorf("NOT of %s", v.K)
	}
	return tuple.Bool(!v.B), nil
}

func (u *Unary) String() string {
	if u.Neg {
		return "-" + u.Child.String()
	}
	return "NOT " + u.Child.String()
}

// ------------------------------------------------------------- predicate

// Truthy evaluates e as a predicate: true iff it yields boolean true.
func Truthy(e Expr, t *tuple.Tuple) (bool, error) {
	v, err := e.Eval(t)
	if err != nil {
		return false, err
	}
	return v.K == tuple.KindBool && v.B, nil
}
