package expr

import (
	"fmt"

	"telegraphcq/internal/tuple"
)

// Conjuncts splits a WHERE clause into its top-level boolean factors
// (CACQ §3.1 decomposes each query this way before insertion into
// grouped filters and SteMs).
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// Conjoin rebuilds a single expression from boolean factors; nil if empty.
func Conjoin(factors []Expr) Expr {
	var out Expr
	for _, f := range factors {
		if out == nil {
			out = f
		} else {
			out = Bin(OpAnd, out, f)
		}
	}
	return out
}

// Columns appends every column reference in e to dst and returns it.
func Columns(e Expr, dst []*ColumnRef) []*ColumnRef {
	switch x := e.(type) {
	case *ColumnRef:
		return append(dst, x)
	case *Binary:
		return Columns(x.Right, Columns(x.Left, dst))
	case *Unary:
		return Columns(x.Child, dst)
	default:
		return dst
	}
}

// Sources returns the distinct set of source names referenced by e, given
// the schema-resolution context. Columns with explicit qualifiers report
// their qualifier; unqualified columns are resolved via resolve, which
// maps a bare column name to its source (the catalog provides this).
func Sources(e Expr, resolve func(name string) (string, error)) (map[string]bool, error) {
	out := map[string]bool{}
	for _, c := range Columns(e, nil) {
		src := c.Source
		if src == "" {
			var err error
			src, err = resolve(c.Name)
			if err != nil {
				return nil, err
			}
		}
		out[src] = true
	}
	return out, nil
}

// RangeFactor is a single-variable boolean factor normalized to
// "column OP constant" — the unit a grouped filter indexes (CACQ §3.1).
type RangeFactor struct {
	Col *ColumnRef
	Op  Op // comparison with the constant on the right
	Val tuple.Value
}

func (rf RangeFactor) String() string {
	return fmt.Sprintf("%s %s %s", rf.Col.String(), rf.Op, Lit(rf.Val).String())
}

// Matches reports whether value v satisfies the factor.
func (rf RangeFactor) Matches(v tuple.Value) bool {
	if v.IsNull() || rf.Val.IsNull() {
		return false
	}
	cmp, ok := tuple.Compare(v, rf.Val)
	if !ok {
		return false
	}
	switch rf.Op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// AsRangeFactor recognizes boolean factors of the shape
// "column OP literal" or "literal OP column" (after normalization).
// ok is false for anything else (ORs, multi-column factors, arithmetic).
func AsRangeFactor(e Expr) (RangeFactor, bool) {
	b, isBin := e.(*Binary)
	if !isBin || !b.Op.IsComparison() {
		return RangeFactor{}, false
	}
	if c, okc := b.Left.(*ColumnRef); okc {
		if l, okl := literalOf(b.Right); okl {
			return RangeFactor{Col: c, Op: b.Op, Val: l}, true
		}
	}
	if c, okc := b.Right.(*ColumnRef); okc {
		if l, okl := literalOf(b.Left); okl {
			return RangeFactor{Col: c, Op: b.Op.Negate(), Val: l}, true
		}
	}
	return RangeFactor{}, false
}

func literalOf(e Expr) (tuple.Value, bool) {
	switch x := e.(type) {
	case Literal:
		return x.V, true
	case *Unary:
		if x.Neg {
			if v, ok := literalOf(x.Child); ok && v.Numeric() {
				if v.K == tuple.KindInt {
					return tuple.Int(-v.I), true
				}
				return tuple.Float(-v.F), true
			}
		}
	}
	return tuple.Null(), false
}

// JoinFactor is a boolean factor of the shape "colA OP colB" where the
// two columns come from different sources — the unit routed to SteMs.
type JoinFactor struct {
	Op          Op
	Left, Right *ColumnRef
}

func (jf JoinFactor) String() string {
	return fmt.Sprintf("%s %s %s", jf.Left.String(), jf.Op, jf.Right.String())
}

// AsJoinFactor recognizes "column OP column" boolean factors.
func AsJoinFactor(e Expr) (JoinFactor, bool) {
	b, isBin := e.(*Binary)
	if !isBin || !b.Op.IsComparison() {
		return JoinFactor{}, false
	}
	l, okl := b.Left.(*ColumnRef)
	r, okr := b.Right.(*ColumnRef)
	if !okl || !okr {
		return JoinFactor{}, false
	}
	return JoinFactor{Op: b.Op, Left: l, Right: r}, true
}
