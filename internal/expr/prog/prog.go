// Package prog compiles expression trees to flat register-based
// bytecode evaluated over columnar mini-batches (tuple.ColBatch). The
// tree-walking interpreter in internal/expr stays the reference
// semantics; compiled programs share its scalar kernels (expr.Arith,
// expr.Comparison, expr.Negate, ...) so a value they produce is the
// value the interpreter would produce, and ANY evaluation error aborts
// the vectorized run so the caller can replay the batch row-at-a-time
// through the interpreter — errors therefore surface with exactly the
// interpreter's semantics, including AND/OR short-circuit ordering.
//
// Layout: a program is a straight-line instruction list. Column
// references resolve to column indexes once, at compile time, against
// the batch schema; literals load from a constant pool; every
// instruction reads two operands (register, column, or constant) and
// writes one register vector. Registers are reused once dead, so the
// register file stays small and the scratch vectors are recycled
// across runs — the steady state allocates nothing.
package prog

import (
	"fmt"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// operandKind says where an instruction input comes from.
type operandKind uint8

const (
	opdReg   operandKind = iota // register vector, one value per lane
	opdCol                      // batch column, one value per lane
	opdConst                    // constant pool entry, broadcast to all lanes
)

type operand struct {
	kind operandKind
	idx  uint16
}

type opcode uint8

const (
	opArith opcode = iota // dst ← Arith(bop, a, b)
	opCmp                 // dst ← Comparison(bop, a, b)
	opAnd                 // dst ← a AND b (eager; see note in run)
	opOr                  // dst ← a OR b
	opNot                 // dst ← NOT a
	opNeg                 // dst ← -a
)

type inst struct {
	op   opcode
	bop  expr.Op // operator for opArith/opCmp
	dst  uint16
	a, b operand
}

// Program is a compiled expression bound to one batch schema.
type Program struct {
	schema *tuple.Schema
	insts  []inst
	consts []tuple.Value
	nregs  int
	out    operand

	regs    [][]tuple.Value // vector register file, sized lazily to batch length
	rowRegs []tuple.Value   // single-row register file for EvalRow
}

// Compile translates e into a program whose column references are
// resolved against s. It fails (and the caller keeps interpreting) on
// unknown columns or expression nodes it does not understand.
func Compile(e expr.Expr, s *tuple.Schema) (*Program, error) {
	p := &Program{schema: s}
	c := compiler{p: p}
	out, err := c.emit(e)
	if err != nil {
		return nil, err
	}
	p.out = out
	p.nregs = int(c.high)
	p.rowRegs = make([]tuple.Value, p.nregs)
	return p, nil
}

type compiler struct {
	p    *Program
	free []uint16 // dead registers available for reuse
	high uint16   // registers allocated so far
}

func (c *compiler) alloc() uint16 {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		return r
	}
	r := c.high
	c.high++
	return r
}

func (c *compiler) release(o operand) {
	if o.kind == opdReg {
		c.free = append(c.free, o.idx)
	}
}

func (c *compiler) emit(e expr.Expr) (operand, error) {
	switch x := e.(type) {
	case *expr.ColumnRef:
		i, err := x.Resolve(c.p.schema)
		if err != nil {
			return operand{}, err
		}
		return operand{kind: opdCol, idx: uint16(i)}, nil
	case expr.Literal:
		return c.constant(x.V), nil
	case *expr.Literal:
		return c.constant(x.V), nil
	case *expr.Binary:
		a, err := c.emit(x.Left)
		if err != nil {
			return operand{}, err
		}
		b, err := c.emit(x.Right)
		if err != nil {
			return operand{}, err
		}
		var op opcode
		switch {
		case x.Op == expr.OpAnd:
			op = opAnd
		case x.Op == expr.OpOr:
			op = opOr
		case x.Op.IsComparison():
			op = opCmp
		default:
			op = opArith
		}
		c.release(a)
		c.release(b)
		dst := c.alloc()
		c.p.insts = append(c.p.insts, inst{op: op, bop: x.Op, dst: dst, a: a, b: b})
		return operand{kind: opdReg, idx: dst}, nil
	case *expr.Unary:
		a, err := c.emit(x.Child)
		if err != nil {
			return operand{}, err
		}
		op := opNot
		if x.Neg {
			op = opNeg
		}
		c.release(a)
		dst := c.alloc()
		c.p.insts = append(c.p.insts, inst{op: op, dst: dst, a: a})
		return operand{kind: opdReg, idx: dst}, nil
	default:
		return operand{}, fmt.Errorf("uncompilable expression node %T", e)
	}
}

func (c *compiler) constant(v tuple.Value) operand {
	c.p.consts = append(c.p.consts, v)
	return operand{kind: opdConst, idx: uint16(len(c.p.consts) - 1)}
}

// andValue / orValue mirror the interpreter's connective semantics on
// already-evaluated operands: bool as itself, NULL as false, anything
// else a type error. They are eager where the interpreter
// short-circuits; a decided left side therefore never inspects the
// right VALUE's kind (matching the interpreter), but the right side has
// already been *evaluated* — if that evaluation errored, run() aborted
// before reaching here and the caller replays through the interpreter,
// which re-establishes true short-circuit behavior.
func andValue(lv, rv tuple.Value) (tuple.Value, error) {
	lb, err := expr.TruthValue(expr.OpAnd, lv)
	if err != nil {
		return tuple.Null(), err
	}
	if !lb {
		return tuple.Bool(false), nil
	}
	rb, err := expr.TruthValue(expr.OpAnd, rv)
	if err != nil {
		return tuple.Null(), err
	}
	return tuple.Bool(rb), nil
}

func orValue(lv, rv tuple.Value) (tuple.Value, error) {
	lb, err := expr.TruthValue(expr.OpOr, lv)
	if err != nil {
		return tuple.Null(), err
	}
	if lb {
		return tuple.Bool(true), nil
	}
	rb, err := expr.TruthValue(expr.OpOr, rv)
	if err != nil {
		return tuple.Null(), err
	}
	return tuple.Bool(rb), nil
}

// vec returns the vector backing operand o plus whether it is a
// broadcast scalar (constant pool entry).
func (p *Program) vec(cb *tuple.ColBatch, o operand) (vals []tuple.Value, scalar bool) {
	switch o.kind {
	case opdReg:
		return p.regs[o.idx], false
	case opdCol:
		return cb.Col(int(o.idx)), false
	default:
		return p.consts[o.idx : o.idx+1], true
	}
}

func lane(vals []tuple.Value, scalar bool, l int32) tuple.Value {
	if scalar {
		return vals[0]
	}
	return vals[l]
}

func (p *Program) ensureRegs(n int) {
	if cap(p.regs) < p.nregs {
		p.regs = make([][]tuple.Value, p.nregs)
	}
	p.regs = p.regs[:p.nregs]
	for i := range p.regs {
		if cap(p.regs[i]) < n {
			p.regs[i] = make([]tuple.Value, n)
		}
		p.regs[i] = p.regs[i][:n]
	}
}

// Run evaluates the program over the lanes of cb named by sel, leaving
// per-lane results readable through Out. Any lane error aborts the
// whole run: the caller must replay the batch through the interpreter.
// Results are valid until the next Run on this program.
func (p *Program) Run(cb *tuple.ColBatch, sel []int32) error {
	p.ensureRegs(cb.Len())
	for i := range p.insts {
		in := &p.insts[i]
		as, asc := p.vec(cb, in.a)
		dst := p.regs[in.dst]
		var err error
		switch in.op {
		case opNot:
			for _, l := range sel {
				if dst[l], err = expr.NotValue(lane(as, asc, l)); err != nil {
					return err
				}
			}
		case opNeg:
			for _, l := range sel {
				if dst[l], err = expr.Negate(lane(as, asc, l)); err != nil {
					return err
				}
			}
		case opCmp:
			bs, bsc := p.vec(cb, in.b)
			for _, l := range sel {
				if dst[l], err = expr.Comparison(in.bop, lane(as, asc, l), lane(bs, bsc, l)); err != nil {
					return err
				}
			}
		case opArith:
			bs, bsc := p.vec(cb, in.b)
			for _, l := range sel {
				if dst[l], err = expr.Arith(in.bop, lane(as, asc, l), lane(bs, bsc, l)); err != nil {
					return err
				}
			}
		case opAnd:
			bs, bsc := p.vec(cb, in.b)
			for _, l := range sel {
				if dst[l], err = andValue(lane(as, asc, l), lane(bs, bsc, l)); err != nil {
					return err
				}
			}
		case opOr:
			bs, bsc := p.vec(cb, in.b)
			for _, l := range sel {
				if dst[l], err = orValue(lane(as, asc, l), lane(bs, bsc, l)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Out returns the result for lane l of the last Run.
func (p *Program) Out(cb *tuple.ColBatch, l int32) tuple.Value {
	vals, scalar := p.vec(cb, p.out)
	return lane(vals, scalar, l)
}

// EvalRow evaluates the program against a single row tuple, for the
// per-row paths (residual predicates, projections) that are not
// batched. The tuple must have the program's schema.
func (p *Program) EvalRow(t *tuple.Tuple) (tuple.Value, error) {
	for i := range p.insts {
		in := &p.insts[i]
		av := p.rowOperand(t, in.a)
		var err error
		switch in.op {
		case opNot:
			p.rowRegs[in.dst], err = expr.NotValue(av)
		case opNeg:
			p.rowRegs[in.dst], err = expr.Negate(av)
		case opCmp:
			p.rowRegs[in.dst], err = expr.Comparison(in.bop, av, p.rowOperand(t, in.b))
		case opArith:
			p.rowRegs[in.dst], err = expr.Arith(in.bop, av, p.rowOperand(t, in.b))
		case opAnd:
			p.rowRegs[in.dst], err = andValue(av, p.rowOperand(t, in.b))
		case opOr:
			p.rowRegs[in.dst], err = orValue(av, p.rowOperand(t, in.b))
		}
		if err != nil {
			return tuple.Null(), err
		}
	}
	return p.rowOperand(t, p.out), nil
}

func (p *Program) rowOperand(t *tuple.Tuple, o operand) tuple.Value {
	switch o.kind {
	case opdReg:
		return p.rowRegs[o.idx]
	case opdCol:
		return t.Values[o.idx]
	default:
		return p.consts[o.idx]
	}
}
