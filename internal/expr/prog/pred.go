package prog

import (
	"fmt"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// Pred is a compiled predicate. The predicate is split into its
// top-level conjuncts and each factor compiled separately; Select runs
// the factors in order, narrowing the selection vector between them.
// That replicates the interpreter's left-to-right AND short-circuit
// exactly: a lane dropped by factor k never evaluates factor k+1, so
// guard idioms like "x != 0 AND 10/x > 1" stay on the fast path.
//
// Truthiness follows expr.Truthy on the whole expression: with several
// factors the connective itself demands boolean operands (non-bool,
// non-null factor values are type errors, NULL is false); with a single
// factor any non-true value — including non-boolean — is silently
// false, exactly as Truthy reads it.
type Pred struct {
	factors []*Program
	multi   bool
}

// CompilePred compiles predicate e against batch schema s.
func CompilePred(e expr.Expr, s *tuple.Schema) (*Pred, error) {
	fs := expr.Conjuncts(e)
	if len(fs) == 0 {
		return nil, fmt.Errorf("empty predicate")
	}
	p := &Pred{multi: len(fs) > 1}
	for _, f := range fs {
		prog, err := Compile(f, s)
		if err != nil {
			return nil, err
		}
		p.factors = append(p.factors, prog)
	}
	return p, nil
}

// Select narrows sel, in place, to the lanes where the predicate is
// true and returns the narrowed slice. On error the caller must replay
// the batch through the interpreter (sel is clobbered).
func (p *Pred) Select(cb *tuple.ColBatch, sel []int32) ([]int32, error) {
	for _, f := range p.factors {
		if len(sel) == 0 {
			return sel, nil
		}
		if err := f.Run(cb, sel); err != nil {
			return nil, err
		}
		out, scalar := f.vec(cb, f.out)
		kept := sel[:0]
		for _, l := range sel {
			v := lane(out, scalar, l)
			if v.K == tuple.KindBool {
				if v.B {
					kept = append(kept, l)
				}
				continue
			}
			if p.multi && v.K != tuple.KindNull {
				// The AND connective would type-error on this operand.
				return nil, fmt.Errorf("boolean operator AND on %s", v.K)
			}
			// Single factor: Truthy reads any non-true value as false.
			// NULL is false in both contexts.
		}
		sel = kept
	}
	return sel, nil
}

// EvalTruthy evaluates the predicate on a single row with the same
// semantics as Select. Errors mean "ask the interpreter".
func (p *Pred) EvalTruthy(t *tuple.Tuple) (bool, error) {
	for _, f := range p.factors {
		v, err := f.EvalRow(t)
		if err != nil {
			return false, err
		}
		if v.K == tuple.KindBool {
			if !v.B {
				return false, nil
			}
			continue
		}
		if p.multi && v.K != tuple.KindNull {
			return false, fmt.Errorf("boolean operator AND on %s", v.K)
		}
		return false, nil
	}
	return true, nil
}

// cacheCap bounds the per-owner compiled caches. Schemas are interned,
// so real plans see a handful of entries; the cap only guards against
// a pathological stream of novel schemas turning the cache into a leak.
const cacheCap = 64

// PredCache memoizes compiled forms of one predicate per batch schema.
// A nil *Pred is cached for uncompilable pairs so the owner falls back
// to the interpreter without retrying the compile each batch. Owners
// are single-goroutine (one EO shard); the cache is not locked.
type PredCache struct {
	e expr.Expr
	m map[*tuple.Schema]*Pred
}

// NewPredCache builds a cache for predicate e (nil e yields nil cache).
func NewPredCache(e expr.Expr) *PredCache {
	if e == nil {
		return nil
	}
	return &PredCache{e: e, m: make(map[*tuple.Schema]*Pred)}
}

// For returns the compiled predicate for schema s, or nil when the
// expression does not compile (caller interprets).
func (c *PredCache) For(s *tuple.Schema) *Pred {
	p, ok := c.m[s]
	if !ok {
		if len(c.m) < cacheCap {
			p, _ = CompilePred(c.e, s)
			c.m[s] = p
		}
	}
	return p
}

// Truthy evaluates the predicate on one row: compiled when possible,
// interpreted on compile failure or on any compiled-path error, so the
// result (value or error) is always the interpreter's.
func (c *PredCache) Truthy(t *tuple.Tuple) (bool, error) {
	if p := c.For(t.Schema); p != nil {
		ok, err := p.EvalTruthy(t)
		if err == nil {
			return ok, nil
		}
	}
	return expr.Truthy(c.e, t)
}

// ProjCache memoizes compiled forms of a projection list per schema,
// with the same ownership rules as PredCache.
type ProjCache struct {
	exprs []expr.Expr
	m     map[*tuple.Schema][]*Program
}

// NewProjCache builds a cache for the projection expressions.
func NewProjCache(exprs []expr.Expr) *ProjCache {
	if len(exprs) == 0 {
		return nil
	}
	return &ProjCache{exprs: exprs, m: make(map[*tuple.Schema][]*Program)}
}

// forSchema returns one compiled program per expression (entries may be
// nil when that expression does not compile), or nil for a schema where
// nothing compiled.
func (c *ProjCache) forSchema(s *tuple.Schema) []*Program {
	ps, ok := c.m[s]
	if !ok {
		if len(c.m) >= cacheCap {
			return nil
		}
		any := false
		ps = make([]*Program, len(c.exprs))
		for i, e := range c.exprs {
			if p, err := Compile(e, s); err == nil {
				ps[i] = p
				any = true
			}
		}
		if !any {
			ps = nil
		}
		c.m[s] = ps
	}
	return ps
}

// EvalInto evaluates every projection expression against t into dst
// (which must have len(exprs)), compiled where possible with per-expr
// interpreter fallback — results and errors match interpretation.
func (c *ProjCache) EvalInto(t *tuple.Tuple, dst []tuple.Value) error {
	ps := c.forSchema(t.Schema)
	for i, e := range c.exprs {
		if ps != nil && ps[i] != nil {
			if v, err := ps[i].EvalRow(t); err == nil {
				dst[i] = v
				continue
			}
		}
		v, err := e.Eval(t)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}
