package prog

import (
	"math/rand"
	"strings"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// sameValue is strict value identity: same kind, same payload.
func sameValue(a, b tuple.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == tuple.KindNull {
		return true
	}
	cmp, ok := tuple.Compare(a, b)
	return ok && cmp == 0
}

var testSchema = tuple.NewSchema(
	tuple.Column{Name: "i", Kind: tuple.KindInt},
	tuple.Column{Name: "f", Kind: tuple.KindFloat},
	tuple.Column{Name: "s", Kind: tuple.KindString},
	tuple.Column{Name: "b", Kind: tuple.KindBool},
)

// randValue draws values that exercise every kernel branch: zeros for
// division errors, strings and nulls for type errors.
func randValue(r *rand.Rand) tuple.Value {
	switch r.Intn(6) {
	case 0:
		return tuple.Int(int64(r.Intn(5)) - 2)
	case 1:
		return tuple.Float(float64(r.Intn(5)) - 2)
	case 2:
		return tuple.String([]string{"x", "y"}[r.Intn(2)])
	case 3:
		return tuple.Bool(r.Intn(2) == 0)
	case 4:
		return tuple.Null()
	default:
		return tuple.Int(int64(r.Intn(10)))
	}
}

func randTuple(r *rand.Rand) *tuple.Tuple {
	return tuple.New(testSchema,
		tuple.Int(int64(r.Intn(5))-2),
		tuple.Float(float64(r.Intn(5))-2),
		tuple.String([]string{"x", "y"}[r.Intn(2)]),
		tuple.Bool(r.Intn(2) == 0),
	)
}

// randMixedExpr builds expressions over mixed-kind columns and
// literals, deliberately including type errors, division by zero, and
// boolean operators on non-booleans.
func randMixedExpr(r *rand.Rand, depth int) expr.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return expr.Col("", []string{"i", "f", "s", "b"}[r.Intn(4)])
		}
		return expr.Lit(randValue(r))
	}
	switch r.Intn(5) {
	case 0:
		op := []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpMod}[r.Intn(5)]
		return expr.Bin(op, randMixedExpr(r, depth-1), randMixedExpr(r, depth-1))
	case 1:
		op := []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}[r.Intn(6)]
		return expr.Bin(op, randMixedExpr(r, depth-1), randMixedExpr(r, depth-1))
	case 2:
		op := []expr.Op{expr.OpAnd, expr.OpOr}[r.Intn(2)]
		return expr.Bin(op, randMixedExpr(r, depth-1), randMixedExpr(r, depth-1))
	case 3:
		return expr.Not(randMixedExpr(r, depth-1))
	default:
		return expr.Neg(randMixedExpr(r, depth-1))
	}
}

// Property: if the compiled program evaluates a row without error, the
// interpreter must agree exactly. (The converse is not required: the
// compiled path evaluates eagerly, so a short-circuited subtree error
// aborts it — that is what the interpreter-replay fallback is for.)
func TestQuickEvalRowAgreesWithInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	agreed := 0
	for trial := 0; trial < 2000; trial++ {
		e := randMixedExpr(r, 3)
		p, err := Compile(e, testSchema)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, e, err)
		}
		for probe := 0; probe < 5; probe++ {
			tp := randTuple(r)
			got, cerr := p.EvalRow(tp)
			want, ierr := e.Eval(tp)
			if cerr != nil {
				// Eager evaluation may surface an error the interpreter
				// short-circuits past; the caller replays via the
				// interpreter, so only the reverse direction must hold.
				continue
			}
			if ierr != nil {
				t.Fatalf("trial %d: %s on %s: compiled ok (%v) but interpreter error %v",
					trial, e, tp, got, ierr)
			}
			if !sameValue(got, want) {
				t.Fatalf("trial %d: %s on %s: compiled %v, interpreter %v",
					trial, e, tp, got, want)
			}
			agreed++
		}
	}
	if agreed < 1000 {
		t.Fatalf("only %d clean agreements — generator too error-heavy to be meaningful", agreed)
	}
}

// Property: Program.Run over a batch produces, lane by lane, exactly
// what EvalRow produces on the corresponding row — and when Run fails,
// at least one row must fail EvalRow (the abort is never spurious).
func TestQuickRunAgreesWithEvalRow(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 500; trial++ {
		e := randMixedExpr(r, 3)
		p, err := Compile(e, testSchema)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		rows := make([]*tuple.Tuple, 16)
		for i := range rows {
			rows[i] = randTuple(r)
		}
		var cb tuple.ColBatch
		if !cb.Load(rows) {
			t.Fatal("Load failed")
		}
		sel := make([]int32, len(rows))
		for i := range sel {
			sel[i] = int32(i)
		}
		if err := p.Run(&cb, sel); err != nil {
			anyRowErr := false
			for _, row := range rows {
				if _, rerr := p.EvalRow(row); rerr != nil {
					anyRowErr = true
					break
				}
			}
			if !anyRowErr {
				t.Fatalf("trial %d: %s: Run error %v but every row evaluates cleanly", trial, e, err)
			}
			continue
		}
		for l, row := range rows {
			want, rerr := p.EvalRow(row)
			if rerr != nil {
				t.Fatalf("trial %d: %s: Run ok but row %d errors: %v", trial, e, l, rerr)
			}
			got := p.Out(&cb, int32(l))
			if !sameValue(got, want) {
				t.Fatalf("trial %d: %s lane %d: Run %v, EvalRow %v", trial, e, l, got, want)
			}
		}
	}
}

// Property: PredCache.Truthy (compiled with interpreter fallback) is
// observationally identical to expr.Truthy — value and error-ness —
// on arbitrary expressions. This is the equivalence contract the
// tentpole exists to enforce.
func TestQuickPredCacheMatchesTruthy(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 1500; trial++ {
		e := randMixedExpr(r, 3)
		pc := NewPredCache(e)
		for probe := 0; probe < 5; probe++ {
			tp := randTuple(r)
			got, gerr := pc.Truthy(tp)
			want, werr := expr.Truthy(e, tp)
			if got != want || (gerr == nil) != (werr == nil) {
				t.Fatalf("trial %d: %s on %s: cache (%v,%v), interpreter (%v,%v)",
					trial, e, tp, got, gerr, want, werr)
			}
		}
	}
}

// Property: Pred.Select keeps exactly the lanes the interpreter calls
// true, whenever it succeeds; on error the caller's per-row replay
// (PredCache.Truthy) restores interpreter semantics, checked above.
func TestQuickSelectAgreesWithTruthy(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	clean := 0
	for trial := 0; trial < 600; trial++ {
		e := randMixedExpr(r, 3)
		p, err := CompilePred(e, testSchema)
		if err != nil {
			continue
		}
		rows := make([]*tuple.Tuple, 32)
		for i := range rows {
			rows[i] = randTuple(r)
		}
		var cb tuple.ColBatch
		cb.Load(rows)
		sel := make([]int32, len(rows))
		for i := range sel {
			sel[i] = int32(i)
		}
		kept, serr := p.Select(&cb, sel)
		if serr != nil {
			continue
		}
		clean++
		keep := map[int32]bool{}
		for _, l := range kept {
			keep[l] = true
		}
		for l, row := range rows {
			want, werr := expr.Truthy(e, row)
			if werr != nil {
				t.Fatalf("trial %d: %s: Select ok but Truthy(row %d) errors: %v", trial, e, l, werr)
			}
			if keep[int32(l)] != want {
				t.Fatalf("trial %d: %s lane %d: Select kept=%v, Truthy=%v", trial, e, l, keep[int32(l)], want)
			}
		}
	}
	if clean < 100 {
		t.Fatalf("only %d clean Selects — generator too error-heavy", clean)
	}
}

// Pinned semantics: a multi-factor predicate whose factor value is a
// non-bool non-null must error (boolean AND on that kind), while a
// single-factor predicate reads the same value as silently false —
// both exactly as the interpreter does.
func TestSelectBooleanContext(t *testing.T) {
	rows := []*tuple.Tuple{
		tuple.New(testSchema, tuple.Int(1), tuple.Float(0), tuple.String("x"), tuple.Bool(true)),
	}
	var cb tuple.ColBatch
	cb.Load(rows)

	single, err := CompilePred(expr.Col("", "i"), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := single.Select(&cb, []int32{0})
	if err != nil || len(kept) != 0 {
		t.Fatalf("single int factor: kept=%v err=%v, want silently false", kept, err)
	}

	multi, err := CompilePred(
		expr.Bin(expr.OpAnd, expr.Col("", "i"), expr.Col("", "b")), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.Select(&cb, []int32{0}); err == nil ||
		!strings.Contains(err.Error(), "boolean operator") {
		t.Fatalf("multi-factor int operand: err=%v, want boolean operator error", err)
	}
	// And the fallback path must agree with the interpreter's error.
	pc := NewPredCache(expr.Bin(expr.OpAnd, expr.Col("", "i"), expr.Col("", "b")))
	_, gerr := pc.Truthy(rows[0])
	_, werr := expr.Truthy(expr.Bin(expr.OpAnd, expr.Col("", "i"), expr.Col("", "b")), rows[0])
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("fallback: cache err=%v, interpreter err=%v", gerr, werr)
	}
}

// Pinned semantics: division by zero aborts the batch so the caller
// replays through the interpreter; the row path errors identically.
func TestRunDivisionByZeroAborts(t *testing.T) {
	e := expr.Bin(expr.OpGt,
		expr.Bin(expr.OpDiv, expr.Lit(tuple.Int(10)), expr.Col("", "i")),
		expr.Lit(tuple.Int(1)))
	p, err := Compile(e, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	rows := []*tuple.Tuple{
		tuple.New(testSchema, tuple.Int(5), tuple.Float(1), tuple.String("x"), tuple.Bool(true)),
		tuple.New(testSchema, tuple.Int(0), tuple.Float(1), tuple.String("x"), tuple.Bool(true)),
	}
	var cb tuple.ColBatch
	cb.Load(rows)
	if err := p.Run(&cb, []int32{0, 1}); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("Run err = %v, want division by zero", err)
	}
	if _, err := p.EvalRow(rows[1]); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("EvalRow err = %v, want division by zero", err)
	}
	// The guarded form must stay clean: the failing lane is dropped by
	// the first factor before the division ever runs.
	guarded, err := CompilePred(expr.Bin(expr.OpAnd,
		expr.Bin(expr.OpNe, expr.Col("", "i"), expr.Lit(tuple.Int(0))), e), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := guarded.Select(&cb, []int32{0, 1})
	if err != nil || len(kept) != 1 || kept[0] != 0 {
		t.Fatalf("guarded Select kept=%v err=%v, want lane 0 only", kept, err)
	}
}

// The steady-state vector path must not allocate: the E1/E2 win comes
// from amortizing dispatch, not trading it for garbage.
func TestRunZeroAllocSteadyState(t *testing.T) {
	e := expr.Bin(expr.OpAnd,
		expr.Bin(expr.OpGt, expr.Col("", "i"), expr.Lit(tuple.Int(0))),
		expr.Bin(expr.OpLt, expr.Bin(expr.OpMul, expr.Col("", "f"), expr.Lit(tuple.Float(2))),
			expr.Lit(tuple.Float(3))))
	p, err := CompilePred(e, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(59))
	rows := make([]*tuple.Tuple, 256)
	for i := range rows {
		rows[i] = randTuple(r)
	}
	var cb tuple.ColBatch
	cb.Load(rows)
	sel := make([]int32, len(rows))
	warm := func() {
		for i := range sel {
			sel[i] = int32(i)
		}
		if _, err := p.Select(&cb, sel[:len(rows)]); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Fatalf("Pred.Select allocates %v per batch in steady state, want 0", n)
	}
	// ColBatch reload over the same backing tuples must also be free.
	reload := func() {
		if !cb.Load(rows) {
			t.Fatal("Load failed")
		}
	}
	reload()
	if n := testing.AllocsPerRun(100, reload); n != 0 {
		t.Fatalf("ColBatch.Load allocates %v per batch in steady state, want 0", n)
	}
}

func BenchmarkSelect256(b *testing.B) {
	e := expr.Bin(expr.OpGt, expr.Col("", "i"), expr.Lit(tuple.Int(2)))
	p, err := CompilePred(e, testSchema)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(61))
	rows := make([]*tuple.Tuple, 256)
	for i := range rows {
		rows[i] = randTuple(r)
	}
	var cb tuple.ColBatch
	cb.Load(rows)
	sel := make([]int32, len(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range sel {
			sel[j] = int32(j)
		}
		if _, err := p.Select(&cb, sel); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(256)
}

func BenchmarkEvalRowVsInterp(b *testing.B) {
	e := expr.Bin(expr.OpGt, expr.Col("", "i"), expr.Lit(tuple.Int(2)))
	p, err := Compile(e, testSchema)
	if err != nil {
		b.Fatal(err)
	}
	tp := tuple.New(testSchema, tuple.Int(3), tuple.Float(1), tuple.String("x"), tuple.Bool(true))
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.EvalRow(tp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Eval(tp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
