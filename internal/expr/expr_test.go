package expr

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"telegraphcq/internal/tuple"
)

var stockSchema = tuple.NewSchema(
	tuple.Column{Source: "s", Name: "timestamp", Kind: tuple.KindInt},
	tuple.Column{Source: "s", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "s", Name: "price", Kind: tuple.KindFloat},
)

func row(ts int64, sym string, price float64) *tuple.Tuple {
	return tuple.New(stockSchema, tuple.Int(ts), tuple.String(sym), tuple.Float(price))
}

func mustEval(t *testing.T, e Expr, tp *tuple.Tuple) tuple.Value {
	t.Helper()
	v, err := e.Eval(tp)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestColumnRefResolution(t *testing.T) {
	tp := row(1, "MSFT", 50)
	if v := mustEval(t, Col("", "price"), tp); v.F != 50 {
		t.Fatalf("price = %v", v)
	}
	if v := mustEval(t, Col("s", "sym"), tp); v.S != "MSFT" {
		t.Fatalf("sym = %v", v)
	}
	if _, err := Col("", "nope").Eval(tp); err == nil {
		t.Fatal("unknown column evaluated")
	}
}

func TestColumnRefCacheAcrossSchemas(t *testing.T) {
	// The same expression object must evaluate correctly against tuples
	// of different schemas (eddy intermediate formats).
	c := Col("", "x")
	s1 := tuple.NewSchema(
		tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt},
	)
	s2 := tuple.NewSchema(
		tuple.Column{Source: "a", Name: "pad", Kind: tuple.KindInt},
		tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt},
	)
	t1 := tuple.New(s1, tuple.Int(11))
	t2 := tuple.New(s2, tuple.Int(0), tuple.Int(22))
	for i := 0; i < 3; i++ {
		if v := mustEval(t, c, t1); v.I != 11 {
			t.Fatalf("s1: %v", v)
		}
		if v := mustEval(t, c, t2); v.I != 22 {
			t.Fatalf("s2: %v", v)
		}
	}
}

func TestColumnRefCacheNoThrash(t *testing.T) {
	// A plan expression shared across eddy shards alternates between
	// intermediate schemas; the resolution cache must hold all of them
	// rather than ping-pong (each miss publishes a fresh cache object).
	c := Col("", "x")
	s1 := tuple.NewSchema(tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt})
	s2 := tuple.NewSchema(
		tuple.Column{Source: "a", Name: "pad", Kind: tuple.KindInt},
		tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt},
	)
	t1 := tuple.New(s1, tuple.Int(11))
	t2 := tuple.New(s2, tuple.Int(0), tuple.Int(22))
	// Warm both entries, then the alternating steady state must not
	// allocate at all.
	mustEval(t, c, t1)
	mustEval(t, c, t2)
	allocs := testing.AllocsPerRun(200, func() {
		if v, _ := c.Eval(t1); v.I != 11 {
			t.Fatal("wrong value for s1")
		}
		if v, _ := c.Eval(t2); v.I != 22 {
			t.Fatal("wrong value for s2")
		}
	})
	if allocs != 0 {
		t.Fatalf("alternating-schema Resolve allocates %v/op (cache thrash)", allocs)
	}
}

func TestColumnRefConcurrentEval(t *testing.T) {
	// Shards share plan expressions: concurrent Eval against distinct
	// schemas must be race-free and always return the right column.
	c := Col("", "x")
	schemas := make([]*tuple.Schema, 4)
	tuples := make([]*tuple.Tuple, 4)
	for i := range schemas {
		cols := make([]tuple.Column, i+1)
		vals := make([]tuple.Value, i+1)
		for j := 0; j <= i; j++ {
			cols[j] = tuple.Column{Source: "a", Name: "pad" + string(rune('0'+j)), Kind: tuple.KindInt}
			vals[j] = tuple.Int(0)
		}
		cols[i] = tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt}
		vals[i] = tuple.Int(int64(100 + i))
		schemas[i] = tuple.NewSchema(cols...)
		tuples[i] = tuple.New(schemas[i], vals...)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g + i) % len(tuples)
				v, err := c.Eval(tuples[k])
				if err != nil || v.I != int64(100+k) {
					t.Errorf("goroutine %d: schema %d → %v, %v", g, k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestComparisons(t *testing.T) {
	tp := row(5, "MSFT", 50)
	cases := []struct {
		e    Expr
		want bool
	}{
		{Bin(OpGt, Col("", "price"), Lit(tuple.Float(49))), true},
		{Bin(OpGt, Col("", "price"), Lit(tuple.Float(50))), false},
		{Bin(OpGe, Col("", "price"), Lit(tuple.Float(50))), true},
		{Bin(OpEq, Col("", "sym"), Lit(tuple.String("MSFT"))), true},
		{Bin(OpNe, Col("", "sym"), Lit(tuple.String("IBM"))), true},
		{Bin(OpLt, Col("", "timestamp"), Lit(tuple.Int(6))), true},
		{Bin(OpLe, Col("", "timestamp"), Lit(tuple.Int(4))), false},
		// int/float cross-kind comparison
		{Bin(OpEq, Col("", "timestamp"), Lit(tuple.Float(5.0))), true},
	}
	for _, c := range cases {
		ok, err := Truthy(c.e, tp)
		if err != nil || ok != c.want {
			t.Errorf("%s = %v, %v; want %v", c.e, ok, err, c.want)
		}
	}
}

func TestNullComparisonIsFalse(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt})
	tp := tuple.New(s, tuple.Null())
	for _, op := range []Op{OpEq, OpNe, OpLt, OpGt} {
		ok, err := Truthy(Bin(op, Col("", "x"), Lit(tuple.Int(1))), tp)
		if err != nil || ok {
			t.Errorf("NULL %s 1 = %v, %v; want false", op, ok, err)
		}
	}
}

func TestIncomparableKindsError(t *testing.T) {
	tp := row(1, "MSFT", 50)
	if _, err := Truthy(Bin(OpLt, Col("", "sym"), Lit(tuple.Int(1))), tp); err == nil {
		t.Fatal("string < int evaluated")
	}
}

func TestBooleanConnectives(t *testing.T) {
	tp := row(5, "MSFT", 50)
	tr := Bin(OpEq, Lit(tuple.Int(1)), Lit(tuple.Int(1)))
	fa := Bin(OpEq, Lit(tuple.Int(1)), Lit(tuple.Int(2)))
	if ok, _ := Truthy(Bin(OpAnd, tr, fa), tp); ok {
		t.Error("true AND false")
	}
	if ok, _ := Truthy(Bin(OpOr, fa, tr), tp); !ok {
		t.Error("false OR true")
	}
	if ok, _ := Truthy(Not(fa), tp); !ok {
		t.Error("NOT false")
	}
	// Short circuit: the erroring right side must not be evaluated.
	erring := Bin(OpLt, Col("", "sym"), Lit(tuple.Int(1)))
	if ok, err := Truthy(Bin(OpAnd, fa, erring), tp); err != nil || ok {
		t.Errorf("short-circuit AND: %v, %v", ok, err)
	}
	if ok, err := Truthy(Bin(OpOr, tr, erring), tp); err != nil || !ok {
		t.Errorf("short-circuit OR: %v, %v", ok, err)
	}
}

func TestArithmetic(t *testing.T) {
	tp := row(10, "X", 2.5)
	cases := []struct {
		e    Expr
		want tuple.Value
	}{
		{Bin(OpAdd, Col("", "timestamp"), Lit(tuple.Int(5))), tuple.Int(15)},
		{Bin(OpSub, Col("", "timestamp"), Lit(tuple.Int(3))), tuple.Int(7)},
		{Bin(OpMul, Col("", "price"), Lit(tuple.Int(2))), tuple.Float(5)},
		{Bin(OpDiv, Col("", "timestamp"), Lit(tuple.Int(4))), tuple.Int(2)},
		{Bin(OpDiv, Col("", "price"), Lit(tuple.Float(0.5))), tuple.Float(5)},
		{Bin(OpMod, Col("", "timestamp"), Lit(tuple.Int(3))), tuple.Int(1)},
		{Neg(Col("", "timestamp")), tuple.Int(-10)},
		{Neg(Col("", "price")), tuple.Float(-2.5)},
	}
	for _, c := range cases {
		v := mustEval(t, c.e, tp)
		if !tuple.Equal(v, c.want) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	// int/float × div/mod × zero: every combination must raise the same
	// "division by zero" error. The float-mod case regressed once —
	// math.Mod(x, 0) silently yields NaN where the int path raises.
	tp := row(1, "X", 1)
	cases := []struct {
		name string
		e    Expr
	}{
		{"int div", Bin(OpDiv, Lit(tuple.Int(1)), Lit(tuple.Int(0)))},
		{"int mod", Bin(OpMod, Lit(tuple.Int(1)), Lit(tuple.Int(0)))},
		{"float div", Bin(OpDiv, Lit(tuple.Float(1)), Lit(tuple.Float(0)))},
		{"float mod", Bin(OpMod, Lit(tuple.Float(1)), Lit(tuple.Float(0)))},
		{"mixed div", Bin(OpDiv, Lit(tuple.Int(1)), Lit(tuple.Float(0)))},
		{"mixed mod", Bin(OpMod, Lit(tuple.Int(1)), Lit(tuple.Float(0)))},
		{"float mod by -0.0", Bin(OpMod, Lit(tuple.Float(1)), Neg(Lit(tuple.Float(0))))},
		{"column mod zero", Bin(OpMod, Col("", "price"), Lit(tuple.Float(0)))},
	}
	for _, c := range cases {
		if _, err := c.e.Eval(tp); err == nil || !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("%s: err = %v, want division by zero", c.name, err)
		}
	}
}

func TestBooleanOperatorTypeErrors(t *testing.T) {
	// AND/OR on a non-bool, non-null operand is a type error, consistent
	// with the comparison path — not a silent coercion to false.
	tp := row(5, "MSFT", 50)
	tr := Bin(OpEq, Lit(tuple.Int(1)), Lit(tuple.Int(1)))
	fa := Bin(OpEq, Lit(tuple.Int(1)), Lit(tuple.Int(2)))
	num := Lit(tuple.Int(7))
	str := Lit(tuple.String("x"))
	for _, e := range []Expr{
		Bin(OpAnd, num, tr),
		Bin(OpAnd, tr, num),
		Bin(OpOr, str, tr),
		Bin(OpOr, fa, str),
	} {
		if _, err := e.Eval(tp); err == nil || !strings.Contains(err.Error(), "boolean operator") {
			t.Errorf("%s: err = %v, want boolean operator type error", e, err)
		}
	}
	// NULL operands still read as SQL unknown → false, never an error.
	null := Lit(tuple.Null())
	if ok, err := Truthy(Bin(OpAnd, tr, null), tp); err != nil || ok {
		t.Errorf("true AND NULL = %v, %v; want false", ok, err)
	}
	if ok, err := Truthy(Bin(OpOr, null, tr), tp); err != nil || !ok {
		t.Errorf("NULL OR true = %v, %v; want true", ok, err)
	}
	// Short circuit is unchanged: a decided result must not type-check
	// the unevaluated right side.
	if ok, err := Truthy(Bin(OpAnd, fa, num), tp); err != nil || ok {
		t.Errorf("false AND <int>: %v, %v; want false without error", ok, err)
	}
	if ok, err := Truthy(Bin(OpOr, tr, num), tp); err != nil || !ok {
		t.Errorf("true OR <int>: %v, %v; want true without error", ok, err)
	}
}

func TestArithmeticWithNullPropagates(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt})
	tp := tuple.New(s, tuple.Null())
	v, err := Bin(OpAdd, Col("", "x"), Lit(tuple.Int(1))).Eval(tp)
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL + 1 = %v, %v", v, err)
	}
}

func TestStringRendering(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpEq, Col("s", "sym"), Lit(tuple.String("o'neil"))),
		Bin(OpGt, Col("", "price"), Lit(tuple.Float(50))))
	got := e.String()
	if !strings.Contains(got, "s.sym = 'o''neil'") || !strings.Contains(got, "price > 50") {
		t.Fatalf("String = %q", got)
	}
}

func TestConjuncts(t *testing.T) {
	a := Bin(OpGt, Col("", "price"), Lit(tuple.Float(1)))
	b := Bin(OpEq, Col("", "sym"), Lit(tuple.String("A")))
	c := Bin(OpLt, Col("", "timestamp"), Lit(tuple.Int(9)))
	e := Bin(OpAnd, Bin(OpAnd, a, b), c)
	fs := Conjuncts(e)
	if len(fs) != 3 {
		t.Fatalf("Conjuncts = %d factors", len(fs))
	}
	// An OR is one opaque factor.
	if got := Conjuncts(Bin(OpOr, a, b)); len(got) != 1 {
		t.Fatalf("OR split into %d", len(got))
	}
	if Conjuncts(nil) != nil {
		t.Fatal("Conjuncts(nil)")
	}
	// Round trip.
	re := Conjoin(fs)
	tp := row(5, "A", 2)
	want, _ := Truthy(e, tp)
	got, _ := Truthy(re, tp)
	if want != got {
		t.Fatal("Conjoin changed semantics")
	}
	if Conjoin(nil) != nil {
		t.Fatal("Conjoin(nil)")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpGt, Col("a", "x"), Lit(tuple.Int(1))),
		Not(Bin(OpEq, Col("b", "y"), Col("a", "z"))))
	cols := Columns(e, nil)
	if len(cols) != 3 {
		t.Fatalf("Columns = %d", len(cols))
	}
}

func TestSources(t *testing.T) {
	e := Bin(OpEq, Col("a", "x"), Col("", "y"))
	resolve := func(name string) (string, error) { return "b", nil }
	srcs, err := Sources(e, resolve)
	if err != nil || len(srcs) != 2 || !srcs["a"] || !srcs["b"] {
		t.Fatalf("Sources = %v, %v", srcs, err)
	}
}

func TestAsRangeFactor(t *testing.T) {
	// column OP literal
	rf, ok := AsRangeFactor(Bin(OpGt, Col("", "price"), Lit(tuple.Float(50))))
	if !ok || rf.Op != OpGt || rf.Val.F != 50 {
		t.Fatalf("rf = %+v, %v", rf, ok)
	}
	// literal OP column normalizes: 50 < price  ==>  price > 50
	rf, ok = AsRangeFactor(Bin(OpLt, Lit(tuple.Float(50)), Col("", "price")))
	if !ok || rf.Op != OpGt || rf.Val.F != 50 {
		t.Fatalf("normalized rf = %+v, %v", rf, ok)
	}
	// negative literal via unary
	rf, ok = AsRangeFactor(Bin(OpGe, Col("", "x"), Neg(Lit(tuple.Int(3)))))
	if !ok || rf.Val.I != -3 {
		t.Fatalf("neg literal rf = %+v, %v", rf, ok)
	}
	// non-factors
	if _, ok := AsRangeFactor(Bin(OpEq, Col("", "a"), Col("", "b"))); ok {
		t.Fatal("col=col recognized as range factor")
	}
	if _, ok := AsRangeFactor(Bin(OpOr, Lit(tuple.Bool(true)), Lit(tuple.Bool(true)))); ok {
		t.Fatal("OR recognized as range factor")
	}
	if _, ok := AsRangeFactor(Bin(OpAdd, Col("", "a"), Lit(tuple.Int(1)))); ok {
		t.Fatal("arithmetic recognized as range factor")
	}
}

func TestRangeFactorMatches(t *testing.T) {
	rf := RangeFactor{Col: Col("", "p"), Op: OpGe, Val: tuple.Float(10)}
	if !rf.Matches(tuple.Float(10)) || !rf.Matches(tuple.Int(11)) || rf.Matches(tuple.Float(9.9)) {
		t.Fatal("Matches wrong")
	}
	if rf.Matches(tuple.Null()) || rf.Matches(tuple.String("x")) {
		t.Fatal("Matches on null/incomparable")
	}
}

func TestAsJoinFactor(t *testing.T) {
	jf, ok := AsJoinFactor(Bin(OpEq, Col("a", "x"), Col("b", "y")))
	if !ok || jf.Left.Source != "a" || jf.Right.Source != "b" || jf.Op != OpEq {
		t.Fatalf("jf = %+v, %v", jf, ok)
	}
	if _, ok := AsJoinFactor(Bin(OpEq, Col("a", "x"), Lit(tuple.Int(1)))); ok {
		t.Fatal("col=lit recognized as join factor")
	}
}

// Property: RangeFactor.Matches agrees with full expression evaluation.
func TestQuickRangeFactorAgreesWithEval(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "v", Kind: tuple.KindInt})
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(val, bound int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		e := Bin(op, Col("", "v"), Lit(tuple.Int(bound)))
		rf, ok := AsRangeFactor(e)
		if !ok {
			return false
		}
		tp := tuple.New(s, tuple.Int(val))
		want, err := Truthy(e, tp)
		if err != nil {
			return false
		}
		return rf.Matches(tuple.Int(val)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLiteralOfEdgeCases(t *testing.T) {
	// Double negation folds to the positive literal.
	rf, ok := AsRangeFactor(Bin(OpLt, Col("", "x"), Neg(Neg(Lit(tuple.Int(5))))))
	if !ok || rf.Op != OpLt || rf.Val.I != 5 {
		t.Fatalf("--5: rf = %+v, %v", rf, ok)
	}
	rf, ok = AsRangeFactor(Bin(OpGe, Col("", "x"), Neg(Neg(Lit(tuple.Float(2.5))))))
	if !ok || rf.Val.F != 2.5 {
		t.Fatalf("--2.5: rf = %+v, %v", rf, ok)
	}
	// Negating a non-numeric literal is not a literal (direct Eval
	// errors on it too, so rejecting keeps the index honest).
	for _, e := range []Expr{
		Bin(OpEq, Col("", "x"), Neg(Lit(tuple.String("a")))),
		Bin(OpEq, Col("", "x"), Neg(Lit(tuple.Bool(true)))),
		Bin(OpEq, Col("", "x"), Neg(Lit(tuple.Null()))),
		Bin(OpEq, Col("", "x"), Not(Lit(tuple.Bool(true)))),
	} {
		if _, ok := AsRangeFactor(e); ok {
			t.Errorf("%s recognized as range factor", e)
		}
	}
}

func BenchmarkColumnRefAlternatingSchemas(b *testing.B) {
	// Regression benchmark for the single-entry cache thrash: with one
	// cache slot, every Eval below missed and allocated a fresh cache
	// entry; the fixed-size set makes the steady state allocation-free.
	c := Col("", "x")
	s1 := tuple.NewSchema(tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt})
	s2 := tuple.NewSchema(
		tuple.Column{Source: "a", Name: "pad", Kind: tuple.KindInt},
		tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt},
	)
	t1 := tuple.New(s1, tuple.Int(11))
	t2 := tuple.New(s2, tuple.Int(0), tuple.Int(22))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Eval(t1); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Eval(t2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredicateEval(b *testing.B) {
	tp := row(5, "MSFT", 50)
	e := Bin(OpAnd,
		Bin(OpEq, Col("", "sym"), Lit(tuple.String("MSFT"))),
		Bin(OpGt, Col("", "price"), Lit(tuple.Float(49))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := Truthy(e, tp); err != nil || !ok {
			b.Fatal("eval failed")
		}
	}
}
