package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"telegraphcq/internal/tuple"
)

var stockSchema = tuple.NewSchema(
	tuple.Column{Source: "s", Name: "timestamp", Kind: tuple.KindInt},
	tuple.Column{Source: "s", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "s", Name: "price", Kind: tuple.KindFloat},
)

func row(ts int64, sym string, price float64) *tuple.Tuple {
	return tuple.New(stockSchema, tuple.Int(ts), tuple.String(sym), tuple.Float(price))
}

func mustEval(t *testing.T, e Expr, tp *tuple.Tuple) tuple.Value {
	t.Helper()
	v, err := e.Eval(tp)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestColumnRefResolution(t *testing.T) {
	tp := row(1, "MSFT", 50)
	if v := mustEval(t, Col("", "price"), tp); v.F != 50 {
		t.Fatalf("price = %v", v)
	}
	if v := mustEval(t, Col("s", "sym"), tp); v.S != "MSFT" {
		t.Fatalf("sym = %v", v)
	}
	if _, err := Col("", "nope").Eval(tp); err == nil {
		t.Fatal("unknown column evaluated")
	}
}

func TestColumnRefCacheAcrossSchemas(t *testing.T) {
	// The same expression object must evaluate correctly against tuples
	// of different schemas (eddy intermediate formats).
	c := Col("", "x")
	s1 := tuple.NewSchema(
		tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt},
	)
	s2 := tuple.NewSchema(
		tuple.Column{Source: "a", Name: "pad", Kind: tuple.KindInt},
		tuple.Column{Source: "a", Name: "x", Kind: tuple.KindInt},
	)
	t1 := tuple.New(s1, tuple.Int(11))
	t2 := tuple.New(s2, tuple.Int(0), tuple.Int(22))
	for i := 0; i < 3; i++ {
		if v := mustEval(t, c, t1); v.I != 11 {
			t.Fatalf("s1: %v", v)
		}
		if v := mustEval(t, c, t2); v.I != 22 {
			t.Fatalf("s2: %v", v)
		}
	}
}

func TestComparisons(t *testing.T) {
	tp := row(5, "MSFT", 50)
	cases := []struct {
		e    Expr
		want bool
	}{
		{Bin(OpGt, Col("", "price"), Lit(tuple.Float(49))), true},
		{Bin(OpGt, Col("", "price"), Lit(tuple.Float(50))), false},
		{Bin(OpGe, Col("", "price"), Lit(tuple.Float(50))), true},
		{Bin(OpEq, Col("", "sym"), Lit(tuple.String("MSFT"))), true},
		{Bin(OpNe, Col("", "sym"), Lit(tuple.String("IBM"))), true},
		{Bin(OpLt, Col("", "timestamp"), Lit(tuple.Int(6))), true},
		{Bin(OpLe, Col("", "timestamp"), Lit(tuple.Int(4))), false},
		// int/float cross-kind comparison
		{Bin(OpEq, Col("", "timestamp"), Lit(tuple.Float(5.0))), true},
	}
	for _, c := range cases {
		ok, err := Truthy(c.e, tp)
		if err != nil || ok != c.want {
			t.Errorf("%s = %v, %v; want %v", c.e, ok, err, c.want)
		}
	}
}

func TestNullComparisonIsFalse(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt})
	tp := tuple.New(s, tuple.Null())
	for _, op := range []Op{OpEq, OpNe, OpLt, OpGt} {
		ok, err := Truthy(Bin(op, Col("", "x"), Lit(tuple.Int(1))), tp)
		if err != nil || ok {
			t.Errorf("NULL %s 1 = %v, %v; want false", op, ok, err)
		}
	}
}

func TestIncomparableKindsError(t *testing.T) {
	tp := row(1, "MSFT", 50)
	if _, err := Truthy(Bin(OpLt, Col("", "sym"), Lit(tuple.Int(1))), tp); err == nil {
		t.Fatal("string < int evaluated")
	}
}

func TestBooleanConnectives(t *testing.T) {
	tp := row(5, "MSFT", 50)
	tr := Bin(OpEq, Lit(tuple.Int(1)), Lit(tuple.Int(1)))
	fa := Bin(OpEq, Lit(tuple.Int(1)), Lit(tuple.Int(2)))
	if ok, _ := Truthy(Bin(OpAnd, tr, fa), tp); ok {
		t.Error("true AND false")
	}
	if ok, _ := Truthy(Bin(OpOr, fa, tr), tp); !ok {
		t.Error("false OR true")
	}
	if ok, _ := Truthy(Not(fa), tp); !ok {
		t.Error("NOT false")
	}
	// Short circuit: the erroring right side must not be evaluated.
	erring := Bin(OpLt, Col("", "sym"), Lit(tuple.Int(1)))
	if ok, err := Truthy(Bin(OpAnd, fa, erring), tp); err != nil || ok {
		t.Errorf("short-circuit AND: %v, %v", ok, err)
	}
	if ok, err := Truthy(Bin(OpOr, tr, erring), tp); err != nil || !ok {
		t.Errorf("short-circuit OR: %v, %v", ok, err)
	}
}

func TestArithmetic(t *testing.T) {
	tp := row(10, "X", 2.5)
	cases := []struct {
		e    Expr
		want tuple.Value
	}{
		{Bin(OpAdd, Col("", "timestamp"), Lit(tuple.Int(5))), tuple.Int(15)},
		{Bin(OpSub, Col("", "timestamp"), Lit(tuple.Int(3))), tuple.Int(7)},
		{Bin(OpMul, Col("", "price"), Lit(tuple.Int(2))), tuple.Float(5)},
		{Bin(OpDiv, Col("", "timestamp"), Lit(tuple.Int(4))), tuple.Int(2)},
		{Bin(OpDiv, Col("", "price"), Lit(tuple.Float(0.5))), tuple.Float(5)},
		{Bin(OpMod, Col("", "timestamp"), Lit(tuple.Int(3))), tuple.Int(1)},
		{Neg(Col("", "timestamp")), tuple.Int(-10)},
		{Neg(Col("", "price")), tuple.Float(-2.5)},
	}
	for _, c := range cases {
		v := mustEval(t, c.e, tp)
		if !tuple.Equal(v, c.want) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	tp := row(1, "X", 1)
	if _, err := Bin(OpDiv, Lit(tuple.Int(1)), Lit(tuple.Int(0))).Eval(tp); err == nil {
		t.Error("int div by zero")
	}
	if _, err := Bin(OpDiv, Lit(tuple.Float(1)), Lit(tuple.Float(0))).Eval(tp); err == nil {
		t.Error("float div by zero")
	}
	if _, err := Bin(OpMod, Lit(tuple.Int(1)), Lit(tuple.Int(0))).Eval(tp); err == nil {
		t.Error("int mod by zero")
	}
}

func TestArithmeticWithNullPropagates(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt})
	tp := tuple.New(s, tuple.Null())
	v, err := Bin(OpAdd, Col("", "x"), Lit(tuple.Int(1))).Eval(tp)
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL + 1 = %v, %v", v, err)
	}
}

func TestStringRendering(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpEq, Col("s", "sym"), Lit(tuple.String("o'neil"))),
		Bin(OpGt, Col("", "price"), Lit(tuple.Float(50))))
	got := e.String()
	if !strings.Contains(got, "s.sym = 'o''neil'") || !strings.Contains(got, "price > 50") {
		t.Fatalf("String = %q", got)
	}
}

func TestConjuncts(t *testing.T) {
	a := Bin(OpGt, Col("", "price"), Lit(tuple.Float(1)))
	b := Bin(OpEq, Col("", "sym"), Lit(tuple.String("A")))
	c := Bin(OpLt, Col("", "timestamp"), Lit(tuple.Int(9)))
	e := Bin(OpAnd, Bin(OpAnd, a, b), c)
	fs := Conjuncts(e)
	if len(fs) != 3 {
		t.Fatalf("Conjuncts = %d factors", len(fs))
	}
	// An OR is one opaque factor.
	if got := Conjuncts(Bin(OpOr, a, b)); len(got) != 1 {
		t.Fatalf("OR split into %d", len(got))
	}
	if Conjuncts(nil) != nil {
		t.Fatal("Conjuncts(nil)")
	}
	// Round trip.
	re := Conjoin(fs)
	tp := row(5, "A", 2)
	want, _ := Truthy(e, tp)
	got, _ := Truthy(re, tp)
	if want != got {
		t.Fatal("Conjoin changed semantics")
	}
	if Conjoin(nil) != nil {
		t.Fatal("Conjoin(nil)")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpGt, Col("a", "x"), Lit(tuple.Int(1))),
		Not(Bin(OpEq, Col("b", "y"), Col("a", "z"))))
	cols := Columns(e, nil)
	if len(cols) != 3 {
		t.Fatalf("Columns = %d", len(cols))
	}
}

func TestSources(t *testing.T) {
	e := Bin(OpEq, Col("a", "x"), Col("", "y"))
	resolve := func(name string) (string, error) { return "b", nil }
	srcs, err := Sources(e, resolve)
	if err != nil || len(srcs) != 2 || !srcs["a"] || !srcs["b"] {
		t.Fatalf("Sources = %v, %v", srcs, err)
	}
}

func TestAsRangeFactor(t *testing.T) {
	// column OP literal
	rf, ok := AsRangeFactor(Bin(OpGt, Col("", "price"), Lit(tuple.Float(50))))
	if !ok || rf.Op != OpGt || rf.Val.F != 50 {
		t.Fatalf("rf = %+v, %v", rf, ok)
	}
	// literal OP column normalizes: 50 < price  ==>  price > 50
	rf, ok = AsRangeFactor(Bin(OpLt, Lit(tuple.Float(50)), Col("", "price")))
	if !ok || rf.Op != OpGt || rf.Val.F != 50 {
		t.Fatalf("normalized rf = %+v, %v", rf, ok)
	}
	// negative literal via unary
	rf, ok = AsRangeFactor(Bin(OpGe, Col("", "x"), Neg(Lit(tuple.Int(3)))))
	if !ok || rf.Val.I != -3 {
		t.Fatalf("neg literal rf = %+v, %v", rf, ok)
	}
	// non-factors
	if _, ok := AsRangeFactor(Bin(OpEq, Col("", "a"), Col("", "b"))); ok {
		t.Fatal("col=col recognized as range factor")
	}
	if _, ok := AsRangeFactor(Bin(OpOr, Lit(tuple.Bool(true)), Lit(tuple.Bool(true)))); ok {
		t.Fatal("OR recognized as range factor")
	}
	if _, ok := AsRangeFactor(Bin(OpAdd, Col("", "a"), Lit(tuple.Int(1)))); ok {
		t.Fatal("arithmetic recognized as range factor")
	}
}

func TestRangeFactorMatches(t *testing.T) {
	rf := RangeFactor{Col: Col("", "p"), Op: OpGe, Val: tuple.Float(10)}
	if !rf.Matches(tuple.Float(10)) || !rf.Matches(tuple.Int(11)) || rf.Matches(tuple.Float(9.9)) {
		t.Fatal("Matches wrong")
	}
	if rf.Matches(tuple.Null()) || rf.Matches(tuple.String("x")) {
		t.Fatal("Matches on null/incomparable")
	}
}

func TestAsJoinFactor(t *testing.T) {
	jf, ok := AsJoinFactor(Bin(OpEq, Col("a", "x"), Col("b", "y")))
	if !ok || jf.Left.Source != "a" || jf.Right.Source != "b" || jf.Op != OpEq {
		t.Fatalf("jf = %+v, %v", jf, ok)
	}
	if _, ok := AsJoinFactor(Bin(OpEq, Col("a", "x"), Lit(tuple.Int(1)))); ok {
		t.Fatal("col=lit recognized as join factor")
	}
}

// Property: RangeFactor.Matches agrees with full expression evaluation.
func TestQuickRangeFactorAgreesWithEval(t *testing.T) {
	s := tuple.NewSchema(tuple.Column{Name: "v", Kind: tuple.KindInt})
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(val, bound int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		e := Bin(op, Col("", "v"), Lit(tuple.Int(bound)))
		rf, ok := AsRangeFactor(e)
		if !ok {
			return false
		}
		tp := tuple.New(s, tuple.Int(val))
		want, err := Truthy(e, tp)
		if err != nil {
			return false
		}
		return rf.Matches(tuple.Int(val)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredicateEval(b *testing.B) {
	tp := row(5, "MSFT", 50)
	e := Bin(OpAnd,
		Bin(OpEq, Col("", "sym"), Lit(tuple.String("MSFT"))),
		Bin(OpGt, Col("", "price"), Lit(tuple.Float(49))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := Truthy(e, tp); err != nil || !ok {
			b.Fatal("eval failed")
		}
	}
}
