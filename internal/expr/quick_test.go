package expr

import (
	"math/rand"
	"testing"

	"telegraphcq/internal/tuple"
)

// randExpr builds a random boolean expression over two float columns.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		col := Col("", []string{"a", "b"}[r.Intn(2)])
		op := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[r.Intn(6)]
		return Bin(op, col, Lit(tuple.Float(float64(r.Intn(10)))))
	}
	switch r.Intn(3) {
	case 0:
		return Bin(OpAnd, randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return Bin(OpOr, randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		return Not(randExpr(r, depth-1))
	}
}

// Property: Conjoin(Conjuncts(e)) is semantically identical to e on
// random inputs, for random boolean trees.
func TestQuickConjunctsRoundTrip(t *testing.T) {
	schema := tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindFloat},
		tuple.Column{Name: "b", Kind: tuple.KindFloat},
	)
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		e := randExpr(r, 4)
		re := Conjoin(Conjuncts(e))
		for probe := 0; probe < 20; probe++ {
			tp := tuple.New(schema,
				tuple.Float(float64(r.Intn(10))),
				tuple.Float(float64(r.Intn(10))))
			want, err1 := Truthy(e, tp)
			got, err2 := Truthy(re, tp)
			if (err1 == nil) != (err2 == nil) || want != got {
				t.Fatalf("trial %d: %s vs rebuilt %s: %v/%v (%v %v)",
					trial, e, re, want, got, err1, err2)
			}
		}
	}
}

// Property: the number of conjuncts of (a AND b) is the sum of the
// conjunct counts of a and b; OR/NOT are opaque single factors.
func TestQuickConjunctsStructure(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		a, b := randExpr(r, 3), randExpr(r, 3)
		na, nb := len(Conjuncts(a)), len(Conjuncts(b))
		if got := len(Conjuncts(Bin(OpAnd, a, b))); got != na+nb {
			t.Fatalf("AND conjuncts = %d, want %d+%d", got, na, nb)
		}
		if got := len(Conjuncts(Bin(OpOr, a, b))); got != 1 {
			t.Fatalf("OR conjuncts = %d, want 1", got)
		}
		if got := len(Conjuncts(Not(a))); got != 1 {
			t.Fatalf("NOT conjuncts = %d, want 1", got)
		}
	}
}

// Property: De Morgan — NOT(a AND b) ≡ NOT a OR NOT b under evaluation.
func TestQuickDeMorgan(t *testing.T) {
	schema := tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindFloat},
		tuple.Column{Name: "b", Kind: tuple.KindFloat},
	)
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		x, y := randExpr(r, 3), randExpr(r, 3)
		lhs := Not(Bin(OpAnd, x, y))
		rhs := Bin(OpOr, Not(x), Not(y))
		tp := tuple.New(schema,
			tuple.Float(float64(r.Intn(10))),
			tuple.Float(float64(r.Intn(10))))
		a, err1 := Truthy(lhs, tp)
		b, err2 := Truthy(rhs, tp)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval errors: %v %v", err1, err2)
		}
		if a != b {
			t.Fatalf("De Morgan violated on %s", lhs)
		}
	}
}

// Property: "literal OP column" factors — normalized through Op.Negate,
// with the literal optionally wrapped in one or two unary negations —
// evaluate identically to the original comparison. This is the contract
// that lets grouped filters index reversed predicates.
func TestQuickNormalizedRangeFactorAgreesWithEval(t *testing.T) {
	schema := tuple.NewSchema(tuple.Column{Name: "v", Kind: tuple.KindFloat})
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		op := ops[r.Intn(len(ops))]
		var lit Expr
		var want tuple.Value
		if r.Intn(2) == 0 {
			n := int64(r.Intn(20) - 10)
			lit, want = Lit(tuple.Int(n)), tuple.Int(n)
		} else {
			f := float64(r.Intn(40))/2 - 10
			lit, want = Lit(tuple.Float(f)), tuple.Float(f)
		}
		// Wrap in 0, 1, or 2 negations; literalOf must fold them.
		for negs := r.Intn(3); negs > 0; negs-- {
			lit = Neg(lit)
			want, _ = Negate(want)
		}
		e := Bin(op, lit, Col("", "v")) // literal on the LEFT
		rf, ok := AsRangeFactor(e)
		if !ok {
			t.Fatalf("not recognized: %s", e)
		}
		if !tuple.Equal(rf.Val, want) {
			t.Fatalf("%s: folded literal %v, want %v", e, rf.Val, want)
		}
		for probe := 0; probe < 10; probe++ {
			v := tuple.Float(float64(r.Intn(40))/2 - 10)
			tp := tuple.New(schema, v)
			evWant, err := Truthy(e, tp)
			if err != nil {
				t.Fatal(err)
			}
			if rf.Matches(v) != evWant {
				t.Fatalf("normalized factor %s disagrees with %s at %v", rf, e, v)
			}
		}
	}
}

// Property: a range factor recognized by AsRangeFactor evaluates
// identically to the original comparison for any value, including across
// int/float kind boundaries.
func TestQuickRangeFactorCrossKind(t *testing.T) {
	schema := tuple.NewSchema(tuple.Column{Name: "v", Kind: tuple.KindFloat})
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 500; trial++ {
		op := ops[r.Intn(len(ops))]
		var bound tuple.Value
		if r.Intn(2) == 0 {
			bound = tuple.Int(int64(r.Intn(20) - 10))
		} else {
			bound = tuple.Float(float64(r.Intn(40))/2 - 10)
		}
		e := Bin(op, Col("", "v"), Lit(bound))
		rf, ok := AsRangeFactor(e)
		if !ok {
			t.Fatalf("not recognized: %s", e)
		}
		for probe := 0; probe < 10; probe++ {
			v := tuple.Float(float64(r.Intn(40))/2 - 10)
			tp := tuple.New(schema, v)
			want, err := Truthy(e, tp)
			if err != nil {
				t.Fatal(err)
			}
			if rf.Matches(v) != want {
				t.Fatalf("factor %s disagrees at %v", rf, v)
			}
		}
	}
}
