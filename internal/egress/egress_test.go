package egress

import (
	"testing"

	"telegraphcq/internal/tuple"
)

var schema = tuple.NewSchema(tuple.Column{Source: "s", Name: "v", Kind: tuple.KindInt})

func row(v int64) *tuple.Tuple { return tuple.New(schema, tuple.Int(v)) }

func TestHubDeliverToSubscription(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1, 4)
	h.Deliver(1, row(10))
	h.Deliver(2, row(99)) // no consumer: dropped silently
	got, ok := sub.TryNext()
	if !ok || got.Values[0].I != 10 {
		t.Fatalf("got %v %v", got, ok)
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("phantom row")
	}
}

func TestSubscriptionSheds(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1, 2)
	for i := 0; i < 5; i++ {
		h.Deliver(1, row(int64(i)))
	}
	if sub.Dropped() != 3 || sub.Len() != 2 {
		t.Fatalf("dropped=%d len=%d", sub.Dropped(), sub.Len())
	}
}

func TestHubCloseEndsSubscription(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1, 4)
	h.Deliver(1, row(1))
	h.Close(1)
	// Drain then closed.
	if _, ok := sub.Next(); !ok {
		t.Fatal("queued row lost at close")
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("read past close")
	}
	h.Deliver(1, row(2)) // no panic after close
}

func TestSpoolFetchOffsets(t *testing.T) {
	sp := NewSpool(100)
	for i := 0; i < 10; i++ {
		sp.Append(row(int64(i)))
	}
	rows, next := sp.Fetch(0)
	if len(rows) != 10 || next != 10 {
		t.Fatalf("fetch all: %d next %d", len(rows), next)
	}
	rows, next = sp.Fetch(7)
	if len(rows) != 3 || rows[0].Values[0].I != 7 || next != 10 {
		t.Fatalf("fetch tail: %v next %d", rows, next)
	}
	rows, next = sp.Fetch(next)
	if len(rows) != 0 || next != 10 {
		t.Fatalf("fetch empty: %v next %d", rows, next)
	}
	if sp.End() != 10 {
		t.Fatalf("End = %d", sp.End())
	}
}

func TestSpoolAgesOut(t *testing.T) {
	sp := NewSpool(5)
	for i := 0; i < 12; i++ {
		sp.Append(row(int64(i)))
	}
	// Only rows 7..11 retained; fetching from 0 skips forward.
	rows, next := sp.Fetch(0)
	if len(rows) != 5 || rows[0].Values[0].I != 7 || next != 12 {
		t.Fatalf("aged fetch: %v next %d", rows, next)
	}
}

func TestHubSpoolIntegration(t *testing.T) {
	h := NewHub()
	sp := h.SpoolFor(3, 10)
	if h.SpoolFor(3, 10) != sp {
		t.Fatal("SpoolFor not idempotent")
	}
	h.Deliver(3, row(42))
	rows, _ := sp.Fetch(0)
	if len(rows) != 1 || rows[0].Values[0].I != 42 {
		t.Fatalf("spooled: %v", rows)
	}
}

func TestCloseAll(t *testing.T) {
	h := NewHub()
	s1 := h.Subscribe(1, 2)
	h.SpoolFor(2, 2)
	h.CloseAll()
	if _, ok := s1.Next(); ok {
		t.Fatal("subscription alive after CloseAll")
	}
}
