package egress

import (
	"errors"
	"testing"

	"telegraphcq/internal/tuple"
)

var schema = tuple.NewSchema(tuple.Column{Source: "s", Name: "v", Kind: tuple.KindInt})

func row(v int64) *tuple.Tuple { return tuple.New(schema, tuple.Int(v)) }

func TestHubDeliverToSubscription(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1, 4)
	h.Deliver(1, row(10))
	h.Deliver(2, row(99)) // no consumer: dropped silently
	got, ok := sub.TryNext()
	if !ok || got.Values[0].I != 10 {
		t.Fatalf("got %v %v", got, ok)
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("phantom row")
	}
}

func TestSubscriptionSheds(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1, 2)
	for i := 0; i < 5; i++ {
		h.Deliver(1, row(int64(i)))
	}
	if sub.Dropped() != 3 || sub.Len() != 2 {
		t.Fatalf("dropped=%d len=%d", sub.Dropped(), sub.Len())
	}
}

func TestHubCloseEndsSubscription(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1, 4)
	h.Deliver(1, row(1))
	h.Close(1)
	// Drain then closed.
	if _, ok := sub.Next(); !ok {
		t.Fatal("queued row lost at close")
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("read past close")
	}
	h.Deliver(1, row(2)) // no panic after close
}

func TestSpoolFetchOffsets(t *testing.T) {
	sp := NewSpool(100)
	for i := 0; i < 10; i++ {
		sp.Append(row(int64(i)))
	}
	rows, next := sp.Fetch(0)
	if len(rows) != 10 || next != 10 {
		t.Fatalf("fetch all: %d next %d", len(rows), next)
	}
	rows, next = sp.Fetch(7)
	if len(rows) != 3 || rows[0].Values[0].I != 7 || next != 10 {
		t.Fatalf("fetch tail: %v next %d", rows, next)
	}
	rows, next = sp.Fetch(next)
	if len(rows) != 0 || next != 10 {
		t.Fatalf("fetch empty: %v next %d", rows, next)
	}
	if sp.End() != 10 {
		t.Fatalf("End = %d", sp.End())
	}
}

func TestSpoolAgesOut(t *testing.T) {
	sp := NewSpool(5)
	for i := 0; i < 12; i++ {
		sp.Append(row(int64(i)))
	}
	// Only rows 7..11 retained; fetching from 0 skips forward.
	rows, next := sp.Fetch(0)
	if len(rows) != 5 || rows[0].Values[0].I != 7 || next != 12 {
		t.Fatalf("aged fetch: %v next %d", rows, next)
	}
}

func TestHubSpoolIntegration(t *testing.T) {
	h := NewHub()
	sp := h.SpoolFor(3, 10)
	if h.SpoolFor(3, 10) != sp {
		t.Fatal("SpoolFor not idempotent")
	}
	h.Deliver(3, row(42))
	rows, _ := sp.Fetch(0)
	if len(rows) != 1 || rows[0].Values[0].I != 42 {
		t.Fatalf("spooled: %v", rows)
	}
}

func TestCloseAll(t *testing.T) {
	h := NewHub()
	s1 := h.Subscribe(1, 2)
	h.SpoolFor(2, 2)
	h.CloseAll()
	if _, ok := s1.Next(); ok {
		t.Fatal("subscription alive after CloseAll")
	}
}

func TestSubscribeDisplacesPrevious(t *testing.T) {
	h := NewHub()
	s1 := h.Subscribe(1, 4)
	h.Deliver(1, row(1))
	s2 := h.Subscribe(1, 4) // same id: the older subscription is displaced
	// The displaced consumer drains what it had, then sees the reason.
	if _, ok := s1.Next(); !ok {
		t.Fatal("displaced subscription lost its buffered row")
	}
	if _, ok := s1.Next(); ok {
		t.Fatal("displaced subscription still live")
	}
	if !errors.Is(s1.Err(), ErrDisplaced) {
		t.Fatalf("displaced err = %v", s1.Err())
	}
	// New rows flow to the replacement, not the ghost.
	h.Deliver(1, row(2))
	got, ok := s2.Next()
	if !ok || got.Values[0].I != 2 {
		t.Fatalf("replacement got %v %v", got, ok)
	}
}

func TestFailThenDrainOrdering(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1, 8)
	sp := h.SpoolFor(1, 8)
	for i := 0; i < 3; i++ {
		h.Deliver(1, row(int64(i)))
	}
	boom := errors.New("operator quarantined")
	h.Fail(1, boom)
	// Every row delivered before the failure drains in order first...
	for i := 0; i < 3; i++ {
		got, ok := sub.Next()
		if !ok || got.Values[0].I != int64(i) {
			t.Fatalf("drain row %d: %v %v", i, got, ok)
		}
	}
	// ...then the terminal error is observed.
	if _, ok := sub.Next(); ok {
		t.Fatal("read past failure")
	}
	if !errors.Is(sub.Err(), boom) || !errors.Is(sp.Err(), boom) {
		t.Fatalf("errs: sub=%v spool=%v", sub.Err(), sp.Err())
	}
	// Producers racing past the failure neither panic nor leak: the row
	// is recycled and counted, not enqueued into the sealed queue.
	before := sub.Dropped()
	h.Deliver(1, row(99))
	if sub.Dropped() != before+1 {
		t.Fatalf("post-fail delivery not counted: %d -> %d", before, sub.Dropped())
	}
}

func TestSpoolFetchIntoAtBaseBoundary(t *testing.T) {
	sp := NewSpool(5)
	for i := 0; i < 12; i++ {
		sp.Append(row(int64(i)))
	}
	if sp.Base() != 7 || sp.End() != 12 {
		t.Fatalf("base=%d end=%d", sp.Base(), sp.End())
	}
	buf := make([]*tuple.Tuple, 0, 3)
	// Exactly at the base: no clamp, rows 7..9.
	rows, next := sp.FetchInto(buf, 7)
	if len(rows) != 3 || rows[0].Values[0].I != 7 || next != 10 {
		t.Fatalf("at base: %v next %d", rows, next)
	}
	// Below the base (aged out): clamps forward to the oldest retained
	// row, and next reflects the clamp so callers can detect the gap.
	rows, next = sp.FetchInto(buf, 2)
	if len(rows) != 3 || rows[0].Values[0].I != 7 || next != 10 {
		t.Fatalf("below base: %v next %d", rows, next)
	}
	// At the end: empty, next stays put.
	rows, next = sp.FetchInto(buf, 12)
	if len(rows) != 0 || next != 12 {
		t.Fatalf("at end: %v next %d", rows, next)
	}
	// Zero-capacity destination is a no-op, not a spin hazard.
	rows, next = sp.FetchInto(nil, 7)
	if len(rows) != 0 || next != 7 {
		t.Fatalf("nil dst: %v next %d", rows, next)
	}
}

func TestSpoolFetchIntoDoesNotAllocate(t *testing.T) {
	sp := NewSpool(64)
	for i := 0; i < 64; i++ {
		sp.Append(row(int64(i)))
	}
	buf := make([]*tuple.Tuple, 0, 16)
	var from int64
	allocs := testing.AllocsPerRun(100, func() {
		var rows []*tuple.Tuple
		rows, from = sp.FetchInto(buf, from)
		if from >= sp.End() {
			from = 0
		}
		_ = rows
	})
	if allocs != 0 {
		t.Fatalf("FetchInto allocates %v per call", allocs)
	}
}
