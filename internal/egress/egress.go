// Package egress implements result delivery (§4.3 "Egress Modules"):
// push-based subscriptions that stream rows to connected clients through
// bounded Fjord queues (shedding when a client cannot keep up), and
// pull-based spools that log results for clients that disconnect and
// return intermittently (the PSoup modality).
package egress

import (
	"sync"

	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// Subscription is a push-based result channel for one query.
type Subscription struct {
	ID int
	q  fjord.Queue[*tuple.Tuple]

	mu      sync.Mutex
	dropped int64
}

// Next blocks for the next row; ok is false when the subscription closed
// and drained.
func (s *Subscription) Next() (*tuple.Tuple, bool) {
	t, err := s.q.Dequeue()
	return t, err == nil
}

// TryNext returns a row without blocking.
func (s *Subscription) TryNext() (*tuple.Tuple, bool) { return s.q.TryDequeue() }

// Dropped counts rows shed because the client fell behind.
func (s *Subscription) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len returns queued rows.
func (s *Subscription) Len() int { return s.q.Len() }

// Hub demultiplexes engine deliveries to per-query consumers: push
// subscriptions and/or pull spools.
type Hub struct {
	mu     sync.Mutex
	subs   map[int]*Subscription
	spools map[int]*Spool
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[int]*Subscription{}, spools: map[int]*Spool{}}
}

// Subscribe attaches a push subscription of the given capacity for a
// query id. Rows arriving while the queue is full are shed (QoS: a slow
// client must not stall the shared dataflow).
func (h *Hub) Subscribe(id, capacity int) *Subscription {
	if capacity <= 0 {
		capacity = 1024
	}
	s := &Subscription{ID: id, q: fjord.NewPush[*tuple.Tuple](capacity)}
	h.mu.Lock()
	h.subs[id] = s
	h.mu.Unlock()
	return s
}

// SpoolFor attaches (or returns) a pull spool for a query id.
func (h *Hub) SpoolFor(id int, capacity int) *Spool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sp, ok := h.spools[id]; ok {
		return sp
	}
	sp := NewSpool(capacity)
	h.spools[id] = sp
	return sp
}

// Deliver routes one result row to the query's consumers. It never
// blocks.
func (h *Hub) Deliver(id int, row *tuple.Tuple) {
	h.mu.Lock()
	sub := h.subs[id]
	sp := h.spools[id]
	h.mu.Unlock()
	if sub != nil {
		if !sub.q.TryEnqueue(row) {
			sub.mu.Lock()
			sub.dropped++
			sub.mu.Unlock()
		}
	}
	if sp != nil {
		sp.Append(row)
	}
}

// Close tears down a query's consumers (cursor closed / query removed).
func (h *Hub) Close(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.subs[id]; ok {
		s.q.Close()
		delete(h.subs, id)
	}
	delete(h.spools, id)
}

// Subscriptions returns a snapshot of the attached push subscriptions
// (telemetry reads queue depth and shed counts through it).
func (h *Hub) Subscriptions() []*Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		out = append(out, s)
	}
	return out
}

// CloseAll tears down everything (server shutdown).
func (h *Hub) CloseAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, s := range h.subs {
		s.q.Close()
		delete(h.subs, id)
	}
	for id := range h.spools {
		delete(h.spools, id)
	}
}

// Spool is the pull-based egress operator: results are logged with
// monotonically increasing offsets; an intermittent client fetches from
// its last offset on reconnect. Capacity bounds retained rows (older
// rows age out, and the base offset advances).
type Spool struct {
	mu   sync.Mutex
	rows []*tuple.Tuple
	base int64 // offset of rows[0]
	cap  int
}

// NewSpool builds a spool retaining up to capacity rows (<=0 → 4096).
func NewSpool(capacity int) *Spool {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Spool{cap: capacity}
}

// Append logs one row.
func (s *Spool) Append(row *tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, row)
	if over := len(s.rows) - s.cap; over > 0 {
		s.rows = append(s.rows[:0], s.rows[over:]...)
		s.base += int64(over)
	}
}

// Fetch returns rows from offset `from` (inclusive) and the next offset
// to resume from. Rows aged out below the retained range are skipped.
func (s *Spool) Fetch(from int64) (rows []*tuple.Tuple, next int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.base {
		from = s.base
	}
	i := from - s.base
	if i >= int64(len(s.rows)) {
		return nil, s.base + int64(len(s.rows))
	}
	out := append([]*tuple.Tuple(nil), s.rows[i:]...)
	return out, s.base + int64(len(s.rows))
}

// End returns the offset one past the last logged row.
func (s *Spool) End() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base + int64(len(s.rows))
}
