// Package egress implements result delivery (§4.3 "Egress Modules"):
// push-based subscriptions that stream rows to connected clients through
// bounded Fjord queues (shedding when a client cannot keep up), and
// pull-based spools that log results for clients that disconnect and
// return intermittently (the PSoup modality).
//
// Ownership: Deliver and DeliverBatch take ownership of the rows they
// are handed. A row that reaches a subscription belongs to the consumer
// (which may tuple.Recycle it after use); a row kept by a spool is
// Retained (pinned out of the pool, since spooled rows are fetched
// repeatedly); a row with no consumer, or shed because the subscription
// queue is full, is recycled here — egress is the module that retires
// result tuples.
package egress

import (
	"sync"
	"sync/atomic"

	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// Subscription is a push-based result channel for one query. The queue
// is a lock-free SPSC ring: the producing end is owned by the query's
// Execution Object (one query lives on exactly one EO, and cancellation
// hands the end over only after an ack round-trip), the consuming end by
// the single client reader.
type Subscription struct {
	ID int
	q  *fjord.SPSC[*tuple.Tuple]

	dropped atomic.Int64
	failed  atomic.Value // error: set when the query was quarantined
}

// Err returns the terminal error of a failed query (nil while healthy).
// It becomes non-nil before the queue closes, so a consumer that sees
// Next report closed can ask Err why.
func (s *Subscription) Err() error {
	if v := s.failed.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Next blocks for the next row; ok is false when the subscription closed
// and drained.
func (s *Subscription) Next() (*tuple.Tuple, bool) {
	t, err := s.q.Dequeue()
	return t, err == nil
}

// TryNext returns a row without blocking.
func (s *Subscription) TryNext() (*tuple.Tuple, bool) { return s.q.TryDequeue() }

// NextBatch drains up to len(dst) queued rows into dst without blocking
// and returns the count (batch consumers amortize the queue round-trip).
func (s *Subscription) NextBatch(dst []*tuple.Tuple) int { return s.q.DequeueBatch(dst) }

// Dropped counts rows shed because the client fell behind.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Closed reports whether the producing end has closed the subscription.
// Queued rows may still be pending; drain them with TryNext.
func (s *Subscription) Closed() bool { return s.q.Closed() }

// Len returns queued rows.
func (s *Subscription) Len() int { return s.q.Len() }

// Hub demultiplexes engine deliveries to per-query consumers: push
// subscriptions and/or pull spools.
type Hub struct {
	mu     sync.Mutex
	subs   map[int]*Subscription
	spools map[int]*Spool
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[int]*Subscription{}, spools: map[int]*Spool{}}
}

// Subscribe attaches a push subscription of the given capacity for a
// query id. Rows arriving while the queue is full are shed (QoS: a slow
// client must not stall the shared dataflow). Capacity is rounded up to
// a power of two by the ring buffer.
func (h *Hub) Subscribe(id, capacity int) *Subscription {
	if capacity <= 0 {
		capacity = 1024
	}
	s := &Subscription{ID: id, q: fjord.NewSPSC[*tuple.Tuple](capacity)}
	h.mu.Lock()
	h.subs[id] = s
	h.mu.Unlock()
	return s
}

// SpoolFor attaches (or returns) a pull spool for a query id.
func (h *Hub) SpoolFor(id int, capacity int) *Spool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sp, ok := h.spools[id]; ok {
		return sp
	}
	sp := NewSpool(capacity)
	h.spools[id] = sp
	return sp
}

// Deliver routes one result row to the query's consumers. It never
// blocks, and it takes ownership of the row (see the package comment).
// Producer-side SPSC contract: all Deliver/DeliverBatch calls for one
// query id must be serialized — the executor guarantees this by keeping
// each query on one EO and acking cancellation before the flush path
// delivers.
func (h *Hub) Deliver(id int, row *tuple.Tuple) {
	h.mu.Lock()
	sub := h.subs[id]
	sp := h.spools[id]
	h.mu.Unlock()
	if sp != nil {
		sp.Append(row) // retains
	}
	if sub != nil {
		if !sub.q.TryEnqueue(row) {
			sub.dropped.Add(1)
			tuple.Recycle(row)
		}
	} else if sp == nil {
		tuple.Recycle(row)
	}
}

// DeliverBatch routes a batch of result rows for one query: one hub
// lookup and one ring publish for the whole slice. Ownership and
// serialization rules are those of Deliver. The slice itself is not
// retained.
func (h *Hub) DeliverBatch(id int, rows []*tuple.Tuple) {
	if len(rows) == 0 {
		return
	}
	h.mu.Lock()
	sub := h.subs[id]
	sp := h.spools[id]
	h.mu.Unlock()
	if sp != nil {
		sp.AppendBatch(rows) // retains
	}
	if sub != nil {
		n := sub.q.TryEnqueueBatch(rows)
		if n < len(rows) {
			sub.dropped.Add(int64(len(rows) - n))
			for _, r := range rows[n:] {
				tuple.Recycle(r)
			}
		}
	} else if sp == nil {
		for _, r := range rows {
			tuple.Recycle(r)
		}
	}
}

// Fail marks a query's subscription with a terminal error (its EO was
// quarantined) and closes the queue. Already-delivered rows remain
// consumable; after draining, Next reports closed and Err explains why.
// The subscription stays attached so telemetry still observes it until
// the query is cancelled.
func (h *Hub) Fail(id int, err error) {
	h.mu.Lock()
	sub := h.subs[id]
	h.mu.Unlock()
	if sub != nil {
		sub.failed.Store(err)
		sub.q.Close()
	}
}

// Close tears down a query's consumers (cursor closed / query removed).
func (h *Hub) Close(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.subs[id]; ok {
		s.q.Close()
		delete(h.subs, id)
	}
	delete(h.spools, id)
}

// Subscriptions returns a snapshot of the attached push subscriptions
// (telemetry reads queue depth and shed counts through it).
func (h *Hub) Subscriptions() []*Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		out = append(out, s)
	}
	return out
}

// CloseAll tears down everything (server shutdown).
func (h *Hub) CloseAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, s := range h.subs {
		s.q.Close()
		delete(h.subs, id)
	}
	for id := range h.spools {
		delete(h.spools, id)
	}
}

// Spool is the pull-based egress operator: results are logged with
// monotonically increasing offsets; an intermittent client fetches from
// its last offset on reconnect. Capacity bounds retained rows (older
// rows age out, and the base offset advances). Spooled rows are Retained
// — Fetch hands out aliases, so they can never return to the pool.
type Spool struct {
	mu   sync.Mutex
	rows []*tuple.Tuple
	base int64 // offset of rows[0]
	cap  int
}

// NewSpool builds a spool retaining up to capacity rows (<=0 → 4096).
func NewSpool(capacity int) *Spool {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Spool{cap: capacity}
}

// Append logs one row, retaining it.
func (s *Spool) Append(row *tuple.Tuple) {
	row.Retain()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, row)
	s.trimLocked()
}

// AppendBatch logs a batch of rows under one lock round-trip.
func (s *Spool) AppendBatch(rows []*tuple.Tuple) {
	for _, r := range rows {
		r.Retain()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, rows...)
	s.trimLocked()
}

func (s *Spool) trimLocked() {
	if over := len(s.rows) - s.cap; over > 0 {
		s.rows = append(s.rows[:0], s.rows[over:]...)
		s.base += int64(over)
	}
}

// Fetch returns rows from offset `from` (inclusive) and the next offset
// to resume from. Rows aged out below the retained range are skipped.
func (s *Spool) Fetch(from int64) (rows []*tuple.Tuple, next int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.base {
		from = s.base
	}
	i := from - s.base
	if i >= int64(len(s.rows)) {
		return nil, s.base + int64(len(s.rows))
	}
	out := append([]*tuple.Tuple(nil), s.rows[i:]...)
	return out, s.base + int64(len(s.rows))
}

// End returns the offset one past the last logged row.
func (s *Spool) End() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base + int64(len(s.rows))
}
