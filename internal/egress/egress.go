// Package egress implements result delivery (§4.3 "Egress Modules"):
// push-based subscriptions that stream rows to connected clients through
// bounded Fjord queues (shedding when a client cannot keep up), and
// pull-based spools that log results for clients that disconnect and
// return intermittently (the PSoup modality).
//
// Ownership: Deliver and DeliverBatch take ownership of the rows they
// are handed. A row that reaches a subscription belongs to the consumer
// (which may tuple.Recycle it after use); a row kept by a spool is
// Retained (pinned out of the pool, since spooled rows are fetched
// repeatedly); a row with no consumer, or shed because the subscription
// queue is full, is recycled here — egress is the module that retires
// result tuples.
package egress

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// ErrDisplaced is the terminal error of a subscription displaced by a
// newer Subscribe for the same query id (a reconnecting client replaces
// its dead session's queue; the old consumer drains and sees this).
var ErrDisplaced = errors.New("egress: subscription displaced by a newer subscriber")

// Publisher is a multi-subscriber delivery sink attached to a query —
// the seam the fan-out subsystem (internal/fanout) plugs into without
// egress importing it. Publish observes (but does not own) the rows:
// it must not retain row pointers past the call. endOffset is the
// query spool's End() after these rows were appended (0 when the query
// has no spool); fan-out frames carry it so cohort replay and live
// delivery reconcile on spool offsets.
type Publisher interface {
	Publish(rows []*tuple.Tuple, endOffset int64)
	// Pending reports undelivered buffered frames (graceful drain waits
	// on it the way it waits on subscription queue depth).
	Pending() int
	Fail(err error)
	Close()
}

// Subscription is a push-based result channel for one query. The queue
// is a lock-free SPSC ring: the producing end is owned by the query's
// Execution Object (one query lives on exactly one EO, and cancellation
// hands the end over only after an ack round-trip), the consuming end by
// the single client reader.
type Subscription struct {
	ID int
	q  *fjord.SPSC[*tuple.Tuple]

	dropped atomic.Int64
	failed  atomic.Value // error: set when the query was quarantined

	// sealed/inflight close the producer-vs-Close race: TryEnqueue checks
	// closed and then publishes, so a row offered concurrently with Close
	// could land in a ring whose consumer already saw closed+empty and
	// left — a silent tuple leak. Producers bracket the enqueue with
	// enter/exit; seal() flips sealed and waits for in-flight producers to
	// drain before closing the queue, so every row is either published
	// before Close (the consumer's post-close drain sees it) or recycled
	// and counted by the producer.
	sealed   atomic.Bool
	inflight atomic.Int32
}

// enter registers a producer about to enqueue. A false return means the
// subscription is sealed: the caller must recycle the row itself (and
// must not call exit).
func (s *Subscription) enter() bool {
	s.inflight.Add(1)
	if s.sealed.Load() {
		s.inflight.Add(-1)
		return false
	}
	return true
}

func (s *Subscription) exit() { s.inflight.Add(-1) }

// seal marks the subscription terminal (err may be nil for a plain
// close), waits out in-flight producers, and closes the queue. Rows
// already published stay drainable by the consumer.
func (s *Subscription) seal(err error) {
	if err != nil {
		s.failed.Store(err)
	}
	s.sealed.Store(true)
	for s.inflight.Load() != 0 {
		runtime.Gosched()
	}
	s.q.Close()
}

// Err returns the terminal error of a failed query (nil while healthy).
// It becomes non-nil before the queue closes, so a consumer that sees
// Next report closed can ask Err why.
func (s *Subscription) Err() error {
	if v := s.failed.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Next blocks for the next row; ok is false when the subscription closed
// and drained.
func (s *Subscription) Next() (*tuple.Tuple, bool) {
	t, err := s.q.Dequeue()
	return t, err == nil
}

// TryNext returns a row without blocking.
func (s *Subscription) TryNext() (*tuple.Tuple, bool) { return s.q.TryDequeue() }

// NextBatch drains up to len(dst) queued rows into dst without blocking
// and returns the count (batch consumers amortize the queue round-trip).
func (s *Subscription) NextBatch(dst []*tuple.Tuple) int { return s.q.DequeueBatch(dst) }

// Dropped counts rows shed because the client fell behind.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Closed reports whether the producing end has closed the subscription.
// Queued rows may still be pending; drain them with TryNext.
func (s *Subscription) Closed() bool { return s.q.Closed() }

// Len returns queued rows.
func (s *Subscription) Len() int { return s.q.Len() }

// Hub demultiplexes engine deliveries to per-query consumers: push
// subscriptions and/or pull spools.
type Hub struct {
	mu     sync.Mutex
	subs   map[int]*Subscription
	spools map[int]*Spool
	pubs   map[int]Publisher
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[int]*Subscription{}, spools: map[int]*Spool{}, pubs: map[int]Publisher{}}
}

// Subscribe attaches a push subscription of the given capacity for a
// query id. Rows arriving while the queue is full are shed (QoS: a slow
// client must not stall the shared dataflow). Capacity is rounded up to
// a power of two by the ring buffer.
//
// Subscribing again for the same id displaces the previous subscription
// rather than silently clobbering it: the old queue is closed with
// ErrDisplaced so its (still single) consumer wakes, drains what was
// already delivered, and recycles — no tuples leak, no reader is
// stranded blocking on a ring nothing will ever close.
func (h *Hub) Subscribe(id, capacity int) *Subscription {
	if capacity <= 0 {
		capacity = 1024
	}
	s := &Subscription{ID: id, q: fjord.NewSPSC[*tuple.Tuple](capacity)}
	h.mu.Lock()
	old := h.subs[id]
	h.subs[id] = s
	h.mu.Unlock()
	if old != nil {
		old.seal(ErrDisplaced)
	}
	return s
}

// PublisherFor attaches (or returns) the fan-out publisher for a query
// id, building it on first attach. Construction happens outside any
// delivery, so the build callback may allocate freely.
func (h *Hub) PublisherFor(id int, build func() Publisher) Publisher {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.pubs[id]; ok {
		return p
	}
	p := build()
	h.pubs[id] = p
	return p
}

// Publisher returns the fan-out publisher attached to a query id, or nil.
func (h *Hub) Publisher(id int) Publisher {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pubs[id]
}

// Publishers returns a snapshot of attached fan-out publishers keyed by
// query id (telemetry and drain iterate it).
func (h *Hub) Publishers() map[int]Publisher {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int]Publisher, len(h.pubs))
	for id, p := range h.pubs {
		out[id] = p
	}
	return out
}

// SpoolFor attaches (or returns) a pull spool for a query id.
func (h *Hub) SpoolFor(id int, capacity int) *Spool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sp, ok := h.spools[id]; ok {
		return sp
	}
	sp := NewSpool(capacity)
	h.spools[id] = sp
	return sp
}

// Deliver routes one result row to the query's consumers. It never
// blocks, and it takes ownership of the row (see the package comment).
// Producer-side SPSC contract: all Deliver/DeliverBatch calls for one
// query id must be serialized — the executor guarantees this by keeping
// each query on one EO and acking cancellation before the flush path
// delivers.
func (h *Hub) Deliver(id int, row *tuple.Tuple) {
	h.mu.Lock()
	sub := h.subs[id]
	sp := h.spools[id]
	pub := h.pubs[id]
	h.mu.Unlock()
	var end int64
	if sp != nil {
		sp.Append(row) // retains
		end = sp.End()
	}
	if pub != nil {
		one := [1]*tuple.Tuple{row}
		pub.Publish(one[:], end) // observes only
	}
	if sub != nil {
		if sub.enter() {
			if !sub.q.TryEnqueue(row) {
				sub.dropped.Add(1)
				tuple.Recycle(row)
			}
			sub.exit()
		} else {
			// Sealed concurrently: the consumer is gone; retire here.
			sub.dropped.Add(1)
			tuple.Recycle(row)
		}
	} else if sp == nil {
		tuple.Recycle(row)
	}
}

// DeliverBatch routes a batch of result rows for one query: one hub
// lookup and one ring publish for the whole slice. Ownership and
// serialization rules are those of Deliver. The slice itself is not
// retained.
func (h *Hub) DeliverBatch(id int, rows []*tuple.Tuple) {
	if len(rows) == 0 {
		return
	}
	h.mu.Lock()
	sub := h.subs[id]
	sp := h.spools[id]
	pub := h.pubs[id]
	h.mu.Unlock()
	var end int64
	if sp != nil {
		sp.AppendBatch(rows) // retains
		end = sp.End()
	}
	if pub != nil {
		pub.Publish(rows, end) // observes only; encodes before returning
	}
	if sub != nil {
		n := 0
		if sub.enter() {
			n = sub.q.TryEnqueueBatch(rows)
			sub.exit()
		}
		if n < len(rows) {
			sub.dropped.Add(int64(len(rows) - n))
			for _, r := range rows[n:] {
				tuple.Recycle(r)
			}
		}
	} else if sp == nil {
		for _, r := range rows {
			tuple.Recycle(r)
		}
	}
}

// Fail marks a query's consumers with a terminal error (its EO was
// quarantined) and closes the push queue. Already-delivered rows remain
// consumable; after draining, Next reports closed and Err explains why.
// The spool is marked terminal too, so a pull client that reconnects
// sees the failure rather than a silently frozen result log, and an
// attached fan-out publisher propagates the error to every subscriber.
// The consumers stay attached so telemetry still observes them until
// the query is cancelled.
func (h *Hub) Fail(id int, err error) {
	h.mu.Lock()
	sub := h.subs[id]
	sp := h.spools[id]
	pub := h.pubs[id]
	h.mu.Unlock()
	if sub != nil {
		sub.seal(err)
	}
	if sp != nil {
		sp.Fail(err)
	}
	if pub != nil {
		pub.Fail(err)
	}
}

// Close tears down a query's consumers (cursor closed / query removed).
func (h *Hub) Close(id int) {
	h.mu.Lock()
	s := h.subs[id]
	delete(h.subs, id)
	delete(h.spools, id)
	p := h.pubs[id]
	delete(h.pubs, id)
	h.mu.Unlock()
	if s != nil {
		s.seal(nil)
	}
	if p != nil {
		p.Close()
	}
}

// Subscriptions returns a snapshot of the attached push subscriptions
// (telemetry reads queue depth and shed counts through it).
func (h *Hub) Subscriptions() []*Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		out = append(out, s)
	}
	return out
}

// CloseAll tears down everything (server shutdown).
func (h *Hub) CloseAll() {
	h.mu.Lock()
	subs := h.subs
	pubs := h.pubs
	h.subs = map[int]*Subscription{}
	h.spools = map[int]*Spool{}
	h.pubs = map[int]Publisher{}
	h.mu.Unlock()
	for _, s := range subs {
		s.seal(nil)
	}
	for _, p := range pubs {
		p.Close()
	}
}

// Spool is the pull-based egress operator: results are logged with
// monotonically increasing offsets; an intermittent client fetches from
// its last offset on reconnect. Capacity bounds retained rows (older
// rows age out, and the base offset advances). Spooled rows are Retained
// — Fetch hands out aliases, so they can never return to the pool.
type Spool struct {
	mu   sync.Mutex
	rows []*tuple.Tuple
	base int64 // offset of rows[0]
	cap  int

	failed atomic.Value // error: set when the query was quarantined
}

// NewSpool builds a spool retaining up to capacity rows (<=0 → 4096).
func NewSpool(capacity int) *Spool {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Spool{cap: capacity}
}

// Append logs one row, retaining it.
func (s *Spool) Append(row *tuple.Tuple) {
	row.Retain()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, row)
	s.trimLocked()
}

// AppendBatch logs a batch of rows under one lock round-trip.
func (s *Spool) AppendBatch(rows []*tuple.Tuple) {
	for _, r := range rows {
		r.Retain()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, rows...)
	s.trimLocked()
}

func (s *Spool) trimLocked() {
	if over := len(s.rows) - s.cap; over > 0 {
		s.rows = append(s.rows[:0], s.rows[over:]...)
		s.base += int64(over)
	}
}

// Fetch returns rows from offset `from` (inclusive) and the next offset
// to resume from. Rows aged out below the retained range are skipped.
func (s *Spool) Fetch(from int64) (rows []*tuple.Tuple, next int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.base {
		from = s.base
	}
	i := from - s.base
	if i >= int64(len(s.rows)) {
		return nil, s.base + int64(len(s.rows))
	}
	out := append([]*tuple.Tuple(nil), s.rows[i:]...)
	return out, s.base + int64(len(s.rows))
}

// FetchInto copies up to cap(dst) rows from offset `from` into dst[:0]
// and returns the filled slice plus the next offset to resume from —
// the allocation-free variant of Fetch for steady-state pollers (a
// cohort replaying 100k subscribers must not allocate a slice per
// fetch). The returned slice aliases dst's backing array.
func (s *Spool) FetchInto(dst []*tuple.Tuple, from int64) (rows []*tuple.Tuple, next int64) {
	dst = dst[:0]
	if cap(dst) == 0 {
		return dst, from
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.base {
		from = s.base
	}
	i := from - s.base
	if i >= int64(len(s.rows)) {
		return dst, s.base + int64(len(s.rows))
	}
	avail := s.rows[i:]
	n := len(avail)
	if n > cap(dst) {
		n = cap(dst)
	}
	dst = append(dst, avail[:n]...)
	return dst, from + int64(n)
}

// End returns the offset one past the last logged row.
func (s *Spool) End() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base + int64(len(s.rows))
}

// Base returns the offset of the oldest retained row (rows below it
// have aged out). A cohort that replays everything retained starts its
// cursor here; one that wants live-only results starts at End.
func (s *Spool) Base() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// Fail marks the spool terminal: the query producing into it was
// quarantined. Retained rows stay fetchable (partial results are still
// results), but Err tells a reconnecting pull client why no more will
// arrive.
func (s *Spool) Fail(err error) { s.failed.Store(err) }

// Err returns the terminal error of a failed query (nil while healthy).
func (s *Spool) Err() error {
	if v := s.failed.Load(); v != nil {
		return v.(error)
	}
	return nil
}
