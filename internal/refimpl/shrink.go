package refimpl

import "slices"

// The greedy shrinker. Given a workload that fails (engine disagrees
// with the reference, or errors reproducibly) and a predicate that
// re-checks failure, it tries structural deletions — whole queries,
// push events in halves then singles, query clauses, unused streams —
// keeping each edit only if the failure survives. The result is the
// minimal repro written next to the bug as a .tcq pin.

// defaultShrinkBudget caps predicate invocations; each one replays the
// workload through the engine, so this bounds shrink time.
const defaultShrinkBudget = 400

type shrinker struct {
	failing func(*Workload) bool
	budget  int
}

// Shrink greedily minimizes w under the failing predicate. budget <= 0
// uses the default. The input workload is never mutated.
func Shrink(w *Workload, failing func(*Workload) bool, budget int) *Workload {
	if budget <= 0 {
		budget = defaultShrinkBudget
	}
	s := &shrinker{failing: failing, budget: budget}
	cur := w
	for {
		next := s.pass(cur)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// check spends budget; once exhausted every candidate is rejected.
func (s *shrinker) check(w *Workload) bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	return s.failing(w)
}

// pass runs every shrink strategy once; nil means no edit survived.
func (s *shrinker) pass(w *Workload) *Workload {
	improved := false
	for _, strat := range []func(*Workload) *Workload{
		s.dropQueries, s.dropEventRuns, s.simplifyQueries, s.dropStreams,
	} {
		if next := strat(w); next != nil {
			w, improved = next, true
		}
	}
	if !improved {
		return nil
	}
	return w
}

func cloneWorkload(w *Workload) *Workload {
	c := *w
	c.Streams = slices.Clone(w.Streams)
	c.Queries = slices.Clone(w.Queries)
	c.Events = slices.Clone(w.Events)
	return &c
}

// dropQuery removes query qi and renumbers event references.
func dropQuery(w *Workload, qi int) *Workload {
	c := cloneWorkload(w)
	c.Queries = append(slices.Clone(w.Queries[:qi]), w.Queries[qi+1:]...)
	c.Events = nil
	for _, e := range w.Events {
		if e.Kind == EvAdd || e.Kind == EvRemove {
			if e.Query == qi {
				continue
			}
			if e.Query > qi {
				e.Query--
			}
		}
		c.Events = append(c.Events, e)
	}
	return c
}

func (s *shrinker) dropQueries(w *Workload) *Workload {
	var out *Workload
	for qi := len(w.Queries) - 1; qi >= 0 && len(w.Queries) > 1; qi-- {
		if c := dropQuery(w, qi); s.check(c) {
			w, out = c, c
		}
	}
	return out
}

// dropEventRuns removes runs of push events: halves first (delta
// debugging flavor), then singles.
func (s *shrinker) dropEventRuns(w *Workload) *Workload {
	pushIdx := func(w *Workload) []int {
		var idx []int
		for i, e := range w.Events {
			if e.Kind == EvPush {
				idx = append(idx, i)
			}
		}
		return idx
	}
	dropRange := func(w *Workload, idx []int, lo, hi int) *Workload {
		doomed := map[int]bool{}
		for _, i := range idx[lo:hi] {
			doomed[i] = true
		}
		c := cloneWorkload(w)
		c.Events = nil
		for i, e := range w.Events {
			if !doomed[i] {
				c.Events = append(c.Events, e)
			}
		}
		return c
	}
	var out *Workload
	for chunk := len(pushIdx(w)) / 2; chunk >= 1; chunk /= 2 {
		for {
			idx := pushIdx(w)
			shrunk := false
			for lo := 0; lo+chunk <= len(idx); lo += chunk {
				if c := dropRange(w, idx, lo, lo+chunk); s.check(c) {
					w, out, shrunk = c, c, true
					break // indices shifted; rescan
				}
			}
			if !shrunk {
				break
			}
		}
	}
	return out
}

func cloneGen(g *GenQuery) *GenQuery {
	c := *g
	c.From = slices.Clone(g.From)
	c.Items = slices.Clone(g.Items)
	c.Where = slices.Clone(g.Where)
	c.GroupBy = slices.Clone(g.GroupBy)
	if g.Window != nil {
		wc := *g.Window
		wc.Defs = slices.Clone(g.Window.Defs)
		c.Window = &wc
	}
	return &c
}

// simplifyQueries edits query clauses through the structured GenQuery
// form (raw-SQL queries loaded from .tcq files are left alone).
func (s *shrinker) simplifyQueries(w *Workload) *Workload {
	countAggs := func(g *GenQuery) int {
		n := 0
		for _, it := range g.Items {
			if it.Agg != "" {
				n++
			}
		}
		return n
	}
	var out *Workload
	for qi := range w.Queries {
		g := w.Queries[qi].Gen
		if g == nil || w.Queries[qi].ExpectErr {
			continue
		}
		var edits []func(*GenQuery) bool // return false if inapplicable
		for i := range g.Where {
			i := i
			edits = append(edits, func(c *GenQuery) bool {
				// Earlier edits may have mutated the query this clone came
				// from; a stale index is a no-op, not a crash.
				if i >= len(c.Where) {
					return false
				}
				c.Where = append(slices.Clone(c.Where[:i]), c.Where[i+1:]...)
				return true
			})
		}
		edits = append(edits,
			func(c *GenQuery) bool { old := c.Distinct; c.Distinct = false; return old },
			func(c *GenQuery) bool { old := c.Limit; c.Limit = 0; return old > 0 },
			func(c *GenQuery) bool {
				if len(c.GroupBy) == 0 {
					return false
				}
				c.GroupBy = nil
				// Scalar items are only legal as GROUP BY columns.
				var items []GenItem
				for _, it := range c.Items {
					if it.Agg != "" || it.Star {
						items = append(items, it)
					}
				}
				if len(items) == 0 {
					return false
				}
				c.Items = items
				return true
			},
			func(c *GenQuery) bool {
				// Windows are structural for aggregates and historical
				// queries; only join windows are optional.
				if c.Kind != QJoin || c.Window == nil {
					return false
				}
				c.Window = nil
				return true
			},
		)
		if countAggs(g) > 1 {
			for i := range g.Items {
				i := i
				if g.Items[i].Agg == "" {
					continue
				}
				edits = append(edits, func(c *GenQuery) bool {
					// Item positions shift when earlier edits (GROUP BY
					// removal filters scalars) rewrite Items — guard the
					// stale index and re-check it still names an aggregate.
					if countAggs(c) <= 1 || i >= len(c.Items) || c.Items[i].Agg == "" {
						return false
					}
					c.Items = append(slices.Clone(c.Items[:i]), c.Items[i+1:]...)
					return true
				})
			}
		}
		for _, edit := range edits {
			cg := cloneGen(w.Queries[qi].Gen)
			if !edit(cg) {
				continue
			}
			c := cloneWorkload(w)
			c.Queries[qi].Gen = cg
			c.Queries[qi].SQL = cg.Render()
			if s.check(c) {
				w, out = c, c
			}
		}
	}
	return out
}

// dropStreams removes streams no query reads and no push feeds.
func (s *shrinker) dropStreams(w *Workload) *Workload {
	used := map[string]bool{}
	for _, q := range w.Queries {
		if q.Gen != nil {
			for _, f := range q.Gen.From {
				used[f.Stream] = true
			}
		} else {
			// Raw SQL: conservatively keep every stream it names.
			for _, st := range w.Streams {
				if containsWord(q.SQL, st.Name) {
					used[st.Name] = true
				}
			}
		}
	}
	for _, e := range w.Events {
		if e.Kind == EvPush {
			used[e.Stream] = true
		}
	}
	var keep []StreamDef
	for _, st := range w.Streams {
		if used[st.Name] {
			keep = append(keep, st)
		}
	}
	if len(keep) == len(w.Streams) {
		return nil
	}
	c := cloneWorkload(w)
	c.Streams = keep
	if s.check(c) {
		return c
	}
	return nil
}

func containsWord(s, word string) bool {
	for i := 0; i+len(word) <= len(s); i++ {
		if s[i:i+len(word)] != word {
			continue
		}
		beforeOK := i == 0 || !isWordByte(s[i-1])
		afterOK := i+len(word) == len(s) || !isWordByte(s[i+len(word)])
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}
