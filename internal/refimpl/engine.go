package refimpl

import (
	"fmt"
	"os"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/core"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/tuple"
)

// EngineConfig is one point in the adaptivity-knob sweep. Every config
// must produce the same per-query output multisets — batching, routing
// policy, EO placement, and injected backpressure are all supposed to
// be invisible to query answers.
type EngineConfig struct {
	Label  string
	Batch  int
	Mode   executor.ClassMode
	Policy func(seed int64) eddy.Policy
	// Shards is the multi-eddy shard count per EO (0/1 = classic single
	// engine; N>1 = hash shards + catch-all). Sharding must be invisible
	// to query answers, so the sweep crosses it with the other knobs.
	Shards int
	// Chaos is a chaos.Parse spec ("" = none). The oracle only injects
	// lossless faults (queue-full bursts against blocking QoS), so
	// answers must still match exactly.
	Chaos string
	// Interpreted forces the tree-walking expression interpreter
	// (executor.ExprInterpreted). The default sweeps run compiled; the
	// interpreted mirrors pin compiled-vs-interpreted equivalence.
	Interpreted bool
}

// Configs returns the standard sweep: shard count × routing policy,
// with batch size and EO class mode cycled across cells so every value
// of each knob appears against every shard count. withChaos appends a
// backpressure-burst config.
func Configs(withChaos bool) []EngineConfig {
	return buildConfigs(withChaos, false)
}

// SmokeConfigs is the 4-config subset the in-tree smoke test uses (one
// per shard count, plus one interpreted mirror).
func SmokeConfigs() []EngineConfig {
	all := buildConfigs(false, false)
	return []EngineConfig{all[0], all[4], all[8], all[9]}
}

func buildConfigs(withChaos, _ bool) []EngineConfig {
	shardCounts := []int{1, 2, 4}
	batches := []int{1, 64, 512}
	policies := []struct {
		name string
		fn   func(seed int64) eddy.Policy
	}{
		{"fixed", func(int64) eddy.Policy { return eddy.NewFixed(nil) }},
		{"random", func(seed int64) eddy.Policy { return eddy.NewRandom(seed) }},
		{"lottery", func(seed int64) eddy.Policy { return eddy.NewLottery(seed) }},
	}
	modes := []executor.ClassMode{executor.ClassByFootprint, executor.ClassSingle, executor.ClassPerQuery}
	var out []EngineConfig
	for si, sc := range shardCounts {
		for pi, p := range policies {
			b := batches[(si+pi)%len(batches)]
			m := modes[(si+pi)%len(modes)]
			out = append(out, EngineConfig{
				Label:  fmt.Sprintf("shards=%d/policy=%s/batch=%d/mode=%s", sc, p.name, b, m),
				Batch:  b,
				Mode:   m,
				Policy: p.fn,
				Shards: sc,
			})
		}
	}
	// Interpreted mirrors: same workload through the reference
	// interpreter so the compiled bytecode path can never silently
	// diverge (shards {1,4} x batch {1,64,512}, policies cycled).
	for i, sc := range []int{1, 1, 1, 4, 4, 4} {
		b := batches[i%len(batches)]
		p := policies[i%len(policies)]
		m := modes[i%len(modes)]
		out = append(out, EngineConfig{
			Label:       fmt.Sprintf("shards=%d/policy=%s/batch=%d/mode=%s/expr=interpreted", sc, p.name, b, m),
			Batch:       b,
			Mode:        m,
			Policy:      p.fn,
			Shards:      sc,
			Interpreted: true,
		})
	}
	if withChaos {
		out = append(out, EngineConfig{
			Label:  "shards=2/policy=lottery/batch=1/mode=footprint/chaos=full",
			Batch:  1,
			Mode:   executor.ClassByFootprint,
			Policy: func(seed int64) eddy.Policy { return eddy.NewLottery(seed) },
			Shards: 2,
			Chaos:  "seed=7,full=0.2",
		})
	}
	return out
}

// RunEngine replays the workload against a real engine instance under
// one config and returns the per-query output multisets. Any tuple loss
// (QoS shedding, subscription drops) is an error, not a diff — the
// harness configures lossless delivery, so loss means the harness's
// premise broke and a diff would be noise.
func RunEngine(w *Workload, cfg EngineConfig) (map[int]Multiset, error) {
	var inj *chaos.Injector
	if cfg.Chaos != "" {
		var err error
		if inj, err = chaos.Parse(cfg.Chaos); err != nil {
			return nil, err
		}
	}
	opts := core.Options{Executor: executor.Options{
		Mode:            cfg.Mode,
		Policy:          cfg.Policy,
		QueueCap:        1 << 15,
		SubscriptionCap: 1 << 17,
		Batch:           cfg.Batch,
		Shards:          cfg.Shards,
		SampleInterval:  -1,
		Chaos:           inj,
	}}
	if cfg.Interpreted {
		opts.Executor.CompiledExpr = executor.ExprInterpreted
	}
	for _, s := range w.Streams {
		if s.Archived {
			dir, err := os.MkdirTemp("", "tcqcheck-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			opts.DataDir = dir
			break
		}
	}
	sys := core.NewSystem(opts)
	defer sys.Close()
	for _, s := range w.Streams {
		if err := sys.Exec(s.DDL()); err != nil {
			return nil, fmt.Errorf("%s: %w", s.DDL(), err)
		}
	}

	results := map[int]Multiset{}
	for qi := range w.Queries {
		results[qi] = Multiset{}
	}
	// live maps query index → open handles (usually one; re-adds stack).
	live := map[int][]*core.Query{}
	drainHandle := func(qi int, q *core.Query) error {
		for {
			t, ok := q.TryNext()
			if !ok {
				break
			}
			results[qi].Add(RenderRow(t.Values))
		}
		if d := q.Dropped(); d != 0 {
			return fmt.Errorf("query %d dropped %d rows (subscription overflow — raise caps)", qi, d)
		}
		return nil
	}
	quiesce := func() error {
		if err := sys.Barrier(); err != nil {
			return err
		}
		for qi, qs := range live {
			for _, q := range qs {
				if err := drainHandle(qi, q); err != nil {
					return err
				}
			}
		}
		return nil
	}

	pushes := 0
	for _, e := range w.Events {
		switch e.Kind {
		case EvPush:
			var wall time.Time
			if e.WallMs > 0 {
				wall = time.UnixMilli(e.WallMs)
			}
			if err := sys.PushStamped(e.Stream, wall, e.Values...); err != nil {
				return nil, fmt.Errorf("push %s: %w", e.Stream, err)
			}
			pushes++
			if w.BarrierEvery > 0 && pushes%w.BarrierEvery == 0 {
				if err := quiesce(); err != nil {
					return nil, err
				}
			}
		case EvAdd:
			if err := quiesce(); err != nil {
				return nil, err
			}
			def := w.Queries[e.Query]
			q, err := sys.Submit(def.SQL)
			if def.ExpectErr {
				if err == nil {
					_ = q.Cancel()
					return nil, fmt.Errorf("query %d was accepted but must be rejected: %s", e.Query, def.SQL)
				}
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("submit query %d (%s): %w", e.Query, def.SQL, err)
			}
			if q.ID == -1 {
				// Historical: completed at submission; collect now.
				if err := drainHandle(e.Query, q); err != nil {
					return nil, err
				}
				continue
			}
			live[e.Query] = append(live[e.Query], q)
		case EvRemove:
			if err := quiesce(); err != nil {
				return nil, err
			}
			qs := live[e.Query]
			if len(qs) == 0 {
				continue
			}
			q := qs[len(qs)-1]
			live[e.Query] = qs[:len(qs)-1]
			// LIMIT queries cancel themselves asynchronously; a second
			// cancel racing that is fine, the drain below is what matters.
			_ = q.Cancel()
			if err := drainHandle(e.Query, q); err != nil {
				return nil, err
			}
		case EvBarrier:
			if err := quiesce(); err != nil {
				return nil, err
			}
		}
	}
	if err := quiesce(); err != nil {
		return nil, err
	}
	for qi, qs := range live {
		for _, q := range qs {
			_ = q.Cancel()
			if err := drainHandle(qi, q); err != nil {
				return nil, err
			}
		}
	}
	if shed := sys.Executor().Shed(); shed != 0 {
		return nil, fmt.Errorf("engine shed %d tuples under blocking QoS — lossy run, diff would be noise", shed)
	}
	return results, nil
}

// renderTuple is a debugging aid: the human-readable form of an engine
// output row (RenderRow is the comparable form).
func renderTuple(t *tuple.Tuple) string { return t.String() }
