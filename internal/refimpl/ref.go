package refimpl

import (
	"fmt"
	"math"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// The reference interpreter. It trades every efficiency the engine has
// for auditability: all pushed tuples are buffered forever, every query
// re-evaluates its windows, joins, and aggregates from scratch over the
// full history, and nothing is shared between queries. Its output is
// the specification the engine is diffed against.

// maxWindowIters bounds for-loop enumeration — a runaway guard, far
// above anything the generator emits.
const maxWindowIters = 1 << 16

// noRetention marks an alias whose stored tuples are never evicted.
const noRetention = int64(-1)

// pushRec is one buffered input tuple.
type pushRec struct {
	event  int   // global event index (position in Workload.Events)
	seq    int64 // per-stream logical sequence, first push = 1
	wallMs int64 // 0 = untimestamped
	vals   []tuple.Value
}

// activation is one [add, remove) lifetime of a query. cancel is the
// event index of the remove (len(events) if never removed).
type activation struct{ reg, cancel int }

// RunReference evaluates the workload naively and returns the expected
// output multiset per query index. ExpectErr queries contribute an
// empty multiset (they must fail to submit).
func RunReference(w *Workload) (map[int]Multiset, error) {
	streams := map[string]StreamDef{}
	for _, s := range w.Streams {
		streams[s.Name] = s
	}
	pushes := map[string][]pushRec{}
	seqs := map[string]int64{}
	acts := map[int][]activation{}
	openAct := map[int]int{}
	for i, e := range w.Events {
		switch e.Kind {
		case EvPush:
			seqs[e.Stream]++
			pushes[e.Stream] = append(pushes[e.Stream], pushRec{
				event: i, seq: seqs[e.Stream], wallMs: e.WallMs, vals: e.Values,
			})
		case EvAdd:
			openAct[e.Query] = len(acts[e.Query])
			acts[e.Query] = append(acts[e.Query], activation{reg: i, cancel: len(w.Events)})
		case EvRemove:
			if j, ok := openAct[e.Query]; ok {
				acts[e.Query][j].cancel = i
				delete(openAct, e.Query)
			}
		}
	}
	out := map[int]Multiset{}
	for qi, q := range w.Queries {
		out[qi] = Multiset{}
		if q.ExpectErr {
			continue
		}
		st, err := sql.Parse(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", qi, err)
		}
		sel, ok := st.(*sql.Select)
		if !ok {
			return nil, fmt.Errorf("query %d: not a SELECT", qi)
		}
		r := &refQuery{sel: sel, streams: streams, pushes: pushes}
		for _, act := range acts[qi] {
			if err := r.eval(act, out[qi]); err != nil {
				return nil, fmt.Errorf("query %d: %w", qi, err)
			}
		}
	}
	return out, nil
}

// refQuery evaluates one parsed query over the buffered history. The
// AST is this query's private copy (RunReference parses per query), so
// column-cache state inside expressions never leaks across consumers.
type refQuery struct {
	sel     *sql.Select
	streams map[string]StreamDef
	pushes  map[string][]pushRec
}

func (r *refQuery) eval(act activation, out Multiset) error {
	switch {
	case r.sel.Window != nil && r.sel.Window.Step < 0:
		return r.evalHistorical(act, out)
	case hasAgg(r.sel):
		return r.evalAgg(act, out)
	case len(r.sel.From) == 2:
		return r.evalJoin(act, out)
	case len(r.sel.From) == 1:
		return r.evalSelect(act, out)
	}
	return fmt.Errorf("refimpl: unsupported FROM arity %d", len(r.sel.From))
}

func hasAgg(sel *sql.Select) bool {
	for _, it := range sel.Items {
		if it.Agg != nil {
			return true
		}
	}
	return false
}

// schemaFor renames the stream schema to the FROM item's binding name,
// mirroring feed registration in the executor.
func (r *refQuery) schemaFor(f sql.FromItem) (*tuple.Schema, error) {
	def, ok := r.streams[f.Source]
	if !ok {
		return nil, fmt.Errorf("refimpl: unknown stream %q", f.Source)
	}
	return def.Schema().Rename(f.Name()), nil
}

// makeTuple materializes a buffered push as a tuple of the given schema.
func makeTuple(s *tuple.Schema, p pushRec) *tuple.Tuple {
	t := tuple.New(s, p.vals...)
	t.TS = tuple.Timestamp{Seq: p.seq}
	if p.wallMs > 0 {
		t.TS.Wall = time.UnixMilli(p.wallMs)
	}
	return t
}

// within selects the stream's pushes a live query observes: those
// admitted inside its [reg, cancel) lifetime.
func (r *refQuery) within(stream string, act activation) []pushRec {
	var recs []pushRec
	for _, p := range r.pushes[stream] {
		if p.event > act.reg && p.event < act.cancel {
			recs = append(recs, p)
		}
	}
	return recs
}

// stBinding mirrors Submit: logical ST is the max current sequence over
// the FROM streams at registration. Physical ST binds the wall clock,
// which the generator keeps out of every expression (STCoef = 0), so 0
// is as good as any value.
func (r *refQuery) stBinding(act activation) int64 {
	if r.sel.Window != nil && r.sel.Window.Domain == tuple.PhysicalTime {
		return 0
	}
	var st int64
	for _, f := range r.sel.From {
		st = max(st, r.curSeqAt(f.Source, act.reg))
	}
	return st
}

// curSeqAt is the stream's sequence counter just before the event.
func (r *refQuery) curSeqAt(stream string, event int) int64 {
	var cur int64
	for _, p := range r.pushes[stream] {
		if p.event < event {
			cur = p.seq
		}
	}
	return cur
}

// projectRow evaluates the SELECT list against one (possibly joined)
// tuple. A star expands to every column in FROM order. An eval error
// drops the row, as in the engine's delivery path.
func projectRow(sel *sql.Select, t *tuple.Tuple) ([]tuple.Value, bool) {
	var row []tuple.Value
	for _, it := range sel.Items {
		if it.Star {
			row = append(row, t.Values...)
			continue
		}
		v, err := it.Expr.Eval(t)
		if err != nil {
			return nil, false
		}
		row = append(row, v)
	}
	return row, true
}

// passes applies the WHERE clause; eval errors drop the row.
func passes(where expr.Expr, t *tuple.Tuple) bool {
	if where == nil {
		return true
	}
	ok, err := expr.Truthy(where, t)
	return err == nil && ok
}

// ------------------------------------------------------ plain selection

func (r *refQuery) evalSelect(act activation, out Multiset) error {
	s, err := r.schemaFor(r.sel.From[0])
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	var emitted int64
	for _, p := range r.within(r.sel.From[0].Source, act) {
		t := makeTuple(s, p)
		if !passes(r.sel.Where, t) {
			continue
		}
		row, ok := projectRow(r.sel, t)
		if !ok {
			continue
		}
		key := RenderRow(row)
		if r.sel.Distinct {
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		out.Add(key)
		emitted++
		if r.sel.Limit > 0 && emitted >= r.sel.Limit {
			break
		}
	}
	return nil
}

// --------------------------------------------------------------- joins

// refRetention derives the eviction horizon the engine applies to an
// alias's stored tuples, from first principles: a rigid sliding window
// (both edges ride t, the loop steps forward without bound) keeps
// exactly `width` trailing tuples; any other shape pins history
// forever. Computed independently of window.Retention so a bug there
// shows up as a diff.
func refRetention(spec *window.Spec, alias string) int64 {
	if spec == nil || spec.Step <= 0 || spec.Cond.Op == window.CondEq {
		return noRetention
	}
	for _, d := range spec.Defs {
		if d.Stream != alias {
			continue
		}
		rigid := d.Left.TCoef == 1 && d.Right.TCoef == 1 &&
			d.Left.STCoef == 0 && d.Right.STCoef == 0
		if !rigid {
			return noRetention
		}
		if w := d.Right.Const - d.Left.Const + 1; w > 0 {
			return w
		}
		return noRetention
	}
	return noRetention
}

func (r *refQuery) evalJoin(act activation, out Multiset) error {
	fa, fb := r.sel.From[0], r.sel.From[1]
	sa, err := r.schemaFor(fa)
	if err != nil {
		return err
	}
	sb, err := r.schemaFor(fb)
	if err != nil {
		return err
	}
	wa := refRetention(r.sel.Window, fa.Name())
	wb := refRetention(r.sel.Window, fb.Name())
	pa := r.within(fa.Source, act)
	pb := r.within(fb.Source, act)
	// maxSeqUpTo(stream, e) = highest sequence this query has seen for
	// the stream at or before event e — the horizon the engine's SteM
	// eviction had applied by the time the later tuple probed.
	maxSeqUpTo := func(stream string, e int) int64 {
		var m int64
		for _, p := range r.pushes[stream] {
			if p.event > act.reg && p.event <= e && p.event < act.cancel {
				m = p.seq
			}
		}
		return m
	}
	retained := func(stored pushRec, storedStream string, w int64, probeEvent int) bool {
		if w == noRetention {
			return true
		}
		horizon := maxSeqUpTo(storedStream, probeEvent) - w + 1
		return stored.seq >= horizon
	}
	for _, a := range pa {
		ta := makeTuple(sa, a)
		for _, b := range pb {
			if a.event != b.event {
				// The earlier tuple is the stored side: it must have
				// survived its alias's eviction horizon at probe time.
				if a.event < b.event {
					if !retained(a, fa.Source, wa, b.event) {
						continue
					}
				} else if !retained(b, fb.Source, wb, a.event) {
					continue
				}
			}
			// Same event (self-join diagonal): both bindings of one
			// push, paired exactly once with no retention check.
			j := tuple.Concat(ta, makeTuple(sb, b))
			if !passes(r.sel.Where, j) {
				continue
			}
			row, ok := projectRow(r.sel, j)
			if !ok {
				continue
			}
			out.Add(RenderRow(row))
		}
	}
	return nil
}

// ---------------------------------------------------------- aggregates

// aggCompute re-derives one aggregate over a window's tuples with the
// engine's exact arithmetic (float accumulation, NULL args skipped).
func aggCompute(a *operator.AggSpec, rows []*tuple.Tuple) tuple.Value {
	if a.Kind == operator.AggCount && a.Arg == nil {
		return tuple.Int(int64(len(rows)))
	}
	var count, sum, sumsq float64
	minV, maxV := tuple.Null(), tuple.Null()
	for _, t := range rows {
		v, err := a.Arg.Eval(t)
		if err != nil || v.IsNull() {
			continue
		}
		f := v.AsFloat()
		count++
		sum += f
		sumsq += f * f
		if c, ok := tuple.Compare(v, minV); minV.IsNull() || (ok && c < 0) {
			minV = v
		}
		if c, ok := tuple.Compare(maxV, v); maxV.IsNull() || (ok && c < 0) {
			maxV = v
		}
	}
	switch a.Kind {
	case operator.AggCount:
		return tuple.Int(int64(count))
	case operator.AggSum:
		if count == 0 {
			return tuple.Null()
		}
		return tuple.Float(sum)
	case operator.AggAvg:
		if count == 0 {
			return tuple.Null()
		}
		return tuple.Float(sum / count)
	case operator.AggMin:
		return minV
	case operator.AggMax:
		return maxV
	case operator.AggStdDev:
		if count == 0 {
			return tuple.Null()
		}
		mean := sum / count
		v := sumsq/count - mean*mean
		if v < 0 {
			v = 0
		}
		return tuple.Float(math.Sqrt(v))
	}
	return tuple.Null()
}

// emitAggRows renders one window instance's aggregate output: the
// engine's WindowAgg schema is [t, GROUP BY columns, aggregates in
// SELECT order]. Without GROUP BY, an empty window still emits a row
// (COUNT 0, NULL otherwise); with GROUP BY only populated groups do.
func (r *refQuery) emitAggRows(t int64, rows []*tuple.Tuple, out Multiset) error {
	var aggs []*operator.AggSpec
	for _, it := range r.sel.Items {
		if it.Agg != nil {
			aggs = append(aggs, it.Agg)
		}
	}
	emit := func(groupRows []*tuple.Tuple, groupVals []tuple.Value) {
		row := append([]tuple.Value{tuple.Int(t)}, groupVals...)
		for _, a := range aggs {
			row = append(row, aggCompute(a, groupRows))
		}
		out.Add(RenderRow(row))
	}
	if len(r.sel.GroupBy) == 0 {
		emit(rows, nil)
		return nil
	}
	groups := map[string][]*tuple.Tuple{}
	keyVals := map[string][]tuple.Value{}
	for _, tp := range rows {
		var gv []tuple.Value
		bad := false
		for _, c := range r.sel.GroupBy {
			v, err := c.Eval(tp)
			if err != nil {
				bad = true
				break
			}
			gv = append(gv, v)
		}
		if bad {
			continue
		}
		k := RenderRow(gv)
		groups[k] = append(groups[k], tp)
		keyVals[k] = gv
	}
	for k, g := range groups {
		emit(g, keyVals[k])
	}
	return nil
}

func (r *refQuery) evalAgg(act activation, out Multiset) error {
	if len(r.sel.From) != 1 {
		return fmt.Errorf("refimpl: aggregates are single-stream")
	}
	spec := r.sel.Window
	if spec == nil {
		return fmt.Errorf("refimpl: aggregate without window")
	}
	s, err := r.schemaFor(r.sel.From[0])
	if err != nil {
		return err
	}
	def := spec.Defs[0]
	for _, d := range spec.Defs {
		if d.Stream == r.sel.From[0].Name() {
			def = d
		}
	}
	st := r.stBinding(act)
	// Buffer the passing tuples with their instants; untimestamped
	// tuples have no coordinate in a physical domain and are skipped.
	var kept []*tuple.Tuple
	maxInstant := int64(math.MinInt64)
	for _, p := range r.within(r.sel.From[0].Source, act) {
		t := makeTuple(s, p)
		x := t.TS.Instant(spec.Domain)
		if x == tuple.NoInstant {
			continue
		}
		if !passes(r.sel.Where, t) {
			continue
		}
		kept = append(kept, t)
		maxInstant = max(maxInstant, x)
	}
	// Re-run the for-loop: a window [L,R] has closed — and is emitted —
	// once some passing tuple's instant moved strictly past R. Stop at
	// the first still-open window.
	t := spec.Init.Eval(0, st)
	for iter := 0; iter < maxWindowIters && spec.Cond.Holds(t, st); iter++ {
		l := def.Left.Eval(t, st)
		rr := def.Right.Eval(t, st)
		if maxInstant <= rr {
			break
		}
		var wins []*tuple.Tuple
		for _, tp := range kept {
			if x := tp.TS.Instant(spec.Domain); x >= l && x <= rr {
				wins = append(wins, tp)
			}
		}
		if err := r.emitAggRows(t, wins, out); err != nil {
			return err
		}
		if spec.Step == 0 {
			break
		}
		t += spec.Step
	}
	return nil
}

// ---------------------------------------------------------- historical

func (r *refQuery) evalHistorical(act activation, out Multiset) error {
	if len(r.sel.From) != 1 {
		return fmt.Errorf("refimpl: historical queries are single-stream")
	}
	f := r.sel.From[0]
	if !r.streams[f.Source].Archived {
		return fmt.Errorf("refimpl: historical query over unarchived stream %s", f.Source)
	}
	s, err := r.schemaFor(f)
	if err != nil {
		return err
	}
	spec := r.sel.Window
	def := spec.Defs[0]
	for _, d := range spec.Defs {
		if d.Stream == f.Name() {
			def = d
		}
	}
	// The archive records every push, whether or not any query was
	// listening: visibility is "all of history before submission", and
	// ST binds the stream's global sequence counter at that moment.
	st := r.curSeqAt(f.Source, act.reg)
	var history []pushRec
	for _, p := range r.pushes[f.Source] {
		if p.event < act.reg {
			history = append(history, p)
		}
	}
	hasAggs := hasAgg(r.sel)
	var rows []string
	t := spec.Init.Eval(0, st)
	for iter := 0; iter < maxWindowIters && spec.Cond.Holds(t, st); iter++ {
		l := def.Left.Eval(t, st)
		rr := def.Right.Eval(t, st)
		var kept []*tuple.Tuple
		for _, p := range history {
			if p.seq < l || p.seq > rr {
				continue
			}
			tp := makeTuple(s, p)
			if passes(r.sel.Where, tp) {
				kept = append(kept, tp)
			}
		}
		if hasAggs {
			// Every instance aggregates, even an empty one: the scan
			// hands each window to a fresh aggregate and flushes it.
			sub := Multiset{}
			if err := r.emitAggRows(t, kept, sub); err != nil {
				return err
			}
			for row, n := range sub {
				for i := 0; i < n; i++ {
					rows = append(rows, row)
				}
			}
		} else {
			for _, tp := range kept {
				if row, ok := projectRow(r.sel, tp); ok {
					rows = append(rows, RenderRow(row))
				}
			}
		}
		if spec.Step == 0 {
			break
		}
		t += spec.Step
	}
	if r.sel.Limit > 0 && int64(len(rows)) > r.sel.Limit {
		rows = rows[:r.sel.Limit]
	}
	for _, row := range rows {
		out.Add(row)
	}
	return nil
}
