// Package refimpl is the differential correctness oracle behind
// cmd/tcqcheck: a deliberately naive reference interpreter for the
// engine's query language, a seeded workload generator, and a greedy
// shrinker. The reference buffers every input tuple and re-evaluates
// each query from scratch — no shared filters, no SteMs, no eddies, no
// incremental window state — so its answers are easy to audit. The
// oracle runs the identical workload through the real engine across a
// sweep of adaptivity knobs and compares per-query output multisets;
// any disagreement is an engine bug (or a determinism leak), which the
// shrinker reduces to a minimal replayable .tcq script.
package refimpl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"telegraphcq/internal/tuple"
)

// ColDef is one column of a generated stream.
type ColDef struct {
	Name string
	Kind tuple.Kind
}

// StreamDef declares one input stream of a workload.
type StreamDef struct {
	Name     string
	Cols     []ColDef
	Archived bool
}

// Schema builds the tuple schema of the stream.
func (s StreamDef) Schema() *tuple.Schema {
	cols := make([]tuple.Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = tuple.Column{Source: s.Name, Name: c.Name, Kind: c.Kind}
	}
	return tuple.NewSchema(cols...)
}

// DDL renders the CREATE STREAM statement. Streams always declare the
// lossless block policy: the oracle's contract is that every pushed
// tuple enters the engine, so output multisets are exactly comparable.
func (s StreamDef) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE STREAM %s (", s.Name)
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, kindName(c.Kind))
	}
	b.WriteString(")")
	if s.Archived {
		b.WriteString(" ARCHIVED")
	}
	b.WriteString(" WITH (overflow = 'block', timeout_ms = 10000)")
	return b.String()
}

func kindName(k tuple.Kind) string {
	switch k {
	case tuple.KindInt:
		return "int"
	case tuple.KindFloat:
		return "float"
	case tuple.KindString:
		return "string"
	case tuple.KindBool:
		return "bool"
	}
	return "int"
}

// QueryDef is one workload query: the SQL text both sides consume, plus
// the structured form the shrinker edits (nil for queries loaded from a
// .tcq file).
type QueryDef struct {
	SQL string
	// ExpectErr marks a query whose Submit must FAIL (pinned
	// validation bugs: before the fix the engine accepted — or hung on
	// — the query; after, it must reject it).
	ExpectErr bool
	Gen       *GenQuery
}

// EventKind discriminates workload events.
type EventKind uint8

const (
	// EvPush delivers one tuple into a stream.
	EvPush EventKind = iota
	// EvAdd submits a query (by index into Workload.Queries).
	EvAdd
	// EvRemove cancels a previously added query.
	EvRemove
	// EvBarrier forces quiescence + drain (pins use it for explicit
	// sequencing; the runner also barriers around add/remove).
	EvBarrier
)

// Event is one step of a workload.
type Event struct {
	Kind   EventKind
	Stream string        // EvPush
	WallMs int64         // EvPush: wall-clock ms; 0 = untimestamped
	Values []tuple.Value // EvPush
	Query  int           // EvAdd / EvRemove: index into Queries
}

// Workload is a complete, self-contained differential test case.
type Workload struct {
	Seed    int64
	Streams []StreamDef
	Queries []QueryDef
	Events  []Event
	// BarrierEvery forces a barrier+drain after every N pushes
	// (0 = only around add/remove and at the end). Workloads with
	// windowed joins need 1: SteM eviction horizons are only equal on
	// both sides when each push is fully routed before the next.
	BarrierEvery int
}

// ------------------------------------------------------------- encoding

// Encode renders the workload as a replayable .tcq script.
func (w *Workload) Encode(out io.Writer) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, "# tcqcheck workload (seed %d)\n", w.Seed)
	fmt.Fprintf(bw, "seed %d\n", w.Seed)
	if w.BarrierEvery > 0 {
		fmt.Fprintf(bw, "barrier-every %d\n", w.BarrierEvery)
	}
	for _, s := range w.Streams {
		fmt.Fprintf(bw, "stream %s", s.Name)
		if s.Archived {
			fmt.Fprint(bw, " archived")
		}
		fmt.Fprint(bw, " (")
		for i, c := range s.Cols {
			if i > 0 {
				fmt.Fprint(bw, ", ")
			}
			fmt.Fprintf(bw, "%s %s", c.Name, kindName(c.Kind))
		}
		fmt.Fprintln(bw, ")")
	}
	for i, q := range w.Queries {
		bang := ""
		if q.ExpectErr {
			bang = "!"
		}
		fmt.Fprintf(bw, "query%s %d %s\n", bang, i, q.SQL)
	}
	for _, e := range w.Events {
		switch e.Kind {
		case EvPush:
			fmt.Fprintf(bw, "push %s", e.Stream)
			if e.WallMs > 0 {
				fmt.Fprintf(bw, " @%d", e.WallMs)
			}
			fmt.Fprint(bw, " ")
			for i, v := range e.Values {
				if i > 0 {
					fmt.Fprint(bw, ",")
				}
				fmt.Fprint(bw, v.String())
			}
			fmt.Fprintln(bw)
		case EvAdd:
			fmt.Fprintf(bw, "add %d\n", e.Query)
		case EvRemove:
			fmt.Fprintf(bw, "remove %d\n", e.Query)
		case EvBarrier:
			fmt.Fprintln(bw, "barrier")
		}
	}
	return bw.Flush()
}

// Decode parses a .tcq script back into a workload. Queries come back
// as raw SQL (Gen is nil: loaded workloads replay, they don't shrink).
func Decode(in io.Reader) (*Workload, error) {
	w := &Workload{}
	streams := map[string]StreamDef{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		word, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var err error
		switch word {
		case "seed":
			w.Seed, err = strconv.ParseInt(rest, 10, 64)
		case "barrier-every":
			w.BarrierEvery, err = strconv.Atoi(rest)
		case "stream":
			var def StreamDef
			def, err = decodeStream(rest)
			if err == nil {
				streams[def.Name] = def
				w.Streams = append(w.Streams, def)
			}
		case "query", "query!":
			idStr, sql, ok := strings.Cut(rest, " ")
			if !ok {
				err = fmt.Errorf("query wants '<id> <sql>'")
				break
			}
			var id int
			if id, err = strconv.Atoi(idStr); err != nil {
				break
			}
			if id != len(w.Queries) {
				err = fmt.Errorf("query ids must be dense and ordered (got %d, want %d)", id, len(w.Queries))
				break
			}
			w.Queries = append(w.Queries, QueryDef{SQL: strings.TrimSpace(sql), ExpectErr: word == "query!"})
		case "push":
			var ev Event
			ev, err = decodePush(rest, streams)
			if err == nil {
				w.Events = append(w.Events, ev)
			}
		case "add", "remove":
			var id int
			if id, err = strconv.Atoi(rest); err != nil {
				break
			}
			if id < 0 || id >= len(w.Queries) {
				err = fmt.Errorf("unknown query %d", id)
				break
			}
			kind := EvAdd
			if word == "remove" {
				kind = EvRemove
			}
			w.Events = append(w.Events, Event{Kind: kind, Query: id})
		case "barrier":
			w.Events = append(w.Events, Event{Kind: EvBarrier})
		default:
			err = fmt.Errorf("unknown directive %q", word)
		}
		if err != nil {
			return nil, fmt.Errorf("tcq line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return w, nil
}

// decodeStream parses "name [archived] (col kind, ...)".
func decodeStream(rest string) (StreamDef, error) {
	def := StreamDef{}
	open := strings.Index(rest, "(")
	closeIdx := strings.LastIndex(rest, ")")
	if open < 0 || closeIdx < open {
		return def, fmt.Errorf("stream wants 'name [archived] (col kind, ...)'")
	}
	head := strings.Fields(rest[:open])
	if len(head) == 0 {
		return def, fmt.Errorf("stream wants a name")
	}
	def.Name = head[0]
	for _, f := range head[1:] {
		if f == "archived" {
			def.Archived = true
		} else {
			return def, fmt.Errorf("unknown stream flag %q", f)
		}
	}
	for _, col := range strings.Split(rest[open+1:closeIdx], ",") {
		parts := strings.Fields(strings.TrimSpace(col))
		if len(parts) != 2 {
			return def, fmt.Errorf("bad column %q", col)
		}
		k, err := tuple.ParseKind(parts[1])
		if err != nil {
			return def, err
		}
		def.Cols = append(def.Cols, ColDef{Name: parts[0], Kind: k})
	}
	return def, nil
}

// decodePush parses "stream [@wallms] v,v,...".
func decodePush(rest string, streams map[string]StreamDef) (Event, error) {
	ev := Event{Kind: EvPush}
	parts := strings.Fields(rest)
	if len(parts) < 2 {
		return ev, fmt.Errorf("push wants 'stream [@ms] values'")
	}
	ev.Stream = parts[0]
	def, ok := streams[ev.Stream]
	if !ok {
		return ev, fmt.Errorf("push into undeclared stream %q", ev.Stream)
	}
	vals := parts[1]
	if strings.HasPrefix(vals, "@") {
		if len(parts) < 3 {
			return ev, fmt.Errorf("push wants values after the wall stamp")
		}
		ms, err := strconv.ParseInt(vals[1:], 10, 64)
		if err != nil {
			return ev, err
		}
		ev.WallMs = ms
		vals = strings.Join(parts[2:], " ")
	} else {
		vals = strings.Join(parts[1:], " ")
	}
	fields := strings.Split(vals, ",")
	if len(fields) != len(def.Cols) {
		return ev, fmt.Errorf("stream %s wants %d values, got %d", ev.Stream, len(def.Cols), len(fields))
	}
	for i, f := range fields {
		v, err := parseValue(strings.TrimSpace(f), def.Cols[i].Kind)
		if err != nil {
			return ev, err
		}
		ev.Values = append(ev.Values, v)
	}
	return ev, nil
}

func parseValue(s string, k tuple.Kind) (tuple.Value, error) {
	switch k {
	case tuple.KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		return tuple.Int(n), err
	case tuple.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		return tuple.Float(f), err
	case tuple.KindBool:
		b, err := strconv.ParseBool(s)
		return tuple.Bool(b), err
	default:
		return tuple.String(s), nil
	}
}

// ---------------------------------------------------------- multisets

// Multiset counts rendered output rows.
type Multiset map[string]int

// Add counts one row.
func (m Multiset) Add(row string) { m[row]++ }

// Total returns the number of rows (with multiplicity).
func (m Multiset) Total() int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

// Diff returns rows missing from got (present in m with higher count)
// and rows extra in got, as "row ×count" strings.
func (m Multiset) Diff(got Multiset) (missing, extra []string) {
	for row, want := range m {
		if have := got[row]; have < want {
			missing = append(missing, fmt.Sprintf("%s ×%d", row, want-have))
		}
	}
	for row, have := range got {
		if want := m[row]; have > want {
			extra = append(extra, fmt.Sprintf("%s ×%d", row, have-want))
		}
	}
	return missing, extra
}

// RenderRow is the canonical row encoding both sides share: each value
// tagged with its kind so "1" (int) and "1" (string) never collide, and
// joined with an unprintable separator so column boundaries are
// unambiguous.
func RenderRow(vals []tuple.Value) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteByte(byte('0' + v.K))
		b.WriteString(v.String())
	}
	return b.String()
}
