package refimpl

import (
	"fmt"
	"sort"
	"strings"
)

// The oracle: run a workload through the reference and through the
// engine under every config in the sweep, and diff per-query output
// multisets. A workload "fails" when any config disagrees with the
// reference or errors reproducibly (rejecting a query it must accept,
// accepting one it must reject, shedding tuples under blocking QoS).

// Mismatch describes one oracle failure, pinned to the first config
// that exposed it.
type Mismatch struct {
	Seed   int64
	Config string
	// Query/SQL identify the disagreeing query (-1 when the whole run
	// errored instead of producing comparable output).
	Query   int
	SQL     string
	Missing []string // rows the reference expects that the engine lost
	Extra   []string // rows the engine invented
	// Err is set when the engine run itself failed.
	Err error
}

func (m *Mismatch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d, config %s: ", m.Seed, m.Config)
	if m.Err != nil {
		fmt.Fprintf(&b, "engine run failed: %v", m.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "query %d diverged\n  %s\n", m.Query, m.SQL)
	show := func(label string, rows []string) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&b, "  %s (%d):\n", label, len(rows))
		for i, r := range rows {
			if i == 8 {
				fmt.Fprintf(&b, "    … %d more\n", len(rows)-i)
				break
			}
			fmt.Fprintf(&b, "    %s\n", humanRow(r))
		}
	}
	show("missing from engine", m.Missing)
	show("extra in engine", m.Extra)
	return strings.TrimRight(b.String(), "\n")
}

// humanRow decodes RenderRow's kind-tagged encoding for display.
func humanRow(r string) string {
	cols := strings.Split(r, "\x1f")
	for i, c := range cols {
		if len(c) > 0 && c[0] >= '0' && c[0] <= '9' {
			cols[i] = c[1:]
		}
	}
	return strings.Join(cols, ", ")
}

// CheckWorkload diffs the workload across the configs; nil means every
// config agreed with the reference. A RunReference error is returned as
// err (harness bug, not an engine finding).
func CheckWorkload(w *Workload, cfgs []EngineConfig) (*Mismatch, error) {
	want, err := RunReference(w)
	if err != nil {
		return nil, fmt.Errorf("reference: %w", err)
	}
	for _, cfg := range cfgs {
		got, err := RunEngine(w, cfg)
		if err != nil {
			return &Mismatch{Seed: w.Seed, Config: cfg.Label, Query: -1, Err: err}, nil
		}
		for qi := range w.Queries {
			missing, extra := want[qi].Diff(got[qi])
			if len(missing) == 0 && len(extra) == 0 {
				continue
			}
			sort.Strings(missing)
			sort.Strings(extra)
			return &Mismatch{
				Seed: w.Seed, Config: cfg.Label,
				Query: qi, SQL: w.Queries[qi].SQL,
				Missing: missing, Extra: extra,
			}, nil
		}
	}
	return nil, nil
}

// CheckSeed generates the seed's workload, checks it, and — on failure
// — shrinks it to a minimal repro against the config that exposed the
// bug. Returns the (possibly shrunken) workload alongside the mismatch.
func CheckSeed(seed int64, cfgs []EngineConfig, shrinkBudget int) (*Workload, *Mismatch, error) {
	w := Generate(seed)
	m, err := CheckWorkload(w, cfgs)
	if err != nil || m == nil {
		return w, m, err
	}
	var failCfg []EngineConfig
	for _, c := range cfgs {
		if c.Label == m.Config {
			failCfg = []EngineConfig{c}
		}
	}
	small := Shrink(w, func(cand *Workload) bool {
		cm, cerr := CheckWorkload(cand, failCfg)
		return cerr == nil && cm != nil
	}, shrinkBudget)
	// Re-derive the mismatch from the shrunken workload so the report
	// matches the repro that gets written out.
	if sm, serr := CheckWorkload(small, failCfg); serr == nil && sm != nil {
		return small, sm, nil
	}
	return w, m, nil
}
