package refimpl

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestWorkloadCodecRoundTrip: encoding is stable — decode(encode(w))
// re-encodes byte-identically, so .tcq pins replay what was written.
func TestWorkloadCodecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		w := Generate(seed)
		var a bytes.Buffer
		if err := w.Encode(&a); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, a.String())
		}
		var b bytes.Buffer
		if err := back.Encode(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("seed %d: round trip drifted:\n--- first\n%s\n--- second\n%s", seed, a.String(), b.String())
		}
	}
}

// TestGenerateDeterministic: one seed, one workload.
func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Generate(42).Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := Generate(42).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Generate(42) is not deterministic")
	}
}

// TestOracleSmoke is the in-tree slice of the tcqcheck sweep: 20 seeds
// against a 3-config subset. The CI job runs ~200 seeds against the
// full sweep; this keeps `go test ./...` honest without the cost.
func TestOracleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle smoke is not -short")
	}
	cfgs := SmokeConfigs()
	for seed := int64(1); seed <= 20; seed++ {
		w, m, err := CheckSeed(seed, cfgs, 50)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m != nil {
			var repro bytes.Buffer
			_ = w.Encode(&repro)
			t.Fatalf("seed %d: %s\nrepro:\n%s", seed, m, repro.String())
		}
	}
}

// TestPinnedWorkloads replays every .tcq under testdata/ — one file per
// engine bug this oracle (or its satellites) caught. They must stay
// green forever.
func TestPinnedWorkloads(t *testing.T) {
	files, err := filepath.Glob("testdata/*.tcq")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no pinned workloads in testdata/")
	}
	cfgs := SmokeConfigs()
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			w, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			m, err := CheckWorkload(w, cfgs)
			if err != nil {
				t.Fatal(err)
			}
			if m != nil {
				t.Fatalf("pinned workload regressed: %s", m)
			}
		})
	}
}

// TestShrinkerMinimizes drives Shrink with an artificial failure
// predicate and checks it reaches the predicate's floor: greedy passes
// must strip every query, push, and clause not needed for the failure.
func TestShrinkerMinimizes(t *testing.T) {
	w := Generate(7)
	pushes := func(w *Workload) int {
		n := 0
		for _, e := range w.Events {
			if e.Kind == EvPush {
				n++
			}
		}
		return n
	}
	if pushes(w) < 10 || len(w.Queries) < 2 {
		t.Fatalf("seed 7 workload too small to exercise the shrinker: %d pushes, %d queries",
			pushes(w), len(w.Queries))
	}
	failing := func(c *Workload) bool {
		return pushes(c) >= 3 && len(c.Queries) >= 1
	}
	small := Shrink(w, failing, 10_000)
	if !failing(small) {
		t.Fatal("shrinker returned a non-failing workload")
	}
	if got := pushes(small); got != 3 {
		t.Errorf("pushes after shrink = %d, want 3", got)
	}
	if got := len(small.Queries); got != 1 {
		t.Errorf("queries after shrink = %d, want 1", got)
	}
	// Clause simplification: the surviving query should have lost its
	// optional trimmings (they can't be required by this predicate).
	q := small.Queries[0]
	if q.Gen != nil && !q.ExpectErr {
		if len(q.Gen.Where) != 0 || q.Gen.Distinct || q.Gen.Limit != 0 || len(q.Gen.GroupBy) != 0 {
			t.Errorf("query kept removable clauses: %s", q.SQL)
		}
	}
}
