package refimpl

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// The workload generator. One seed determines everything: schemas,
// query shapes across all five window kinds (snapshot, landmark,
// sliding, backward, mixed), predicate sets, the push script, and the
// mid-run add/remove points. Generated workloads obey the determinism
// rules that make a multiset diff meaningful:
//
//   - streams use blocking QoS (lossless: every push is answered);
//   - windowed joins force a barrier after every push, because SteM
//     eviction horizons on the two sides only agree when each tuple is
//     fully routed before the next arrives;
//   - physical-time windows appear only on single-stream aggregates
//     (CACQ join retention is sequence-based) and never reference ST
//     (the engine binds physical ST to the real clock);
//   - backward loops always carry a bounded condition — a backward
//     CondTrue loop is Validate-legal yet never terminates a scan;
//   - LIMIT never combines with ORDER BY (the juggle's release order
//     inside its sort window is an implementation detail);
//   - value domains are small and float arithmetic stays in dyadic
//     rationals (k/2), so aggregate sums are exact in any order.

// QKind is the query archetype.
type QKind uint8

const (
	QSelect QKind = iota
	QJoin
	QAgg
	QHistorical
)

// GenCol names a column bound through a FROM alias.
type GenCol struct {
	Alias string
	Col   string
	Kind  tuple.Kind
}

func (c GenCol) String() string { return c.Alias + "." + c.Col }

// GenPred is one WHERE conjunct: col OP literal, or col OP col.
type GenPred struct {
	Left GenCol
	Op   string // "=", "!=", "<", "<=", ">", ">="
	Lit  string // rendered literal (empty when RCol is set)
	RCol *GenCol
}

func (p GenPred) String() string {
	if p.RCol != nil {
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, *p.RCol)
	}
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Lit)
}

// GenItem is one SELECT item.
type GenItem struct {
	Star bool
	Col  *GenCol
	Agg  string  // "count", "sum", ... ; "" for scalar items
	Arg  *GenCol // nil for count(*)
}

func (it GenItem) String() string {
	switch {
	case it.Star:
		return "*"
	case it.Agg != "":
		if it.Arg == nil {
			return it.Agg + "(*)"
		}
		return fmt.Sprintf("%s(%s)", it.Agg, *it.Arg)
	default:
		return it.Col.String()
	}
}

// GenWindow is the structured for-loop.
type GenWindow struct {
	Physical bool
	Init     window.LinExpr
	CondOp   window.CondOp
	CondRHS  window.LinExpr
	Step     int64
	Defs     []window.Def // Def.Stream holds the alias
}

// GenFrom is one FROM binding.
type GenFrom struct {
	Stream string
	Alias  string
}

// GenQuery is the structured query the shrinker edits; Render turns it
// into the SQL text both the engine and the reference consume.
type GenQuery struct {
	Kind     QKind
	From     []GenFrom
	Items    []GenItem
	Where    []GenPred
	GroupBy  []GenCol
	Distinct bool
	Limit    int64
	Window   *GenWindow
}

func renderLin(e window.LinExpr) string {
	var b strings.Builder
	term := func(coef int64, v string) {
		if coef == 0 {
			return
		}
		if b.Len() > 0 {
			if coef < 0 {
				b.WriteString(" - ")
				coef = -coef
			} else {
				b.WriteString(" + ")
			}
		} else if coef < 0 {
			b.WriteString("-")
			coef = -coef
		}
		if v == "" {
			b.WriteString(strconv.FormatInt(coef, 10))
			return
		}
		if coef != 1 {
			fmt.Fprintf(&b, "%d*", coef)
		}
		b.WriteString(v)
	}
	term(e.TCoef, "t")
	term(e.STCoef, "st")
	term(e.Const, "")
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

var condOps = map[window.CondOp]string{
	window.CondEq: "=", window.CondLt: "<", window.CondLe: "<=",
	window.CondGt: ">", window.CondGe: ">=",
}

func (w *GenWindow) render() string {
	var b strings.Builder
	b.WriteString(" FOR ")
	if w.Physical {
		b.WriteString("PHYSICAL ")
	}
	fmt.Fprintf(&b, "(t = %s; ", renderLin(w.Init))
	if w.CondOp != window.CondTrue {
		fmt.Fprintf(&b, "t %s %s", condOps[w.CondOp], renderLin(w.CondRHS))
	}
	b.WriteString("; ")
	switch {
	case w.Step > 0:
		fmt.Fprintf(&b, "t += %d", w.Step)
	case w.Step < 0:
		fmt.Fprintf(&b, "t -= %d", -w.Step)
	}
	b.WriteString(") { ")
	for _, d := range w.Defs {
		fmt.Fprintf(&b, "WindowIs(%s, %s, %s); ", d.Stream, renderLin(d.Left), renderLin(d.Right))
	}
	b.WriteString("}")
	return b.String()
}

// Render produces the SQL text.
func (q *GenQuery) Render() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range q.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, f := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s AS %s", f.Stream, f.Alias)
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Window != nil {
		b.WriteString(q.Window.render())
	}
	return b.String()
}

// --------------------------------------------------------- generation

type gen struct {
	rng     *rand.Rand
	streams []StreamDef
}

// Generate builds the deterministic workload for a seed.
func Generate(seed int64) *Workload {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	w := &Workload{Seed: seed}

	nStreams := 2 + g.rng.Intn(2)
	kinds := []tuple.Kind{tuple.KindInt, tuple.KindInt, tuple.KindFloat, tuple.KindString}
	for i := 0; i < nStreams; i++ {
		def := StreamDef{Name: fmt.Sprintf("s%d", i), Archived: g.rng.Float64() < 0.4}
		nCols := 2 + g.rng.Intn(3)
		for c := 0; c < nCols; c++ {
			def.Cols = append(def.Cols, ColDef{
				Name: fmt.Sprintf("c%d", c),
				Kind: kinds[g.rng.Intn(len(kinds))],
			})
		}
		w.Streams = append(w.Streams, def)
	}
	g.streams = w.Streams

	nQueries := 2 + g.rng.Intn(4)
	for i := 0; i < nQueries; i++ {
		gq := g.genQuery(i)
		w.Queries = append(w.Queries, QueryDef{SQL: gq.Render(), Gen: gq})
	}
	if g.rng.Float64() < 0.15 {
		w.Queries = append(w.Queries, g.genExpectErr())
	}

	// Event script: history pushes first (historical queries and ST
	// bindings need a past), then adds/removes woven between pushes.
	histPushes := 8 + g.rng.Intn(12)
	mainPushes := 40 + g.rng.Intn(80)
	type sched struct {
		at, query int
		remove    bool
	}
	var plan []sched
	for qi := range w.Queries {
		plan = append(plan, sched{at: g.rng.Intn(mainPushes), query: qi})
		if g.rng.Float64() < 0.25 {
			// Remove later in the run (historical removes are no-ops).
			at := plan[len(plan)-1].at + 1 + g.rng.Intn(mainPushes)
			plan = append(plan, sched{at: at, query: qi, remove: true})
		}
	}
	wall := int64(1_000_000)
	pushEvent := func() Event {
		def := w.Streams[g.rng.Intn(len(w.Streams))]
		wall += int64(1 + g.rng.Intn(40))
		ms := wall
		if g.rng.Float64() < 0.05 {
			ms = 0 // untimestamped: no physical coordinate
		}
		vals := make([]tuple.Value, len(def.Cols))
		for i, c := range def.Cols {
			vals[i] = g.value(c.Kind)
		}
		return Event{Kind: EvPush, Stream: def.Name, WallMs: ms, Values: vals}
	}
	for i := 0; i < histPushes; i++ {
		w.Events = append(w.Events, pushEvent())
	}
	added := map[int]bool{}
	for p := 0; p <= mainPushes; p++ {
		for _, s := range plan {
			if s.at != p {
				continue
			}
			if s.remove {
				if added[s.query] {
					w.Events = append(w.Events, Event{Kind: EvRemove, Query: s.query})
				}
			} else {
				w.Events = append(w.Events, Event{Kind: EvAdd, Query: s.query})
				added[s.query] = true
			}
		}
		if p < mainPushes {
			w.Events = append(w.Events, pushEvent())
		}
	}
	for qi := range w.Queries {
		if !added[qi] {
			w.Events = append(w.Events, Event{Kind: EvAdd, Query: qi})
		}
	}

	w.BarrierEvery = []int{0, 0, 1, 3, 7}[g.rng.Intn(5)]
	for _, q := range w.Queries {
		if q.Gen != nil && q.Gen.Kind == QJoin && q.Gen.Window != nil {
			w.BarrierEvery = 1
		}
	}
	return w
}

func (g *gen) value(k tuple.Kind) tuple.Value {
	switch k {
	case tuple.KindInt:
		return tuple.Int(int64(g.rng.Intn(10)))
	case tuple.KindFloat:
		// Dyadic rationals: float sums are exact in any accumulation
		// order, so aggregate diffs are real bugs, not rounding.
		return tuple.Float(float64(g.rng.Intn(21)) * 0.5)
	default:
		return tuple.String(string(rune('a' + g.rng.Intn(4))))
	}
}

func (g *gen) literal(k tuple.Kind) string {
	switch k {
	case tuple.KindInt:
		return strconv.Itoa(g.rng.Intn(10))
	case tuple.KindFloat:
		return strconv.FormatFloat(float64(g.rng.Intn(21))*0.5, 'g', -1, 64)
	default:
		return "'" + string(rune('a'+g.rng.Intn(4))) + "'"
	}
}

func (g *gen) pickStream() StreamDef { return g.streams[g.rng.Intn(len(g.streams))] }

func (g *gen) pickCol(def StreamDef, alias string) GenCol {
	c := def.Cols[g.rng.Intn(len(def.Cols))]
	return GenCol{Alias: alias, Col: c.Name, Kind: c.Kind}
}

func (g *gen) pickNumericCol(def StreamDef, alias string) *GenCol {
	var nums []ColDef
	for _, c := range def.Cols {
		if c.Kind == tuple.KindInt || c.Kind == tuple.KindFloat {
			nums = append(nums, c)
		}
	}
	if len(nums) == 0 {
		return nil
	}
	c := nums[g.rng.Intn(len(nums))]
	return &GenCol{Alias: alias, Col: c.Name, Kind: c.Kind}
}

var cmpOpsByKind = map[bool][]string{
	true:  {"=", "!=", "<", "<=", ">", ">="}, // ordered kinds
	false: {"=", "!="},
}

func (g *gen) litPred(def StreamDef, alias string) GenPred {
	col := g.pickCol(def, alias)
	ops := cmpOpsByKind[col.Kind != tuple.KindString]
	// Strings order fine too, but =/!= keep selectivity predictable.
	return GenPred{Left: col, Op: ops[g.rng.Intn(len(ops))], Lit: g.literal(col.Kind)}
}

func (g *gen) archivedStream() (StreamDef, bool) {
	var arch []StreamDef
	for _, s := range g.streams {
		if s.Archived {
			arch = append(arch, s)
		}
	}
	if len(arch) == 0 {
		return StreamDef{}, false
	}
	return arch[g.rng.Intn(len(arch))], true
}

func (g *gen) genQuery(i int) *GenQuery {
	roll := g.rng.Float64()
	switch {
	case roll < 0.30:
		return g.genSelect(i)
	case roll < 0.55:
		return g.genJoin(i)
	case roll < 0.85:
		return g.genAgg(i)
	default:
		if _, ok := g.archivedStream(); ok {
			return g.genHistorical(i)
		}
		return g.genAgg(i)
	}
}

func (g *gen) genSelect(i int) *GenQuery {
	def := g.pickStream()
	alias := fmt.Sprintf("q%da", i)
	q := &GenQuery{Kind: QSelect, From: []GenFrom{{def.Name, alias}}}
	if g.rng.Float64() < 0.3 {
		q.Items = []GenItem{{Star: true}}
	} else {
		n := 1 + g.rng.Intn(3)
		for j := 0; j < n; j++ {
			c := g.pickCol(def, alias)
			q.Items = append(q.Items, GenItem{Col: &c})
		}
	}
	for j := g.rng.Intn(3); j > 0; j-- {
		q.Where = append(q.Where, g.litPred(def, alias))
	}
	q.Distinct = g.rng.Float64() < 0.2
	if g.rng.Float64() < 0.2 {
		q.Limit = int64(1 + g.rng.Intn(10))
	}
	return q
}

func (g *gen) genJoin(i int) *GenQuery {
	defA := g.pickStream()
	defB := g.pickStream()
	if g.rng.Float64() < 0.25 {
		defB = defA // self join
	}
	aA, aB := fmt.Sprintf("q%da", i), fmt.Sprintf("q%db", i)
	q := &GenQuery{Kind: QJoin, From: []GenFrom{{defA.Name, aA}, {defB.Name, aB}}}
	if g.rng.Float64() < 0.4 {
		q.Items = []GenItem{{Star: true}}
	} else {
		ca, cb := g.pickCol(defA, aA), g.pickCol(defB, aB)
		q.Items = []GenItem{{Col: &ca}, {Col: &cb}}
	}
	// Equality join predicate over a same-kind column pair when one
	// exists (exercises the hash-indexed SteM path).
	if g.rng.Float64() < 0.75 {
		var pairs [][2]GenCol
		for _, ca := range defA.Cols {
			for _, cb := range defB.Cols {
				if ca.Kind == cb.Kind {
					pairs = append(pairs, [2]GenCol{
						{Alias: aA, Col: ca.Name, Kind: ca.Kind},
						{Alias: aB, Col: cb.Name, Kind: cb.Kind},
					})
				}
			}
		}
		if len(pairs) > 0 {
			p := pairs[g.rng.Intn(len(pairs))]
			rc := p[1]
			q.Where = append(q.Where, GenPred{Left: p[0], Op: "=", RCol: &rc})
		}
	}
	if g.rng.Float64() < 0.4 {
		q.Where = append(q.Where, g.litPred(defA, aA))
	}
	// Window: none (no eviction), symmetric/asymmetric sliding bands,
	// or mixed sliding+landmark (per-def retention, the S2 shape).
	switch g.rng.Intn(3) {
	case 1:
		wA, wB := int64(2+g.rng.Intn(8)), int64(2+g.rng.Intn(8))
		q.Window = &GenWindow{
			Init: window.STExpr(0), CondOp: window.CondTrue, Step: 1,
			Defs: []window.Def{
				{Stream: aA, Left: window.TExpr(1 - wA), Right: window.TExpr(0)},
				{Stream: aB, Left: window.TExpr(1 - wB), Right: window.TExpr(0)},
			},
		}
	case 2:
		wA := int64(2 + g.rng.Intn(8))
		q.Window = &GenWindow{
			Init: window.STExpr(0), CondOp: window.CondTrue, Step: 1,
			Defs: []window.Def{
				{Stream: aA, Left: window.TExpr(1 - wA), Right: window.TExpr(0)},
				{Stream: aB, Left: window.ConstExpr(1), Right: window.TExpr(0)}, // landmark: keep all
			},
		}
	}
	return q
}

func (g *gen) aggItems(def StreamDef, alias string) []GenItem {
	var items []GenItem
	n := 1 + g.rng.Intn(3)
	for j := 0; j < n; j++ {
		switch g.rng.Intn(6) {
		case 0:
			items = append(items, GenItem{Agg: "count"})
		case 1:
			c := g.pickCol(def, alias)
			items = append(items, GenItem{Agg: "count", Arg: &c})
		case 2, 3:
			if c := g.pickNumericCol(def, alias); c != nil {
				kind := []string{"sum", "avg", "stddev"}[g.rng.Intn(3)]
				items = append(items, GenItem{Agg: kind, Arg: c})
			} else {
				items = append(items, GenItem{Agg: "count"})
			}
		default:
			c := g.pickCol(def, alias)
			kind := []string{"min", "max"}[g.rng.Intn(2)]
			items = append(items, GenItem{Agg: kind, Arg: &c})
		}
	}
	return items
}

func (g *gen) genAgg(i int) *GenQuery {
	def := g.pickStream()
	alias := fmt.Sprintf("q%da", i)
	q := &GenQuery{Kind: QAgg, From: []GenFrom{{def.Name, alias}}}
	q.Items = g.aggItems(def, alias)
	for j := g.rng.Intn(2); j > 0; j-- {
		q.Where = append(q.Where, g.litPred(def, alias))
	}
	if g.rng.Float64() < 0.4 {
		c := g.pickCol(def, alias)
		q.GroupBy = []GenCol{c}
		if g.rng.Float64() < 0.3 {
			q.Items = append([]GenItem{{Col: &c}}, q.Items...)
		}
	}
	physical := g.rng.Float64() < 0.3
	if physical {
		// Physical windows never reference ST: the engine binds it to
		// the real clock, which no deterministic oracle can predict.
		base := int64(1_000_000)
		step := int64(50 * (1 + g.rng.Intn(4)))
		width := int64(50 + g.rng.Intn(350))
		gw := &GenWindow{Physical: true, CondOp: window.CondTrue, Step: step,
			Init: window.ConstExpr(base + step)}
		if g.rng.Float64() < 0.5 {
			gw.Defs = []window.Def{{Stream: alias,
				Left: window.TExpr(1 - width), Right: window.TExpr(0)}} // sliding
		} else {
			gw.Defs = []window.Def{{Stream: alias,
				Left: window.ConstExpr(base), Right: window.TExpr(0)}} // landmark
		}
		q.Window = gw
		return q
	}
	switch g.rng.Intn(3) {
	case 0: // snapshot: one fixed window ending k past registration
		k := int64(2 + g.rng.Intn(10))
		q.Window = &GenWindow{
			Init:   window.LinExpr{STCoef: 1, Const: k},
			CondOp: window.CondEq, CondRHS: window.LinExpr{STCoef: 1, Const: k},
			Step: 0,
			Defs: []window.Def{{Stream: alias,
				Left: window.STExpr(1), Right: window.LinExpr{STCoef: 1, Const: k}}},
		}
	case 1: // landmark: everything since the beginning, every hop
		hop := int64(1 + g.rng.Intn(3))
		q.Window = &GenWindow{
			Init: window.STExpr(hop), CondOp: window.CondTrue, Step: hop,
			Defs: []window.Def{{Stream: alias,
				Left: window.ConstExpr(1), Right: window.TExpr(0)}},
		}
	default: // sliding
		width := int64(2 + g.rng.Intn(8))
		hop := int64(1 + g.rng.Intn(3))
		q.Window = &GenWindow{
			Init: window.STExpr(hop), CondOp: window.CondTrue, Step: hop,
			Defs: []window.Def{{Stream: alias,
				Left: window.TExpr(1 - width), Right: window.TExpr(0)}},
		}
	}
	return q
}

func (g *gen) genHistorical(i int) *GenQuery {
	def, _ := g.archivedStream()
	alias := fmt.Sprintf("q%da", i)
	q := &GenQuery{Kind: QHistorical, From: []GenFrom{{def.Name, alias}}}
	width := int64(1 + g.rng.Intn(5))
	// Backward loops must carry a bounded condition: a backward
	// CondTrue loop never terminates the archive scan.
	q.Window = &GenWindow{
		Init:   window.STExpr(0),
		CondOp: window.CondGt, CondRHS: window.ConstExpr(0),
		Step: -int64(1 + g.rng.Intn(3)),
		Defs: []window.Def{{Stream: alias,
			Left: window.TExpr(1 - width), Right: window.TExpr(0)}},
	}
	if g.rng.Float64() < 0.3 {
		q.Items = g.aggItems(def, alias)
	} else {
		if g.rng.Float64() < 0.4 {
			q.Items = []GenItem{{Star: true}}
		} else {
			c := g.pickCol(def, alias)
			q.Items = []GenItem{{Col: &c}}
		}
		if g.rng.Float64() < 0.2 {
			q.Limit = int64(1 + g.rng.Intn(10))
		}
	}
	for j := g.rng.Intn(2); j > 0; j-- {
		q.Where = append(q.Where, g.litPred(def, alias))
	}
	return q
}

// genExpectErr emits a query the engine must REJECT. Each template pins
// a validation bug: before its fix the engine accepted (or hung inside)
// the query.
func (g *gen) genExpectErr() QueryDef {
	def := g.pickStream()
	var sql string
	switch g.rng.Intn(3) {
	case 0:
		// Non-terminating backward loop: t decreases, bound never fails.
		sql = fmt.Sprintf(
			"SELECT * FROM %s AS e0 FOR (t = 5; t < 100; t -= 1) { WindowIs(e0, t - 1, t); }", def.Name)
	case 1:
		// Stuck loop: no step and the CondTrue loop never exits.
		sql = fmt.Sprintf(
			"SELECT count(*) FROM %s AS e0 FOR (t = 5; ; ) { WindowIs(e0, 1, t); }", def.Name)
	default:
		sql = fmt.Sprintf("SELECT no_such_col FROM %s AS e0", def.Name)
	}
	return QueryDef{SQL: sql, ExpectErr: true}
}
