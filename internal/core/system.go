// Package core assembles the complete TelegraphCQ system: catalog,
// planner, shared adaptive executor, ingress stamping, disk archiving of
// streams, and historical access. It is the embedded-engine counterpart
// of the network server in internal/server; the public telegraphcq
// package wraps it.
package core

import (
	"fmt"
	"sync"
	"time"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/egress"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/storage"
	"telegraphcq/internal/telemetry"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// Options configures a System.
type Options struct {
	// Executor options (EO class mode, routing policy, knobs).
	Executor executor.Options
	// DataDir enables disk archiving of streams declared ARCHIVED.
	DataDir string
	// PoolFrames sizes the buffer pool shared by stream archives.
	PoolFrames int
	// Replacement selects the pool's eviction policy.
	Replacement storage.Replacement
}

// System is an embedded TelegraphCQ instance.
type System struct {
	cat  *catalog.Catalog
	exec *executor.Executor
	opts Options

	mu       sync.Mutex
	pool     *storage.Pool
	archives map[string]*storage.Archive
	closed   bool
}

// NewSystem builds an empty system.
func NewSystem(opts Options) *System {
	cat := catalog.New()
	s := &System{
		cat:      cat,
		exec:     executor.New(cat, opts.Executor),
		opts:     opts,
		archives: map[string]*storage.Archive{},
	}
	if opts.DataDir != "" {
		frames := opts.PoolFrames
		if frames <= 0 {
			frames = 256
		}
		s.pool = storage.NewPool(frames, opts.Replacement)
		pool := s.pool
		s.exec.Metrics().Register(func(emit telemetry.Emit) {
			ps := pool.Stats()
			c := func(name, help string, v int64) {
				emit(telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindCounter, Value: float64(v)})
			}
			c("tcq_pool_hits_total", "buffer pool page hits", ps.Hits)
			c("tcq_pool_misses_total", "buffer pool page misses", ps.Misses)
			c("tcq_pool_evictions_total", "buffer pool page evictions", ps.Evictions)
		})
	}
	return s
}

// Metrics exposes the system-wide telemetry registry.
func (s *System) Metrics() *telemetry.Registry { return s.exec.Metrics() }

// Catalog exposes metadata (schemas, sources).
func (s *System) Catalog() *catalog.Catalog { return s.cat }

// Executor exposes the shared executor (stats, barriers).
func (s *System) Executor() *executor.Executor { return s.exec }

// Exec runs one DDL or INSERT statement.
func (s *System) Exec(stmt string) error {
	st, err := sql.Parse(stmt)
	if err != nil {
		return err
	}
	switch x := st.(type) {
	case *sql.CreateStream:
		src, err := s.cat.CreateStream(x.Name, x.Cols, x.Archived)
		if err != nil {
			return err
		}
		if x.With != nil {
			// WITH (overflow = ..., rate = ..., timeout_ms = ...) — the
			// policy name was validated at parse time.
			pol, err := fjord.ParseOverflowPolicy(x.With.Overflow)
			if err != nil {
				return err
			}
			src.SetQoS(fjord.QoS{
				Policy:       pol,
				SampleP:      x.With.SampleP,
				BlockTimeout: time.Duration(x.With.TimeoutMs) * time.Millisecond,
			})
		}
		if x.Archived {
			if err := s.openArchive(src); err != nil {
				return err
			}
		}
		return nil
	case *sql.CreateTable:
		_, err := s.cat.CreateTable(x.Name, x.Cols)
		return err
	case *sql.Insert:
		src, err := s.cat.Lookup(x.Table)
		if err != nil {
			return err
		}
		for _, row := range x.Rows {
			if err := src.Insert(tuple.New(src.Schema, row...)); err != nil {
				return err
			}
		}
		return nil
	case *sql.DropSource:
		return s.cat.Drop(x.Name)
	case *sql.Select:
		return fmt.Errorf("core: use Submit for queries")
	default:
		return fmt.Errorf("core: unsupported statement")
	}
}

// MustExec runs a DDL/INSERT statement and panics on error (setup code).
func (s *System) MustExec(stmt string) {
	if err := s.Exec(stmt); err != nil {
		panic(err)
	}
}

func (s *System) openArchive(src *catalog.Source) error {
	if s.pool == nil {
		return fmt.Errorf("core: stream %s is ARCHIVED but no DataDir configured", src.Name)
	}
	a, err := storage.NewArchive(src.Name, src.Schema, s.pool, storage.ArchiveConfig{Dir: s.opts.DataDir})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.archives[src.Name] = a
	s.mu.Unlock()
	return nil
}

// Query is a standing continuous query handle. Historical (backward
// window) queries complete immediately with a finite result set.
type Query struct {
	ID  int
	sub *egress.Subscription
	sys *System
	// static holds the finished result of a historical query.
	static []*tuple.Tuple
	idx    int
}

// Next blocks for the next result row (ok=false once cancelled, drained,
// or — for historical queries — exhausted).
func (q *Query) Next() (*tuple.Tuple, bool) {
	if q.sub == nil {
		return q.TryNext()
	}
	return q.sub.Next()
}

// TryNext polls for a result row.
func (q *Query) TryNext() (*tuple.Tuple, bool) {
	if q.sub == nil {
		if q.idx >= len(q.static) {
			return nil, false
		}
		t := q.static[q.idx]
		q.idx++
		return t, true
	}
	return q.sub.TryNext()
}

// Dropped counts rows shed because the consumer fell behind.
func (q *Query) Dropped() int64 {
	if q.sub == nil {
		return 0
	}
	return q.sub.Dropped()
}

// Cancel removes the standing query (a no-op for completed historical
// queries).
func (q *Query) Cancel() error {
	if q.sub == nil {
		q.static = nil
		return nil
	}
	return q.sys.exec.Cancel(q.ID)
}

// Submit registers a continuous query and returns its handle. A SELECT
// whose for-loop window moves backward is a historical browsing query
// (§4.1.1): it runs against the stream's archive and completes
// immediately.
func (s *System) Submit(query string) (*Query, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("core: Submit expects a SELECT")
	}
	if sel.Window != nil {
		if kind, _, _ := sel.Window.Classify(); kind == window.KindBackward {
			return s.submitHistorical(sel)
		}
	}
	id, sub, err := s.exec.Submit(sel)
	if err != nil {
		return nil, err
	}
	return &Query{ID: id, sub: sub, sys: s}, nil
}

// Push delivers one tuple into a stream: it is stamped with its logical
// sequence number, archived if the stream is ARCHIVED, and routed to
// every interested Execution Object.
func (s *System) Push(stream string, vals ...tuple.Value) error {
	seq, err := s.exec.Push(stream, vals)
	if err != nil {
		return err
	}
	s.mu.Lock()
	a := s.archives[stream]
	s.mu.Unlock()
	if a != nil {
		src, _ := s.cat.Lookup(stream)
		t := tuple.New(src.Schema, vals...)
		t.TS = tuple.Timestamp{Seq: seq}
		return a.Append(t)
	}
	return nil
}

// PushStamped is Push with a caller-controlled wall clock, the seam
// deterministic harnesses use to drive physical-time windows
// reproducibly. A zero wall admits the tuple untimestamped (no physical
// coordinate: it belongs to no physical window).
func (s *System) PushStamped(stream string, wall time.Time, vals ...tuple.Value) error {
	seq, err := s.exec.PushStamped(stream, wall, vals)
	if err != nil {
		return err
	}
	s.mu.Lock()
	a := s.archives[stream]
	s.mu.Unlock()
	if a != nil {
		src, _ := s.cat.Lookup(stream)
		t := tuple.New(src.Schema, vals...)
		t.TS = tuple.Timestamp{Seq: seq, Wall: wall}
		return a.Append(t)
	}
	return nil
}

// PushAt is Push with a source-assigned logical timestamp (the paper's
// trading-day example stamps 8 symbols with the same day). Timestamps
// may repeat but must not regress.
func (s *System) PushAt(stream string, seq int64, vals ...tuple.Value) error {
	if err := s.exec.PushAt(stream, seq, vals); err != nil {
		return err
	}
	s.mu.Lock()
	a := s.archives[stream]
	s.mu.Unlock()
	if a != nil {
		src, _ := s.cat.Lookup(stream)
		t := tuple.New(src.Schema, vals...)
		t.TS = tuple.Timestamp{Seq: seq}
		return a.Append(t)
	}
	return nil
}

// Barrier waits until all pushed data has been fully processed.
func (s *System) Barrier() error { return s.exec.Barrier() }

// Archive exposes a stream's disk archive (nil if not archived).
func (s *System) Archive(stream string) *storage.Archive {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.archives[stream]
}

// ScanHistory runs fn over each window instance of a (possibly
// backward-moving) spec against the stream's archive — the browsing
// modality of §4.1.1. st binds ST; pass the stream's current sequence
// for "starting from the present time".
func (s *System) ScanHistory(stream string, spec *window.Spec, st int64,
	fn func(inst window.Instance, rows []*tuple.Tuple) bool) error {
	a := s.Archive(stream)
	if a == nil {
		return fmt.Errorf("core: stream %s is not archived", stream)
	}
	return a.ScanWindow(spec, stream, st, fn)
}

// CurSeq returns a stream's latest sequence number.
func (s *System) CurSeq(stream string) int64 {
	src, err := s.cat.Lookup(stream)
	if err != nil {
		return 0
	}
	return src.CurSeq()
}

// Close shuts the system down.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	archives := s.archives
	s.archives = map[string]*storage.Archive{}
	s.mu.Unlock()
	s.exec.Close()
	for _, a := range archives {
		_ = a.Close()
	}
}
