package core

import (
	"fmt"
	"testing"
	"time"

	"telegraphcq/internal/executor"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// executorOptionsSmall gives a tiny result queue to exercise shedding.
func executorOptionsSmall() executor.Options {
	return executor.Options{SubscriptionCap: 4}
}

func newSys(t *testing.T, archived bool) *System {
	t.Helper()
	opts := Options{}
	if archived {
		opts.DataDir = t.TempDir()
	}
	s := NewSystem(opts)
	t.Cleanup(s.Close)
	return s
}

func pushN(t *testing.T, s *System, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		err := s.Push("quotes", tuple.String("MSFT"), tuple.Float(float64(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
}

func collectRows(t *testing.T, s *System, q *Query, want int) []*tuple.Tuple {
	t.Helper()
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	deadline := time.Now().Add(2 * time.Second)
	for len(out) < want && time.Now().Before(deadline) {
		if r, ok := q.TryNext(); ok {
			out = append(out, r)
			continue
		}
		time.Sleep(time.Millisecond)
	}
	return out
}

func TestEmbeddedQuickstart(t *testing.T) {
	s := newSys(t, false)
	s.MustExec(`CREATE STREAM quotes (sym string, price float)`)
	q, err := s.Submit(`SELECT sym, price FROM quotes WHERE price > 7`)
	if err != nil {
		t.Fatal(err)
	}
	pushN(t, s, 10)
	rows := collectRows(t, s, q, 3)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if err := q.Cancel(); err != nil {
		t.Fatal(err)
	}
}

func TestExecErrors(t *testing.T) {
	s := newSys(t, false)
	if err := s.Exec(`SELECT 1 FROM x`); err == nil {
		t.Fatal("SELECT via Exec accepted")
	}
	if err := s.Exec(`CREATE STREAM s (a int) ARCHIVED`); err == nil {
		t.Fatal("ARCHIVED without DataDir accepted")
	}
	if err := s.Exec(`garbage`); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.Exec(`INSERT INTO nope VALUES (1)`); err == nil {
		t.Fatal("insert into unknown accepted")
	}
}

func TestMustExecPanics(t *testing.T) {
	s := newSys(t, false)
	defer func() {
		if recover() == nil {
			t.Fatal("MustExec did not panic")
		}
	}()
	s.MustExec(`garbage`)
}

func TestArchiveAndScanHistory(t *testing.T) {
	s := newSys(t, true)
	s.MustExec(`CREATE STREAM quotes (sym string, price float) ARCHIVED`)
	// A query must exist for pushes to be routed, but archiving happens
	// regardless of standing queries.
	pushN(t, s, 100)
	if s.CurSeq("quotes") != 100 {
		t.Fatalf("CurSeq = %d", s.CurSeq("quotes"))
	}
	if a := s.Archive("quotes"); a == nil || a.Count() != 100 {
		t.Fatalf("archive count = %v", a)
	}
	// Browse backwards from the present: 3 windows of 10.
	var got []int
	err := s.ScanHistory("quotes", window.Backward("quotes", 10, 10, 3), 100,
		func(inst window.Instance, rows []*tuple.Tuple) bool {
			got = append(got, len(rows))
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 10 || got[2] != 10 {
		t.Fatalf("history windows: %v", got)
	}
}

func TestScanHistoryUnarchived(t *testing.T) {
	s := newSys(t, false)
	s.MustExec(`CREATE STREAM quotes (sym string, price float)`)
	err := s.ScanHistory("quotes", window.Backward("quotes", 5, 5, 1), 10,
		func(window.Instance, []*tuple.Tuple) bool { return true })
	if err == nil {
		t.Fatal("history over unarchived stream succeeded")
	}
}

func TestTableInsertAndJoin(t *testing.T) {
	s := newSys(t, false)
	s.MustExec(`CREATE STREAM trades (sym string, qty int)`)
	s.MustExec(`CREATE TABLE companies (sym string, hq string)`)
	s.MustExec(`INSERT INTO companies VALUES ('A', 'SF'), ('B', 'NY')`)
	q, err := s.Submit(`SELECT trades.sym, hq FROM trades, companies WHERE trades.sym = companies.sym`)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Push("trades", tuple.String("B"), tuple.Int(5))
	rows := collectRows(t, s, q, 1)
	if len(rows) != 1 || rows[0].Values[1].S != "NY" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestConcurrentQueriesOverManyStreams(t *testing.T) {
	s := newSys(t, false)
	for i := 0; i < 4; i++ {
		s.MustExec(fmt.Sprintf(`CREATE STREAM s%d (v float)`, i))
	}
	var qs []*Query
	for i := 0; i < 4; i++ {
		q, err := s.Submit(fmt.Sprintf(`SELECT v FROM s%d WHERE v >= 0`, i))
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	if s.Executor().EOCount() != 4 {
		t.Fatalf("EOs = %d", s.Executor().EOCount())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 10; j++ {
			_ = s.Push(fmt.Sprintf("s%d", i), tuple.Float(float64(j)))
		}
	}
	for i, q := range qs {
		rows := collectRows(t, s, q, 10)
		if len(rows) != 10 {
			t.Fatalf("stream %d: %d rows", i, len(rows))
		}
	}
}

func TestCloseIdempotentAndDropped(t *testing.T) {
	s := NewSystem(Options{Executor: executorOptionsSmall()})
	s.MustExec(`CREATE STREAM s (v float)`)
	q, _ := s.Submit(`SELECT v FROM s`)
	for i := 0; i < 100; i++ {
		_ = s.Push("s", tuple.Float(1))
	}
	_ = s.Barrier()
	time.Sleep(10 * time.Millisecond)
	if q.Dropped() == 0 {
		t.Fatal("expected shedding with tiny subscription")
	}
	s.Close()
	s.Close()
}
