package core

import (
	"testing"

	"telegraphcq/internal/tuple"
)

func histSys(t *testing.T) *System {
	t.Helper()
	s := newSys(t, true)
	s.MustExec(`CREATE STREAM ticks (sym string, price float) ARCHIVED`)
	for seq := int64(1); seq <= 100; seq++ {
		sym := "A"
		if seq%2 == 0 {
			sym = "B"
		}
		err := s.PushAt("ticks", seq, tuple.String(sym), tuple.Float(float64(seq)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	return s
}

func drainStatic(q *Query) []*tuple.Tuple {
	var out []*tuple.Tuple
	for {
		r, ok := q.TryNext()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// The paper's §4.1.1 browsing query through SQL: a backward-moving
// window over an archived stream, completing immediately.
func TestHistoricalBackwardSelect(t *testing.T) {
	s := histSys(t)
	q, err := s.Submit(`
		SELECT sym, price FROM ticks
		WHERE sym = 'A'
		FOR (t = ST; t > ST - 40; t -= 20) {
			WindowIs(ticks, t - 19, t);
		}`)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainStatic(q)
	// Two windows of 20 ticks each, half are 'A': 10 + 10.
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	// First window is [81,100]: prices 81..99 odd.
	if rows[0].Values[1].F < 81 {
		t.Fatalf("first window row: %v", rows[0])
	}
	if _, ok := q.Next(); ok {
		t.Fatal("historical query did not complete")
	}
	if err := q.Cancel(); err != nil {
		t.Fatal(err)
	}
}

// Backward aggregates: one result row per backward window instance.
func TestHistoricalBackwardAggregate(t *testing.T) {
	s := histSys(t)
	q, err := s.Submit(`
		SELECT avg(price) FROM ticks
		FOR (t = ST; t > ST - 60; t -= 20) {
			WindowIs(ticks, t - 19, t);
		}`)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainStatic(q)
	if len(rows) != 3 {
		t.Fatalf("windows = %d, want 3", len(rows))
	}
	// Windows [81,100], [61,80], [41,60]: averages 90.5, 70.5, 50.5.
	want := []float64{90.5, 70.5, 50.5}
	for i, r := range rows {
		if r.Values[1].F != want[i] {
			t.Fatalf("window %d avg = %v, want %v", i, r.Values[1], want[i])
		}
		// The t column carries the backward loop value.
		if r.Values[0].I != 100-int64(i)*20 {
			t.Fatalf("window %d t = %v", i, r.Values[0])
		}
	}
}

// Grouped backward aggregates.
func TestHistoricalBackwardGroupBy(t *testing.T) {
	s := histSys(t)
	q, err := s.Submit(`
		SELECT sym, count(*) FROM ticks
		GROUP BY sym
		FOR (t = ST; t > ST - 20; t -= 20) {
			WindowIs(ticks, t - 19, t);
		}`)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainStatic(q)
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Values[2].I != 10 {
			t.Fatalf("group count: %v", r)
		}
	}
}

func TestHistoricalErrors(t *testing.T) {
	s := newSys(t, true)
	s.MustExec(`CREATE STREAM live (v float)`) // not archived
	if _, err := s.Submit(`
		SELECT v FROM live
		FOR (t = ST; t > ST - 10; t -= 5) { WindowIs(live, t - 4, t); }`); err == nil {
		t.Fatal("backward window over unarchived stream accepted")
	}
	if _, err := s.Submit(`
		SELECT v FROM live
		FOR (t = ST; t > ST - 10; t -= 5) { WindowIs(nope, t - 4, t); }`); err == nil {
		t.Fatal("bad WindowIs accepted")
	}
}

func TestHistoricalLimit(t *testing.T) {
	s := histSys(t)
	q, err := s.Submit(`
		SELECT price FROM ticks
		FOR (t = ST; t > ST - 100; t -= 10) { WindowIs(ticks, t - 9, t); }
		`)
	if err != nil {
		t.Fatal(err)
	}
	all := drainStatic(q)
	q2, err := s.Submit(`
		SELECT price FROM ticks LIMIT 7
		FOR (t = ST; t > ST - 100; t -= 10) { WindowIs(ticks, t - 9, t); }
		`)
	if err != nil {
		t.Fatal(err)
	}
	limited := drainStatic(q2)
	if len(all) != 100 || len(limited) != 7 {
		t.Fatalf("rows: %d / %d", len(all), len(limited))
	}
}
