package core

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/tuple"
)

// TestQueryOverSystemStream is the dogfooding acceptance test: a CQ
// over tcq_operators observes live per-operator route counts while an
// ordinary workload runs.
func TestQueryOverSystemStream(t *testing.T) {
	s := newSys(t, false)
	s.MustExec(`CREATE STREAM s (v int)`)

	// A workload query so the eddy has modules routing tuples.
	wq, err := s.Submit(`SELECT v FROM s WHERE v > 10`)
	if err != nil {
		t.Fatal(err)
	}
	defer wq.Cancel()
	for i := 0; i < 100; i++ {
		if err := s.Push("s", tuple.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}

	// The introspection CQ: ordinary SQL over engine state.
	iq, err := s.Submit(`SELECT module, routed FROM tcq_operators WHERE routed > 0`)
	if err != nil {
		t.Fatal(err)
	}
	defer iq.Cancel()
	s.Executor().SampleSystemStreams()
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	seen := map[string]int64{}
	for time.Now().Before(deadline) && len(seen) == 0 {
		for {
			row, ok := iq.TryNext()
			if !ok {
				break
			}
			seen[row.Values[0].S] = row.Values[1].I
		}
		if len(seen) == 0 {
			s.Executor().SampleSystemStreams()
			_ = s.Barrier()
			time.Sleep(5 * time.Millisecond)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no tcq_operators rows with routed > 0")
	}
	// The workload's filter module must appear with a live route count.
	found := false
	for name, routed := range seen {
		if strings.Contains(name, "gfilter") && routed > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("grouped filter not observed in %v", seen)
	}
}

// TestSystemStreamsProtected: the introspection streams are registered
// at startup and cannot be dropped.
func TestSystemStreamsProtected(t *testing.T) {
	s := newSys(t, false)
	for _, name := range []string{"tcq_operators", "tcq_queues", "tcq_queries"} {
		if _, err := s.Catalog().Lookup(name); err != nil {
			t.Fatalf("system stream %s not registered: %v", name, err)
		}
	}
	if err := s.Exec(`DROP STREAM tcq_operators`); err == nil {
		t.Fatal("DROP of a system stream succeeded")
	}
}

// TestTelemetryConcurrency hammers the engine from several pushers
// while a scraper loops over /metrics and a CQ reads tcq_operators —
// the full introspection surface under -race.
func TestTelemetryConcurrency(t *testing.T) {
	s := newSys(t, false)
	s.MustExec(`CREATE STREAM s (v int)`)
	wq, err := s.Submit(`SELECT v FROM s WHERE v > 50`)
	if err != nil {
		t.Fatal(err)
	}
	defer wq.Cancel()
	iq, err := s.Submit(`SELECT module, routed FROM tcq_operators`)
	if err != nil {
		t.Fatal(err)
	}
	defer iq.Cancel()

	srv := httptest.NewServer(s.Metrics().Handler())
	defer srv.Close()

	const pushers, perP = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				_ = s.Push("s", tuple.Int(int64(p*perP+i)))
			}
		}(p)
	}
	// Scraper: HTTP /metrics in a loop.
	var scrape sync.WaitGroup
	scrape.Add(2)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := srv.Client().Get(srv.URL + "/metrics")
			if err == nil {
				buf := make([]byte, 4096)
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						break
					}
				}
				resp.Body.Close()
			}
		}
	}()
	// Introspection CQ consumer + sampler.
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Executor().SampleSystemStreams()
			for {
				if _, ok := iq.TryNext(); !ok {
					break
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	scrape.Wait()

	// Sanity: the engine processed the workload and reported it.
	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tcq_engine_pushed_total") {
		t.Fatalf("metrics missing tcq_engine_pushed_total:\n%s", b.String())
	}
}

// TestPoolMetricsRegistered: an archived system exposes buffer pool
// counters through the shared registry.
func TestPoolMetricsRegistered(t *testing.T) {
	s := newSys(t, true)
	s.MustExec(`CREATE STREAM a (v int) ARCHIVED`)
	for i := 0; i < 10; i++ {
		if err := s.Push("a", tuple.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tcq_pool_hits_total") {
		t.Fatalf("metrics missing tcq_pool_hits_total:\n%s", b.String())
	}
}
