package core

import (
	"fmt"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// submitHistorical executes a SELECT whose for-loop window moves
// backward: the §4.1.1 "browsing system where the user might want to
// query historical portions of the stream using windows that move
// backwards starting from the present time". Such queries run against
// the stream's disk archive (via the window-driven scanner) rather than
// the live dataflow, produce a finite result, and complete immediately.
func (s *System) submitHistorical(sel *sql.Select) (*Query, error) {
	if len(sel.From) != 1 {
		return nil, fmt.Errorf("core: historical queries read one archived stream")
	}
	stream := sel.From[0].Source
	src, err := s.cat.Lookup(stream)
	if err != nil {
		return nil, err
	}
	a := s.Archive(stream)
	if a == nil {
		return nil, fmt.Errorf("core: backward windows need an ARCHIVED stream (%s is not)", stream)
	}
	name := sel.From[0].Name()

	// Qualify unqualified columns against the (possibly aliased) schema.
	schema := src.Schema
	if name != stream {
		schema = schema.Rename(name)
	}
	qualify := func(e expr.Expr) error {
		for _, c := range expr.Columns(e, nil) {
			if c.Source == "" {
				c.Source = name
			}
			if _, err := schema.ColumnIndex(c.Source, c.Name); err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
		return nil
	}
	if sel.Where != nil {
		if err := qualify(sel.Where); err != nil {
			return nil, err
		}
	}

	// Split the SELECT list: aggregates vs scalar projections.
	var aggs []operator.AggSpec
	var projExprs []expr.Expr
	var projNames []string
	for _, item := range sel.Items {
		switch {
		case item.Agg != nil:
			if item.Agg.Arg != nil {
				if err := qualify(item.Agg.Arg); err != nil {
					return nil, err
				}
			}
			aggs = append(aggs, *item.Agg)
		case item.Star:
			for _, col := range schema.Cols {
				projExprs = append(projExprs, expr.Col(col.Source, col.Name))
				projNames = append(projNames, col.Name)
			}
		default:
			if err := qualify(item.Expr); err != nil {
				return nil, err
			}
			projExprs = append(projExprs, item.Expr)
			projNames = append(projNames, item.As)
		}
	}
	for _, g := range sel.GroupBy {
		if err := qualify(g); err != nil {
			return nil, err
		}
	}
	if len(aggs) == 0 && len(sel.GroupBy) > 0 {
		return nil, fmt.Errorf("core: GROUP BY without aggregates")
	}

	// Remap the window defs to the alias and bind ST to "the present".
	spec := *sel.Window
	spec.Defs = append([]window.Def(nil), sel.Window.Defs...)
	for i := range spec.Defs {
		if spec.Defs[i].Stream == name || spec.Defs[i].Stream == stream {
			spec.Defs[i].Stream = stream // archive scans use the base name
		} else {
			return nil, fmt.Errorf("core: WindowIs over unknown source %q", spec.Defs[i].Stream)
		}
	}
	st := src.CurSeq()

	var project *operator.Project
	if len(aggs) == 0 && len(projExprs) > 0 {
		project = operator.NewProject(fmt.Sprintf("hist.%s", name), projExprs, projNames)
	}

	var results []*tuple.Tuple
	scanErr := a.ScanWindow(&spec, stream, st, func(inst window.Instance, rows []*tuple.Tuple) bool {
		// Filter (tuples come back under the base name; rename for alias
		// references).
		var kept []*tuple.Tuple
		for _, t := range rows {
			tt := t
			if name != stream {
				tt = t.Clone()
				tt.Schema = schema
			}
			if sel.Where != nil {
				ok, err := expr.Truthy(sel.Where, tt)
				if err != nil || !ok {
					continue
				}
			}
			kept = append(kept, tt)
		}
		if len(aggs) > 0 {
			// Evaluate the aggregates over this window instance via a
			// snapshot aggregate anchored to the instance's range.
			rng := inst.Ranges[stream]
			snap := window.Snapshot(name, rng.Left, rng.Right)
			agg, err := operator.NewWindowAgg(fmt.Sprintf("hist.t=%d", inst.T), name,
				snap, 0, sel.GroupBy, aggs, operator.StrategyAuto)
			if err != nil {
				return false
			}
			emit := func(r *tuple.Tuple) {
				// Stamp the loop value t of the *backward* loop, not the
				// snapshot's internal t.
				r.Values[0] = tuple.Int(inst.T)
				results = append(results, r)
			}
			for _, t := range kept {
				if _, err := agg.Process(t, emit); err != nil {
					return false
				}
			}
			_ = agg.Flush(emit)
			return true
		}
		for _, t := range kept {
			row := t
			if project != nil {
				var err error
				row, err = project.Apply(t)
				if err != nil {
					continue
				}
			}
			results = append(results, row)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if sel.Limit > 0 && int64(len(results)) > sel.Limit {
		results = results[:sel.Limit]
	}
	return &Query{ID: -1, sys: s, static: results}, nil
}
