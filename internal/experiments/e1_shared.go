package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

// E1SharedVsUnshared reproduces CACQ's headline result (§3.1): one
// shared Eddy executing Q similar continuous queries beats Q independent
// per-query dataflows, and the advantage grows with Q.
//
// Workload: Q queries of the form
//
//	SELECT * FROM stocks WHERE stockSymbol = <sym_i> AND closingPrice > <p_i>
//
// over one stock stream. The shared engine folds all predicates into one
// grouped filter per attribute; the unshared baseline (NiagaraCQ-style
// static per-query plans) runs one engine per query and evaluates every
// query's filters on every tuple.
func E1SharedVsUnshared(scale int) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Shared CACQ processing vs per-query plans",
		Claim:   "shared grouped-filter execution scales sublinearly in the number of queries; per-query plans scale linearly (CACQ, SIGMOD 2002)",
		Columns: []string{"queries", "shared", "unshared", "shared/tuple", "unshared/tuple", "speedup"},
	}
	nTuples := 2000 * scale
	rows := workload.Stocks{Seed: 1}.Rows(nTuples)
	syms := workload.DefaultSymbols

	mkQuery := func(i int) *cacq.Query {
		return &cacq.Query{
			ID:      i,
			Sources: []string{"ClosingStockPrices"},
			Where: expr.Bin(expr.OpAnd,
				expr.Bin(expr.OpEq, expr.Col("", "stockSymbol"), expr.Lit(tuple.String(syms[i%len(syms)]))),
				expr.Bin(expr.OpGt, expr.Col("", "closingPrice"), expr.Lit(tuple.Float(float64(i%120))))),
		}
	}

	for _, q := range []int{1, 10, 50, 100, 200} {
		// Shared: one engine, q queries.
		shared := cacq.NewEngine(eddy.NewLottery(1), func(int, *tuple.Tuple) {})
		for i := 0; i < q; i++ {
			if err := shared.AddQuery(mkQuery(i)); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		for _, r := range rows {
			_ = shared.Push(r.Clone())
		}
		if err := shared.Run(); err != nil {
			panic(err)
		}
		sharedNs := float64(time.Since(start).Nanoseconds())

		// Unshared: q single-query engines, each sees every tuple.
		engines := make([]*cacq.Engine, q)
		for i := 0; i < q; i++ {
			engines[i] = cacq.NewEngine(eddy.NewLottery(int64(i)+1), func(int, *tuple.Tuple) {})
			if err := engines[i].AddQuery(mkQuery(i)); err != nil {
				panic(err)
			}
		}
		start = time.Now()
		for _, r := range rows {
			for _, e := range engines {
				_ = e.Push(r.Clone())
			}
		}
		for _, e := range engines {
			if err := e.Run(); err != nil {
				panic(err)
			}
		}
		unsharedNs := float64(time.Since(start).Nanoseconds())

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(q),
			ns(sharedNs), ns(unsharedNs),
			ns(sharedNs / float64(nTuples)),
			ns(unsharedNs / float64(nTuples)),
			f2(unsharedNs / sharedNs),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d stock tuples per configuration; queries share one grouped filter per attribute in the shared engine", nTuples))
	return t
}
