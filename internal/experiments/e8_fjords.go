package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/fjord"
)

// E8Fjords reproduces the Fjords claim (§2.3, [MF02]): with one steady
// source and one that stalls, a consumer using blocking dequeues (the
// iterator/Exchange model) stalls with the slow source, while the
// non-blocking push-queue consumer keeps processing the live source —
// "the non-blocking dequeue allows the consumer to pursue other
// computation ... when no data is available".
func E8Fjords(scale int) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Fjords: non-blocking push queues vs blocking iterators",
		Claim:   "a stalled source blocks the iterator-model consumer but not the Fjords consumer (Fjords, ICDE 2002)",
		Columns: []string{"consumer", "steady consumed", "bursty consumed", "total"},
	}
	runFor := time.Duration(150*scale) * time.Millisecond

	run := func(blocking bool) (int64, int64) {
		steady := fjord.NewPush[int64](1024)
		bursty := fjord.NewPush[int64](1024)
		stop := make(chan struct{})

		go func() { // steady producer: continuous
			var i int64
			for {
				select {
				case <-stop:
					steady.Close()
					return
				default:
				}
				if steady.TryEnqueue(i) {
					i++
				}
				time.Sleep(20 * time.Microsecond)
			}
		}()
		go func() { // bursty producer: stalls most of the time
			var i int64
			for {
				select {
				case <-stop:
					bursty.Close()
					return
				default:
				}
				for k := 0; k < 10; k++ {
					if bursty.TryEnqueue(i) {
						i++
					}
				}
				time.Sleep(30 * time.Millisecond) // long stall
			}
		}()

		var nSteady, nBursty int64
		done := time.After(runFor)
		for {
			select {
			case <-done:
				close(stop)
				return nSteady, nBursty
			default:
			}
			if blocking {
				// Iterator model: round-robin with blocking dequeues —
				// the consumer commits to each input in turn.
				if _, err := bursty.Dequeue(); err == nil {
					nBursty++
				}
				if _, err := steady.Dequeue(); err == nil {
					nSteady++
				}
			} else {
				// Fjords: non-blocking dequeues; work on whatever is live.
				worked := false
				if _, ok := bursty.TryDequeue(); ok {
					nBursty++
					worked = true
				}
				if _, ok := steady.TryDequeue(); ok {
					nSteady++
					worked = true
				}
				if !worked {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}
	}

	for _, c := range []struct {
		name     string
		blocking bool
	}{
		{"iterator (blocking)", true},
		{"fjords (non-blocking)", false},
	} {
		s, b := run(c.blocking)
		t.Rows = append(t.Rows, []string{c.name, fmt.Sprint(s), fmt.Sprint(b), fmt.Sprint(s + b)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%v run; steady source produces ~continuously, bursty source emits 10 then stalls 30ms", runFor),
		"the blocking consumer's steady-source throughput collapses to the bursty source's rate")
	return t
}
