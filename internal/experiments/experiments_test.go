package experiments

import "testing"

// Smoke: every experiment runs at scale 1 and produces a table with rows.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, tab := range All(1) {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
		if tab.Render() == "" {
			t.Errorf("%s: empty render", tab.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("e2", 1) == nil {
		t.Fatal("ByID e2 nil")
	}
	if ByID("nope", 1) != nil {
		t.Fatal("ByID nope non-nil")
	}
}
