package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

// E2GroupedFilter reproduces the CACQ grouped-filter result: indexing
// all P single-variable boolean factors over one attribute answers a
// probe in O(log P) instead of O(P), so shared selections stay cheap as
// predicates accumulate. The ablation row evaluates the same factor set
// by linear scan.
func E2GroupedFilter(scale int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Grouped filter vs individual predicate evaluation",
		Claim:   "probe cost grows ~logarithmically with the number of predicates for the grouped filter and linearly for individual evaluation (CACQ, SIGMOD 2002)",
		Columns: []string{"predicates", "grouped/probe", "naive/probe", "speedup"},
	}
	probes := 5000 * scale
	vals := workload.UniformInts(probes, 10000, 3)

	for _, p := range []int{10, 100, 1000, 10000} {
		g := operator.NewGroupedFilter(expr.Col("", "closingPrice"))
		factors := make([]expr.RangeFactor, p)
		universe := bitset.New(p)
		for i := 0; i < p; i++ {
			op := []expr.Op{expr.OpGt, expr.OpLt, expr.OpGe, expr.OpLe}[i%4]
			factors[i] = expr.RangeFactor{
				Col: expr.Col("", "closingPrice"),
				Op:  op,
				Val: tuple.Float(float64((i * 37) % 10000)),
			}
			if err := g.AddFactor(i, factors[i]); err != nil {
				panic(err)
			}
			universe.Add(i)
		}

		start := time.Now()
		var matched int64
		m := bitset.New(p)
		for _, v := range vals {
			if err := g.MatchQueriesInto(tuple.Float(float64(v)), universe, m); err != nil {
				panic(err)
			}
			matched += int64(m.Count())
		}
		groupedNs := float64(time.Since(start).Nanoseconds()) / float64(probes)

		start = time.Now()
		var naiveMatched int64
		for _, v := range vals {
			val := tuple.Float(float64(v))
			for i := range factors {
				if factors[i].Matches(val) {
					naiveMatched++
				}
			}
		}
		naiveNs := float64(time.Since(start).Nanoseconds()) / float64(probes)

		if matched != naiveMatched {
			panic(fmt.Sprintf("E2: grouped %d != naive %d", matched, naiveMatched))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p), ns(groupedNs), ns(naiveNs), f2(naiveNs / groupedNs),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d probes per configuration; match sets verified identical", probes))
	return t
}
