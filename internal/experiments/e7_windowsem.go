package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
	"telegraphcq/internal/workload"
)

// E7Windows reproduces the §4.1.2 design discussion as measurements:
// a landmark MAX needs O(1) state (iterative update), a sliding MAX must
// retain the window — and among sliding implementations, the monotonic
// deque is asymptotically better than recompute-from-buffer as the
// window widens.
func E7Windows(scale int) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Window semantics: state and cost by window kind/strategy",
		Claim:   "landmark aggregates are O(1) state; sliding aggregates must retain the window (§4.1.2); deque beats recompute for sliding MAX",
		Columns: []string{"window", "strategy", "width", "state", "per-tuple"},
	}
	n := 50000 * scale
	rows := workload.Stocks{Symbols: []string{"MSFT"}, Seed: 6}.Rows(n)
	arg := expr.Col("", "closingPrice")

	run := func(spec *window.Spec, st int64, strat operator.Strategy) (int, float64) {
		agg, err := operator.NewWindowAgg("agg", "ClosingStockPrices", spec, st,
			nil, []operator.AggSpec{{Kind: operator.AggMax, Arg: arg}}, strat)
		if err != nil {
			panic(err)
		}
		emit := func(*tuple.Tuple) {}
		start := time.Now()
		for _, r := range rows {
			if _, err := agg.Process(r, emit); err != nil {
				panic(err)
			}
		}
		perTuple := float64(time.Since(start).Nanoseconds()) / float64(n)
		return agg.StateSize(), perTuple
	}

	// Landmark: left pinned at 1, emits every 1000 tuples.
	landmark := &window.Spec{
		Domain: tuple.LogicalTime,
		Init:   window.ConstExpr(1000),
		Cond:   window.Cond{Op: window.CondTrue},
		Step:   1000,
		Defs: []window.Def{{
			Stream: "ClosingStockPrices",
			Left:   window.ConstExpr(1),
			Right:  window.TExpr(0),
		}},
	}
	state, per := run(landmark, 0, operator.StrategyAuto)
	t.Rows = append(t.Rows, []string{"landmark", "incremental", "-", fmt.Sprint(state), ns(per)})

	for _, width := range []int64{100, 1000, 10000} {
		sliding := window.Sliding("ClosingStockPrices", width, 100, 0)
		for _, strat := range []operator.Strategy{operator.StrategyRecompute, operator.StrategyDeque} {
			state, per := run(sliding, 1, strat)
			t.Rows = append(t.Rows, []string{
				"sliding", strat.String(), fmt.Sprint(width), fmt.Sprint(state), ns(per),
			})
		}
	}

	// Hop > width: most of the stream never enters window state.
	gappy := window.Sliding("ClosingStockPrices", 10, 1000, 0)
	state, per = run(gappy, 1, operator.StrategyAuto)
	t.Rows = append(t.Rows, []string{"hopping (hop≫width)", "deque", "10", fmt.Sprint(state), ns(per)})

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d tuples, MAX(closingPrice); 'state' is retained items at end of run", n),
		"recompute and deque strategies are verified to produce identical results in the operator tests")
	return t
}
