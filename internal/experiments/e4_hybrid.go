package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

// E4JoinHybrid reproduces the SteM hybridization claim (§2.2, [RDH02]):
// with two alternative access paths to relation T — an "index" path
// whose per-probe cost tracks a remote index's round trip, and a local
// scan-SteM path with fixed CPU cost — the cost-aware lottery routes
// each probe to whichever path is currently cheaper. When the remote
// cost drifts past the local cost mid-stream, the eddy migrates, and the
// hybrid beats both fixed plans over the whole run.
//
// Substitution note: the remote index's latency is modeled as
// synchronous per-probe cost (the paper's asynchronous variant with a
// rendezvous buffer is implemented and tested in operator.AsyncIndex;
// the synchronous model isolates the routing decision from pipelining
// effects so the crossover is measurable).
func E4JoinHybrid(scale int) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Hybrid join: eddy picks between index AM and SteM scan",
		Claim:   "the eddy migrates between access methods as their costs drift, matching the better fixed plan per phase (SteMs, ICDE 2003)",
		Columns: []string{"plan", "time", "index ph0/ph1", "via scan", "joins"},
	}
	n := 400 * scale

	tSchema := tuple.NewSchema(
		tuple.Column{Source: "T", Name: "sym", Kind: tuple.KindString},
		tuple.Column{Source: "T", Name: "rating", Kind: tuple.KindInt},
	)
	sSchema := tuple.NewSchema(
		tuple.Column{Source: "S", Name: "sym", Kind: tuple.KindString},
		tuple.Column{Source: "S", Name: "v", Kind: tuple.KindFloat},
	)
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "sym"), Right: expr.Col("T", "sym")}
	syms := workload.DefaultSymbols

	const (
		indexCheapNs = 20_000     // 20µs: remote index nearby
		indexDearNs  = 10_000_000 // 10ms: remote index congested
		scanCostNs   = 1_500_000  // 1.5ms: local scan probe over a large SteM
	)

	run := func(useIndex, useScan bool) (time.Duration, int64, int64, int64, int64) {
		mk := func(indexed bool) *operator.StemModule {
			var key expr.Expr
			var keyCol *expr.ColumnRef
			if indexed {
				key = expr.Col("T", "sym")
				keyCol = expr.Col("T", "sym")
			}
			sm := operator.NewStemModule("T", stem.New("T", key), []expr.JoinFactor{jf}, keyCol)
			sm.SetGroup("joinT")
			for i, s := range syms {
				_ = sm.SteM().Build(tuple.New(tSchema, tuple.String(s), tuple.Int(int64(i))))
			}
			return sm
		}
		var modules []operator.Module
		var idx, scan *operator.StemModule
		if useIndex {
			idx = mk(true)
			modules = append(modules, idx)
		}
		if useScan {
			scan = mk(false)
			scan.SimCostNs = scanCostNs
			modules = append(modules, scan)
		}
		pol := eddy.NewLottery(5)
		pol.CostAware = true
		pol.Explore = 0.02
		pol.Decay = 0.9
		pol.CostAlpha = 0.5 // track the drift quickly
		pol.Greedy = true   // winner-take-all between alternative paths
		var joins int64
		e := eddy.New(modules, pol, func(x *tuple.Tuple) {
			if x.Schema.HasSource("T") {
				joins++
			}
		})
		start := time.Now()
		var idxPhase0 int64
		for i := 0; i < n; i++ {
			if idx != nil {
				if workload.DriftSchedule(i, n) == 0 {
					idx.SimCostNs = indexCheapNs
				} else {
					idx.SimCostNs = indexDearNs
				}
				if i == n/2 {
					idxPhase0 = idx.ModuleStats().In
				}
			}
			tp := tuple.New(sSchema, tuple.String(syms[i%len(syms)]), tuple.Float(1))
			tp.TS = tuple.Timestamp{Seq: int64(i) + 1}
			if err := e.Admit(tp); err != nil {
				panic(err)
			}
			if err := e.RunUntilIdle(0); err != nil {
				panic(err)
			}
		}
		el := time.Since(start)
		var viaIdx, viaScan int64
		if idx != nil {
			viaIdx = idx.ModuleStats().In
		}
		if scan != nil {
			viaScan = scan.ModuleStats().In
		}
		return el, viaIdx, viaScan, joins, idxPhase0
	}

	for _, c := range []struct {
		name     string
		idx, scn bool
	}{
		{"index only", true, false},
		{"scan only", false, true},
		{"hybrid (eddy)", true, true},
	} {
		el, viaIdx, viaScan, joins, idxPh0 := run(c.idx, c.scn)
		t.Rows = append(t.Rows, []string{
			c.name, el.Round(time.Millisecond).String(),
			fmt.Sprintf("%d/%d", idxPh0, viaIdx-idxPh0),
			fmt.Sprint(viaScan), fmt.Sprint(joins),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d probes; index probe cost drifts 0.02ms→10ms at the midpoint; scan probe fixed at 1.5ms", n),
		"every plan produces the same join count; the hybrid's 'via' split should flip across the drift")
	return t
}
