package experiments

import (
	"fmt"

	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

// E3EddyVsStatic reproduces the Eddies adaptivity result [AH00]: when
// two commuting filters swap selectivities mid-stream, a static plan
// ordered for the first phase wastes work in the second, while the
// lottery keeps routing most tuples to whichever filter is currently
// selective. The metric is total filter invocations (module work): the
// optimal plan routes each tuple to the selective filter first, so fewer
// tuples reach the second filter.
func E3EddyVsStatic(scale int) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Eddy adapts to selectivity drift; static plans cannot",
		Claim:   "per-tuple lottery routing tracks the selectivity swap and stays near the per-phase optimum; the phase-1-optimal static plan degrades in phase 2 (Eddies, SIGMOD 2000)",
		Columns: []string{"policy", "invocations", "vs oracle", "outputs"},
	}
	n := 20000 * scale

	// Two commuting filters on different attributes. In phase 0, A
	// passes 10% and B passes ~100%; in phase 1 the data swaps so B is
	// the selective one. The optimal order flips at the midpoint.
	run := func(policy eddy.Policy) (int64, int64) {
		fa := operator.NewFilter("A", expr.Bin(expr.OpLt, expr.Col("S", "a"), expr.Lit(tuple.Float(10))))
		fb := operator.NewFilter("B", expr.Bin(expr.OpLt, expr.Col("S", "b"), expr.Lit(tuple.Float(10))))
		var outputs int64
		e := eddy.New([]operator.Module{fa, fb}, policy, func(*tuple.Tuple) { outputs++ })
		schema := tuple.NewSchema(
			tuple.Column{Source: "S", Name: "a", Kind: tuple.KindFloat},
			tuple.Column{Source: "S", Name: "b", Kind: tuple.KindFloat},
		)
		av := workload.UniformInts(n, 100, 11)
		bv := workload.UniformInts(n, 100, 12)
		for i := 0; i < n; i++ {
			a, b := float64(av[i]), float64(bv[i])
			if workload.DriftSchedule(i, n) == 0 {
				b = float64(bv[i] % 10) // phase 0: B passes ~100%, A 10%
			} else {
				a = float64(av[i] % 10) // phase 1: A passes ~100%, B 10%
			}
			tp := tuple.New(schema, tuple.Float(a), tuple.Float(b))
			tp.TS = tuple.Timestamp{Seq: int64(i) + 1}
			if err := e.Admit(tp); err != nil {
				panic(err)
			}
			if err := e.RunUntilIdle(0); err != nil {
				panic(err)
			}
		}
		work := fa.ModuleStats().In + fb.ModuleStats().In
		return work, outputs
	}

	// Oracle lower bound: every tuple visits the currently selective
	// filter (pass rate 10%) first; the 10% survivors visit the other.
	oracle := int64(float64(n) * 1.1)

	type cfg struct {
		name string
		mk   func() eddy.Policy
	}
	for _, c := range []cfg{
		{"static (phase-0 optimal)", func() eddy.Policy { return eddy.NewFixed([]int{0, 1}) }},
		{"static (phase-1 optimal)", func() eddy.Policy { return eddy.NewFixed([]int{1, 0}) }},
		{"random", func() eddy.Policy { return eddy.NewRandom(9) }},
		{"eddy lottery", func() eddy.Policy {
			p := eddy.NewLottery(9)
			p.Explore = 0.02
			return p
		}},
	} {
		work, outputs := run(c.mk())
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprint(work), f2(float64(work) / float64(oracle)), fmt.Sprint(outputs),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d tuples; filter selectivities swap (10%%↔100%%) at the midpoint; 'vs oracle' is invocations relative to the clairvoyant per-phase plan", n),
		"all policies produce identical outputs (commutative filters)")
	return t
}
