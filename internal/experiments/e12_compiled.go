package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

// E12CompiledExpr measures the compiled columnar hot path against the
// tree-walking interpreter on the two workloads the bytecode exists
// for: the E1 shared-engine filter workload (Q=100 queries over one
// stock stream) and the E2 grouped-filter probe. The interpreted
// batch=1 row is the pre-compilation engine default, so its per-tuple
// cost is the historical baseline; batching alone (row 2) isolates the
// routing amortization from the bytecode win (row 3).
func E12CompiledExpr(scale int) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Compiled columnar expressions vs tree-walking interpreter",
		Claim:   "compiling predicates to register bytecode over columnar batches cuts shared-filter per-tuple cost well below the per-tuple interpreted baseline, with zero steady-state allocations (TCQ §4.2 hot path)",
		Columns: []string{"workload", "config", "per-tuple", "speedup"},
	}

	nTuples := 2000 * scale
	rows := workload.Stocks{Seed: 1}.Rows(nTuples)
	syms := workload.DefaultSymbols
	const q = 100

	mkQuery := func(i int) *cacq.Query {
		return &cacq.Query{
			ID:      i,
			Sources: []string{"ClosingStockPrices"},
			Where: expr.Bin(expr.OpAnd,
				expr.Bin(expr.OpEq, expr.Col("", "stockSymbol"), expr.Lit(tuple.String(syms[i%len(syms)]))),
				expr.Bin(expr.OpGt, expr.Col("", "closingPrice"), expr.Lit(tuple.Float(float64(i%120))))),
		}
	}

	// One run of the E1-style shared engine under a given expression
	// path and batch size; delivered counts must agree across configs.
	runShared := func(compiled bool, batch int) (float64, int64) {
		var delivered int64
		eng := cacq.NewEngine(eddy.NewLottery(1), func(int, *tuple.Tuple) { delivered++ })
		eng.SetCompiled(compiled)
		eng.Eddy().BatchSize = batch
		for i := 0; i < q; i++ {
			if err := eng.AddQuery(mkQuery(i)); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		for _, r := range rows {
			_ = eng.Push(r.Clone())
		}
		if err := eng.Run(); err != nil {
			panic(err)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(nTuples), delivered
	}

	interp1, d1 := runShared(false, 1)
	interpB, d2 := runShared(false, 256)
	compB, d3 := runShared(true, 256)
	if d1 != d2 || d1 != d3 {
		panic(fmt.Sprintf("E12: delivered diverge: %d/%d/%d", d1, d2, d3))
	}
	e1 := fmt.Sprintf("E1-style Q=%d", q)
	t.Rows = append(t.Rows,
		[]string{e1, "interpreted/batch=1", ns(interp1), f2(1)},
		[]string{e1, "interpreted/batch=256", ns(interpB), f2(interp1 / interpB)},
		[]string{e1, "compiled/batch=256", ns(compB), f2(interp1 / compB)},
	)

	// E2-style grouped-filter probes: the same factor set probed per
	// tuple (Process) vs per batch (ProcessVec feeding the key column).
	const preds = 1000
	probes := 5000 * scale
	vals := workload.UniformInts(probes, 10000, 3)
	mkGF := func() *operator.GroupedFilter {
		g := operator.NewGroupedFilter(expr.Col("", "closingPrice"))
		for i := 0; i < preds; i++ {
			op := []expr.Op{expr.OpGt, expr.OpLt, expr.OpGe, expr.OpLe}[i%4]
			f := expr.RangeFactor{
				Col: expr.Col("", "closingPrice"),
				Op:  op,
				Val: tuple.Float(float64((i * 37) % 10000)),
			}
			if err := g.AddFactor(i, f); err != nil {
				panic(err)
			}
		}
		return g
	}
	schema := tuple.NewSchema(tuple.Column{Name: "closingPrice", Kind: tuple.KindFloat})
	arm := func(ts []*tuple.Tuple) {
		for _, tp := range ts {
			tp.Lin = &tuple.Lineage{}
			for i := 0; i < preds; i++ {
				tp.Lineage().Queries.Add(i)
			}
		}
	}
	batchTs := make([]*tuple.Tuple, 256)

	// Lineage arming (1000 bits per tuple) is harness setup, not probe
	// work: both passes time only the Process/ProcessVec calls.
	rowG := mkGF()
	var rowKept int64
	var rowTotal time.Duration
	for at := 0; at < probes; at += len(batchTs) {
		n := min(len(batchTs), probes-at)
		for i := 0; i < n; i++ {
			batchTs[i] = tuple.New(schema, tuple.Float(float64(vals[at+i])))
		}
		arm(batchTs[:n])
		start := time.Now()
		for _, tp := range batchTs[:n] {
			out, err := rowG.Process(tp, func(*tuple.Tuple) {})
			if err != nil {
				panic(err)
			}
			if out == operator.Pass {
				rowKept++
			}
		}
		rowTotal += time.Since(start)
	}
	rowNs := float64(rowTotal.Nanoseconds()) / float64(probes)

	vecG := mkGF()
	var cb tuple.ColBatch
	keep := make([]bool, len(batchTs))
	var vecKept int64
	var vecTotal time.Duration
	for at := 0; at < probes; at += len(batchTs) {
		n := min(len(batchTs), probes-at)
		for i := 0; i < n; i++ {
			batchTs[i] = tuple.New(schema, tuple.Float(float64(vals[at+i])))
		}
		arm(batchTs[:n])
		start := time.Now()
		if !cb.Load(batchTs[:n]) {
			panic("E12: ColBatch load failed")
		}
		if !vecG.ProcessVec(&cb, batchTs[:n], keep[:n]) {
			panic("E12: ProcessVec declined")
		}
		vecTotal += time.Since(start)
		for i := 0; i < n; i++ {
			if keep[i] {
				vecKept++
			}
		}
	}
	vecNs := float64(vecTotal.Nanoseconds()) / float64(probes)
	if rowKept != vecKept {
		panic(fmt.Sprintf("E12: gfilter kept diverge: row %d vs vec %d", rowKept, vecKept))
	}
	e2 := fmt.Sprintf("E2-style P=%d", preds)
	t.Rows = append(t.Rows,
		[]string{e2, "row probes", ns(rowNs), f2(1)},
		[]string{e2, "vec probes", ns(vecNs), f2(rowNs / vecNs)},
	)

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d stock tuples, %d grouped-filter probes per configuration; delivered/kept counts verified identical across paths", nTuples, probes),
		"interpreted/batch=1 is the pre-compilation engine default; WITH (compiled=off) reproduces it per query")
	return t
}
