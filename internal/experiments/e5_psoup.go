package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/psoup"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
	"telegraphcq/internal/workload"
)

// E5PSoup reproduces the PSoup materialization result (§3.2, [CF02]):
// with results continuously materialized into the Results Structure, an
// intermittent client's Invoke costs O(answer); the no-materialization
// baseline rescans retained history on every invocation, so its cost
// grows with history size while the materialized cost stays flat.
func E5PSoup(scale int) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "PSoup: materialized results vs recompute-on-invoke",
		Claim:   "invocation latency is O(answer) with materialization and O(history) without (PSoup, VLDB 2002)",
		Columns: []string{"history", "materialized", "recompute", "speedup", "rows"},
	}
	const nQueries = 50
	p := psoup.New()
	for i := 0; i < nQueries; i++ {
		q := &psoup.Query{
			ID:     i,
			Stream: "ClosingStockPrices",
			Where: expr.Bin(expr.OpGt, expr.Col("", "closingPrice"),
				expr.Lit(tuple.Float(float64(40+i)))),
			Window: window.Sliding("ClosingStockPrices", 500, 1, 0),
		}
		if err := p.AddQuery(q); err != nil {
			panic(err)
		}
	}

	histories := []int{1000, 5000, 20000, 50000}
	rows := workload.Stocks{Seed: 2}.Rows(histories[len(histories)-1] * scale)
	pushed := 0
	for _, h := range histories {
		h *= scale
		for ; pushed < h; pushed++ {
			if err := p.PushData(rows[pushed]); err != nil {
				panic(err)
			}
		}
		at := int64(h)
		// Average over all queries, several repetitions.
		const reps = 5
		var matNs, recNs float64
		var got int
		start := time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i < nQueries; i++ {
				res, err := p.Invoke(i, at)
				if err != nil {
					panic(err)
				}
				got += len(res)
			}
		}
		matNs = float64(time.Since(start).Nanoseconds()) / float64(reps*nQueries)
		start = time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i < nQueries; i++ {
				if _, err := p.InvokeRecompute(i, at); err != nil {
					panic(err)
				}
			}
		}
		recNs = float64(time.Since(start).Nanoseconds()) / float64(reps*nQueries)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(h), ns(matNs), ns(recNs), f2(recNs / matNs),
			fmt.Sprint(got / (reps * nQueries)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d standing queries, window = 500 most recent tuples at invocation; latencies averaged per query", nQueries))
	return t
}
