package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/flux"
	"telegraphcq/internal/workload"
)

// E6Flux reproduces the Flux claims (§2.4, [SHCF03]) on the simulated
// cluster: (a) online repartitioning restores throughput when one
// machine runs slow, and (b) process-pair replication makes a mid-run
// machine failure lossless, while the unreplicated dataflow loses the
// dead machine's accumulated state.
func E6Flux(scale int) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Flux: online repartitioning and process-pair failover",
		Claim:   "repartitioning rebalances a skewed cluster mid-stream; replication makes failover lossless (Flux, ICDE 2003)",
		Columns: []string{"configuration", "time", "groups kept", "count error"},
	}
	n := 2000 * scale
	rows := workload.Flows{Hosts: 64, Seed: 4}.Rows(n)
	want := map[string]int64{}
	for _, r := range rows {
		want[r.Values[0].S]++
	}
	key, val := expr.Col("", "src"), expr.Col("", "bytes")

	type result struct {
		elapsed time.Duration
		kept    int
		missing int64
	}
	run := func(speeds []float64, rebalance, replicate bool, killAt int) result {
		f, err := flux.New(flux.Config{
			Machines: 4, Buckets: 32, QueueCap: 16,
			Speeds: speeds, PerTupleCostNs: 100_000, Replication: replicate,
		}, key, val)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		start := time.Now()
		for i, r := range rows {
			if killAt > 0 && i == killAt {
				f.Barrier()
				if err := f.Kill(1); err != nil {
					panic(err)
				}
			}
			if _, err := f.Route(r); err != nil {
				panic(err)
			}
			if rebalance && i%50 == 49 {
				_, _ = f.Rebalance()
			}
		}
		got := f.Collect()
		el := time.Since(start)
		var missing int64
		for k, w := range want {
			if g := got[k]; g == nil {
				missing += w
			} else if g.Count < w {
				missing += w - g.Count
			}
		}
		return result{elapsed: el, kept: len(got), missing: missing}
	}

	skew := []float64{0.05, 1, 1, 1}
	even := []float64{1, 1, 1, 1}

	for _, c := range []struct {
		name                 string
		speeds               []float64
		rebalance, replicate bool
		killAt               int
	}{
		{"balanced cluster", even, false, false, 0},
		{"one machine 20x slow", skew, false, false, 0},
		{"slow + repartitioning", skew, true, false, 0},
		{"kill @50%, no replication", even, false, false, n / 2},
		{"kill @50%, process pairs", even, false, true, n / 2},
	} {
		r := run(c.speeds, c.rebalance, c.replicate, c.killAt)
		t.Rows = append(t.Rows, []string{
			c.name, r.elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d/%d", r.kept, len(want)),
			fmt.Sprint(r.missing),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d skewed flow records, 4 machines × 32 buckets, 0.1ms nominal service; grouped count/sum per source host", n),
		"'count error' is the total undercount across groups vs ground truth (0 = lossless)")
	return t
}
