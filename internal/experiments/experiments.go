// Package experiments regenerates the evaluation of DESIGN.md §4: each
// function reproduces one performance claim of the TelegraphCQ paper (or
// of the companion system the paper cites for it) and returns a printable
// table. cmd/tcqbench prints them; the root bench_test.go wraps them in
// testing.B benchmarks. Absolute numbers depend on the host; the claims
// are about shape (who wins, by what factor, where crossovers fall).
package experiments

import (
	"fmt"
	"strings"
)

// ShardSweep is the per-EO eddy shard counts the sharded rows of E10
// run (1 is always the baseline). cmd/tcqbench's -shards flag overrides
// it; recorded in BENCH_*.json alongside GOMAXPROCS so speedups are
// interpretable on the host they were measured on.
var ShardSweep = []int{1, 2, 4}

// Table is one experiment's result.
type Table struct {
	ID      string // "E1" ... "E10"
	Title   string
	Claim   string // the paper claim being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render prints the table in aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment at the given scale factor (1 = quick,
// suitable for CI; larger = smoother numbers).
func All(scale int) []*Table {
	if scale < 1 {
		scale = 1
	}
	return []*Table{
		E1SharedVsUnshared(scale),
		E2GroupedFilter(scale),
		E3EddyVsStatic(scale),
		E4JoinHybrid(scale),
		E5PSoup(scale),
		E6Flux(scale),
		E7Windows(scale),
		E8Fjords(scale),
		E9Batching(scale),
		E10Executor(scale),
		E12CompiledExpr(scale),
	}
}

// ByID returns one experiment by id ("E1".."E10", "E12"), or nil.
func ByID(id string, scale int) *Table {
	if scale < 1 {
		scale = 1
	}
	switch strings.ToUpper(id) {
	case "E1":
		return E1SharedVsUnshared(scale)
	case "E2":
		return E2GroupedFilter(scale)
	case "E3":
		return E3EddyVsStatic(scale)
	case "E4":
		return E4JoinHybrid(scale)
	case "E5":
		return E5PSoup(scale)
	case "E6":
		return E6Flux(scale)
	case "E7":
		return E7Windows(scale)
	case "E8":
		return E8Fjords(scale)
	case "E9":
		return E9Batching(scale)
	case "E10":
		return E10Executor(scale)
	case "E12":
		return E12CompiledExpr(scale)
	}
	return nil
}

func ns(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
