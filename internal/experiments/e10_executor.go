package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/executor"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/tuple"
)

// E10Executor reproduces the §4.2.2 executor design point: mapping query
// classes (disjoint footprints) onto Execution Objects. One EO for
// everything cannot exploit SMP parallelism across unrelated streams;
// one EO per query multiplies scheduling and loses sharing within a
// class; footprint grouping gets both.
func E10Executor(scale int) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Execution Objects: query-class placement and intra-EO sharding",
		Claim:   "footprint-grouped EOs exploit SMP across disjoint classes while sharing work within a class (§4.2.2); hash-partitioned eddy shards scale one EO across cores (§2.4)",
		Columns: []string{"mode", "EOs", "shards", "time", "per-tuple"},
	}
	const (
		streams       = 8
		queriesPerStr = 8
	)
	n := 2000 * scale // tuples per stream

	run := func(mode executor.ClassMode, shards int) (int, time.Duration) {
		cat := catalog.New()
		for s := 0; s < streams; s++ {
			_, err := cat.CreateStream(fmt.Sprintf("s%d", s), []tuple.Column{
				{Name: "v", Kind: tuple.KindFloat},
			}, false)
			if err != nil {
				panic(err)
			}
		}
		x := executor.New(cat, executor.Options{Mode: mode, Shards: shards, QueueCap: 1 << 16})
		defer x.Close()
		for s := 0; s < streams; s++ {
			for q := 0; q < queriesPerStr; q++ {
				stmt, err := sql.Parse(fmt.Sprintf(
					`SELECT v FROM s%d WHERE v > %d`, s, q*12))
				if err != nil {
					panic(err)
				}
				if _, _, err := x.Submit(stmt.(*sql.Select)); err != nil {
					panic(err)
				}
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			for s := 0; s < streams; s++ {
				if _, err := x.Push(fmt.Sprintf("s%d", s),
					[]tuple.Value{tuple.Float(float64(i % 100))}); err != nil {
					panic(err)
				}
			}
		}
		if err := x.Barrier(); err != nil {
			panic(err)
		}
		return x.EOCount(), time.Since(start)
	}

	cases := []struct {
		name   string
		mode   executor.ClassMode
		shards int
	}{
		{"single EO (CACQ-style)", executor.ClassSingle, 1},
		{"EO per footprint class", executor.ClassByFootprint, 1},
		{"EO per query", executor.ClassPerQuery, 1},
	}
	for _, s := range ShardSweep {
		if s <= 1 {
			continue // the footprint row above is the 1-shard baseline
		}
		cases = append(cases, struct {
			name   string
			mode   executor.ClassMode
			shards int
		}{fmt.Sprintf("footprint EOs, %d eddy shards", s), executor.ClassByFootprint, s})
	}
	for _, c := range cases {
		eos, el := run(c.mode, c.shards)
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprint(eos), fmt.Sprint(c.shards),
			el.Round(time.Millisecond).String(),
			ns(float64(el.Nanoseconds()) / float64(n*streams)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d streams × %d queries, %d tuples per stream; queries on one stream share grouped filters within an EO", streams, queriesPerStr, n),
		"sharded rows hash-partition each EO's eddy across per-core shards; speedup requires real cores (see GOMAXPROCS in BENCH_E10.json)")
	return t
}
