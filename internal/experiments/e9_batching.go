package experiments

import (
	"fmt"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/workload"
)

// E9Batching reproduces the "adapting adaptivity" discussion (§4.3):
// batching tuples amortizes per-tuple routing decisions — throughput
// rises with batch size — but very large batches blunt adaptivity, so
// under selectivity drift the module work (filter invocations) creeps
// back up. The knobs trade flexibility for overhead exactly as the
// paper describes.
func E9Batching(scale int) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Adapting adaptivity: the tuple-batching knob",
		Claim:   "batching amortizes routing decisions: choose calls fall by the batch factor while module work and results stay identical (§4.3)",
		Columns: []string{"batch", "per-tuple", "choose calls", "module work", "outputs"},
	}
	n := 20000 * scale

	for _, batch := range []int{1, 8, 64, 512} {
		eng := cacq.NewEngine(eddy.NewLottery(3), func(int, *tuple.Tuple) {})
		eng.Eddy().BatchSize = batch
		// Two queries over different attributes, selectivities swap.
		for qi, col := range []string{"a", "b"} {
			err := eng.AddQuery(&cacq.Query{
				ID:      qi,
				Sources: []string{"S"},
				Where: expr.Bin(expr.OpAnd,
					expr.Bin(expr.OpLt, expr.Col("", "a"), expr.Lit(tuple.Float(10))),
					expr.Bin(expr.OpLt, expr.Col("", "b"), expr.Lit(tuple.Float(10)))),
			})
			if err != nil {
				panic(err)
			}
			_ = col
		}
		schema := tuple.NewSchema(
			tuple.Column{Source: "S", Name: "a", Kind: tuple.KindFloat},
			tuple.Column{Source: "S", Name: "b", Kind: tuple.KindFloat},
		)
		av := workload.UniformInts(n, 100, 21)
		bv := workload.UniformInts(n, 100, 22)
		start := time.Now()
		var outputs int64
		_ = outputs
		for i := 0; i < n; i++ {
			a, b := float64(av[i]), float64(bv[i])
			if workload.DriftSchedule(i, n) == 0 {
				b = float64(bv[i] % 12) // phase 0: b mostly passes
			} else {
				a = float64(av[i] % 12) // phase 1: a mostly passes
			}
			tp := tuple.New(schema, tuple.Float(a), tuple.Float(b))
			tp.TS = tuple.Timestamp{Seq: int64(i) + 1}
			if err := eng.Push(tp); err != nil {
				panic(err)
			}
			if i%batch == batch-1 {
				if err := eng.Run(); err != nil {
					panic(err)
				}
			}
		}
		if err := eng.Run(); err != nil {
			panic(err)
		}
		el := time.Since(start)
		st := eng.Eddy().Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(batch),
			ns(float64(el.Nanoseconds()) / float64(n)),
			fmt.Sprint(st.ChooseCalls),
			fmt.Sprint(st.Routed),
			fmt.Sprint(eng.Stats().Delivered),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d tuples, 2 grouped filters whose pass rates swap at the midpoint", n),
		"'module work' = tuples routed into modules; batching must not change it (same routing, fewer decisions)",
		"very large batches add latency (tuples wait to fill a batch) — the flexibility cost of the knob")
	return t
}
