package operator

import (
	"sync/atomic"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/tuple"
)

// Lookup resolves a key against a remote index (a wrapped web form, a
// sensor lookup, a federated table) and returns the matching base tuples.
type Lookup func(key tuple.Value) ([]*tuple.Tuple, error)

// AsyncIndex is the asynchronous index access method of §2.2: joining a
// stream S with a remote index on T "in an asynchronous fashion as
// described in [GW00], requiring a SteM on S (a rendezvous buffer) to
// hold S tuples pending matches ... a SteM on T should also be built, as
// a cache of previous expensive T lookups, as in [HN96]".
//
// Process parks the probe tuple in the rendezvous buffer and issues the
// lookup on a worker goroutine; Idle harvests completed lookups, caches
// the fetched T tuples, and emits concatenations. Cache hits bypass the
// network entirely.
type AsyncIndex struct {
	name    string
	source  string // the remote relation (T)
	keyCol  *expr.ColumnRef
	lookup  Lookup
	latency atomic.Int64 // simulated round trip, nanoseconds
	group   string

	cacheKeys  map[uint64][]tuple.Value // keys already fetched (verified)
	cache      *stem.SteM               // fetched T tuples [HN96]
	cacheKeyEx expr.Expr                // index on T's key column

	pending     map[int64]*tuple.Tuple // rendezvous buffer [GW00]
	nextReq     int64
	completions chan completion
	// waiters coalesces concurrent probes for a key already being
	// fetched: one remote lookup serves them all.
	waiters  map[string][]*tuple.Tuple
	stats    Stats
	inFlight atomic.Int64
}

type completion struct {
	req     int64
	key     tuple.Value
	results []*tuple.Tuple
	err     error
}

// NewAsyncIndex builds the access method. keyCol is the probe-side
// column matched against the remote index on source; remoteKey is the
// key column name within fetched tuples.
func NewAsyncIndex(name, source string, keyCol *expr.ColumnRef, remoteKey string, lookup Lookup, latency time.Duration) *AsyncIndex {
	keyEx := expr.Col(source, remoteKey)
	a := &AsyncIndex{
		name:        name,
		source:      source,
		keyCol:      keyCol,
		lookup:      lookup,
		cacheKeys:   map[uint64][]tuple.Value{},
		cache:       stem.New(source+".cache", keyEx),
		cacheKeyEx:  keyEx,
		pending:     map[int64]*tuple.Tuple{},
		completions: make(chan completion, 1024),
		waiters:     map[string][]*tuple.Tuple{},
	}
	a.latency.Store(int64(latency))
	return a
}

// Name implements Module.
func (a *AsyncIndex) Name() string { return a.name }

// SetGroup marks this module as an alternative access path.
func (a *AsyncIndex) SetGroup(g string) { a.group = g }

// Group implements the router's Alternative interface.
func (a *AsyncIndex) Group() string { return a.group }

// SetLatency adjusts the simulated round-trip time (drift experiments).
func (a *AsyncIndex) SetLatency(d time.Duration) { a.latency.Store(int64(d)) }

// Pending returns the rendezvous-buffer occupancy.
func (a *AsyncIndex) Pending() int { return len(a.pending) }

// CacheSize returns the number of cached remote tuples.
func (a *AsyncIndex) CacheSize() int { return a.cache.Size() }

// Interested implements Module: probes are tuples carrying the key
// column and not already spanning the remote source.
func (a *AsyncIndex) Interested(t *tuple.Tuple) bool {
	if t.Schema.HasSource(a.source) {
		return false
	}
	_, err := a.keyCol.Resolve(t.Schema)
	return err == nil
}

// Process implements Module.
func (a *AsyncIndex) Process(t *tuple.Tuple, emit Emit) (Outcome, error) {
	a.stats.In++
	kv, err := a.keyCol.Eval(t)
	if err != nil {
		return Drop, err
	}
	if a.keySeen(kv) {
		// Cache hit: answer locally.
		matches, err := a.cache.Probe(t, stem.ProbeSpec{KeyExpr: a.keyCol})
		if err != nil {
			return Drop, err
		}
		for _, j := range matches {
			if t.Lin != nil {
				l := j.Lineage()
				l.Queries.CopyFrom(&t.Lin.Queries)
				l.Done.CopyFrom(&t.Lin.Done)
			}
			a.stats.Out++
			emit(j)
		}
		return Pass, nil
	}
	// Miss: park in the rendezvous buffer. If this key is already being
	// fetched, wait on that request instead of issuing another.
	wkey := keyRepr(kv)
	if _, fetching := a.waiters[wkey]; fetching {
		a.waiters[wkey] = append(a.waiters[wkey], t)
		return Consumed, nil
	}
	a.waiters[wkey] = nil // mark in flight
	req := a.nextReq
	a.nextReq++
	a.pending[req] = t
	a.inFlight.Add(1)
	lat := time.Duration(a.latency.Load())
	go func() {
		if lat > 0 {
			time.Sleep(lat)
		}
		res, err := a.lookup(kv)
		a.completions <- completion{req: req, key: kv, results: res, err: err}
	}()
	return Consumed, nil
}

// keyRepr is a map key for coalescing (kind-tagged string form).
func keyRepr(v tuple.Value) string { return string(rune(v.K)) + v.String() }

func (a *AsyncIndex) keySeen(v tuple.Value) bool {
	for _, k := range a.cacheKeys[v.Hash()] {
		if tuple.Equal(k, v) {
			return true
		}
	}
	return false
}

// Idle implements Idler: harvest completed lookups without blocking.
func (a *AsyncIndex) Idle(emit Emit) (bool, error) {
	worked := false
	for {
		select {
		case c := <-a.completions:
			worked = true
			a.inFlight.Add(-1)
			probe, ok := a.pending[c.req]
			if !ok {
				continue
			}
			delete(a.pending, c.req)
			if c.err != nil {
				return worked, c.err
			}
			if !a.keySeen(c.key) {
				h := c.key.Hash()
				a.cacheKeys[h] = append(a.cacheKeys[h], c.key)
				for _, rt := range c.results {
					if err := a.cache.Build(rt); err != nil {
						return worked, err
					}
				}
			}
			// Serve the original probe plus every coalesced waiter.
			recipients := append([]*tuple.Tuple{probe}, a.waiters[keyRepr(c.key)]...)
			delete(a.waiters, keyRepr(c.key))
			for _, pr := range recipients {
				for _, rt := range c.results {
					j := tuple.Concat(pr, rt)
					if pr.Lin != nil {
						l := j.Lineage()
						l.Queries.CopyFrom(&pr.Lin.Queries)
						l.Done.CopyFrom(&pr.Lin.Done)
					}
					a.stats.Out++
					emit(j)
				}
			}
		default:
			return worked, nil
		}
	}
}

// Drain blocks until every in-flight lookup has completed and been
// emitted (end-of-stream flush for experiments).
func (a *AsyncIndex) Drain(emit Emit, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for a.inFlight.Load() > 0 || len(a.pending) > 0 {
		worked, err := a.Idle(emit)
		if err != nil {
			return err
		}
		if !worked {
			if time.Now().After(deadline) {
				return nil
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	return nil
}

// ModuleStats implements StatsProvider.
func (a *AsyncIndex) ModuleStats() Stats { return a.stats }
