// Package operator implements the pipelined, non-blocking dataflow
// modules of Figure 1 in the paper: selections (Filter), CACQ grouped
// filters, projections, windowed grouping/aggregation, duplicate
// elimination, sorting, transitive closure, the Juggle online reorderer,
// and an asynchronous index access method. Modules consume and produce
// tuples through a uniform interface so an Eddy can route among them
// without knowing what they do (§2.1: "architecturally, these modules
// are indistinguishable").
package operator

import "telegraphcq/internal/tuple"

// Outcome tells the router what became of the tuple a module processed.
type Outcome uint8

const (
	// Pass: the module handled the tuple successfully; routing continues.
	Pass Outcome = iota
	// Drop: the tuple failed a predicate (or no query remains interested);
	// the router discards it.
	Drop
	// Consumed: the module retained the tuple (e.g. an aggregate absorbed
	// it, an async join parked it in a rendezvous buffer); routing of this
	// tuple ends but derived tuples may be emitted now or later.
	Consumed
	// Bounce: the module cannot process the tuple right now; the router
	// should retry later (§2.2: a module "can also optionally return
	// (or bounce back) t to the Eddy").
	Bounce
)

func (o Outcome) String() string {
	switch o {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Consumed:
		return "consumed"
	case Bounce:
		return "bounce"
	default:
		return "?"
	}
}

// Emit delivers a tuple produced by a module back to the router (join
// matches, window results).
type Emit func(*tuple.Tuple)

// Module is the unit of dataflow composition.
type Module interface {
	// Name identifies the module in plans, stats, and experiments.
	Name() string
	// Interested reports whether the router should route t through this
	// module. The Eddy uses it to initialize each tuple's ready bitmap.
	Interested(t *tuple.Tuple) bool
	// Process handles one tuple, possibly emitting derived tuples.
	Process(t *tuple.Tuple, emit Emit) (Outcome, error)
}

// VecModule is implemented by modules that can process a whole
// same-schema batch column-at-a-time over a columnar view. ProcessVec
// must be externally indistinguishable from calling Process on each
// tuple of ts in order: keep[i]=false marks lane i dropped, and stats
// advance exactly as the per-tuple path would. Only modules that never
// emit, bounce, or consume qualify. handled=false means the caller must
// replay the batch tuple-at-a-time through Process; an implementation
// may return false after partial work only if that work is idempotent
// under replay (grouped-filter lineage subtraction is — Subtract of the
// same failure set twice is a no-op) and leaves stats untouched.
type VecModule interface {
	Module
	ProcessVec(cb *tuple.ColBatch, ts []*tuple.Tuple, keep []bool) (handled bool)
}

// Idler is implemented by modules with internal asynchrony (e.g. an
// asynchronous index join waiting on remote lookups). The scheduler calls
// Idle when it has spare cycles — the Fjords discipline of using
// non-blocking dequeues to "pursue other computation". It returns true if
// the module did work.
type Idler interface {
	Idle(emit Emit) (bool, error)
}

// Flusher is implemented by modules holding window state that must be
// flushed when their input ends (end of stream = infinite punctuation).
type Flusher interface {
	Flush(emit Emit) error
}

// Stats are the per-module observations adaptive routing policies feed on.
type Stats struct {
	In       int64 // tuples routed in
	Out      int64 // tuples emitted
	Dropped  int64 // tuples dropped
	Bounced  int64 // tuples bounced
	WorkNsec int64 // cumulative processing time, nanoseconds
}

// Selectivity estimates the fraction of input that survives; 1.0 until
// observations exist.
func (s Stats) Selectivity() float64 {
	if s.In == 0 {
		return 1
	}
	return 1 - float64(s.Dropped)/float64(s.In)
}

// CostPerTuple estimates nanoseconds of work per input tuple.
func (s Stats) CostPerTuple() float64 {
	if s.In == 0 {
		return 0
	}
	return float64(s.WorkNsec) / float64(s.In)
}

// StatsProvider is implemented by modules that expose observations.
type StatsProvider interface {
	ModuleStats() Stats
}
