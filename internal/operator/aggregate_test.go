package operator

import (
	"math"
	"math/rand"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

func collect(dst *[]*tuple.Tuple) Emit {
	return func(t *tuple.Tuple) { *dst = append(*dst, t) }
}

// feed sends price values with sequence numbers 1..n.
func feed(t *testing.T, w *WindowAgg, prices []float64, emit Emit) {
	t.Helper()
	for i, p := range prices {
		if _, err := w.Process(stock(int64(i+1), "MSFT", p), emit); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotAggregate(t *testing.T) {
	// Paper example 1 shape: AVG over window [1,5], once.
	spec := window.Snapshot("stocks", 1, 5)
	aggs := []AggSpec{{Kind: AggAvg, Arg: expr.Col("", "price")}}
	w, err := NewWindowAgg("agg", "stocks", spec, 0, nil, aggs, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy() != StrategyIncremental {
		t.Fatalf("strategy = %v", w.Strategy())
	}
	var out []*tuple.Tuple
	feed(t, w, []float64{10, 20, 30, 40, 50, 999, 999}, collect(&out))
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	if got := out[0].Values[1].F; got != 30 {
		t.Fatalf("avg = %v", got)
	}
	if out[0].Values[0].I != 0 { // loop value t
		t.Fatalf("t = %v", out[0].Values[0])
	}
}

func TestLandmarkAggregateIterative(t *testing.T) {
	// Landmark from 1, right edge moves 1..4: emits prefix aggregates.
	spec := window.Landmark("stocks", 1, 1, 4)
	aggs := []AggSpec{
		{Kind: AggMax, Arg: expr.Col("", "price")},
		{Kind: AggCount},
	}
	w, err := NewWindowAgg("agg", "stocks", spec, 0, nil, aggs, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	feed(t, w, []float64{10, 50, 20, 30, 1}, collect(&out))
	_ = w.Flush(collect(&out))
	// Windows [1,1] [1,2] [1,3] [1,4]: maxes 10, 50, 50, 50; counts 1..4.
	if len(out) != 4 {
		t.Fatalf("results = %d", len(out))
	}
	wantMax := []float64{10, 50, 50, 50}
	for i, r := range out {
		if r.Values[1].F != wantMax[i] || r.Values[2].I != int64(i+1) {
			t.Fatalf("row %d: %v", i, r)
		}
	}
}

func TestSlidingAvgPaperExample3(t *testing.T) {
	// Width 5, hop 5, ST=5: windows [1,5], [6,10].
	spec := window.Sliding("stocks", 5, 5, 10)
	aggs := []AggSpec{{Kind: AggAvg, Arg: expr.Col("", "price")}}
	w, err := NewWindowAgg("agg", "stocks", spec, 5, nil, aggs, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy() != StrategyDeque {
		t.Fatalf("strategy = %v", w.Strategy())
	}
	var out []*tuple.Tuple
	feed(t, w, []float64{1, 2, 3, 4, 5, 10, 20, 30, 40, 50, 99}, collect(&out))
	if len(out) != 2 {
		t.Fatalf("results = %d: %v", len(out), out)
	}
	if out[0].Values[1].F != 3 || out[1].Values[1].F != 30 {
		t.Fatalf("avgs = %v, %v", out[0].Values[1], out[1].Values[1])
	}
}

func TestSlidingMaxStrategiesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	prices := make([]float64, 200)
	for i := range prices {
		prices[i] = math.Round(r.Float64() * 100)
	}
	for _, overlap := range []struct {
		width, hop int64
	}{{10, 3}, {5, 5}, {4, 7}, {1, 1}, {20, 10}} {
		spec := window.Sliding("stocks", overlap.width, overlap.hop, 0)
		aggs := []AggSpec{
			{Kind: AggMax, Arg: expr.Col("", "price")},
			{Kind: AggMin, Arg: expr.Col("", "price")},
			{Kind: AggSum, Arg: expr.Col("", "price")},
			{Kind: AggCount},
		}
		results := map[Strategy][]*tuple.Tuple{}
		for _, s := range []Strategy{StrategyRecompute, StrategyDeque} {
			w, err := NewWindowAgg("agg", "stocks", spec, 1, nil, aggs, s)
			if err != nil {
				t.Fatal(err)
			}
			var out []*tuple.Tuple
			feed(t, w, prices, collect(&out))
			results[s] = out
		}
		rec, dq := results[StrategyRecompute], results[StrategyDeque]
		if len(rec) != len(dq) || len(rec) == 0 {
			t.Fatalf("w=%d h=%d: lengths %d vs %d", overlap.width, overlap.hop, len(rec), len(dq))
		}
		for i := range rec {
			for c := range rec[i].Values {
				a, b := rec[i].Values[c], dq[i].Values[c]
				if a.K != b.K || math.Abs(a.AsFloat()-b.AsFloat()) > 1e-6 {
					t.Fatalf("w=%d h=%d row %d col %d: recompute=%v deque=%v",
						overlap.width, overlap.hop, i, c, a, b)
				}
			}
		}
	}
}

func TestGroupedAggregate(t *testing.T) {
	// ST=4: windows [1,4] and [5,8].
	spec := window.Sliding("stocks", 4, 4, 8)
	aggs := []AggSpec{{Kind: AggAvg, Arg: expr.Col("", "price")}}
	w, err := NewWindowAgg("agg", "stocks", spec, 4,
		[]*expr.ColumnRef{expr.Col("", "sym")}, aggs, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	syms := []string{"A", "B", "A", "B", "A", "A", "B", "B", "X"}
	prices := []float64{10, 100, 20, 200, 30, 40, 300, 400, 0}
	for i := range syms {
		_, err := w.Process(stock(int64(i+1), syms[i], prices[i]), collect(&out))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Window [1,4]: A avg 15, B avg 150. Window [5,8]: A avg 35, B avg 350.
	if len(out) != 4 {
		t.Fatalf("results = %d", len(out))
	}
	type gk struct {
		t   int64
		sym string
	}
	got := map[gk]float64{}
	for _, r := range out {
		got[gk{r.Values[0].I, r.Values[1].S}] = r.Values[2].F
	}
	want := map[gk]float64{
		{4, "A"}: 15, {4, "B"}: 150, {8, "A"}: 35, {8, "B"}: 350,
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("group %v = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

func TestEmptyWindowEmitsCountZero(t *testing.T) {
	// Hop 10 > width 2 leaves gaps; a window with no tuples emits count 0
	// for ungrouped aggregates.
	spec := window.Sliding("stocks", 2, 10, 30)
	aggs := []AggSpec{{Kind: AggCount}, {Kind: AggMax, Arg: expr.Col("", "price")}}
	w, err := NewWindowAgg("agg", "stocks", spec, 1, nil, aggs, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	// Tuples only at seq 25 (window [21,22] missed, [11,12] empty, [1,2] empty).
	_, _ = w.Process(stock(25, "A", 5), collect(&out))
	// Windows [1,2] and [11,12] and [21,22] closed; all empty.
	if len(out) != 3 {
		t.Fatalf("results = %d", len(out))
	}
	for _, r := range out {
		if r.Values[1].I != 0 || !r.Values[2].IsNull() {
			t.Fatalf("empty window row: %v", r)
		}
	}
}

func TestHopGapTuplesIgnored(t *testing.T) {
	// width 2, hop 5, ST=2: windows [1,2], [6,7], [11,12], ...; tuples at
	// 3,4,5 fall in the hop gap and are never buffered (§4.1.2: "some
	// portions of the stream are never involved").
	spec := window.Sliding("stocks", 2, 5, 20)
	aggs := []AggSpec{{Kind: AggCount}}
	w, err := NewWindowAgg("agg", "stocks", spec, 2, nil, aggs, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	for seq := int64(1); seq <= 7; seq++ {
		_, _ = w.Process(stock(seq, "A", 1), collect(&out))
	}
	if w.StateSize() > 2 {
		t.Fatalf("gap tuples buffered: state = %d", w.StateSize())
	}
	_ = w.Flush(collect(&out))
	// [1,2] count 2, then flush closes the open [6,7] with count 2.
	if len(out) != 2 {
		t.Fatalf("results = %d", len(out))
	}
	if out[0].Values[1].I != 2 || out[1].Values[1].I != 2 {
		t.Fatalf("counts: %v, %v", out[0], out[1])
	}
}

func TestStdDev(t *testing.T) {
	spec := window.Snapshot("stocks", 1, 4)
	aggs := []AggSpec{{Kind: AggStdDev, Arg: expr.Col("", "price")}}
	w, _ := NewWindowAgg("agg", "stocks", spec, 0, nil, aggs, StrategyAuto)
	var out []*tuple.Tuple
	feed(t, w, []float64{2, 4, 4, 4, 99}, collect(&out))
	// population stddev of {2,4,4,4}: mean 3.5, var (2.25+0.25*3)/4 = 0.75
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	want := math.Sqrt(0.75)
	if got := out[0].Values[1].F; math.Abs(got-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
}

func TestCountStarVsCountArg(t *testing.T) {
	spec := window.Snapshot("stocks", 1, 3)
	aggs := []AggSpec{
		{Kind: AggCount}, // COUNT(*)
		{Kind: AggCount, Arg: expr.Col("", "price")}, // COUNT(price)
		{Kind: AggSum, Arg: expr.Col("", "price")},
	}
	w, _ := NewWindowAgg("agg", "stocks", spec, 0, nil, aggs, StrategyAuto)
	var out []*tuple.Tuple
	// One NULL price.
	t1 := stock(1, "A", 10)
	t2 := tuple.New(stockSchema, tuple.Int(2), tuple.String("A"), tuple.Null())
	t2.TS = tuple.Timestamp{Seq: 2}
	t3 := stock(3, "A", 30)
	for _, tp := range []*tuple.Tuple{t1, t2, t3} {
		_, _ = w.Process(tp, collect(&out))
	}
	_, _ = w.Process(stock(4, "A", 0), collect(&out)) // closes window
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	r := out[0]
	if r.Values[1].I != 3 || r.Values[2].I != 2 || r.Values[3].F != 40 {
		t.Fatalf("row: %v", r)
	}
}

func TestMaxWindowShedding(t *testing.T) {
	// ST=100: first window [1,100]; 50 arrivals, cap 10 → 40 shed.
	spec := window.Sliding("stocks", 100, 100, 200)
	aggs := []AggSpec{{Kind: AggCount}}
	w, _ := NewWindowAgg("agg", "stocks", spec, 100, nil, aggs, StrategyRecompute)
	w.MaxWindow = 10
	var out []*tuple.Tuple
	for seq := int64(1); seq <= 50; seq++ {
		_, _ = w.Process(stock(seq, "A", 1), collect(&out))
	}
	if w.Shed() != 40 {
		t.Fatalf("shed = %d", w.Shed())
	}
	if w.StateSize() != 10 {
		t.Fatalf("state = %d", w.StateSize())
	}
}

func TestStateSizeLandmarkVsSliding(t *testing.T) {
	// §4.1.2: landmark MAX needs O(1) state, sliding MAX needs the window.
	landmark, _ := NewWindowAgg("l", "stocks", window.Landmark("stocks", 1, 1, 100000), 0,
		nil, []AggSpec{{Kind: AggMax, Arg: expr.Col("", "price")}}, StrategyAuto)
	sliding, _ := NewWindowAgg("s", "stocks", window.Sliding("stocks", 1000, 1, 0), 1,
		nil, []AggSpec{{Kind: AggMax, Arg: expr.Col("", "price")}}, StrategyRecompute)
	var sink []*tuple.Tuple
	r := rand.New(rand.NewSource(3))
	for seq := int64(1); seq <= 3000; seq++ {
		p := r.Float64() * 100
		_, _ = landmark.Process(stock(seq, "A", p), collect(&sink))
		_, _ = sliding.Process(stock(seq, "A", p), collect(&sink))
	}
	if l := landmark.StateSize(); l > 10 {
		t.Fatalf("landmark state = %d, want O(1)", l)
	}
	if s := sliding.StateSize(); s < 900 {
		t.Fatalf("sliding recompute state = %d, want ~window", s)
	}
}

func TestWindowAggErrors(t *testing.T) {
	aggs := []AggSpec{{Kind: AggCount}}
	if _, err := NewWindowAgg("a", "other", window.Snapshot("stocks", 1, 5), 0, nil, aggs, StrategyAuto); err == nil {
		t.Fatal("wrong stream accepted")
	}
	if _, err := NewWindowAgg("a", "stocks", window.Snapshot("stocks", 1, 5), 0, nil, nil, StrategyAuto); err == nil {
		t.Fatal("no aggs accepted")
	}
	if _, err := NewWindowAgg("a", "stocks", window.Sliding("stocks", 5, 1, 0), 1, nil, aggs, StrategyIncremental); err == nil {
		t.Fatal("incremental over sliding accepted")
	}
	if _, err := NewWindowAgg("a", "stocks", window.Backward("stocks", 5, 5, 3), 10, nil, aggs, StrategyAuto); err == nil {
		t.Fatal("backward window accepted")
	}
}

func TestParseAggKind(t *testing.T) {
	for name, want := range map[string]AggKind{
		"count": AggCount, "sum": AggSum, "avg": AggAvg,
		"min": AggMin, "max": AggMax, "stddev": AggStdDev,
	} {
		got, ok := ParseAggKind(name)
		if !ok || got != want {
			t.Errorf("ParseAggKind(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseAggKind("median"); ok {
		t.Error("median accepted")
	}
}

func TestAggSpecOutputName(t *testing.T) {
	if (AggSpec{Kind: AggCount}).OutputName() != "count" {
		t.Error("count name")
	}
	a := AggSpec{Kind: AggAvg, Arg: expr.Col("", "price")}
	if a.OutputName() != "avg_price" {
		t.Errorf("name = %q", a.OutputName())
	}
	a.As = "p"
	if a.OutputName() != "p" {
		t.Error("alias ignored")
	}
}

func BenchmarkSlidingMaxDeque(b *testing.B) {
	benchSliding(b, StrategyDeque)
}

func BenchmarkSlidingMaxRecompute(b *testing.B) {
	benchSliding(b, StrategyRecompute)
}

func benchSliding(b *testing.B, s Strategy) {
	spec := window.Sliding("stocks", 1000, 100, 0)
	aggs := []AggSpec{{Kind: AggMax, Arg: expr.Col("", "price")}}
	w, err := NewWindowAgg("agg", "stocks", spec, 1, nil, aggs, s)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = w.Process(stock(int64(i+1), "A", r.Float64()*1000), noEmit)
	}
}
