package operator

import (
	"math/rand"
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

func stockBatch(r *rand.Rand, n int) ([]*tuple.Tuple, *tuple.ColBatch) {
	ts := make([]*tuple.Tuple, n)
	for i := range ts {
		ts[i] = stock(int64(i), []string{"A", "B", "C"}[r.Intn(3)], float64(r.Intn(100)))
	}
	var cb tuple.ColBatch
	if !cb.Load(ts) {
		panic("Load failed")
	}
	return ts, &cb
}

// Filter.ProcessVec must make exactly the keep/drop decisions Process
// makes tuple by tuple, and account stats identically.
func TestFilterProcessVecMatchesProcess(t *testing.T) {
	pred := expr.Bin(expr.OpAnd,
		expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(25))),
		expr.Bin(expr.OpNe, expr.Col("", "sym"), expr.Lit(tuple.String("C"))))
	r := rand.New(rand.NewSource(7))
	ts, cb := stockBatch(r, 64)

	vecF := NewFilter("vec", pred)
	rowF := NewFilter("row", pred)
	keep := make([]bool, len(ts))
	if !vecF.ProcessVec(cb, ts, keep) {
		t.Fatal("ProcessVec declined a compilable predicate")
	}
	for i, tp := range ts {
		out, err := rowF.Process(tp, noEmit)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if keep[i] != (out == Pass) {
			t.Fatalf("row %d (price=%v sym=%v): vec keep=%v, row outcome=%v",
				i, tp.Values[2], tp.Values[1], keep[i], out)
		}
	}
	if vs, rs := vecF.ModuleStats(), rowF.ModuleStats(); vs != rs {
		t.Fatalf("stats diverge: vec %+v, row %+v", vs, rs)
	}
}

// A predicate that errors mid-batch must refuse the vector path with
// stats untouched, so the eddy's per-tuple replay is authoritative.
func TestFilterProcessVecErrorLeavesStatsUntouched(t *testing.T) {
	pred := expr.Bin(expr.OpGt,
		expr.Bin(expr.OpDiv, expr.Lit(tuple.Float(100)), expr.Col("", "price")),
		expr.Lit(tuple.Float(2)))
	f := NewFilter("f", pred)
	ts := []*tuple.Tuple{stock(0, "A", 50), stock(1, "A", 0)} // lane 1 divides by zero
	var cb tuple.ColBatch
	cb.Load(ts)
	keep := make([]bool, len(ts))
	if f.ProcessVec(&cb, ts, keep) {
		t.Fatal("ProcessVec handled a batch that must error")
	}
	if s := f.ModuleStats(); s != (Stats{}) {
		t.Fatalf("stats touched on declined batch: %+v", s)
	}
	// The replay path then surfaces the error per tuple.
	if _, err := f.Process(ts[1], noEmit); err == nil {
		t.Fatal("Process must re-raise the division error")
	}
}

// GroupedFilter.ProcessVec must subtract the same lineage bits and make
// the same keep/drop decisions as per-tuple Process.
func TestGroupedFilterProcessVecMatchesProcess(t *testing.T) {
	build := func() *GroupedFilter {
		g := NewGroupedFilter(expr.Col("", "price"))
		addFactor(t, g, 0, expr.OpGt, 50)
		addFactor(t, g, 1, expr.OpLt, 30)
		addFactor(t, g, 2, expr.OpGe, 75)
		return g
	}
	r := rand.New(rand.NewSource(11))
	mk := func() []*tuple.Tuple {
		ts := make([]*tuple.Tuple, 32)
		for i := range ts {
			ts[i] = gfTuple(float64(r.Intn(100)), 0, 1, 2)
		}
		return ts
	}
	vecTs := mk()
	r = rand.New(rand.NewSource(11)) // same draw for the row-path copy
	rowTs := mk()

	vecG, rowG := build(), build()
	var cb tuple.ColBatch
	cb.Load(vecTs)
	keep := make([]bool, len(vecTs))
	if !vecG.ProcessVec(&cb, vecTs, keep) {
		t.Fatal("ProcessVec declined")
	}
	for i := range rowTs {
		out, err := rowG.Process(rowTs[i], noEmit)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if keep[i] != (out == Pass) {
			t.Fatalf("row %d: vec keep=%v, row outcome=%v", i, keep[i], out)
		}
		for q := 0; q < 3; q++ {
			if vecTs[i].Lineage().Queries.Contains(q) != rowTs[i].Lineage().Queries.Contains(q) {
				t.Fatalf("row %d q%d: lineage diverges", i, q)
			}
		}
	}
	if vs, rs := vecG.ModuleStats(), rowG.ModuleStats(); vs != rs {
		t.Fatalf("stats diverge: vec %+v, row %+v", vs, rs)
	}
}

// The vectorized operator paths must be allocation-free in steady
// state: the compiled hot path trades none of its dispatch win for GC.
func TestProcessVecZeroAllocSteadyState(t *testing.T) {
	pred := expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(50)))
	f := NewFilter("f", pred)
	r := rand.New(rand.NewSource(13))
	ts, cb := stockBatch(r, 256)
	keep := make([]bool, len(ts))
	runFilter := func() {
		if !f.ProcessVec(cb, ts, keep) {
			t.Fatal("declined")
		}
	}
	runFilter()
	if n := testing.AllocsPerRun(100, runFilter); n != 0 {
		t.Fatalf("Filter.ProcessVec allocates %v per batch, want 0", n)
	}

	g := NewGroupedFilter(expr.Col("", "price"))
	addFactor(t, g, 0, expr.OpGt, 50)
	addFactor(t, g, 1, expr.OpLt, 30)
	for _, tp := range ts {
		tp.Lineage().Queries.Add(0)
		tp.Lineage().Queries.Add(1)
	}
	runGF := func() {
		// Re-arm lineage so Subtract has work every pass; Add on a
		// warmed bitset does not allocate.
		for _, tp := range ts {
			tp.Lineage().Queries.Add(0)
			tp.Lineage().Queries.Add(1)
		}
		if !g.ProcessVec(cb, ts, keep) {
			t.Fatal("declined")
		}
	}
	runGF()
	if n := testing.AllocsPerRun(100, runGF); n != 0 {
		t.Fatalf("GroupedFilter.ProcessVec allocates %v per batch, want 0", n)
	}
}
