package operator

import (
	"fmt"
	"sort"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// GroupedFilter is the CACQ shared-selection index (§3.1): all
// single-variable boolean factors over one attribute, across every
// registered continuous query, indexed together. Routing one tuple
// through the grouped filter evaluates every query's predicate on that
// attribute at once: the filter computes the set of queries whose factor
// *fails* and clears their bits from the tuple's lineage.
//
// Factors are organized by comparison class. Range classes keep bounds
// sorted with precomputed prefix/suffix failure bitsets, so a probe is a
// binary search plus one bitset union — O(log P + |queries|/64) — instead
// of evaluating P predicates individually (the E2 experiment).
type GroupedFilter struct {
	name string
	col  *expr.ColumnRef

	gt, ge, lt, le *rangeClass
	eq             map[uint64][]eqEntry
	allEq          *bitset.Set // queries with any = factor on this attribute
	eqConjuncts    map[int]int // queryID → number of = factors it registered
	multiEq        []int       // queries with >1 = factor, sorted (normally empty)
	ne             map[uint64][]eqEntry

	queries map[int][]expr.RangeFactor // per-query factors (for removal)
	stats   Stats

	// Probe scratch space. A probe runs on the owning Execution Object's
	// thread (like AddFactor), so one set of reusable bitsets per filter
	// instance makes the steady-state probe allocation-free — the E2
	// sub-crossover cost was exactly these per-probe allocations.
	failScratch  bitset.Set // union of failing queries for this probe
	matchScratch bitset.Set // queries whose = factor matched v
	eqScratch    bitset.Set // allEq minus matches
}

type eqEntry struct {
	val   tuple.Value
	query int
}

// rangeClass holds one comparison class's bounds sorted ascending, with
// failure bitsets. For suffix-failing classes (>, >=) failFrom[i] is the
// union of query bits of entries[i:]; for prefix-failing classes (<, <=)
// failTo[i] is the union of entries[:i].
type rangeClass struct {
	op      expr.Op
	entries []eqEntry // sorted by val
	fail    []*bitset.Set
	dirty   bool
	// fkeys/ikeys mirror entries' values when every bound in the class
	// is a float (resp. int): the probe's binary search then compares
	// raw machine numbers instead of calling tuple.Compare per step,
	// with semantics identical to Compare's same-kind branches.
	fkeys []float64
	ikeys []int64
}

// NewGroupedFilter creates a grouped filter over one attribute.
func NewGroupedFilter(col *expr.ColumnRef) *GroupedFilter {
	return &GroupedFilter{
		name:        "gfilter(" + col.String() + ")",
		col:         col,
		gt:          &rangeClass{op: expr.OpGt},
		ge:          &rangeClass{op: expr.OpGe},
		lt:          &rangeClass{op: expr.OpLt},
		le:          &rangeClass{op: expr.OpLe},
		eq:          map[uint64][]eqEntry{},
		allEq:       bitset.New(0),
		eqConjuncts: map[int]int{},
		ne:          map[uint64][]eqEntry{},
		queries:     map[int][]expr.RangeFactor{},
	}
}

// Name implements Module.
func (g *GroupedFilter) Name() string { return g.name }

// Column returns the attribute this filter indexes.
func (g *GroupedFilter) Column() *expr.ColumnRef { return g.col }

// QueryCount returns the number of queries with factors registered.
func (g *GroupedFilter) QueryCount() int { return len(g.queries) }

// FactorCount returns the total number of registered boolean factors.
// FactorCount/QueryCount ≥ 1 is the sharing factor one probe amortizes.
// Like AddFactor, it must run on the owning Execution Object's thread.
func (g *GroupedFilter) FactorCount() int {
	n := 0
	for _, fs := range g.queries {
		n += len(fs)
	}
	return n
}

// AddFactor registers one boolean factor of query q. The factor's column
// must match the filter's attribute.
func (g *GroupedFilter) AddFactor(q int, f expr.RangeFactor) error {
	if f.Col.Name != g.col.Name || (f.Col.Source != "" && g.col.Source != "" && f.Col.Source != g.col.Source) {
		return fmt.Errorf("factor %s does not belong to %s", f, g.name)
	}
	g.queries[q] = append(g.queries[q], f)
	e := eqEntry{val: f.Val, query: q}
	switch f.Op {
	case expr.OpGt:
		g.gt.insert(e)
	case expr.OpGe:
		g.ge.insert(e)
	case expr.OpLt:
		g.lt.insert(e)
	case expr.OpLe:
		g.le.insert(e)
	case expr.OpEq:
		h := f.Val.Hash()
		g.eq[h] = append(g.eq[h], e)
		g.allEq.Add(q)
		g.eqConjuncts[q]++
		g.rebuildMultiEq()
	case expr.OpNe:
		h := f.Val.Hash()
		g.ne[h] = append(g.ne[h], e)
	default:
		return fmt.Errorf("unsupported factor op %v", f.Op)
	}
	return nil
}

// RemoveQuery deletes every factor of query q (queries leave the system
// over time; §1.1 "shared processing must be made robust to ... the
// removal of old ones").
func (g *GroupedFilter) RemoveQuery(q int) {
	if _, ok := g.queries[q]; !ok {
		return
	}
	delete(g.queries, q)
	drop := func(m map[uint64][]eqEntry) {
		for h, es := range m {
			kept := es[:0]
			for _, e := range es {
				if e.query != q {
					kept = append(kept, e)
				}
			}
			if len(kept) == 0 {
				delete(m, h)
			} else {
				m[h] = kept
			}
		}
	}
	drop(g.eq)
	drop(g.ne)
	g.allEq.Remove(q)
	delete(g.eqConjuncts, q)
	g.rebuildMultiEq()
	for _, rc := range []*rangeClass{g.gt, g.ge, g.lt, g.le} {
		kept := rc.entries[:0]
		for _, e := range rc.entries {
			if e.query != q {
				kept = append(kept, e)
			}
		}
		rc.entries = kept
		rc.dirty = true
	}
}

// Interested implements Module: the filter applies to tuples carrying its
// attribute.
func (g *GroupedFilter) Interested(t *tuple.Tuple) bool {
	_, err := g.col.Resolve(t.Schema)
	return err == nil
}

// Process implements Module: it clears the lineage bits of every query
// whose factors fail on this tuple's attribute value and drops the tuple
// when no interested queries remain.
func (g *GroupedFilter) Process(t *tuple.Tuple, _ Emit) (Outcome, error) {
	g.stats.In++
	i, err := g.col.Resolve(t.Schema)
	if err != nil {
		return Drop, err
	}
	v := t.Values[i]
	lin := t.Lineage()

	g.failScratch.Clear()
	if err := g.collectFailures(v, &g.failScratch); err != nil {
		return Drop, err
	}
	lin.Queries.Subtract(&g.failScratch)
	if lin.Queries.Empty() {
		g.stats.Dropped++
		return Drop, nil
	}
	g.stats.Out++
	return Pass, nil
}

// rebuildMultiEq refreshes the registration-time list of queries
// holding more than one = factor (the probe path iterates only this,
// not the whole eqConjuncts map).
func (g *GroupedFilter) rebuildMultiEq() {
	g.multiEq = g.multiEq[:0]
	for q, k := range g.eqConjuncts {
		if k > 1 {
			g.multiEq = append(g.multiEq, q)
		}
	}
	sort.Ints(g.multiEq)
}

// collectFailures unions into failed the queries whose factors reject v.
func (g *GroupedFilter) collectFailures(v tuple.Value, failed *bitset.Set) error {
	// Range classes.
	for _, rc := range []*rangeClass{g.gt, g.ge, g.lt, g.le} {
		if len(rc.entries) == 0 {
			continue
		}
		fs, err := rc.failures(v)
		if err != nil {
			return err
		}
		if fs != nil {
			failed.Union(fs)
		}
	}
	// Equality: every query with an = factor fails unless one of its
	// factors matches v exactly. (A query with two different = factors on
	// the same attribute can never pass; that is the correct semantics of
	// the conjunction.)
	if g.allEq.Empty() && len(g.ne) == 0 {
		return nil
	}
	h := v.Hash()
	if !g.allEq.Empty() {
		g.matchScratch.Clear()
		for _, e := range g.eq[h] {
			if tuple.Equal(e.val, v) {
				g.matchScratch.Add(e.query)
			}
		}
		// Queries with >1 distinct = conjunct cannot all match one value;
		// conservatively require at least one match (exact conjunction
		// semantics are preserved because a query with contradictory =
		// factors registers both, and both must match the same v — they
		// cannot, so at most one matches and the other fails it below.)
		g.eqScratch.CopyFrom(g.allEq)
		g.eqScratch.Subtract(&g.matchScratch)
		failed.Union(&g.eqScratch)
		// Contradictory conjunctions: if query q has k>=2 equality
		// factors, v can match at most one unless values are equal.
		// multiEq is maintained at registration time precisely so this
		// probe-path check touches nothing in the common k==1 case —
		// iterating eqConjuncts here put an O(queries) map walk on
		// every probe.
		for _, q := range g.multiEq {
			k := g.eqConjuncts[q]
			n := 0
			for _, e := range g.eq[h] {
				if e.query == q && tuple.Equal(e.val, v) {
					n++
				}
			}
			if n < k {
				failed.Add(q)
			}
		}
	}
	// Inequality: only queries holding a != factor equal to v fail.
	for _, e := range g.ne[h] {
		if tuple.Equal(e.val, v) {
			failed.Add(e.query)
		}
	}
	return nil
}

// ProcessVec implements VecModule: one probe pass over the batch's key
// column. The column resolves once per batch instead of per tuple, and
// the router's per-tuple dispatch/observation overhead amortizes across
// the run. Lineage subtraction is idempotent, so returning false after
// a mid-batch error is safe: the per-tuple replay re-subtracts the same
// failure sets and re-raises the error at the offending tuple.
func (g *GroupedFilter) ProcessVec(cb *tuple.ColBatch, ts []*tuple.Tuple, keep []bool) bool {
	i, err := g.col.Resolve(cb.Schema())
	if err != nil {
		return false
	}
	col := cb.Col(i)
	dropped := 0
	for l, t := range ts {
		g.failScratch.Clear()
		if err := g.collectFailures(col[l], &g.failScratch); err != nil {
			return false
		}
		lin := t.Lineage()
		lin.Queries.Subtract(&g.failScratch)
		if lin.Queries.Empty() {
			keep[l] = false
			dropped++
		} else {
			keep[l] = true
		}
	}
	n := int64(len(ts))
	g.stats.In += n
	g.stats.Dropped += int64(dropped)
	g.stats.Out += n - int64(dropped)
	return true
}

// MatchQueries is the PSoup-facing probe: it returns the set of queries
// whose factors on this attribute all pass for value v, given the
// universe of registered queries.
func (g *GroupedFilter) MatchQueries(v tuple.Value, universe *bitset.Set) (*bitset.Set, error) {
	out := bitset.New(0)
	if err := g.MatchQueriesInto(v, universe, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MatchQueriesInto is the allocation-free form of MatchQueries: it
// overwrites out with the passing subset of universe, reusing out's
// storage. Like Process, it must run on the owning thread.
func (g *GroupedFilter) MatchQueriesInto(v tuple.Value, universe, out *bitset.Set) error {
	out.CopyFrom(universe)
	g.failScratch.Clear()
	if err := g.collectFailures(v, &g.failScratch); err != nil {
		return err
	}
	out.Subtract(&g.failScratch)
	return nil
}

// ModuleStats implements StatsProvider.
func (g *GroupedFilter) ModuleStats() Stats { return g.stats }

// ---------------------------------------------------------- range class

func (rc *rangeClass) insert(e eqEntry) {
	rc.entries = append(rc.entries, e)
	rc.dirty = true
}

func (rc *rangeClass) rebuild() error {
	var sortErr error
	sort.Slice(rc.entries, func(i, j int) bool {
		c, ok := tuple.Compare(rc.entries[i].val, rc.entries[j].val)
		if !ok && sortErr == nil {
			sortErr = fmt.Errorf("incomparable bounds %v and %v on one attribute",
				rc.entries[i].val, rc.entries[j].val)
		}
		return c < 0
	})
	if sortErr != nil {
		return sortErr
	}
	n := len(rc.entries)
	rc.fail = make([]*bitset.Set, n+1)
	switch rc.op {
	case expr.OpGt, expr.OpGe:
		// failures are suffixes: fail[i] = bits of entries[i:].
		rc.fail[n] = bitset.New(0)
		for i := n - 1; i >= 0; i-- {
			s := rc.fail[i+1].Clone()
			s.Add(rc.entries[i].query)
			rc.fail[i] = s
		}
	case expr.OpLt, expr.OpLe:
		// failures are prefixes: fail[i] = bits of entries[:i].
		rc.fail[0] = bitset.New(0)
		for i := 0; i < n; i++ {
			s := rc.fail[i].Clone()
			s.Add(rc.entries[i].query)
			rc.fail[i+1] = s
		}
	}
	rc.dirty = false
	rc.fkeys, rc.ikeys = rc.fkeys[:0], rc.ikeys[:0]
	allF, allI := true, true
	for _, e := range rc.entries {
		allF = allF && e.val.K == tuple.KindFloat
		allI = allI && e.val.K == tuple.KindInt
	}
	if allF {
		for _, e := range rc.entries {
			rc.fkeys = append(rc.fkeys, e.val.F)
		}
	}
	if allI {
		for _, e := range rc.entries {
			rc.ikeys = append(rc.ikeys, e.val.I)
		}
	}
	return nil
}

// failures returns the bitset of queries in this class whose factor
// rejects value v (nil means none).
func (rc *rangeClass) failures(v tuple.Value) (*bitset.Set, error) {
	if rc.dirty {
		if err := rc.rebuild(); err != nil {
			return nil, err
		}
	}
	n := len(rc.entries)
	if n == 0 {
		return nil, nil
	}
	// Hand-rolled binary search: sort.Search's closure would capture v
	// and an error slot per probe, which defeats the zero-alloc contract.
	// Boundary predicate per class (cmp is Compare(bound, v)):
	//   >  : fails iff v <= bound ⇒ first index with cmp >= 0
	//   >= : fails iff v <  bound ⇒ first index with cmp >  0
	//   <  : fails iff v >= bound ⇒ prefix of bounds <= v   (cmp > 0)
	//   <= : fails iff v >  bound ⇒ prefix of bounds <  v   (cmp >= 0)
	geq := rc.op == expr.OpGt || rc.op == expr.OpLe
	lo, hi := 0, n
	// Same-kind numeric classes search raw keys (the common case: every
	// bound on a float attribute is a float literal).
	switch {
	case len(rc.fkeys) == n && v.K == tuple.KindFloat:
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			k := rc.fkeys[mid]
			if (geq && k >= v.F) || (!geq && k > v.F) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return rc.fail[lo], nil
	case len(rc.ikeys) == n && v.K == tuple.KindInt:
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			k := rc.ikeys[mid]
			if (geq && k >= v.I) || (!geq && k > v.I) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return rc.fail[lo], nil
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c, ok := tuple.Compare(rc.entries[mid].val, v)
		if !ok {
			return nil, fmt.Errorf("incomparable value %v for bound %v", v, rc.entries[mid].val)
		}
		var after bool
		if geq {
			after = c >= 0
		} else {
			after = c > 0
		}
		if after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return rc.fail[lo], nil
}
