package operator

import (
	"fmt"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// TransitiveClosure (Figure 1) incrementally computes reachability over a
// stream of edge tuples: for every arriving edge (a, b) it emits each
// *newly derived* pair (x, y) such that y became reachable from x. State
// grows with the node count; EvictAll resets it at window boundaries.
type TransitiveClosure struct {
	name     string
	fromCol  *expr.ColumnRef
	toCol    *expr.ColumnRef
	out      *tuple.Schema
	reach    map[tuple.Value]map[tuple.Value]bool // x → set of y reachable
	backward map[tuple.Value]map[tuple.Value]bool // y → set of x reaching y
	stats    Stats
}

// NewTransitiveClosure builds the module over edge columns from → to.
func NewTransitiveClosure(name string, from, to *expr.ColumnRef) *TransitiveClosure {
	return &TransitiveClosure{
		name:    name,
		fromCol: from,
		toCol:   to,
		out: tuple.NewSchema(
			tuple.Column{Source: name, Name: "src", Kind: tuple.KindNull},
			tuple.Column{Source: name, Name: "dst", Kind: tuple.KindNull},
		),
		reach:    map[tuple.Value]map[tuple.Value]bool{},
		backward: map[tuple.Value]map[tuple.Value]bool{},
	}
}

// Name implements Module.
func (tc *TransitiveClosure) Name() string { return tc.name }

// OutputSchema returns the (src, dst) pair schema.
func (tc *TransitiveClosure) OutputSchema() *tuple.Schema { return tc.out }

// Interested implements Module.
func (tc *TransitiveClosure) Interested(t *tuple.Tuple) bool {
	_, err1 := tc.fromCol.Resolve(t.Schema)
	_, err2 := tc.toCol.Resolve(t.Schema)
	return err1 == nil && err2 == nil
}

// Size returns the number of known reachability pairs.
func (tc *TransitiveClosure) Size() int {
	n := 0
	for _, s := range tc.reach {
		n += len(s)
	}
	return n
}

// EvictAll clears reachability state (window boundary).
func (tc *TransitiveClosure) EvictAll() {
	tc.reach = map[tuple.Value]map[tuple.Value]bool{}
	tc.backward = map[tuple.Value]map[tuple.Value]bool{}
}

// Process implements Module: semi-naive incremental closure. New pairs =
// {(x, b') : x reaches a or x == a, b' == b or b reaches b'} minus known.
func (tc *TransitiveClosure) Process(t *tuple.Tuple, emit Emit) (Outcome, error) {
	tc.stats.In++
	av, err := tc.fromCol.Eval(t)
	if err != nil {
		return Drop, err
	}
	bv, err := tc.toCol.Eval(t)
	if err != nil {
		return Drop, err
	}
	if av.K == tuple.KindFloat || bv.K == tuple.KindFloat {
		// Map keys require exact equality semantics; normalize floats
		// holding integral values to ints, reject NaN-prone keys.
		return Drop, fmt.Errorf("%s: float node ids are not supported", tc.name)
	}

	// Sources: everything reaching a, plus a itself.
	srcs := []tuple.Value{av}
	for x := range tc.backward[av] {
		srcs = append(srcs, x)
	}
	// Destinations: everything reachable from b, plus b itself.
	dsts := []tuple.Value{bv}
	for y := range tc.reach[bv] {
		dsts = append(dsts, y)
	}
	for _, x := range srcs {
		for _, y := range dsts {
			if tuple.Equal(x, y) {
				continue // no self-loops in the closure
			}
			if tc.reach[x][y] {
				continue
			}
			if tc.reach[x] == nil {
				tc.reach[x] = map[tuple.Value]bool{}
			}
			tc.reach[x][y] = true
			if tc.backward[y] == nil {
				tc.backward[y] = map[tuple.Value]bool{}
			}
			tc.backward[y][x] = true
			pair := tuple.New(tc.out, x, y)
			pair.TS = t.TS
			tc.stats.Out++
			emit(pair)
		}
	}
	return Consumed, nil
}

// ModuleStats implements StatsProvider.
func (tc *TransitiveClosure) ModuleStats() Stats { return tc.stats }
