package operator

import (
	"testing"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

var stockSchema = tuple.NewSchema(
	tuple.Column{Source: "stocks", Name: "day", Kind: tuple.KindInt},
	tuple.Column{Source: "stocks", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "stocks", Name: "price", Kind: tuple.KindFloat},
)

func stock(seq int64, sym string, price float64) *tuple.Tuple {
	t := tuple.New(stockSchema, tuple.Int(seq), tuple.String(sym), tuple.Float(price))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func noEmit(*tuple.Tuple) {}

func TestFilterPassDrop(t *testing.T) {
	f := NewFilter("f", expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(50))))
	out, err := f.Process(stock(1, "A", 60), noEmit)
	if err != nil || out != Pass {
		t.Fatalf("60: %v, %v", out, err)
	}
	out, err = f.Process(stock(2, "A", 40), noEmit)
	if err != nil || out != Drop {
		t.Fatalf("40: %v, %v", out, err)
	}
	s := f.ModuleStats()
	if s.In != 2 || s.Out != 1 || s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.Selectivity(); got != 0.5 {
		t.Fatalf("selectivity = %v", got)
	}
}

func TestFilterInterested(t *testing.T) {
	f := NewFilter("f", expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(0))))
	if !f.Interested(stock(1, "A", 1)) {
		t.Fatal("not interested in matching schema")
	}
	other := tuple.NewSchema(tuple.Column{Source: "x", Name: "y", Kind: tuple.KindInt})
	if f.Interested(tuple.New(other, tuple.Int(1))) {
		t.Fatal("interested in unrelated schema")
	}
}

func TestFilterSetPredicateMidStream(t *testing.T) {
	f := NewFilter("f", expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("A"))))
	if out, _ := f.Process(stock(1, "A", 1), noEmit); out != Pass {
		t.Fatal("A should pass")
	}
	f.SetPredicate(expr.Bin(expr.OpEq, expr.Col("", "sym"), expr.Lit(tuple.String("B"))))
	if out, _ := f.Process(stock(2, "A", 1), noEmit); out != Drop {
		t.Fatal("A should drop after predicate change")
	}
}

func TestFilterError(t *testing.T) {
	f := NewFilter("f", expr.Bin(expr.OpLt, expr.Col("", "sym"), expr.Lit(tuple.Int(1))))
	if _, err := f.Process(stock(1, "A", 1), noEmit); err == nil {
		t.Fatal("incomparable predicate did not error")
	}
}

func TestFilterSimCost(t *testing.T) {
	f := NewFilter("f", expr.Bin(expr.OpGt, expr.Col("", "price"), expr.Lit(tuple.Float(0))))
	f.SimCostNs = 1000
	_, _ = f.Process(stock(1, "A", 1), noEmit)
	if f.ModuleStats().WorkNsec != 1000 {
		t.Fatalf("WorkNsec = %d", f.ModuleStats().WorkNsec)
	}
	if f.ModuleStats().CostPerTuple() != 1000 {
		t.Fatalf("CostPerTuple = %v", f.ModuleStats().CostPerTuple())
	}
}

func TestStatsZeroValue(t *testing.T) {
	var s Stats
	if s.Selectivity() != 1 || s.CostPerTuple() != 0 {
		t.Fatal("zero-value stats")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Pass: "pass", Drop: "drop", Consumed: "consumed", Bounce: "bounce"} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestProjectBasic(t *testing.T) {
	p := NewProject("out", []expr.Expr{
		expr.Col("", "sym"),
		expr.Bin(expr.OpMul, expr.Col("", "price"), expr.Lit(tuple.Float(2))),
	}, []string{"", "double"})
	var got *tuple.Tuple
	out, err := p.Process(stock(1, "A", 10), func(x *tuple.Tuple) { got = x })
	if err != nil || out != Consumed || got == nil {
		t.Fatalf("process: %v %v %v", out, err, got)
	}
	if got.Values[0].S != "A" || got.Values[1].F != 20 {
		t.Fatalf("projected: %v", got)
	}
	if got.Schema.Cols[1].Name != "double" || got.Schema.Cols[0].Name != "sym" {
		t.Fatalf("schema names: %v", got.Schema)
	}
	if got.TS.Seq != 1 {
		t.Fatal("timestamp not preserved")
	}
}

func TestProjectPreservesQueryLineage(t *testing.T) {
	p := NewProject("out", []expr.Expr{expr.Col("", "sym")}, nil)
	in := stock(1, "A", 10)
	in.Lineage().Queries.Add(3)
	in.Lineage().Queries.Add(7)
	var got *tuple.Tuple
	_, _ = p.Process(in, func(x *tuple.Tuple) { got = x })
	if got.Lin == nil || !got.Lin.Queries.Contains(3) || !got.Lin.Queries.Contains(7) {
		t.Fatal("lineage lost in projection")
	}
}

func TestProjectApplyAndError(t *testing.T) {
	p := NewProject("out", []expr.Expr{expr.Col("", "missing")}, nil)
	if _, err := p.Apply(stock(1, "A", 1)); err == nil {
		t.Fatal("missing column projected")
	}
	p2 := NewProject("out", []expr.Expr{expr.Col("", "price")}, nil)
	got, err := p2.Apply(stock(1, "A", 5))
	if err != nil || got.Values[0].F != 5 {
		t.Fatalf("Apply = %v, %v", got, err)
	}
}

func TestDupElim(t *testing.T) {
	d := NewDupElim("d")
	if out, _ := d.Process(stock(1, "A", 10), noEmit); out != Pass {
		t.Fatal("first should pass")
	}
	if out, _ := d.Process(stock(1, "A", 10), noEmit); out != Drop {
		t.Fatal("duplicate should drop")
	}
	if out, _ := d.Process(stock(1, "A", 11), noEmit); out != Pass {
		t.Fatal("distinct should pass")
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestDupElimEvict(t *testing.T) {
	d := NewDupElim("d")
	_, _ = d.Process(stock(1, "A", 10), noEmit)
	_, _ = d.Process(stock(50, "B", 10), noEmit)
	if n := d.EvictBefore(10); n != 1 {
		t.Fatalf("evicted %d", n)
	}
	// A's key was forgotten: the same row arriving later passes again.
	again := stock(1, "A", 10)
	again.TS.Seq = 60
	if out, _ := d.Process(again, noEmit); out != Pass {
		t.Fatal("evicted key should pass again")
	}
	// B survived eviction: a repeat is still a duplicate.
	bAgain := stock(50, "B", 10)
	bAgain.TS.Seq = 61
	if out, _ := d.Process(bAgain, noEmit); out != Drop {
		t.Fatal("unevicted duplicate should drop")
	}
}

func TestDupElimKeyIsFullRow(t *testing.T) {
	d := NewDupElim("d")
	_, _ = d.Process(stock(1, "A", 10), noEmit)
	// Different day → different row → passes.
	if out, _ := d.Process(stock(2, "A", 10), noEmit); out != Pass {
		t.Fatal("row with different day considered duplicate")
	}
}
