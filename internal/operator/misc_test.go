package operator

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/tuple"
)

func TestWindowSortAscDesc(t *testing.T) {
	keys := []SortKey{
		{Expr: expr.Col("", "sym")},
		{Expr: expr.Col("", "price"), Desc: true},
	}
	s := NewWindowSort("sort", keys, 100)
	var out []*tuple.Tuple
	rows := [][2]any{{"B", 1.0}, {"A", 2.0}, {"A", 9.0}, {"B", 7.0}}
	for i, r := range rows {
		_, err := s.Process(stock(int64(i+1), r[0].(string), r[1].(float64)), collect(&out))
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 0 {
		t.Fatal("emitted before flush")
	}
	if err := s.Flush(collect(&out)); err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(out))
	for i, r := range out {
		got[i] = fmt.Sprintf("%s/%v", r.Values[1].S, r.Values[2].F)
	}
	want := []string{"A/9", "A/2", "B/7", "B/1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestWindowSortAutoFlushAtBound(t *testing.T) {
	s := NewWindowSort("sort", []SortKey{{Expr: expr.Col("", "price")}}, 3)
	var out []*tuple.Tuple
	for i := 0; i < 3; i++ {
		_, _ = s.Process(stock(int64(i+1), "A", float64(3-i)), collect(&out))
	}
	if len(out) != 3 {
		t.Fatalf("auto flush emitted %d", len(out))
	}
	if out[0].Values[2].F != 1 || out[2].Values[2].F != 3 {
		t.Fatalf("order: %v", out)
	}
}

func TestWindowSortStable(t *testing.T) {
	s := NewWindowSort("sort", []SortKey{{Expr: expr.Col("", "sym")}}, 100)
	var out []*tuple.Tuple
	for i := 1; i <= 4; i++ {
		_, _ = s.Process(stock(int64(i), "same", float64(i)), collect(&out))
	}
	_ = s.Flush(collect(&out))
	for i := 0; i < 4; i++ {
		if out[i].TS.Seq != int64(i+1) {
			t.Fatalf("stability violated: %v", out)
		}
	}
}

func TestJuggleReleasesHighPriorityFirst(t *testing.T) {
	j := NewJuggle("jug", expr.Col("", "price"), 100)
	var out []*tuple.Tuple
	prices := []float64{1, 9, 5, 7, 3}
	for i, p := range prices {
		_, err := j.Process(stock(int64(i+1), "A", p), collect(&out))
		if err != nil {
			t.Fatal(err)
		}
	}
	if j.Buffered() != 5 {
		t.Fatalf("buffered = %d", j.Buffered())
	}
	// Idle releases one at a time, best first.
	worked, err := j.Idle(collect(&out))
	if !worked || err != nil {
		t.Fatal("idle did not work")
	}
	if out[0].Values[2].F != 9 {
		t.Fatalf("first release = %v", out[0])
	}
	_ = j.Flush(collect(&out))
	got := make([]float64, len(out))
	for i, r := range out {
		got[i] = r.Values[2].F
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(got))) {
		t.Fatalf("release order = %v", got)
	}
}

func TestJuggleCapacityOvertflowReleasesBest(t *testing.T) {
	j := NewJuggle("jug", expr.Col("", "price"), 2)
	var out []*tuple.Tuple
	for i, p := range []float64{1, 2, 3} {
		_, _ = j.Process(stock(int64(i+1), "A", p), collect(&out))
	}
	// Capacity 2: third insert releases the best (3).
	if len(out) != 1 || out[0].Values[2].F != 3 {
		t.Fatalf("overflow release: %v", out)
	}
}

func TestJuggleReprioritize(t *testing.T) {
	j := NewJuggle("jug", expr.Col("", "price"), 100)
	var out []*tuple.Tuple
	for i, p := range []float64{1, 2, 3} {
		_, _ = j.Process(stock(int64(i+1), "A", p), collect(&out))
	}
	// Invert the priority: smallest price first.
	if err := j.SetPriority(expr.Neg(expr.Col("", "price"))); err != nil {
		t.Fatal(err)
	}
	_, _ = j.Idle(collect(&out))
	if out[0].Values[2].F != 1 {
		t.Fatalf("after reprioritize, first = %v", out[0])
	}
}

func TestJuggleFIFOTiebreak(t *testing.T) {
	j := NewJuggle("jug", expr.Lit(tuple.Float(1)), 100)
	var out []*tuple.Tuple
	for i := 1; i <= 3; i++ {
		_, _ = j.Process(stock(int64(i), "A", 0), collect(&out))
	}
	_ = j.Flush(collect(&out))
	for i, r := range out {
		if r.TS.Seq != int64(i+1) {
			t.Fatalf("tiebreak order: %v", out)
		}
	}
}

func TestJuggleIdleEmpty(t *testing.T) {
	j := NewJuggle("jug", expr.Col("", "price"), 4)
	worked, err := j.Idle(noEmit)
	if worked || err != nil {
		t.Fatal("idle on empty buffer")
	}
}

func edgeTuple(seq int64, from, to string) *tuple.Tuple {
	s := tuple.NewSchema(
		tuple.Column{Source: "edges", Name: "src", Kind: tuple.KindString},
		tuple.Column{Source: "edges", Name: "dst", Kind: tuple.KindString},
	)
	t := tuple.New(s, tuple.String(from), tuple.String(to))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func TestTransitiveClosureChain(t *testing.T) {
	tc := NewTransitiveClosure("tc", expr.Col("", "src"), expr.Col("", "dst"))
	var out []*tuple.Tuple
	_, _ = tc.Process(edgeTuple(1, "a", "b"), collect(&out))
	_, _ = tc.Process(edgeTuple(2, "b", "c"), collect(&out))
	_, _ = tc.Process(edgeTuple(3, "c", "d"), collect(&out))
	// pairs: ab; bc,ac; cd,bd,ad
	if len(out) != 6 {
		t.Fatalf("pairs = %d", len(out))
	}
	seen := map[string]bool{}
	for _, p := range out {
		seen[p.Values[0].S+p.Values[1].S] = true
	}
	for _, want := range []string{"ab", "bc", "ac", "cd", "bd", "ad"} {
		if !seen[want] {
			t.Fatalf("missing pair %s (got %v)", want, seen)
		}
	}
	if tc.Size() != 6 {
		t.Fatalf("Size = %d", tc.Size())
	}
}

func TestTransitiveClosureNoDuplicatesOrSelfLoops(t *testing.T) {
	tc := NewTransitiveClosure("tc", expr.Col("", "src"), expr.Col("", "dst"))
	var out []*tuple.Tuple
	_, _ = tc.Process(edgeTuple(1, "a", "b"), collect(&out))
	_, _ = tc.Process(edgeTuple(2, "a", "b"), collect(&out)) // duplicate edge
	_, _ = tc.Process(edgeTuple(3, "b", "a"), collect(&out)) // cycle
	// Pairs: ab, then ba. Self pairs aa/bb excluded.
	if len(out) != 2 {
		t.Fatalf("pairs = %d: %v", len(out), out)
	}
}

// Property: emitted pairs equal Floyd–Warshall reachability on a random
// edge list.
func TestTransitiveClosureAgainstFloydWarshall(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		const n = 8
		tc := NewTransitiveClosure("tc", expr.Col("", "src"), expr.Col("", "dst"))
		var out []*tuple.Tuple
		reach := [n][n]bool{}
		for e := 0; e < 15; e++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			reach[a][b] = true
			_, err := tc.Process(edgeTuple(int64(e), fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b)), collect(&out))
			if err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		got := map[string]bool{}
		for _, p := range out {
			got[p.Values[0].S+">"+p.Values[1].S] = true
		}
		want := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && reach[i][j] {
					want++
					if !got[fmt.Sprintf("n%d>n%d", i, j)] {
						t.Fatalf("trial %d: missing n%d>n%d", trial, i, j)
					}
				}
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(got), want)
		}
		tc.EvictAll()
		if tc.Size() != 0 {
			t.Fatal("EvictAll left state")
		}
	}
}

// ------------------------- StemModule ---------------------------------

func tradeSchema(src string) *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Source: src, Name: "sym", Kind: tuple.KindString},
		tuple.Column{Source: src, Name: "vol", Kind: tuple.KindInt},
	)
}

func trade(src string, seq int64, sym string, vol int64) *tuple.Tuple {
	t := tuple.New(tradeSchema(src), tuple.String(sym), tuple.Int(vol))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func TestStemModuleSymmetricJoin(t *testing.T) {
	// S.sym = T.sym
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "sym"), Right: expr.Col("T", "sym")}
	stS := NewStemModule("S", stem.New("S", expr.Col("S", "sym")), []expr.JoinFactor{jf}, expr.Col("S", "sym"))
	stT := NewStemModule("T", stem.New("T", expr.Col("T", "sym")), []expr.JoinFactor{jf}, expr.Col("T", "sym"))

	sTuple := trade("S", 1, "MSFT", 100)
	tTuple := trade("T", 1, "MSFT", 500)
	other := trade("T", 2, "IBM", 9)

	if !stS.IsBase(sTuple) || stS.IsBase(tTuple) {
		t.Fatal("IsBase wrong")
	}
	if err := stS.Build(sTuple); err != nil {
		t.Fatal(err)
	}
	if err := stT.Build(tTuple); err != nil {
		t.Fatal(err)
	}
	_ = stT.Build(other)

	// S probes T: must match MSFT only.
	if !stT.Interested(sTuple) {
		t.Fatal("T stem not interested in S probe")
	}
	if stT.Interested(tTuple) {
		t.Fatal("T stem interested in its own base tuple")
	}
	var out []*tuple.Tuple
	o, err := stT.Process(sTuple, collect(&out))
	if err != nil || o != Pass {
		t.Fatalf("probe: %v %v", o, err)
	}
	if len(out) != 1 {
		t.Fatalf("matches = %d", len(out))
	}
	j := out[0]
	if !j.Schema.HasSource("S") || !j.Schema.HasSource("T") {
		t.Fatalf("join schema: %v", j.Schema)
	}
	vi, _ := j.Schema.ColumnIndex("T", "vol")
	if j.Values[vi].I != 500 {
		t.Fatalf("wrong match: %v", j)
	}
}

func TestStemModuleQueryLineageIntersection(t *testing.T) {
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "sym"), Right: expr.Col("T", "sym")}
	stT := NewStemModule("T", stem.New("T", expr.Col("T", "sym")), []expr.JoinFactor{jf}, expr.Col("T", "sym"))
	tt := trade("T", 1, "A", 1)
	_ = stT.Build(tt)
	probe := trade("S", 1, "A", 2)
	probe.Lineage().Queries.Add(4)
	var out []*tuple.Tuple
	_, _ = stT.Process(probe, collect(&out))
	if len(out) != 1 || !out[0].Lin.Queries.Contains(4) {
		t.Fatal("probe lineage not propagated to join result")
	}
}

func TestStemModuleBandJoinResidual(t *testing.T) {
	// c2.vol > c1.vol (non-equi): scan probe with residual.
	jf := expr.JoinFactor{Op: expr.OpGt, Left: expr.Col("c2", "vol"), Right: expr.Col("c1", "vol")}
	st := NewStemModule("c2", stem.New("c2", nil), []expr.JoinFactor{jf}, nil)
	for i := int64(1); i <= 5; i++ {
		_ = st.Build(trade("c2", i, "X", i*10)) // vols 10..50
	}
	probe := trade("c1", 9, "X", 25)
	var out []*tuple.Tuple
	o, err := st.Process(probe, collect(&out))
	if err != nil || o != Pass {
		t.Fatalf("%v %v", o, err)
	}
	if len(out) != 3 { // 30, 40, 50
		t.Fatalf("matches = %d", len(out))
	}
}

func TestStemModuleEviction(t *testing.T) {
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "sym"), Right: expr.Col("T", "sym")}
	st := NewStemModule("T", stem.New("T", expr.Col("T", "sym")), []expr.JoinFactor{jf}, expr.Col("T", "sym"))
	for i := int64(1); i <= 10; i++ {
		_ = st.Build(trade("T", i, "A", i))
	}
	if n := st.EvictBefore(6); n != 5 {
		t.Fatalf("evicted %d", n)
	}
	var out []*tuple.Tuple
	_, _ = st.Process(trade("S", 99, "A", 0), collect(&out))
	if len(out) != 5 {
		t.Fatalf("matches after eviction = %d", len(out))
	}
}

func TestStemModuleNotInterestedWithoutFactor(t *testing.T) {
	jf := expr.JoinFactor{Op: expr.OpEq, Left: expr.Col("S", "sym"), Right: expr.Col("T", "sym")}
	st := NewStemModule("T", stem.New("T", expr.Col("T", "sym")), []expr.JoinFactor{jf}, expr.Col("T", "sym"))
	// A tuple from stream R with no join factor to T must not probe.
	r := trade("R", 1, "A", 1)
	if st.Interested(r) {
		t.Fatal("unrelated stream probes SteM (cross product)")
	}
}

// ------------------------- AsyncIndex ---------------------------------

func remoteTable() map[string][]*tuple.Tuple {
	return map[string][]*tuple.Tuple{
		"MSFT": {trade("T", 0, "MSFT", 500)},
		"IBM":  {trade("T", 0, "IBM", 300), trade("T", 0, "IBM", 301)},
	}
}

func TestAsyncIndexLookupAndCache(t *testing.T) {
	table := remoteTable()
	calls := 0
	ai := NewAsyncIndex("idx", "T", expr.Col("S", "sym"), "sym",
		func(k tuple.Value) ([]*tuple.Tuple, error) {
			calls++
			return table[k.S], nil
		}, 0)

	var out []*tuple.Tuple
	o, err := ai.Process(trade("S", 1, "MSFT", 1), collect(&out))
	if err != nil || o != Consumed {
		t.Fatalf("process: %v %v", o, err)
	}
	if ai.Pending() != 1 {
		t.Fatalf("pending = %d", ai.Pending())
	}
	if err := ai.Drain(collect(&out), time.Second); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || ai.Pending() != 0 {
		t.Fatalf("out = %d pending = %d", len(out), ai.Pending())
	}
	if ai.CacheSize() != 1 {
		t.Fatalf("cache = %d", ai.CacheSize())
	}
	// Second probe with the same key: cache hit, synchronous, no new call.
	o, err = ai.Process(trade("S", 2, "MSFT", 2), collect(&out))
	if err != nil || o != Pass {
		t.Fatalf("cache hit: %v %v", o, err)
	}
	if len(out) != 2 || calls != 1 {
		t.Fatalf("out = %d calls = %d", len(out), calls)
	}
}

func TestAsyncIndexMultiMatchAndLineage(t *testing.T) {
	table := remoteTable()
	ai := NewAsyncIndex("idx", "T", expr.Col("S", "sym"), "sym",
		func(k tuple.Value) ([]*tuple.Tuple, error) { return table[k.S], nil }, 0)
	probe := trade("S", 1, "IBM", 1)
	probe.Lineage().Queries.Add(2)
	var out []*tuple.Tuple
	_, _ = ai.Process(probe, collect(&out))
	_ = ai.Drain(collect(&out), time.Second)
	if len(out) != 2 {
		t.Fatalf("IBM matches = %d", len(out))
	}
	for _, j := range out {
		if !j.Lin.Queries.Contains(2) {
			t.Fatal("lineage lost")
		}
		if !j.Schema.HasSource("S") || !j.Schema.HasSource("T") {
			t.Fatalf("schema: %v", j.Schema)
		}
	}
}

func TestAsyncIndexMissingKeyNoMatches(t *testing.T) {
	ai := NewAsyncIndex("idx", "T", expr.Col("S", "sym"), "sym",
		func(k tuple.Value) ([]*tuple.Tuple, error) { return nil, nil }, 0)
	var out []*tuple.Tuple
	_, _ = ai.Process(trade("S", 1, "NOPE", 1), collect(&out))
	_ = ai.Drain(collect(&out), time.Second)
	if len(out) != 0 {
		t.Fatal("matches for absent key")
	}
	// Negative result is cached too.
	o, _ := ai.Process(trade("S", 2, "NOPE", 1), collect(&out))
	if o != Pass {
		t.Fatal("negative cache miss")
	}
}

func TestAsyncIndexLatency(t *testing.T) {
	ai := NewAsyncIndex("idx", "T", expr.Col("S", "sym"), "sym",
		func(k tuple.Value) ([]*tuple.Tuple, error) { return nil, nil }, 20*time.Millisecond)
	var out []*tuple.Tuple
	start := time.Now()
	_, _ = ai.Process(trade("S", 1, "X", 1), collect(&out))
	if worked, _ := ai.Idle(collect(&out)); worked {
		t.Fatal("completed before latency elapsed")
	}
	_ = ai.Drain(collect(&out), time.Second)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("completed too fast: %v", elapsed)
	}
	ai.SetLatency(0)
}

func TestAsyncIndexInterested(t *testing.T) {
	ai := NewAsyncIndex("idx", "T", expr.Col("S", "sym"), "sym",
		func(k tuple.Value) ([]*tuple.Tuple, error) { return nil, nil }, 0)
	if !ai.Interested(trade("S", 1, "A", 1)) {
		t.Fatal("not interested in probe")
	}
	if ai.Interested(trade("T", 1, "A", 1)) {
		t.Fatal("interested in tuple already spanning T")
	}
	if ai.Interested(trade("R", 1, "A", 1)) {
		// R has a sym column so the key resolves; the module is a valid
		// access path for any tuple carrying the key column.
		_ = 0
	}
}
