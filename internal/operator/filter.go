package operator

import (
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// Filter applies one boolean predicate and drops tuples that fail it —
// the "Select" module of Figure 1. A SimCost duration can be configured
// to model expensive predicates (remote lookups, user-defined functions)
// in experiments; the cost is burned as spin work so routing policies
// observe it.
type Filter struct {
	name  string
	pred  expr.Expr
	stats Stats

	// SimCostNs adds this many nanoseconds of synthetic work per tuple.
	SimCostNs int64
}

// NewFilter builds a filter module.
func NewFilter(name string, pred expr.Expr) *Filter {
	return &Filter{name: name, pred: pred}
}

// Name implements Module.
func (f *Filter) Name() string { return f.name }

// Predicate returns the filter's predicate expression.
func (f *Filter) Predicate() expr.Expr { return f.pred }

// SetPredicate swaps the predicate at runtime (selectivity-drift
// experiments change predicates mid-stream).
func (f *Filter) SetPredicate(p expr.Expr) { f.pred = p }

// Interested implements Module: a filter applies to any tuple carrying
// the columns it references; evaluation errors on unrelated tuples are
// prevented by the planner, which scopes filters to their stream.
func (f *Filter) Interested(t *tuple.Tuple) bool {
	for _, c := range expr.Columns(f.pred, nil) {
		if _, err := c.Resolve(t.Schema); err != nil {
			return false
		}
	}
	return true
}

// Process implements Module.
func (f *Filter) Process(t *tuple.Tuple, _ Emit) (Outcome, error) {
	f.stats.In++
	if f.SimCostNs > 0 {
		spin(f.SimCostNs)
		f.stats.WorkNsec += f.SimCostNs
	}
	ok, err := expr.Truthy(f.pred, t)
	if err != nil {
		return Drop, err
	}
	if !ok {
		f.stats.Dropped++
		return Drop, nil
	}
	f.stats.Out++
	return Pass, nil
}

// ModuleStats implements StatsProvider.
func (f *Filter) ModuleStats() Stats { return f.stats }

// spin burns approximately ns nanoseconds of CPU. Synthetic operator
// cost must be CPU work (not sleep) so that single-threaded Execution
// Objects observe it the way the paper's cost model does.
func spin(ns int64) {
	if ns <= 0 {
		return
	}
	// Calibrated loop: a simple multiply-add chain. The constant is
	// conservative; experiments compare relative costs, not absolutes.
	n := ns * spinIterPerNs
	acc := uint64(1)
	for i := int64(0); i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink = acc
}

// spinIterPerNs approximates iterations per nanosecond; 1 keeps the
// synthetic cost within the right order of magnitude on modern CPUs.
const spinIterPerNs = 1

var spinSink uint64
