package operator

import (
	"telegraphcq/internal/expr"
	"telegraphcq/internal/expr/prog"
	"telegraphcq/internal/tuple"
)

// Filter applies one boolean predicate and drops tuples that fail it —
// the "Select" module of Figure 1. A SimCost duration can be configured
// to model expensive predicates (remote lookups, user-defined functions)
// in experiments; the cost is burned as spin work so routing policies
// observe it.
//
// By default the predicate is compiled to bytecode per batch schema
// (see internal/expr/prog); whole batches are then filtered through a
// selection vector in ProcessVec. The tree-walking interpreter remains
// the reference: uncompilable predicates and any compiled-path error
// fall back to it, so semantics cannot diverge.
type Filter struct {
	name     string
	pred     expr.Expr
	stats    Stats
	compiled *prog.PredCache
	sel      []int32 // ProcessVec selection scratch

	// SimCostNs adds this many nanoseconds of synthetic work per tuple.
	SimCostNs int64
}

// NewFilter builds a filter module (compiled evaluation on).
func NewFilter(name string, pred expr.Expr) *Filter {
	return &Filter{name: name, pred: pred, compiled: prog.NewPredCache(pred)}
}

// Name implements Module.
func (f *Filter) Name() string { return f.name }

// Predicate returns the filter's predicate expression.
func (f *Filter) Predicate() expr.Expr { return f.pred }

// SetPredicate swaps the predicate at runtime (selectivity-drift
// experiments change predicates mid-stream).
func (f *Filter) SetPredicate(p expr.Expr) {
	f.pred = p
	if f.compiled != nil {
		f.compiled = prog.NewPredCache(p)
	}
}

// SetCompiled toggles the compiled bytecode path (on by default; the
// WITH (compiled=off) escape hatch and the oracle's interpreted sweep
// turn it off).
func (f *Filter) SetCompiled(on bool) {
	if on {
		f.compiled = prog.NewPredCache(f.pred)
	} else {
		f.compiled = nil
	}
}

// Interested implements Module: a filter applies to any tuple carrying
// the columns it references; evaluation errors on unrelated tuples are
// prevented by the planner, which scopes filters to their stream.
func (f *Filter) Interested(t *tuple.Tuple) bool {
	for _, c := range expr.Columns(f.pred, nil) {
		if _, err := c.Resolve(t.Schema); err != nil {
			return false
		}
	}
	return true
}

// Process implements Module.
func (f *Filter) Process(t *tuple.Tuple, _ Emit) (Outcome, error) {
	f.stats.In++
	if f.SimCostNs > 0 {
		spin(f.SimCostNs)
		f.stats.WorkNsec += f.SimCostNs
	}
	var ok bool
	var err error
	if f.compiled != nil {
		ok, err = f.compiled.Truthy(t)
	} else {
		ok, err = expr.Truthy(f.pred, t)
	}
	if err != nil {
		return Drop, err
	}
	if !ok {
		f.stats.Dropped++
		return Drop, nil
	}
	f.stats.Out++
	return Pass, nil
}

// ProcessVec implements VecModule: one compiled pass over the batch,
// narrowing a selection vector instead of branching per tuple.
func (f *Filter) ProcessVec(cb *tuple.ColBatch, ts []*tuple.Tuple, keep []bool) bool {
	if f.compiled == nil {
		return false
	}
	p := f.compiled.For(cb.Schema())
	if p == nil {
		return false
	}
	n := cb.Len()
	if cap(f.sel) < n {
		f.sel = make([]int32, n)
	}
	sel := f.sel[:n]
	for i := range sel {
		sel[i] = int32(i)
	}
	live, err := p.Select(cb, sel)
	if err != nil {
		return false // replay through the interpreter
	}
	if f.SimCostNs > 0 {
		spin(f.SimCostNs * int64(n))
		f.stats.WorkNsec += f.SimCostNs * int64(n)
	}
	for i := 0; i < n; i++ {
		keep[i] = false
	}
	for _, l := range live {
		keep[l] = true
	}
	f.stats.In += int64(n)
	f.stats.Dropped += int64(n - len(live))
	f.stats.Out += int64(len(live))
	return true
}

// ModuleStats implements StatsProvider.
func (f *Filter) ModuleStats() Stats { return f.stats }

// spin burns approximately ns nanoseconds of CPU. Synthetic operator
// cost must be CPU work (not sleep) so that single-threaded Execution
// Objects observe it the way the paper's cost model does.
func spin(ns int64) {
	if ns <= 0 {
		return
	}
	// Calibrated loop: a simple multiply-add chain. The constant is
	// conservative; experiments compare relative costs, not absolutes.
	n := ns * spinIterPerNs
	acc := uint64(1)
	for i := int64(0); i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink = acc
}

// spinIterPerNs approximates iterations per nanosecond; 1 keeps the
// synthetic cost within the right order of magnitude on modern CPUs.
const spinIterPerNs = 1

var spinSink uint64
