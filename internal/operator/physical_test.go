package operator

import (
	"testing"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// Physical-time windows quantify over wall-clock milliseconds. §4.1.2:
// with physical timestamps "memory requirements will depend on
// fluctuations in the data arrival rate" — a burst puts many tuples in
// one window.
func TestPhysicalTimeWindows(t *testing.T) {
	spec := &window.Spec{
		Domain: tuple.PhysicalTime,
		Init:   window.STExpr(100), // first window ends 100ms after ST
		Cond:   window.Cond{Op: window.CondTrue},
		Step:   100,
		Defs: []window.Def{{
			Stream: "stocks",
			Left:   window.TExpr(-99),
			Right:  window.TExpr(0),
		}},
	}
	base := time.UnixMilli(1_000_000)
	agg, err := NewWindowAgg("agg", "stocks", spec, base.UnixMilli(),
		nil, []AggSpec{{Kind: AggCount}}, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	push := func(offsetMs int64) {
		tp := stock(1, "A", 1)
		tp.TS = tuple.Timestamp{Seq: 1, Wall: base.Add(time.Duration(offsetMs) * time.Millisecond)}
		if _, err := agg.Process(tp, collect(&out)); err != nil {
			t.Fatal(err)
		}
	}
	// Burst: 5 tuples in the first 100ms window, 1 in the second, then a
	// tuple in the fourth window closes the gap.
	for _, ms := range []int64{1, 10, 20, 30, 99} {
		push(ms)
	}
	push(150)
	push(350)
	if len(out) != 3 {
		t.Fatalf("windows closed = %d: %v", len(out), out)
	}
	if out[0].Values[1].I != 5 || out[1].Values[1].I != 1 || out[2].Values[1].I != 0 {
		t.Fatalf("counts: %v %v %v", out[0], out[1], out[2])
	}
}

// An untimestamped tuple (zero Wall) has no physical coordinate and
// belongs to no physical window. Before tuple.NoInstant, it mapped to
// instant 0 and was absorbed by any window touching the epoch.
func TestWindowAggSkipsUntimestamped(t *testing.T) {
	spec := &window.Spec{
		Domain: tuple.PhysicalTime,
		Init:   window.STExpr(100),
		Cond:   window.Cond{Op: window.CondTrue},
		Step:   100,
		Defs: []window.Def{{
			Stream: "stocks",
			Left:   window.ConstExpr(0), // landmark anchored at the epoch
			Right:  window.TExpr(0),
		}},
	}
	agg, err := NewWindowAgg("agg", "stocks", spec, 0,
		nil, []AggSpec{{Kind: AggCount}}, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	push := func(ts tuple.Timestamp) {
		tp := stock(1, "A", 1)
		tp.TS = ts
		if _, err := agg.Process(tp, collect(&out)); err != nil {
			t.Fatal(err)
		}
	}
	push(tuple.Timestamp{Seq: 1, Wall: time.UnixMilli(10)})
	push(tuple.Timestamp{Seq: 2}) // untimestamped: zero Wall
	push(tuple.Timestamp{Seq: 3, Wall: time.UnixMilli(20)})
	push(tuple.Timestamp{Seq: 4, Wall: time.UnixMilli(150)}) // closes [0,100]
	if len(out) != 1 {
		t.Fatalf("windows closed = %d: %v", len(out), out)
	}
	if got := out[0].Values[1].I; got != 2 {
		t.Fatalf("count = %d, want 2 (untimestamped tuple must not land at the epoch)", got)
	}
}

// Physical sliding windows evict by wall time, not arrival count: slow
// and fast arrival phases retain different state sizes (§4.1.2).
func TestPhysicalWindowStateTracksArrivalRate(t *testing.T) {
	spec := window.Sliding("stocks", 1000, 100, 0) // 1s window hops 100ms
	spec.Domain = tuple.PhysicalTime
	base := time.UnixMilli(2_000_000)
	agg, err := NewWindowAgg("agg", "stocks", spec, base.UnixMilli(),
		nil, []AggSpec{{Kind: AggMax, Arg: expr.Col("", "price")}}, StrategyRecompute)
	if err != nil {
		t.Fatal(err)
	}
	var sink []*tuple.Tuple
	push := func(ms int64) {
		tp := stock(1, "A", 1)
		tp.TS = tuple.Timestamp{Seq: 1, Wall: base.Add(time.Duration(ms) * time.Millisecond)}
		_, _ = agg.Process(tp, collect(&sink))
	}
	// Slow phase: one tuple per 100ms over 2s → ~10 in any 1s window.
	for ms := int64(0); ms < 2000; ms += 100 {
		push(ms)
	}
	slowState := agg.StateSize()
	// Fast phase: one tuple per 10ms over the next 2s → ~100 per window.
	for ms := int64(2000); ms < 4000; ms += 10 {
		push(ms)
	}
	fastState := agg.StateSize()
	if fastState < slowState*5 {
		t.Fatalf("state did not track arrival rate: slow=%d fast=%d", slowState, fastState)
	}
}
