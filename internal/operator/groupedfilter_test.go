package operator

import (
	"fmt"
	"math/rand"
	"testing"

	"telegraphcq/internal/bitset"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

func gfTuple(price float64, queries ...int) *tuple.Tuple {
	t := stock(1, "X", price)
	for _, q := range queries {
		t.Lineage().Queries.Add(q)
	}
	return t
}

func addFactor(t *testing.T, g *GroupedFilter, q int, op expr.Op, bound float64) {
	t.Helper()
	f := expr.RangeFactor{Col: expr.Col("", "price"), Op: op, Val: tuple.Float(bound)}
	if err := g.AddFactor(q, f); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedFilterRangeClasses(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "price"))
	addFactor(t, g, 0, expr.OpGt, 50) // q0: price > 50
	addFactor(t, g, 1, expr.OpGt, 80) // q1: price > 80
	addFactor(t, g, 2, expr.OpLt, 30) // q2: price < 30
	addFactor(t, g, 3, expr.OpGe, 60) // q3: price >= 60
	addFactor(t, g, 4, expr.OpLe, 60) // q4: price <= 60

	tp := gfTuple(60, 0, 1, 2, 3, 4)
	out, err := g.Process(tp, noEmit)
	if err != nil || out != Pass {
		t.Fatalf("process: %v %v", out, err)
	}
	q := &tp.Lin.Queries
	// 60: q0 (>50) pass, q1 (>80) fail, q2 (<30) fail, q3 (>=60) pass, q4 (<=60) pass
	for _, want := range []struct {
		q    int
		pass bool
	}{{0, true}, {1, false}, {2, false}, {3, true}, {4, true}} {
		if q.Contains(want.q) != want.pass {
			t.Errorf("q%d pass = %v, want %v", want.q, q.Contains(want.q), want.pass)
		}
	}
}

func TestGroupedFilterEqNe(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "sym"))
	mk := func(q int, op expr.Op, s string) {
		if err := g.AddFactor(q, expr.RangeFactor{Col: expr.Col("", "sym"), Op: op, Val: tuple.String(s)}); err != nil {
			t.Fatal(err)
		}
	}
	mk(0, expr.OpEq, "MSFT")
	mk(1, expr.OpEq, "IBM")
	mk(2, expr.OpNe, "MSFT")
	mk(3, expr.OpNe, "ORCL")

	tp := stock(1, "MSFT", 1)
	for q := 0; q < 4; q++ {
		tp.Lineage().Queries.Add(q)
	}
	if out, err := g.Process(tp, noEmit); err != nil || out != Pass {
		t.Fatalf("process: %v %v", out, err)
	}
	q := &tp.Lin.Queries
	for _, want := range []struct {
		q    int
		pass bool
	}{{0, true}, {1, false}, {2, false}, {3, true}} {
		if q.Contains(want.q) != want.pass {
			t.Errorf("q%d = %v, want %v", want.q, q.Contains(want.q), want.pass)
		}
	}
}

func TestGroupedFilterDropWhenNoQueriesRemain(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "price"))
	addFactor(t, g, 0, expr.OpGt, 100)
	tp := gfTuple(50, 0)
	out, err := g.Process(tp, noEmit)
	if err != nil || out != Drop {
		t.Fatalf("got %v, %v; want Drop", out, err)
	}
	if g.ModuleStats().Dropped != 1 {
		t.Fatal("drop not counted")
	}
}

func TestGroupedFilterUninterestedQueriesUnaffected(t *testing.T) {
	// A query with no factor on this attribute must keep its bit.
	g := NewGroupedFilter(expr.Col("", "price"))
	addFactor(t, g, 0, expr.OpGt, 100)
	tp := gfTuple(50, 0, 9) // q9 has no factors here
	out, err := g.Process(tp, noEmit)
	if err != nil || out != Pass {
		t.Fatalf("got %v, %v", out, err)
	}
	if tp.Lin.Queries.Contains(0) || !tp.Lin.Queries.Contains(9) {
		t.Fatalf("lineage = %v", tp.Lin.Queries.String())
	}
}

func TestGroupedFilterMultipleFactorsPerQuery(t *testing.T) {
	// q0: 20 < price < 80 (two factors, both must pass).
	g := NewGroupedFilter(expr.Col("", "price"))
	addFactor(t, g, 0, expr.OpGt, 20)
	addFactor(t, g, 0, expr.OpLt, 80)
	for _, c := range []struct {
		price float64
		pass  bool
	}{{50, true}, {10, false}, {90, false}, {20, false}, {80, false}} {
		tp := gfTuple(c.price, 0)
		out, _ := g.Process(tp, noEmit)
		got := out == Pass && tp.Lin.Queries.Contains(0)
		if got != c.pass {
			t.Errorf("price %v: pass=%v want %v", c.price, got, c.pass)
		}
	}
}

func TestGroupedFilterContradictoryEquality(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "sym"))
	mk := func(q int, s string) {
		_ = g.AddFactor(q, expr.RangeFactor{Col: expr.Col("", "sym"), Op: expr.OpEq, Val: tuple.String(s)})
	}
	mk(0, "A")
	mk(0, "B") // q0: sym='A' AND sym='B' — unsatisfiable
	mk(1, "A")
	tp := stock(1, "A", 1)
	tp.Lineage().Queries.Add(0)
	tp.Lineage().Queries.Add(1)
	if out, _ := g.Process(tp, noEmit); out != Pass {
		t.Fatal("q1 should keep tuple alive")
	}
	if tp.Lin.Queries.Contains(0) || !tp.Lin.Queries.Contains(1) {
		t.Fatalf("lineage = %v", tp.Lin.Queries.String())
	}
}

func TestGroupedFilterDuplicateEqualityFactors(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "sym"))
	f := expr.RangeFactor{Col: expr.Col("", "sym"), Op: expr.OpEq, Val: tuple.String("A")}
	_ = g.AddFactor(0, f)
	_ = g.AddFactor(0, f) // duplicate conjunct: still satisfiable
	tp := stock(1, "A", 1)
	tp.Lineage().Queries.Add(0)
	if out, _ := g.Process(tp, noEmit); out != Pass || !tp.Lin.Queries.Contains(0) {
		t.Fatal("duplicate equality factors should both match")
	}
}

func TestGroupedFilterRemoveQuery(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "price"))
	addFactor(t, g, 0, expr.OpGt, 100) // would fail price=50
	addFactor(t, g, 1, expr.OpLt, 100) // passes price=50
	g.RemoveQuery(0)
	if g.QueryCount() != 1 {
		t.Fatalf("QueryCount = %d", g.QueryCount())
	}
	// q0's factor must no longer fail anything — but q0's bit is
	// also owned by the removed query; tuple carrying only q1 passes.
	tp := gfTuple(50, 1)
	if out, _ := g.Process(tp, noEmit); out != Pass || !tp.Lin.Queries.Contains(1) {
		t.Fatal("q1 affected by removed q0")
	}
	g.RemoveQuery(99) // unknown: no-op
}

func TestGroupedFilterWrongAttribute(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "price"))
	err := g.AddFactor(0, expr.RangeFactor{Col: expr.Col("", "sym"), Op: expr.OpEq, Val: tuple.String("A")})
	if err == nil {
		t.Fatal("factor on wrong attribute accepted")
	}
}

func TestGroupedFilterMatchQueries(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "price"))
	addFactor(t, g, 0, expr.OpGt, 50)
	addFactor(t, g, 1, expr.OpLt, 50)
	universe := bitset.FromIndices(0, 1, 2)
	got, err := g.MatchQueries(tuple.Float(70), universe)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(0) || got.Contains(1) || !got.Contains(2) {
		t.Fatalf("MatchQueries = %v", got)
	}
}

// Ground truth comparison: grouped filter vs individually evaluated
// predicates over random factor sets and values.
func TestGroupedFilterAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ops := []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
	for trial := 0; trial < 50; trial++ {
		g := NewGroupedFilter(expr.Col("", "price"))
		const nq = 20
		factors := map[int][]expr.RangeFactor{}
		for q := 0; q < nq; q++ {
			for i := 0; i <= r.Intn(3); i++ {
				f := expr.RangeFactor{
					Col: expr.Col("", "price"),
					Op:  ops[r.Intn(len(ops))],
					Val: tuple.Float(float64(r.Intn(20))),
				}
				factors[q] = append(factors[q], f)
				if err := g.AddFactor(q, f); err != nil {
					t.Fatal(err)
				}
			}
		}
		for probe := 0; probe < 40; probe++ {
			v := tuple.Float(float64(r.Intn(20)))
			universe := bitset.New(nq)
			for q := 0; q < nq; q++ {
				universe.Add(q)
			}
			got, err := g.MatchQueries(v, universe)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < nq; q++ {
				want := true
				for _, f := range factors[q] {
					if !f.Matches(v) {
						want = false
						break
					}
				}
				if got.Contains(q) != want {
					t.Fatalf("trial %d v=%v q=%d: grouped=%v naive=%v (factors %v)",
						trial, v, q, got.Contains(q), want, factors[q])
				}
			}
		}
	}
}

func BenchmarkGroupedFilterProbe(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("factors=%d", n), func(b *testing.B) {
			g := NewGroupedFilter(expr.Col("", "price"))
			for q := 0; q < n; q++ {
				_ = g.AddFactor(q, expr.RangeFactor{
					Col: expr.Col("", "price"), Op: expr.OpGt,
					Val: tuple.Float(float64(q)),
				})
			}
			universe := bitset.New(n)
			for q := 0; q < n; q++ {
				universe.Add(q)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.MatchQueries(tuple.Float(float64(i%n)), universe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestGroupedFilterProbeZeroAlloc pins the steady-state probe at zero
// allocations. E2's sub-crossover loss was per-probe bitset allocation;
// this test keeps it from coming back.
func TestGroupedFilterProbeZeroAlloc(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "price"))
	q := 0
	for _, op := range []expr.Op{expr.OpGt, expr.OpGe, expr.OpLt, expr.OpLe} {
		for i := 0; i < 25; i++ {
			addFactor(t, g, q, op, float64(i*4))
			q++
		}
	}
	universe := bitset.New(0)
	for i := 0; i < q; i++ {
		universe.Add(i)
	}
	tp := gfTuple(50)
	lin := tp.Lineage()
	lin.Queries.CopyFrom(universe)
	// Warm up: first probes may size the scratch bitsets and rebuild the
	// range classes; steady state starts after that.
	if _, err := g.Process(tp, noEmit); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		lin.Queries.CopyFrom(universe)
		if _, err := g.Process(tp, noEmit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("grouped filter probe allocates %.1f per run, want 0", allocs)
	}

	// The PSoup-facing probe must be zero-alloc too.
	out := bitset.New(0)
	if err := g.MatchQueriesInto(tuple.Float(50), universe, out); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := g.MatchQueriesInto(tuple.Float(50), universe, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MatchQueriesInto allocates %.1f per run, want 0", allocs)
	}
}

// TestGroupedFilterProbeZeroAllocEq covers the equality/inequality probe
// path (hash lookup + scratch copy) at zero allocations.
func TestGroupedFilterProbeZeroAllocEq(t *testing.T) {
	g := NewGroupedFilter(expr.Col("", "sym"))
	syms := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for q, s := range syms {
		if err := g.AddFactor(q, expr.RangeFactor{Col: expr.Col("", "sym"), Op: expr.OpEq, Val: tuple.String(s)}); err != nil {
			t.Fatal(err)
		}
	}
	for q, s := range syms {
		if err := g.AddFactor(len(syms)+q, expr.RangeFactor{Col: expr.Col("", "sym"), Op: expr.OpNe, Val: tuple.String(s)}); err != nil {
			t.Fatal(err)
		}
	}
	universe := bitset.New(0)
	for i := 0; i < 2*len(syms); i++ {
		universe.Add(i)
	}
	tp := stock(1, "C", 10)
	lin := tp.Lineage()
	lin.Queries.CopyFrom(universe)
	if _, err := g.Process(tp, noEmit); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		lin.Queries.CopyFrom(universe)
		if _, err := g.Process(tp, noEmit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("eq/ne probe allocates %.1f per run, want 0", allocs)
	}
}
