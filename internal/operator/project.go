package operator

import (
	"telegraphcq/internal/expr"
	"telegraphcq/internal/expr/prog"
	"telegraphcq/internal/tuple"
)

// Project evaluates a list of output expressions, producing result tuples
// with a fixed schema. It replaces the routed tuple in place of emitting:
// the projected tuple continues through the dataflow. Output expressions
// are compiled per input schema by default, with per-expression
// interpreter fallback (see internal/expr/prog).
type Project struct {
	name     string
	exprs    []expr.Expr
	out      *tuple.Schema
	stats    Stats
	compiled *prog.ProjCache
}

// NewProject builds a projection. Column names come from names (same
// length as exprs); empty entries derive a name from the expression.
func NewProject(name string, exprs []expr.Expr, names []string) *Project {
	cols := make([]tuple.Column, len(exprs))
	for i, e := range exprs {
		n := ""
		if i < len(names) {
			n = names[i]
		}
		if n == "" {
			if c, ok := e.(*expr.ColumnRef); ok {
				n = c.Name
			} else {
				n = e.String()
			}
		}
		cols[i] = tuple.Column{Source: name, Name: n, Kind: tuple.KindNull}
	}
	return &Project{
		name: name, exprs: exprs, out: tuple.NewSchema(cols...),
		compiled: prog.NewProjCache(exprs),
	}
}

// Name implements Module.
func (p *Project) Name() string { return p.name }

// SetCompiled toggles the compiled bytecode path (on by default).
func (p *Project) SetCompiled(on bool) {
	if on {
		p.compiled = prog.NewProjCache(p.exprs)
	} else {
		p.compiled = nil
	}
}

// OutputSchema returns the schema of projected tuples.
func (p *Project) OutputSchema() *tuple.Schema { return p.out }

// Interested implements Module.
func (p *Project) Interested(t *tuple.Tuple) bool {
	for _, e := range p.exprs {
		for _, c := range expr.Columns(e, nil) {
			if _, err := c.Resolve(t.Schema); err != nil {
				return false
			}
		}
	}
	return true
}

// Process implements Module: emits the projected tuple and consumes the
// input.
func (p *Project) Process(t *tuple.Tuple, emit Emit) (Outcome, error) {
	p.stats.In++
	vals := make([]tuple.Value, len(p.exprs))
	if p.compiled != nil {
		if err := p.compiled.EvalInto(t, vals); err != nil {
			return Drop, err
		}
	} else {
		for i, e := range p.exprs {
			v, err := e.Eval(t)
			if err != nil {
				return Drop, err
			}
			vals[i] = v
		}
	}
	out := tuple.New(p.out, vals...)
	out.TS = t.TS
	if t.Lin != nil {
		// Projection preserves query interest (CACQ output path).
		out.Lineage().Queries.CopyFrom(&t.Lin.Queries)
	}
	p.stats.Out++
	emit(out)
	return Consumed, nil
}

// ModuleStats implements StatsProvider.
func (p *Project) ModuleStats() Stats { return p.stats }

// Apply projects a single tuple directly (per-query output pipelines).
func (p *Project) Apply(t *tuple.Tuple) (*tuple.Tuple, error) {
	var out *tuple.Tuple
	_, err := p.Process(t, func(x *tuple.Tuple) { out = x })
	return out, err
}
