package operator

import (
	"sort"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// WindowSort buffers tuples and emits them sorted when the buffer reaches
// its bound or Flush is called. Over unbounded streams a full sort is
// impossible (the operator would block forever), so WindowSort sorts
// within bounded batches — the non-blocking "Sort" of Figure 1. For
// content-prioritized reordering of an in-flight stream, see Juggle.
type WindowSort struct {
	name  string
	keys  []SortKey
	bound int
	buf   []*tuple.Tuple
	stats Stats
}

// NewWindowSort builds a sort with the given batch bound (<=0 means 1024).
func NewWindowSort(name string, keys []SortKey, bound int) *WindowSort {
	if bound <= 0 {
		bound = 1024
	}
	return &WindowSort{name: name, keys: keys, bound: bound}
}

// Name implements Module.
func (s *WindowSort) Name() string { return s.name }

// Interested implements Module.
func (s *WindowSort) Interested(*tuple.Tuple) bool { return true }

// Process implements Module.
func (s *WindowSort) Process(t *tuple.Tuple, emit Emit) (Outcome, error) {
	s.stats.In++
	s.buf = append(s.buf, t)
	if len(s.buf) >= s.bound {
		if err := s.Flush(emit); err != nil {
			return Consumed, err
		}
	}
	return Consumed, nil
}

// Flush implements Flusher: sorts and emits the current batch.
func (s *WindowSort) Flush(emit Emit) error {
	var evalErr error
	sort.SliceStable(s.buf, func(i, j int) bool {
		for _, k := range s.keys {
			vi, err := k.Expr.Eval(s.buf[i])
			if err != nil {
				if evalErr == nil {
					evalErr = err
				}
				return false
			}
			vj, err := k.Expr.Eval(s.buf[j])
			if err != nil {
				if evalErr == nil {
					evalErr = err
				}
				return false
			}
			c, ok := tuple.Compare(vi, vj)
			if !ok {
				continue
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if evalErr != nil {
		s.buf = nil
		return evalErr
	}
	for _, t := range s.buf {
		s.stats.Out++
		emit(t)
	}
	s.buf = nil
	return nil
}

// ModuleStats implements StatsProvider.
func (s *WindowSort) ModuleStats() Stats { return s.stats }
