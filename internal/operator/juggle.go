package operator

import (
	"container/heap"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// Juggle performs online reordering of an in-flight stream, prioritizing
// records by content (Raman, Raman & Hellerstein, VLDB 1999; listed among
// the adaptive routing modules in Figure 1). It buffers up to Capacity
// tuples in a priority heap; each Idle cycle it releases the
// highest-priority buffered tuple, so records the user cares about reach
// the output first while the full stream is still delivered eventually.
//
// Priority is a numeric expression; larger is sooner. The user can
// re-prioritize mid-stream (interactive control, §1.1 "users may choose
// to modify their queries on the basis of previously returned
// information").
type Juggle struct {
	name     string
	priority expr.Expr
	capacity int
	h        juggleHeap
	seq      int64 // tiebreak: FIFO within equal priority
	stats    Stats
}

// NewJuggle builds a juggle with the given buffer capacity (<=0 → 256).
func NewJuggle(name string, priority expr.Expr, capacity int) *Juggle {
	if capacity <= 0 {
		capacity = 256
	}
	return &Juggle{name: name, priority: priority, capacity: capacity}
}

// Name implements Module.
func (j *Juggle) Name() string { return j.name }

// SetPriority swaps the priority expression mid-stream and re-orders the
// buffered tuples accordingly.
func (j *Juggle) SetPriority(p expr.Expr) error {
	j.priority = p
	for i := range j.h.items {
		pr, err := j.eval(j.h.items[i].t)
		if err != nil {
			return err
		}
		j.h.items[i].pri = pr
	}
	heap.Init(&j.h)
	return nil
}

// Buffered returns the number of tuples awaiting release.
func (j *Juggle) Buffered() int { return len(j.h.items) }

// Interested implements Module.
func (j *Juggle) Interested(t *tuple.Tuple) bool {
	for _, c := range expr.Columns(j.priority, nil) {
		if _, err := c.Resolve(t.Schema); err != nil {
			return false
		}
	}
	return true
}

func (j *Juggle) eval(t *tuple.Tuple) (float64, error) {
	v, err := j.priority.Eval(t)
	if err != nil {
		return 0, err
	}
	return v.AsFloat(), nil
}

// Process implements Module: buffer the tuple; when the buffer is full,
// release the best tuple immediately (one in, one out keeps latency
// bounded).
func (j *Juggle) Process(t *tuple.Tuple, emit Emit) (Outcome, error) {
	j.stats.In++
	pr, err := j.eval(t)
	if err != nil {
		return Drop, err
	}
	heap.Push(&j.h, juggleItem{t: t, pri: pr, seq: j.seq})
	j.seq++
	if len(j.h.items) > j.capacity {
		best := heap.Pop(&j.h).(juggleItem)
		j.stats.Out++
		emit(best.t)
	}
	return Consumed, nil
}

// Idle implements Idler: release one buffered tuple per spare cycle.
func (j *Juggle) Idle(emit Emit) (bool, error) {
	if len(j.h.items) == 0 {
		return false, nil
	}
	best := heap.Pop(&j.h).(juggleItem)
	j.stats.Out++
	emit(best.t)
	return true, nil
}

// Flush implements Flusher: release everything in priority order.
func (j *Juggle) Flush(emit Emit) error {
	for len(j.h.items) > 0 {
		best := heap.Pop(&j.h).(juggleItem)
		j.stats.Out++
		emit(best.t)
	}
	return nil
}

// ModuleStats implements StatsProvider.
func (j *Juggle) ModuleStats() Stats { return j.stats }

type juggleItem struct {
	t   *tuple.Tuple
	pri float64
	seq int64
}

type juggleHeap struct{ items []juggleItem }

func (h *juggleHeap) Len() int { return len(h.items) }
func (h *juggleHeap) Less(a, b int) bool {
	if h.items[a].pri != h.items[b].pri {
		return h.items[a].pri > h.items[b].pri // max-heap on priority
	}
	return h.items[a].seq < h.items[b].seq // FIFO tiebreak
}
func (h *juggleHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *juggleHeap) Push(x any)    { h.items = append(h.items, x.(juggleItem)) }
func (h *juggleHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}
