package operator

import (
	"fmt"
	"math"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
	"telegraphcq/internal/window"
)

// AggKind enumerates the aggregate functions (Figure 1's Group and
// Aggregation modules).
type AggKind uint8

const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	AggStdDev
)

var aggNames = map[AggKind]string{
	AggCount: "count", AggSum: "sum", AggAvg: "avg",
	AggMin: "min", AggMax: "max", AggStdDev: "stddev",
}

func (k AggKind) String() string { return aggNames[k] }

// ParseAggKind maps a SQL function name to an AggKind.
func ParseAggKind(name string) (AggKind, bool) {
	for k, n := range aggNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// AggSpec is one aggregate in the SELECT list.
type AggSpec struct {
	Kind AggKind
	Arg  expr.Expr // nil only for COUNT(*)
	As   string    // output column name override
}

// OutputName returns the column name of the aggregate in result rows.
func (a AggSpec) OutputName() string {
	if a.As != "" {
		return a.As
	}
	if a.Arg == nil {
		return "count"
	}
	return a.Kind.String() + "_" + a.Arg.String()
}

// Strategy selects the window-state algorithm (§4.1.2: "for a landmark
// window, it is possible to compute the answer iteratively ... for a
// sliding window, computing the maximum requires the maintenance of the
// entire window").
type Strategy uint8

const (
	// StrategyAuto picks Incremental for landmark/snapshot windows and
	// Deque for sliding windows.
	StrategyAuto Strategy = iota
	// StrategyIncremental keeps O(1) accumulators; valid only when the
	// window's left edge never moves (landmark/snapshot).
	StrategyIncremental
	// StrategyRecompute buffers the window's tuples and recomputes each
	// result from scratch — always correct, the ablation baseline.
	StrategyRecompute
	// StrategyDeque keeps subtractable accumulators plus monotonic
	// deques for MIN/MAX — O(1) amortized per tuple on sliding windows.
	StrategyDeque
)

func (s Strategy) String() string {
	switch s {
	case StrategyIncremental:
		return "incremental"
	case StrategyRecompute:
		return "recompute"
	case StrategyDeque:
		return "deque"
	default:
		return "auto"
	}
}

// WindowAgg evaluates grouped aggregates over the window sequence of one
// input stream. It is arrival-driven: when a tuple's instant passes the
// current window's right edge, the window closes and one result row per
// group is emitted, stamped with the loop value t.
type WindowAgg struct {
	name     string
	stream   string
	spec     *window.Spec
	seq      *window.Sequence
	cur      window.Instance
	open     bool
	finished bool

	groupBy  []*expr.ColumnRef
	aggs     []AggSpec
	strategy Strategy
	out      *tuple.Schema

	buf    []*tuple.Tuple       // StrategyRecompute: live window buffer
	groups map[string]*groupAcc // Incremental/Deque accumulators
	order  []string             // group emission order (first seen)

	stats Stats
	// MaxWindow caps buffered tuples per window for Recompute (0 =
	// unlimited); a QoS shedding knob.
	MaxWindow int
	shed      int64
}

// NewWindowAgg builds the module. st is the query's bound start time (ST
// in the paper's for-loop). The spec must contain a WindowIs for the
// named stream and must move forward (backward windows are served by the
// storage scanner instead).
func NewWindowAgg(name, stream string, spec *window.Spec, st int64,
	groupBy []*expr.ColumnRef, aggs []AggSpec, strategy Strategy) (*WindowAgg, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	found := false
	for _, d := range spec.Defs {
		if d.Stream == stream {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("window spec has no WindowIs for stream %s", stream)
	}
	kind, _, _ := spec.Classify()
	if kind == window.KindBackward {
		return nil, fmt.Errorf("backward windows require the storage scanner, not WindowAgg")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("no aggregates specified")
	}
	if strategy == StrategyAuto {
		switch kind {
		case window.KindLandmark, window.KindSnapshot:
			strategy = StrategyIncremental
		default:
			strategy = StrategyDeque
		}
	}
	if strategy == StrategyIncremental && kind == window.KindSliding {
		return nil, fmt.Errorf("incremental strategy is incorrect for sliding windows")
	}
	w := &WindowAgg{
		name:     name,
		stream:   stream,
		spec:     spec,
		seq:      window.NewSequence(spec, st),
		groupBy:  groupBy,
		aggs:     aggs,
		strategy: strategy,
		groups:   map[string]*groupAcc{},
	}
	w.cur, w.open = w.seq.Next()
	if !w.open {
		w.finished = true
	}
	w.out = w.outputSchema()
	return w, nil
}

// outputSchema is: t (loop value), group columns, aggregate columns.
func (w *WindowAgg) outputSchema() *tuple.Schema {
	cols := []tuple.Column{{Source: w.name, Name: "t", Kind: tuple.KindInt}}
	for _, g := range w.groupBy {
		cols = append(cols, tuple.Column{Source: w.name, Name: g.Name, Kind: tuple.KindNull})
	}
	for _, a := range w.aggs {
		k := tuple.KindFloat
		if a.Kind == AggCount {
			k = tuple.KindInt
		}
		cols = append(cols, tuple.Column{Source: w.name, Name: a.OutputName(), Kind: k})
	}
	return tuple.NewSchema(cols...)
}

// OutputSchema returns the schema of emitted result rows.
func (w *WindowAgg) OutputSchema() *tuple.Schema { return w.out }

// Name implements Module.
func (w *WindowAgg) Name() string { return w.name }

// Strategy returns the algorithm in use (after auto-selection).
func (w *WindowAgg) Strategy() Strategy { return w.strategy }

// Shed returns the number of tuples dropped by the MaxWindow QoS cap.
func (w *WindowAgg) Shed() int64 { return w.shed }

// StateSize returns the number of tuples/items currently held — the
// §4.1.2 memory-requirement comparison measures this.
func (w *WindowAgg) StateSize() int {
	switch w.strategy {
	case StrategyRecompute:
		return len(w.buf)
	default:
		n := 0
		for _, g := range w.groups {
			n += len(g.ring.items)
			for _, as := range g.aggStates {
				n += len(as.minDq.items) + len(as.maxDq.items)
			}
		}
		return n
	}
}

// Interested implements Module.
func (w *WindowAgg) Interested(t *tuple.Tuple) bool {
	return t.Schema.HasSource(w.stream)
}

// Process implements Module. Tuples must arrive in nondecreasing instant
// order for the windowed stream (streamers assign sequence numbers on
// arrival, so this holds by construction for logical time).
func (w *WindowAgg) Process(t *tuple.Tuple, emit Emit) (Outcome, error) {
	w.stats.In++
	if w.finished {
		return Consumed, nil
	}
	x := t.TS.Instant(w.spec.Domain)
	if x == tuple.NoInstant {
		return Consumed, nil // no coordinate in this domain: in no window
	}
	r := w.cur.Ranges[w.stream]
	for x > r.Right {
		if err := w.closeWindow(emit); err != nil {
			return Consumed, err
		}
		if w.finished {
			return Consumed, nil
		}
		r = w.cur.Ranges[w.stream]
	}
	if x < r.Left {
		return Consumed, nil // in a hop gap: never needed
	}
	if err := w.absorb(t, x); err != nil {
		return Consumed, err
	}
	return Consumed, nil
}

func (w *WindowAgg) absorb(t *tuple.Tuple, x int64) error {
	if w.strategy == StrategyRecompute {
		if w.MaxWindow > 0 && len(w.buf) >= w.MaxWindow {
			w.shed++
			return nil
		}
		w.buf = append(w.buf, t)
		return nil
	}
	g, err := w.group(w.groups, &w.order, t)
	if err != nil {
		return err
	}
	return g.add(t, x, w.aggs, w.strategy == StrategyDeque)
}

// group finds or creates the accumulator for t's group.
func (w *WindowAgg) group(groups map[string]*groupAcc, order *[]string, t *tuple.Tuple) (*groupAcc, error) {
	key, vals, err := w.groupKey(t)
	if err != nil {
		return nil, err
	}
	g, ok := groups[key]
	if !ok {
		g = newGroupAcc(vals, len(w.aggs))
		groups[key] = g
		*order = append(*order, key)
	}
	return g, nil
}

func (w *WindowAgg) groupKey(t *tuple.Tuple) (string, []tuple.Value, error) {
	if len(w.groupBy) == 0 {
		return "", nil, nil
	}
	vals := make([]tuple.Value, len(w.groupBy))
	var key string
	for i, g := range w.groupBy {
		v, err := g.Eval(t)
		if err != nil {
			return "", nil, err
		}
		vals[i] = v
		key += string(rune(v.K)) + v.String() + "\x00"
	}
	return key, vals, nil
}

// closeWindow emits results for the current window, advances the
// sequence, and evicts state behind the next window's left edge.
func (w *WindowAgg) closeWindow(emit Emit) error {
	if err := w.emitResults(emit); err != nil {
		return err
	}
	prevLeft := w.cur.Ranges[w.stream].Left
	w.cur, w.open = w.seq.Next()
	if !w.open {
		w.finished = true
		w.buf = nil
		w.groups = map[string]*groupAcc{}
		w.order = nil
		return nil
	}
	if newLeft := w.cur.Ranges[w.stream].Left; newLeft > prevLeft {
		w.evictBefore(newLeft)
	}
	return nil
}

func (w *WindowAgg) evictBefore(left int64) {
	switch w.strategy {
	case StrategyRecompute:
		kept := w.buf[:0]
		for _, t := range w.buf {
			if t.TS.Instant(w.spec.Domain) >= left {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(w.buf); i++ {
			w.buf[i] = nil
		}
		w.buf = kept
	case StrategyDeque:
		for key, g := range w.groups {
			g.evictBefore(left)
			if g.count == 0 {
				delete(w.groups, key)
			}
		}
		kept := w.order[:0]
		for _, k := range w.order {
			if _, ok := w.groups[k]; ok {
				kept = append(kept, k)
			}
		}
		w.order = kept
	case StrategyIncremental:
		// Landmark windows never move their left edge.
	}
}

func (w *WindowAgg) emitResults(emit Emit) error {
	r := w.cur.Ranges[w.stream]
	mkRow := func(key []tuple.Value, res func(i int, a AggSpec) tuple.Value) {
		vals := make([]tuple.Value, 0, w.out.Arity())
		vals = append(vals, tuple.Int(w.cur.T))
		vals = append(vals, key...)
		for i, a := range w.aggs {
			vals = append(vals, res(i, a))
		}
		rt := tuple.New(w.out, vals...)
		rt.TS = tuple.Timestamp{Seq: r.Right}
		w.stats.Out++
		emit(rt)
	}

	groups, order := w.groups, w.order
	if w.strategy == StrategyRecompute {
		var err error
		groups, order, err = w.recomputeGroups(r)
		if err != nil {
			return err
		}
	}
	if len(order) == 0 {
		if len(w.groupBy) == 0 {
			mkRow(nil, func(i int, a AggSpec) tuple.Value { return emptyAgg(a) })
		}
		return nil
	}
	for _, k := range order {
		g, ok := groups[k]
		if !ok {
			continue
		}
		mkRow(g.key, func(i int, a AggSpec) tuple.Value { return g.result(i, a) })
	}
	return nil
}

// recomputeGroups scans the buffer and builds fresh accumulators over
// tuples inside the window range.
func (w *WindowAgg) recomputeGroups(r window.Range) (map[string]*groupAcc, []string, error) {
	groups := map[string]*groupAcc{}
	var order []string
	for _, t := range w.buf {
		x := t.TS.Instant(w.spec.Domain)
		if !r.Contains(x) {
			continue
		}
		g, err := w.group(groups, &order, t)
		if err != nil {
			return nil, nil, err
		}
		if err := g.add(t, x, w.aggs, false); err != nil {
			return nil, nil, err
		}
	}
	return groups, order, nil
}

// Flush implements Flusher: end of stream closes the current window.
func (w *WindowAgg) Flush(emit Emit) error {
	if w.finished || !w.open {
		return nil
	}
	err := w.emitResults(emit)
	w.finished = true
	return err
}

// ModuleStats implements StatsProvider.
func (w *WindowAgg) ModuleStats() Stats { return w.stats }

// ------------------------------------------------------------ group acc

// groupAcc holds one group's accumulators: one aggState per AggSpec plus
// a tuple-count ring for COUNT(*) eviction under the Deque strategy.
type groupAcc struct {
	key       []tuple.Value
	count     int64 // all tuples in group (COUNT(*))
	aggStates []aggState
	ring      instantRing // instants of all tuples (Deque eviction)
}

type aggState struct {
	count float64 // non-null arg count
	sum   float64
	sumsq float64
	min   tuple.Value
	max   tuple.Value
	minDq deque
	maxDq deque
	ring  valueRing // (instant, value) history for Deque eviction
}

func newGroupAcc(key []tuple.Value, nAggs int) *groupAcc {
	g := &groupAcc{key: key, aggStates: make([]aggState, nAggs)}
	for i := range g.aggStates {
		g.aggStates[i].min = tuple.Null()
		g.aggStates[i].max = tuple.Null()
	}
	return g
}

func (g *groupAcc) add(t *tuple.Tuple, x int64, aggs []AggSpec, deques bool) error {
	g.count++
	if deques {
		g.ring.push(x)
	}
	for i, a := range aggs {
		if a.Arg == nil {
			continue
		}
		v, err := a.Arg.Eval(t)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		as := &g.aggStates[i]
		f := v.AsFloat()
		as.count++
		as.sum += f
		as.sumsq += f * f
		if as.min.IsNull() || lessVal(v, as.min) {
			as.min = v
		}
		if as.max.IsNull() || lessVal(as.max, v) {
			as.max = v
		}
		if deques {
			as.minDq.push(dqItem{v, x}, true)
			as.maxDq.push(dqItem{v, x}, false)
			as.ring.push(dqItem{v, x})
		}
	}
	return nil
}

func (g *groupAcc) result(i int, a AggSpec) tuple.Value {
	as := &g.aggStates[i]
	switch a.Kind {
	case AggCount:
		if a.Arg == nil {
			return tuple.Int(g.count)
		}
		return tuple.Int(int64(as.count))
	case AggSum:
		if as.count == 0 {
			return tuple.Null()
		}
		return tuple.Float(as.sum)
	case AggAvg:
		if as.count == 0 {
			return tuple.Null()
		}
		return tuple.Float(as.sum / as.count)
	case AggMin:
		if len(as.minDq.items) > 0 {
			return as.minDq.items[0].v
		}
		return as.min
	case AggMax:
		if len(as.maxDq.items) > 0 {
			return as.maxDq.items[0].v
		}
		return as.max
	case AggStdDev:
		if as.count == 0 {
			return tuple.Null()
		}
		mean := as.sum / as.count
		v := as.sumsq/as.count - mean*mean
		if v < 0 {
			v = 0 // floating point guard
		}
		return tuple.Float(math.Sqrt(v))
	}
	return tuple.Null()
}

// evictBefore removes expired contributions (Deque strategy only).
func (g *groupAcc) evictBefore(left int64) {
	g.count -= g.ring.evictBefore(left)
	for i := range g.aggStates {
		as := &g.aggStates[i]
		as.minDq.evictBefore(left)
		as.maxDq.evictBefore(left)
		as.ring.evictBeforeInto(left, as)
		// min/max fall back to deque fronts after eviction.
		if len(as.minDq.items) > 0 {
			as.min = as.minDq.items[0].v
		} else {
			as.min = tuple.Null()
		}
		if len(as.maxDq.items) > 0 {
			as.max = as.maxDq.items[0].v
		} else {
			as.max = tuple.Null()
		}
	}
}

func emptyAgg(a AggSpec) tuple.Value {
	if a.Kind == AggCount {
		return tuple.Int(0)
	}
	return tuple.Null()
}

// ----------------------------------------------------------------- rings

// dqItem ties a value to the instant that admits it to the window.
type dqItem struct {
	v   tuple.Value
	seq int64
}

type instantRing struct{ items []int64 }

func (r *instantRing) push(x int64) { r.items = append(r.items, x) }

func (r *instantRing) evictBefore(left int64) int64 {
	i := 0
	for ; i < len(r.items) && r.items[i] < left; i++ {
	}
	if i > 0 {
		r.items = append(r.items[:0], r.items[i:]...)
	}
	return int64(i)
}

type valueRing struct{ items []dqItem }

func (r *valueRing) push(it dqItem) { r.items = append(r.items, it) }

func (r *valueRing) evictBeforeInto(left int64, as *aggState) {
	i := 0
	for ; i < len(r.items) && r.items[i].seq < left; i++ {
		f := r.items[i].v.AsFloat()
		as.count--
		as.sum -= f
		as.sumsq -= f * f
	}
	if i > 0 {
		r.items = append(r.items[:0], r.items[i:]...)
	}
}

// ----------------------------------------------------------------- deque

type deque struct{ items []dqItem }

// push maintains monotonicity: a min-deque's values strictly increase
// front to back; a max-deque's strictly decrease.
func (d *deque) push(it dqItem, isMin bool) {
	for len(d.items) > 0 {
		last := d.items[len(d.items)-1]
		var pop bool
		if isMin {
			pop = !lessVal(last.v, it.v) // last >= new
		} else {
			pop = !lessVal(it.v, last.v) // last <= new
		}
		if !pop {
			break
		}
		d.items = d.items[:len(d.items)-1]
	}
	d.items = append(d.items, it)
}

func (d *deque) evictBefore(left int64) {
	i := 0
	for ; i < len(d.items) && d.items[i].seq < left; i++ {
	}
	if i > 0 {
		d.items = append(d.items[:0], d.items[i:]...)
	}
}

// lessVal is a total "less" over comparable values; incomparable pairs
// report false (callers guarantee same-attribute values).
func lessVal(a, b tuple.Value) bool {
	c, ok := tuple.Compare(a, b)
	return ok && c < 0
}
