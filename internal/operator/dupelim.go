package operator

import (
	"telegraphcq/internal/tuple"
)

// DupElim drops tuples whose full value vector has been seen before
// (SELECT DISTINCT). Over infinite streams its state grows without
// bound, so a window-style eviction hook is provided: EvictBefore drops
// remembered keys older than a sequence horizon.
type DupElim struct {
	name  string
	seen  map[string]int64 // key → last seen sequence
	stats Stats
}

// NewDupElim builds a duplicate-elimination module.
func NewDupElim(name string) *DupElim {
	return &DupElim{name: name, seen: map[string]int64{}}
}

// Name implements Module.
func (d *DupElim) Name() string { return d.name }

// Interested implements Module.
func (d *DupElim) Interested(*tuple.Tuple) bool { return true }

// Process implements Module.
func (d *DupElim) Process(t *tuple.Tuple, _ Emit) (Outcome, error) {
	d.stats.In++
	idx := make([]int, len(t.Values))
	for i := range idx {
		idx[i] = i
	}
	key := t.Key(idx)
	if _, dup := d.seen[key]; dup {
		d.seen[key] = t.TS.Seq
		d.stats.Dropped++
		return Drop, nil
	}
	d.seen[key] = t.TS.Seq
	d.stats.Out++
	return Pass, nil
}

// EvictBefore forgets keys last seen before seq; duplicates separated by
// more than the eviction horizon are re-emitted, which is the standard
// windowed-DISTINCT semantics over unbounded streams.
func (d *DupElim) EvictBefore(seq int64) int {
	n := 0
	for k, last := range d.seen {
		if last < seq {
			delete(d.seen, k)
			n++
		}
	}
	return n
}

// Size returns the number of remembered keys.
func (d *DupElim) Size() int { return len(d.seen) }

// ModuleStats implements StatsProvider.
func (d *DupElim) ModuleStats() Stats { return d.stats }
