package operator

import (
	"telegraphcq/internal/bitset"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/tuple"
)

// StemModule wraps a SteM as an Eddy-routable module (Figure 2). Base
// tuples of the SteM's source are built in by the Eddy at admission
// (build-before-probe keeps the symmetric join exactly-once); tuples not
// spanning the source probe it and the concatenated matches are emitted
// back to the router.
//
// The module carries the join factors that link its source to the rest
// of the query; a probe is answered with the index when an equality
// factor matches the SteM's key, with the remaining evaluable factors
// applied as a residual.
type StemModule struct {
	source  string
	st      *stem.SteM
	factors []expr.JoinFactor
	// indexCol is the stored-side column the SteM's hash index is built
	// on; only equality factors over it can use the index.
	indexCol *expr.ColumnRef
	// cross names foreign sources whose tuples probe this SteM with no
	// predicate at all: a Cartesian pairing. Registered for query pairs
	// joined without any cross-source factor, which would otherwise
	// never meet and silently emit nothing.
	cross map[string]bool
	// group marks alternative access paths: modules sharing a group are
	// interchangeable for routing purposes (hybrid joins, §2.2).
	group string
	stats Stats
	// SimCostNs models an expensive probe (synthetic work per probe).
	SimCostNs int64
}

// NewStemModule wraps st, which stores tuples of source. factors are all
// join factors referencing the source. indexCol, when non-nil, names the
// stored-side column st's hash index is built on.
func NewStemModule(source string, st *stem.SteM, factors []expr.JoinFactor, indexCol *expr.ColumnRef) *StemModule {
	return &StemModule{source: source, st: st, factors: factors, indexCol: indexCol}
}

// Name implements Module.
func (m *StemModule) Name() string { return "stem(" + m.source + ")" }

// Source returns the relation the SteM stores.
func (m *StemModule) Source() string { return m.source }

// SteM exposes the underlying state module (eviction, stats).
func (m *StemModule) SteM() *stem.SteM { return m.st }

// SetGroup marks this module as one of a set of alternative access paths.
func (m *StemModule) SetGroup(g string) { m.group = g }

// AddFactor registers a join factor referencing this SteM's source.
// Duplicate factors (the same predicate from several queries) are folded
// into one — the sharing that makes CACQ joins cheap.
func (m *StemModule) AddFactor(f expr.JoinFactor) {
	for _, old := range m.factors {
		if old.Op == f.Op &&
			old.Left.Source == f.Left.Source && old.Left.Name == f.Left.Name &&
			old.Right.Source == f.Right.Source && old.Right.Name == f.Right.Name {
			return
		}
	}
	m.factors = append(m.factors, f)
}

// AddCross registers source as a Cartesian partner: its tuples probe
// this SteM unconditionally and every stored tuple matches.
func (m *StemModule) AddCross(source string) {
	if m.cross == nil {
		m.cross = map[string]bool{}
	}
	m.cross[source] = true
}

// crossProbe reports whether t probes as a Cartesian partner.
func (m *StemModule) crossProbe(t *tuple.Tuple) bool {
	if len(m.cross) == 0 {
		return false
	}
	for _, s := range t.Schema.Sources {
		if m.cross[s] {
			return true
		}
	}
	return false
}

// Group implements the router's Alternative interface.
func (m *StemModule) Group() string { return m.group }

// Build inserts a base tuple (called by the Eddy at admission).
func (m *StemModule) Build(t *tuple.Tuple) error {
	return m.st.Build(t)
}

// IsBase reports whether t is a base tuple of this SteM's source.
func (m *StemModule) IsBase(t *tuple.Tuple) bool {
	return len(t.Schema.Sources) == 1 && t.Schema.Sources[0] == m.source
}

// Interested implements Module: probe tuples are those that do not span
// the source but can evaluate at least one join factor against it.
func (m *StemModule) Interested(t *tuple.Tuple) bool {
	if t.Schema.HasSource(m.source) {
		return false
	}
	if m.crossProbe(t) {
		return true
	}
	_, _, n := m.probePlan(t)
	return n > 0
}

// probePlan splits the factors into an index key (when the SteM's index
// matches an equality factor whose other side resolves on t) and a
// residual conjunction. n counts evaluable factors.
func (m *StemModule) probePlan(t *tuple.Tuple) (key expr.Expr, residual expr.Expr, n int) {
	var residuals []expr.Expr
	for _, f := range m.factors {
		// Identify which side belongs to this source and which probes.
		var mine, other *expr.ColumnRef
		op := f.Op
		switch {
		case f.Left.Source == m.source:
			mine, other = f.Left, f.Right
		case f.Right.Source == m.source:
			mine, other = f.Right, f.Left
			op = op.Negate()
		default:
			continue
		}
		if _, err := other.Resolve(t.Schema); err != nil {
			continue // other side not present on the probe tuple
		}
		n++
		if key == nil && op == expr.OpEq && m.st.Indexed() &&
			m.indexCol != nil && mine.Name == m.indexCol.Name {
			key = other
			continue
		}
		// Residual evaluated on concat(probe, stored): both sides resolve.
		residuals = append(residuals, expr.Bin(f.Op, f.Left, f.Right))
	}
	return key, expr.Conjoin(residuals), n
}

// Process implements Module: probes the SteM and emits concatenations.
// The probe tuple itself passes (its lineage marks this join handled);
// emitted matches re-enter routing with fresh lineage derived by the
// router.
func (m *StemModule) Process(t *tuple.Tuple, emit Emit) (Outcome, error) {
	m.stats.In++
	if m.SimCostNs > 0 {
		spin(m.SimCostNs)
		m.stats.WorkNsec += m.SimCostNs
	}
	key, residual, n := m.probePlan(t)
	if n == 0 {
		if !m.crossProbe(t) {
			return Pass, nil // nothing to evaluate: vacuous visit
		}
		// Cartesian partner: every stored tuple matches.
		key, residual = nil, nil
	}
	matches, err := m.st.Probe(t, stem.ProbeSpec{KeyExpr: key, Residual: residual, MaxArrival: t.Arrival})
	if err != nil {
		return Drop, err
	}
	for _, j := range matches {
		// Join lineage: the result inherits the probe's query interest
		// and its done set (CACQ completion-bit inheritance keeps the
		// multiway cascade exactly-once).
		if t.Lin != nil {
			l := j.Lineage()
			l.Queries.CopyFrom(&t.Lin.Queries)
			l.Done.CopyFrom(&t.Lin.Done)
		}
		m.stats.Out++
		emit(j)
	}
	return Pass, nil
}

// EvictBefore removes stored tuples older than seq (window eviction).
func (m *StemModule) EvictBefore(seq int64) int { return m.st.EvictBefore(seq) }

// ModuleStats implements StatsProvider.
func (m *StemModule) ModuleStats() Stats { return m.stats }

// IntersectQueries narrows the emitted tuple's query set to queries both
// parents serve. Exposed for routers that track per-stored-tuple lineage.
func IntersectQueries(dst *tuple.Tuple, a, b *bitset.Set) {
	l := dst.Lineage()
	l.Queries.CopyFrom(a)
	l.Queries.Intersect(b)
}
