package window

import (
	"math"
	"testing"
	"testing/quick"

	"telegraphcq/internal/tuple"
)

func TestLinExprEval(t *testing.T) {
	e := LinExpr{TCoef: 2, STCoef: 1, Const: -3}
	if got := e.Eval(10, 100); got != 2*10+100-3 {
		t.Fatalf("Eval = %d", got)
	}
	if !e.DependsOnT() || ConstExpr(5).DependsOnT() {
		t.Fatal("DependsOnT")
	}
}

func TestLinExprString(t *testing.T) {
	cases := map[string]LinExpr{
		"t":        TExpr(0),
		"t+5":      TExpr(5),
		"t-4":      TExpr(-4),
		"ST":       STExpr(0),
		"ST+50":    STExpr(50),
		"0":        ConstExpr(0),
		"101":      ConstExpr(101),
		"-t":       {TCoef: -1},
		"2*t+ST-1": {TCoef: 2, STCoef: 1, Const: -1},
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", e, got, want)
		}
	}
}

func TestCondHolds(t *testing.T) {
	cases := []struct {
		c     Cond
		t, st int64
		want  bool
	}{
		{Cond{Op: CondTrue}, 999, 0, true},
		{Cond{Op: CondEq, RHS: ConstExpr(0)}, 0, 0, true},
		{Cond{Op: CondEq, RHS: ConstExpr(0)}, -1, 0, false},
		{Cond{Op: CondLe, RHS: ConstExpr(1000)}, 1000, 0, true},
		{Cond{Op: CondLt, RHS: STExpr(50)}, 149, 100, true},
		{Cond{Op: CondLt, RHS: STExpr(50)}, 150, 100, false},
		{Cond{Op: CondGt, RHS: ConstExpr(5)}, 6, 0, true},
		{Cond{Op: CondGe, RHS: ConstExpr(5)}, 5, 0, true},
	}
	for i, c := range cases {
		if got := c.c.Holds(c.t, c.st); got != c.want {
			t.Errorf("case %d: Holds = %v", i, got)
		}
	}
}

// Paper example 1: snapshot over days 1..5.
func TestSnapshotSequence(t *testing.T) {
	spec := Snapshot("ClosingStockPrices", 1, 5)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	k, _, _ := spec.Classify()
	if k != KindSnapshot {
		t.Fatalf("Classify = %v", k)
	}
	seq := NewSequence(spec, 77) // ST irrelevant
	inst, ok := seq.Next()
	if !ok {
		t.Fatal("no first instance")
	}
	r := inst.Ranges["ClosingStockPrices"]
	if r.Left != 1 || r.Right != 5 {
		t.Fatalf("range = %+v", r)
	}
	if _, ok := seq.Next(); ok {
		t.Fatal("snapshot yielded twice")
	}
}

// Paper example 2: landmark from day 101, standing until t=1000.
func TestLandmarkSequence(t *testing.T) {
	spec := Landmark("S", 101, 101, 1000)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if k, _, _ := spec.Classify(); k != KindLandmark {
		t.Fatalf("Classify = %v", k)
	}
	seq := NewSequence(spec, 0)
	n := 0
	var last Instance
	for {
		inst, ok := seq.Next()
		if !ok {
			break
		}
		n++
		last = inst
		r := inst.Ranges["S"]
		if r.Left != 101 || r.Right != inst.T {
			t.Fatalf("landmark range %+v at t=%d", r, inst.T)
		}
	}
	if n != 900 || last.T != 1000 {
		t.Fatalf("iterations = %d, last t = %d", n, last.T)
	}
}

// Paper example 3: 5-wide window hopping by 5, 10 windows over 50 days.
func TestSlidingHopSequence(t *testing.T) {
	spec := Sliding("S", 5, 5, 50)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	k, width, hop := spec.Classify()
	if k != KindSliding || width != 5 || hop != 5 {
		t.Fatalf("Classify = %v width=%d hop=%d", k, width, hop)
	}
	const st = 200
	seq := NewSequence(spec, st)
	var got []Range
	for {
		inst, ok := seq.Next()
		if !ok {
			break
		}
		got = append(got, inst.Ranges["S"])
	}
	if len(got) != 10 {
		t.Fatalf("window count = %d, want 10", len(got))
	}
	if got[0] != (Range{st - 4, st}) {
		t.Fatalf("first window = %+v", got[0])
	}
	if got[9] != (Range{st + 41, st + 45}) {
		t.Fatalf("last window = %+v", got[9])
	}
}

// Paper example 4: band join over both streams, width 5, 20 steps.
func TestBandJoinSequence(t *testing.T) {
	spec := BandJoin("c1", "c2", 5, 20)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	seq := NewSequence(spec, 100)
	inst, ok := seq.Next()
	if !ok {
		t.Fatal("no instance")
	}
	if inst.Ranges["c1"] != inst.Ranges["c2"] {
		t.Fatal("band join windows differ across streams")
	}
	if inst.Ranges["c1"] != (Range{96, 100}) {
		t.Fatalf("window = %+v", inst.Ranges["c1"])
	}
	n := 1
	for {
		if _, ok := seq.Next(); !ok {
			break
		}
		n++
	}
	if n != 20 {
		t.Fatalf("iterations = %d", n)
	}
}

func TestBackwardSequence(t *testing.T) {
	spec := Backward("S", 10, 10, 3)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if k, _, _ := spec.Classify(); k != KindBackward {
		t.Fatalf("Classify = %v", k)
	}
	seq := NewSequence(spec, 100)
	var rights []int64
	for {
		inst, ok := seq.Next()
		if !ok {
			break
		}
		rights = append(rights, inst.Ranges["S"].Right)
	}
	if len(rights) != 3 || rights[0] != 100 || rights[1] != 90 || rights[2] != 80 {
		t.Fatalf("backward rights = %v", rights)
	}
}

func TestContinuousSequenceNeverEnds(t *testing.T) {
	spec := Sliding("S", 5, 1, 0) // standing forever
	if spec.Cond.Op != CondTrue {
		t.Fatal("unbounded sliding should have CondTrue")
	}
	seq := NewSequence(spec, 1)
	for i := 0; i < 10000; i++ {
		if _, ok := seq.Next(); !ok {
			t.Fatal("continuous sequence ended")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []*Spec{
		{Init: TExpr(1), Cond: Cond{Op: CondTrue}, Step: 1,
			Defs: []Def{{Stream: "S", Left: TExpr(0), Right: TExpr(0)}}},
		{Init: ConstExpr(0), Cond: Cond{Op: CondLt, RHS: TExpr(1)}, Step: 1,
			Defs: []Def{{Stream: "S", Left: TExpr(0), Right: TExpr(0)}}},
		{Init: ConstExpr(0), Cond: Cond{Op: CondTrue}, Step: 1, Defs: nil},
		{Init: ConstExpr(0), Cond: Cond{Op: CondTrue}, Step: 1,
			Defs: []Def{{Stream: "", Left: TExpr(0), Right: TExpr(0)}}},
		{Init: ConstExpr(0), Cond: Cond{Op: CondTrue}, Step: 1,
			Defs: []Def{
				{Stream: "S", Left: TExpr(0), Right: TExpr(0)},
				{Stream: "S", Left: TExpr(0), Right: TExpr(0)},
			}},
		{Init: ConstExpr(0), Cond: Cond{Op: CondTrue}, Step: 0,
			Defs: []Def{{Stream: "S", Left: TExpr(0), Right: TExpr(0)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	// Zero step with one-shot condition is fine.
	ok := &Spec{Init: ConstExpr(0), Cond: Cond{Op: CondEq, RHS: ConstExpr(0)}, Step: 0,
		Defs: []Def{{Stream: "S", Left: ConstExpr(1), Right: ConstExpr(5)}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("one-shot zero-step rejected: %v", err)
	}
}

func TestRange(t *testing.T) {
	r := Range{3, 7}
	if !r.Contains(3) || !r.Contains(7) || r.Contains(2) || r.Contains(8) {
		t.Fatal("Contains")
	}
	if r.Empty() || !(Range{5, 4}).Empty() {
		t.Fatal("Empty")
	}
}

func TestMaxRight(t *testing.T) {
	spec := BandJoin("a", "b", 5, 20)
	spec.Defs[1].Right = TExpr(3) // skew one stream's right bound
	seq := NewSequence(spec, 100)
	if got := seq.MaxRight(); got != 103 {
		t.Fatalf("MaxRight = %d", got)
	}
	seq.Next()
	if got := seq.MaxRight(); got != 104 {
		t.Fatalf("MaxRight after advance = %d", got)
	}
	done := NewSequence(Snapshot("S", 1, 5), 0)
	done.Next()
	done.Next()
	if got := done.MaxRight(); got != math.MinInt64 {
		t.Fatalf("MaxRight on finished sequence = %d", got)
	}
}

func TestClassifyMixed(t *testing.T) {
	spec := &Spec{
		Domain: tuple.LogicalTime,
		Init:   ConstExpr(1),
		Cond:   Cond{Op: CondTrue},
		Step:   1,
		Defs: []Def{
			{Stream: "a", Left: ConstExpr(1), Right: TExpr(0)}, // landmark
			{Stream: "b", Left: TExpr(-4), Right: TExpr(0)},    // sliding
		},
	}
	if k, _, _ := spec.Classify(); k != KindMixed {
		t.Fatalf("Classify = %v", k)
	}
}

// Property: consecutive sliding windows are spaced exactly by hop and
// keep constant width.
func TestQuickSlidingInvariants(t *testing.T) {
	f := func(w8, h8 uint8) bool {
		width := int64(w8%50) + 1
		hop := int64(h8%20) + 1
		spec := Sliding("S", width, hop, 100)
		seq := NewSequence(spec, 1000)
		prev := Range{}
		first := true
		for {
			inst, ok := seq.Next()
			if !ok {
				break
			}
			r := inst.Ranges["S"]
			if r.Right-r.Left+1 != width {
				return false
			}
			if !first && r.Left-prev.Left != hop {
				return false
			}
			prev, first = r, false
		}
		return !first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
