package window

import "telegraphcq/internal/tuple"

// The constructors below build the paper's §4.1 example shapes directly.

// Snapshot returns a spec that evaluates exactly once over [left, right]
// (paper example 1: "for (; t==0; t = -1) { WindowIs(S, 1, 5) }").
func Snapshot(stream string, left, right int64) *Spec {
	return &Spec{
		Domain: tuple.LogicalTime,
		Init:   ConstExpr(0),
		Cond:   Cond{Op: CondEq, RHS: ConstExpr(0)},
		Step:   -1,
		Defs:   []Def{{Stream: stream, Left: ConstExpr(left), Right: ConstExpr(right)}},
	}
}

// Landmark returns a spec with a fixed left end and a right end that
// advances with t from first to last inclusive (paper example 2:
// "for (t = 101; t <= 1000; t++) { WindowIs(S, 101, t) }").
func Landmark(stream string, left, first, last int64) *Spec {
	return &Spec{
		Domain: tuple.LogicalTime,
		Init:   ConstExpr(first),
		Cond:   Cond{Op: CondLe, RHS: ConstExpr(last)},
		Step:   1,
		Defs:   []Def{{Stream: stream, Left: ConstExpr(left), Right: TExpr(0)}},
	}
}

// Sliding returns a spec whose window [t-width+1, t] hops forward by hop
// starting at the query start time and standing for `iterations` hops
// (paper example 3 has width 5, hop 5, 50 days). iterations <= 0 keeps
// the query standing forever (continuous).
func Sliding(stream string, width, hop, iterations int64) *Spec {
	cond := Cond{Op: CondTrue}
	if iterations > 0 {
		cond = Cond{Op: CondLt, RHS: STExpr(iterations)}
	}
	return &Spec{
		Domain: tuple.LogicalTime,
		Init:   STExpr(0),
		Cond:   cond,
		Step:   hop,
		Defs:   []Def{{Stream: stream, Left: TExpr(-(width - 1)), Right: TExpr(0)}},
	}
}

// BandJoin returns the paper's example 4: both streams share the sliding
// window [t-width+1, t] for `iterations` steps of 1.
func BandJoin(streamA, streamB string, width, iterations int64) *Spec {
	defs := []Def{
		{Stream: streamA, Left: TExpr(-(width - 1)), Right: TExpr(0)},
		{Stream: streamB, Left: TExpr(-(width - 1)), Right: TExpr(0)},
	}
	return &Spec{
		Domain: tuple.LogicalTime,
		Init:   STExpr(0),
		Cond:   Cond{Op: CondLt, RHS: STExpr(iterations)},
		Step:   1,
		Defs:   defs,
	}
}

// Backward returns a browsing-style spec whose windows move toward the
// past starting from the present (§4.1.1's "windows that move backwards
// starting from the present time").
func Backward(stream string, width, hop, iterations int64) *Spec {
	cond := Cond{Op: CondTrue}
	if iterations > 0 {
		cond = Cond{Op: CondGt, RHS: STExpr(-hop * iterations)}
	}
	return &Spec{
		Domain: tuple.LogicalTime,
		Init:   STExpr(0),
		Cond:   cond,
		Step:   -hop,
		Defs:   []Def{{Stream: stream, Left: TExpr(-(width - 1)), Right: TExpr(0)}},
	}
}
