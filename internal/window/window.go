// Package window implements the TelegraphCQ windowing construct (§4.1):
// a for-loop over a time variable t that declares, per input stream, the
// sequence of [left, right] windows the query is evaluated over.
//
//	for (t = init; cond(t); t += step) {
//	    WindowIs(Stream, left(t), right(t));
//	    ...
//	}
//
// Bounds are linear expressions a*t + b*ST + c where ST is the query's
// start time, covering all four of the paper's examples: snapshot,
// landmark, sliding/hopping, and temporal band-join windows, plus
// backward-moving windows (negative step).
package window

import (
	"fmt"
	"math"

	"telegraphcq/internal/tuple"
)

// LinExpr is a*t + b*ST + c over the loop variable and the query start
// time. All window arithmetic is integral: logical time counts sequence
// numbers, physical time counts nanoseconds.
type LinExpr struct {
	TCoef  int64
	STCoef int64
	Const  int64
}

// ConstExpr returns the constant expression c.
func ConstExpr(c int64) LinExpr { return LinExpr{Const: c} }

// TExpr returns the expression t + c.
func TExpr(c int64) LinExpr { return LinExpr{TCoef: 1, Const: c} }

// STExpr returns the expression ST + c.
func STExpr(c int64) LinExpr { return LinExpr{STCoef: 1, Const: c} }

// Eval computes the expression at loop value t and start time st.
func (e LinExpr) Eval(t, st int64) int64 {
	return e.TCoef*t + e.STCoef*st + e.Const
}

// DependsOnT reports whether the bound moves as the loop iterates.
func (e LinExpr) DependsOnT() bool { return e.TCoef != 0 }

func (e LinExpr) String() string {
	s := ""
	emit := func(coef int64, name string) {
		if coef == 0 {
			return
		}
		switch {
		case s == "" && coef == 1:
			s = name
		case s == "" && coef == -1:
			s = "-" + name
		case s == "":
			s = fmt.Sprintf("%d*%s", coef, name)
		case coef == 1:
			s += "+" + name
		case coef == -1:
			s += "-" + name
		case coef > 0:
			s += fmt.Sprintf("+%d*%s", coef, name)
		default:
			s += fmt.Sprintf("-%d*%s", -coef, name)
		}
	}
	emit(e.TCoef, "t")
	emit(e.STCoef, "ST")
	if e.Const != 0 || s == "" {
		if s == "" {
			s = fmt.Sprintf("%d", e.Const)
		} else if e.Const > 0 {
			s += fmt.Sprintf("+%d", e.Const)
		} else {
			s += fmt.Sprintf("%d", e.Const)
		}
	}
	return s
}

// CondOp is the comparison in the loop's continuation condition.
type CondOp uint8

const (
	CondTrue CondOp = iota // no condition: runs forever (continuous)
	CondEq
	CondLt
	CondLe
	CondGt
	CondGe
)

func (c CondOp) String() string {
	switch c {
	case CondTrue:
		return "true"
	case CondEq:
		return "=="
	case CondLt:
		return "<"
	case CondLe:
		return "<="
	case CondGt:
		return ">"
	case CondGe:
		return ">="
	}
	return "?"
}

// Cond is the continuation condition "t OP rhs".
type Cond struct {
	Op  CondOp
	RHS LinExpr // must not depend on t
}

// Holds evaluates the condition at loop value t and start time st.
func (c Cond) Holds(t, st int64) bool {
	if c.Op == CondTrue {
		return true
	}
	r := c.RHS.Eval(0, st)
	switch c.Op {
	case CondEq:
		return t == r
	case CondLt:
		return t < r
	case CondLe:
		return t <= r
	case CondGt:
		return t > r
	case CondGe:
		return t >= r
	}
	return false
}

// Def is one WindowIs statement: the window on a named stream.
type Def struct {
	Stream string
	Left   LinExpr
	Right  LinExpr // inclusive
}

func (d Def) String() string {
	return fmt.Sprintf("WindowIs(%s, %s, %s)", d.Stream, d.Left, d.Right)
}

// Spec is the whole for-loop construct for one group of streams sharing
// transition behaviour (the paper allows one for-loop per such group).
type Spec struct {
	Domain tuple.Domain
	Init   LinExpr // must not depend on t
	Cond   Cond
	Step   int64 // t += Step each iteration; may be negative (backward)
	Defs   []Def
}

// Validate rejects specs that cannot make progress or whose bounds are
// malformed.
func (s *Spec) Validate() error {
	if s.Init.DependsOnT() {
		return fmt.Errorf("window init depends on t")
	}
	if s.Cond.RHS.DependsOnT() {
		return fmt.Errorf("window condition depends on t")
	}
	if len(s.Defs) == 0 {
		return fmt.Errorf("window spec has no WindowIs statements")
	}
	seen := map[string]bool{}
	for _, d := range s.Defs {
		if d.Stream == "" {
			return fmt.Errorf("WindowIs with empty stream name")
		}
		if seen[d.Stream] {
			return fmt.Errorf("duplicate WindowIs for stream %s", d.Stream)
		}
		seen[d.Stream] = true
	}
	if s.Step == 0 {
		// A zero step only terminates via an equality condition that the
		// second iteration fails, or never; require one-shot shape.
		if s.Cond.Op != CondEq {
			return fmt.Errorf("zero step requires a one-shot (==) condition")
		}
	}
	// Non-terminating snapshot idiom like "t==0; t=-1" is fine: step -1
	// breaks equality. Detect steps that move away from a bounded cond
	// yet can never falsify it.
	if s.Step > 0 && (s.Cond.Op == CondGt || s.Cond.Op == CondGe) {
		// t grows and condition is t > X: never terminates, which is a
		// continuous query; allowed.
		return nil
	}
	return nil
}

// Kind classifies the window sequence; the executor and the aggregate
// operator pick algorithms by it (§4.1.2: landmark MAX is O(1) state,
// sliding MAX must retain the window).
type Kind uint8

const (
	KindSnapshot Kind = iota // executes exactly once
	KindLandmark             // fixed left, moving right
	KindSliding              // both ends move forward
	KindBackward             // windows move toward the past
	KindMixed                // defs differ in behaviour
)

func (k Kind) String() string {
	switch k {
	case KindSnapshot:
		return "snapshot"
	case KindLandmark:
		return "landmark"
	case KindSliding:
		return "sliding"
	case KindBackward:
		return "backward"
	default:
		return "mixed"
	}
}

// Classify reports the spec's window kind and, for sliding windows, the
// width and hop. A hop larger than the width means portions of the
// stream are never examined (§4.1.2); callers can warn on it.
func (s *Spec) Classify() (kind Kind, width, hop int64) {
	oneShot := s.Cond.Op == CondEq
	if oneShot {
		return KindSnapshot, 0, 0
	}
	if s.Step < 0 {
		return KindBackward, 0, -s.Step
	}
	var k Kind
	set := false
	for _, d := range s.Defs {
		var dk Kind
		switch {
		case !d.Left.DependsOnT() && d.Right.DependsOnT():
			dk = KindLandmark
		case d.Left.DependsOnT() && d.Right.DependsOnT():
			dk = KindSliding
		default:
			dk = KindSnapshot // static window repeated
		}
		if !set {
			k, set = dk, true
		} else if dk != k {
			return KindMixed, 0, 0
		}
	}
	if k == KindSliding {
		// width from any def (they share transition behaviour).
		d := s.Defs[0]
		width = d.Right.Eval(0, 0) - d.Left.Eval(0, 0) + 1
		hop = s.Step * d.Right.TCoef
	}
	return k, width, hop
}

// Instance is one iteration of the loop: a concrete window per stream.
type Instance struct {
	T      int64
	Ranges map[string]Range
}

// Range is a closed interval of instants in the spec's time domain.
type Range struct{ Left, Right int64 }

// Contains reports whether instant x falls in the range.
func (r Range) Contains(x int64) bool { return x >= r.Left && x <= r.Right }

// Empty reports whether the range contains no instants.
func (r Range) Empty() bool { return r.Left > r.Right }

// Sequence iterates the window instances of a spec, bound to a start
// time. It is a pure state machine: arrival-driven execution lives in the
// operator package.
type Sequence struct {
	spec *Spec
	st   int64
	t    int64
	done bool
}

// NewSequence binds a spec to a start time ST.
func NewSequence(spec *Spec, st int64) *Sequence {
	return &Sequence{spec: spec, st: st, t: spec.Init.Eval(0, st)}
}

// Next yields the next window instance, or ok=false when the loop
// condition fails. A CondTrue spec never returns false.
func (s *Sequence) Next() (Instance, bool) {
	if s.done || !s.spec.Cond.Holds(s.t, s.st) {
		s.done = true
		return Instance{}, false
	}
	inst := Instance{T: s.t, Ranges: make(map[string]Range, len(s.spec.Defs))}
	for _, d := range s.spec.Defs {
		inst.Ranges[d.Stream] = Range{
			Left:  d.Left.Eval(s.t, s.st),
			Right: d.Right.Eval(s.t, s.st),
		}
	}
	if s.spec.Step == 0 {
		s.done = true // one-shot
	} else {
		s.t += s.spec.Step
	}
	return inst, true
}

// Peek returns the current loop value without advancing.
func (s *Sequence) Peek() int64 { return s.t }

// MaxRight returns the largest right bound across streams for the
// *current* instance, or math.MinInt64 when the loop has ended. The
// executor uses it to decide when enough data has arrived to close the
// window.
func (s *Sequence) MaxRight() int64 {
	if s.done || !s.spec.Cond.Holds(s.t, s.st) {
		return math.MinInt64
	}
	max := int64(math.MinInt64)
	for _, d := range s.spec.Defs {
		if r := d.Right.Eval(s.t, s.st); r > max {
			max = r
		}
	}
	return max
}
