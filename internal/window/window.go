// Package window implements the TelegraphCQ windowing construct (§4.1):
// a for-loop over a time variable t that declares, per input stream, the
// sequence of [left, right] windows the query is evaluated over.
//
//	for (t = init; cond(t); t += step) {
//	    WindowIs(Stream, left(t), right(t));
//	    ...
//	}
//
// Bounds are linear expressions a*t + b*ST + c where ST is the query's
// start time, covering all four of the paper's examples: snapshot,
// landmark, sliding/hopping, and temporal band-join windows, plus
// backward-moving windows (negative step).
package window

import (
	"fmt"
	"math"

	"telegraphcq/internal/tuple"
)

// LinExpr is a*t + b*ST + c over the loop variable and the query start
// time. All window arithmetic is integral: logical time counts sequence
// numbers, physical time counts nanoseconds.
type LinExpr struct {
	TCoef  int64
	STCoef int64
	Const  int64
}

// ConstExpr returns the constant expression c.
func ConstExpr(c int64) LinExpr { return LinExpr{Const: c} }

// TExpr returns the expression t + c.
func TExpr(c int64) LinExpr { return LinExpr{TCoef: 1, Const: c} }

// STExpr returns the expression ST + c.
func STExpr(c int64) LinExpr { return LinExpr{STCoef: 1, Const: c} }

// Eval computes the expression at loop value t and start time st.
func (e LinExpr) Eval(t, st int64) int64 {
	return e.TCoef*t + e.STCoef*st + e.Const
}

// DependsOnT reports whether the bound moves as the loop iterates.
func (e LinExpr) DependsOnT() bool { return e.TCoef != 0 }

func (e LinExpr) String() string {
	s := ""
	emit := func(coef int64, name string) {
		if coef == 0 {
			return
		}
		switch {
		case s == "" && coef == 1:
			s = name
		case s == "" && coef == -1:
			s = "-" + name
		case s == "":
			s = fmt.Sprintf("%d*%s", coef, name)
		case coef == 1:
			s += "+" + name
		case coef == -1:
			s += "-" + name
		case coef > 0:
			s += fmt.Sprintf("+%d*%s", coef, name)
		default:
			s += fmt.Sprintf("-%d*%s", -coef, name)
		}
	}
	emit(e.TCoef, "t")
	emit(e.STCoef, "ST")
	if e.Const != 0 || s == "" {
		if s == "" {
			s = fmt.Sprintf("%d", e.Const)
		} else if e.Const > 0 {
			s += fmt.Sprintf("+%d", e.Const)
		} else {
			s += fmt.Sprintf("%d", e.Const)
		}
	}
	return s
}

// CondOp is the comparison in the loop's continuation condition.
type CondOp uint8

const (
	CondTrue CondOp = iota // no condition: runs forever (continuous)
	CondEq
	CondLt
	CondLe
	CondGt
	CondGe
)

func (c CondOp) String() string {
	switch c {
	case CondTrue:
		return "true"
	case CondEq:
		return "=="
	case CondLt:
		return "<"
	case CondLe:
		return "<="
	case CondGt:
		return ">"
	case CondGe:
		return ">="
	}
	return "?"
}

// Cond is the continuation condition "t OP rhs".
type Cond struct {
	Op  CondOp
	RHS LinExpr // must not depend on t
}

// Holds evaluates the condition at loop value t and start time st.
func (c Cond) Holds(t, st int64) bool {
	if c.Op == CondTrue {
		return true
	}
	r := c.RHS.Eval(0, st)
	switch c.Op {
	case CondEq:
		return t == r
	case CondLt:
		return t < r
	case CondLe:
		return t <= r
	case CondGt:
		return t > r
	case CondGe:
		return t >= r
	}
	return false
}

// Def is one WindowIs statement: the window on a named stream.
type Def struct {
	Stream string
	Left   LinExpr
	Right  LinExpr // inclusive
}

func (d Def) String() string {
	return fmt.Sprintf("WindowIs(%s, %s, %s)", d.Stream, d.Left, d.Right)
}

// Spec is the whole for-loop construct for one group of streams sharing
// transition behaviour (the paper allows one for-loop per such group).
type Spec struct {
	Domain tuple.Domain
	Init   LinExpr // must not depend on t
	Cond   Cond
	Step   int64 // t += Step each iteration; may be negative (backward)
	Defs   []Def
}

// Validate rejects specs that cannot make progress or whose bounds are
// malformed.
func (s *Spec) Validate() error {
	if s.Init.DependsOnT() {
		return fmt.Errorf("window init depends on t")
	}
	if s.Cond.RHS.DependsOnT() {
		return fmt.Errorf("window condition depends on t")
	}
	if len(s.Defs) == 0 {
		return fmt.Errorf("window spec has no WindowIs statements")
	}
	seen := map[string]bool{}
	for _, d := range s.Defs {
		if d.Stream == "" {
			return fmt.Errorf("WindowIs with empty stream name")
		}
		if seen[d.Stream] {
			return fmt.Errorf("duplicate WindowIs for stream %s", d.Stream)
		}
		seen[d.Stream] = true
	}
	if s.Step == 0 {
		// A zero step only terminates via an equality condition that the
		// second iteration fails, or never; require one-shot shape.
		if s.Cond.Op != CondEq {
			return fmt.Errorf("zero step requires a one-shot (==) condition")
		}
	}
	// A bounded condition must be falsifiable by the step direction.
	// "t > X" with a growing t (or "t < X" with a shrinking one) either
	// fails on the first iteration or holds forever — there is no third
	// outcome, so the bound is dead weight and a sequence consumer (the
	// archive scanner, the aggregate operator) would loop without end.
	// CondTrue is the explicit way to declare a continuous loop, and the
	// snapshot idiom "t == X; t += s" terminates by breaking equality.
	if s.Step > 0 && (s.Cond.Op == CondGt || s.Cond.Op == CondGe) {
		return fmt.Errorf("window condition t %s %s can never fail with step +%d (use no condition for a continuous window)",
			s.Cond.Op, s.Cond.RHS, s.Step)
	}
	if s.Step < 0 && (s.Cond.Op == CondLt || s.Cond.Op == CondLe) {
		return fmt.Errorf("window condition t %s %s can never fail with step %d (use no condition for a continuous window)",
			s.Cond.Op, s.Cond.RHS, s.Step)
	}
	return nil
}

// Kind classifies the window sequence; the executor and the aggregate
// operator pick algorithms by it (§4.1.2: landmark MAX is O(1) state,
// sliding MAX must retain the window).
type Kind uint8

const (
	KindSnapshot Kind = iota // executes exactly once
	KindLandmark             // fixed left, moving right
	KindSliding              // both ends move forward
	KindBackward             // windows move toward the past
	KindMixed                // defs differ in behaviour
)

func (k Kind) String() string {
	switch k {
	case KindSnapshot:
		return "snapshot"
	case KindLandmark:
		return "landmark"
	case KindSliding:
		return "sliding"
	case KindBackward:
		return "backward"
	default:
		return "mixed"
	}
}

// ClassifyDef classifies one WindowIs definition under the spec's
// transition behaviour. width is the window's fixed extent (instants
// spanned, inclusive) when both bounds move together — sliding, backward
// and static windows are "rigid" this way; landmark windows grow, so
// their width is reported as 0 ("unbounded"). hop is how far the right
// edge moves per iteration (always reported as a magnitude).
func (s *Spec) ClassifyDef(d Def) (kind Kind, width, hop int64) {
	rigid := d.Left.TCoef == d.Right.TCoef && d.Left.STCoef == d.Right.STCoef
	if rigid {
		width = d.Right.Const - d.Left.Const + 1
		if width < 0 {
			width = 0 // inverted bounds: an always-empty window
		}
	}
	if s.Cond.Op == CondEq {
		return KindSnapshot, width, 0 // one-shot: the loop body runs once
	}
	hop = s.Step * d.Right.TCoef
	if hop < 0 {
		hop = -hop
	}
	switch {
	case s.Step < 0:
		kind = KindBackward
	case !d.Left.DependsOnT() && d.Right.DependsOnT():
		kind = KindLandmark
	case d.Left.DependsOnT() && d.Right.DependsOnT():
		kind = KindSliding
	default:
		kind = KindSnapshot // static window repeated
	}
	return kind, width, hop
}

// Classify reports the spec's window kind and, for rigid windows, the
// width and hop. Kind, width and hop are derived per WindowIs definition
// (a band join may declare different widths per stream); when the
// definitions disagree the spec is KindMixed and callers must fall back
// to ClassifyDef (or Retention) for per-stream decisions. A hop larger
// than the width means portions of the stream are never examined
// (§4.1.2); callers can warn on it.
func (s *Spec) Classify() (kind Kind, width, hop int64) {
	if len(s.Defs) == 0 {
		return KindMixed, 0, 0
	}
	kind, width, hop = s.ClassifyDef(s.Defs[0])
	for _, d := range s.Defs[1:] {
		dk, dw, dh := s.ClassifyDef(d)
		if dk != kind || dw != width || dh != hop {
			return KindMixed, 0, 0
		}
	}
	return kind, width, hop
}

// Retention returns how many trailing instants of stream the executor
// must keep reachable for this window: the per-definition width for
// rigid forward-moving (sliding) windows, math.MaxInt64 when the window
// can reach arbitrarily far back (landmark and snapshot anchor their
// left edge; backward windows browse history). Shared-state eviction
// uses it per stream — the two sides of a band join may retain
// different amounts.
func (s *Spec) Retention(stream string) int64 {
	for _, d := range s.Defs {
		if d.Stream != stream {
			continue
		}
		if kind, width, _ := s.ClassifyDef(d); kind == KindSliding && width > 0 {
			return width
		}
		return math.MaxInt64
	}
	return math.MaxInt64
}

// Instance is one iteration of the loop: a concrete window per stream.
type Instance struct {
	T      int64
	Ranges map[string]Range
}

// Range is a closed interval of instants in the spec's time domain.
type Range struct{ Left, Right int64 }

// Contains reports whether instant x falls in the range.
func (r Range) Contains(x int64) bool { return x >= r.Left && x <= r.Right }

// Empty reports whether the range contains no instants.
func (r Range) Empty() bool { return r.Left > r.Right }

// Sequence iterates the window instances of a spec, bound to a start
// time. It is a pure state machine: arrival-driven execution lives in the
// operator package.
type Sequence struct {
	spec *Spec
	st   int64
	t    int64
	done bool
}

// NewSequence binds a spec to a start time ST.
func NewSequence(spec *Spec, st int64) *Sequence {
	return &Sequence{spec: spec, st: st, t: spec.Init.Eval(0, st)}
}

// Next yields the next window instance, or ok=false when the loop
// condition fails. A CondTrue spec never returns false.
func (s *Sequence) Next() (Instance, bool) {
	if s.done || !s.spec.Cond.Holds(s.t, s.st) {
		s.done = true
		return Instance{}, false
	}
	inst := Instance{T: s.t, Ranges: make(map[string]Range, len(s.spec.Defs))}
	for _, d := range s.spec.Defs {
		inst.Ranges[d.Stream] = Range{
			Left:  d.Left.Eval(s.t, s.st),
			Right: d.Right.Eval(s.t, s.st),
		}
	}
	if s.spec.Step == 0 {
		s.done = true // one-shot
	} else {
		s.t += s.spec.Step
	}
	return inst, true
}

// Peek returns the current loop value without advancing.
func (s *Sequence) Peek() int64 { return s.t }

// MaxRight returns the largest right bound across streams for the
// *current* instance, or math.MinInt64 when the loop has ended. The
// executor uses it to decide when enough data has arrived to close the
// window.
func (s *Sequence) MaxRight() int64 {
	if s.done || !s.spec.Cond.Holds(s.t, s.st) {
		return math.MinInt64
	}
	max := int64(math.MinInt64)
	for _, d := range s.spec.Defs {
		if r := d.Right.Eval(s.t, s.st); r > max {
			max = r
		}
	}
	return max
}
