package window

import (
	"math"
	"testing"
)

// TestValidateTermination exercises every condition-operator /
// step-sign combination: a bounded condition the step direction can
// never falsify is rejected (the dead check this pins used to return
// nil on both paths).
func TestValidateTermination(t *testing.T) {
	mk := func(op CondOp, step int64) *Spec {
		return &Spec{
			Init: ConstExpr(10),
			Cond: Cond{Op: op, RHS: ConstExpr(100)},
			Step: step,
			Defs: []Def{{Stream: "S", Left: TExpr(-4), Right: TExpr(0)}},
		}
	}
	cases := []struct {
		name string
		op   CondOp
		step int64
		ok   bool
	}{
		{"true/pos", CondTrue, 1, true},   // explicit continuous
		{"true/neg", CondTrue, -1, true},  // continuous, backward
		{"eq/pos", CondEq, 1, true},       // snapshot idiom: step breaks equality
		{"eq/neg", CondEq, -1, true},      // snapshot idiom, backward step
		{"eq/zero", CondEq, 0, true},      // one-shot
		{"lt/pos", CondLt, 1, true},       // t grows toward the bound
		{"lt/neg", CondLt, -1, false},     // t shrinks: t < X never fails
		{"le/pos", CondLe, 1, true},       //
		{"le/neg", CondLe, -1, false},     // t <= X never fails
		{"gt/pos", CondGt, 1, false},      // t > X never fails
		{"gt/neg", CondGt, -1, true},      // backward browsing toward the bound
		{"ge/pos", CondGe, 1, false},      // t >= X never fails
		{"ge/neg", CondGe, -1, true},      //
		{"lt/zero", CondLt, 0, false},     // zero step needs ==
		{"gt/zero", CondGt, 0, false},     //
		{"true/zero", CondTrue, 0, false}, //
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mk(tc.op, tc.step).Validate()
			if tc.ok && err != nil {
				t.Fatalf("valid spec rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("non-terminating spec (t %s 100; t += %d) validated", tc.op, tc.step)
			}
		})
	}
	// The presets must all stay valid.
	for _, s := range []*Spec{
		Snapshot("S", 1, 5),
		Landmark("S", 1, 1, 10),
		Sliding("S", 5, 2, 10),
		Sliding("S", 5, 2, 0), // continuous
		BandJoin("a", "b", 5, 10),
		Backward("S", 5, 2, 3),
	} {
		if err := s.Validate(); err != nil {
			t.Fatalf("preset rejected: %v", err)
		}
	}
}

// TestClassifyBackwardWidth pins the Classify bug that reported width=0
// for every backward window.
func TestClassifyBackwardWidth(t *testing.T) {
	spec := Backward("S", 5, 2, 3) // windows of 5 instants, hopping back 2
	kind, width, hop := spec.Classify()
	if kind != KindBackward {
		t.Fatalf("kind = %v, want backward", kind)
	}
	if width != 5 {
		t.Fatalf("backward width = %d, want 5", width)
	}
	if hop != 2 {
		t.Fatalf("backward hop = %d, want 2", hop)
	}
}

// TestClassifyPerDef pins the bug where sliding width/hop came from
// Defs[0] only: a band join with asymmetric widths must not report the
// first stream's width for both, and per-def classification must still
// see each side's true extent.
func TestClassifyPerDef(t *testing.T) {
	spec := BandJoin("a", "b", 3, 0)
	spec.Defs[1].Left = TExpr(-6) // b keeps 7 instants, a keeps 3

	kind, width, hop := spec.Classify()
	if kind != KindMixed || width != 0 || hop != 0 {
		t.Fatalf("asymmetric band join Classify = (%v, %d, %d), want (mixed, 0, 0)", kind, width, hop)
	}

	ka, wa, ha := spec.ClassifyDef(spec.Defs[0])
	kb, wb, hb := spec.ClassifyDef(spec.Defs[1])
	if ka != KindSliding || wa != 3 || ha != 1 {
		t.Fatalf("def a = (%v, %d, %d), want (sliding, 3, 1)", ka, wa, ha)
	}
	if kb != KindSliding || wb != 7 || hb != 1 {
		t.Fatalf("def b = (%v, %d, %d), want (sliding, 7, 1)", kb, wb, hb)
	}

	if r := spec.Retention("a"); r != 3 {
		t.Fatalf("Retention(a) = %d, want 3", r)
	}
	if r := spec.Retention("b"); r != 7 {
		t.Fatalf("Retention(b) = %d, want 7", r)
	}
	// Unknown streams and growing windows retain everything.
	if r := spec.Retention("zzz"); r != math.MaxInt64 {
		t.Fatalf("Retention(zzz) = %d, want MaxInt64", r)
	}
	if r := Landmark("S", 1, 1, 10).Retention("S"); r != math.MaxInt64 {
		t.Fatalf("landmark Retention = %d, want MaxInt64", r)
	}
}

// TestClassifyAgreeingDefs: a symmetric band join still classifies as a
// single sliding kind with one width/hop.
func TestClassifyAgreeingDefs(t *testing.T) {
	kind, width, hop := BandJoin("a", "b", 5, 10).Classify()
	if kind != KindSliding || width != 5 || hop != 1 {
		t.Fatalf("band join Classify = (%v, %d, %d), want (sliding, 5, 1)", kind, width, hop)
	}
	kind, width, hop = Sliding("S", 8, 3, 0).Classify()
	if kind != KindSliding || width != 8 || hop != 3 {
		t.Fatalf("sliding Classify = (%v, %d, %d), want (sliding, 8, 3)", kind, width, hop)
	}
	if kind, _, _ := Landmark("S", 1, 1, 10).Classify(); kind != KindLandmark {
		t.Fatalf("landmark Classify = %v", kind)
	}
	if kind, _, _ := Snapshot("S", 1, 5).Classify(); kind != KindSnapshot {
		t.Fatalf("snapshot Classify = %v", kind)
	}
}
