// Package stem implements State Modules (SteMs, §2.2; Raman et al. ICDE
// 2003): temporary repositories of homogeneous tuples, each "half of a
// traditional join operator". A SteM supports insert (build), search
// (probe), and eviction, optionally accelerated by a hash index on a key
// expression. Eddies route build and probe tuples through SteMs to
// compose symmetric hash joins, asynchronous index joins, and hybrids of
// the two at runtime.
//
// A SteM is owned by a single Execution Object and is not synchronized;
// Flux partitions each own a private SteM.
package stem

import (
	"fmt"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

// Stats counts SteM activity for routing policies and experiments.
type Stats struct {
	Builds      int64
	Probes      int64
	Matches     int64
	Evicted     int64
	IndexProbes int64
	ScanProbes  int64
}

// SteM stores tuples spanning one set of sources (homogeneous). With a
// key expression it maintains a hash index; probes whose ProbeSpec carries
// a matching key expression use it, others fall back to scanning.
type SteM struct {
	name    string
	keyExpr expr.Expr // expression over *stored* tuples; nil = no index

	entries []*entry
	index   map[uint64][]*entry
	live    int
	stats   Stats
}

type entry struct {
	t       *tuple.Tuple
	key     uint64
	arrival int64
	dead    bool
}

// New creates a SteM named after the source(s) it stores. keyExpr, when
// non-nil, is evaluated over stored tuples to maintain the hash index
// (e.g. the join column for an equi-join).
func New(name string, keyExpr expr.Expr) *SteM {
	s := &SteM{name: name, keyExpr: keyExpr}
	if keyExpr != nil {
		s.index = make(map[uint64][]*entry)
	}
	return s
}

// Name returns the SteM's name ("SteM(S)" style naming is the caller's).
func (s *SteM) Name() string { return s.name }

// Indexed reports whether the SteM maintains a hash index.
func (s *SteM) Indexed() bool { return s.keyExpr != nil }

// Size returns the number of live stored tuples.
func (s *SteM) Size() int { return s.live }

// Stats returns a copy of the activity counters.
func (s *SteM) Stats() Stats { return s.stats }

// Build inserts t into the SteM.
func (s *SteM) Build(t *tuple.Tuple) error {
	t.Retain() // stored join state outlives the routing pass
	e := &entry{t: t, arrival: t.Arrival}
	if s.keyExpr != nil {
		v, err := s.keyExpr.Eval(t)
		if err != nil {
			return fmt.Errorf("stem %s: build key: %w", s.name, err)
		}
		e.key = v.Hash()
		s.index[e.key] = append(s.index[e.key], e)
	}
	s.entries = append(s.entries, e)
	s.live++
	s.stats.Builds++
	return nil
}

// ProbeSpec describes how a probe tuple matches stored tuples.
type ProbeSpec struct {
	// KeyExpr, evaluated over the probe tuple, selects an index bucket.
	// It must correspond to the SteM's key expression (equality
	// predicate between the two). Nil forces a scan probe.
	KeyExpr expr.Expr
	// Residual is evaluated over the concatenated (probe ++ stored)
	// tuple; nil means no residual predicate. For scan probes this is
	// the entire join predicate.
	Residual expr.Expr
	// MaxArrival, when positive, restricts matches to stored tuples
	// that arrived strictly earlier. Symmetric joins use it so every
	// match is produced exactly once — by the later-arriving side.
	MaxArrival int64
}

// Probe searches for stored tuples matching p and returns the
// concatenations probe++stored. Matches satisfy the bucket equality (if
// indexed) and the residual predicate.
func (s *SteM) Probe(p *tuple.Tuple, spec ProbeSpec) ([]*tuple.Tuple, error) {
	s.stats.Probes++
	var candidates []*entry
	if spec.KeyExpr != nil && s.index != nil {
		v, err := spec.KeyExpr.Eval(p)
		if err != nil {
			return nil, fmt.Errorf("stem %s: probe key: %w", s.name, err)
		}
		candidates = s.index[v.Hash()]
		s.stats.IndexProbes++
	} else {
		candidates = s.entries
		s.stats.ScanProbes++
	}
	var out []*tuple.Tuple
	for _, e := range candidates {
		if e.dead {
			continue
		}
		if spec.MaxArrival > 0 && e.arrival >= spec.MaxArrival {
			continue
		}
		// Hash buckets can collide; verify key equality for indexed probes.
		if spec.KeyExpr != nil && s.index != nil {
			pv, err := spec.KeyExpr.Eval(p)
			if err != nil {
				return nil, err
			}
			sv, err := s.keyExpr.Eval(e.t)
			if err != nil {
				return nil, err
			}
			if !tuple.Equal(pv, sv) {
				continue
			}
		}
		j := tuple.Concat(p, e.t)
		if spec.Residual != nil {
			ok, err := expr.Truthy(spec.Residual, j)
			if err != nil {
				return nil, fmt.Errorf("stem %s: residual: %w", s.name, err)
			}
			if !ok {
				continue
			}
		}
		out = append(out, j)
	}
	s.stats.Matches += int64(len(out))
	return out, nil
}

// EvictBefore removes stored tuples whose logical sequence number is
// below seq (window eviction for sliding windows). Returns the count
// evicted.
func (s *SteM) EvictBefore(seq int64) int {
	return s.evict(func(t *tuple.Tuple) bool { return t.TS.Seq < seq })
}

// EvictOutside removes stored tuples whose instant in the given domain
// falls outside [left, right]. Tuples with no coordinate in the domain
// (tuple.NoInstant) belong to no window and are always evicted.
func (s *SteM) EvictOutside(d tuple.Domain, left, right int64) int {
	return s.evict(func(t *tuple.Tuple) bool {
		x := t.TS.Instant(d)
		return x < left || x > right
	})
}

// EvictWhere removes stored tuples for which pred returns true.
func (s *SteM) EvictWhere(pred func(*tuple.Tuple) bool) int { return s.evict(pred) }

func (s *SteM) evict(pred func(*tuple.Tuple) bool) int {
	n := 0
	for _, e := range s.entries {
		if !e.dead && pred(e.t) {
			e.dead = true
			s.live--
			n++
		}
	}
	s.stats.Evicted += int64(n)
	// Compact when at least half the entries are dead, amortizing O(1).
	if s.live*2 < len(s.entries) {
		s.compact()
	}
	return n
}

func (s *SteM) compact() {
	kept := s.entries[:0]
	for _, e := range s.entries {
		if !e.dead {
			kept = append(kept, e)
		}
	}
	// Zero the tail so evicted tuples become collectable.
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = nil
	}
	s.entries = kept
	if s.index != nil {
		for k := range s.index {
			delete(s.index, k)
		}
		for _, e := range s.entries {
			s.index[e.key] = append(s.index[e.key], e)
		}
	}
}

// ForEach visits every live stored tuple (snapshot scans for PSoup's
// new-query-over-old-data path).
func (s *SteM) ForEach(fn func(*tuple.Tuple) bool) {
	for _, e := range s.entries {
		if e.dead {
			continue
		}
		if !fn(e.t) {
			return
		}
	}
}

// All returns the live stored tuples in insertion order.
func (s *SteM) All() []*tuple.Tuple {
	out := make([]*tuple.Tuple, 0, s.live)
	s.ForEach(func(t *tuple.Tuple) bool { out = append(out, t); return true })
	return out
}

// Clear drops all stored tuples (used when a Flux partition's state is
// moved to another machine).
func (s *SteM) Clear() {
	s.entries = nil
	s.live = 0
	if s.index != nil {
		s.index = make(map[uint64][]*entry)
	}
}
