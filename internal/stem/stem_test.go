package stem

import (
	"fmt"
	"testing"
	"testing/quick"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

func schemaFor(src string) *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Source: src, Name: "k", Kind: tuple.KindInt},
		tuple.Column{Source: src, Name: "v", Kind: tuple.KindFloat},
	)
}

func mk(src string, seq int64, k int64, v float64) *tuple.Tuple {
	t := tuple.New(schemaFor(src), tuple.Int(k), tuple.Float(v))
	t.TS = tuple.Timestamp{Seq: seq}
	return t
}

func TestBuildAndIndexedProbe(t *testing.T) {
	s := New("T", expr.Col("T", "k"))
	for i := int64(1); i <= 5; i++ {
		if err := s.Build(mk("T", i, i%3, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Size() != 5 || !s.Indexed() {
		t.Fatalf("Size=%d Indexed=%v", s.Size(), s.Indexed())
	}
	probe := mk("S", 9, 1, 0)
	got, err := s.Probe(probe, ProbeSpec{KeyExpr: expr.Col("S", "k")})
	if err != nil {
		t.Fatal(err)
	}
	// stored k values: 1,2,0,1,2 → k=1 matches seq 1 and 4
	if len(got) != 2 {
		t.Fatalf("matches = %d, want 2", len(got))
	}
	for _, j := range got {
		if j.Schema.Arity() != 4 {
			t.Fatalf("concat arity = %d", j.Schema.Arity())
		}
		ki, _ := j.Schema.ColumnIndex("T", "k")
		if j.Values[ki].I != 1 {
			t.Fatalf("wrong match: %v", j)
		}
	}
	st := s.Stats()
	if st.Builds != 5 || st.Probes != 1 || st.Matches != 2 || st.IndexProbes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScanProbeWithResidual(t *testing.T) {
	s := New("T", nil) // unindexed
	for i := int64(1); i <= 10; i++ {
		_ = s.Build(mk("T", i, i, float64(i)))
	}
	probe := mk("S", 1, 0, 5)
	// band predicate: T.v > S.v
	res := expr.Bin(expr.OpGt, expr.Col("T", "v"), expr.Col("S", "v"))
	got, err := s.Probe(probe, ProbeSpec{Residual: res})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // v in 6..10
		t.Fatalf("matches = %d, want 5", len(got))
	}
	if s.Stats().ScanProbes != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestIndexedProbeWithResidual(t *testing.T) {
	s := New("T", expr.Col("T", "k"))
	_ = s.Build(mk("T", 1, 7, 1))
	_ = s.Build(mk("T", 2, 7, 9))
	probe := mk("S", 1, 7, 5)
	res := expr.Bin(expr.OpGt, expr.Col("T", "v"), expr.Col("S", "v"))
	got, err := s.Probe(probe, ProbeSpec{KeyExpr: expr.Col("S", "k"), Residual: res})
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d, %v", len(got), err)
	}
}

func TestProbeEmptySteM(t *testing.T) {
	s := New("T", expr.Col("T", "k"))
	got, err := s.Probe(mk("S", 1, 1, 1), ProbeSpec{KeyExpr: expr.Col("S", "k")})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestHashCollisionVerified(t *testing.T) {
	// Force all keys into one bucket by using a constant-hash scenario:
	// different int keys rarely collide, so instead verify via cross-kind
	// equality: Int(5) and Float(5.0) must match each other but not 6.
	s := New("T", expr.Col("T", "k"))
	_ = s.Build(mk("T", 1, 5, 1))
	_ = s.Build(mk("T", 2, 6, 1))
	ps := tuple.NewSchema(tuple.Column{Source: "S", Name: "k", Kind: tuple.KindFloat})
	probe := tuple.New(ps, tuple.Float(5.0))
	got, err := s.Probe(probe, ProbeSpec{KeyExpr: expr.Col("S", "k")})
	if err != nil || len(got) != 1 {
		t.Fatalf("cross-kind probe: %d, %v", len(got), err)
	}
}

func TestEvictBefore(t *testing.T) {
	s := New("T", expr.Col("T", "k"))
	for i := int64(1); i <= 10; i++ {
		_ = s.Build(mk("T", i, 1, float64(i)))
	}
	if n := s.EvictBefore(6); n != 5 {
		t.Fatalf("evicted %d, want 5", n)
	}
	if s.Size() != 5 {
		t.Fatalf("Size = %d", s.Size())
	}
	got, _ := s.Probe(mk("S", 99, 1, 0), ProbeSpec{KeyExpr: expr.Col("S", "k")})
	if len(got) != 5 {
		t.Fatalf("post-evict matches = %d", len(got))
	}
	for _, j := range got {
		vi, _ := j.Schema.ColumnIndex("T", "v")
		if j.Values[vi].F < 6 {
			t.Fatalf("evicted tuple matched: %v", j)
		}
	}
}

func TestEvictOutside(t *testing.T) {
	s := New("T", nil)
	for i := int64(1); i <= 10; i++ {
		_ = s.Build(mk("T", i, i, 0))
	}
	n := s.EvictOutside(tuple.LogicalTime, 3, 7)
	if n != 5 || s.Size() != 5 {
		t.Fatalf("evicted %d size %d", n, s.Size())
	}
	for _, tp := range s.All() {
		if tp.TS.Seq < 3 || tp.TS.Seq > 7 {
			t.Fatalf("survivor outside window: %d", tp.TS.Seq)
		}
	}
}

func TestEvictWhereAndCompaction(t *testing.T) {
	s := New("T", expr.Col("T", "k"))
	for i := int64(1); i <= 100; i++ {
		_ = s.Build(mk("T", i, i%10, 0))
	}
	n := s.EvictWhere(func(tp *tuple.Tuple) bool { return tp.TS.Seq%2 == 0 })
	if n != 50 || s.Size() != 50 {
		t.Fatalf("evicted %d size %d", n, s.Size())
	}
	// Index must still be correct after compaction.
	got, err := s.Probe(mk("S", 0, 3, 0), ProbeSpec{KeyExpr: expr.Col("S", "k")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // k=3 from odd seqs 3,13,...,93 → 5 of them... (3,13,23,...,93 =10, odd only → 3,13,...93 all odd)
		// seq with seq%10==3: 3,13,...,93 (10 tuples), evicted evens none (all odd) → 10
		t.Logf("matches=%d", len(got))
	}
	if len(got) != 10 {
		t.Fatalf("post-compaction matches = %d, want 10", len(got))
	}
}

func TestForEachEarlyStopAndAll(t *testing.T) {
	s := New("T", nil)
	for i := int64(1); i <= 4; i++ {
		_ = s.Build(mk("T", i, i, 0))
	}
	count := 0
	s.ForEach(func(*tuple.Tuple) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("ForEach visited %d", count)
	}
	if got := s.All(); len(got) != 4 || got[0].TS.Seq != 1 {
		t.Fatalf("All = %v", got)
	}
}

func TestClear(t *testing.T) {
	s := New("T", expr.Col("T", "k"))
	_ = s.Build(mk("T", 1, 1, 1))
	s.Clear()
	if s.Size() != 0 {
		t.Fatal("Clear left tuples")
	}
	got, _ := s.Probe(mk("S", 1, 1, 1), ProbeSpec{KeyExpr: expr.Col("S", "k")})
	if len(got) != 0 {
		t.Fatal("Clear left index entries")
	}
	// SteM remains usable.
	_ = s.Build(mk("T", 2, 1, 1))
	got, _ = s.Probe(mk("S", 1, 1, 1), ProbeSpec{KeyExpr: expr.Col("S", "k")})
	if len(got) != 1 {
		t.Fatal("SteM unusable after Clear")
	}
}

func TestBuildKeyError(t *testing.T) {
	s := New("T", expr.Col("T", "missing"))
	if err := s.Build(mk("T", 1, 1, 1)); err == nil {
		t.Fatal("build with bad key succeeded")
	}
}

func TestProbeKeyError(t *testing.T) {
	s := New("T", expr.Col("T", "k"))
	_ = s.Build(mk("T", 1, 1, 1))
	_, err := s.Probe(mk("S", 1, 1, 1), ProbeSpec{KeyExpr: expr.Col("S", "missing")})
	if err == nil {
		t.Fatal("probe with bad key succeeded")
	}
}

// Property: symmetric hash join via two SteMs equals nested-loop join.
func TestQuickSymmetricJoinEqualsNestedLoop(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		if len(aKeys) > 40 {
			aKeys = aKeys[:40]
		}
		if len(bKeys) > 40 {
			bKeys = bKeys[:40]
		}
		sa := New("A", expr.Col("A", "k"))
		sb := New("B", expr.Col("B", "k"))
		var joined int
		// Interleave arrivals: evens from A, odds from B (symmetric join).
		maxLen := len(aKeys)
		if len(bKeys) > maxLen {
			maxLen = len(bKeys)
		}
		for i := 0; i < maxLen; i++ {
			if i < len(aKeys) {
				ta := mk("A", int64(i), int64(aKeys[i]%8), 0)
				_ = sa.Build(ta)
				m, err := sb.Probe(ta, ProbeSpec{KeyExpr: expr.Col("A", "k")})
				if err != nil {
					return false
				}
				joined += len(m)
			}
			if i < len(bKeys) {
				tb := mk("B", int64(i), int64(bKeys[i]%8), 0)
				_ = sb.Build(tb)
				m, err := sa.Probe(tb, ProbeSpec{KeyExpr: expr.Col("B", "k")})
				if err != nil {
					return false
				}
				joined += len(m)
			}
		}
		// Nested loop ground truth.
		want := 0
		for _, a := range aKeys {
			for _, b := range bKeys {
				if a%8 == b%8 {
					want++
				}
			}
		}
		return joined == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexedProbe(b *testing.B) {
	s := New("T", expr.Col("T", "k"))
	for i := int64(0); i < 10000; i++ {
		_ = s.Build(mk("T", i, i%100, float64(i)))
	}
	probe := mk("S", 0, 50, 0)
	spec := ProbeSpec{KeyExpr: expr.Col("S", "k")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Probe(probe, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanProbe(b *testing.B) {
	s := New("T", nil)
	for i := int64(0); i < 1000; i++ {
		_ = s.Build(mk("T", i, i%100, float64(i)))
	}
	probe := mk("S", 0, 50, 0)
	spec := ProbeSpec{Residual: expr.Bin(expr.OpEq, expr.Col("T", "k"), expr.Col("S", "k"))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Probe(probe, spec); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf
