// Package fanout is the subscriber fan-out subsystem between the
// per-query egress Hub and client sessions. TelegraphCQ's egress
// modules (§4.3) hand each query's results to *one* push subscription;
// scaling to the roadmap's "millions of users" means the delivery point
// must stay O(1) per batch for the producing Execution Object no matter
// how many clients listen. The package provides:
//
//   - encode-once frames: each delivered batch is serialized to wire
//     form exactly once per query; subscribers share refcounted frames
//     instead of re-formatting per session;
//   - a fan-out tree of relay stages, so distribution cost is spread
//     over O(log N) relay goroutines instead of the EO;
//   - subscriber cohorts with shared cursors over the query's
//     egress.Spool, so late joiners and reconnecting clients replay
//     retained results off the hot path (the PSoup modality);
//   - per-subscriber QoS reusing the Fjord overflow policies, with
//     exactly-reconciling shed accounting.
//
// Frame ownership rules: a frame is created with one reference held by
// the encoder's caller. Every enqueue into a ring transfers one
// reference (taken with Retain before the attempt; a refused enqueue
// releases it). A consumer that dequeues a frame owns one reference and
// must Release it when done with the bytes. When the count reaches
// zero the frame's buffer returns to a pool. Frame bytes are immutable
// after Encode returns — holders may read, never write.
package fanout

import (
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/tuple"
)

// Frame is one encoded result batch shared by every subscriber of a
// query. Bytes are the wire form the server session writes verbatim
// ("row <id> <csv>\n" per result row).
type Frame struct {
	buf  []byte
	rows int
	// end is the query spool's offset one past this frame's last row
	// (0 when the query has no spool). Replay dedup keys on it: a
	// subscriber that replayed the spool through offset R skips live
	// frames with end <= R.
	end  int64
	seq  int64     // per-tree monotone frame number
	born time.Time // when the frame was encoded (delivery-latency clock)

	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// Bytes returns the encoded wire bytes. Read-only; valid until the
// holder's reference is Released.
func (f *Frame) Bytes() []byte { return f.buf }

// Rows returns how many result rows the frame encodes.
func (f *Frame) Rows() int { return f.rows }

// End returns the spool offset one past the frame's last row (0 when
// the query has no spool).
func (f *Frame) End() int64 { return f.end }

// Seq returns the frame's per-tree sequence number (replay frames use
// negative sequence numbers so they never collide with live ones).
func (f *Frame) Seq() int64 { return f.seq }

// Born returns the encode timestamp (the delivery-latency epoch).
func (f *Frame) Born() time.Time { return f.born }

// Retain adds a reference (one per ring the frame is about to enter).
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops a reference; the last one returns the buffer to the
// pool. Releasing more times than retained is a bug and panics.
func (f *Frame) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("fanout: Frame released more times than retained")
	}
	f.buf = f.buf[:0]
	f.rows = 0
	f.end = 0
	f.seq = 0
	f.born = time.Time{}
	framePool.Put(f)
}

// Encoder turns result batches into frames for one query, counting how
// many encode operations actually ran — the proof of encode-once: with
// N subscribers the live encode count tracks the number of delivered
// batches, not N times that.
type Encoder struct {
	prefix []byte // "row <id> " — the session wire preamble per row

	liveEncodes   atomic.Int64
	liveRows      atomic.Int64
	replayEncodes atomic.Int64
	replayRows    atomic.Int64
}

// NewEncoder builds an encoder whose frames carry the given per-row
// prefix (the server uses "row <id> "; tests may use anything).
func NewEncoder(prefix string) *Encoder {
	return &Encoder{prefix: []byte(prefix)}
}

// encode renders rows into a pooled frame (one reference, owned by the
// caller). The rows are only read; the caller keeps ownership.
func (e *Encoder) encode(rows []*tuple.Tuple, end, seq int64, replay bool) *Frame {
	f := framePool.Get().(*Frame)
	f.refs.Store(1)
	buf := f.buf[:0]
	for _, r := range rows {
		buf = append(buf, e.prefix...)
		buf = r.AppendText(buf)
		buf = append(buf, '\n')
	}
	f.buf = buf
	f.rows = len(rows)
	f.end = end
	f.seq = seq
	f.born = time.Now()
	if replay {
		e.replayEncodes.Add(1)
		e.replayRows.Add(int64(len(rows)))
	} else {
		e.liveEncodes.Add(1)
		e.liveRows.Add(int64(len(rows)))
	}
	return f
}

// LiveEncodes returns how many hot-path batch serializations have run.
func (e *Encoder) LiveEncodes() int64 { return e.liveEncodes.Load() }

// LiveRows returns the rows covered by live serializations.
func (e *Encoder) LiveRows() int64 { return e.liveRows.Load() }

// ReplayEncodes returns cohort catch-up serializations (off hot path).
func (e *Encoder) ReplayEncodes() int64 { return e.replayEncodes.Load() }

// ReplayRows returns the rows covered by replay serializations.
func (e *Encoder) ReplayRows() int64 { return e.replayRows.Load() }
