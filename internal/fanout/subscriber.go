package fanout

import (
	"math/rand"
	"sync/atomic"

	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// replayBatch bounds rows per replay frame (the consumer-side catch-up
// fetch granularity).
const replayBatch = 256

// Subscriber is one client's view of a query's fan-out: a bounded frame
// ring the leaf stage offers shared frames into under the subscriber's
// QoS policy, plus a consumer-driven replay cursor for cohort catch-up.
//
// The ring is a mutex queue, not SPSC, deliberately: drop-oldest
// eviction dequeues from the producer side and Close drains
// concurrently with the consumer — both violate the SPSC contract.
//
// Accounting invariant (the books QoS tests reconcile): every frame the
// leaf offers is eventually counted exactly once as consumed, dedup, or
// shed; at quiescence Offered == Consumed + Dedup + Shed.
type Subscriber struct {
	ID   int64
	t    *Tree
	ring fjord.Queue[*Frame]
	qos  fjord.QoS
	opts SubOptions
	rng  *rand.Rand // Sample policy draws (leaf goroutine only)

	cohort *Cohort

	// Consumer-side replay state (touched only by the consuming
	// goroutine): the half-open spool range still to catch up on, the
	// dedup watermark for live frames, and the fetch scratch.
	replayFrom int64
	replayEnd  int64
	skipBelow  int64
	replayBuf  []*tuple.Tuple
	replaySeq  int64

	offered       atomic.Int64
	shed          atomic.Int64
	blockTimeouts atomic.Int64
	consumed      atomic.Int64
	dedup         atomic.Int64
	replayed      atomic.Int64

	closed  atomic.Bool
	retired atomic.Bool
}

// offer runs on the leaf goroutine: admit the frame into the ring under
// the subscriber's overflow policy, keeping the books exact. Each
// reference transfer pairs with an eventual Release.
func (sub *Subscriber) offer(f *Frame) {
	sub.offered.Add(1)
	f.Retain()
	opts := fjord.OfferOpts{QoS: sub.qos}
	if sub.rng != nil {
		opts.Rand = sub.rng.Float64
	}
	res := fjord.Offer[*Frame](sub.ring, f, opts)
	if res.DidEvict {
		res.Evicted.Release()
		sub.shed.Add(1)
	}
	if !res.Accepted {
		f.Release()
		sub.shed.Add(1)
		if res.TimedOut {
			sub.blockTimeouts.Add(1)
		}
	}
}

// retireFrom finalizes a pruned subscriber's membership accounting
// (exactly once).
func (sub *Subscriber) retireFrom(t *Tree) {
	if sub.retired.CompareAndSwap(false, true) {
		t.nsubs.Add(-1)
	}
}

// NextFrame blocks for the next frame (replay catch-up first, then live
// delivery). ok is false once the subscription is closed and drained.
// The caller owns one reference to the returned frame and must Release
// it after writing the bytes.
func (sub *Subscriber) NextFrame() (*Frame, bool) {
	for {
		if f := sub.replayNext(); f != nil {
			return f, true
		}
		f, err := sub.ring.Dequeue()
		if err != nil {
			return nil, false
		}
		if sub.admit(f) {
			return f, true
		}
	}
}

// TryNextFrame is the non-blocking NextFrame (polling consumers).
func (sub *Subscriber) TryNextFrame() (*Frame, bool) {
	for {
		if f := sub.replayNext(); f != nil {
			return f, true
		}
		f, ok := sub.ring.TryDequeue()
		if !ok {
			return nil, false
		}
		if sub.admit(f) {
			return f, true
		}
	}
}

// admit decides a dequeued live frame's fate: frames at or below the
// replay watermark were already covered by catch-up and are skipped
// (spool appends are batch-atomic, so frame end offsets align with the
// watermark — a frame is entirely above or entirely at-or-below it).
func (sub *Subscriber) admit(f *Frame) bool {
	if f.end > 0 && f.end <= sub.skipBelow {
		sub.dedup.Add(1)
		f.Release()
		return false
	}
	sub.consumed.Add(1)
	if sub.cohort != nil && f.end > 0 {
		sub.cohort.advance(f.end)
	}
	return true
}

// replayNext produces the next catch-up frame from the spool, or nil
// when caught up. Replay encodes per subscriber — off the hot path by
// construction (it reads retained results, not the delivery stream).
func (sub *Subscriber) replayNext() *Frame {
	if sub.replayFrom >= sub.replayEnd {
		return nil
	}
	sp := sub.t.opts.Spool
	if sp == nil {
		sub.replayFrom = sub.replayEnd
		return nil
	}
	if sub.replayBuf == nil {
		n := replayBatch
		if span := sub.replayEnd - sub.replayFrom; span < int64(n) {
			n = int(span)
		}
		sub.replayBuf = make([]*tuple.Tuple, 0, n)
	}
	rows, next := sp.FetchInto(sub.replayBuf, sub.replayFrom)
	// Rows past the window belong to live delivery; rows aged out below
	// it are gone (the spool is bounded — that loss is by design).
	if next > sub.replayEnd {
		drop := next - sub.replayEnd
		if drop >= int64(len(rows)) {
			rows = rows[:0]
		} else {
			rows = rows[:int64(len(rows))-drop]
		}
		next = sub.replayEnd
	}
	sub.replayFrom = next
	if len(rows) == 0 {
		return nil
	}
	sub.replaySeq--
	f := sub.t.enc.encode(rows, next, sub.replaySeq, true)
	sub.replayed.Add(1)
	if sub.cohort != nil {
		sub.cohort.advance(next)
	}
	return f
}

// Err returns the query's terminal error, if the tree failed.
func (sub *Subscriber) Err() error { return sub.t.Err() }

// Closed reports whether Close ran (or the tree shut down under us —
// then the ring is closed but this still reports false until Close).
func (sub *Subscriber) Closed() bool { return sub.closed.Load() }

// Close detaches the subscriber: no more frames are offered (the leaf
// prunes it on its next delivery), and everything still buffered is
// drained, released, and counted as shed so the books stay balanced.
// Safe to call concurrently with a consumer blocked in NextFrame (the
// ring close wakes it).
func (sub *Subscriber) Close() {
	if !sub.closed.CompareAndSwap(false, true) {
		return
	}
	sub.ring.Close()
	for {
		f, ok := sub.ring.TryDequeue()
		if !ok {
			break
		}
		f.Release()
		sub.shed.Add(1)
	}
}

// SubStats is one subscriber's accounting snapshot.
type SubStats struct {
	ID            int64
	Cohort        string
	Policy        fjord.OverflowPolicy
	Offered       int64 // frames the leaf offered
	Shed          int64 // frames lost to the overflow policy (or close)
	BlockTimeouts int64 // Block waits that expired
	Consumed      int64 // live frames handed to the consumer
	Dedup         int64 // live frames skipped as replay duplicates
	Replayed      int64 // catch-up frames produced from the spool
	Pending       int64 // frames buffered in the ring right now
	Closed        bool
}

// Stats snapshots the subscriber's books.
func (sub *Subscriber) Stats() SubStats {
	return SubStats{
		ID:            sub.ID,
		Cohort:        sub.opts.Cohort,
		Policy:        sub.qos.Policy,
		Offered:       sub.offered.Load(),
		Shed:          sub.shed.Load(),
		BlockTimeouts: sub.blockTimeouts.Load(),
		Consumed:      sub.consumed.Load(),
		Dedup:         sub.dedup.Load(),
		Replayed:      sub.replayed.Load(),
		Pending:       int64(sub.ring.Len()),
		Closed:        sub.closed.Load(),
	}
}
