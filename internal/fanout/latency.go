package fanout

import (
	"math/bits"
	"time"
)

// histBuckets covers int64 nanoseconds in log-linear buckets: 4 linear
// sub-buckets per power-of-two octave, so relative bucket error is
// bounded by 25% across the full range (the resolution the C-SPARQL/
// CQELS-style latency methodology needs without per-sample storage).
const histBuckets = 248

// Histogram is a fixed-size log-linear latency histogram. It is NOT
// goroutine-safe: tcqload keeps one per worker and merges at the end,
// so the record path is a single array increment.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	max    int64
}

func bucketOf(v int64) int {
	if v < 1 {
		v = 1
	}
	b := bits.Len64(uint64(v)) - 1 // 0-based octave
	if b < 2 {
		return int(v) // 1..3 map to themselves
	}
	return (b-2)*4 + int((uint64(v)>>(uint(b)-2))&3) + 4
}

// bucketFloor returns the smallest value mapping to bucket i (the
// conservative bound percentile reporting quotes).
func bucketFloor(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	b := (i-4)/4 + 2
	sub := (i - 4) % 4
	return int64(1)<<uint(b) + int64(sub)<<uint(b-2)
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	h.counts[bucketOf(v)]++
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h (worker histograms → the report histogram).
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Max returns the largest recorded sample exactly.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Percentile returns the latency at quantile p in [0,1] (lower bucket
// bound; the true value is at most 25% above). Zero samples → 0.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return time.Duration(bucketFloor(i))
		}
	}
	return time.Duration(h.max)
}

// Buckets invokes fn for every non-empty bucket with its floor value
// and count (the CI artifact writer serializes them).
func (h *Histogram) Buckets(fn func(floor time.Duration, count uint64)) {
	for i, c := range h.counts {
		if c > 0 {
			fn(time.Duration(bucketFloor(i)), c)
		}
	}
}
