package fanout

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"

	"telegraphcq/internal/egress"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// ErrClosed reports an Attach against a closed (or failed) tree.
var ErrClosed = errors.New("fanout: tree closed")

// ErrFull reports that the tree is at its structural capacity
// (Degree² relays·leaves × LeafCap subscribers).
var ErrFull = errors.New("fanout: tree at subscriber capacity")

// Options configures one query's fan-out tree. The zero value gets the
// defaults noted per field.
type Options struct {
	// Query is the query id (labels telemetry rows).
	Query int
	// Prefix is the per-row wire preamble frames carry (the server uses
	// "row <id> ").
	Prefix string
	// Degree bounds children per relay stage (default 64).
	Degree int
	// LeafCap bounds subscribers per leaf stage (default 512). With the
	// defaults the tree holds Degree·Degree·LeafCap ≈ 2M subscribers.
	LeafCap int
	// StageQueue is the frame ring capacity between stages (default 256).
	StageQueue int
	// SubQueue is the default subscriber frame ring capacity (default 64).
	SubQueue int
	// Spool, when set, backs cohort replay: late joiners catch up from
	// the query's retained results instead of the hot path.
	Spool *egress.Spool
}

func (o *Options) defaults() {
	if o.Degree <= 0 {
		o.Degree = 64
	}
	if o.LeafCap <= 0 {
		o.LeafCap = 512
	}
	if o.StageQueue <= 0 {
		o.StageQueue = 256
	}
	if o.SubQueue <= 0 {
		o.SubQueue = 64
	}
}

// Tree is one query's fan-out: the producing EO publishes a batch once;
// the encoder turns it into one shared frame; relay stages spread the
// frame to leaves; each leaf offers it to its subscribers under their
// QoS policy. The structure is root → relays → leaves, all connected by
// SPSC frame rings (each ring has exactly one producing and one
// consuming stage goroutine).
//
// Tree implements egress.Publisher.
type Tree struct {
	opts Options
	enc  *Encoder
	root *stage

	mu      sync.Mutex
	relays  []*stage
	leaves  []*stage
	stages  []*stage // root + relays + leaves (Close/Pending iterate it)
	subs    map[int64]*Subscriber
	cohorts map[string]*Cohort
	closed  bool

	nextSub       atomic.Int64
	nsubs         atomic.Int64
	frameSeq      atomic.Int64
	published     atomic.Int64 // frames offered to the root ring
	publishedRows atomic.Int64
	skippedIdle   atomic.Int64 // publishes skipped because no one listens
	rootShed      atomic.Int64 // frames refused by a closed root ring
	failed        atomic.Value // error
}

// NewTree builds an empty fan-out tree.
func NewTree(opts Options) *Tree {
	opts.defaults()
	t := &Tree{
		opts:    opts,
		enc:     NewEncoder(opts.Prefix),
		subs:    map[int64]*Subscriber{},
		cohorts: map[string]*Cohort{},
	}
	t.root = t.newStage(false)
	return t
}

// Encoder exposes the tree's encoder (tests and tcqload read its
// encode-once counters).
func (t *Tree) Encoder() *Encoder { return t.enc }

// Subscribers returns the current live subscriber count.
func (t *Tree) Subscribers() int64 { return t.nsubs.Load() }

// ------------------------------------------------------------- stages

// stage is one relay node: a goroutine draining an SPSC frame ring and
// re-distributing each frame to its children (inner stages) or offering
// it to its subscribers (leaf stages). Fan-out membership is
// copy-on-write: the per-frame read is one atomic pointer load, and
// attach/prune rebuild the slice under mu.
type stage struct {
	t    *Tree
	in   *fjord.SPSC[*Frame]
	done chan struct{}
	leaf bool

	mu       sync.Mutex
	children atomic.Pointer[[]*stage]
	subs     atomic.Pointer[[]*Subscriber]
	nsubs    atomic.Int32 // leaf occupancy (attach capacity check)
	kids     int          // relay occupancy (guarded by Tree.mu)
}

func (t *Tree) newStage(leaf bool) *stage {
	s := &stage{
		t:    t,
		in:   fjord.NewSPSC[*Frame](t.opts.StageQueue),
		done: make(chan struct{}),
		leaf: leaf,
	}
	s.children.Store(&[]*stage{})
	s.subs.Store(&[]*Subscriber{})
	t.stages = append(t.stages, s)
	go s.run()
	return s
}

func (s *stage) run() {
	defer close(s.done)
	for {
		f, err := s.in.Dequeue()
		if err != nil {
			break
		}
		if s.leaf {
			s.deliverSubs(f)
		} else {
			s.deliverChildren(f)
		}
	}
	// Cascade shutdown: this stage's ring is closed and drained, so
	// close the downstream rings; children drain theirs in turn.
	if s.leaf {
		for _, sub := range *s.subs.Load() {
			sub.ring.Close()
		}
	} else {
		for _, c := range *s.children.Load() {
			c.in.Close()
		}
	}
}

// deliverChildren forwards one frame to every child stage. Stage-to-
// stage rings are lossless: the enqueue blocks (bounded by ring drain,
// not by client speed — loss policy lives only at the subscriber edge).
func (s *stage) deliverChildren(f *Frame) {
	for _, c := range *s.children.Load() {
		f.Retain()
		if c.in.Enqueue(f) != nil {
			f.Release() // child closed mid-cascade
		}
	}
	f.Release() // the reference our producer transferred
}

// deliverSubs offers one frame to every live subscriber under its QoS
// policy, then prunes subscribers that closed.
func (s *stage) deliverSubs(f *Frame) {
	pruned := false
	for _, sub := range *s.subs.Load() {
		if sub.closed.Load() {
			pruned = true
			continue
		}
		sub.offer(f)
	}
	f.Release()
	if pruned {
		s.prune()
	}
}

func (s *stage) addSub(sub *Subscriber) {
	s.mu.Lock()
	old := *s.subs.Load()
	ns := make([]*Subscriber, 0, len(old)+1)
	ns = append(append(ns, old...), sub)
	s.subs.Store(&ns)
	s.nsubs.Add(1)
	s.mu.Unlock()
}

// prune rebuilds the leaf's snapshot without closed subscribers. It
// runs on the leaf goroutine — the only goroutine that offers frames —
// so a pruned subscriber can never receive another offer.
func (s *stage) prune() {
	s.mu.Lock()
	old := *s.subs.Load()
	keep := make([]*Subscriber, 0, len(old))
	var gone []*Subscriber
	for _, sub := range old {
		if sub.closed.Load() {
			gone = append(gone, sub)
		} else {
			keep = append(keep, sub)
		}
	}
	s.subs.Store(&keep)
	s.nsubs.Store(int32(len(keep)))
	s.mu.Unlock()
	for _, sub := range gone {
		sub.retireFrom(s.t)
	}
}

func (s *stage) addChild(c *stage) {
	s.mu.Lock()
	old := *s.children.Load()
	ns := make([]*stage, 0, len(old)+1)
	ns = append(append(ns, old...), c)
	s.children.Store(&ns)
	s.mu.Unlock()
}

// ------------------------------------------------------------ publish

// Publish implements egress.Publisher: encode the batch once, hand the
// shared frame to the root ring. The producing EO pays one encode and
// one ring publish per batch — O(1) in the subscriber count. With no
// live subscribers the publish is skipped entirely: the query's spool
// already retains the rows for late joiners, whose replay window is
// read after they attach.
func (t *Tree) Publish(rows []*tuple.Tuple, end int64) {
	if len(rows) == 0 {
		return
	}
	if t.nsubs.Load() == 0 {
		t.skippedIdle.Add(1)
		return
	}
	t.published.Add(1)
	t.publishedRows.Add(int64(len(rows)))
	f := t.enc.encode(rows, end, t.frameSeq.Add(1), false)
	if t.root.in.Enqueue(f) != nil {
		t.rootShed.Add(1)
		f.Release()
	}
}

// Fail implements egress.Publisher: record the terminal error, then
// tear down. Subscribers drain their buffered frames, see a closed
// ring, and read the error from Err.
func (t *Tree) Fail(err error) {
	t.failed.Store(err)
	t.Close()
}

// Close implements egress.Publisher: close the root ring and wait for
// the cascade (every stage drains its ring, then closes its
// children's). Idempotent; every call waits for the full cascade.
func (t *Tree) Close() {
	t.mu.Lock()
	first := !t.closed
	t.closed = true
	stages := append([]*stage(nil), t.stages...)
	t.mu.Unlock()
	if first {
		t.root.in.Close()
	}
	for _, s := range stages {
		<-s.done
	}
}

// Err returns the tree's terminal error (nil unless Fail ran).
func (t *Tree) Err() error {
	if v := t.failed.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Pending implements egress.Publisher: frames still buffered in stage
// rings plus frames queued at live subscribers (graceful drain polls
// it toward zero).
func (t *Tree) Pending() int {
	t.mu.Lock()
	stages := append([]*stage(nil), t.stages...)
	subs := make([]*Subscriber, 0, len(t.subs))
	for _, sub := range t.subs {
		subs = append(subs, sub)
	}
	t.mu.Unlock()
	n := 0
	for _, s := range stages {
		n += s.in.Len()
	}
	for _, sub := range subs {
		if !sub.closed.Load() {
			n += sub.ring.Len()
		}
	}
	return n
}

// ------------------------------------------------------------- attach

// SubOptions configures one subscriber.
type SubOptions struct {
	// QoS is the subscriber's overflow policy (zero value: drop-newest).
	QoS fjord.QoS
	// Queue overrides the frame ring capacity (0 → Options.SubQueue).
	Queue int
	// Cohort names a shared replay cursor: members catch up from the
	// query spool starting at the cohort's cursor (never re-replaying
	// what the cohort already consumed) and advance it as they consume.
	Cohort string
	// Replay forces catch-up from the spool base even without a cohort.
	Replay bool
}

// Attach adds a subscriber. The tree grows leaves and relays as needed;
// the hot delivery path never observes the growth (membership is
// copy-on-write).
func (t *Tree) Attach(o SubOptions) (*Subscriber, error) {
	if o.Queue <= 0 {
		o.Queue = t.opts.SubQueue
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	leaf, err := t.leafLocked()
	if err != nil {
		t.mu.Unlock()
		return nil, err
	}
	sub := &Subscriber{
		ID:   t.nextSub.Add(1),
		t:    t,
		ring: fjord.NewPush[*Frame](o.Queue),
		qos:  o.QoS,
		opts: o,
	}
	if o.QoS.Policy == fjord.Sample {
		sub.rng = rand.New(rand.NewSource(sub.ID))
	}
	var coh *Cohort
	if o.Cohort != "" {
		coh = t.cohorts[o.Cohort]
		if coh == nil {
			coh = &Cohort{Name: o.Cohort}
			t.cohorts[o.Cohort] = coh
		}
		sub.cohort = coh
	}
	t.subs[sub.ID] = sub
	t.nsubs.Add(1)
	t.mu.Unlock()

	// Live frames start flowing into the ring the moment the leaf
	// snapshot includes the subscriber; the replay window is read
	// *after* that, so every row is either replayed (appended to the
	// spool before the window was read — spool append happens before
	// frame publish) or delivered live. Frames covering both are
	// deduplicated at consume time by their spool end offset.
	leaf.addSub(sub)
	if sp := t.opts.Spool; sp != nil && (coh != nil || o.Replay) {
		end := sp.End()
		from := sp.Base()
		if coh != nil {
			if cur := coh.Cursor(); cur > from {
				from = cur
			}
		}
		if from > end {
			from = end
		}
		sub.replayFrom, sub.replayEnd = from, end
		sub.skipBelow = end
	}
	return sub, nil
}

// leafLocked returns a leaf with a free subscriber slot, growing the
// tree when all are full. Caller holds t.mu.
func (t *Tree) leafLocked() (*stage, error) {
	for i := len(t.leaves) - 1; i >= 0; i-- {
		if int(t.leaves[i].nsubs.Load()) < t.opts.LeafCap {
			return t.leaves[i], nil
		}
	}
	// All leaves full: grow one under a relay with room.
	var parent *stage
	for i := len(t.relays) - 1; i >= 0; i-- {
		if t.relays[i].kids < t.opts.Degree {
			parent = t.relays[i]
			break
		}
	}
	if parent == nil {
		if len(t.relays) >= t.opts.Degree {
			return nil, ErrFull
		}
		parent = t.newStage(false)
		t.relays = append(t.relays, parent)
		t.root.addChild(parent)
	}
	leaf := t.newStage(true)
	t.leaves = append(t.leaves, leaf)
	parent.kids++
	parent.addChild(leaf)
	return leaf, nil
}

// ------------------------------------------------------------- cohort

// Cohort is a shared monotone cursor into the query spool: the furthest
// offset any member has consumed. A reconnecting member resumes replay
// from it instead of the spool base, so the cohort as a whole reads the
// retained history once (the PSoup shared-materialized-results idea).
type Cohort struct {
	Name string
	cur  atomic.Int64
}

// Cursor returns the cohort's current offset.
func (c *Cohort) Cursor() int64 { return c.cur.Load() }

// advance moves the cursor forward monotonically.
func (c *Cohort) advance(end int64) {
	for {
		v := c.cur.Load()
		if end <= v || c.cur.CompareAndSwap(v, end) {
			return
		}
	}
}

// Cohorts returns a snapshot of the tree's cohorts.
func (t *Tree) Cohorts() []*Cohort {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Cohort, 0, len(t.cohorts))
	for _, c := range t.cohorts {
		out = append(out, c)
	}
	return out
}

// -------------------------------------------------------------- stats

// TreeStats aggregates the tree's accounting for telemetry.
type TreeStats struct {
	Query         int
	Subs          int64 // live subscribers
	Stages        int64 // relay + leaf + root goroutines
	Published     int64 // frames offered to the root ring
	PublishedRows int64
	SkippedIdle   int64 // publishes skipped with no one listening
	RootShed      int64 // frames refused by a closed root ring
	LiveEncodes   int64
	ReplayEncodes int64
	Offered       int64 // per-subscriber frame offers, summed
	Shed          int64
	BlockTimeouts int64
	Consumed      int64
	Dedup         int64
	Replayed      int64
	Pending       int64
}

// Stats sums the per-subscriber books (including retired subscribers,
// which stay in the table until the tree closes so the aggregate
// reconciles exactly across churn).
func (t *Tree) Stats() TreeStats {
	t.mu.Lock()
	subs := make([]*Subscriber, 0, len(t.subs))
	for _, sub := range t.subs {
		subs = append(subs, sub)
	}
	nStages := int64(len(t.stages))
	t.mu.Unlock()
	st := TreeStats{
		Query:         t.opts.Query,
		Subs:          t.nsubs.Load(),
		Stages:        nStages,
		Published:     t.published.Load(),
		PublishedRows: t.publishedRows.Load(),
		SkippedIdle:   t.skippedIdle.Load(),
		RootShed:      t.rootShed.Load(),
		LiveEncodes:   t.enc.LiveEncodes(),
		ReplayEncodes: t.enc.ReplayEncodes(),
	}
	for _, sub := range subs {
		s := sub.Stats()
		st.Offered += s.Offered
		st.Shed += s.Shed
		st.BlockTimeouts += s.BlockTimeouts
		st.Consumed += s.Consumed
		st.Dedup += s.Dedup
		st.Replayed += s.Replayed
		st.Pending += s.Pending
	}
	return st
}
