package fanout

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/egress"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

var schema = tuple.NewSchema(tuple.Column{Source: "s", Name: "v", Kind: tuple.KindInt})

func row(v int64) *tuple.Tuple { return tuple.New(schema, tuple.Int(v)) }

// drainRows consumes frames until the subscriber has seen want distinct
// row keys (parsed from the wire bytes), failing on duplicates.
func drainRows(t *testing.T, sub *Subscriber, want int) map[int64]bool {
	t.Helper()
	seen := map[int64]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: saw %d of %d rows", len(seen), want)
		}
		f, ok := sub.NextFrame()
		if !ok {
			t.Fatalf("subscriber ended early: saw %d of %d rows (err=%v)", len(seen), want, sub.Err())
		}
		for _, k := range frameKeys(t, f) {
			if seen[k] {
				t.Fatalf("row %d delivered twice", k)
			}
			seen[k] = true
		}
		f.Release()
	}
	return seen
}

// frameKeys parses "row <q> <v>" wire lines back into row keys.
func frameKeys(t *testing.T, f *Frame) []int64 {
	t.Helper()
	var keys []int64
	for _, line := range strings.Split(strings.TrimSuffix(string(f.Bytes()), "\n"), "\n") {
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 || parts[0] != "row" {
			t.Fatalf("malformed wire line %q", line)
		}
		k, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			t.Fatalf("bad row key in %q: %v", line, err)
		}
		keys = append(keys, k)
	}
	return keys
}

func TestEncodeOnceSharedFrames(t *testing.T) {
	tr := NewTree(Options{Query: 7, Prefix: "row 7 "})
	defer tr.Close()
	const nsubs, nframes = 8, 5
	subs := make([]*Subscriber, nsubs)
	for i := range subs {
		s, err := tr.Attach(SubOptions{Queue: 16})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	for i := 0; i < nframes; i++ {
		tr.Publish([]*tuple.Tuple{row(int64(i))}, 0)
	}
	for _, s := range subs {
		for i := 0; i < nframes; i++ {
			f, ok := s.NextFrame()
			if !ok {
				t.Fatal("missing frame")
			}
			if got := string(f.Bytes()); got != fmt.Sprintf("row 7 %d\n", i) {
				t.Fatalf("frame %d = %q", i, got)
			}
			f.Release()
		}
	}
	// The serialization ran once per published batch, not once per
	// subscriber delivery.
	if tr.Encoder().LiveEncodes() != nframes {
		t.Fatalf("encodes = %d, want %d", tr.Encoder().LiveEncodes(), nframes)
	}
	st := tr.Stats()
	if st.Offered != nsubs*nframes || st.Consumed != nsubs*nframes {
		t.Fatalf("offered=%d consumed=%d, want %d", st.Offered, st.Consumed, nsubs*nframes)
	}
}

func TestPublishSkippedWithNoSubscribers(t *testing.T) {
	tr := NewTree(Options{Query: 1, Prefix: "row 1 "})
	defer tr.Close()
	tr.Publish([]*tuple.Tuple{row(1)}, 0)
	st := tr.Stats()
	if st.Published != 0 || st.SkippedIdle != 1 || tr.Encoder().LiveEncodes() != 0 {
		t.Fatalf("idle publish not skipped: %+v encodes=%d", st, tr.Encoder().LiveEncodes())
	}
}

func TestTreeGrowsRelaysAndLeaves(t *testing.T) {
	// Degree 2, LeafCap 2: capacity = 2 relays x 2 leaves x 2 subs = 8.
	tr := NewTree(Options{Query: 1, Prefix: "row 1 ", Degree: 2, LeafCap: 2, StageQueue: 8, SubQueue: 16})
	defer tr.Close()
	subs := make([]*Subscriber, 8)
	for i := range subs {
		s, err := tr.Attach(SubOptions{})
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		subs[i] = s
	}
	if _, err := tr.Attach(SubOptions{}); !errors.Is(err, ErrFull) {
		t.Fatalf("9th attach: %v, want ErrFull", err)
	}
	st := tr.Stats()
	if st.Stages != 1+2+4 { // root + 2 relays + 4 leaves
		t.Fatalf("stages = %d, want 7", st.Stages)
	}
	const nframes = 10
	for i := 0; i < nframes; i++ {
		tr.Publish([]*tuple.Tuple{row(int64(i))}, 0)
	}
	// Every subscriber on every leaf sees every frame, in order.
	for si, s := range subs {
		for i := 0; i < nframes; i++ {
			f, ok := s.NextFrame()
			if !ok {
				t.Fatalf("sub %d missing frame %d", si, i)
			}
			if keys := frameKeys(t, f); len(keys) != 1 || keys[0] != int64(i) {
				t.Fatalf("sub %d frame %d = %v", si, i, keys)
			}
			f.Release()
		}
	}
}

func TestReplayCatchUpFromSpool(t *testing.T) {
	sp := egress.NewSpool(100)
	tr := NewTree(Options{Query: 1, Prefix: "row 1 ", Spool: sp})
	defer tr.Close()
	// History accumulates with no subscribers attached (frames skipped).
	for i := 0; i < 10; i++ {
		sp.Append(row(int64(i)))
		tr.Publish([]*tuple.Tuple{row(int64(i))}, sp.End())
	}
	late, err := tr.Attach(SubOptions{Replay: true, Queue: 16})
	if err != nil {
		t.Fatal(err)
	}
	seen := drainRows(t, late, 10)
	for i := int64(0); i < 10; i++ {
		if !seen[i] {
			t.Fatalf("replay missed row %d", i)
		}
	}
	ss := late.Stats()
	if ss.Replayed == 0 || ss.Consumed != 0 {
		t.Fatalf("stats after pure replay: %+v", ss)
	}
	// Replay then live: new rows arrive as live frames, no duplicates.
	sp.Append(row(10))
	tr.Publish([]*tuple.Tuple{row(10)}, sp.End())
	f, ok := late.NextFrame()
	if !ok {
		t.Fatal("live frame after replay lost")
	}
	if keys := frameKeys(t, f); len(keys) != 1 || keys[0] != 10 {
		t.Fatalf("live frame = %v", keys)
	}
	f.Release()
}

func TestCohortSharedCursor(t *testing.T) {
	sp := egress.NewSpool(100)
	tr := NewTree(Options{Query: 1, Prefix: "row 1 ", Spool: sp})
	defer tr.Close()
	for i := 0; i < 10; i++ {
		sp.Append(row(int64(i)))
		tr.Publish([]*tuple.Tuple{row(int64(i))}, sp.End())
	}
	m1, err := tr.Attach(SubOptions{Cohort: "dash", Queue: 16})
	if err != nil {
		t.Fatal(err)
	}
	drainRows(t, m1, 10)
	cohorts := tr.Cohorts()
	if len(cohorts) != 1 || cohorts[0].Cursor() != 10 {
		t.Fatalf("cohort cursor: %+v", cohorts)
	}
	// A second member joins after the cohort consumed the history: it
	// resumes at the shared cursor instead of re-replaying from base.
	m2, err := tr.Attach(SubOptions{Cohort: "dash", Queue: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.TryNextFrame(); ok {
		t.Fatal("second member re-replayed consumed history")
	}
	if ss := m2.Stats(); ss.Replayed != 0 {
		t.Fatalf("second member replayed %d frames", ss.Replayed)
	}
	// New rows flow to both members.
	sp.Append(row(10))
	tr.Publish([]*tuple.Tuple{row(10)}, sp.End())
	for _, m := range []*Subscriber{m1, m2} {
		f, ok := m.NextFrame()
		if !ok {
			t.Fatal("cohort member missed live row")
		}
		f.Release()
	}
}

// TestReplayNoLossNoDupUnderConcurrentAttach races subscriber attach
// (with replay) against a live publisher and checks the exactly-once
// window-stitch invariant: every row is either replayed from the spool
// or delivered live, never both, never neither.
func TestReplayNoLossNoDupUnderConcurrentAttach(t *testing.T) {
	const rows, nsubs = 400, 12
	sp := egress.NewSpool(4096)
	tr := NewTree(Options{Query: 1, Prefix: "row 1 ", Spool: sp})
	defer tr.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rows; i++ {
			sp.Append(row(int64(i)))
			tr.Publish([]*tuple.Tuple{row(int64(i))}, sp.End())
		}
	}()

	results := make(chan map[int64]bool, nsubs)
	for i := 0; i < nsubs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Lossless edge so the invariant is exactly-once, not
			// at-most-once: block with a generous bound.
			sub, err := tr.Attach(SubOptions{
				Replay: true,
				Queue:  64,
				QoS:    fjord.QoS{Policy: fjord.Block, BlockTimeout: 10 * time.Second},
			})
			if err != nil {
				t.Error(err)
				return
			}
			seen := drainRows(t, sub, rows)
			// Detach once done: a finished member that lingers would
			// stall the leaf's Block offers into its full ring.
			sub.Close()
			results <- seen
		}()
	}
	wg.Wait()
	close(results)
	for seen := range results {
		for i := int64(0); i < rows; i++ {
			if !seen[i] {
				t.Fatalf("row %d lost", i)
			}
		}
	}
}

func TestReconciliationPerPolicy(t *testing.T) {
	policies := []fjord.QoS{
		{Policy: fjord.DropNewest},
		{Policy: fjord.DropOldest},
		{Policy: fjord.Block, BlockTimeout: time.Millisecond},
		{Policy: fjord.Sample, SampleP: 0.5},
	}
	for _, qos := range policies {
		qos := qos
		t.Run(qos.Policy.String(), func(t *testing.T) {
			tr := NewTree(Options{Query: 1, Prefix: "row 1 "})
			const nsubs, nframes = 16, 300
			subs := make([]*Subscriber, nsubs)
			for i := range subs {
				s, err := tr.Attach(SubOptions{QoS: qos, Queue: 8})
				if err != nil {
					t.Fatal(err)
				}
				subs[i] = s
			}
			var wg sync.WaitGroup
			// Half the fleet consumes eagerly; half sits idle so drop
			// policies actually shed. A few close mid-stream (churn).
			for i, s := range subs {
				if i%2 != 0 {
					continue
				}
				wg.Add(1)
				go func(i int, s *Subscriber) {
					defer wg.Done()
					n := 0
					for {
						f, ok := s.NextFrame()
						if !ok {
							return
						}
						f.Release()
						if n++; n == 50 && i%4 == 0 {
							s.Close() // churn: leave mid-stream
							return
						}
					}
				}(i, s)
			}
			for i := 0; i < nframes; i++ {
				tr.Publish([]*tuple.Tuple{row(int64(i))}, 0)
			}
			tr.Close() // cascade: drains stage rings, closes sub rings
			wg.Wait()
			for _, s := range subs {
				s.Close() // count any still-buffered frames as shed
			}
			st := tr.Stats()
			if st.Offered == 0 {
				t.Fatal("nothing offered")
			}
			if got := st.Consumed + st.Dedup + st.Shed; got != st.Offered {
				t.Fatalf("offered=%d != consumed+dedup+shed=%d (%+v)", st.Offered, got, st)
			}
			if st.Pending != 0 {
				t.Fatalf("pending=%d after close", st.Pending)
			}
		})
	}
}

func TestTreeFailSurfacesError(t *testing.T) {
	tr := NewTree(Options{Query: 1, Prefix: "row 1 "})
	sub, err := tr.Attach(SubOptions{Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr.Publish([]*tuple.Tuple{row(1)}, 0)
	boom := errors.New("quarantined")
	tr.Fail(boom)
	// Buffered frames drain before the error is observed.
	f, ok := sub.NextFrame()
	if !ok {
		t.Fatalf("buffered frame lost at fail (err=%v)", sub.Err())
	}
	f.Release()
	if _, ok := sub.NextFrame(); ok {
		t.Fatal("frame after fail")
	}
	if !errors.Is(sub.Err(), boom) {
		t.Fatalf("err = %v", sub.Err())
	}
}

func TestFrameRefcountReleasesToPool(t *testing.T) {
	enc := NewEncoder("row 1 ")
	f := enc.encode([]*tuple.Tuple{row(42)}, 0, 1, false)
	f.Retain()
	f.Release()
	f.Release() // final: returns to pool
	defer func() {
		if recover() == nil {
			t.Fatal("over-release not caught")
		}
	}()
	f.Release()
}
