package ingress

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
)

// fastBackoff keeps supervisor tests quick and deterministic.
func fastBackoff() Backoff {
	return Backoff{
		Initial:      time.Millisecond,
		Max:          5 * time.Millisecond,
		Factor:       2,
		Jitter:       0.1,
		HealthyAfter: time.Hour, // never auto-reset inside a test
		Seed:         42,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorRestartsUntilClean(t *testing.T) {
	var attempts atomic.Int64
	s := NewSupervisor("src", func(stop <-chan struct{}) error {
		if attempts.Add(1) < 4 {
			return errors.New("connection refused")
		}
		return nil // fourth attempt completes cleanly
	}, fastBackoff())
	s.Start()
	waitFor(t, "clean completion", func() bool {
		return attempts.Load() == 4 && s.State() == HealthDown
	})
	snap := s.Snapshot()
	if attempts.Load() != 4 {
		t.Fatalf("attempts=%d, want 4", attempts.Load())
	}
	if snap.Restarts != 3 || snap.Failures != 3 {
		t.Fatalf("restarts=%d failures=%d, want 3/3", snap.Restarts, snap.Failures)
	}
	if !strings.Contains(snap.LastErr, "connection refused") {
		t.Fatalf("lastErr=%q", snap.LastErr)
	}
	s.Stop()
}

func TestSupervisorBudgetExhaustion(t *testing.T) {
	b := fastBackoff()
	b.Budget = 3
	var attempts atomic.Int64
	s := NewSupervisor("src", func(stop <-chan struct{}) error {
		attempts.Add(1)
		return errors.New("boom")
	}, b)
	s.Start()
	waitFor(t, "budget exhaustion", func() bool {
		return attempts.Load() >= 3 && s.State() == HealthDown
	})
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts=%d, want 3", got)
	}
	snap := s.Snapshot()
	if !strings.Contains(snap.LastErr, "retry budget exhausted") {
		t.Fatalf("lastErr=%q", snap.LastErr)
	}
	s.Stop()
}

func TestSupervisorDegradedBetweenAttempts(t *testing.T) {
	b := fastBackoff()
	b.Initial = 50 * time.Millisecond
	b.Max = 50 * time.Millisecond
	s := NewSupervisor("src", func(stop <-chan struct{}) error {
		return errors.New("flaky")
	}, b)
	s.Start()
	waitFor(t, "degraded state", func() bool { return s.State() == HealthDegraded })
	s.Stop()
	if s.State() != HealthDown {
		t.Fatalf("state after Stop: %v", s.State())
	}
}

func TestSupervisorStopInterruptsRun(t *testing.T) {
	started := make(chan struct{})
	s := NewSupervisor("src", func(stop <-chan struct{}) error {
		close(started)
		<-stop // a blocking read interrupted by Stop
		return errors.New("interrupted")
	}, fastBackoff())
	s.Start()
	<-started
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not interrupt a blocked run")
	}
}

func TestRegistrySnapshotsAndStopAll(t *testing.T) {
	r := NewRegistry()
	block := func(stop <-chan struct{}) error { <-stop; return errors.New("stopped") }
	r.Supervise("a", block, fastBackoff())
	r.Supervise("b", block, fastBackoff())
	waitFor(t, "both up", func() bool {
		ss := r.Snapshots()
		return len(ss) == 2 && ss[0].State == "up" && ss[1].State == "up"
	})
	r.StopAll()
	for _, snap := range r.Snapshots() {
		if snap.State != "down" {
			t.Fatalf("source %s state=%s after StopAll", snap.Name, snap.State)
		}
	}
}

// TestSupervisedPushClientReconnects is the wrapper-level integration:
// a chaotic remote source that drops every connection after a few rows,
// a supervised PushClient that reconnects each time. Rows keep flowing
// across the drops and restarts are observable in the snapshot.
func TestSupervisedPushClientReconnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Remote source: each accepted connection sends 5 rows (one corrupt)
	// and hangs up mid-stream — the paper's volatile network.
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			for j := 0; j < 5; j++ {
				if j == 2 {
					fmt.Fprintln(conn, "GARBAGE;;;")
				} else {
					fmt.Fprintf(conn, "S%d,%d.5,%d,true\n", i, j, j)
				}
			}
			conn.Close()
		}
	}()

	var m memSink
	pc := &PushClient{Stream: "s", Schema: schema}
	sup := NewSupervisor("s", func(stop <-chan struct{}) error {
		n, err := pc.Run(ln.Addr().String(), m.sink)
		pcRows := n
		_ = pcRows
		if err == nil {
			// The remote hung up: that is a failure to be retried, not a
			// clean end of stream.
			err = errors.New("source disconnected")
		}
		return err
	}, fastBackoff())
	stopCh := make(chan struct{})
	go func() { <-stopCh; pc.Stop() }()
	sup.Start()

	waitFor(t, "rows across reconnects", func() bool { return m.count() >= 12 })
	close(stopCh)
	sup.Stop()
	snap := sup.Snapshot()
	if snap.Restarts < 2 {
		t.Fatalf("restarts=%d, want >=2 (reconnects)", snap.Restarts)
	}
	if pc.BadRows() < 1 {
		t.Fatalf("badRows=%d, want >=1 (corrupt line skipped, not fatal)", pc.BadRows())
	}
}

// TestPushServerChaos drives the push-server with an injector that
// corrupts and disconnects: the server must survive, count rejects, and
// keep accepting fresh connections.
func TestPushServerChaos(t *testing.T) {
	var m memSink
	s := NewPushServer(m.sink)
	s.Chaos = chaos.New(chaos.Config{Seed: 7, Corrupt: 0.3, Disconnect: 0.05})
	s.Register("s", schema)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sent := 0
	for conn := 0; conn < 5; conn++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			fmt.Fprintf(c, "s,SYM,%d.5,%d,true\n", i, i)
			sent++
		}
		c.Close()
	}
	// Under corruption some lines are rejected and some connections are
	// cut early; the server itself must stay up and deliver the rest.
	waitFor(t, "chaos rows settle", func() bool {
		return s.Rows()+s.Errs() > 0 && m.count() == int(s.Rows())
	})
	time.Sleep(50 * time.Millisecond)
	if s.Rows() == 0 {
		t.Fatal("no rows survived chaos")
	}
	if s.Errs() == 0 {
		t.Fatal("corruption produced no rejects — injector not wired?")
	}
	if got := s.Chaos.Stats(); got.Corrupted == 0 {
		t.Fatalf("injector stats: %+v", got)
	}
}
