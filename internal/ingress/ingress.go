// Package ingress implements the Wrapper process's data-ingress
// operators (§2.1, §4.2.3): pull sources polled by the wrapper,
// push-client sources the wrapper connects out to, a push-server port
// remote sources connect into, a CSV file reader, a controllable
// synthetic generator (rate, burstiness, loss — the paper's volatile
// network conditions), and a sensor proxy whose sample rate can be
// adjusted from the query side (the feedback loop of [MF02]).
package ingress

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/tuple"
)

// Sink receives parsed rows for a stream; the executor's Push is one.
type Sink func(stream string, vals []tuple.Value) error

// BatchSink receives a batch of parsed rows for one stream; the
// executor's PushBatch is one. Vectorized wrappers hand whole slices
// down so the executor can move them through its Fjords with one queue
// operation per batch.
type BatchSink func(stream string, rows [][]tuple.Value) error

// ParseRow converts CSV fields to values following a schema.
func ParseRow(schema *tuple.Schema, fields []string) ([]tuple.Value, error) {
	if len(fields) != schema.Arity() {
		return nil, fmt.Errorf("ingress: %d fields for %d columns", len(fields), schema.Arity())
	}
	vals := make([]tuple.Value, len(fields))
	for i, f := range fields {
		f = strings.TrimSpace(f)
		// NULL is a valid value for every column kind, not just strings —
		// sensors report missing readings as NULL in any position.
		if f == "NULL" {
			vals[i] = tuple.Null()
			continue
		}
		switch schema.Cols[i].Kind {
		case tuple.KindInt:
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ingress: column %s: %w", schema.Cols[i].Name, err)
			}
			vals[i] = tuple.Int(n)
		case tuple.KindFloat:
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("ingress: column %s: %w", schema.Cols[i].Name, err)
			}
			vals[i] = tuple.Float(x)
		case tuple.KindBool:
			b, err := strconv.ParseBool(f)
			if err != nil {
				return nil, fmt.Errorf("ingress: column %s: %w", schema.Cols[i].Name, err)
			}
			vals[i] = tuple.Bool(b)
		case tuple.KindTime:
			ns, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ingress: column %s: %w", schema.Cols[i].Name, err)
			}
			vals[i] = tuple.Value{K: tuple.KindTime, I: ns}
		default:
			vals[i] = tuple.String(f)
		}
	}
	return vals, nil
}

// ------------------------------------------------------------ CSVReader

// CSVReader streams rows from an io.Reader ("local file reader" wrapper).
type CSVReader struct {
	Stream string
	Schema *tuple.Schema
	Comma  string // default ","
}

// Run parses r to exhaustion, delivering every row to sink.
func (c *CSVReader) Run(r io.Reader, sink Sink) (int64, error) {
	sep := c.Comma
	if sep == "" {
		sep = ","
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var n int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vals, err := ParseRow(c.Schema, strings.Split(line, sep))
		if err != nil {
			return n, err
		}
		if err := sink(c.Stream, vals); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

// RunBatch parses r to exhaustion, delivering rows to sink in batches
// of up to batch rows (<=0 → 256).
func (c *CSVReader) RunBatch(r io.Reader, batch int, sink BatchSink) (int64, error) {
	if batch <= 0 {
		batch = 256
	}
	sep := c.Comma
	if sep == "" {
		sep = ","
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var n int64
	pend := make([][]tuple.Value, 0, batch)
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		if err := sink(c.Stream, pend); err != nil {
			return err
		}
		n += int64(len(pend))
		pend = pend[:0]
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vals, err := ParseRow(c.Schema, strings.Split(line, sep))
		if err != nil {
			return n, err
		}
		pend = append(pend, vals)
		if len(pend) == batch {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
	if err := flush(); err != nil {
		return n, err
	}
	return n, sc.Err()
}

// ------------------------------------------------------------ PullSource

// PullSource adapts a traditional pull iterator (a federated wrapper
// like TeSS): the wrapper polls Next at the configured interval, which
// may block on the remote — exactly the blocking the Fjords design keeps
// out of the executor by hosting it here, in the Wrapper process.
type PullSource struct {
	Stream   string
	Next     func() ([]tuple.Value, error) // io.EOF ends the source
	Interval time.Duration

	stopped atomic.Bool
}

// Run polls until EOF or Stop. Returns rows delivered.
func (p *PullSource) Run(sink Sink) (int64, error) {
	var n int64
	for !p.stopped.Load() {
		vals, err := p.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if vals != nil {
			if err := sink(p.Stream, vals); err != nil {
				return n, err
			}
			n++
		}
		if p.Interval > 0 {
			time.Sleep(p.Interval)
		}
	}
	return n, nil
}

// Stop ends the polling loop.
func (p *PullSource) Stop() { p.stopped.Store(true) }

// ------------------------------------------------------------ Generator

// Generator produces synthetic rows with controllable rate, burstiness,
// and loss — the "extremely high or bursty" arrival of §1.1. Make
// returns the i-th row.
type Generator struct {
	Stream string
	Make   func(i int64) []tuple.Value
	Count  int64 // rows to produce (0 = until Stop)
	// Rate is rows/second (0 = as fast as possible).
	Rate float64
	// Burst delivers rows in bursts of this size with pauses between
	// (1 = smooth).
	Burst int
	// DropProb drops a row with this probability (sensor loss).
	DropProb float64
	// Seed makes loss deterministic.
	Seed int64

	stopped atomic.Bool
}

// Run produces rows into sink; returns delivered (post-loss) count.
func (g *Generator) Run(sink Sink) (int64, error) {
	rng := rand.New(rand.NewSource(g.Seed + 1))
	burst := g.Burst
	if burst < 1 {
		burst = 1
	}
	var interval time.Duration
	if g.Rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(burst) / g.Rate)
	}
	var delivered int64
	for i := int64(0); (g.Count == 0 || i < g.Count) && !g.stopped.Load(); i++ {
		if g.DropProb > 0 && rng.Float64() < g.DropProb {
			continue
		}
		if err := sink(g.Stream, g.Make(i)); err != nil {
			return delivered, err
		}
		delivered++
		if interval > 0 && delivered%int64(burst) == 0 {
			time.Sleep(interval)
		}
	}
	return delivered, nil
}

// Stop ends generation.
func (g *Generator) Stop() { g.stopped.Store(true) }

// ----------------------------------------------------------- SensorProxy

// SensorProxy simulates a sensor-network ingress that accepts control
// messages back from the query processor: SetSampleRate adjusts how
// often the (simulated) sensors report, the feedback loop of [MF02]
// ("a sensor proxy may send control messages to adjust the sample rate
// of a sensor network based on the queries that are currently being
// processed").
type SensorProxy struct {
	Stream  string
	Sensors int
	// Read returns sensor s's current value at reading i.
	Read func(sensor int, i int64) []tuple.Value

	rate    atomic.Int64 // samples/sec across the network
	stopped atomic.Bool
	samples atomic.Int64
}

// NewSensorProxy builds a proxy at the given initial sample rate.
func NewSensorProxy(stream string, sensors int, ratePerSec int64, read func(int, int64) []tuple.Value) *SensorProxy {
	p := &SensorProxy{Stream: stream, Sensors: sensors, Read: read}
	p.rate.Store(ratePerSec)
	return p
}

// SetSampleRate is the control path: queries adjust acquisition.
func (p *SensorProxy) SetSampleRate(perSec int64) { p.rate.Store(perSec) }

// SampleRate returns the current rate.
func (p *SensorProxy) SampleRate() int64 { return p.rate.Load() }

// Samples returns total delivered samples.
func (p *SensorProxy) Samples() int64 { return p.samples.Load() }

// Run samples round-robin across sensors until Stop.
func (p *SensorProxy) Run(sink Sink) error {
	var i int64
	for !p.stopped.Load() {
		rate := p.rate.Load()
		if rate <= 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		sensor := int(i) % p.Sensors
		if err := sink(p.Stream, p.Read(sensor, i)); err != nil {
			return err
		}
		p.samples.Add(1)
		i++
		time.Sleep(time.Duration(int64(time.Second) / rate))
	}
	return nil
}

// Stop ends sampling.
func (p *SensorProxy) Stop() { p.stopped.Store(true) }

// ----------------------------------------------------------- PushServer

// PushServer is the Wrapper's well-known port: remote push sources
// connect and send "stream,field,field,..." lines (push-server sources,
// §4.2.3). Streams must be registered before data arrives.
type PushServer struct {
	mu      sync.Mutex
	schemas map[string]*tuple.Schema
	ln      net.Listener
	sink    Sink
	wg      sync.WaitGroup
	conns   map[net.Conn]struct{}
	closed  bool
	rows    atomic.Int64
	errs    atomic.Int64

	// Chaos, when set, injects faults into every connection: read stalls,
	// forced disconnects, and corrupted lines (nil-safe; see internal/chaos).
	Chaos *chaos.Injector
}

// NewPushServer builds a push-server delivering into sink.
func NewPushServer(sink Sink) *PushServer {
	return &PushServer{
		schemas: map[string]*tuple.Schema{},
		conns:   map[net.Conn]struct{}{},
		sink:    sink,
	}
}

// Register makes a stream's schema known to the wrapper.
func (s *PushServer) Register(stream string, schema *tuple.Schema) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.schemas[stream] = schema
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for tests);
// returns the bound address.
func (s *PushServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *PushServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serve(conn)
		}()
	}
}

func (s *PushServer) serve(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	// reject reports a bad line back to the source ("error <line#> <why>")
	// instead of dropping it silently; a source that never reads simply
	// accumulates the replies in its socket buffer.
	lineNo := 0
	reject := func(why string) {
		s.errs.Add(1)
		fmt.Fprintf(w, "error %d %s\n", lineNo, strings.ReplaceAll(why, "\n", " "))
		_ = w.Flush()
	}
	for sc.Scan() {
		lineNo++
		// Fault injection: stall the read loop, drop the connection, or
		// corrupt the line before it is parsed — the downstream path must
		// reject corruption and the supervisor must absorb the disconnect.
		if d := s.Chaos.Stall(); d > 0 {
			time.Sleep(d)
		}
		if s.Chaos.Disconnect() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if corrupted, ok := s.Chaos.CorruptLine(line); ok {
			line = corrupted
		}
		if line == "" {
			continue
		}
		idx := strings.IndexByte(line, ',')
		if idx < 0 {
			reject("expected stream,field,... line")
			continue
		}
		stream := line[:idx]
		s.mu.Lock()
		schema := s.schemas[stream]
		s.mu.Unlock()
		if schema == nil {
			reject(fmt.Sprintf("unknown stream %q", stream))
			continue
		}
		vals, err := ParseRow(schema, strings.Split(line[idx+1:], ","))
		if err != nil {
			reject(err.Error())
			continue
		}
		if err := s.sink(stream, vals); err != nil {
			reject(err.Error())
			continue
		}
		s.rows.Add(1)
	}
}

// Rows returns total delivered rows; Errs returns rejected lines.
func (s *PushServer) Rows() int64 { return s.rows.Load() }

// Errs returns the count of rejected input lines.
func (s *PushServer) Errs() int64 { return s.errs.Load() }

// Close stops the listener, severs live source connections, and waits
// for their goroutines to finish. Severing matters: a remote source
// that never hangs up must not wedge a draining (or force-closing)
// server, so ingress shutdown cuts the wire instead of waiting for the
// other end's goodwill.
func (s *PushServer) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

// ----------------------------------------------------------- PushClient

// ClientOptions bounds a PushClient's network waits. Zero values leave
// the corresponding wait unbounded, so the zero ClientOptions keeps the
// old behavior.
type ClientOptions struct {
	// DialTimeout bounds the initial connect.
	DialTimeout time.Duration
	// ReadTimeout bounds the silence between lines. A source that stalls
	// longer than this — a half-open connection, a wedged remote — makes
	// Run return a timeout error so the Supervisor can reconnect instead
	// of hanging forever on a dead socket.
	ReadTimeout time.Duration
	// WriteTimeout bounds any write back to the source (applied as the
	// connection's write deadline alongside each read).
	WriteTimeout time.Duration
}

// PushClient connects out to a data source that speaks the same line
// protocol (push-client sources: "connections can be initiated ... by
// the Wrapper"). It is built to live on an unreliable wire: a row that
// fails to parse is counted and skipped (one corrupt reading must not
// kill the feed), Opts deadlines turn silent stalls into errors, and
// Stop closes the live connection so a Supervisor can interrupt a
// blocked read.
type PushClient struct {
	Stream string
	Schema *tuple.Schema
	Opts   ClientOptions

	badRows atomic.Int64

	mu      sync.Mutex
	conn    net.Conn
	stopped bool
}

// BadRows counts lines skipped because they failed to parse.
func (c *PushClient) BadRows() int64 { return c.badRows.Load() }

// Stop closes the current connection (if any) and makes subsequent Run
// calls return immediately — the hook a Supervisor's stop channel uses.
func (c *PushClient) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Run connects to addr and forwards lines until the source closes or
// Stop is called. Unparseable rows are skipped, not fatal.
func (c *PushClient) Run(addr string, sink Sink) (int64, error) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return 0, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, c.Opts.DialTimeout)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		conn.Close()
		return 0, nil
	}
	c.conn = conn
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.conn == conn {
			c.conn = nil
		}
		c.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var n int64
	for {
		// Arm the deadlines per line, not per connection: a live feed may
		// run for days, but the gap between two lines is bounded.
		if c.Opts.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(c.Opts.ReadTimeout))
		}
		if c.Opts.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(c.Opts.WriteTimeout))
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		vals, err := ParseRow(c.Schema, strings.Split(line, ","))
		if err != nil {
			c.badRows.Add(1)
			continue
		}
		if err := sink(c.Stream, vals); err != nil {
			return n, err
		}
		n++
	}
	err = sc.Err()
	c.mu.Lock()
	stopped := c.stopped
	c.mu.Unlock()
	if stopped {
		// The error (if any) came from Stop closing the socket under us;
		// report a clean end so a supervisor does not reconnect.
		return n, nil
	}
	return n, err
}
