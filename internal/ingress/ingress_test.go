package ingress

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/tuple"
)

var schema = tuple.NewSchema(
	tuple.Column{Source: "s", Name: "sym", Kind: tuple.KindString},
	tuple.Column{Source: "s", Name: "price", Kind: tuple.KindFloat},
	tuple.Column{Source: "s", Name: "qty", Kind: tuple.KindInt},
	tuple.Column{Source: "s", Name: "hot", Kind: tuple.KindBool},
)

type memSink struct {
	mu   sync.Mutex
	rows []([]tuple.Value)
}

func (m *memSink) sink(stream string, vals []tuple.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = append(m.rows, vals)
	return nil
}

func (m *memSink) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rows)
}

func TestParseRow(t *testing.T) {
	vals, err := ParseRow(schema, []string{"MSFT", " 50.5", "100", "true"})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].S != "MSFT" || vals[1].F != 50.5 || vals[2].I != 100 || !vals[3].B {
		t.Fatalf("vals: %v", vals)
	}
	if _, err := ParseRow(schema, []string{"MSFT"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := ParseRow(schema, []string{"M", "x", "1", "true"}); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, err := ParseRow(schema, []string{"M", "1", "x", "true"}); err == nil {
		t.Fatal("bad int accepted")
	}
	if _, err := ParseRow(schema, []string{"M", "1", "1", "maybe"}); err == nil {
		t.Fatal("bad bool accepted")
	}
}

func TestParseRowNull(t *testing.T) {
	// NULL must be accepted in every column position, whatever the kind.
	full := tuple.NewSchema(
		tuple.Column{Source: "s", Name: "sym", Kind: tuple.KindString},
		tuple.Column{Source: "s", Name: "price", Kind: tuple.KindFloat},
		tuple.Column{Source: "s", Name: "qty", Kind: tuple.KindInt},
		tuple.Column{Source: "s", Name: "hot", Kind: tuple.KindBool},
		tuple.Column{Source: "s", Name: "at", Kind: tuple.KindTime},
	)
	cases := []struct {
		name   string
		fields []string
		nulls  []int // column indexes expected NULL
	}{
		{"string null", []string{"NULL", "1.5", "2", "true", "3"}, []int{0}},
		{"float null", []string{"M", "NULL", "2", "true", "3"}, []int{1}},
		{"int null", []string{"M", "1.5", "NULL", "true", "3"}, []int{2}},
		{"bool null", []string{"M", "1.5", "2", "NULL", "3"}, []int{3}},
		{"time null", []string{"M", "1.5", "2", "true", "NULL"}, []int{4}},
		{"all null", []string{"NULL", "NULL", "NULL", "NULL", "NULL"}, []int{0, 1, 2, 3, 4}},
		{"padded null", []string{"M", " NULL ", "2", "true", "3"}, []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals, err := ParseRow(full, tc.fields)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int]bool{}
			for _, i := range tc.nulls {
				want[i] = true
			}
			for i, v := range vals {
				if got := v.K == tuple.KindNull; got != want[i] {
					t.Fatalf("column %d: null=%v, want %v (vals %v)", i, got, want[i], vals)
				}
			}
		})
	}
	// Lower-case "null" is data, not NULL: it must still fail for an int.
	if _, err := ParseRow(full, []string{"M", "1.5", "null", "true", "3"}); err == nil {
		t.Fatal(`lower-case "null" accepted as int`)
	}
}

func TestCSVReader(t *testing.T) {
	input := `# header comment
MSFT,50,1,true

IBM,60,2,false
`
	var m memSink
	r := &CSVReader{Stream: "s", Schema: schema}
	n, err := r.Run(strings.NewReader(input), m.sink)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if m.rows[1][0].S != "IBM" {
		t.Fatalf("rows: %v", m.rows)
	}
}

func TestCSVReaderError(t *testing.T) {
	var m memSink
	r := &CSVReader{Stream: "s", Schema: schema}
	if _, err := r.Run(strings.NewReader("bad,row\n"), m.sink); err == nil {
		t.Fatal("malformed row accepted")
	}
}

func TestPullSource(t *testing.T) {
	i := 0
	src := &PullSource{
		Stream: "s",
		Next: func() ([]tuple.Value, error) {
			i++
			if i > 5 {
				return nil, io.EOF
			}
			return []tuple.Value{tuple.String("A"), tuple.Float(1), tuple.Int(1), tuple.Bool(false)}, nil
		},
	}
	var m memSink
	n, err := src.Run(m.sink)
	if err != nil || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestPullSourceStop(t *testing.T) {
	src := &PullSource{
		Stream:   "s",
		Interval: time.Millisecond,
		Next: func() ([]tuple.Value, error) {
			return []tuple.Value{tuple.String("A"), tuple.Float(1), tuple.Int(1), tuple.Bool(false)}, nil
		},
	}
	var m memSink
	done := make(chan int64)
	go func() {
		n, _ := src.Run(m.sink)
		done <- n
	}()
	time.Sleep(20 * time.Millisecond)
	src.Stop()
	n := <-done
	if n == 0 {
		t.Fatal("nothing delivered before stop")
	}
}

func TestGeneratorCountAndLoss(t *testing.T) {
	mk := func(i int64) []tuple.Value {
		return []tuple.Value{tuple.String("A"), tuple.Float(float64(i)), tuple.Int(i), tuple.Bool(false)}
	}
	var m memSink
	g := &Generator{Stream: "s", Make: mk, Count: 1000, DropProb: 0.3, Seed: 4}
	n, err := g.Run(m.sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(m.count()) {
		t.Fatalf("returned %d, sank %d", n, m.count())
	}
	if n < 550 || n > 850 {
		t.Fatalf("loss off: delivered %d of 1000 at p=0.3", n)
	}
	// Determinism.
	var m2 memSink
	g2 := &Generator{Stream: "s", Make: mk, Count: 1000, DropProb: 0.3, Seed: 4}
	n2, _ := g2.Run(m2.sink)
	if n != n2 {
		t.Fatalf("non-deterministic: %d vs %d", n, n2)
	}
}

func TestGeneratorRatePacing(t *testing.T) {
	mk := func(i int64) []tuple.Value { return nil }
	var got []time.Time
	sink := func(string, []tuple.Value) error {
		got = append(got, time.Now())
		return nil
	}
	g := &Generator{Stream: "s", Make: mk, Count: 10, Rate: 1000, Burst: 1}
	start := time.Now()
	_, _ = g.Run(sink)
	if time.Since(start) < 8*time.Millisecond {
		t.Fatalf("10 rows at 1000/s finished in %v", time.Since(start))
	}
}

func TestSensorProxyRateControl(t *testing.T) {
	read := func(sensor int, i int64) []tuple.Value {
		return []tuple.Value{tuple.String(fmt.Sprint(sensor)), tuple.Float(1), tuple.Int(i), tuple.Bool(false)}
	}
	p := NewSensorProxy("s", 4, 2000, read)
	var m memSink
	go func() { _ = p.Run(m.sink) }()
	time.Sleep(30 * time.Millisecond)
	fast := p.Samples()
	p.SetSampleRate(100) // queries lowered acquisition
	time.Sleep(30 * time.Millisecond)
	slowDelta := p.Samples() - fast
	p.Stop()
	if fast == 0 {
		t.Fatal("no samples at high rate")
	}
	if slowDelta >= fast {
		t.Fatalf("rate control ineffective: %d then %d", fast, slowDelta)
	}
	if p.SampleRate() != 100 {
		t.Fatalf("rate = %d", p.SampleRate())
	}
}

func TestPushServerEndToEnd(t *testing.T) {
	var m memSink
	s := NewPushServer(m.sink)
	s.Register("s", schema)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn, "s,MSFT,50,1,true")
	fmt.Fprintln(conn, "unknown,1")      // unknown stream
	fmt.Fprintln(conn, "s,IBM,x,1,true") // bad value
	fmt.Fprintln(conn, "garbage")        // no comma
	fmt.Fprintln(conn, "s,IBM,60,2,false")
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for (s.Rows() < 2 || s.Errs() < 3) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Rows() != 2 || s.Errs() != 3 {
		t.Fatalf("rows=%d errs=%d", s.Rows(), s.Errs())
	}
}

func TestPushClient(t *testing.T) {
	// A fake remote source the wrapper connects out to.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fmt.Fprintln(conn, "MSFT,50,1,true")
		fmt.Fprintln(conn, "IBM,60,2,false")
		conn.Close()
	}()
	var m memSink
	c := &PushClient{Stream: "s", Schema: schema}
	n, err := c.Run(ln.Addr().String(), m.sink)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

// A server that accepts and then goes silent must not hang the client
// forever: with a ReadTimeout set, Run returns a timeout error the
// Supervisor can act on, and rows delivered before the stall survive.
func TestPushClientReadDeadlineOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fmt.Fprintln(conn, "MSFT,50,1,true")
		<-hold // stall: never send another byte, never close
	}()
	defer close(hold)

	var m memSink
	c := &PushClient{
		Stream: "s", Schema: schema,
		Opts: ClientOptions{
			DialTimeout:  time.Second,
			ReadTimeout:  150 * time.Millisecond,
			WriteTimeout: time.Second,
		},
	}
	start := time.Now()
	n, err := c.Run(ln.Addr().String(), m.sink)
	if n != 1 {
		t.Fatalf("rows before stall = %d, want 1", n)
	}
	if err == nil {
		t.Fatal("stalled server produced no error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// The per-line deadline must not kill a slow-but-alive feed: lines
// arriving within the timeout keep resetting it.
func TestPushClientDeadlineSlidesPerLine(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for i := 0; i < 4; i++ {
			fmt.Fprintln(conn, "MSFT,50,1,true")
			time.Sleep(60 * time.Millisecond) // under the 250ms deadline
		}
		conn.Close()
	}()
	var m memSink
	c := &PushClient{
		Stream: "s", Schema: schema,
		Opts: ClientOptions{ReadTimeout: 250 * time.Millisecond},
	}
	n, err := c.Run(ln.Addr().String(), m.sink)
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v (deadline fired on a live feed?)", n, err)
	}
}
