// Source supervision: the Fjords argument (§2.3, [MF02]) is that the
// engine must never block on a slow, stalled, or dead source — but the
// seed engine's wrappers died permanently on their first network error,
// which is the opposite failure mode: the engine survives, the data is
// gone forever. A Supervisor keeps a wrapper alive across an uncertain
// network: it re-runs the wrapper's connection loop with exponential
// backoff and jitter, caps the retry budget, and tracks a small health
// state machine (up → degraded → down) that telemetry and the
// tcq_sources system stream expose.
package ingress

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Health is a supervised source's state.
type Health int32

const (
	// HealthUp: the wrapper's run loop is connected and delivering.
	HealthUp Health = iota
	// HealthDegraded: the last attempt failed; reconnecting with backoff.
	HealthDegraded
	// HealthDown: the retry budget is exhausted, Stop was called, or the
	// source ended cleanly; the supervisor will not reconnect.
	HealthDown
)

func (h Health) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// Backoff configures the supervisor's retry schedule.
type Backoff struct {
	// Initial is the first retry delay (0 → 10ms).
	Initial time.Duration
	// Max caps the delay (0 → 5s).
	Max time.Duration
	// Factor multiplies the delay per consecutive failure (<=1 → 2).
	Factor float64
	// Jitter spreads each delay uniformly in ±Jitter·delay (0 → 0.2), so
	// a farm of wrappers does not reconnect in lockstep after an outage.
	Jitter float64
	// Budget caps *consecutive* failures before the source is declared
	// down (0 → unlimited). A healthy run resets the count.
	Budget int
	// HealthyAfter is how long a run must survive to count as healthy
	// and reset the failure count (0 → 500ms).
	HealthyAfter time.Duration
	// Seed makes the jitter deterministic (tests, chaos replays).
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 {
		b.Jitter = 0.2
	}
	if b.HealthyAfter <= 0 {
		b.HealthyAfter = 500 * time.Millisecond
	}
	return b
}

// SourceHealth is one supervised source's observable state (the shape
// the tcq_sources system stream and /metrics report).
type SourceHealth struct {
	Name     string
	State    string
	Restarts int64 // successful (re)starts after the first
	Failures int64 // run attempts that ended in error
	Rows     int64 // rows delivered across all attempts
	LastErr  string
}

// Supervisor keeps one wrapper running. Run is one connection attempt:
// it should deliver rows (reporting them via AddRows) until the source
// fails or ends; returning nil means the source completed cleanly (no
// restart), returning an error schedules a reconnect.
type Supervisor struct {
	Name string
	// Run is one attempt. The stop channel closes when Stop is called;
	// attempts that can block forever should select on it or close their
	// connection from a watcher goroutine.
	Run     func(stop <-chan struct{}) error
	Backoff Backoff

	state    atomic.Int32
	restarts atomic.Int64
	failures atomic.Int64
	rows     atomic.Int64
	starts   atomic.Int64

	mu      sync.Mutex
	lastErr string
	rng     *rand.Rand

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSupervisor builds a supervisor for one wrapper run loop.
func NewSupervisor(name string, run func(stop <-chan struct{}) error, b Backoff) *Supervisor {
	s := &Supervisor{Name: name, Run: run, Backoff: b.withDefaults()}
	s.state.Store(int32(HealthDown))
	s.rng = rand.New(rand.NewSource(s.Backoff.Seed + 1))
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	return s
}

// AddRows is called by the supervised run loop to account delivered
// rows (visible in tcq_sources and used to reason about loss).
func (s *Supervisor) AddRows(n int64) { s.rows.Add(n) }

// Start launches the supervision loop.
func (s *Supervisor) Start() {
	go s.loop()
}

// Stop ends supervision; the current attempt's stop channel closes and
// no further attempts are made. Blocks until the loop exits.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// State returns the current health state.
func (s *Supervisor) State() Health { return Health(s.state.Load()) }

// Snapshot returns the source's observable health.
func (s *Supervisor) Snapshot() SourceHealth {
	s.mu.Lock()
	lastErr := s.lastErr
	s.mu.Unlock()
	return SourceHealth{
		Name:     s.Name,
		State:    s.State().String(),
		Restarts: s.restarts.Load(),
		Failures: s.failures.Load(),
		Rows:     s.rows.Load(),
		LastErr:  lastErr,
	}
}

func (s *Supervisor) setErr(err error) {
	s.mu.Lock()
	s.lastErr = err.Error()
	s.mu.Unlock()
}

// jitter spreads d uniformly in ±Jitter·d.
func (s *Supervisor) jitter(d time.Duration) time.Duration {
	s.mu.Lock()
	f := 1 + s.Backoff.Jitter*(2*s.rng.Float64()-1)
	s.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// loop is the supervision state machine.
func (s *Supervisor) loop() {
	defer close(s.done)
	delay := s.Backoff.Initial
	consecutive := 0
	for {
		select {
		case <-s.stop:
			s.state.Store(int32(HealthDown))
			return
		default:
		}
		s.state.Store(int32(HealthUp))
		if s.starts.Add(1) > 1 {
			s.restarts.Add(1)
		}
		began := time.Now()
		err := s.Run(s.stop)
		if err == nil {
			// Clean completion: the source ended; nothing to retry.
			s.state.Store(int32(HealthDown))
			return
		}
		s.failures.Add(1)
		s.setErr(err)
		if time.Since(began) >= s.Backoff.HealthyAfter {
			// The run was healthy for a while before failing: treat the
			// failure as fresh, not part of a crash loop.
			consecutive = 0
			delay = s.Backoff.Initial
		}
		consecutive++
		if s.Backoff.Budget > 0 && consecutive >= s.Backoff.Budget {
			s.setErr(fmt.Errorf("retry budget exhausted after %d consecutive failures: %w", consecutive, err))
			s.state.Store(int32(HealthDown))
			return
		}
		s.state.Store(int32(HealthDegraded))
		select {
		case <-s.stop:
			s.state.Store(int32(HealthDown))
			return
		case <-time.After(s.jitter(delay)):
		}
		delay = time.Duration(float64(delay) * s.Backoff.Factor)
		if delay > s.Backoff.Max {
			delay = s.Backoff.Max
		}
	}
}

// Registry tracks every supervised source in a wrapper process; the
// server adapts Snapshots into the executor's tcq_sources feed.
type Registry struct {
	mu   sync.Mutex
	sups []*Supervisor
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Supervise registers a run loop under supervision and starts it.
func (r *Registry) Supervise(name string, run func(stop <-chan struct{}) error, b Backoff) *Supervisor {
	s := NewSupervisor(name, run, b)
	r.mu.Lock()
	r.sups = append(r.sups, s)
	r.mu.Unlock()
	s.Start()
	return s
}

// Snapshots reports every supervised source's health.
func (r *Registry) Snapshots() []SourceHealth {
	r.mu.Lock()
	sups := append([]*Supervisor(nil), r.sups...)
	r.mu.Unlock()
	out := make([]SourceHealth, len(sups))
	for i, s := range sups {
		out[i] = s.Snapshot()
	}
	return out
}

// StopAll stops every supervisor (server shutdown).
func (r *Registry) StopAll() {
	r.mu.Lock()
	sups := append([]*Supervisor(nil), r.sups...)
	r.mu.Unlock()
	for _, s := range sups {
		s.Stop()
	}
}
