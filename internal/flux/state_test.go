package flux

import (
	"bytes"
	"testing"
)

func TestStateCodecRoundtrip(t *testing.T) {
	b := BucketState{}
	b.Fold("alpha", 1.5)
	b.Fold("alpha", 2.5)
	b.Fold("beta", -3)
	b.Fold("", 0) // empty key is a legal group

	enc := AppendState(nil, b)
	got, rest, err := DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if len(got) != len(b) {
		t.Fatalf("groups = %d, want %d", len(got), len(b))
	}
	for k, g := range b {
		d := got[k]
		if d == nil || d.Count != g.Count || d.Sum != g.Sum {
			t.Fatalf("group %q = %+v, want %+v", k, d, g)
		}
	}

	// Equal states encode to equal bytes (sorted-key determinism).
	c := b.Clone()
	if !bytes.Equal(AppendState(nil, c), enc) {
		t.Fatal("clone encodes differently")
	}

	// Empty state roundtrips.
	e, rest, err := DecodeState(AppendState(nil, BucketState{}))
	if err != nil || len(e) != 0 || len(rest) != 0 {
		t.Fatalf("empty roundtrip: %v %d %d", err, len(e), len(rest))
	}
}

func TestStateCodecTruncated(t *testing.T) {
	b := BucketState{}
	b.Fold("key", 42)
	enc := AppendState(nil, b)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeState(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(enc))
		}
	}
}

func TestStateCloneIndependence(t *testing.T) {
	b := BucketState{}
	b.Fold("k", 1)
	c := b.Clone()
	b.Fold("k", 1)
	if c["k"].Count != 1 {
		t.Fatalf("clone aliased: count = %d", c["k"].Count)
	}
}

func TestStateMerge(t *testing.T) {
	a, b := BucketState{}, BucketState{}
	a.Fold("x", 1)
	a.Fold("y", 2)
	b.Fold("y", 3)
	b.Fold("z", 4)
	a.Merge(b)
	if a["x"].Count != 1 || a["y"].Count != 2 || a["y"].Sum != 5 || a["z"].Sum != 4 {
		t.Fatalf("merge wrong: %+v", a)
	}
	// Merge must copy, not alias, new groups.
	b["z"].Count = 99
	if a["z"].Count != 1 {
		t.Fatal("merge aliased a new group")
	}
}

func TestBucketOf(t *testing.T) {
	const n = 64
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		k := string(rune('a'+i%26)) + string(rune('0'+i%10))
		b := BucketOf(k, n)
		if b < 0 || b >= n {
			t.Fatalf("bucket %d out of range", b)
		}
		if b != BucketOf(k, n) {
			t.Fatal("BucketOf not deterministic")
		}
		seen[b] = true
	}
	if len(seen) < n/2 {
		t.Fatalf("poor spread: %d/%d buckets hit", len(seen), n)
	}
}
