// The movable-state core of Flux. Shah et al.'s central observation is
// that load balancing and fault tolerance are the *same* mechanism:
// both move a bucket's partitioned operator state between machines
// while the dataflow runs. This file is that mechanism's data plane,
// shared by the in-process simulation (flux.go) and the real networked
// deployment (internal/cluster): the state unit (BucketState), its fold
// and merge operations, a deterministic key→bucket partitioner, and a
// compact wire codec so state can cross a process boundary for failover
// catch-up and online handoff.
package flux

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// BucketState is the movable unit of operator state: the per-group
// accumulators (windowed grouped aggregate: count and sum) of one
// partition bucket. It is not safe for concurrent use; owners
// serialize access on their own goroutine, exactly like the simulated
// machines and the cluster workers do.
type BucketState map[string]*GroupState

// Fold accumulates one (key, value) observation.
func (b BucketState) Fold(key string, val float64) {
	g := b[key]
	if g == nil {
		g = &GroupState{Key: key}
		b[key] = g
	}
	g.Count++
	g.Sum += val
}

// Merge folds o's groups into b (used when collecting partial results
// across buckets or machines).
func (b BucketState) Merge(o BucketState) {
	for k, g := range o {
		d := b[k]
		if d == nil {
			b[k] = &GroupState{Key: k, Count: g.Count, Sum: g.Sum}
		} else {
			d.Count += g.Count
			d.Sum += g.Sum
		}
	}
}

// Clone deep-copies the state (replica maintenance: the secondary must
// not alias the primary's accumulators).
func (b BucketState) Clone() BucketState {
	c := make(BucketState, len(b))
	for k, g := range b {
		cp := *g
		c[k] = &cp
	}
	return c
}

// Keys returns the group keys in sorted order (deterministic output
// paths: COLLECT replies, tests, state digests).
func (b BucketState) Keys() []string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BucketOf deterministically maps a group key to one of n buckets
// (FNV-1a). Router and workers must agree on it, so it is fixed here
// rather than configurable.
func BucketOf(key string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// AppendState appends the wire form of b to dst: group count (uvarint)
// then per group key (len-prefixed), count (varint), sum (float bits).
// Groups are written in sorted key order so equal states encode to
// equal bytes — state digests and test assertions can compare buffers
// directly.
func AppendState(dst []byte, b BucketState) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	for _, k := range b.Keys() {
		g := b[k]
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendVarint(dst, g.Count)
		dst = binary.AppendUvarint(dst, math.Float64bits(g.Sum))
	}
	return dst
}

// DecodeState reads one encoded BucketState from buf, returning it and
// the remaining bytes.
func DecodeState(buf []byte) (BucketState, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, fmt.Errorf("flux: truncated state group count")
	}
	buf = buf[w:]
	b := make(BucketState, n)
	for i := uint64(0); i < n; i++ {
		kl, w := binary.Uvarint(buf)
		if w <= 0 || uint64(len(buf)-w) < kl {
			return nil, nil, fmt.Errorf("flux: truncated state key")
		}
		key := string(buf[w : w+int(kl)])
		buf = buf[w+int(kl):]
		cnt, w := binary.Varint(buf)
		if w <= 0 {
			return nil, nil, fmt.Errorf("flux: truncated state count")
		}
		buf = buf[w:]
		sum, w := binary.Uvarint(buf)
		if w <= 0 {
			return nil, nil, fmt.Errorf("flux: truncated state sum")
		}
		buf = buf[w:]
		b[key] = &GroupState{Key: key, Count: cnt, Sum: math.Float64frombits(sum)}
	}
	return b, buf, nil
}
