// Package flux implements Flux — the Fault-tolerant, Load-balancing
// eXchange (Shah et al., ICDE 2003; §2.4 of the TelegraphCQ paper). A
// Flux module is interposed between a producer and a partitioned
// consumer operator running across a shared-nothing cluster. Beyond the
// partitioning and routing of Graefe's Exchange, Flux provides:
//
//   - Load balancing: the input stream is split into many buckets mapped
//     onto machines; a controller observes per-machine load and moves
//     buckets — with their operator state — from overloaded to
//     underloaded machines while the dataflow keeps executing.
//   - Fault tolerance: with replication on, every bucket has a primary
//     and a secondary machine (a loosely coupled process pair). Inputs
//     are delivered to both; on failure the secondary is promoted and
//     processing continues without losing accumulated state.
//
// The "cluster" is simulated: each machine is a goroutine whose per-tuple
// service time is scaled by a speed factor. Service is modeled with
// sleeps, not CPU spins, so the simulated machines genuinely overlap on
// any host (including single-core CI machines); the model captures
// queueing, skew, and faults — not host CPU contention.
package flux

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// GroupState is the per-group accumulator of the partitioned consumer
// operator (a windowed grouped aggregate: count and sum).
type GroupState struct {
	Key   string
	Count int64
	Sum   float64
}

// Config sizes the simulated cluster.
type Config struct {
	Machines int
	// Buckets is the partitioning granularity; must be >= Machines.
	// More buckets make rebalancing finer-grained.
	Buckets int
	// QueueCap bounds each machine's input queue.
	QueueCap int
	// Replication enables process-pair fault tolerance.
	Replication bool
	// Speeds scales each machine's processing rate (1.0 = nominal).
	// Length must equal Machines; nil = all 1.0.
	Speeds []float64
	// PerTupleCostNs is the nominal CPU cost of processing one tuple.
	PerTupleCostNs int64
}

type msgKind uint8

const (
	msgData msgKind = iota
	msgFetch
	msgInstall
	msgDrop
	msgBarrier
)

type message struct {
	kind   msgKind
	bucket int
	t      *tuple.Tuple
	state  BucketState
	reply  chan BucketState
	ack    chan struct{}
}

type machine struct {
	id        int
	speed     float64
	costNs    int64
	in        fjord.Queue[message]
	buckets   map[int]BucketState
	processed atomic.Int64
	// stalls counts producer blocks on this machine's full queue — the
	// load signal the rebalancer acts on (queue *length* is useless
	// under a blocking producer: every queue drains while it waits).
	stalls atomic.Int64
	alive  atomic.Bool
	done   chan struct{}
	// owedNs accumulates service time and is paid in ≥1ms sleeps, so
	// the model stays accurate under coarse OS timer resolution.
	owedNs int64
}

// Flux is the router/controller pair. Route is called by a single
// producer; control methods (Rebalance, Kill, Drain) may be called from
// the same goroutine between Route calls.
type Flux struct {
	cfg      Config
	keyExpr  expr.Expr
	valExpr  expr.Expr
	machines []*machine
	// primary and secondary map bucket → machine id (-1 = none).
	primary   []int
	secondary []int

	mu         sync.Mutex
	routed     int64
	lost       int64
	moves      int64
	killed     map[int]bool
	pending    map[int][]*tuple.Tuple // bucket → buffered tuples mid-move
	lastStalls []int64                // stall counts at the previous Rebalance
}

// New starts the simulated cluster. keyExpr partitions and groups
// tuples; valExpr is summed per group.
func New(cfg Config, keyExpr, valExpr expr.Expr) (*Flux, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("flux: need at least one machine")
	}
	if cfg.Buckets < cfg.Machines {
		cfg.Buckets = cfg.Machines * 8
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Speeds == nil {
		cfg.Speeds = make([]float64, cfg.Machines)
		for i := range cfg.Speeds {
			cfg.Speeds[i] = 1
		}
	}
	if len(cfg.Speeds) != cfg.Machines {
		return nil, fmt.Errorf("flux: %d speeds for %d machines", len(cfg.Speeds), cfg.Machines)
	}
	f := &Flux{
		cfg:       cfg,
		keyExpr:   keyExpr,
		valExpr:   valExpr,
		primary:   make([]int, cfg.Buckets),
		secondary: make([]int, cfg.Buckets),
		killed:    map[int]bool{},
		pending:   map[int][]*tuple.Tuple{},
	}
	for i := 0; i < cfg.Machines; i++ {
		m := &machine{
			id:      i,
			speed:   cfg.Speeds[i],
			costNs:  cfg.PerTupleCostNs,
			in:      fjord.NewPull[message](cfg.QueueCap),
			buckets: map[int]BucketState{},
			done:    make(chan struct{}),
		}
		m.alive.Store(true)
		f.machines = append(f.machines, m)
		go m.run()
	}
	for b := 0; b < cfg.Buckets; b++ {
		f.primary[b] = b % cfg.Machines
		if cfg.Replication && cfg.Machines > 1 {
			f.secondary[b] = (b + 1) % cfg.Machines
		} else {
			f.secondary[b] = -1
		}
	}
	return f, nil
}

func (m *machine) run() {
	defer close(m.done)
	for {
		msg, err := m.in.Dequeue()
		if err != nil {
			return
		}
		switch msg.kind {
		case msgData:
			m.process(msg)
		case msgFetch:
			st := m.buckets[msg.bucket]
			delete(m.buckets, msg.bucket)
			if st == nil {
				st = BucketState{}
			}
			msg.reply <- st
		case msgInstall:
			// Merge: with replication the target may already hold a
			// replica of the bucket; the moved state supersedes it.
			m.buckets[msg.bucket] = msg.state
			if msg.ack != nil {
				msg.ack <- struct{}{}
			}
		case msgDrop:
			delete(m.buckets, msg.bucket)
			if msg.ack != nil {
				msg.ack <- struct{}{}
			}
		case msgBarrier:
			msg.ack <- struct{}{}
		}
	}
}

func (m *machine) process(msg message) {
	st := m.buckets[msg.bucket]
	if st == nil {
		st = BucketState{}
		m.buckets[msg.bucket] = st
	}
	// key materialized by the router at Values[0], value at Values[1]
	st.Fold(msg.t.Values[0].String(), msg.t.Values[1].AsFloat())
	if m.costNs > 0 {
		m.owedNs += int64(float64(m.costNs) / m.speed)
		if m.owedNs >= int64(time.Millisecond) {
			time.Sleep(time.Duration(m.owedNs))
			m.owedNs = 0
		}
	}
	m.processed.Add(1)
}

// Route partitions one tuple to its bucket's machine(s). Returns the
// bucket id.
func (f *Flux) Route(t *tuple.Tuple) (int, error) {
	kv, err := f.keyExpr.Eval(t)
	if err != nil {
		return -1, err
	}
	vv, err := f.valExpr.Eval(t)
	if err != nil {
		return -1, err
	}
	bucket := int(kv.Hash() % uint64(f.cfg.Buckets))
	// Flatten to a (key, value) pair so machines don't re-evaluate.
	flat := tuple.New(flatSchema, tuple.String(kv.String()), vv)

	f.mu.Lock()
	if buf, moving := f.pending[bucket]; moving {
		f.pending[bucket] = append(buf, flat)
		f.routed++
		f.mu.Unlock()
		return bucket, nil
	}
	prim, sec := f.primary[bucket], f.secondary[bucket]
	f.routed++
	f.mu.Unlock()

	delivered := f.send(prim, bucket, flat)
	if sec >= 0 {
		if f.send(sec, bucket, flat) {
			delivered = true
		}
	}
	if !delivered {
		f.mu.Lock()
		f.lost++
		f.mu.Unlock()
	}
	return bucket, nil
}

var flatSchema = tuple.NewSchema(
	tuple.Column{Source: "flux", Name: "key", Kind: tuple.KindString},
	tuple.Column{Source: "flux", Name: "val", Kind: tuple.KindFloat},
)

func (f *Flux) send(machineID, bucket int, t *tuple.Tuple) bool {
	if machineID < 0 {
		return false
	}
	m := f.machines[machineID]
	if !m.alive.Load() {
		return false
	}
	msg := message{kind: msgData, bucket: bucket, t: t}
	if m.in.TryEnqueue(msg) {
		return true
	}
	m.stalls.Add(1)
	return m.in.Enqueue(msg) == nil
}

// LoadStats returns per-machine (queueLen, processed) observations.
func (f *Flux) LoadStats() (queue []int, processed []int64) {
	for _, m := range f.machines {
		queue = append(queue, m.in.Len())
		processed = append(processed, m.processed.Load())
	}
	return
}

// Stalls returns per-machine producer-stall counts.
func (f *Flux) Stalls() []int64 {
	out := make([]int64, len(f.machines))
	for i, m := range f.machines {
		out[i] = m.stalls.Load()
	}
	return out
}

// MoveBucket migrates one bucket's state from its current primary to
// machine dst, using the paper's pause/buffer → move → resume protocol.
func (f *Flux) MoveBucket(bucket, dst int) error {
	if dst < 0 || dst >= len(f.machines) || !f.machines[dst].alive.Load() {
		return fmt.Errorf("flux: bad destination %d", dst)
	}
	f.mu.Lock()
	src := f.primary[bucket]
	if src == dst {
		f.mu.Unlock()
		return nil
	}
	if _, already := f.pending[bucket]; already {
		f.mu.Unlock()
		return fmt.Errorf("flux: bucket %d already moving", bucket)
	}
	f.pending[bucket] = []*tuple.Tuple{} // pause: buffer new arrivals
	f.mu.Unlock()

	// Fetch state from the source (processed in queue order, so all
	// previously routed data is folded in first).
	var st BucketState
	if f.machines[src].alive.Load() {
		reply := make(chan BucketState, 1)
		if err := f.machines[src].in.Enqueue(message{kind: msgFetch, bucket: bucket, reply: reply}); err == nil {
			st = <-reply
		}
	}
	if st == nil {
		st = BucketState{}
	}
	// Install at destination.
	ack := make(chan struct{}, 1)
	if err := f.machines[dst].in.Enqueue(message{kind: msgInstall, bucket: bucket, state: st, ack: ack}); err != nil {
		return fmt.Errorf("flux: install on %d: %w", dst, err)
	}
	<-ack

	// Re-replicate: the new secondary gets a deep copy so a later
	// failover loses nothing (the paper's state-movement mechanisms are
	// reused for replica maintenance).
	newSec := -1
	if f.cfg.Replication {
		f.mu.Lock()
		newSec = f.secondary[bucket]
		if newSec == dst {
			newSec = src // keep primary and secondary distinct
		}
		f.mu.Unlock()
		if newSec >= 0 && f.machines[newSec].alive.Load() {
			ack2 := make(chan struct{}, 1)
			if err := f.machines[newSec].in.Enqueue(message{
				kind: msgInstall, bucket: bucket, state: st.Clone(), ack: ack2,
			}); err == nil {
				<-ack2
			} else {
				newSec = -1
			}
		}
	}

	// Resume: update routing, drain the pause buffer to the new primary.
	f.mu.Lock()
	f.primary[bucket] = dst
	f.secondary[bucket] = newSec
	buf := f.pending[bucket]
	delete(f.pending, bucket)
	sec := f.secondary[bucket]
	f.moves++
	f.mu.Unlock()

	for _, t := range buf {
		if !f.send(dst, bucket, t) {
			f.mu.Lock()
			f.lost++
			f.mu.Unlock()
		}
		if sec >= 0 {
			f.send(sec, bucket, t)
		}
	}
	return nil
}

// Rebalance inspects load and moves one bucket from the most loaded to
// the least loaded machine. Returns whether a move happened. Load is
// measured as producer stalls accumulated since the previous Rebalance
// call: a machine the producer keeps blocking on is oversubscribed.
func (f *Flux) Rebalance() (bool, error) {
	f.mu.Lock()
	if f.lastStalls == nil {
		f.lastStalls = make([]int64, len(f.machines))
	}
	f.mu.Unlock()
	stalls := f.Stalls()
	maxM, minM := -1, -1
	var maxD, minD int64
	for i, m := range f.machines {
		if !m.alive.Load() {
			continue
		}
		d := stalls[i] - f.lastStalls[i]
		if maxM < 0 || d > maxD {
			maxM, maxD = i, d
		}
		if minM < 0 || d < minD {
			minM, minD = i, d
		}
	}
	for i := range f.lastStalls {
		f.lastStalls[i] = stalls[i]
	}
	// Move only under clear, persistent imbalance: each move pauses a
	// bucket and pays a state fetch behind the victim's backlog.
	if maxM < 0 || minM < 0 || maxM == minM || maxD < 2*minD+4 {
		return false, nil
	}
	// Move one of the loaded machine's buckets.
	f.mu.Lock()
	bucket := -1
	for b, p := range f.primary {
		if p == maxM {
			if _, moving := f.pending[b]; !moving {
				bucket = b
				break
			}
		}
	}
	f.mu.Unlock()
	if bucket < 0 {
		return false, nil
	}
	return true, f.MoveBucket(bucket, minM)
}

// Kill simulates a machine fault: its queue closes and in-flight data is
// lost. With replication, every bucket whose primary died is failed over
// to its secondary; without, the bucket restarts empty on a survivor.
func (f *Flux) Kill(machineID int) error {
	if machineID < 0 || machineID >= len(f.machines) {
		return fmt.Errorf("flux: no machine %d", machineID)
	}
	m := f.machines[machineID]
	if !m.alive.CompareAndSwap(true, false) {
		return nil
	}
	m.in.Close()
	<-m.done
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killed[machineID] = true
	survivor := -1
	for i, sm := range f.machines {
		if sm.alive.Load() {
			survivor = i
			break
		}
	}
	if survivor < 0 {
		return fmt.Errorf("flux: no surviving machines")
	}
	for b := range f.primary {
		if f.primary[b] == machineID {
			if sec := f.secondary[b]; sec >= 0 && f.machines[sec].alive.Load() {
				f.primary[b] = sec // failover to the process pair
				f.secondary[b] = -1
			} else {
				f.primary[b] = survivor // restart empty: state lost
			}
		}
		if f.secondary[b] == machineID {
			f.secondary[b] = -1
		}
	}
	return nil
}

// Barrier waits until every alive machine has drained its queue.
func (f *Flux) Barrier() {
	for _, m := range f.machines {
		if !m.alive.Load() {
			continue
		}
		ack := make(chan struct{}, 1)
		if err := m.in.Enqueue(message{kind: msgBarrier, ack: ack}); err == nil {
			<-ack
		}
	}
}

// Collect drains all machines and merges the primary replica of every
// bucket into the final grouped result.
func (f *Flux) Collect() map[string]*GroupState {
	f.Barrier()
	out := BucketState{}
	f.mu.Lock()
	primary := append([]int(nil), f.primary...)
	f.mu.Unlock()
	// Fetch each bucket from its primary.
	states := make([]BucketState, f.cfg.Buckets)
	for b := 0; b < f.cfg.Buckets; b++ {
		m := f.machines[primary[b]]
		if !m.alive.Load() {
			continue
		}
		reply := make(chan BucketState, 1)
		if err := m.in.Enqueue(message{kind: msgFetch, bucket: b, reply: reply}); err != nil {
			continue
		}
		states[b] = <-reply
	}
	for b, st := range states {
		if st == nil {
			continue
		}
		out.Merge(st)
		// Re-install so Collect is not destructive.
		m := f.machines[primary[b]]
		ack := make(chan struct{}, 1)
		if err := m.in.Enqueue(message{kind: msgInstall, bucket: b, state: st, ack: ack}); err == nil {
			<-ack
		}
	}
	return out
}

// Stats returns router counters.
func (f *Flux) Stats() (routed, lost, moves int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routed, f.lost, f.moves
}

// Close shuts the cluster down.
func (f *Flux) Close() {
	for _, m := range f.machines {
		if m.alive.CompareAndSwap(true, false) {
			m.in.Close()
			<-m.done
		}
	}
}
