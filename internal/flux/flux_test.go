package flux

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"telegraphcq/internal/expr"
	"telegraphcq/internal/tuple"
)

var schema = tuple.NewSchema(
	tuple.Column{Source: "flows", Name: "host", Kind: tuple.KindString},
	tuple.Column{Source: "flows", Name: "bytes", Kind: tuple.KindFloat},
)

func flow(host string, bytes float64) *tuple.Tuple {
	return tuple.New(schema, tuple.String(host), tuple.Float(bytes))
}

func keyCol() expr.Expr { return expr.Col("", "host") }
func valCol() expr.Expr { return expr.Col("", "bytes") }

func mustNew(t *testing.T, cfg Config) *Flux {
	t.Helper()
	f, err := New(cfg, keyCol(), valCol())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func pump(t *testing.T, f *Flux, n int, hosts int, r *rand.Rand) map[string]int64 {
	t.Helper()
	want := map[string]int64{}
	for i := 0; i < n; i++ {
		h := fmt.Sprintf("h%d", r.Intn(hosts))
		if _, err := f.Route(flow(h, 1)); err != nil {
			t.Fatal(err)
		}
		want[h]++
	}
	return want
}

func checkCounts(t *testing.T, got map[string]*GroupState, want map[string]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("groups: got %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || g.Count != w {
			t.Fatalf("group %s: got %+v, want count %d", k, g, w)
		}
		if g.Sum != float64(w) {
			t.Fatalf("group %s: sum %v", k, g.Sum)
		}
	}
}

func TestPartitionedAggregateCorrect(t *testing.T) {
	f := mustNew(t, Config{Machines: 4, Buckets: 64})
	defer f.Close()
	want := pump(t, f, 5000, 50, rand.New(rand.NewSource(1)))
	checkCounts(t, f.Collect(), want)
	routed, lost, _ := f.Stats()
	if routed != 5000 || lost != 0 {
		t.Fatalf("routed=%d lost=%d", routed, lost)
	}
}

func TestCollectIsNotDestructive(t *testing.T) {
	f := mustNew(t, Config{Machines: 2, Buckets: 8})
	defer f.Close()
	want := pump(t, f, 500, 10, rand.New(rand.NewSource(2)))
	checkCounts(t, f.Collect(), want)
	checkCounts(t, f.Collect(), want) // second collect sees same state
}

func TestMoveBucketPreservesState(t *testing.T) {
	f := mustNew(t, Config{Machines: 4, Buckets: 16})
	defer f.Close()
	r := rand.New(rand.NewSource(3))
	want := pump(t, f, 2000, 20, r)
	f.Barrier()
	// Move every bucket somewhere else.
	for b := 0; b < 16; b++ {
		if err := f.MoveBucket(b, (b+2)%4); err != nil {
			t.Fatal(err)
		}
	}
	// Keep streaming after the moves.
	for k, v := range pump(t, f, 2000, 20, r) {
		want[k] += v
	}
	checkCounts(t, f.Collect(), want)
	_, lost, moves := f.Stats()
	if lost != 0 {
		t.Fatalf("lost = %d", lost)
	}
	if moves == 0 {
		t.Fatal("no moves recorded")
	}
}

func TestMoveBucketToSelfNoop(t *testing.T) {
	f := mustNew(t, Config{Machines: 2, Buckets: 4})
	defer f.Close()
	if err := f.MoveBucket(0, 0); err != nil {
		t.Fatal(err)
	}
	_, _, moves := f.Stats()
	if moves != 0 {
		t.Fatal("self-move counted")
	}
}

func TestRebalanceMovesLoadOffSlowMachine(t *testing.T) {
	// Machine 0 is 50× slower; with small queues it backs up.
	f := mustNew(t, Config{
		Machines: 2, Buckets: 16, QueueCap: 64,
		Speeds: []float64{0.02, 1}, PerTupleCostNs: 20000,
	})
	defer f.Close()
	r := rand.New(rand.NewSource(4))
	want := map[string]int64{}
	rebalanced := false
	for i := 0; i < 3000; i++ {
		h := fmt.Sprintf("h%d", r.Intn(32))
		if _, err := f.Route(flow(h, 1)); err != nil {
			t.Fatal(err)
		}
		want[h]++
		if i%100 == 99 {
			moved, err := f.Rebalance()
			if err != nil {
				t.Fatal(err)
			}
			rebalanced = rebalanced || moved
		}
	}
	if !rebalanced {
		t.Fatal("rebalancer never triggered under 50× skew")
	}
	checkCounts(t, f.Collect(), want)
	// Most buckets should have migrated off the slow machine.
	slow := 0
	for _, p := range f.primary {
		if p == 0 {
			slow++
		}
	}
	if slow > 8 {
		t.Fatalf("slow machine still owns %d/16 buckets", slow)
	}
}

func TestKillWithoutReplicationLosesState(t *testing.T) {
	f := mustNew(t, Config{Machines: 4, Buckets: 16})
	defer f.Close()
	want := pump(t, f, 4000, 40, rand.New(rand.NewSource(5)))
	f.Barrier()
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	got := f.Collect()
	var gotTotal, wantTotal int64
	for _, g := range got {
		gotTotal += g.Count
	}
	for _, w := range want {
		wantTotal += w
	}
	if gotTotal >= wantTotal {
		t.Fatalf("no loss after unreplicated failure: got %d, fed %d", gotTotal, wantTotal)
	}
}

func TestKillWithReplicationFailsOverLossless(t *testing.T) {
	f := mustNew(t, Config{Machines: 4, Buckets: 16, Replication: true})
	defer f.Close()
	r := rand.New(rand.NewSource(6))
	want := pump(t, f, 4000, 40, r)
	f.Barrier()
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	// Processing continues after failover.
	for k, v := range pump(t, f, 2000, 40, r) {
		want[k] += v
	}
	checkCounts(t, f.Collect(), want)
}

func TestReplicationSurvivesMoveThenKill(t *testing.T) {
	f := mustNew(t, Config{Machines: 3, Buckets: 9, Replication: true})
	defer f.Close()
	r := rand.New(rand.NewSource(7))
	want := pump(t, f, 3000, 30, r)
	f.Barrier()
	for b := 0; b < 9; b++ {
		if err := f.MoveBucket(b, (b+1)%3); err != nil {
			t.Fatal(err)
		}
	}
	f.Barrier()
	// Kill each bucket's new primary's machine 0; replicas must cover.
	if err := f.Kill(0); err != nil {
		t.Fatal(err)
	}
	for k, v := range pump(t, f, 1000, 30, r) {
		want[k] += v
	}
	checkCounts(t, f.Collect(), want)
}

func TestKillTwice(t *testing.T) {
	f := mustNew(t, Config{Machines: 2, Buckets: 4, Replication: true})
	defer f.Close()
	_ = pump(t, f, 100, 5, rand.New(rand.NewSource(8)))
	if err := f.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(0); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := f.Kill(1); err == nil {
		t.Fatal("killing the last machine should error")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Machines: 0}, keyCol(), valCol()); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := New(Config{Machines: 2, Speeds: []float64{1}}, keyCol(), valCol()); err == nil {
		t.Fatal("wrong speeds length accepted")
	}
	// Buckets < machines auto-corrects.
	f, err := New(Config{Machines: 4, Buckets: 2}, keyCol(), valCol())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.cfg.Buckets < 4 {
		t.Fatalf("buckets = %d", f.cfg.Buckets)
	}
}

func TestLoadStats(t *testing.T) {
	f := mustNew(t, Config{Machines: 3, Buckets: 9})
	defer f.Close()
	_ = pump(t, f, 300, 10, rand.New(rand.NewSource(9)))
	f.Barrier()
	q, p := f.LoadStats()
	if len(q) != 3 || len(p) != 3 {
		t.Fatalf("stats lengths: %d %d", len(q), len(p))
	}
	var total int64
	for _, x := range p {
		total += x
	}
	if total != 300 {
		t.Fatalf("processed total = %d", total)
	}
}

func TestThroughputSkewImprovesWithRebalance(t *testing.T) {
	// Wall-clock shape check for E6: with a 10× slow machine, enabling
	// rebalancing must not be slower than leaving the skew in place.
	run := func(rebalance bool) time.Duration {
		f := mustNew(t, Config{
			Machines: 4, Buckets: 32, QueueCap: 32,
			Speeds: []float64{0.1, 1, 1, 1}, PerTupleCostNs: 5000,
		})
		defer f.Close()
		r := rand.New(rand.NewSource(10))
		start := time.Now()
		for i := 0; i < 4000; i++ {
			_, _ = f.Route(flow(fmt.Sprintf("h%d", r.Intn(64)), 1))
			if rebalance && i%200 == 199 {
				_, _ = f.Rebalance()
			}
		}
		f.Barrier()
		return time.Since(start)
	}
	slow := run(false)
	fast := run(true)
	t.Logf("skewed: %v, rebalanced: %v", slow, fast)
	if fast > slow*3/2 {
		t.Fatalf("rebalancing made things much worse: %v vs %v", fast, slow)
	}
}
