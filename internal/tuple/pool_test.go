package tuple

import "testing"

func poolSchema() *Schema {
	return NewSchema(
		Column{Source: "pool_test", Name: "a", Kind: KindInt},
		Column{Source: "pool_test", Name: "b", Kind: KindString},
	)
}

func TestRecycleAndReuse(t *testing.T) {
	s := poolSchema()
	a := NewPooled(s)
	a.Values = append(a.Values, Int(1), String("x"))
	a.Lineage().Done.Add(7)
	a.TS.Seq = 99
	a.Arrival = 42
	Recycle(a)

	// The next pooled tuple must come up empty regardless of what the
	// recycled one carried — especially the lineage (a stale Done bit
	// would corrupt eddy routing).
	b := NewPooled(s)
	if len(b.Values) != 0 {
		t.Fatalf("reused tuple has %d values, want 0", len(b.Values))
	}
	if b.TS.Seq != 0 || b.Arrival != 0 {
		t.Fatalf("reused tuple has stale metadata: TS.Seq=%d Arrival=%d", b.TS.Seq, b.Arrival)
	}
	if b.Lin != nil {
		t.Fatal("reused tuple has a lineage attached before Lineage() was called")
	}
	if lin := b.Lineage(); !lin.Ready.Empty() || !lin.Done.Empty() || !lin.Queries.Empty() {
		t.Fatalf("pooled lineage not cleared: ready=%v done=%v queries=%v",
			lin.Ready.String(), lin.Done.String(), lin.Queries.String())
	}
	Recycle(b)
}

func TestRetainBlocksRecycle(t *testing.T) {
	s := poolSchema()
	a := NewPooled(s)
	a.Values = append(a.Values, Int(5))
	a.Retain()
	if !a.Retained() {
		t.Fatal("Retained() = false after Retain")
	}
	Recycle(a) // must be a no-op
	if a.Schema != s || len(a.Values) != 1 || a.Values[0].I != 5 {
		t.Fatal("Recycle mutated a retained tuple")
	}
	Recycle(a) // and must stay a no-op (no double-put panic)
}

func TestRecycleNilIsNoop(t *testing.T) {
	Recycle(nil)
}

func TestDoubleRecyclePanics(t *testing.T) {
	a := NewPooled(poolSchema())
	Recycle(a)
	defer func() {
		if recover() == nil {
			t.Fatal("second Recycle did not panic")
		}
	}()
	Recycle(a)
}

func TestCloneIndependentOfRecycledOriginal(t *testing.T) {
	s := poolSchema()
	a := NewPooled(s)
	a.Values = append(a.Values, Int(10), String("keep"))
	a.Lineage().Queries.Add(3)
	c := a.Clone()
	Recycle(a)
	// Clone must not share storage with the recycled original.
	if c.Values[0].I != 10 || c.Values[1].S != "keep" {
		t.Fatalf("clone values corrupted after original recycled: %v", c.Values)
	}
	if !c.Lin.Queries.Contains(3) {
		t.Fatal("clone lineage corrupted after original recycled")
	}
	Recycle(c)
}

func TestConcatAndProjectFromPool(t *testing.T) {
	s := poolSchema()
	a, b := New(s, Int(1), String("l")), New(s, Int(2), String("r"))
	a.Arrival, b.Arrival = 5, 9
	j := Concat(a, b)
	if len(j.Values) != 4 || j.Values[0].I != 1 || j.Values[3].S != "r" {
		t.Fatalf("Concat values wrong: %v", j.Values)
	}
	if j.Arrival != 9 {
		t.Fatalf("Concat Arrival = %d, want max(5,9)", j.Arrival)
	}
	p := j.Project(s, []int{2, 3})
	if len(p.Values) != 2 || p.Values[0].I != 2 {
		t.Fatalf("Project values wrong: %v", p.Values)
	}
	Recycle(j)
	Recycle(p)
}
