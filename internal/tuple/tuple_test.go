package tuple

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func stockSchema() *Schema {
	return NewSchema(
		Column{Source: "ClosingStockPrices", Name: "timestamp", Kind: KindInt},
		Column{Source: "ClosingStockPrices", Name: "stockSymbol", Kind: KindString},
		Column{Source: "ClosingStockPrices", Name: "closingPrice", Kind: KindFloat},
	)
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "integer": KindInt, "long": KindInt, "bigint": KindInt,
		"float": KindFloat, "double": KindFloat, "real": KindFloat,
		"string": KindString, "text": KindString, "varchar": KindString, "char": KindString,
		"bool": KindBool, "boolean": KindBool,
		"time": KindTime, "timestamp": KindTime,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) succeeded")
	}
}

func TestValueCoercions(t *testing.T) {
	if Bool(true).Numeric() {
		t.Error("Bool should not be Numeric")
	}
	if Int(7).AsFloat() != 7 {
		t.Error("Int.AsFloat")
	}
	if Float(2.5).AsInt() != 2 {
		t.Error("Float.AsInt truncation")
	}
	if Bool(true).AsInt() != 1 || Bool(false).AsFloat() != 0 {
		t.Error("Bool coercion")
	}
	if !math.IsNaN(String("x").AsFloat()) {
		t.Error("String.AsFloat should be NaN")
	}
	now := time.Unix(100, 5)
	if !Time(now).AsTime().Equal(now) {
		t.Error("Time round trip")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null(), "42": Int(42), "2.5": Float(2.5),
		"hi": String("hi"), "true": Bool(true), "false": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	type tc struct {
		a, b Value
		cmp  int
		ok   bool
	}
	cases := []tc{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(2), Float(2.0), 0, true},
		{Float(1.5), Int(2), -1, true},
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Null(), Int(5), -1, true},
		{Int(5), Null(), 1, true},
		{Null(), Null(), 0, true},
		{String("a"), Int(1), 0, false},
		{Int(math.MaxInt64), Int(math.MaxInt64 - 1), 1, true}, // precision beyond float53
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if cmp != c.cmp || ok != c.ok {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestHashEqualConsistency(t *testing.T) {
	// Values that are Equal must hash alike.
	pairs := [][2]Value{
		{Int(5), Float(5)},
		{Float(0), Float(math.Copysign(0, -1))},
		{String("abc"), String("abc")},
		{Bool(true), Bool(true)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("expected %v == %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Hash(%v) != Hash(%v)", p[0], p[1])
		}
	}
	if Int(1).Hash() == Int(2).Hash() {
		t.Error("suspicious collision 1 vs 2")
	}
	if String("a").Hash() == String("b").Hash() {
		t.Error("suspicious collision a vs b")
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(Int(a), Int(b))
		c2, ok2 := Compare(Int(b), Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := stockSchema()
	if i, err := s.ColumnIndex("", "closingPrice"); err != nil || i != 2 {
		t.Fatalf("unqualified lookup: %d, %v", i, err)
	}
	if i, err := s.ColumnIndex("ClosingStockPrices", "timestamp"); err != nil || i != 0 {
		t.Fatalf("qualified lookup: %d, %v", i, err)
	}
	if _, err := s.ColumnIndex("", "nope"); err == nil {
		t.Fatal("unknown column did not error")
	}
	if _, err := s.ColumnIndex("wrong", "timestamp"); err == nil {
		t.Fatal("wrong source did not error")
	}
	// Ambiguity after a self-join style concat.
	j := s.Rename("c1").Concat(s.Rename("c2"))
	if _, err := j.ColumnIndex("", "closingPrice"); err == nil {
		t.Fatal("ambiguous column did not error")
	}
	if i, err := j.ColumnIndex("c2", "closingPrice"); err != nil || i != 5 {
		t.Fatalf("qualified in join: %d, %v", i, err)
	}
}

func TestSchemaSourcesAndConcat(t *testing.T) {
	s := stockSchema()
	if len(s.Sources) != 1 || s.Sources[0] != "ClosingStockPrices" {
		t.Fatalf("Sources = %v", s.Sources)
	}
	j := s.Rename("a").Concat(s.Rename("b"))
	if len(j.Sources) != 2 || !j.HasSource("a") || !j.HasSource("b") || j.HasSource("c") {
		t.Fatalf("join sources: %v", j.Sources)
	}
	if j.Arity() != 6 {
		t.Fatalf("Arity = %d", j.Arity())
	}
}

func TestSchemaProject(t *testing.T) {
	s := stockSchema()
	p := s.Project([]int{2, 0})
	if p.Arity() != 2 || p.Cols[0].Name != "closingPrice" || p.Cols[1].Name != "timestamp" {
		t.Fatalf("Project = %v", p)
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	s := stockSchema()
	tp := New(s, Int(1), String("MSFT"), Float(50))
	tp.TS = Timestamp{Seq: 1}
	tp.Lineage().Ready.Add(3)
	tp.Lineage().Queries.Add(7)
	c := tp.Clone()
	c.Values[2] = Float(99)
	c.Lin.Ready.Add(4)
	c.Lin.Queries.Remove(7)
	if tp.Values[2].F != 50 || tp.Lin.Ready.Contains(4) || !tp.Lin.Queries.Contains(7) {
		t.Fatal("Clone shares state with original")
	}
	if !c.Lin.Ready.Contains(3) {
		t.Fatal("Clone lost lineage")
	}
}

func TestTupleCloneWithoutLineage(t *testing.T) {
	tp := New(stockSchema(), Int(1), String("A"), Float(2))
	c := tp.Clone()
	if c.Lin != nil {
		t.Fatal("Clone invented lineage")
	}
}

func TestConcatTimestamps(t *testing.T) {
	s := stockSchema()
	a := New(s.Rename("a"), Int(1), String("A"), Float(1))
	a.TS = Timestamp{Seq: 5, Wall: time.Unix(10, 0)}
	b := New(s.Rename("b"), Int(2), String("B"), Float(2))
	b.TS = Timestamp{Seq: 9, Wall: time.Unix(3, 0)}
	j := Concat(a, b)
	if j.TS.Seq != 9 {
		t.Errorf("Concat Seq = %d, want 9", j.TS.Seq)
	}
	if !j.TS.Wall.Equal(time.Unix(10, 0)) {
		t.Errorf("Concat Wall = %v", j.TS.Wall)
	}
	if len(j.Values) != 6 || j.Values[3].I != 2 {
		t.Errorf("Concat values: %v", j)
	}
}

func TestTupleKeyDistinctness(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Kind: KindString},
		Column{Name: "b", Kind: KindString},
	)
	t1 := New(s, String("x"), String("y"))
	t2 := New(s, String("xy"), String(""))
	if t1.Key([]int{0, 1}) == t2.Key([]int{0, 1}) {
		t.Fatal("key collision across column boundaries")
	}
	t3 := New(s, String("x\x00"), String("y"))
	if t1.Key([]int{0, 1}) == t3.Key([]int{0, 1}) {
		t.Fatal("key collision with embedded NUL")
	}
	if t1.Key([]int{0}) != New(s, String("x"), String("zzz")).Key([]int{0}) {
		t.Fatal("same group key should match")
	}
}

func TestComparePartial(t *testing.T) {
	w := func(sec int64) time.Time { return time.Unix(sec, 0) }
	cases := []struct {
		a, b Timestamp
		want Ordering
	}{
		{Timestamp{Seq: 1}, Timestamp{Seq: 2}, Before},
		{Timestamp{Seq: 3}, Timestamp{Seq: 2}, After},
		{Timestamp{Seq: 2}, Timestamp{Seq: 2}, Simultaneous},
		{Timestamp{Wall: w(1)}, Timestamp{Wall: w(2)}, Before},
		{Timestamp{Seq: 1, Wall: w(5)}, Timestamp{Seq: 2, Wall: w(6)}, Before},
		// Logical and physical disagree: incomparable.
		{Timestamp{Seq: 1, Wall: w(9)}, Timestamp{Seq: 2, Wall: w(6)}, Incomparable},
		// One component simultaneous: the other decides.
		{Timestamp{Seq: 2, Wall: w(1)}, Timestamp{Seq: 2, Wall: w(6)}, Before},
		// Missing components on either side.
		{Timestamp{Seq: 1}, Timestamp{Wall: w(2)}, Incomparable},
		{Timestamp{}, Timestamp{}, Incomparable},
		// Seq present on one side only: physical decides.
		{Timestamp{Seq: 4, Wall: w(1)}, Timestamp{Wall: w(2)}, Before},
	}
	for i, c := range cases {
		if got := ComparePartial(c.a, c.b); got != c.want {
			t.Errorf("case %d: ComparePartial = %v, want %v", i, got, c.want)
		}
	}
}

func TestInstant(t *testing.T) {
	ts := Timestamp{Seq: 42, Wall: time.Unix(5, 0)}
	if ts.Instant(LogicalTime) != 42 {
		t.Error("logical instant")
	}
	if ts.Instant(PhysicalTime) != 5000 { // milliseconds
		t.Errorf("physical instant = %d", ts.Instant(PhysicalTime))
	}
	// A zero Wall has no physical coordinate: it must map to the
	// NoInstant sentinel, not to the epoch (0), which would place
	// untimestamped tuples inside any physical window touching it.
	if got := (Timestamp{}).Instant(PhysicalTime); got != NoInstant {
		t.Errorf("zero wall instant = %d, want NoInstant", got)
	}
	if (Timestamp{Seq: 7}).Instant(LogicalTime) != 7 {
		t.Error("logical instant ignores wall")
	}
}

func TestProjectTuple(t *testing.T) {
	s := stockSchema()
	tp := New(s, Int(1), String("MSFT"), Float(50))
	ps := s.Project([]int{1})
	p := tp.Project(ps, []int{1})
	if p.Values[0].S != "MSFT" || p.Schema.Arity() != 1 {
		t.Fatalf("Project = %v", p)
	}
}

func TestTupleString(t *testing.T) {
	tp := New(stockSchema(), Int(1), String("MSFT"), Float(50.5))
	if got := tp.String(); got != "1,MSFT,50.5" {
		t.Fatalf("String = %q", got)
	}
}
