package tuple

import (
	"math"
	"time"
)

// Timestamp carries the two simultaneous notions of time the paper's
// windowing algebra supports (§4.1): a logical sequence number assigned
// per stream, and a physical wall-clock instant. Because loosely
// synchronized distributed sources cannot be totally ordered, time is
// treated as a *partial* order: two timestamps are ordered only when both
// components agree (or a component is absent on both sides).
type Timestamp struct {
	// Seq is the 1-based logical sequence number within the tuple's
	// stream; 0 means "no logical time" (e.g. tuples from static tables).
	Seq int64
	// Wall is the physical arrival or source time; the zero time means
	// "no physical time".
	Wall time.Time
}

// Ordering is the result of comparing two partially ordered timestamps.
type Ordering int8

const (
	Before       Ordering = -1
	Simultaneous Ordering = 0
	After        Ordering = 1
	// Incomparable is returned when the logical and physical components
	// disagree, or when neither side carries a usable component.
	Incomparable Ordering = 2
)

// ComparePartial compares two timestamps under the partial order.
func ComparePartial(a, b Timestamp) Ordering {
	logical := Incomparable
	if a.Seq != 0 && b.Seq != 0 {
		switch {
		case a.Seq < b.Seq:
			logical = Before
		case a.Seq > b.Seq:
			logical = After
		default:
			logical = Simultaneous
		}
	}
	physical := Incomparable
	if !a.Wall.IsZero() && !b.Wall.IsZero() {
		switch {
		case a.Wall.Before(b.Wall):
			physical = Before
		case a.Wall.After(b.Wall):
			physical = After
		default:
			physical = Simultaneous
		}
	}
	switch {
	case logical == Incomparable:
		return physical
	case physical == Incomparable:
		return logical
	case logical == physical:
		return logical
	case logical == Simultaneous:
		return physical
	case physical == Simultaneous:
		return logical
	default:
		return Incomparable
	}
}

// Domain selects which notion of time a window is defined over.
type Domain uint8

const (
	// LogicalTime windows are defined over per-stream sequence numbers;
	// their memory requirements are known a priori (§4.1.2).
	LogicalTime Domain = iota
	// PhysicalTime windows are defined over wall-clock instants; memory
	// use depends on the arrival rate.
	PhysicalTime
)

func (d Domain) String() string {
	if d == LogicalTime {
		return "logical"
	}
	return "physical"
}

// NoInstant is the sentinel Instant returns for a timestamp that has no
// coordinate in the requested domain (an untimestamped tuple asked for
// physical time). It lies below every representable instant, so range
// checks exclude it; window operators additionally skip it explicitly —
// an untimestamped tuple belongs to no physical window, rather than to
// whichever window happens to touch the epoch.
const NoInstant = int64(math.MinInt64)

// Instant extracts the coordinate of ts in the given domain. Physical
// instants are expressed in milliseconds since the Unix epoch — the
// granularity the SQL dialect's PHYSICAL windows quantify over. A zero
// Wall in the physical domain yields NoInstant, never 0 (the epoch).
func (ts Timestamp) Instant(d Domain) int64 {
	if d == LogicalTime {
		return ts.Seq
	}
	if ts.Wall.IsZero() {
		return NoInstant
	}
	return ts.Wall.UnixMilli()
}
