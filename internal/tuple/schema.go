package tuple

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a stream or table. Source is the
// stream/table (or alias) the column belongs to; intermediate tuples
// produced by joins carry columns from several sources.
type Column struct {
	Source string
	Name   string
	Kind   Kind
}

// QualifiedName renders "source.name", or just the name when unqualified.
func (c Column) QualifiedName() string {
	if c.Source == "" {
		return c.Name
	}
	return c.Source + "." + c.Name
}

// Schema is an ordered list of columns. Schemas are immutable once built
// and shared by every tuple of the same shape.
type Schema struct {
	Cols []Column
	// Sources lists the distinct base streams/tables this schema spans,
	// in first-appearance order. A single-source schema has one entry.
	Sources []string
}

// NewSchema builds a schema from columns, deriving the source list.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols}
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Source != "" && !seen[c.Source] {
			seen[c.Source] = true
			s.Sources = append(s.Sources, c.Source)
		}
	}
	return s
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// ColumnIndex resolves a (possibly qualified) column reference to its
// position. An unqualified name must be unambiguous across sources.
func (s *Schema) ColumnIndex(source, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if c.Name != name {
			continue
		}
		if source != "" && c.Source != source {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column %q (in %s and %s)",
				name, s.Cols[found].QualifiedName(), c.QualifiedName())
		}
		found = i
	}
	if found < 0 {
		ref := name
		if source != "" {
			ref = source + "." + name
		}
		return -1, fmt.Errorf("unknown column %q", ref)
	}
	return found, nil
}

// HasSource reports whether the schema spans the given source.
func (s *Schema) HasSource(src string) bool {
	for _, x := range s.Sources {
		if x == src {
			return true
		}
	}
	return false
}

// Concat returns the schema of tuples produced by joining s with o
// (column lists appended).
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return NewSchema(cols...)
}

// Project returns the schema restricted to the given column positions.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Cols[j]
	}
	return NewSchema(cols...)
}

// Rename returns a copy of the schema with every column's source replaced,
// used when a stream is aliased in FROM ("ClosingStockPrices AS c1").
func (s *Schema) Rename(source string) *Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		c.Source = source
		cols[i] = c
	}
	return NewSchema(cols...)
}

// String renders "(src.a int, src.b float)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
