//go:build !tcqdebug

package tuple

// PoisonEnabled reports whether pool poisoning is compiled in (the
// tcqdebug build tag). Release builds skip the scrub entirely.
const PoisonEnabled = false

func poisonTuple(*Tuple)     {}
func poisonLineage(*Lineage) {}
