package tuple

import (
	"sync"
	"sync/atomic"
)

// Tuple/lineage recycling.
//
// The dataflow hot path creates a tuple (or a clone, or a join concat)
// per admission and retires most of them within microseconds — a grouped
// filter drops them, or egress writes them to a client and forgets them.
// Making every one of those a garbage-collected heap object is the
// single largest steady-state allocation source in the engine, so
// retired tuples go back to a sync.Pool and their lineage bitmaps (three
// word slices each) are reused by the next Clone/Lineage call.
//
// Ownership rules (who may call Recycle):
//
//   - A tuple is owned by exactly one module (or one queue slot) at a
//     time — the pre-existing Fjords discipline. Only the module that
//     *retires* a tuple may recycle it: the eddy when routing drops it,
//     egress after final delivery, a producer whose enqueue was shed.
//   - A module that stores a tuple beyond the call that received it
//     (SteM entries, PSoup history, spooled results, rows shared by
//     several queries' deliveries) must call Retain first. A retained
//     tuple is never pooled — Recycle on it is a no-op — so long-lived
//     references stay valid without reference counting.
//   - Recycling nil is a no-op, so error paths need no guards.
//
// Build with -tags tcqdebug to poison buffers on Put: a stale reference
// to a recycled tuple then reads sentinel garbage instead of silently
// aliasing the next tuple's data.

var tuplePool = sync.Pool{New: func() any { return new(Tuple) }}

var lineagePool = sync.Pool{New: func() any { return new(Lineage) }}

// NewPooled returns an empty tuple over s drawn from the recycler.
// Callers append to Values (its backing array is reused across
// generations) and hand the tuple into the dataflow as usual.
func NewPooled(s *Schema) *Tuple {
	t := getTuple()
	t.Schema = s
	return t
}

// getTuple returns a reset pool tuple: zero metadata, empty Values with
// whatever capacity its previous life accumulated, no lineage.
func getTuple() *Tuple {
	t := tuplePool.Get().(*Tuple)
	t.pooled = false
	atomic.StoreInt32(&t.retained, 0)
	t.Schema = nil
	t.Values = t.Values[:0]
	t.TS = Timestamp{}
	t.Arrival = 0
	t.Lin = nil
	return t
}

// getLineage returns an empty lineage from the pool. The sets are
// cleared here, not at Recycle time: a recycled lineage with stale Done
// bits would silently corrupt the eddy's routing-state derivation.
func getLineage() *Lineage {
	l := lineagePool.Get().(*Lineage)
	l.Ready.Clear()
	l.Done.Clear()
	l.Queries.Clear()
	return l
}

// Retain marks t as escaped into long-lived storage: Recycle becomes a
// no-op for it, forever. Safe to call from any goroutine that owns a
// reference (idempotent, atomic), e.g. when one row fans out to several
// client subscriptions.
func (t *Tuple) Retain() { atomic.StoreInt32(&t.retained, 1) }

// Retained reports whether Retain was called on t.
func (t *Tuple) Retained() bool { return atomic.LoadInt32(&t.retained) != 0 }

// Recycle returns t to the pool if it is eligible (non-nil and not
// retained). Only the module that retired the tuple may call this; see
// the ownership rules above. The tuple's lineage, if any, is recycled
// separately so lineage-free tuples (static tables, direct API use)
// don't starve the lineage pool.
func Recycle(t *Tuple) {
	if t == nil || atomic.LoadInt32(&t.retained) != 0 {
		return
	}
	if t.pooled {
		panic("tuple: Recycle called twice on the same tuple")
	}
	t.pooled = true
	if l := t.Lin; l != nil {
		t.Lin = nil
		poisonLineage(l)
		lineagePool.Put(l)
	}
	poisonTuple(t)
	tuplePool.Put(t)
}
