package tuple

// ColBatch is a columnar view over a run of same-schema tuples: one
// value slice per column. Compiled expression programs evaluate over it
// a column at a time, with selection vectors naming the live lanes, so
// a 256-tuple executor drain becomes a handful of tight loops instead
// of 256 tree walks.
//
// The batch borrows values from the backing tuples (Value is a small
// struct; strings share their backing arrays), so it is only valid
// until the tuples are recycled. A ColBatch is owned by one goroutine
// and reused across loads; the steady state allocates nothing.
type ColBatch struct {
	schema *Schema
	cols   [][]Value
	n      int
}

// Load transposes ts into columns. All tuples must share one schema
// pointer (the engine interns derived schemas to make this hold for
// join and alias formats); Load reports false and leaves the batch
// unusable when they don't, and the caller falls back to row-at-a-time
// processing.
func (cb *ColBatch) Load(ts []*Tuple) bool {
	if len(ts) == 0 {
		return false
	}
	s := ts[0].Schema
	for _, t := range ts[1:] {
		if t.Schema != s {
			return false
		}
	}
	arity := len(s.Cols)
	cb.schema = s
	cb.n = len(ts)
	if cap(cb.cols) < arity {
		cb.cols = make([][]Value, arity)
	}
	cb.cols = cb.cols[:arity]
	for j := 0; j < arity; j++ {
		col := cb.cols[j][:0]
		for _, t := range ts {
			col = append(col, t.Values[j])
		}
		cb.cols[j] = col
	}
	return true
}

// Schema returns the shared schema of the loaded batch.
func (cb *ColBatch) Schema() *Schema { return cb.schema }

// Len returns the number of lanes (tuples) in the batch.
func (cb *ColBatch) Len() int { return cb.n }

// Col returns the value vector of column j, one entry per lane.
func (cb *ColBatch) Col(j int) []Value { return cb.cols[j] }
