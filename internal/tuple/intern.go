package tuple

import "sync"

// Schema interning.
//
// Pointer identity is what every schema-keyed cache in the engine hashes
// on: ColumnRef resolution, compiled-program caches, and the columnar
// batch loader all compare *Schema directly. Join and alias paths used
// to mint a fresh *Schema per tuple, so those caches could never hit on
// intermediate formats. Interning derived schemas by their inputs makes
// "same shape" imply "same pointer" for every schema the engine derives
// from the (stable) catalog schemas.
//
// The tables grow with the number of distinct derivations, which is
// bounded by the plan shapes in play, not by tuple volume: interned
// inputs produce interned outputs, so nested joins reuse entries.

type concatKey struct{ a, b *Schema }

type renameKey struct {
	s      *Schema
	source string
}

var (
	concatCache sync.Map // concatKey → *Schema
	renameCache sync.Map // renameKey → *Schema
)

// ConcatShared returns the interned join schema of s followed by o:
// repeated calls with the same operand pointers return the same pointer.
func (s *Schema) ConcatShared(o *Schema) *Schema {
	k := concatKey{s, o}
	if v, ok := concatCache.Load(k); ok {
		return v.(*Schema)
	}
	v, _ := concatCache.LoadOrStore(k, s.Concat(o))
	return v.(*Schema)
}

// RenameShared returns the interned aliased schema: repeated calls with
// the same schema pointer and alias return the same pointer.
func (s *Schema) RenameShared(source string) *Schema {
	k := renameKey{s, source}
	if v, ok := renameCache.Load(k); ok {
		return v.(*Schema)
	}
	v, _ := renameCache.LoadOrStore(k, s.Rename(source))
	return v.(*Schema)
}
