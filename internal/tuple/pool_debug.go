//go:build tcqdebug

package tuple

// PoisonEnabled reports whether pool poisoning is compiled in. With the
// tcqdebug build tag, Recycle scribbles sentinel garbage over a tuple's
// buffers before pooling it, so any module that kept an alias past its
// ownership window reads obviously-wrong data (and lineage probes see a
// full set) instead of silently sharing state with the tuple's next
// life. Tests under this tag catch ownership bugs that the race
// detector cannot (the pool itself synchronizes the reuse).
const PoisonEnabled = true

// poisonValue is a value no legitimate module produces: an out-of-range
// kind with every payload field set.
var poisonValue = Value{K: Kind(0xEE), I: -6148914691236517206, F: -6.66e66, S: "\xde\xadPOISON\xde\xad", B: true}

func poisonTuple(t *Tuple) {
	vs := t.Values[:cap(t.Values)]
	for i := range vs {
		vs[i] = poisonValue
	}
	t.Values = t.Values[:0]
	t.Schema = nil
	t.TS = Timestamp{}
	t.Arrival = -1
}

func poisonLineage(l *Lineage) {
	l.Ready.Poison()
	l.Done.Poison()
	l.Queries.Poison()
}
