package tuple

import (
	"strings"

	"telegraphcq/internal/bitset"
)

// Lineage is the per-tuple routing state an Eddy needs (§2.2) extended
// with the CACQ bitmaps for shared multi-query processing (§3.1).
//
//   - Ready: modules the tuple may be routed to next.
//   - Done:  modules that have successfully handled the tuple.
//   - Queries: the set of query IDs still interested in the tuple
//     ("completion" lineage). A grouped filter or per-query predicate
//     clears bits; when the tuple reaches the output, the surviving
//     bits name the clients that receive it.
type Lineage struct {
	Ready   bitset.Set
	Done    bitset.Set
	Queries bitset.Set
}

// Tuple is the unit of dataflow. A tuple is owned by exactly one module
// (or one queue slot) at a time; modules that need to retain a tuple
// beyond a call must Clone it.
type Tuple struct {
	Schema *Schema
	Values []Value
	TS     Timestamp
	// Arrival is the engine-wide admission serial (1-based) stamped by
	// the router. Joins use it to produce each match exactly once: a
	// probe matches only stored tuples that arrived strictly earlier.
	// Zero means "before everything" (static tables, direct API use).
	Arrival int64
	// Lin is lazily allocated; tuples outside an Eddy don't pay for it.
	Lin *Lineage

	// retained (atomic) marks tuples that escaped into long-lived
	// storage and must never be pooled; pooled guards against
	// double-Recycle. See pool.go for the ownership rules.
	retained int32
	pooled   bool
}

// New allocates a tuple over the given schema.
func New(s *Schema, vals ...Value) *Tuple {
	return &Tuple{Schema: s, Values: vals}
}

// Get returns the value at column i.
func (t *Tuple) Get(i int) Value { return t.Values[i] }

// Lineage returns the tuple's lineage, drawing a cleared one from the
// recycler pool on first use.
func (t *Tuple) Lineage() *Lineage {
	if t.Lin == nil {
		t.Lin = getLineage()
	}
	return t.Lin
}

// Clone returns a deep copy (values are immutable and shared; lineage and
// the value slice are copied). The copy comes from the recycler pool, so
// in steady state a clone reuses a retired tuple's value slice and
// lineage bitmaps instead of allocating fresh ones.
func (t *Tuple) Clone() *Tuple {
	c := getTuple()
	c.Schema, c.TS, c.Arrival = t.Schema, t.TS, t.Arrival
	c.Values = append(c.Values, t.Values...)
	if t.Lin != nil {
		lin := getLineage()
		lin.Ready.CopyFrom(&t.Lin.Ready)
		lin.Done.CopyFrom(&t.Lin.Done)
		lin.Queries.CopyFrom(&t.Lin.Queries)
		c.Lin = lin
	}
	return c
}

// Concat builds the join result of t and o: schemas and values appended.
// The result's timestamp takes the *later* logical coordinate so windowed
// operators downstream see the freshest component (standard stream-join
// timestamping); lineage is not propagated — the Eddy re-derives it.
func Concat(t, o *Tuple) *Tuple {
	c := getTuple()
	c.Schema = t.Schema.ConcatShared(o.Schema)
	c.Values = append(append(c.Values, t.Values...), o.Values...)
	c.TS = t.TS
	if o.TS.Seq > c.TS.Seq {
		c.TS.Seq = o.TS.Seq
	}
	if o.TS.Wall.After(c.TS.Wall) {
		c.TS.Wall = o.TS.Wall
	}
	c.Arrival = t.Arrival
	if o.Arrival > c.Arrival {
		c.Arrival = o.Arrival
	}
	return c
}

// Project returns a new tuple (from the recycler pool) restricted to the
// given column positions.
func (t *Tuple) Project(s *Schema, idx []int) *Tuple {
	p := getTuple()
	p.Schema = s
	for _, j := range idx {
		p.Values = append(p.Values, t.Values[j])
	}
	p.TS = t.TS
	return p
}

// Key computes a grouping/duplicate key over the given columns, suitable
// for map keys. Distinct values produce distinct keys except for
// adversarial strings containing the separator; group-by columns in the
// engine are typed, so we escape the separator in string values.
func (t *Tuple) Key(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(0)
		}
		v := t.Values[c]
		b.WriteByte(byte(v.K))
		s := v.String()
		if v.K == KindString && strings.IndexByte(s, 0) >= 0 {
			s = strings.ReplaceAll(s, "\x00", "\x00\x00")
		}
		b.WriteString(s)
	}
	return b.String()
}

// AppendText appends the tuple's comma-separated rendering (the String
// form) to dst and returns the extended slice — the allocation-free
// variant batch encoders use.
func (t *Tuple) AppendText(dst []byte) []byte {
	for i, v := range t.Values {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = v.AppendText(dst)
	}
	return dst
}

// String renders the tuple's values comma-separated (result rows).
func (t *Tuple) String() string {
	var b strings.Builder
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	return b.String()
}
