package tuple

import (
	"strings"

	"telegraphcq/internal/bitset"
)

// Lineage is the per-tuple routing state an Eddy needs (§2.2) extended
// with the CACQ bitmaps for shared multi-query processing (§3.1).
//
//   - Ready: modules the tuple may be routed to next.
//   - Done:  modules that have successfully handled the tuple.
//   - Queries: the set of query IDs still interested in the tuple
//     ("completion" lineage). A grouped filter or per-query predicate
//     clears bits; when the tuple reaches the output, the surviving
//     bits name the clients that receive it.
type Lineage struct {
	Ready   bitset.Set
	Done    bitset.Set
	Queries bitset.Set
}

// Tuple is the unit of dataflow. A tuple is owned by exactly one module
// (or one queue slot) at a time; modules that need to retain a tuple
// beyond a call must Clone it.
type Tuple struct {
	Schema *Schema
	Values []Value
	TS     Timestamp
	// Arrival is the engine-wide admission serial (1-based) stamped by
	// the router. Joins use it to produce each match exactly once: a
	// probe matches only stored tuples that arrived strictly earlier.
	// Zero means "before everything" (static tables, direct API use).
	Arrival int64
	// Lin is lazily allocated; tuples outside an Eddy don't pay for it.
	Lin *Lineage
}

// New allocates a tuple over the given schema.
func New(s *Schema, vals ...Value) *Tuple {
	return &Tuple{Schema: s, Values: vals}
}

// Get returns the value at column i.
func (t *Tuple) Get(i int) Value { return t.Values[i] }

// Lineage returns the tuple's lineage, allocating it on first use.
func (t *Tuple) Lineage() *Lineage {
	if t.Lin == nil {
		t.Lin = &Lineage{}
	}
	return t.Lin
}

// Clone returns a deep copy (values are immutable and shared; lineage and
// the value slice are copied).
func (t *Tuple) Clone() *Tuple {
	c := &Tuple{Schema: t.Schema, TS: t.TS, Arrival: t.Arrival}
	c.Values = make([]Value, len(t.Values))
	copy(c.Values, t.Values)
	if t.Lin != nil {
		c.Lin = &Lineage{}
		c.Lin.Ready.CopyFrom(&t.Lin.Ready)
		c.Lin.Done.CopyFrom(&t.Lin.Done)
		c.Lin.Queries.CopyFrom(&t.Lin.Queries)
	}
	return c
}

// Concat builds the join result of t and o: schemas and values appended.
// The result's timestamp takes the *later* logical coordinate so windowed
// operators downstream see the freshest component (standard stream-join
// timestamping); lineage is not propagated — the Eddy re-derives it.
func Concat(t, o *Tuple) *Tuple {
	vals := make([]Value, 0, len(t.Values)+len(o.Values))
	vals = append(vals, t.Values...)
	vals = append(vals, o.Values...)
	ts := t.TS
	if o.TS.Seq > ts.Seq {
		ts.Seq = o.TS.Seq
	}
	if o.TS.Wall.After(ts.Wall) {
		ts.Wall = o.TS.Wall
	}
	arr := t.Arrival
	if o.Arrival > arr {
		arr = o.Arrival
	}
	return &Tuple{Schema: t.Schema.Concat(o.Schema), Values: vals, TS: ts, Arrival: arr}
}

// Project returns a new tuple restricted to the given column positions.
func (t *Tuple) Project(s *Schema, idx []int) *Tuple {
	vals := make([]Value, len(idx))
	for i, j := range idx {
		vals[i] = t.Values[j]
	}
	return &Tuple{Schema: s, Values: vals, TS: t.TS}
}

// Key computes a grouping/duplicate key over the given columns, suitable
// for map keys. Distinct values produce distinct keys except for
// adversarial strings containing the separator; group-by columns in the
// engine are typed, so we escape the separator in string values.
func (t *Tuple) Key(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(0)
		}
		v := t.Values[c]
		b.WriteByte(byte(v.K))
		s := v.String()
		if v.K == KindString && strings.IndexByte(s, 0) >= 0 {
			s = strings.ReplaceAll(s, "\x00", "\x00\x00")
		}
		b.WriteString(s)
	}
	return b.String()
}

// String renders the tuple's values comma-separated (result rows).
func (t *Tuple) String() string {
	var b strings.Builder
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	return b.String()
}
