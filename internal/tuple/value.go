// Package tuple defines the record model that flows through every
// TelegraphCQ module: typed values, schemas, timestamps (logical and
// physical, treated as a partial order per §4.1 of the paper), and the
// per-tuple lineage state that CACQ-style shared processing requires
// (§3.1). Tuples here play the role of the paper's "enhanced surrogate
// objects" (§4.2.2): intermediate tuples may span several base streams
// and carry routing bitmaps.
package tuple

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "int", "integer", "long", "bigint":
		return KindInt, nil
	case "float", "double", "real":
		return KindFloat, nil
	case "string", "text", "varchar", "char":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	case "time", "timestamp":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("unknown type %q", name)
	}
}

// Value is a compact tagged union. Only the field matching Kind is
// meaningful; KindTime reuses I as nanoseconds since the Unix epoch.
// Values are immutable by convention.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{K: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// String returns a string value.
func String(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// Time returns a timestamp value.
func Time(t time.Time) Value { return Value{K: KindTime, I: t.UnixNano()} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsTime interprets the value as a time.Time (valid only for KindTime).
func (v Value) AsTime() time.Time { return time.Unix(0, v.I) }

// AsFloat coerces numeric values to float64. Non-numeric values yield NaN.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindTime:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}

// AsInt coerces numeric values to int64 (floats truncate).
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindTime:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Numeric reports whether the value participates in arithmetic.
func (v Value) Numeric() bool {
	return v.K == KindInt || v.K == KindFloat || v.K == KindTime
}

// String renders the value for result delivery (CSV cells, logs).
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindTime:
		return v.AsTime().UTC().Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// AppendText appends the value's String rendering to dst and returns the
// extended slice. Egress encoders format whole batches into one reused
// buffer through it, so the hot delivery path produces no intermediate
// string garbage.
func (v Value) AppendText(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, "NULL"...)
	case KindInt:
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindString:
		return append(dst, v.S...)
	case KindBool:
		if v.B {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case KindTime:
		return v.AsTime().UTC().AppendFormat(dst, time.RFC3339Nano)
	default:
		return append(dst, '?')
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare by magnitude across int/float/time; otherwise values must share
// a kind. The boolean ok is false for incomparable kinds (e.g. string vs
// int), which callers treat as "predicate is false" per SQL's unknown.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.K == KindNull || b.K == KindNull {
		if a.K == b.K {
			return 0, true
		}
		if a.K == KindNull {
			return -1, true
		}
		return 1, true
	}
	if a.Numeric() && b.Numeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		// Preserve full int64 precision when both sides are integral.
		if a.K != KindFloat && b.K != KindFloat {
			ai, bi := a.I, b.I
			switch {
			case ai < bi:
				return -1, true
			case ai > bi:
				return 1, true
			default:
				return 0, true
			}
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.K != b.K {
		return 0, false
	}
	switch a.K {
	case KindString:
		switch {
		case a.S < b.S:
			return -1, true
		case a.S > b.S:
			return 1, true
		default:
			return 0, true
		}
	case KindBool:
		switch {
		case !a.B && b.B:
			return -1, true
		case a.B && !b.B:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Hash returns a 64-bit hash of the value, consistent with Equal for the
// numeric kinds (an int and a float holding the same magnitude hash alike).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	// FNV-1a, written without a mix closure so the hot probe path stays
	// free of captured-variable heap traffic. Byte order and sentinel
	// bytes match the original closure version exactly.
	h := uint64(offset64)
	switch v.K {
	case KindNull:
		h = (h ^ 0) * prime64
	case KindInt, KindFloat, KindTime:
		f := v.AsFloat()
		if f == 0 {
			f = 0 // normalize -0 so it hashes like +0
		}
		u := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(u>>(8*i)))) * prime64
		}
	case KindString:
		h = (h ^ 2) * prime64
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * prime64
		}
	case KindBool:
		if v.B {
			h = (h ^ 3) * prime64
		} else {
			h = (h ^ 4) * prime64
		}
	}
	return h
}
