package executor

import (
	"fmt"
	"testing"
	"time"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/egress"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/tuple"
)

func newCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	_, err := cat.CreateStream("stocks", []tuple.Column{
		{Name: "sym", Kind: tuple.KindString},
		{Name: "price", Kind: tuple.KindFloat},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cat.CreateStream("news", []tuple.Column{
		{Name: "sym", Kind: tuple.KindString},
		{Name: "score", Kind: tuple.KindFloat},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := cat.CreateTable("companies", []tuple.Column{
		{Name: "sym", Kind: tuple.KindString},
		{Name: "hq", Kind: tuple.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]string{{"MSFT", "Redmond"}, {"IBM", "Armonk"}} {
		_ = comp.Insert(tuple.New(comp.Schema, tuple.String(r[0]), tuple.String(r[1])))
	}
	return cat
}

func submit(t *testing.T, x *Executor, q string) (int, *egress.Subscription) {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	id, sub, err := x.Submit(st.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	return id, sub
}

func pushStocks(t *testing.T, x *Executor, rows ...[2]any) {
	t.Helper()
	for _, r := range rows {
		_, err := x.Push("stocks", []tuple.Value{
			tuple.String(r[0].(string)), tuple.Float(r[1].(float64)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// drain collects whatever rows are available after a barrier.
func drain(t *testing.T, x *Executor, sub *egress.Subscription) []*tuple.Tuple {
	t.Helper()
	if err := x.Barrier(); err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	deadline := time.Now().Add(time.Second)
	for {
		r, ok := sub.TryNext()
		if ok {
			out = append(out, r)
			continue
		}
		// Delivery runs on EO goroutines; allow a grace period.
		if time.Now().After(deadline) || sub.Len() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return out
}

func TestFilterQueryEndToEnd(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `SELECT sym, price FROM stocks WHERE price > 50`)
	pushStocks(t, x, [2]any{"MSFT", 60.0}, [2]any{"IBM", 40.0}, [2]any{"MSFT", 55.0})
	rows := drain(t, x, sub)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Values[0].S != "MSFT" || rows[0].Values[1].F != 60 {
		t.Fatalf("row0: %v", rows[0])
	}
}

func TestTwoQueriesShareOneEO(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub1 := submit(t, x, `SELECT sym FROM stocks WHERE price > 10`)
	_, sub2 := submit(t, x, `SELECT sym FROM stocks WHERE price > 90`)
	if x.EOCount() != 1 {
		t.Fatalf("EOs = %d", x.EOCount())
	}
	pushStocks(t, x, [2]any{"A", 50.0}, [2]any{"B", 95.0})
	r1 := drain(t, x, sub1)
	r2 := drain(t, x, sub2)
	if len(r1) != 2 || len(r2) != 1 {
		t.Fatalf("rows: %d, %d", len(r1), len(r2))
	}
}

func TestDisjointFootprintsSeparateEOs(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	submit(t, x, `SELECT sym FROM stocks`)
	submit(t, x, `SELECT sym FROM news`)
	if x.EOCount() != 2 {
		t.Fatalf("EOs = %d, want 2 for disjoint footprints", x.EOCount())
	}
	// A bridging query lands in one of the existing EOs.
	submit(t, x, `SELECT stocks.sym FROM stocks, news WHERE stocks.sym = news.sym`)
	if x.EOCount() != 2 {
		t.Fatalf("EOs = %d after bridge", x.EOCount())
	}
}

func TestClassModes(t *testing.T) {
	for mode, wantEOs := range map[ClassMode]int{
		ClassSingle:   1,
		ClassPerQuery: 3,
	} {
		x := New(newCat(t), Options{Mode: mode})
		submit(t, x, `SELECT sym FROM stocks`)
		submit(t, x, `SELECT sym FROM news`)
		submit(t, x, `SELECT sym FROM stocks WHERE price > 1`)
		if x.EOCount() != wantEOs {
			t.Fatalf("mode %v: EOs = %d, want %d", mode, x.EOCount(), wantEOs)
		}
		x.Close()
	}
}

func TestAggregateQueryEndToEnd(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `
		SELECT avg(price) FROM stocks WHERE sym = 'MSFT'
		for (t = ST; ; t += 5) { WindowIs(stocks, t + 1, t + 5); }`)
	for i := 1; i <= 11; i++ {
		pushStocks(t, x, [2]any{"MSFT", float64(i)})
	}
	rows := drain(t, x, sub)
	// Windows [1,5] avg 3 and [6,10] avg 8 closed; [11,15] still open.
	if len(rows) != 2 {
		t.Fatalf("agg rows = %d: %v", len(rows), rows)
	}
	if rows[0].Values[1].F != 3 || rows[1].Values[1].F != 8 {
		t.Fatalf("avgs: %v %v", rows[0], rows[1])
	}
}

func TestStreamTableJoin(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `
		SELECT stocks.sym, companies.hq FROM stocks, companies
		WHERE stocks.sym = companies.sym AND price > 50`)
	pushStocks(t, x, [2]any{"MSFT", 60.0}, [2]any{"MSFT", 10.0}, [2]any{"ORCL", 99.0})
	rows := drain(t, x, sub)
	if len(rows) != 1 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[0].Values[1].S != "Redmond" {
		t.Fatalf("row: %v", rows[0])
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	// Pairs of different symbols with c2 more expensive, same push batch.
	_, sub := submit(t, x, `
		SELECT c1.sym, c2.sym FROM stocks AS c1, stocks AS c2
		WHERE c1.sym = 'MSFT' AND c2.sym != 'MSFT' AND c2.price > c1.price`)
	pushStocks(t, x, [2]any{"MSFT", 50.0}, [2]any{"IBM", 60.0}, [2]any{"ORCL", 40.0})
	rows := drain(t, x, sub)
	// c1=MSFT(50) joins c2=IBM(60) only.
	if len(rows) != 1 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[0].Values[0].S != "MSFT" || rows[0].Values[1].S != "IBM" {
		t.Fatalf("row: %v", rows[0])
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	id, sub := submit(t, x, `SELECT sym FROM stocks`)
	pushStocks(t, x, [2]any{"A", 1.0})
	if got := drain(t, x, sub); len(got) != 1 {
		t.Fatalf("before cancel: %d", len(got))
	}
	if err := x.Cancel(id); err != nil {
		t.Fatal(err)
	}
	pushStocks(t, x, [2]any{"B", 1.0})
	_ = x.Barrier()
	if _, ok := sub.TryNext(); ok {
		t.Fatal("delivery after cancel")
	}
	if err := x.Cancel(id); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if len(x.Queries()) != 0 {
		t.Fatalf("queries = %v", x.Queries())
	}
}

func TestLimitCompletesQuery(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `SELECT sym FROM stocks LIMIT 2`)
	pushStocks(t, x, [2]any{"A", 1.0}, [2]any{"B", 1.0}, [2]any{"C", 1.0})
	rows := drain(t, x, sub)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The query cancels itself after LIMIT.
	deadline := time.Now().Add(time.Second)
	for len(x.Queries()) != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(x.Queries()) != 0 {
		t.Fatalf("query still standing after LIMIT")
	}
}

func TestDistinct(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `SELECT DISTINCT sym FROM stocks`)
	pushStocks(t, x, [2]any{"A", 1.0}, [2]any{"A", 2.0}, [2]any{"B", 3.0})
	rows := drain(t, x, sub)
	if len(rows) != 2 {
		t.Fatalf("distinct rows = %d", len(rows))
	}
}

func TestPushErrors(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	if _, err := x.Push("nope", nil); err == nil {
		t.Fatal("unknown stream accepted")
	}
	if _, err := x.Push("companies", []tuple.Value{tuple.String("x"), tuple.String("y")}); err == nil {
		t.Fatal("push to table accepted")
	}
	if _, err := x.Push("stocks", []tuple.Value{tuple.String("x")}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestSubmitErrors(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	for _, q := range []string{
		`SELECT sym FROM nostream`,
		`SELECT nocol FROM stocks`,
		`SELECT sym FROM stocks, stocks`, // duplicate unaliased
		`SELECT avg(price) FROM stocks`,  // aggregate without window
		`SELECT sym, avg(price) FROM stocks for (t=ST;;t++) { WindowIs(stocks, t, t) }`, // sym not grouped
	} {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, _, err := x.Submit(st.(*sql.Select)); err == nil {
			t.Errorf("Submit(%q) succeeded", q)
		}
	}
}

func TestSubscriptionShedsWhenClientStalls(t *testing.T) {
	x := New(newCat(t), Options{SubscriptionCap: 4})
	defer x.Close()
	_, sub := submit(t, x, `SELECT sym FROM stocks`)
	for i := 0; i < 100; i++ {
		pushStocks(t, x, [2]any{fmt.Sprintf("s%d", i), 1.0})
	}
	_ = x.Barrier()
	time.Sleep(10 * time.Millisecond)
	if sub.Dropped() == 0 {
		t.Fatal("no shedding with tiny subscription queue")
	}
	if sub.Len() > 4 {
		t.Fatalf("queue over capacity: %d", sub.Len())
	}
}

func TestManyQueriesManyTuples(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	subs := map[int]*egress.Subscription{}
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf(`SELECT sym FROM stocks WHERE price > %d`, i*10)
		id, sub := submit(t, x, q)
		subs[id] = sub
	}
	for i := 0; i < 200; i++ {
		pushStocks(t, x, [2]any{"X", float64(i)})
	}
	_ = x.Barrier()
	time.Sleep(20 * time.Millisecond)
	// Query i sees prices i*10+1 .. 199: 199-(i*10) rows.
	for id, sub := range subs {
		want := 199 - id*10
		got := 0
		for {
			if _, ok := sub.TryNext(); !ok {
				break
			}
			got++
		}
		if got != want {
			t.Fatalf("query %d: %d rows, want %d", id, got, want)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	x := New(newCat(t), Options{})
	submit(t, x, `SELECT sym FROM stocks`)
	x.Close()
	x.Close()
	st, _ := sql.Parse(`SELECT sym FROM stocks`)
	if _, _, err := x.Submit(st.(*sql.Select)); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
