package executor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/chaos"
	"telegraphcq/internal/egress"
	"telegraphcq/internal/tuple"
)

// rowKey canonicalizes one result row for multiset comparison.
func rowKey(t *tuple.Tuple) string {
	s := ""
	for _, v := range t.Values {
		s += v.String() + "|"
	}
	return s
}

// drainKeys drains a subscription after a barrier and returns the
// sorted multiset of row keys.
func drainKeys(t *testing.T, x *Executor, sub *egress.Subscription) []string {
	t.Helper()
	rows := drain(t, x, sub)
	keys := make([]string, 0, len(rows))
	for _, r := range rows {
		keys = append(keys, rowKey(r))
		tuple.Recycle(r)
	}
	sort.Strings(keys)
	return keys
}

// joinWorkload pushes an interleaved two-stream workload with a barrier
// after every push (the deterministic discipline the oracle uses) and
// returns the query's output multiset.
func joinWorkload(t *testing.T, shards, batch int) []string {
	t.Helper()
	x := New(newCat(t), Options{Shards: shards, Batch: batch, SampleInterval: -1})
	defer x.Close()
	_, sub := submit(t, x, `
		SELECT stocks.sym, price, score FROM stocks, news
		WHERE stocks.sym = news.sym
		for (t = ST; ; t += 1) { WindowIs(stocks, t - 3, t); WindowIs(news, t - 3, t); }`)
	syms := []string{"MSFT", "IBM", "ORCL", "AAPL", "TSLA"}
	for i := 0; i < 40; i++ {
		sym := syms[i%len(syms)]
		if _, err := x.Push("stocks", []tuple.Value{tuple.String(sym), tuple.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
		if err := x.Barrier(); err != nil {
			t.Fatal(err)
		}
		if _, err := x.Push("news", []tuple.Value{tuple.String(syms[(i+2)%len(syms)]), tuple.Float(float64(i) / 10)}); err != nil {
			t.Fatal(err)
		}
		if err := x.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	return drainKeys(t, x, sub)
}

// TestShardedJoinMatchesSingleShard is the tentpole's correctness gate:
// a windowed equi-join repartitioned across hash shards must produce the
// byte-identical output multiset of the single-shard engine, across
// admission batch sizes.
func TestShardedJoinMatchesSingleShard(t *testing.T) {
	for _, batch := range []int{1, 64, 512} {
		batch := batch
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			want := joinWorkload(t, 0, batch)
			if len(want) == 0 {
				t.Fatal("single-shard workload produced no rows")
			}
			for _, shards := range []int{2, 4} {
				got := joinWorkload(t, shards, batch)
				if len(got) != len(want) {
					t.Fatalf("shards=%d: %d rows, want %d", shards, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d: row %d = %q, want %q", shards, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestShardedRepartitioningExchange forces a mid-plan repartition: the
// self-join keys alias a by buyer but alias b by sym, so ingress hashes
// by buyer and every b-tuple must cross the exchange to its sym shard.
func TestShardedRepartitioningExchange(t *testing.T) {
	build := func(shards int) ([]string, *Executor) {
		cat := catalog.New()
		if _, err := cat.CreateStream("trades", []tuple.Column{
			{Name: "sym", Kind: tuple.KindString},
			{Name: "buyer", Kind: tuple.KindString},
		}, false); err != nil {
			t.Fatal(err)
		}
		x := New(cat, Options{Shards: shards, SampleInterval: -1})
		_, sub := submit(t, x, `
			SELECT a.sym, b.buyer FROM trades a, trades b
			WHERE a.buyer = b.sym
			for (t = ST; ; t += 1) { WindowIs(a, t - 3, t); WindowIs(b, t - 3, t); }`)
		names := []string{"MSFT", "IBM", "ORCL", "AAPL"}
		for i := 0; i < 30; i++ {
			if _, err := x.Push("trades", []tuple.Value{
				tuple.String(names[i%len(names)]), tuple.String(names[(i+1)%len(names)]),
			}); err != nil {
				t.Fatal(err)
			}
			if err := x.Barrier(); err != nil {
				t.Fatal(err)
			}
		}
		return drainKeys(t, x, sub), x
	}
	want, x1 := build(0)
	x1.Close()
	if len(want) == 0 {
		t.Fatal("single-shard workload produced no rows")
	}
	got, x4 := build(4)
	defer x4.Close()
	if len(got) != len(want) {
		t.Fatalf("sharded rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The exchange must actually have moved tuples (b-tuples repartition
	// by sym while ingress hashes by buyer).
	var fwd float64
	for _, s := range x4.Metrics().Gather() {
		if s.Name == "tcq_shard_fwd_out_total" {
			fwd += s.Value
		}
	}
	if fwd == 0 {
		t.Fatal("no exchange traffic: repartitioning path was not exercised")
	}
}

// TestShardedPinnedAggregate checks the catch-all seam: a windowed
// aggregate (pinned — hash shards would stall window closes) must
// produce single-shard results even on a sharded EO, fed through the
// exchange alongside a shardable filter on the same stream.
func TestShardedPinnedAggregate(t *testing.T) {
	run := func(shards int) ([]string, []string) {
		x := New(newCat(t), Options{Shards: shards, SampleInterval: -1})
		defer x.Close()
		_, aggSub := submit(t, x, `
			SELECT avg(price) FROM stocks WHERE sym = 'MSFT'
			for (t = ST; ; t += 5) { WindowIs(stocks, t + 1, t + 5); }`)
		_, filtSub := submit(t, x, `SELECT sym, price FROM stocks WHERE price > 3`)
		for i := 1; i <= 11; i++ {
			pushStocks(t, x, [2]any{"MSFT", float64(i)})
			if err := x.Barrier(); err != nil {
				t.Fatal(err)
			}
		}
		return drainKeys(t, x, aggSub), drainKeys(t, x, filtSub)
	}
	wantAgg, wantFilt := run(0)
	gotAgg, gotFilt := run(4)
	if len(wantAgg) != 2 {
		t.Fatalf("single-shard agg rows = %d, want 2", len(wantAgg))
	}
	if fmt.Sprint(gotAgg) != fmt.Sprint(wantAgg) {
		t.Fatalf("sharded agg %v, want %v", gotAgg, wantAgg)
	}
	if fmt.Sprint(gotFilt) != fmt.Sprint(wantFilt) {
		t.Fatalf("sharded filter %v, want %v", gotFilt, wantFilt)
	}
}

// TestWithShardsClause drives sharding purely from SQL.
func TestWithShardsClause(t *testing.T) {
	x := New(newCat(t), Options{SampleInterval: -1})
	defer x.Close()
	_, sub := submit(t, x, `SELECT sym, price FROM stocks WHERE price > 50 WITH (shards=3)`)
	if x.EOCount() != 1 {
		t.Fatalf("EOs = %d", x.EOCount())
	}
	x.mu.Lock()
	sc := x.eos[0].shardCount()
	x.mu.Unlock()
	if sc != 3 {
		t.Fatalf("shardCount = %d, want 3", sc)
	}
	pushStocks(t, x, [2]any{"MSFT", 60.0}, [2]any{"IBM", 40.0}, [2]any{"AAPL", 55.0})
	rows := drain(t, x, sub)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		tuple.Recycle(r)
	}
}

// TestShardPanicQuarantinesGroupOnly injects an operator panic inside
// one shard of a sharded EO and verifies the blast radius: the group's
// query dies with a diagnosable error while a sibling EO (different
// footprint) keeps delivering, and Barrier/Close stay usable.
func TestShardPanicQuarantinesGroupOnly(t *testing.T) {
	x := New(newCat(t), Options{
		Mode:           ClassByFootprint,
		Shards:         4,
		SampleInterval: -1,
		Chaos:          chaos.New(chaos.Config{Seed: 3, PanicStream: "stocks"}),
	})
	defer x.Close()
	idStocks, subStocks := submit(t, x, `SELECT sym, price FROM stocks`)
	idNews, subNews := submit(t, x, `SELECT sym, score FROM news`)
	if x.EOCount() != 2 {
		t.Fatalf("EOCount=%d, want 2", x.EOCount())
	}

	for i := 0; i < 5; i++ {
		if _, err := x.Push("stocks", []tuple.Value{tuple.String("S"), tuple.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for x.Quarantines() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the shard group to quarantine")
		}
		time.Sleep(time.Millisecond)
	}
	if err := x.QueryErr(idStocks); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("QueryErr(stocks)=%v, want ErrQuarantined", err)
	}
	if err := subStocks.Err(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("subscription Err=%v, want ErrQuarantined", err)
	}

	// The sibling EO's query (its own shard group) is untouched.
	for i := 0; i < 10; i++ {
		if _, err := x.Push("news", []tuple.Value{tuple.String("N"), tuple.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	got := len(drainKeys(t, x, subNews))
	if got != 10 {
		t.Fatalf("news delivered %d of 10 after sibling shard-group quarantine", got)
	}
	if err := x.QueryErr(idNews); err != nil {
		t.Fatalf("QueryErr(news)=%v, want nil", err)
	}
	if err := x.Barrier(); err != nil {
		t.Fatalf("barrier after quarantine: %v", err)
	}
	if err := x.Cancel(idStocks); err != nil {
		t.Fatalf("cancel quarantined query: %v", err)
	}
}

// TestShardedStatsConcurrentScrape hammers the telemetry seam while a
// sharded workload runs: metric scrapes and system-stream sampling from
// multiple goroutines must stay race-free (each shard's counters are
// only read by the shard itself; scrapers see merged snapshots).
func TestShardedStatsConcurrentScrape(t *testing.T) {
	x := New(newCat(t), Options{Shards: 4, SampleInterval: -1})
	defer x.Close()
	_, sub := submit(t, x, `
		SELECT stocks.sym, price, score FROM stocks, news
		WHERE stocks.sym = news.sym
		for (t = ST; ; t += 1) { WindowIs(stocks, t - 3, t); WindowIs(news, t - 3, t); }`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					x.SampleSystemStreams()
					_ = x.Metrics().Gather()
				}
			}
		}()
	}
	syms := []string{"A", "B", "C", "D"}
	for i := 0; i < 300; i++ {
		if _, err := x.Push("stocks", []tuple.Value{tuple.String(syms[i%4]), tuple.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
		if _, err := x.Push("news", []tuple.Value{tuple.String(syms[i%4]), tuple.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Barrier(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// The merged snapshot must surface per-shard series.
	found := false
	for _, s := range x.Metrics().Gather() {
		if s.Name == "tcq_shard_ingress_total" && s.Value > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("tcq_shard_ingress_total not reported for the sharded EO")
	}
	for _, r := range drain(t, x, sub) {
		tuple.Recycle(r)
	}
}

// TestShardedCancelAndResubmit exercises route-table rebuilds: removing
// a query and adding another on the same sharded EO keeps delivering.
func TestShardedCancelAndResubmit(t *testing.T) {
	x := New(newCat(t), Options{Shards: 2, SampleInterval: -1})
	defer x.Close()
	id1, sub1 := submit(t, x, `SELECT sym FROM stocks WHERE price > 10`)
	pushStocks(t, x, [2]any{"A", 50.0}, [2]any{"B", 5.0})
	if got := len(drainKeys(t, x, sub1)); got != 1 {
		t.Fatalf("rows = %d, want 1", got)
	}
	if err := x.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	_, sub2 := submit(t, x, `SELECT sym, price FROM stocks WHERE price > 1`)
	pushStocks(t, x, [2]any{"C", 7.0}, [2]any{"D", 0.5})
	if got := len(drainKeys(t, x, sub2)); got != 1 {
		t.Fatalf("rows after resubmit = %d, want 1", got)
	}
	if x.EOCount() != 1 {
		t.Fatalf("EOs = %d", x.EOCount())
	}
}
