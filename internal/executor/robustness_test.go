package executor

import (
	"errors"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/tuple"
)

// pushN pushes n stock rows and returns how many Push accepted.
func pushN(t *testing.T, x *Executor, n int) int64 {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := x.Push("stocks", []tuple.Value{
			tuple.String("SYM"), tuple.Float(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return int64(n)
}

// drainAll consumes the subscription until the engine is quiet and
// returns the delivered count. Each pass runs a barrier (flushing the
// ingress path) and then empties the ring; the drain is done only when
// a whole pass delivers nothing new, because in-flight rows can still
// be crossing the SPSC ring after the barrier returns.
func drainAll(t *testing.T, x *Executor, sub interface {
	TryNext() (*tuple.Tuple, bool)
	Len() int
}) int64 {
	t.Helper()
	var n int64
	waitFor(t, 30*time.Second, "subscription to drain", func() bool {
		if err := x.Barrier(); err != nil {
			t.Fatal(err)
		}
		before := n
		for {
			r, ok := sub.TryNext()
			if !ok {
				break
			}
			tuple.Recycle(r)
			n++
		}
		return n == before && sub.Len() == 0
	})
	return n
}

// TestOverflowAccounting reconciles the QoS books under every overflow
// policy while a chaos injector reports the ingress queue full at
// random: every pushed tuple is either delivered to the subscriber or
// counted shed — exactly, no silent loss.
func TestOverflowAccounting(t *testing.T) {
	const n = 2000
	cases := []struct {
		name     string
		qos      fjord.QoS
		wantShed bool // policy sheds under queue-full bursts
		exactAll bool // every tuple must be delivered (block)
	}{
		{"drop-newest", fjord.QoS{Policy: fjord.DropNewest}, true, false},
		{"drop-oldest", fjord.QoS{Policy: fjord.DropOldest}, true, false},
		{"sample", fjord.QoS{Policy: fjord.Sample, SampleP: 0.5}, true, false},
		{"block", fjord.QoS{Policy: fjord.Block, BlockTimeout: 5 * time.Second}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := New(newCat(t), Options{
				SubscriptionCap: 2 * n,
				Chaos:           chaos.New(chaos.Config{Seed: 11, QueueFull: 0.3}),
			})
			defer x.Close()
			src, err := x.cat.Lookup("stocks")
			if err != nil {
				t.Fatal(err)
			}
			src.SetQoS(tc.qos)
			_, sub := submit(t, x, `SELECT sym, price FROM stocks`)

			pushed := pushN(t, x, n)
			delivered := drainAll(t, x, sub)
			shed := x.StreamShed("stocks")

			if sub.Dropped() != 0 {
				t.Fatalf("subscription shed %d rows; raise SubscriptionCap", sub.Dropped())
			}
			if delivered+shed != pushed {
				t.Fatalf("accounting broken: delivered %d + shed %d != pushed %d",
					delivered, shed, pushed)
			}
			if tc.exactAll && delivered != pushed {
				t.Fatalf("block lost tuples: delivered %d of %d (shed %d)", delivered, pushed, shed)
			}
			if tc.wantShed && shed == 0 {
				t.Fatalf("policy %s never shed under 30%% queue-full chaos", tc.name)
			}
		})
	}
}

// TestOverflowAccountingBatch runs the same reconciliation through the
// vectorized PushBatch path (the chaos burst diverts whole batches into
// the per-tuple policy path).
func TestOverflowAccountingBatch(t *testing.T) {
	const batches, per = 50, 40
	x := New(newCat(t), Options{
		SubscriptionCap: 2 * batches * per,
		Chaos:           chaos.New(chaos.Config{Seed: 23, QueueFull: 0.3}),
	})
	defer x.Close()
	src, err := x.cat.Lookup("stocks")
	if err != nil {
		t.Fatal(err)
	}
	src.SetQoS(fjord.QoS{Policy: fjord.DropOldest})
	_, sub := submit(t, x, `SELECT sym, price FROM stocks`)

	for b := 0; b < batches; b++ {
		rows := make([][]tuple.Value, per)
		for i := range rows {
			rows[i] = []tuple.Value{tuple.String("SYM"), tuple.Float(float64(i))}
		}
		if _, err := x.PushBatch("stocks", rows); err != nil {
			t.Fatal(err)
		}
	}
	pushed := int64(batches * per)
	delivered := drainAll(t, x, sub)
	shed := x.StreamShed("stocks")
	if delivered+shed != pushed {
		t.Fatalf("batch accounting broken: delivered %d + shed %d != pushed %d",
			delivered, shed, pushed)
	}
	if shed == 0 {
		t.Fatal("no shedding under 30% queue-full chaos")
	}
}

// TestPanicQuarantineIsolatesQuery injects a panic into the EO that
// reads stocks and verifies the blast radius: that query dies with a
// diagnosable error, the news query on its own EO keeps producing, and
// the engine as a whole (Push, Barrier, Close) stays usable.
func TestPanicQuarantineIsolatesQuery(t *testing.T) {
	x := New(newCat(t), Options{
		Mode:  ClassByFootprint, // stocks and news land on separate EOs
		Chaos: chaos.New(chaos.Config{Seed: 3, PanicStream: "stocks"}),
	})
	defer x.Close()
	idStocks, subStocks := submit(t, x, `SELECT sym, price FROM stocks`)
	idNews, subNews := submit(t, x, `SELECT sym, score FROM news`)
	if x.EOCount() != 2 {
		t.Fatalf("EOCount=%d, want 2 (disjoint footprints)", x.EOCount())
	}

	// The first stocks tuple to enter the EO loop trips the panic.
	pushN(t, x, 5)
	waitFor(t, 30*time.Second, "the EO to quarantine", func() bool {
		return x.Quarantines() != 0
	})
	if got := x.Quarantines(); got != 1 {
		t.Fatalf("quarantines=%d, want 1", got)
	}

	// The stocks query died with a diagnosable, wrapped error...
	if err := x.QueryErr(idStocks); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("QueryErr(stocks)=%v, want ErrQuarantined", err)
	}
	if err := subStocks.Err(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("subscription Err=%v, want ErrQuarantined", err)
	}
	// ...and its subscription terminates rather than hanging: drain any
	// rows that landed before the panic, then see it report closed.
	waitFor(t, 30*time.Second, "quarantined subscription to close", func() bool {
		for {
			r, ok := subStocks.TryNext()
			if !ok {
				break
			}
			tuple.Recycle(r)
		}
		return subStocks.Closed()
	})

	// Pushing to the dead query's stream must not crash or error.
	if _, err := x.Push("stocks", []tuple.Value{tuple.String("S"), tuple.Float(1)}); err != nil {
		t.Fatalf("push to quarantined stream: %v", err)
	}

	// The news query is untouched: it still delivers.
	for i := 0; i < 10; i++ {
		if _, err := x.Push("news", []tuple.Value{tuple.String("N"), tuple.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainAll(t, x, subNews); got != 10 {
		t.Fatalf("news delivered %d of 10 after sibling quarantine", got)
	}
	if err := x.QueryErr(idNews); err != nil {
		t.Fatalf("QueryErr(news)=%v, want nil", err)
	}

	// A barrier across a half-quarantined executor completes.
	if err := x.Barrier(); err != nil {
		t.Fatalf("barrier after quarantine: %v", err)
	}
	// Cancel of the dead query is a no-op, not a hang.
	if err := x.Cancel(idStocks); err != nil {
		t.Fatalf("cancel quarantined query: %v", err)
	}
}

// TestQuarantineVisibleInTelemetry checks the operator-facing trail a
// panic leaves: the quarantine counter and the per-stream shed counters
// appear in the metrics registry.
func TestQuarantineVisibleInTelemetry(t *testing.T) {
	x := New(newCat(t), Options{
		Chaos: chaos.New(chaos.Config{Seed: 5, PanicStream: "stocks"}),
	})
	defer x.Close()
	submit(t, x, `SELECT sym, price FROM stocks`)
	pushN(t, x, 3)
	waitFor(t, 30*time.Second, "the EO to quarantine", func() bool {
		return x.Quarantines() != 0
	})
	found := false
	for _, s := range x.Metrics().Gather() {
		if s.Name == "tcq_eo_quarantined_total" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("tcq_eo_quarantined_total not reported")
	}
}
