// Fan-out attachment: the executor-side seam between a running query
// and the internal/fanout subscriber tree. The hub owns the tree as an
// egress.Publisher; the executor builds it lazily on the first
// SubscribeFanout and propagates quarantine failures that raced ahead
// of the tree's creation.
package executor

import (
	"fmt"

	"telegraphcq/internal/egress"
	"telegraphcq/internal/fanout"
	"telegraphcq/internal/sql"
)

// FanoutTree returns (building on first use) the fan-out tree of a
// standing query. The tree is attached to the hub as the query's
// publisher, so every delivered batch is encoded once and relayed to
// all attached subscribers; the query's spool is created alongside so
// cohort subscribers can replay retained results.
func (x *Executor) FanoutTree(id int) (*fanout.Tree, error) {
	x.mu.Lock()
	rq := x.queries[id]
	closed := x.closed
	x.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("executor: closed")
	}
	if rq == nil {
		return nil, fmt.Errorf("executor: unknown query %d", id)
	}
	sp := x.hub.SpoolFor(id, 0)
	pub := x.hub.PublisherFor(id, func() egress.Publisher {
		return fanout.NewTree(fanout.Options{
			Query:  id,
			Prefix: fmt.Sprintf("row %d ", id),
			Spool:  sp,
		})
	})
	tree, ok := pub.(*fanout.Tree)
	if !ok {
		return nil, fmt.Errorf("executor: query %d already has a non-fanout publisher", id)
	}
	// A quarantine that completed before the tree existed never saw the
	// publisher; surface the failure now (Fail is idempotent).
	x.mu.Lock()
	qerr := rq.err
	x.mu.Unlock()
	if qerr != nil {
		tree.Fail(qerr)
	}
	return tree, nil
}

// SubscribeFanout attaches one subscriber to a standing query's fan-out
// tree (SUBSCRIBE <id> WITH (...)).
func (x *Executor) SubscribeFanout(id int, opts fanout.SubOptions) (*fanout.Subscriber, error) {
	tree, err := x.FanoutTree(id)
	if err != nil {
		return nil, err
	}
	return tree.Attach(opts)
}

// SubmitFanout submits a query detached (no single-consumer push ring)
// and attaches the first fan-out subscriber (SUBSCRIBE SELECT ...).
func (x *Executor) SubmitFanout(sel *sql.Select, opts fanout.SubOptions) (int, *fanout.Subscriber, error) {
	id, err := x.SubmitDetached(sel)
	if err != nil {
		return 0, nil, err
	}
	sub, err := x.SubscribeFanout(id, opts)
	if err != nil {
		_ = x.Cancel(id)
		return 0, nil, err
	}
	return id, sub, nil
}

// FanoutTrees snapshots the fan-out trees attached to the hub, keyed by
// query id (telemetry and drain iterate them).
func (x *Executor) FanoutTrees() map[int]*fanout.Tree {
	out := map[int]*fanout.Tree{}
	for id, pub := range x.hub.Publishers() {
		if t, ok := pub.(*fanout.Tree); ok {
			out[id] = t
		}
	}
	return out
}
