package executor

import (
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/catalog"
	"telegraphcq/internal/tuple"
)

// TestPoolOwnershipStress round-trips pooled tuples through the whole
// dataflow — PushBatch → EO data Fjord → eddy → grouped filter →
// projection → SPSC subscription — while the consumer runs concurrently
// with the producer, recycling rows as it retires them. It asserts the
// ownership rules hold: a delivered row the consumer still holds is
// never reused by the pool, every pushed tuple is delivered exactly
// once, and no value is corrupted in flight. Run it with -race, and
// with -tags tcqdebug to make premature reuse deterministic (recycled
// tuples are poisoned).
func TestPoolOwnershipStress(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.CreateStream("ticks", []tuple.Column{
		{Name: "id", Kind: tuple.KindInt},
		{Name: "val", Kind: tuple.KindFloat},
	}, false); err != nil {
		t.Fatal(err)
	}
	x := New(cat, Options{QueueCap: 1 << 15, SubscriptionCap: 1 << 15, SampleInterval: -1})
	defer x.Close()

	// Projection keeps delivered rows recyclable (raw SELECT * rows are
	// retained by the engine for fan-out and would bypass the pool).
	_, sub := submit(t, x, "SELECT id, val FROM ticks WHERE val >= 0")

	const total = 20000
	const batch = 64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rows := make([][]tuple.Value, 0, batch)
		for i := 0; i < total; i++ {
			rows = append(rows, []tuple.Value{
				tuple.Int(int64(i)), tuple.Float(float64(i) * 2),
			})
			if len(rows) == batch || i == total-1 {
				if _, err := x.PushBatch("ticks", rows); err != nil {
					t.Error(err)
					return
				}
				rows = rows[:0]
			}
		}
	}()

	// The consumer holds a window of delivered rows un-recycled and
	// re-verifies their contents as later rows flow: if any module
	// recycled a delivered row prematurely, the pool would hand its
	// memory to a new tuple and the held snapshot would change (under
	// tcqdebug it would read poison).
	type held struct {
		row *tuple.Tuple
		id  int64
		val float64
	}
	seen := make([]bool, total)
	var window []held
	verify := func() {
		for _, h := range window {
			if len(h.row.Values) != 2 ||
				h.row.Values[0].I != h.id || h.row.Values[1].F != h.val {
				t.Fatalf("held row mutated: want (%d,%g) got %v", h.id, h.val, h.row.Values)
			}
			tuple.Recycle(h.row)
		}
		window = window[:0]
	}
	got := 0
	buf := make([]*tuple.Tuple, 128)
	for got < total {
		n := sub.NextBatch(buf)
		if n == 0 {
			// Wait for more rows or for the books to balance. The
			// timeout is per stall and resets on every delivery, so a
			// slow box that keeps making progress never trips it.
			done := false
			waitFor(t, 30*time.Second, "rows or balanced delivery books", func() bool {
				if sub.Len() > 0 {
					return true
				}
				if err := x.Barrier(); err != nil {
					t.Fatal(err)
				}
				if sub.Len() == 0 && got+int(x.Shed()) >= total {
					done = true
					return true
				}
				return false
			})
			if done {
				break
			}
			continue
		}
		for _, row := range buf[:n] {
			if len(row.Values) != 2 {
				t.Fatalf("row arity %d: %v", len(row.Values), row.Values)
			}
			id, val := row.Values[0].I, row.Values[1].F
			if id < 0 || id >= total || val != float64(id)*2 {
				t.Fatalf("corrupt row (%d,%g)", id, val)
			}
			if seen[id] {
				t.Fatalf("row %d delivered twice", id)
			}
			seen[id] = true
			got++
			window = append(window, held{row: row, id: id, val: val})
		}
		if len(window) >= 512 {
			verify()
		}
	}
	verify()
	wg.Wait()

	if shed := x.Shed(); got+int(shed) != total {
		t.Fatalf("delivered %d + shed %d != pushed %d", got, shed, total)
	}
	if shed := x.Shed(); shed > 0 {
		t.Logf("note: %d rows shed under load", shed)
	}
}
