package executor

import (
	"testing"

	"telegraphcq/internal/telemetry"
)

// The tcq_cluster system stream and its metrics mirror the tcq_sources
// seam: a coordinator installs a callback, the sampler turns it into
// queryable rows, and the collector turns it into /metrics samples.
func TestClusterSystemStreamAndMetrics(t *testing.T) {
	x := New(newCat(t), Options{SampleInterval: -1})
	defer x.Close()
	_, sub := submit(t, x, `SELECT node, state, promotions FROM tcq_cluster`)

	x.SetClusterStats(func() []ClusterStat {
		return []ClusterStat{
			{Node: "0", Addr: "127.0.0.1:6001", State: "up", Primaries: 4, Secondaries: 4, Processed: 100},
			{Node: "1", Addr: "127.0.0.1:6002", State: "dead"},
			{Node: "coordinator", Routed: 50, Acked: 50, Promotions: 2, DetectMs: 120},
		}
	})
	x.SampleSystemStreams()
	rows := drain(t, x, sub)
	if len(rows) != 3 {
		t.Fatalf("tcq_cluster rows = %d, want 3", len(rows))
	}
	if rows[0].Values[0].S != "0" || rows[0].Values[1].S != "up" {
		t.Fatalf("node row: %v", rows[0].Values)
	}
	if rows[1].Values[1].S != "dead" {
		t.Fatalf("dead node row: %v", rows[1].Values)
	}
	if rows[2].Values[0].S != "coordinator" || rows[2].Values[2].I != 2 {
		t.Fatalf("summary row: %v", rows[2].Values)
	}

	// The same callback feeds /metrics.
	want := map[string]float64{}
	label := func(s telemetry.Sample, key string) string {
		for _, l := range s.Labels {
			if l.Key == key {
				return l.Value
			}
		}
		return ""
	}
	for _, s := range x.Metrics().Gather() {
		switch s.Name {
		case "tcq_cluster_node_up":
			want["up:"+label(s, "node")] = s.Value
		case "tcq_cluster_promotions_total":
			want["promotions"] = s.Value
		case "tcq_cluster_node_processed_total":
			if label(s, "node") == "0" {
				want["processed0"] = s.Value
			}
		}
	}
	if want["up:0"] != 1 || want["up:1"] != 0 {
		t.Fatalf("node_up samples: %v", want)
	}
	if want["promotions"] != 2 || want["processed0"] != 100 {
		t.Fatalf("counter samples: %v", want)
	}

	// Clearing the callback stops the rows.
	x.SetClusterStats(nil)
	x.SampleSystemStreams()
	if extra := drain(t, x, sub); len(extra) != 0 {
		t.Fatalf("rows after clearing callback: %d", len(extra))
	}
}
