// Package executor implements the TelegraphCQ Executor process
// (§4.2.2): a small number of Execution Objects (EOs — system threads,
// here goroutines), each hosting non-preemptive Dispatch Units scheduled
// cooperatively. Queries are partitioned into classes by footprint (the
// set of streams/tables they read); queries whose footprints overlap
// share an EO — and therefore one CACQ engine, its grouped filters, and
// its SteMs.
package executor

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/catalog"
	"telegraphcq/internal/chaos"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/egress"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/plan"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/telemetry"
	"telegraphcq/internal/tuple"
)

// ClassMode selects how queries map onto Execution Objects (the E10
// experiment sweeps this).
type ClassMode uint8

const (
	// ClassByFootprint groups queries whose footprints overlap (default).
	ClassByFootprint ClassMode = iota
	// ClassSingle runs every query in one EO (the CACQ/PSoup approach
	// the paper moves away from).
	ClassSingle
	// ClassPerQuery gives each query its own EO (no sharing, maximal
	// threads — the other extreme).
	ClassPerQuery
)

func (m ClassMode) String() string {
	switch m {
	case ClassSingle:
		return "single"
	case ClassPerQuery:
		return "per-query"
	default:
		return "footprint"
	}
}

// ExprMode selects how engines evaluate predicates and projections.
type ExprMode uint8

const (
	// ExprCompiled (the default) compiles expressions to register
	// bytecode evaluated over columnar batches, with the interpreter as
	// fallback for anything uncompilable and for error replay.
	ExprCompiled ExprMode = iota
	// ExprInterpreted forces the tree-walking reference interpreter
	// everywhere (the oracle's reference sweep, WITH (compiled=off)).
	ExprInterpreted
)

// Options configures an Executor.
type Options struct {
	Mode ClassMode
	// Policy builds the routing policy for each EO's eddy (nil →
	// lottery, seeded deterministically per EO).
	Policy func(seed int64) eddy.Policy
	// QueueCap bounds each EO's ingress queue.
	QueueCap int
	// SubscriptionCap bounds each query's result queue.
	SubscriptionCap int
	// Batch and FixedHops set the adapting-adaptivity knobs on every EO.
	// Batch 0 means "engine default": eoDrainBatch when the compiled
	// path is on (vectorized runs want real batches), 1 otherwise.
	// Batch 1 explicitly disables batching.
	Batch     int
	FixedHops int
	// CompiledExpr selects the expression-evaluation path for every
	// engine this executor creates. The zero value is ExprCompiled; a
	// query's WITH (compiled=off|on) overrides it for the EO the query
	// creates, mirroring WITH (shards=N).
	CompiledExpr ExprMode
	// Shards splits each EO into that many hash-partitioned eddy shards
	// plus a catch-all shard (see shard.go). 0 or 1 keeps the classic
	// single-engine EO. A query's WITH (shards=N) overrides this for the
	// EO it creates.
	Shards int
	// Metrics receives the executor's telemetry (nil → a private
	// registry; pass a shared one to aggregate with storage etc.).
	Metrics *telemetry.Registry
	// SampleInterval is the period of the system-stream sampler feeding
	// tcq_operators/tcq_queues/tcq_queries (0 → 500ms; <0 disables).
	SampleInterval time.Duration
	// Chaos, when non-nil, injects faults at the executor's Fjord
	// producers (simulated queue-full bursts) and inside EO run loops
	// (operator panics) for robustness testing.
	Chaos *chaos.Injector
}

// Executor owns the EOs and the query table.
type Executor struct {
	cat     *catalog.Catalog
	planner *plan.Planner
	hub     *egress.Hub
	opts    Options
	metrics *telemetry.Registry

	mu          sync.Mutex
	eos         []*execObject
	queries     map[int]*runningQuery
	nextID      int
	fed         map[string]bool // "eoIdx/alias" table loads already done
	closed      bool
	quarantines int64 // EOs retired after an operator panic

	// qstats tracks per-stream QoS shed accounting (stream → *streamQoS).
	qstats sync.Map
	// qosRng draws the Bernoulli trials for sample-policy admission.
	qosMu  sync.Mutex
	qosRng *rand.Rand

	samplerStop chan struct{}
	samplerDone chan struct{}

	// sourceStats, when set, reports wrapper-side source health for the
	// tcq_sources system stream and /metrics (see SetSourceStats).
	sourceStats atomic.Pointer[func() []SourceStat]
	// clusterStats, when set, reports networked-Flux cluster health for
	// the tcq_cluster system stream and /metrics (see SetClusterStats).
	clusterStats atomic.Pointer[func() []ClusterStat]
}

type runningQuery struct {
	id      int
	eo      *execObject
	planned *plan.Planned
	sub     *egress.Subscription
	post    *postProcessor
	err     error // non-nil once the query is quarantined
}

// streamQoS is one stream's overflow accounting: every tuple lost at an
// EO ingress queue under the stream's policy, and every Block wait that
// expired, is counted here. The invariant tests reconcile is
// pushed == delivered-into-engine + shed, exactly.
type streamQoS struct {
	shed          atomic.Int64 // tuples lost (newest shed or oldest evicted)
	blockTimeouts atomic.Int64 // Block waits that gave up
}

// qstatsFor returns (creating on first use) a stream's QoS counters.
func (x *Executor) qstatsFor(stream string) *streamQoS {
	if v, ok := x.qstats.Load(stream); ok {
		return v.(*streamQoS)
	}
	v, _ := x.qstats.LoadOrStore(stream, &streamQoS{})
	return v.(*streamQoS)
}

// StreamShed returns tuples lost at EO ingress for one stream (QoS).
func (x *Executor) StreamShed(stream string) int64 {
	return x.qstatsFor(stream).shed.Load()
}

// New builds an executor over a catalog.
func New(cat *catalog.Catalog, opts Options) *Executor {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 4096
	}
	if opts.SubscriptionCap <= 0 {
		opts.SubscriptionCap = 4096
	}
	if opts.Policy == nil {
		opts.Policy = func(seed int64) eddy.Policy { return eddy.NewLottery(seed) }
	}
	if opts.Metrics == nil {
		opts.Metrics = telemetry.NewRegistry()
	}
	x := &Executor{
		cat:     cat,
		planner: plan.New(cat),
		hub:     egress.NewHub(),
		opts:    opts,
		metrics: opts.Metrics,
		queries: map[int]*runningQuery{},
		fed:     map[string]bool{},
		qosRng:  rand.New(rand.NewSource(1)),
	}
	x.registerCollectors()
	x.registerSystemStreams()
	if opts.SampleInterval >= 0 {
		iv := opts.SampleInterval
		if iv == 0 {
			iv = 500 * time.Millisecond
		}
		x.startSampler(iv)
	}
	return x
}

// Hub exposes result routing (the server wires spools through it).
func (x *Executor) Hub() *egress.Hub { return x.hub }

// Metrics exposes the telemetry registry the executor reports into.
func (x *Executor) Metrics() *telemetry.Registry { return x.metrics }

// ----------------------------------------------------------------- EO

type ctlKind uint8

const (
	ctlAddQuery ctlKind = iota
	ctlRemoveQuery
	ctlLoadTable
	ctlBarrier
	ctlStats
)

type envelope struct {
	ctl   ctlKind
	query *cacq.Query
	part  *plan.Partition // shard-placement contract (ctlAddQuery)
	feeds []plan.Feed     // the query's stream feeds (ctlAddQuery)
	qid   int
	rows  []*tuple.Tuple // table load
	ack   chan error
	snap  chan *eoSnapshot // ctlStats reply
}

// eoDrainBatch bounds how many data tuples one engine quantum admits.
const eoDrainBatch = 256

// delivery is one result row buffered during an engine quantum; the EO
// flushes deliveries to the hub in per-query batches after each Run.
type delivery struct {
	id  int
	row *tuple.Tuple
}

// execObject is one Execution Object: a goroutine scheduling its
// dispatch units (control handling, ingress drain, engine work)
// non-preemptively. Its ingress is two Fjord edges: a control queue of
// envelopes (multi-writer: Submit, Cancel, Barrier, telemetry scrapes)
// and a data queue of bare tuples with batch endpoints, drained
// eoDrainBatch at a time so the per-tuple queue cost amortizes.
type execObject struct {
	idx     int
	engine  *cacq.Engine
	ctl     *fjord.Counted[envelope]     // control edge (rare, multi-writer)
	data    *fjord.Counted[*tuple.Tuple] // data edge (multi-writer fan-in)
	feeds   map[string][]string          // stream → aliases fed into this EO
	sources map[string]bool              // footprint covered by this EO
	done    chan struct{}
	x       *Executor
	// compiled records this EO's expression path (Options.CompiledExpr,
	// possibly overridden by WITH (compiled=...) at creation); shard
	// groups read it when building their per-shard engines.
	compiled bool

	// EO-goroutine scratch (never shared): the drain buffer for
	// DequeueBatch, the buffered deliveries of the current quantum, and
	// the per-query row slice reused while flushing them.
	drain  []*tuple.Tuple
	out    []delivery
	rowBuf []*tuple.Tuple

	// group is non-nil when this EO runs as a multi-eddy shard group
	// (Options.Shards / WITH (shards=N)); its coordinator loop replaces
	// the single-engine scheduler and eo.engine is nil.
	group *shardGroup

	shed atomic.Int64 // tuples dropped because the EO queue was full
	dead atomic.Bool  // quarantined after an operator panic
}

// shardCount reports how many eddy shards an EO runs on (1 = classic).
func (eo *execObject) shardCount() int {
	if eo.group != nil {
		return eo.group.n
	}
	return 1
}

func (x *Executor) newEO(shards int, compiled bool) *execObject {
	eo := &execObject{
		idx:      len(x.eos),
		ctl:      fjord.Count(fjord.NewPush[envelope](256)),
		data:     fjord.Count(fjord.NewPush[*tuple.Tuple](x.opts.QueueCap)),
		feeds:    map[string][]string{},
		sources:  map[string]bool{},
		done:     make(chan struct{}),
		x:        x,
		drain:    make([]*tuple.Tuple, eoDrainBatch),
		compiled: compiled,
	}
	if shards > 1 {
		eo.group = newShardGroup(eo, shards)
		x.eos = append(x.eos, eo)
		go eo.group.run()
		return eo
	}
	eo.engine = cacq.NewEngine(x.opts.Policy(int64(eo.idx)+1), func(id int, row *tuple.Tuple) {
		eo.out = append(eo.out, delivery{id: id, row: row})
	})
	eo.engine.SetCompiled(compiled)
	eo.engine.Eddy().BatchSize = x.opts.engineBatch(compiled)
	if x.opts.FixedHops > 1 {
		eo.engine.Eddy().FixedHops = x.opts.FixedHops
	}
	x.eos = append(x.eos, eo)
	go eo.run()
	return eo
}

// engineBatch resolves the effective eddy batch size: an explicit Batch
// wins; otherwise compiled engines default to full drain batches so the
// vectorized path has runs to work on, and interpreted engines stay
// tuple-at-a-time (the historical default).
func (o *Options) engineBatch(compiled bool) int {
	if o.Batch > 0 {
		return o.Batch
	}
	if compiled {
		return eoDrainBatch
	}
	return 1
}

// run is the EO scheduler loop: drain control, drain a batch of data
// tuples, give the engine its quantum, idle briefly when nothing is
// queued. Control drains first so cancellation and barriers are not
// starved by a full data queue. Each iteration runs inside step's
// panic isolation: a fault in operator code quarantines this EO's
// queries and retires the EO instead of crashing the process.
func (eo *execObject) run() {
	defer close(eo.done)
	idle := 0
	for {
		if eo.step(&idle) {
			return
		}
	}
}

// step is one scheduler iteration; it reports whether the loop should
// exit. A panic anywhere inside — engine quantum, operator code, a
// control handler — unwinds to here, where the executor quarantines the
// EO (§2.4 motivation: partial failure must not take the engine down).
func (eo *execObject) step(idle *int) (exit bool) {
	defer func() {
		if r := recover(); r != nil {
			eo.x.quarantine(eo, r, debug.Stack())
			exit = true
		}
	}()
	if env, ok := eo.ctl.TryDequeue(); ok {
		*idle = 0
		eo.control(env)
		return false
	}
	if n := eo.data.DequeueBatch(eo.drain); n > 0 {
		*idle = 0
		for i := 0; i < n; i++ {
			eo.push(eo.drain[i])
			eo.drain[i] = nil
		}
		_ = eo.runEngine()
		return false
	}
	if eo.ctl.Closed() {
		return true
	}
	// Idle dispatch: async modules, pending admission batches.
	_ = eo.runEngine()
	*idle++
	if *idle > 8 {
		time.Sleep(200 * time.Microsecond)
	}
	return false
}

// runEngine gives the engine a quantum and then flushes the result rows
// it buffered, batched per query.
func (eo *execObject) runEngine() error {
	err := eo.engine.Run()
	if len(eo.out) > 0 {
		eo.flushOut()
	}
	return err
}

// flushOut hands buffered deliveries to the hub in runs of consecutive
// same-query rows (engine deliveries cluster by query, so one DeliverBatch
// usually covers a whole quantum's output for a query).
func (eo *execObject) flushOut() {
	pend := eo.out
	for i := 0; i < len(pend); {
		id := pend[i].id
		eo.rowBuf = eo.rowBuf[:0]
		j := i
		for ; j < len(pend) && pend[j].id == id; j++ {
			eo.rowBuf = append(eo.rowBuf, pend[j].row)
		}
		eo.x.deliverBatch(id, eo.rowBuf)
		i = j
	}
	for i := range pend {
		pend[i] = delivery{}
	}
	eo.out = pend[:0]
}

// drainData feeds every queued data tuple into the engine (no quantum
// bound); barriers use it to reach quiescence. Returns tuples drained.
func (eo *execObject) drainData() int {
	total := 0
	for {
		n := eo.data.DequeueBatch(eo.drain)
		if n == 0 {
			return total
		}
		for i := 0; i < n; i++ {
			eo.push(eo.drain[i])
			eo.drain[i] = nil
		}
		total += n
	}
}

func (eo *execObject) push(t *tuple.Tuple) {
	src := t.Schema.Sources[0]
	if eo.x.opts.Chaos.PanicFor(src) {
		panic(fmt.Sprintf("chaos: injected operator panic on stream %s (EO %d)", src, eo.idx))
	}
	aliases := eo.feeds[src]
	if len(aliases) == 0 {
		tuple.Recycle(t) // no query reads this stream here anymore
		return
	}
	for _, alias := range aliases {
		tt := t
		if alias != src {
			tt = t.Clone()
			tt.Schema = t.Schema.RenameShared(alias)
		} else if len(aliases) > 1 {
			tt = t.Clone()
		}
		_ = eo.engine.Push(tt)
	}
	// The original tuple is pushed as-is only on the common one-alias
	// fast path; any other shape pushed clones, so retire it.
	if len(aliases) != 1 || aliases[0] != src {
		tuple.Recycle(t)
	}
}

func (eo *execObject) control(env envelope) {
	// A panic inside a handler must still release the waiting submitter
	// before it unwinds into quarantine, or Submit/Barrier would hang on
	// an ack that never comes.
	acked := false
	defer func() {
		if r := recover(); r != nil {
			if env.ack != nil && !acked {
				env.ack <- fmt.Errorf("executor: EO %d panicked in control handler: %v", eo.idx, r)
			}
			panic(r)
		}
	}()
	var err error
	switch env.ctl {
	case ctlAddQuery:
		err = eo.engine.AddQuery(env.query)
	case ctlRemoveQuery:
		eo.engine.RemoveQuery(env.qid)
	case ctlLoadTable:
		for _, r := range env.rows {
			if e := eo.engine.Push(r); e != nil && err == nil {
				err = e
			}
		}
		if e := eo.runEngine(); e != nil && err == nil {
			err = e
		}
	case ctlBarrier:
		// A barrier acks only after the data queue is empty and the
		// engine has gone quiescent; keep alternating because a quantum
		// may admit more arrivals queued behind the batch it drained.
		for {
			n := eo.drainData()
			if e := eo.runEngine(); e != nil && err == nil {
				err = e
			}
			if n == 0 {
				break
			}
		}
	case ctlStats:
		env.snap <- eo.snapshot()
	}
	if env.ack != nil {
		acked = true
		env.ack <- err
	}
}

// ErrQuarantined reports that a query was retired because its Execution
// Object panicked.
var ErrQuarantined = errors.New("executor: query quarantined after operator panic")

// quarantine retires a panicked EO: it stops admission, drains and
// recycles queued work, releases any waiting control senders, marks the
// EO's queries errored, and delivers the failure to their subscribers.
// Other EOs — and therefore all queries in other classes — keep running.
// Runs on the EO's own goroutine, immediately before it exits.
func (x *Executor) quarantine(eo *execObject, cause any, stack []byte) {
	eo.dead.Store(true)
	err := fmt.Errorf("%w: EO %d: %v", ErrQuarantined, eo.idx, cause)
	fmt.Fprintf(os.Stderr, "telegraphcq: %v\n%s", err, stack)

	// Stop admission, then retire everything already queued: the drain
	// scratch (a panic mid-batch leaves its tail unprocessed), the data
	// queue, and the engine's buffered deliveries.
	eo.data.Close()
	eo.ctl.Close()
	for i := range eo.drain {
		if eo.drain[i] != nil {
			tuple.Recycle(eo.drain[i])
			eo.drain[i] = nil
		}
	}
	for {
		t, ok := eo.data.TryDequeue()
		if !ok {
			break
		}
		tuple.Recycle(t)
	}
	// Release queued control senders (Submit, Barrier, scrapes) with the
	// quarantine error so nothing deadlocks on a dead EO.
	for {
		env, ok := eo.ctl.TryDequeue()
		if !ok {
			break
		}
		if env.ack != nil {
			env.ack <- err
		}
		if env.snap != nil {
			close(env.snap)
		}
	}

	x.failEO(eo, err)
}

// failEO is the executor-side bookkeeping of a quarantine: count it,
// mark the EO's queries errored, and deliver the failure to their
// subscribers. Shared by the single-engine and shard-group paths.
func (x *Executor) failEO(eo *execObject, err error) {
	x.mu.Lock()
	x.quarantines++
	var failed []*runningQuery
	for _, rq := range x.queries {
		if rq.eo == eo && rq.err == nil {
			rq.err = err
			failed = append(failed, rq)
		}
	}
	x.mu.Unlock()
	for _, rq := range failed {
		x.hub.Fail(rq.id, err)
	}
}

// QueryErr returns the quarantine error of a query (nil while healthy;
// an error wrapping ErrQuarantined once its EO panicked).
func (x *Executor) QueryErr(id int) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if rq, ok := x.queries[id]; ok {
		return rq.err
	}
	return fmt.Errorf("executor: unknown query %d", id)
}

// Quarantines returns how many EOs have been retired after panics.
func (x *Executor) Quarantines() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.quarantines
}

// --------------------------------------------------------------- submit

// Submit parses nothing: it takes a parsed SELECT, plans it, picks an
// EO by footprint, registers the query, and returns its id and a result
// subscription.
func (x *Executor) Submit(sel *sql.Select) (int, *egress.Subscription, error) {
	return x.submit(sel, true)
}

// SubmitDetached registers a query with no single-consumer push
// subscription: results reach only the query's spool and/or fan-out
// tree. This is the submission path for SUBSCRIBE SELECT, where N
// clients share one encode-once delivery point instead of one SPSC
// ring.
func (x *Executor) SubmitDetached(sel *sql.Select) (int, error) {
	id, _, err := x.submit(sel, false)
	return id, err
}

func (x *Executor) submit(sel *sql.Select, attach bool) (int, *egress.Subscription, error) {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return 0, nil, fmt.Errorf("executor: closed")
	}
	id := x.nextID
	x.nextID++
	x.mu.Unlock()

	planned, err := x.planner.PlanSelect(sel, id)
	if err != nil {
		return 0, nil, err
	}

	// Bind ST so ST-relative windows start "now": the current wall-clock
	// millisecond for PHYSICAL windows, else the maximum current sequence
	// across the query's streams.
	var st int64
	if planned.CQ.Window != nil && planned.CQ.Window.Domain == tuple.PhysicalTime {
		st = time.Now().UnixMilli()
	} else {
		for _, f := range planned.Feeds {
			src, err := x.cat.Lookup(f.Stream)
			if err == nil && src.CurSeq() > st {
				st = src.CurSeq()
			}
		}
	}
	planned.CQ.StartTime = st

	// WITH (shards=N) overrides the executor default, but only for the
	// EO the query *creates*; placed on an existing EO the query joins
	// that EO's shard count (footprint sharing wins over the hint).
	shards := x.opts.Shards
	if sel.Shards > 0 {
		shards = sel.Shards
	}
	// WITH (compiled=on|off) works the same way: it picks the
	// expression path of the EO the query creates.
	compiled := x.opts.CompiledExpr == ExprCompiled
	if sel.Compiled != 0 {
		compiled = sel.Compiled > 0
	}

	x.mu.Lock()
	eo := x.placeLocked(planned, shards, compiled)
	// Register feeds before the query so data admitted concurrently is
	// seen; the engine ignores tuples with no interested query.
	for _, f := range planned.Feeds {
		if !contains(eo.feeds[f.Stream], f.As) {
			eo.feeds[f.Stream] = append(eo.feeds[f.Stream], f.As)
		}
		eo.sources[f.As] = true
		eo.sources[f.Stream] = true
	}
	for _, tl := range planned.Tables {
		eo.sources[tl.As] = true
		eo.sources[tl.Table] = true
	}
	x.mu.Unlock()

	// Add the query synchronously.
	ack := make(chan error, 1)
	if err := eo.ctl.Enqueue(envelope{ctl: ctlAddQuery, query: planned.CQ, part: planned.Partition, feeds: planned.Feeds, ack: ack}); err != nil {
		return 0, nil, err
	}
	if err := <-ack; err != nil {
		return 0, nil, err
	}

	// Load static tables (once per EO/alias).
	for _, tl := range planned.Tables {
		key := fmt.Sprintf("%d/%s", eo.idx, tl.As)
		x.mu.Lock()
		loaded := x.fed[key]
		x.fed[key] = true
		x.mu.Unlock()
		if loaded {
			continue
		}
		src, err := x.cat.Lookup(tl.Table)
		if err != nil {
			return 0, nil, err
		}
		rows := src.Rows()
		renamed := make([]*tuple.Tuple, len(rows))
		for i, r := range rows {
			rr := r.Clone()
			if tl.As != tl.Table {
				rr.Schema = r.Schema.RenameShared(tl.As)
			}
			renamed[i] = rr
		}
		ack := make(chan error, 1)
		if err := eo.ctl.Enqueue(envelope{ctl: ctlLoadTable, rows: renamed, ack: ack}); err != nil {
			return 0, nil, err
		}
		if err := <-ack; err != nil {
			return 0, nil, err
		}
	}

	var sub *egress.Subscription
	if attach {
		sub = x.hub.Subscribe(id, x.opts.SubscriptionCap)
	}
	rq := &runningQuery{id: id, eo: eo, planned: planned, sub: sub}
	if planned.Distinct || len(planned.OrderBy) > 0 || planned.Limit > 0 {
		rq.post = newPostProcessor(planned)
	}
	x.mu.Lock()
	x.queries[id] = rq
	x.mu.Unlock()
	return id, sub, nil
}

// placeLocked picks (or creates) the EO for a planned query; shards
// and compiled configure a newly created EO. Quarantined EOs are never
// placement candidates.
func (x *Executor) placeLocked(p *plan.Planned, shards int, compiled bool) *execObject {
	switch x.opts.Mode {
	case ClassSingle:
		for _, eo := range x.eos {
			if !eo.dead.Load() {
				return eo
			}
		}
		return x.newEO(shards, compiled)
	case ClassPerQuery:
		return x.newEO(shards, compiled)
	default:
		// Footprint overlap: first live EO sharing any source.
		fp := p.CQ.Footprint()
		for _, eo := range x.eos {
			if eo.dead.Load() {
				continue
			}
			for _, s := range fp {
				if eo.sources[s] {
					return eo
				}
			}
		}
		return x.newEO(shards, compiled)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Cancel removes a standing query and closes its subscription.
func (x *Executor) Cancel(id int) error {
	x.mu.Lock()
	rq, ok := x.queries[id]
	if ok {
		delete(x.queries, id)
	}
	x.mu.Unlock()
	if !ok {
		return fmt.Errorf("executor: unknown query %d", id)
	}
	// A quarantined EO no longer accepts control traffic; its engine is
	// gone, so there is nothing to remove — just release the consumers.
	if !rq.eo.dead.Load() {
		ack := make(chan error, 1)
		if err := rq.eo.ctl.Enqueue(envelope{ctl: ctlRemoveQuery, qid: id, ack: ack}); err != nil {
			return err
		}
		<-ack
	}
	if rq.post != nil {
		for _, r := range rq.post.flush() {
			x.hub.Deliver(id, r)
		}
	}
	x.hub.Close(id)
	return nil
}

// Queries returns the ids of standing queries, sorted.
func (x *Executor) Queries() []int {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]int, 0, len(x.queries))
	for id := range x.queries {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Shed returns the total tuples dropped at EO ingress queues (QoS).
func (x *Executor) Shed() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	var n int64
	for _, eo := range x.eos {
		n += eo.shed.Load()
	}
	return n
}

// EOCount returns the number of Execution Objects.
func (x *Executor) EOCount() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.eos)
}

// ---------------------------------------------------------------- push

// Push stamps one tuple of a stream with the next sequence number and
// routes it to every EO reading the stream. Returns the assigned
// sequence.
func (x *Executor) Push(stream string, vals []tuple.Value) (int64, error) {
	return x.push(stream, -1, time.Now(), vals)
}

// PushAt delivers a tuple carrying a source-assigned logical timestamp
// (e.g. the trading day); timestamps may repeat but not regress.
func (x *Executor) PushAt(stream string, seq int64, vals []tuple.Value) error {
	_, err := x.push(stream, seq, time.Now(), vals)
	return err
}

// PushStamped delivers a tuple with a caller-controlled wall clock — the
// seam deterministic harnesses (tcqcheck) use to drive physical-time
// windows reproducibly. A zero wall admits the tuple untimestamped: it
// has no physical coordinate and belongs to no physical window.
func (x *Executor) PushStamped(stream string, wall time.Time, vals []tuple.Value) (int64, error) {
	return x.push(stream, -1, wall, vals)
}

func (x *Executor) push(stream string, seq int64, wall time.Time, vals []tuple.Value) (int64, error) {
	src, err := x.cat.Lookup(stream)
	if err != nil {
		return 0, err
	}
	if src.Kind != catalog.KindStream {
		return 0, fmt.Errorf("executor: %s is a table; use INSERT", stream)
	}
	if len(vals) != src.Schema.Arity() {
		return 0, fmt.Errorf("executor: %s expects %d values, got %d", stream, src.Schema.Arity(), len(vals))
	}
	if seq < 0 {
		seq = src.NextSeq()
	} else if err := src.AdvanceTo(seq); err != nil {
		return 0, err
	}
	// Pooled admission: copy the caller's values so the tuple (and its
	// backing array) can be recycled once the dataflow retires it.
	t := tuple.NewPooled(src.Schema)
	t.Values = append(t.Values, vals...)
	t.TS = tuple.Timestamp{Seq: seq, Wall: wall}

	eos := x.readers(stream)
	if len(eos) == 0 {
		tuple.Recycle(t)
		return seq, nil
	}
	// Each EO mutates (and may recycle) its copy, so clone everything
	// up front — an EO can retire the original the moment it is
	// enqueued. The common single-EO case pays no clone.
	copies := make([]*tuple.Tuple, len(eos))
	copies[0] = t
	for i := 1; i < len(eos); i++ {
		copies[i] = t.Clone()
	}
	qos := src.QoS()
	for i, eo := range eos {
		x.offer(eo, copies[i], stream, qos)
	}
	return seq, nil
}

// offer admits one tuple into one EO's ingress queue under the stream's
// overflow policy, keeping the QoS books: every lost tuple (the shed
// newcomer or the evicted oldest) increments exactly one shed count, so
// pushed == entered-engine + shed reconciles exactly.
func (x *Executor) offer(eo *execObject, t *tuple.Tuple, stream string, qos fjord.QoS) bool {
	opts := fjord.OfferOpts{QoS: qos}
	if qos.Policy == fjord.Sample {
		opts.Rand = x.qosDraw
	}
	if x.opts.Chaos != nil {
		opts.Full = x.opts.Chaos.QueueFull
	}
	res := fjord.Offer[*tuple.Tuple](eo.data, t, opts)
	qs := x.qstatsFor(stream)
	if res.DidEvict {
		tuple.Recycle(res.Evicted)
		eo.shed.Add(1)
		qs.shed.Add(1)
	}
	if !res.Accepted {
		tuple.Recycle(t)
		eo.shed.Add(1)
		qs.shed.Add(1)
		if res.TimedOut {
			qs.blockTimeouts.Add(1)
		}
		return false
	}
	return true
}

// qosDraw serializes sample-policy admission draws on a seeded PRNG.
func (x *Executor) qosDraw() float64 {
	x.qosMu.Lock()
	defer x.qosMu.Unlock()
	return x.qosRng.Float64()
}

// PushBatch stamps a batch of tuples of one stream with consecutive
// sequence numbers and moves the whole slice to every reading EO with a
// single queue operation each. Returns the last assigned sequence. A
// full EO queue sheds the unaccepted suffix (QoS, as with Push).
func (x *Executor) PushBatch(stream string, rows [][]tuple.Value) (int64, error) {
	src, err := x.cat.Lookup(stream)
	if err != nil {
		return 0, err
	}
	if src.Kind != catalog.KindStream {
		return 0, fmt.Errorf("executor: %s is a table; use INSERT", stream)
	}
	wall := time.Now()
	var seq int64
	ts := make([]*tuple.Tuple, len(rows))
	for i, vals := range rows {
		if len(vals) != src.Schema.Arity() {
			return 0, fmt.Errorf("executor: %s expects %d values, got %d", stream, src.Schema.Arity(), len(vals))
		}
		seq = src.NextSeq()
		t := tuple.NewPooled(src.Schema)
		t.Values = append(t.Values, vals...)
		t.TS = tuple.Timestamp{Seq: seq, Wall: wall}
		ts[i] = t
	}
	eos := x.readers(stream)
	if len(eos) == 0 {
		for _, t := range ts {
			tuple.Recycle(t)
		}
		return seq, nil
	}
	// As in push: all clones are taken before any EO can touch (or
	// retire) the originals.
	batches := make([][]*tuple.Tuple, len(eos))
	batches[0] = ts
	for i := 1; i < len(eos); i++ {
		cl := make([]*tuple.Tuple, len(ts))
		for j, t := range ts {
			cl[j] = t.Clone()
		}
		batches[i] = cl
	}
	qos := src.QoS()
	for i, eo := range eos {
		batch := batches[i]
		// Vectorized fast path; a chaos queue-full burst diverts the
		// whole batch through the per-tuple policy path instead.
		n := 0
		if !(x.opts.Chaos != nil && x.opts.Chaos.QueueFull()) {
			n = eo.data.TryEnqueueBatch(batch)
		}
		// The unaccepted suffix goes through the stream's overflow
		// policy tuple by tuple (block waits, drop-oldest evicts, ...).
		for _, t := range batch[n:] {
			x.offer(eo, t, stream, qos)
		}
	}
	return seq, nil
}

// readers snapshots the live EOs fed by a stream (a quarantined EO
// accepts no more data; its tuples would be recycled unprocessed).
func (x *Executor) readers(stream string) []*execObject {
	x.mu.Lock()
	defer x.mu.Unlock()
	eos := make([]*execObject, 0, len(x.eos))
	for _, eo := range x.eos {
		if len(eo.feeds[stream]) > 0 && !eo.dead.Load() {
			eos = append(eos, eo)
		}
	}
	return eos
}

// Barrier waits until every EO has drained its queue and run its engine
// to quiescence (tests and benchmarks synchronize on it).
func (x *Executor) Barrier() error {
	x.mu.Lock()
	eos := append([]*execObject(nil), x.eos...)
	x.mu.Unlock()
	for _, eo := range eos {
		if eo.dead.Load() {
			continue // a quarantined EO is permanently quiescent
		}
		ack := make(chan error, 1)
		if err := eo.ctl.Enqueue(envelope{ctl: ctlBarrier, ack: ack}); err != nil {
			if eo.dead.Load() {
				continue // lost the race with a quarantine
			}
			return err
		}
		if err := <-ack; err != nil {
			if errors.Is(err, ErrQuarantined) {
				continue // the EO died while the barrier was queued
			}
			return err
		}
	}
	return nil
}

// deliverBatch applies per-query post-processing then hands a batch of
// rows for one query to the hub. It owns the rows (the hub recycles or
// retains them) but not the slice.
func (x *Executor) deliverBatch(id int, rows []*tuple.Tuple) {
	x.mu.Lock()
	rq := x.queries[id]
	x.mu.Unlock()
	if rq == nil {
		for _, r := range rows {
			tuple.Recycle(r) // query cancelled mid-quantum
		}
		return
	}
	if rq.post != nil {
		done := false
		for _, row := range rows {
			out, d := rq.post.process(row)
			for _, r := range out {
				x.hub.Deliver(id, r)
			}
			if d {
				done = true
			}
		}
		if done {
			go func() { _ = x.Cancel(id) }()
		}
		return
	}
	x.hub.DeliverBatch(id, rows)
}

// Close shuts every EO down.
func (x *Executor) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.closed = true
	eos := append([]*execObject(nil), x.eos...)
	stop, done := x.samplerStop, x.samplerDone
	x.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	for _, eo := range eos {
		eo.data.Close()
		eo.ctl.Close()
		<-eo.done
	}
	x.hub.CloseAll()
}

// ------------------------------------------------------ post-processing

// juggleWindow is the reorder buffer depth for ORDER BY delivery.
const juggleWindow = 64

// postProcessor applies DISTINCT / ORDER BY / LIMIT on the delivery
// path. A full sort of an unbounded stream is impossible, so ORDER BY is
// executed as the paper executes prioritized delivery: a Juggle buffer
// (online reordering, [RRH99]) holds up to juggleWindow rows and always
// releases the best-ranked one first. With LIMIT n, the query completes
// after n rows have been released in that prioritized order.
type postProcessor struct {
	dup    *operator.DupElim
	limit  int64
	sent   int64
	juggle *operator.Juggle
}

func newPostProcessor(p *plan.Planned) *postProcessor {
	pp := &postProcessor{limit: p.Limit}
	if p.Distinct {
		pp.dup = operator.NewDupElim("distinct")
	}
	if len(p.OrderBy) > 0 {
		// Priority: the first sort key; DESC means larger-first, which is
		// the Juggle's native order, so ASC negates.
		key := p.OrderBy[0]
		pri := key.Expr
		if !key.Desc {
			pri = expr.Neg(pri)
		}
		pp.juggle = operator.NewJuggle("orderby", pri, juggleWindow)
	}
	return pp
}

// process returns rows to deliver now and whether the query is complete
// (LIMIT reached).
func (pp *postProcessor) process(row *tuple.Tuple) ([]*tuple.Tuple, bool) {
	if pp.dup != nil {
		out, err := pp.dup.Process(row, nil)
		if err != nil || out == operator.Drop {
			tuple.Recycle(row) // duplicate retired here
			return nil, false
		}
	}
	var ready []*tuple.Tuple
	if pp.juggle != nil {
		// Buffer; the Juggle releases the best row once it is full.
		if _, err := pp.juggle.Process(row, func(t *tuple.Tuple) {
			ready = append(ready, t)
		}); err != nil {
			ready = append(ready, row) // unorderable row: pass through
		}
	} else {
		ready = []*tuple.Tuple{row}
	}
	return pp.takeLimited(ready)
}

func (pp *postProcessor) takeLimited(rows []*tuple.Tuple) ([]*tuple.Tuple, bool) {
	if pp.limit <= 0 {
		return rows, false
	}
	if pp.sent >= pp.limit {
		for _, r := range rows {
			tuple.Recycle(r)
		}
		return nil, true
	}
	if remaining := pp.limit - pp.sent; int64(len(rows)) > remaining {
		for _, r := range rows[remaining:] {
			tuple.Recycle(r)
		}
		rows = rows[:remaining]
	}
	pp.sent += int64(len(rows))
	return rows, pp.sent >= pp.limit
}

// flush drains the reorder buffer (stream end or cancellation).
func (pp *postProcessor) flush() []*tuple.Tuple {
	if pp.juggle == nil {
		return nil
	}
	var rows []*tuple.Tuple
	_ = pp.juggle.Flush(func(t *tuple.Tuple) { rows = append(rows, t) })
	out, _ := pp.takeLimited(rows)
	return out
}
