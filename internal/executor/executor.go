// Package executor implements the TelegraphCQ Executor process
// (§4.2.2): a small number of Execution Objects (EOs — system threads,
// here goroutines), each hosting non-preemptive Dispatch Units scheduled
// cooperatively. Queries are partitioned into classes by footprint (the
// set of streams/tables they read); queries whose footprints overlap
// share an EO — and therefore one CACQ engine, its grouped filters, and
// its SteMs.
package executor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/catalog"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/egress"
	"telegraphcq/internal/expr"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/operator"
	"telegraphcq/internal/plan"
	"telegraphcq/internal/sql"
	"telegraphcq/internal/telemetry"
	"telegraphcq/internal/tuple"
)

// ClassMode selects how queries map onto Execution Objects (the E10
// experiment sweeps this).
type ClassMode uint8

const (
	// ClassByFootprint groups queries whose footprints overlap (default).
	ClassByFootprint ClassMode = iota
	// ClassSingle runs every query in one EO (the CACQ/PSoup approach
	// the paper moves away from).
	ClassSingle
	// ClassPerQuery gives each query its own EO (no sharing, maximal
	// threads — the other extreme).
	ClassPerQuery
)

func (m ClassMode) String() string {
	switch m {
	case ClassSingle:
		return "single"
	case ClassPerQuery:
		return "per-query"
	default:
		return "footprint"
	}
}

// Options configures an Executor.
type Options struct {
	Mode ClassMode
	// Policy builds the routing policy for each EO's eddy (nil →
	// lottery, seeded deterministically per EO).
	Policy func(seed int64) eddy.Policy
	// QueueCap bounds each EO's ingress queue.
	QueueCap int
	// SubscriptionCap bounds each query's result queue.
	SubscriptionCap int
	// Batch and FixedHops set the adapting-adaptivity knobs on every EO.
	Batch     int
	FixedHops int
	// Metrics receives the executor's telemetry (nil → a private
	// registry; pass a shared one to aggregate with storage etc.).
	Metrics *telemetry.Registry
	// SampleInterval is the period of the system-stream sampler feeding
	// tcq_operators/tcq_queues/tcq_queries (0 → 500ms; <0 disables).
	SampleInterval time.Duration
}

// Executor owns the EOs and the query table.
type Executor struct {
	cat     *catalog.Catalog
	planner *plan.Planner
	hub     *egress.Hub
	opts    Options
	metrics *telemetry.Registry

	mu      sync.Mutex
	eos     []*execObject
	queries map[int]*runningQuery
	nextID  int
	fed     map[string]bool // "eoIdx/alias" table loads already done
	closed  bool

	samplerStop chan struct{}
	samplerDone chan struct{}
}

type runningQuery struct {
	id      int
	eo      *execObject
	planned *plan.Planned
	sub     *egress.Subscription
	post    *postProcessor
}

// New builds an executor over a catalog.
func New(cat *catalog.Catalog, opts Options) *Executor {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 4096
	}
	if opts.SubscriptionCap <= 0 {
		opts.SubscriptionCap = 4096
	}
	if opts.Policy == nil {
		opts.Policy = func(seed int64) eddy.Policy { return eddy.NewLottery(seed) }
	}
	if opts.Metrics == nil {
		opts.Metrics = telemetry.NewRegistry()
	}
	x := &Executor{
		cat:     cat,
		planner: plan.New(cat),
		hub:     egress.NewHub(),
		opts:    opts,
		metrics: opts.Metrics,
		queries: map[int]*runningQuery{},
		fed:     map[string]bool{},
	}
	x.registerCollectors()
	x.registerSystemStreams()
	if opts.SampleInterval >= 0 {
		iv := opts.SampleInterval
		if iv == 0 {
			iv = 500 * time.Millisecond
		}
		x.startSampler(iv)
	}
	return x
}

// Hub exposes result routing (the server wires spools through it).
func (x *Executor) Hub() *egress.Hub { return x.hub }

// Metrics exposes the telemetry registry the executor reports into.
func (x *Executor) Metrics() *telemetry.Registry { return x.metrics }

// ----------------------------------------------------------------- EO

type ctlKind uint8

const (
	ctlAddQuery ctlKind = iota
	ctlRemoveQuery
	ctlLoadTable
	ctlBarrier
	ctlStats
)

type envelope struct {
	// data
	t *tuple.Tuple
	// control
	ctl   ctlKind
	isCtl bool
	query *cacq.Query
	qid   int
	rows  []*tuple.Tuple // table load
	ack   chan error
	snap  chan *eoSnapshot // ctlStats reply
}

// execObject is one Execution Object: a goroutine scheduling its
// dispatch units (control handling, ingress drain, engine work)
// non-preemptively.
type execObject struct {
	idx     int
	engine  *cacq.Engine
	in      *fjord.Counted[envelope]
	feeds   map[string][]string // stream → aliases fed into this EO
	sources map[string]bool     // footprint covered by this EO
	done    chan struct{}
	x       *Executor

	shed atomic.Int64 // tuples dropped because the EO queue was full
}

func (x *Executor) newEO() *execObject {
	eo := &execObject{
		idx:     len(x.eos),
		in:      fjord.Count(fjord.NewPush[envelope](x.opts.QueueCap)),
		feeds:   map[string][]string{},
		sources: map[string]bool{},
		done:    make(chan struct{}),
		x:       x,
	}
	eo.engine = cacq.NewEngine(x.opts.Policy(int64(eo.idx)+1), func(id int, row *tuple.Tuple) {
		x.deliver(id, row)
	})
	if x.opts.Batch > 1 {
		eo.engine.Eddy().BatchSize = x.opts.Batch
	}
	if x.opts.FixedHops > 1 {
		eo.engine.Eddy().FixedHops = x.opts.FixedHops
	}
	x.eos = append(x.eos, eo)
	go eo.run()
	return eo
}

// run is the EO scheduler loop: drain control and data, give the engine
// its quantum, idle briefly when nothing is queued.
func (eo *execObject) run() {
	defer close(eo.done)
	idle := 0
	for {
		env, ok := eo.in.TryDequeue()
		if !ok {
			if eo.in.Closed() {
				return
			}
			// Idle dispatch: async modules, pending admission batches.
			_ = eo.engine.Run()
			idle++
			if idle > 8 {
				time.Sleep(200 * time.Microsecond)
			}
			continue
		}
		idle = 0
		if env.isCtl {
			eo.control(env)
			continue
		}
		eo.push(env.t)
		// Batch up to 256 more data tuples before running the engine.
		for i := 0; i < 256; i++ {
			more, ok := eo.in.TryDequeue()
			if !ok {
				break
			}
			if more.isCtl {
				eo.control(more)
				continue
			}
			eo.push(more.t)
		}
		_ = eo.engine.Run()
	}
}

func (eo *execObject) push(t *tuple.Tuple) {
	src := t.Schema.Sources[0]
	aliases := eo.feeds[src]
	if len(aliases) == 0 {
		return
	}
	for _, alias := range aliases {
		tt := t
		if alias != src {
			tt = t.Clone()
			tt.Schema = t.Schema.Rename(alias)
		} else if len(aliases) > 1 {
			tt = t.Clone()
		}
		_ = eo.engine.Push(tt)
	}
}

func (eo *execObject) control(env envelope) {
	var err error
	switch env.ctl {
	case ctlAddQuery:
		err = eo.engine.AddQuery(env.query)
	case ctlRemoveQuery:
		eo.engine.RemoveQuery(env.qid)
	case ctlLoadTable:
		for _, r := range env.rows {
			if e := eo.engine.Push(r); e != nil && err == nil {
				err = e
			}
		}
		if e := eo.engine.Run(); e != nil && err == nil {
			err = e
		}
	case ctlBarrier:
		err = eo.engine.Run()
	case ctlStats:
		env.snap <- eo.snapshot()
	}
	if env.ack != nil {
		env.ack <- err
	}
}

// --------------------------------------------------------------- submit

// Submit parses nothing: it takes a parsed SELECT, plans it, picks an
// EO by footprint, registers the query, and returns its id and a result
// subscription.
func (x *Executor) Submit(sel *sql.Select) (int, *egress.Subscription, error) {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return 0, nil, fmt.Errorf("executor: closed")
	}
	id := x.nextID
	x.nextID++
	x.mu.Unlock()

	planned, err := x.planner.PlanSelect(sel, id)
	if err != nil {
		return 0, nil, err
	}

	// Bind ST so ST-relative windows start "now": the current wall-clock
	// millisecond for PHYSICAL windows, else the maximum current sequence
	// across the query's streams.
	var st int64
	if planned.CQ.Window != nil && planned.CQ.Window.Domain == tuple.PhysicalTime {
		st = time.Now().UnixMilli()
	} else {
		for _, f := range planned.Feeds {
			src, err := x.cat.Lookup(f.Stream)
			if err == nil && src.CurSeq() > st {
				st = src.CurSeq()
			}
		}
	}
	planned.CQ.StartTime = st

	x.mu.Lock()
	eo := x.placeLocked(planned)
	// Register feeds before the query so data admitted concurrently is
	// seen; the engine ignores tuples with no interested query.
	for _, f := range planned.Feeds {
		if !contains(eo.feeds[f.Stream], f.As) {
			eo.feeds[f.Stream] = append(eo.feeds[f.Stream], f.As)
		}
		eo.sources[f.As] = true
		eo.sources[f.Stream] = true
	}
	for _, tl := range planned.Tables {
		eo.sources[tl.As] = true
		eo.sources[tl.Table] = true
	}
	x.mu.Unlock()

	// Add the query synchronously.
	ack := make(chan error, 1)
	if err := eo.in.Enqueue(envelope{isCtl: true, ctl: ctlAddQuery, query: planned.CQ, ack: ack}); err != nil {
		return 0, nil, err
	}
	if err := <-ack; err != nil {
		return 0, nil, err
	}

	// Load static tables (once per EO/alias).
	for _, tl := range planned.Tables {
		key := fmt.Sprintf("%d/%s", eo.idx, tl.As)
		x.mu.Lock()
		loaded := x.fed[key]
		x.fed[key] = true
		x.mu.Unlock()
		if loaded {
			continue
		}
		src, err := x.cat.Lookup(tl.Table)
		if err != nil {
			return 0, nil, err
		}
		rows := src.Rows()
		renamed := make([]*tuple.Tuple, len(rows))
		for i, r := range rows {
			rr := r.Clone()
			if tl.As != tl.Table {
				rr.Schema = r.Schema.Rename(tl.As)
			}
			renamed[i] = rr
		}
		ack := make(chan error, 1)
		if err := eo.in.Enqueue(envelope{isCtl: true, ctl: ctlLoadTable, rows: renamed, ack: ack}); err != nil {
			return 0, nil, err
		}
		if err := <-ack; err != nil {
			return 0, nil, err
		}
	}

	sub := x.hub.Subscribe(id, x.opts.SubscriptionCap)
	rq := &runningQuery{id: id, eo: eo, planned: planned, sub: sub}
	if planned.Distinct || len(planned.OrderBy) > 0 || planned.Limit > 0 {
		rq.post = newPostProcessor(planned)
	}
	x.mu.Lock()
	x.queries[id] = rq
	x.mu.Unlock()
	return id, sub, nil
}

// placeLocked picks (or creates) the EO for a planned query.
func (x *Executor) placeLocked(p *plan.Planned) *execObject {
	switch x.opts.Mode {
	case ClassSingle:
		if len(x.eos) == 0 {
			return x.newEO()
		}
		return x.eos[0]
	case ClassPerQuery:
		return x.newEO()
	default:
		// Footprint overlap: first EO sharing any source.
		fp := p.CQ.Footprint()
		for _, eo := range x.eos {
			for _, s := range fp {
				if eo.sources[s] {
					return eo
				}
			}
		}
		return x.newEO()
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Cancel removes a standing query and closes its subscription.
func (x *Executor) Cancel(id int) error {
	x.mu.Lock()
	rq, ok := x.queries[id]
	if ok {
		delete(x.queries, id)
	}
	x.mu.Unlock()
	if !ok {
		return fmt.Errorf("executor: unknown query %d", id)
	}
	ack := make(chan error, 1)
	if err := rq.eo.in.Enqueue(envelope{isCtl: true, ctl: ctlRemoveQuery, qid: id, ack: ack}); err != nil {
		return err
	}
	<-ack
	if rq.post != nil {
		for _, r := range rq.post.flush() {
			x.hub.Deliver(id, r)
		}
	}
	x.hub.Close(id)
	return nil
}

// Queries returns the ids of standing queries, sorted.
func (x *Executor) Queries() []int {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]int, 0, len(x.queries))
	for id := range x.queries {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Shed returns the total tuples dropped at EO ingress queues (QoS).
func (x *Executor) Shed() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	var n int64
	for _, eo := range x.eos {
		n += eo.shed.Load()
	}
	return n
}

// EOCount returns the number of Execution Objects.
func (x *Executor) EOCount() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.eos)
}

// ---------------------------------------------------------------- push

// Push stamps one tuple of a stream with the next sequence number and
// routes it to every EO reading the stream. Returns the assigned
// sequence.
func (x *Executor) Push(stream string, vals []tuple.Value) (int64, error) {
	return x.push(stream, -1, vals)
}

// PushAt delivers a tuple carrying a source-assigned logical timestamp
// (e.g. the trading day); timestamps may repeat but not regress.
func (x *Executor) PushAt(stream string, seq int64, vals []tuple.Value) error {
	_, err := x.push(stream, seq, vals)
	return err
}

func (x *Executor) push(stream string, seq int64, vals []tuple.Value) (int64, error) {
	src, err := x.cat.Lookup(stream)
	if err != nil {
		return 0, err
	}
	if src.Kind != catalog.KindStream {
		return 0, fmt.Errorf("executor: %s is a table; use INSERT", stream)
	}
	if len(vals) != src.Schema.Arity() {
		return 0, fmt.Errorf("executor: %s expects %d values, got %d", stream, src.Schema.Arity(), len(vals))
	}
	if seq < 0 {
		seq = src.NextSeq()
	} else if err := src.AdvanceTo(seq); err != nil {
		return 0, err
	}
	t := tuple.New(src.Schema, vals...)
	t.TS = tuple.Timestamp{Seq: seq, Wall: time.Now()}

	x.mu.Lock()
	eos := make([]*execObject, 0, len(x.eos))
	for _, eo := range x.eos {
		if len(eo.feeds[stream]) > 0 {
			eos = append(eos, eo)
		}
	}
	x.mu.Unlock()
	// Each EO mutates its copy's lineage, so sharing one tuple across
	// EOs would race; clone everything up front (an EO may start
	// mutating the original the moment it is enqueued). The common
	// single-EO case pays no clone.
	copies := make([]*tuple.Tuple, len(eos))
	for i := range eos {
		if i == 0 {
			copies[i] = t
		} else {
			copies[i] = t.Clone()
		}
	}
	for i, eo := range eos {
		if !eo.in.TryEnqueue(envelope{t: copies[i]}) {
			eo.shed.Add(1)
		}
	}
	return seq, nil
}

// Barrier waits until every EO has drained its queue and run its engine
// to quiescence (tests and benchmarks synchronize on it).
func (x *Executor) Barrier() error {
	x.mu.Lock()
	eos := append([]*execObject(nil), x.eos...)
	x.mu.Unlock()
	for _, eo := range eos {
		ack := make(chan error, 1)
		if err := eo.in.Enqueue(envelope{isCtl: true, ctl: ctlBarrier, ack: ack}); err != nil {
			return err
		}
		if err := <-ack; err != nil {
			return err
		}
	}
	return nil
}

// deliver applies per-query post-processing then hands rows to the hub.
func (x *Executor) deliver(id int, row *tuple.Tuple) {
	x.mu.Lock()
	rq := x.queries[id]
	x.mu.Unlock()
	if rq == nil {
		return
	}
	if rq.post != nil {
		rows, done := rq.post.process(row)
		for _, r := range rows {
			x.hub.Deliver(id, r)
		}
		if done {
			go func() { _ = x.Cancel(id) }()
		}
		return
	}
	x.hub.Deliver(id, row)
}

// Close shuts every EO down.
func (x *Executor) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.closed = true
	eos := append([]*execObject(nil), x.eos...)
	stop, done := x.samplerStop, x.samplerDone
	x.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	for _, eo := range eos {
		eo.in.Close()
		<-eo.done
	}
	x.hub.CloseAll()
}

// ------------------------------------------------------ post-processing

// juggleWindow is the reorder buffer depth for ORDER BY delivery.
const juggleWindow = 64

// postProcessor applies DISTINCT / ORDER BY / LIMIT on the delivery
// path. A full sort of an unbounded stream is impossible, so ORDER BY is
// executed as the paper executes prioritized delivery: a Juggle buffer
// (online reordering, [RRH99]) holds up to juggleWindow rows and always
// releases the best-ranked one first. With LIMIT n, the query completes
// after n rows have been released in that prioritized order.
type postProcessor struct {
	dup    *operator.DupElim
	limit  int64
	sent   int64
	juggle *operator.Juggle
}

func newPostProcessor(p *plan.Planned) *postProcessor {
	pp := &postProcessor{limit: p.Limit}
	if p.Distinct {
		pp.dup = operator.NewDupElim("distinct")
	}
	if len(p.OrderBy) > 0 {
		// Priority: the first sort key; DESC means larger-first, which is
		// the Juggle's native order, so ASC negates.
		key := p.OrderBy[0]
		pri := key.Expr
		if !key.Desc {
			pri = expr.Neg(pri)
		}
		pp.juggle = operator.NewJuggle("orderby", pri, juggleWindow)
	}
	return pp
}

// process returns rows to deliver now and whether the query is complete
// (LIMIT reached).
func (pp *postProcessor) process(row *tuple.Tuple) ([]*tuple.Tuple, bool) {
	if pp.dup != nil {
		out, err := pp.dup.Process(row, nil)
		if err != nil || out == operator.Drop {
			return nil, false
		}
	}
	var ready []*tuple.Tuple
	if pp.juggle != nil {
		// Buffer; the Juggle releases the best row once it is full.
		if _, err := pp.juggle.Process(row, func(t *tuple.Tuple) {
			ready = append(ready, t)
		}); err != nil {
			ready = append(ready, row) // unorderable row: pass through
		}
	} else {
		ready = []*tuple.Tuple{row}
	}
	return pp.takeLimited(ready)
}

func (pp *postProcessor) takeLimited(rows []*tuple.Tuple) ([]*tuple.Tuple, bool) {
	if pp.limit <= 0 {
		return rows, false
	}
	if pp.sent >= pp.limit {
		return nil, true
	}
	if remaining := pp.limit - pp.sent; int64(len(rows)) > remaining {
		rows = rows[:remaining]
	}
	pp.sent += int64(len(rows))
	return rows, pp.sent >= pp.limit
}

// flush drains the reorder buffer (stream end or cancellation).
func (pp *postProcessor) flush() []*tuple.Tuple {
	if pp.juggle == nil {
		return nil
	}
	var rows []*tuple.Tuple
	_ = pp.juggle.Flush(func(t *tuple.Tuple) { rows = append(rows, t) })
	out, _ := pp.takeLimited(rows)
	return out
}
