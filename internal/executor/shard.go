// Multi-eddy SMP sharding: when Options.Shards > 1 each Execution
// Object becomes a *shard group* — N hash shards plus one catch-all
// shard, each owning a private CACQ engine (its own eddy loop, SteMs,
// grouped filters, and batch freelist) on its own goroutine. The EO
// goroutine becomes the group's coordinator: it hash-partitions ingress
// tuples by each stream's dominant join key into per-shard SPSC fjords
// (round-robin for keyless streams), merges per-shard egress back into
// the Hub seam in deterministic shard order, and serializes all control
// traffic (query add/remove, barriers, telemetry scrapes) so no shard
// state is ever touched off its owning thread.
//
// Queries whose joins partition cleanly (plan.Partition.Keys) register
// on every hash shard; tuples that can ever join hash to the same shard,
// so no cross-shard coordination is needed on the hot path. When an
// alias's join key differs from the stream's ingress partitioning (a
// self-join on different columns, or a second query keying the stream
// differently), the arrival shard *repartitions mid-plan*: it clones the
// tuple and moves it through the exchange — a mesh of per-pair SPSC
// rings — to the shard its key hashes to. Pinned queries (aggregates,
// band/Cartesian joins, table readers, conflicting keys) live on the
// catch-all shard, which receives every tuple of its streams through
// the same exchange and therefore behaves exactly like a single-shard
// engine.
//
// Windowed-join correctness across shards: the engine implements join
// windows by SteM eviction against each stream's sequence high-water
// mark. A shard only sees its hash class of a stream, so its local
// high-water mark would lag and stale state would answer probes a
// single-shard engine would never match. The coordinator therefore
// maintains a per-stream frontier (it routes every tuple, so it knows
// the global maximum) published through the route table; each shard
// applies it via Engine.AdvanceSeq before admitting work. Under barrier
// discipline the horizons are exact; between barriers they are within
// the in-flight batch — the same indeterminacy eddy routing order
// already admits.
package executor

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/fjord"
	"telegraphcq/internal/plan"
	"telegraphcq/internal/tuple"
)

const (
	// shardIngressCap bounds each shard's coordinator→shard SPSC ring.
	shardIngressCap = 4096
	// exchangeRingCap bounds each per-pair exchange ring.
	exchangeRingCap = 1024
	// egressRingCap bounds each shard's shard→coordinator delivery ring.
	egressRingCap = 8192
	// exchangeFlushBatch is the outbound buffer size that forces a flush
	// mid-quantum (buffers always flush at quantum end and barriers).
	exchangeFlushBatch = 64
)

// ------------------------------------------------------------ route table

// routeTable is the coordinator-built, atomically published partitioning
// plan: per-stream dominant keys, per-alias destinations, and the
// per-stream sequence frontier. Shards read it lock-free.
type routeTable struct {
	streams  map[string]*streamRoute
	frontier []*streamFrontier
}

// streamFrontier is one stream's sequence high-water mark as observed by
// the coordinator (the sole writer); shards load it to keep their
// eviction horizons on the global frontier.
type streamFrontier struct {
	stream  string
	aliases []string // dataflow names this stream feeds (AdvanceSeq targets)
	seq     atomic.Int64
}

type streamRoute struct {
	stream   string
	dominant int  // ingress hash column; -1 = round-robin
	hashAny  bool // at least one alias is read by shardable queries
	anyPin   bool // at least one alias is read by pinned queries
	aliases  []aliasRoute
	front    *streamFrontier
}

type aliasRoute struct {
	alias  string
	keyIdx int  // partition key column; -1 = stay on the arrival shard
	toHash bool // delivered into the hash shards (shardable readers)
	toPin  bool // forwarded to the catch-all shard (pinned readers)
}

// shardQuery is the coordinator's record of one registered query.
type shardQuery struct {
	part   *plan.Partition
	feeds  []plan.Feed
	pinned bool
}

// ------------------------------------------------------------ shard group

// shardGroup owns one EO's shards. All fields except the explicitly
// synchronized ones are coordinator-owned.
type shardGroup struct {
	eo     *execObject
	n      int // hash shards; shards[n] is the catch-all
	shards []*eddyShard
	mesh   *fjord.Mesh[*tuple.Tuple]
	route  atomic.Pointer[routeTable]

	rr      map[string]int // per-stream round-robin cursors
	order   []int          // query registration order (stable rebuilds)
	records map[int]*shardQuery

	// Shard-death signalling: the first panicking shard records its
	// cause and closes deadCh; the coordinator quarantines the group.
	aborting  atomic.Bool
	deadOnce  sync.Once
	deadCh    chan struct{}
	deadMu    sync.Mutex
	deadCause any
	deadStack []byte
	deadID    int

	// Coordinator-owned egress scratch.
	egScratch []delivery
	rowBuf    []*tuple.Tuple
}

type shardCmd struct {
	kind  ctlKind
	query *cacq.Query
	qid   int
	rows  []*tuple.Tuple
	reply chan shardReply
}

type shardReply struct {
	moved int
	err   error
	snap  *eoSnapshot
	stats shardStats
}

// shardStats are one shard's plain counters (worker-owned; snapshotted
// through the command channel, never read in place).
type shardStats struct {
	Ingress int64 // tuples delivered by the coordinator
	FwdOut  int64 // tuples repartitioned to siblings via the exchange
	FwdIn   int64 // tuples received from siblings via the exchange
	FwdDrop int64 // forwards dropped (destination ring closed)
	Egress  int64 // result rows handed to the coordinator
}

func newShardGroup(eo *execObject, n int) *shardGroup {
	g := &shardGroup{
		eo:        eo,
		n:         n,
		mesh:      fjord.NewMesh[*tuple.Tuple](n+1, exchangeRingCap),
		rr:        map[string]int{},
		records:   map[int]*shardQuery{},
		deadCh:    make(chan struct{}),
		egScratch: make([]delivery, eoDrainBatch),
	}
	g.route.Store(&routeTable{streams: map[string]*streamRoute{}})
	for i := 0; i <= n; i++ {
		sh := &eddyShard{
			id:      i,
			g:       g,
			in:      fjord.NewSPSC[*tuple.Tuple](shardIngressCap),
			cmd:     make(chan shardCmd, 16),
			egress:  fjord.NewSPSC[delivery](egressRingCap),
			done:    make(chan struct{}),
			drain:   make([]*tuple.Tuple, eoDrainBatch),
			xdrain:  make([]*tuple.Tuple, eoDrainBatch),
			fwd:     make([][]*tuple.Tuple, n+1),
			applied: map[string]int64{},
		}
		sh.inbound = g.mesh.Inbound(i, nil)
		sh.engine = cacq.NewEngine(eo.x.opts.Policy(int64(eo.idx)*64+int64(i)+1), func(id int, row *tuple.Tuple) {
			sh.out = append(sh.out, delivery{id: id, row: row})
		})
		sh.engine.SetCompiled(eo.compiled)
		if b := eo.x.opts.engineBatch(eo.compiled); b > 1 {
			sh.engine.Eddy().BatchSize = b
		}
		if eo.x.opts.FixedHops > 1 {
			sh.engine.Eddy().FixedHops = eo.x.opts.FixedHops
		}
		g.shards = append(g.shards, sh)
	}
	for _, sh := range g.shards {
		go sh.loop()
	}
	return g
}

// run is the coordinator loop (replaces the legacy EO scheduler when
// sharding is on).
func (g *shardGroup) run() {
	defer close(g.eo.done)
	idle := 0
	for {
		if g.step(&idle) {
			return
		}
	}
}

func (g *shardGroup) step(idle *int) (exit bool) {
	eo := g.eo
	defer func() {
		if r := recover(); r != nil {
			g.quarantineGroup(r, debug.Stack())
			exit = true
		}
	}()
	if g.isDead() {
		g.deadMu.Lock()
		cause, stack := g.deadCause, g.deadStack
		g.deadMu.Unlock()
		g.quarantineGroup(cause, stack)
		return true
	}
	progressed := false
	if env, ok := eo.ctl.TryDequeue(); ok {
		g.control(env)
		progressed = true
	} else if n := eo.data.DequeueBatch(eo.drain); n > 0 {
		g.partition(eo.drain[:n])
		progressed = true
	}
	if g.drainEgress() > 0 {
		progressed = true
	}
	if progressed {
		*idle = 0
		return false
	}
	if eo.ctl.Closed() {
		g.shutdown()
		return true
	}
	*idle++
	if *idle > 8 {
		time.Sleep(200 * time.Microsecond)
	}
	return false
}

func (g *shardGroup) isDead() bool {
	select {
	case <-g.deadCh:
		return true
	default:
		return false
	}
}

func (g *shardGroup) deadErr() error {
	g.deadMu.Lock()
	defer g.deadMu.Unlock()
	return fmt.Errorf("%w: EO %d shard %d: %v", ErrQuarantined, g.eo.idx, g.deadID, g.deadCause)
}

// partition routes one drained ingress batch. A tuple of a stream with
// shardable readers goes to its dominant-key hash shard (round-robin
// when keyless); a stream with pinned readers additionally delivers to
// the catch-all — directly from the coordinator, never via the hash
// shards, because the coordinator is the only point that still sees the
// stream's global arrival order and the catch-all's tuple-order-driven
// state (aggregate window closes, probe ordering) depends on it. The
// coordinator→catch-all ring is SPSC FIFO, so that order survives.
func (g *shardGroup) partition(batch []*tuple.Tuple) {
	rt := g.route.Load()
	for i, t := range batch {
		batch[i] = nil
		sr := rt.streams[t.Schema.Sources[0]]
		if sr == nil {
			tuple.Recycle(t) // no query reads this stream here (yet)
			continue
		}
		if t.TS.Seq > sr.front.seq.Load() {
			sr.front.seq.Store(t.TS.Seq) // coordinator is the sole writer
		}
		var pinT *tuple.Tuple
		if sr.anyPin {
			pinT = t
			if sr.hashAny {
				pinT = t.Clone()
			}
		}
		if sr.hashAny {
			var dest int
			if sr.dominant >= 0 {
				dest = int(t.Values[sr.dominant].Hash() % uint64(g.n))
			} else {
				dest = g.rr[sr.stream] % g.n
				g.rr[sr.stream]++
			}
			g.offerShard(g.shards[dest], t)
		}
		if pinT != nil {
			g.offerShard(g.shards[g.n], pinT)
		}
	}
}

// offerShard enqueues into a shard's ingress ring, draining egress while
// the ring is full so the group can never deadlock on its own output.
func (g *shardGroup) offerShard(sh *eddyShard, t *tuple.Tuple) {
	for {
		if sh.in.TryEnqueue(t) {
			return
		}
		if g.aborting.Load() || g.isDead() || sh.in.Closed() {
			tuple.Recycle(t)
			return
		}
		g.drainEgress()
		runtime.Gosched()
	}
}

// drainEgress empties every shard's delivery ring in shard order (the
// deterministic merge into the Hub seam) and returns rows moved.
func (g *shardGroup) drainEgress() int {
	total := 0
	for _, sh := range g.shards {
		for {
			n := sh.egress.DequeueBatch(g.egScratch)
			if n == 0 {
				break
			}
			total += n
			g.deliverRuns(g.egScratch[:n])
		}
	}
	return total
}

// deliverRuns hands deliveries to the executor in runs of consecutive
// same-query rows (mirrors the legacy EO's flushOut batching).
func (g *shardGroup) deliverRuns(pend []delivery) {
	for i := 0; i < len(pend); {
		id := pend[i].id
		g.rowBuf = g.rowBuf[:0]
		j := i
		for ; j < len(pend) && pend[j].id == id; j++ {
			g.rowBuf = append(g.rowBuf, pend[j].row)
			pend[j] = delivery{}
		}
		g.eo.x.deliverBatch(id, g.rowBuf)
		i = j
	}
}

// drainEgressRecycle empties delivery rings during quarantine: the
// group's queries are failing, so rows are retired, not delivered.
func (g *shardGroup) drainEgressRecycle() {
	for _, sh := range g.shards {
		for {
			n := sh.egress.DequeueBatch(g.egScratch)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				tuple.Recycle(g.egScratch[i].row)
				g.egScratch[i] = delivery{}
			}
		}
	}
}

// ----------------------------------------------------------- control

func (g *shardGroup) control(env envelope) {
	acked := false
	defer func() {
		if r := recover(); r != nil {
			if env.ack != nil && !acked {
				env.ack <- fmt.Errorf("executor: EO %d panicked in control handler: %v", g.eo.idx, r)
			}
			panic(r)
		}
	}()
	var err error
	switch env.ctl {
	case ctlAddQuery:
		err = g.addQuery(env)
	case ctlRemoveQuery:
		err = g.removeQuery(env.qid)
	case ctlLoadTable:
		// Table readers are always pinned, so loads feed the catch-all.
		_, err = g.askShard(g.shards[g.n], shardCmd{kind: ctlLoadTable, rows: env.rows})
	case ctlBarrier:
		err = g.barrier()
	case ctlStats:
		env.snap <- g.statsMerged()
	}
	if env.ack != nil {
		acked = true
		env.ack <- err
	}
}

// conflicts reports whether a shardable query's keys clash with the
// keys already in force (two queries hashing one alias by different
// columns cannot share the hash shards; the later one is pinned).
func (g *shardGroup) conflicts(part *plan.Partition) bool {
	for _, k := range part.Keys {
		if k.KeyIdx < 0 {
			continue
		}
		for _, qid := range g.order {
			rec := g.records[qid]
			if rec.pinned || rec.part == nil {
				continue
			}
			for _, ok := range rec.part.Keys {
				if ok.Stream == k.Stream && ok.Alias == k.Alias && ok.KeyIdx >= 0 && ok.KeyIdx != k.KeyIdx {
					return true
				}
			}
		}
	}
	return false
}

func (g *shardGroup) addQuery(env envelope) error {
	part := env.part
	pin := part == nil || part.Pinned || g.conflicts(part)
	var err error
	if pin {
		_, err = g.askShard(g.shards[g.n], shardCmd{kind: ctlAddQuery, query: env.query})
	} else {
		var added []int
		for i := 0; i < g.n && err == nil; i++ {
			if _, e := g.askShard(g.shards[i], shardCmd{kind: ctlAddQuery, query: env.query}); e != nil {
				err = e
			} else {
				added = append(added, i)
			}
		}
		if err != nil {
			for _, i := range added { // roll back the partial registration
				_, _ = g.askShard(g.shards[i], shardCmd{kind: ctlRemoveQuery, qid: env.query.ID})
			}
		}
	}
	if err != nil {
		return err
	}
	g.records[env.query.ID] = &shardQuery{part: part, feeds: env.feeds, pinned: pin}
	g.order = append(g.order, env.query.ID)
	g.rebuildRoute()
	return nil
}

func (g *shardGroup) removeQuery(qid int) error {
	rec := g.records[qid]
	if rec == nil {
		return nil
	}
	delete(g.records, qid)
	for i, id := range g.order {
		if id == qid {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	var err error
	if rec.pinned {
		_, err = g.askShard(g.shards[g.n], shardCmd{kind: ctlRemoveQuery, qid: qid})
	} else {
		for i := 0; i < g.n; i++ {
			if _, e := g.askShard(g.shards[i], shardCmd{kind: ctlRemoveQuery, qid: qid}); e != nil && err == nil {
				err = e
			}
		}
	}
	g.rebuildRoute()
	return err
}

// rebuildRoute recomputes the published route table from the registered
// queries, preserving each stream's frontier value. Stable: iteration
// follows registration order, and conflicting keys were pinned at add
// time, so surviving shardable queries agree on every alias's key.
func (g *shardGroup) rebuildRoute() {
	old := g.route.Load()
	type aliasAcc struct {
		keyIdx int
		toHash bool
		toPin  bool
	}
	acc := map[string]map[string]*aliasAcc{}
	var streamOrder []string
	aliasOrder := map[string][]string{}
	add := func(stream, alias string, keyIdx int, pinnedQ bool) {
		m := acc[stream]
		if m == nil {
			m = map[string]*aliasAcc{}
			acc[stream] = m
			streamOrder = append(streamOrder, stream)
		}
		a := m[alias]
		if a == nil {
			a = &aliasAcc{keyIdx: -1}
			m[alias] = a
			aliasOrder[stream] = append(aliasOrder[stream], alias)
		}
		if pinnedQ {
			a.toPin = true
			return
		}
		a.toHash = true
		if keyIdx >= 0 {
			a.keyIdx = keyIdx
		}
	}
	for _, qid := range g.order {
		rec := g.records[qid]
		if rec.pinned {
			for _, f := range rec.feeds {
				add(f.Stream, f.As, -1, true)
			}
			continue
		}
		for _, k := range rec.part.Keys {
			add(k.Stream, k.Alias, k.KeyIdx, false)
		}
	}
	rt := &routeTable{streams: map[string]*streamRoute{}}
	for _, stream := range streamOrder {
		fr := &streamFrontier{stream: stream}
		if osr := old.streams[stream]; osr != nil {
			fr.seq.Store(osr.front.seq.Load())
		}
		sr := &streamRoute{stream: stream, dominant: -1, front: fr}
		for _, alias := range aliasOrder[stream] {
			a := acc[stream][alias]
			fr.aliases = append(fr.aliases, alias)
			keyIdx := -1
			if a.toHash {
				sr.hashAny = true
				keyIdx = a.keyIdx
				if keyIdx >= 0 && sr.dominant < 0 {
					sr.dominant = keyIdx
				}
			}
			if a.toPin {
				sr.anyPin = true
			}
			sr.aliases = append(sr.aliases, aliasRoute{alias: alias, keyIdx: keyIdx, toHash: a.toHash, toPin: a.toPin})
		}
		rt.streams[stream] = sr
		rt.frontier = append(rt.frontier, fr)
	}
	g.route.Store(rt)
}

// askShard sends a command and waits for its reply, staying live: while
// the command channel is full it drains egress, and a shard death
// releases the wait with the quarantine error.
func (g *shardGroup) askShard(sh *eddyShard, c shardCmd) (shardReply, error) {
	c.reply = make(chan shardReply, 1)
	for sent := false; !sent; {
		select {
		case sh.cmd <- c:
			sent = true
		case <-g.deadCh:
			return shardReply{}, g.deadErr()
		default:
			g.drainEgress()
			runtime.Gosched()
		}
	}
	select {
	case r := <-c.reply:
		return r, r.err
	case <-g.deadCh:
		return shardReply{}, g.deadErr()
	}
}

// barrier quiesces the whole group: rounds of (drain executor ingress →
// per-shard quiesce in shard order → egress drain) until a full round
// moves nothing. Shard quiesce counts exchanged tuples, so work bouncing
// between shards keeps the barrier open until the mesh is dry.
func (g *shardGroup) barrier() error {
	eo := g.eo
	var firstErr error
	for {
		moved := 0
		for {
			n := eo.data.DequeueBatch(eo.drain)
			if n == 0 {
				break
			}
			moved += n
			g.partition(eo.drain[:n])
		}
		g.drainEgress()
		for _, sh := range g.shards {
			r, err := g.askShard(sh, shardCmd{kind: ctlBarrier})
			if err != nil {
				return err
			}
			moved += r.moved
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			g.drainEgress()
		}
		if moved == 0 && eo.data.Len() == 0 {
			break
		}
	}
	g.drainEgress()
	return firstErr
}

// statsMerged snapshots every shard through its command channel and sums
// the copies into one EO-level snapshot (plus the per-shard detail).
// Concurrent scrapes are race-free: each counter is only ever read by
// its owning shard goroutine, and only snapshots are merged.
func (g *shardGroup) statsMerged() *eoSnapshot {
	out := &eoSnapshot{}
	for _, sh := range g.shards {
		r, err := g.askShard(sh, shardCmd{kind: ctlStats})
		if err != nil || r.snap == nil {
			continue
		}
		mergeSnapshot(out, r.snap)
		out.shards = append(out.shards, shardSnapshot{
			id:         sh.id,
			catchAll:   sh.id == g.n,
			eddy:       r.snap.eddy,
			engine:     r.snap.engine,
			stats:      r.stats,
			ingressLen: sh.in.Len(),
			egressLen:  sh.egress.Len(),
		})
	}
	return out
}

// shutdown runs after the executor closes the EO's queues: quiesce so
// queued work drains (the legacy EO drains before exit too), then tear
// the shards down.
func (g *shardGroup) shutdown() {
	_ = g.barrier() // best effort; a dead shard aborts below
	for _, sh := range g.shards {
		sh.in.Close()
	}
	g.mesh.CloseAll()
	for _, sh := range g.shards {
		g.waitShard(sh)
	}
	g.drainEgress()
	g.mesh.DrainAll(tuple.Recycle)
}

func (g *shardGroup) waitShard(sh *eddyShard) {
	for {
		select {
		case <-sh.done:
			return
		default:
			g.drainEgress()
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// shardPanic runs on the panicking shard's goroutine: record the cause,
// signal the coordinator, and release queued command waiters so nothing
// hangs on a reply that will never come.
func (g *shardGroup) shardPanic(sh *eddyShard, cause any, stack []byte) {
	g.deadMu.Lock()
	if g.deadCause == nil {
		g.deadCause, g.deadStack, g.deadID = cause, stack, sh.id
	}
	g.deadMu.Unlock()
	g.deadOnce.Do(func() { close(g.deadCh) })
	for {
		select {
		case c := <-sh.cmd:
			if c.reply != nil {
				c.reply <- shardReply{err: g.deadErr()}
			}
		default:
			return
		}
	}
}

// quarantineGroup retires the whole shard group after a panic (in a
// shard or in the coordinator itself): admission stops, sibling shards
// exit cleanly (they are victims, not culprits — but they host the same
// queries, so the group fails as a unit), queued work is recycled, and
// the EO's queries fail exactly as in the single-shard quarantine path.
// Other EOs keep running.
func (g *shardGroup) quarantineGroup(cause any, stack []byte) {
	eo := g.eo
	eo.dead.Store(true)
	g.aborting.Store(true)
	g.deadOnce.Do(func() { close(g.deadCh) })
	err := fmt.Errorf("%w: EO %d: %v", ErrQuarantined, eo.idx, cause)
	fmt.Fprintf(os.Stderr, "telegraphcq: %v\n%s", err, stack)

	eo.data.Close()
	eo.ctl.Close()
	for _, sh := range g.shards {
		sh.in.Close()
	}
	g.mesh.CloseAll()
	// Wait for the surviving shards, recycling egress so a shard blocked
	// publishing results can always finish its abort check.
	for _, sh := range g.shards {
		for exited := false; !exited; {
			select {
			case <-sh.done:
				exited = true
			default:
				g.drainEgressRecycle()
				runtime.Gosched()
			}
		}
	}
	g.drainEgressRecycle()
	for i := range eo.drain {
		if eo.drain[i] != nil {
			tuple.Recycle(eo.drain[i])
			eo.drain[i] = nil
		}
	}
	for {
		t, ok := eo.data.TryDequeue()
		if !ok {
			break
		}
		tuple.Recycle(t)
	}
	for _, sh := range g.shards {
		for {
			t, ok := sh.in.TryDequeue()
			if !ok {
				break
			}
			tuple.Recycle(t)
		}
	}
	g.mesh.DrainAll(tuple.Recycle)
	for {
		env, ok := eo.ctl.TryDequeue()
		if !ok {
			break
		}
		if env.ack != nil {
			env.ack <- err
		}
		if env.snap != nil {
			close(env.snap)
		}
	}
	eo.x.failEO(eo, err)
}

// ------------------------------------------------------------- shard

// eddyShard is one shard: a goroutine owning a private CACQ engine, an
// ingress SPSC ring fed by the coordinator, the exchange rings of its
// row/column of the mesh, and an egress ring the coordinator drains.
type eddyShard struct {
	id      int
	g       *shardGroup
	engine  *cacq.Engine
	in      *fjord.SPSC[*tuple.Tuple]
	cmd     chan shardCmd
	egress  *fjord.SPSC[delivery]
	inbound []*fjord.SPSC[*tuple.Tuple]
	done    chan struct{}

	// Worker-owned scratch (never shared).
	drain   []*tuple.Tuple
	xdrain  []*tuple.Tuple
	out     []delivery
	fwd     [][]*tuple.Tuple
	dests   []destAlias
	applied map[string]int64
	stats   shardStats
}

type destAlias struct {
	dest  int
	alias string
}

func (sh *eddyShard) loop() {
	defer close(sh.done)
	idle := 0
	for {
		if sh.g.aborting.Load() {
			sh.teardown()
			return
		}
		if sh.step(&idle) {
			sh.teardown()
			return
		}
	}
}

func (sh *eddyShard) step(idle *int) (exit bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.g.shardPanic(sh, r, debug.Stack())
			exit = true
		}
	}()
	progressed := false
	select {
	case c := <-sh.cmd:
		sh.handle(c)
		progressed = true
	default:
	}
	if sh.drainExchange() > 0 {
		progressed = true
	}
	sh.syncFrontier()
	if n := sh.in.DequeueBatch(sh.drain); n > 0 {
		sh.stats.Ingress += int64(n)
		for i := 0; i < n; i++ {
			t := sh.drain[i]
			sh.drain[i] = nil
			sh.process(t)
		}
		progressed = true
	}
	_ = sh.runEngine()
	sh.flushForwards()
	if progressed {
		*idle = 0
		return false
	}
	if sh.in.Closed() && sh.in.Len() == 0 && sh.exchangeDry() {
		return true
	}
	*idle++
	if *idle > 8 {
		time.Sleep(200 * time.Microsecond)
	}
	return false
}

// exchangeDry reports whether every inbound exchange ring is closed and
// empty — the shard's signal that the group is shutting down.
func (sh *eddyShard) exchangeDry() bool {
	for _, r := range sh.inbound {
		if !r.Closed() || r.Len() != 0 {
			return false
		}
	}
	return true
}

func (sh *eddyShard) handle(c shardCmd) {
	var r shardReply
	switch c.kind {
	case ctlAddQuery:
		r.err = sh.engine.AddQuery(c.query)
	case ctlRemoveQuery:
		sh.engine.RemoveQuery(c.qid)
	case ctlLoadTable:
		for _, row := range c.rows {
			if e := sh.engine.Push(row); e != nil && r.err == nil {
				r.err = e
			}
		}
		if e := sh.runEngine(); e != nil && r.err == nil {
			r.err = e
		}
		sh.flushForwards()
	case ctlBarrier:
		// One quiesce round: drain exchange and ingress, run the engine
		// to idle, flush outbound. The coordinator loops rounds until
		// every shard reports zero movement.
		r.moved += sh.drainExchange()
		sh.syncFrontier()
		for {
			n := sh.in.DequeueBatch(sh.drain)
			if n == 0 {
				break
			}
			sh.stats.Ingress += int64(n)
			r.moved += n
			for i := 0; i < n; i++ {
				t := sh.drain[i]
				sh.drain[i] = nil
				sh.process(t)
			}
		}
		r.err = sh.runEngine()
		r.moved += sh.flushForwards()
	case ctlStats:
		r.snap = snapshotEngine(sh.engine)
		r.stats = sh.stats
	}
	if c.reply != nil {
		c.reply <- r
	}
}

// syncFrontier applies the coordinator's per-stream sequence frontier so
// this shard's eviction horizons match a single-shard engine's. The
// catch-all never needs it: every stream it has state for is delivered
// to it in full, in global order, so its own maxSeq is already exact —
// and advancing it early would evict ahead of tuples still queued on
// its ingress ring.
func (sh *eddyShard) syncFrontier() {
	if sh.id == sh.g.n {
		return
	}
	rt := sh.g.route.Load()
	for _, f := range rt.frontier {
		v := f.seq.Load()
		if v <= sh.applied[f.stream] {
			continue
		}
		sh.applied[f.stream] = v
		for _, alias := range f.aliases {
			sh.engine.AdvanceSeq(alias, v)
		}
	}
}

// drainExchange admits every tuple queued on the inbound exchange rings
// (pre-renamed by the sender; they go straight into the engine).
func (sh *eddyShard) drainExchange() int {
	total := 0
	for _, ring := range sh.inbound {
		for {
			n := ring.DequeueBatch(sh.xdrain)
			if n == 0 {
				break
			}
			sh.stats.FwdIn += int64(n)
			total += n
			for i := 0; i < n; i++ {
				_ = sh.engine.Push(sh.xdrain[i])
				sh.xdrain[i] = nil
			}
		}
	}
	return total
}

// process applies the per-alias routing of one ingress tuple: aliases
// whose key matches the arrival shard are admitted locally; aliases
// keyed differently are repartitioned through the exchange; aliases with
// pinned readers are forwarded to the catch-all.
func (sh *eddyShard) process(t *tuple.Tuple) {
	src := t.Schema.Sources[0]
	if sh.g.eo.x.opts.Chaos.PanicFor(src) {
		panic(fmt.Sprintf("chaos: injected operator panic on stream %s (EO %d shard %d)", src, sh.g.eo.idx, sh.id))
	}
	rt := sh.g.route.Load()
	sr := rt.streams[src]
	if sr == nil {
		tuple.Recycle(t)
		return
	}
	// Role split: the coordinator already fans each tuple out between
	// the hash tier and the catch-all (see partition), so a hash shard
	// serves only the shardable aliases and the catch-all only the
	// pinned ones — always locally, in coordinator order.
	sh.dests = sh.dests[:0]
	for _, ar := range sr.aliases {
		if sh.id == sh.g.n {
			if ar.toPin {
				sh.dests = append(sh.dests, destAlias{dest: sh.id, alias: ar.alias})
			}
			continue
		}
		if ar.toHash {
			d := sh.id
			if ar.keyIdx >= 0 {
				d = int(t.Values[ar.keyIdx].Hash() % uint64(sh.g.n))
			}
			sh.dests = append(sh.dests, destAlias{dest: d, alias: ar.alias})
		}
	}
	switch {
	case len(sh.dests) == 0:
		tuple.Recycle(t)
		return
	case len(sh.dests) == 1 && sh.dests[0].alias == src:
		// Common fast path: one destination, no rename — move the
		// original without cloning.
		if d := sh.dests[0].dest; d == sh.id {
			_ = sh.engine.Push(t)
		} else {
			sh.forward(d, t)
		}
		return
	}
	for _, da := range sh.dests {
		tt := t.Clone()
		if da.alias != src {
			tt.Schema = t.Schema.RenameShared(da.alias)
		}
		if da.dest == sh.id {
			_ = sh.engine.Push(tt)
		} else {
			sh.forward(da.dest, tt)
		}
	}
	tuple.Recycle(t)
}

// forward buffers one tuple for the exchange ring to dest, flushing when
// the buffer fills (quantum end and barriers flush the remainder).
func (sh *eddyShard) forward(dest int, t *tuple.Tuple) {
	sh.fwd[dest] = append(sh.fwd[dest], t)
	if len(sh.fwd[dest]) >= exchangeFlushBatch {
		sh.flushTo(dest)
	}
}

// flushForwards flushes every non-empty outbound buffer; returns tuples
// actually moved onto exchange rings.
func (sh *eddyShard) flushForwards() int {
	total := 0
	for dest := range sh.fwd {
		if len(sh.fwd[dest]) > 0 {
			total += sh.flushTo(dest)
		}
	}
	return total
}

// flushTo publishes one outbound buffer onto its exchange ring. While
// the ring is full it drains this shard's own inbound rings — the
// "helping" rule that makes a saturated mesh deadlock-free: in any wait
// cycle every waiter is also a consumer, so some ring always empties.
func (sh *eddyShard) flushTo(dest int) int {
	buf := sh.fwd[dest]
	ring := sh.g.mesh.Ring(sh.id, dest)
	sent := 0
	for sent < len(buf) {
		n := ring.TryEnqueueBatch(buf[sent:])
		if n > 0 {
			sent += n
			continue
		}
		if sh.g.aborting.Load() || ring.Closed() {
			for _, t := range buf[sent:] {
				tuple.Recycle(t)
				sh.stats.FwdDrop++
			}
			break
		}
		sh.drainExchange()
		runtime.Gosched()
	}
	sh.stats.FwdOut += int64(sent)
	for i := range buf {
		buf[i] = nil
	}
	sh.fwd[dest] = buf[:0]
	return sent
}

// runEngine gives the shard engine a quantum and publishes its buffered
// deliveries onto the egress ring.
func (sh *eddyShard) runEngine() error {
	err := sh.engine.Run()
	if len(sh.out) > 0 {
		sh.flushOut()
	}
	return err
}

func (sh *eddyShard) flushOut() {
	sent := 0
	for sent < len(sh.out) {
		n := sh.egress.TryEnqueueBatch(sh.out[sent:])
		if n > 0 {
			sh.stats.Egress += int64(n)
			sent += n
			continue
		}
		if sh.g.aborting.Load() {
			for _, d := range sh.out[sent:] {
				tuple.Recycle(d.row)
			}
			break
		}
		// Coordinator is behind; keep our inbound moving meanwhile.
		sh.drainExchange()
		runtime.Gosched()
	}
	for i := range sh.out {
		sh.out[i] = delivery{}
	}
	sh.out = sh.out[:0]
}

// teardown recycles worker-owned buffers on exit (they are empty on a
// clean shutdown; on abort they may hold in-flight tuples).
func (sh *eddyShard) teardown() {
	for i := range sh.drain {
		if sh.drain[i] != nil {
			tuple.Recycle(sh.drain[i])
			sh.drain[i] = nil
		}
	}
	for i := range sh.xdrain {
		if sh.xdrain[i] != nil {
			tuple.Recycle(sh.xdrain[i])
			sh.xdrain[i] = nil
		}
	}
	for dest := range sh.fwd {
		for _, t := range sh.fwd[dest] {
			tuple.Recycle(t)
		}
		sh.fwd[dest] = nil
	}
	for i := range sh.out {
		tuple.Recycle(sh.out[i].row)
		sh.out[i] = delivery{}
	}
	sh.out = sh.out[:0]
}
