package executor

import (
	"testing"
	"time"

	"telegraphcq/internal/tuple"
)

// ORDER BY over a stream is executed as Juggle-style prioritized
// delivery: once the reorder buffer fills, the best-ranked rows come out
// first even though the stream is unbounded.
func TestOrderByPrioritizedDelivery(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	id, sub := submit(t, x, `SELECT sym, price FROM stocks ORDER BY price DESC`)

	// Push 200 rows with rotating prices; the juggle window is 64, so
	// after it fills, high prices are released ahead of low ones.
	for i := 0; i < 200; i++ {
		pushStocks(t, x, [2]any{"X", float64(i % 100)})
	}
	rows := drain(t, x, sub)
	if len(rows) != 200-64 { // 64 still buffered in the juggle
		t.Fatalf("delivered = %d, want %d", len(rows), 200-64)
	}
	// The released prefix must be biased high: its mean should clearly
	// exceed the stream mean (49.5).
	var sum float64
	for _, r := range rows[:50] {
		sum += r.Values[1].F
	}
	if mean := sum / 50; mean < 60 {
		t.Fatalf("first-released mean = %.1f, want prioritized (> 60)", mean)
	}
	// Cancel flushes the buffered remainder.
	if err := x.Cancel(id); err != nil {
		t.Fatal(err)
	}
	flushed := 0
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, ok := sub.TryNext(); ok {
			flushed++
			continue
		}
		if flushed >= 64 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if flushed != 64 {
		t.Fatalf("flushed = %d, want 64", flushed)
	}
}

func TestOrderByAscWithLimit(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `SELECT price FROM stocks ORDER BY price ASC LIMIT 5`)
	for i := 0; i < 100; i++ {
		pushStocks(t, x, [2]any{"X", float64(100 - i)})
	}
	rows := drain(t, x, sub)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With a 64-deep reorder buffer over a descending push sequence, the
	// released rows are drawn from the low end of the buffered window.
	for _, r := range rows {
		if r.Values[0].F > 50 {
			t.Fatalf("asc priority released a high price: %v (rows %v)", r, rows)
		}
	}
}

func TestPushAtRepeatedTimestamps(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `
		SELECT count(*) FROM stocks
		for (t = ST; ; t += 2) { WindowIs(stocks, t + 1, t + 2); }`)
	// Three rows per logical day; windows of 2 days → 6 rows per window.
	for day := int64(1); day <= 6; day++ {
		for k := 0; k < 3; k++ {
			err := x.PushAt("stocks", day, []tuple.Value{
				tuple.String("A"), tuple.Float(1),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	rows := drain(t, x, sub)
	// Windows [1,2] and [3,4] closed (the [5,6] window needs day 7).
	if len(rows) != 2 {
		t.Fatalf("windows closed = %d", len(rows))
	}
	for _, r := range rows {
		if r.Values[1].I != 6 {
			t.Fatalf("window count = %v", r)
		}
	}
	// Regressing timestamps are rejected.
	if err := x.PushAt("stocks", 2, []tuple.Value{tuple.String("A"), tuple.Float(1)}); err == nil {
		t.Fatal("timestamp regression accepted")
	}
}

// Paper example 4 end-to-end: windowed self band-join via the SQL path.
func TestBandJoinEndToEnd(t *testing.T) {
	x := New(newCat(t), Options{})
	defer x.Close()
	_, sub := submit(t, x, `
		SELECT c2.sym, c2.price
		FROM stocks AS c1, stocks AS c2
		WHERE c1.sym = 'MSFT' AND c2.sym != 'MSFT' AND c2.price > c1.price
		for (t = ST; ; t++) {
			WindowIs(c1, t - 4, t);
			WindowIs(c2, t - 4, t);
		}`)
	// Day d: MSFT at 50, IBM at 50+d (beats MSFT every day).
	for day := int64(1); day <= 10; day++ {
		_ = x.PushAt("stocks", day, []tuple.Value{tuple.String("MSFT"), tuple.Float(50)})
		_ = x.PushAt("stocks", day, []tuple.Value{tuple.String("IBM"), tuple.Float(50 + float64(day))})
	}
	rows := drain(t, x, sub)
	if len(rows) == 0 {
		t.Fatal("band join delivered nothing")
	}
	for _, r := range rows {
		if r.Values[0].S != "IBM" || r.Values[1].F <= 50 {
			t.Fatalf("bad band-join row: %v", r)
		}
	}
	// Window width 5 bounds the join state: each IBM row joins at most
	// the 5 most recent MSFT rows, so the total is bounded by 10 × 5.
	if len(rows) > 50 {
		t.Fatalf("rows = %d exceeds window bound", len(rows))
	}
}
