// Introspection: the executor reports its internal state through two
// channels. Pull-based telemetry collectors feed the /metrics and
// /statz endpoints; a periodic sampler feeds the same observations into
// synthetic *system streams* (tcq_operators, tcq_queues, tcq_queries)
// registered in the catalog, so users can point ordinary continuous
// queries at the engine's own state — the introspection that drives the
// paper's adaptivity, made queryable with the paper's own query model.
//
// The engine's counters are plain fields owned by each Execution
// Object; scrapers never touch them. Instead a scrape sends a ctlStats
// envelope down the EO's control channel (the same mechanism Barrier
// uses) and the EO assembles an eoSnapshot on its own thread. The hot
// path therefore pays nothing — no atomics, no locks — for telemetry.
package executor

import (
	"strconv"
	"time"

	"telegraphcq/internal/cacq"
	"telegraphcq/internal/eddy"
	"telegraphcq/internal/stem"
	"telegraphcq/internal/telemetry"
	"telegraphcq/internal/tuple"
)

// System stream names.
const (
	StreamOperators   = "tcq_operators"
	StreamQueues      = "tcq_queues"
	StreamQueries     = "tcq_queries"
	StreamSources     = "tcq_sources"
	StreamSubscribers = "tcq_subscribers"
	StreamShards      = "tcq_shards"
	StreamCluster     = "tcq_cluster"
)

// SourceStat is one wrapper-side source's health as reported into the
// tcq_sources system stream and /metrics: the supervision state machine
// (up / degraded / down), its restart and failure history, and rows
// delivered. The ingress layer supplies these via SetSourceStats; the
// executor deliberately knows nothing about wrappers beyond this shape.
type SourceStat struct {
	Name     string
	State    string // "up", "degraded", "down"
	Restarts int64  // reconnect attempts that succeeded
	Failures int64  // run attempts that ended in error
	Rows     int64  // rows delivered across all attempts
	LastErr  string // most recent failure, "" when none
}

// SetSourceStats installs the callback the sampler and the metrics
// collector use to observe wrapper-side source health (nil clears it).
func (x *Executor) SetSourceStats(fn func() []SourceStat) {
	if fn == nil {
		x.sourceStats.Store(nil)
		return
	}
	x.sourceStats.Store(&fn)
}

func (x *Executor) sourceStatsSnapshot() []SourceStat {
	if fn := x.sourceStats.Load(); fn != nil {
		return (*fn)()
	}
	return nil
}

// ClusterStat is one row of the tcq_cluster system stream: networked
// Flux health as observed by a coordinator (internal/cluster). Node
// rows carry the per-worker fields (State, Primaries, Secondaries,
// Processed); a summary row with Node == "coordinator" carries the
// coordinator-wide delivery and failover counters. Like SourceStat,
// the producer installs a callback — the executor knows nothing about
// the cluster beyond this shape, so the dependency points outward.
type ClusterStat struct {
	Node        string
	Addr        string
	State       string // "up", "disconnected", "dead"; "" on the summary row
	Primaries   int64  // buckets this node is primary for
	Secondaries int64  // buckets this node is secondary for
	Processed   int64  // entries the node acked

	// Coordinator-wide counters (summary row only).
	Routed      int64
	Acked       int64
	Retransmits int64
	Promotions  int64
	Moves       int64
	Repairs     int64
	BucketsLost int64
	DetectMs    int64 // last failure-detection latency
}

// SetClusterStats installs the callback the sampler and the metrics
// collector use to observe networked-Flux cluster health (nil clears
// it). Mirrors SetSourceStats.
func (x *Executor) SetClusterStats(fn func() []ClusterStat) {
	if fn == nil {
		x.clusterStats.Store(nil)
		return
	}
	x.clusterStats.Store(&fn)
}

func (x *Executor) clusterStatsSnapshot() []ClusterStat {
	if fn := x.clusterStats.Load(); fn != nil {
		return (*fn)()
	}
	return nil
}

// eoSnapshot is one Execution Object's state as observed by its own
// thread in response to a ctlStats envelope. Everything inside is a
// copy; callers may read it freely while the EO keeps running.
type eoSnapshot struct {
	eddy    eddy.Stats
	modules []eddy.ModuleStats
	engine  cacq.EngineStats
	filters []filterSnapshot
	stems   []stemSnapshot
	queries []cacq.QueryInfo
	// shards holds the per-shard detail when the EO is a shard group
	// (empty for a classic single-engine EO); the top-level fields above
	// are then the sum over shards.
	shards []shardSnapshot
}

// shardSnapshot is one eddy shard's state within a shard group's merged
// snapshot.
type shardSnapshot struct {
	id         int
	catchAll   bool
	eddy       eddy.Stats
	engine     cacq.EngineStats
	stats      shardStats
	ingressLen int
	egressLen  int
}

type filterSnapshot struct {
	name    string
	queries int
	factors int
}

type stemSnapshot struct {
	name  string
	size  int
	stats stem.Stats
}

// snapshot runs on the EO goroutine (ctlStats handler).
func (eo *execObject) snapshot() *eoSnapshot { return snapshotEngine(eo.engine) }

// snapshotEngine copies one CACQ engine's observable state; it must run
// on the goroutine that owns the engine (an EO or an eddy shard).
func snapshotEngine(e *cacq.Engine) *eoSnapshot {
	ed := e.Eddy()
	s := &eoSnapshot{
		eddy:    ed.Stats(),
		modules: ed.ModuleStatsSnapshot(),
		engine:  e.Stats(),
	}
	in := e.Introspect()
	s.queries = in.Queries
	for _, gf := range in.Filters {
		s.filters = append(s.filters, filterSnapshot{
			name: gf.Name(), queries: gf.QueryCount(), factors: gf.FactorCount()})
	}
	for _, sm := range in.Stems {
		s.stems = append(s.stems, stemSnapshot{
			name: sm.Name(), size: sm.SteM().Size(), stats: sm.SteM().Stats()})
	}
	return s
}

// mergeSnapshot folds one shard's snapshot into a group-level one:
// counters sum; shared-state views merge by module name (a shardable
// query's filters and SteMs exist on every hash shard — SteM sizes and
// stats sum, grouped-filter registration counts agree so the max is the
// true value); per-query delivery counts sum by query id.
func mergeSnapshot(dst, src *eoSnapshot) {
	dst.eddy = dst.eddy.Add(src.eddy)
	dst.modules = eddy.MergeModuleStats(dst.modules, src.modules)
	dst.engine.Pushed += src.engine.Pushed
	dst.engine.Delivered += src.engine.Delivered
	for _, gf := range src.filters {
		found := false
		for i := range dst.filters {
			if dst.filters[i].name == gf.name {
				if gf.queries > dst.filters[i].queries {
					dst.filters[i].queries = gf.queries
				}
				if gf.factors > dst.filters[i].factors {
					dst.filters[i].factors = gf.factors
				}
				found = true
				break
			}
		}
		if !found {
			dst.filters = append(dst.filters, gf)
		}
	}
	for _, sm := range src.stems {
		found := false
		for i := range dst.stems {
			if dst.stems[i].name == sm.name {
				dst.stems[i].size += sm.size
				dst.stems[i].stats.Builds += sm.stats.Builds
				dst.stems[i].stats.Probes += sm.stats.Probes
				dst.stems[i].stats.Matches += sm.stats.Matches
				dst.stems[i].stats.Evicted += sm.stats.Evicted
				dst.stems[i].stats.IndexProbes += sm.stats.IndexProbes
				dst.stems[i].stats.ScanProbes += sm.stats.ScanProbes
				found = true
				break
			}
		}
		if !found {
			dst.stems = append(dst.stems, sm)
		}
	}
	for _, qi := range src.queries {
		found := false
		for i := range dst.queries {
			if dst.queries[i].ID == qi.ID {
				dst.queries[i].Delivered += qi.Delivered
				found = true
				break
			}
		}
		if !found {
			dst.queries = append(dst.queries, qi)
		}
	}
}

// statsSnapshot round-trips a ctlStats envelope through the EO's
// control channel. Returns nil if the EO is shutting down.
func (eo *execObject) statsSnapshot() *eoSnapshot {
	ch := make(chan *eoSnapshot, 1)
	if err := eo.ctl.Enqueue(envelope{ctl: ctlStats, snap: ch}); err != nil {
		return nil
	}
	select {
	case s := <-ch:
		return s
	case <-eo.done:
		// The EO exited between enqueue and dispatch; drain if the reply
		// raced ahead of done.
		select {
		case s := <-ch:
			return s
		default:
			return nil
		}
	}
}

// registerSystemStreams creates the introspection streams in the
// catalog (best effort: a shared catalog may already have them).
func (x *Executor) registerSystemStreams() {
	col := func(name string, k tuple.Kind) tuple.Column { return tuple.Column{Name: name, Kind: k} }
	streams := []struct {
		name string
		cols []tuple.Column
	}{
		{StreamOperators, []tuple.Column{
			col("eo", tuple.KindInt), col("module", tuple.KindString),
			col("routed", tuple.KindInt), col("passed", tuple.KindInt),
			col("dropped", tuple.KindInt), col("consumed", tuple.KindInt),
			col("bounced", tuple.KindInt), col("work_ns", tuple.KindInt),
			col("selectivity", tuple.KindFloat), col("cost_ns", tuple.KindFloat),
		}},
		{StreamQueues, []tuple.Column{
			col("eo", tuple.KindInt), col("queue", tuple.KindString),
			col("depth", tuple.KindInt), col("cap", tuple.KindInt),
			col("enqueued", tuple.KindInt), col("dequeued", tuple.KindInt),
			col("enq_stalls", tuple.KindInt), col("deq_empty", tuple.KindInt),
		}},
		{StreamQueries, []tuple.Column{
			col("query", tuple.KindInt), col("delivered", tuple.KindInt),
			col("pending", tuple.KindInt), col("dropped", tuple.KindInt),
			col("state", tuple.KindString),
		}},
		{StreamSources, []tuple.Column{
			col("source", tuple.KindString), col("state", tuple.KindString),
			col("restarts", tuple.KindInt), col("failures", tuple.KindInt),
			col("rows", tuple.KindInt), col("last_error", tuple.KindString),
		}},
		// One row per cluster node plus a "coordinator" summary row with
		// the failover counters (networked Flux, internal/cluster).
		{StreamCluster, []tuple.Column{
			col("node", tuple.KindString), col("addr", tuple.KindString),
			col("state", tuple.KindString),
			col("primaries", tuple.KindInt), col("secondaries", tuple.KindInt),
			col("processed", tuple.KindInt),
			col("routed", tuple.KindInt), col("acked", tuple.KindInt),
			col("retransmits", tuple.KindInt), col("promotions", tuple.KindInt),
			col("moves", tuple.KindInt), col("repairs", tuple.KindInt),
			col("lost", tuple.KindInt), col("detect_ms", tuple.KindInt),
		}},
		// One row per eddy shard of each sharded EO (empty for classic
		// single-engine EOs).
		{StreamShards, []tuple.Column{
			col("eo", tuple.KindInt), col("shard", tuple.KindInt),
			col("catch_all", tuple.KindInt),
			col("ingress", tuple.KindInt), col("fwd_out", tuple.KindInt),
			col("fwd_in", tuple.KindInt), col("fwd_dropped", tuple.KindInt),
			col("egress", tuple.KindInt),
			col("admitted", tuple.KindInt), col("outputs", tuple.KindInt),
			col("ingress_depth", tuple.KindInt), col("egress_depth", tuple.KindInt),
		}},
		// One aggregate row per fan-out query (not per subscriber — at
		// 100k subscribers, per-subscriber rows would be a cardinality
		// bomb; per-subscriber detail lives on the Subscriber itself).
		{StreamSubscribers, []tuple.Column{
			col("query", tuple.KindInt), col("subs", tuple.KindInt),
			col("stages", tuple.KindInt), col("frames", tuple.KindInt),
			col("rows", tuple.KindInt), col("offered", tuple.KindInt),
			col("shed", tuple.KindInt), col("consumed", tuple.KindInt),
			col("dedup", tuple.KindInt), col("replayed", tuple.KindInt),
			col("pending", tuple.KindInt), col("live_encodes", tuple.KindInt),
			col("replay_encodes", tuple.KindInt),
		}},
	}
	for _, s := range streams {
		_, _ = x.cat.CreateSystemStream(s.name, s.cols)
	}
}

// startSampler runs SampleSystemStreams on a fixed period until Close.
func (x *Executor) startSampler(interval time.Duration) {
	x.samplerStop = make(chan struct{})
	x.samplerDone = make(chan struct{})
	stop, done := x.samplerStop, x.samplerDone
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				x.SampleSystemStreams()
			}
		}
	}()
}

// SampleSystemStreams pushes one batch of introspection rows into the
// system streams. Cheap when nothing subscribes: Push is a no-op for
// streams no EO feeds on, so an idle system pays only the snapshot.
func (x *Executor) SampleSystemStreams() {
	x.mu.Lock()
	eos := append([]*execObject(nil), x.eos...)
	x.mu.Unlock()

	for _, eo := range eos {
		s := eo.statsSnapshot()
		if s == nil {
			continue
		}
		eoID := int64(eo.idx)
		for _, ms := range s.modules {
			_, _ = x.Push(StreamOperators, []tuple.Value{
				tuple.Int(eoID), tuple.String(ms.Name),
				tuple.Int(ms.Routed), tuple.Int(ms.Passed),
				tuple.Int(ms.Dropped), tuple.Int(ms.Consumed),
				tuple.Int(ms.Bounced), tuple.Int(ms.WorkNs),
				tuple.Float(ms.Selectivity()), tuple.Float(ms.CostNs()),
			})
		}
		// One row per ingress edge. Data counters advance per tuple even
		// when the edge moves batches, so these rows read the same
		// whether or not producers vectorize.
		qs := eo.data.Stats()
		_, _ = x.Push(StreamQueues, []tuple.Value{
			tuple.Int(eoID), tuple.String("ingress"),
			tuple.Int(int64(eo.data.Len())), tuple.Int(int64(eo.data.Cap())),
			tuple.Int(qs.Enqueued), tuple.Int(qs.Dequeued),
			tuple.Int(qs.EnqueueFails), tuple.Int(qs.DequeueEmpty),
		})
		cs := eo.ctl.Stats()
		_, _ = x.Push(StreamQueues, []tuple.Value{
			tuple.Int(eoID), tuple.String("control"),
			tuple.Int(int64(eo.ctl.Len())), tuple.Int(int64(eo.ctl.Cap())),
			tuple.Int(cs.Enqueued), tuple.Int(cs.Dequeued),
			tuple.Int(cs.EnqueueFails), tuple.Int(cs.DequeueEmpty),
		})
		for _, qi := range s.queries {
			var pending, dropped int64
			// The hub only knows externally subscribed queries; internal
			// ones report zero backlog.
			for _, sub := range x.hub.Subscriptions() {
				if sub.ID == qi.ID {
					pending, dropped = int64(sub.Len()), sub.Dropped()
					break
				}
			}
			_, _ = x.Push(StreamQueries, []tuple.Value{
				tuple.Int(int64(qi.ID)), tuple.Int(qi.Delivered),
				tuple.Int(pending), tuple.Int(dropped),
				tuple.String("running"),
			})
		}
		for _, sh := range s.shards {
			catchAll := int64(0)
			if sh.catchAll {
				catchAll = 1
			}
			_, _ = x.Push(StreamShards, []tuple.Value{
				tuple.Int(eoID), tuple.Int(int64(sh.id)), tuple.Int(catchAll),
				tuple.Int(sh.stats.Ingress), tuple.Int(sh.stats.FwdOut),
				tuple.Int(sh.stats.FwdIn), tuple.Int(sh.stats.FwdDrop),
				tuple.Int(sh.stats.Egress),
				tuple.Int(sh.eddy.Admitted), tuple.Int(sh.eddy.Outputs),
				tuple.Int(int64(sh.ingressLen)), tuple.Int(int64(sh.egressLen)),
			})
		}
	}

	// Quarantined queries no longer appear in any engine snapshot (their
	// EO is gone); report them from the executor's query table so the
	// failure is observable through the same stream.
	x.mu.Lock()
	var errored []int
	for id, rq := range x.queries {
		if rq.err != nil {
			errored = append(errored, id)
		}
	}
	x.mu.Unlock()
	for _, id := range errored {
		_, _ = x.Push(StreamQueries, []tuple.Value{
			tuple.Int(int64(id)), tuple.Int(0), tuple.Int(0), tuple.Int(0),
			tuple.String("errored"),
		})
	}

	// Wrapper-side source health (supervision state machine).
	for _, st := range x.sourceStatsSnapshot() {
		_, _ = x.Push(StreamSources, []tuple.Value{
			tuple.String(st.Name), tuple.String(st.State),
			tuple.Int(st.Restarts), tuple.Int(st.Failures),
			tuple.Int(st.Rows), tuple.String(st.LastErr),
		})
	}

	// Networked-Flux cluster health (coordinator-installed callback).
	for _, st := range x.clusterStatsSnapshot() {
		_, _ = x.Push(StreamCluster, []tuple.Value{
			tuple.String(st.Node), tuple.String(st.Addr),
			tuple.String(st.State),
			tuple.Int(st.Primaries), tuple.Int(st.Secondaries),
			tuple.Int(st.Processed),
			tuple.Int(st.Routed), tuple.Int(st.Acked),
			tuple.Int(st.Retransmits), tuple.Int(st.Promotions),
			tuple.Int(st.Moves), tuple.Int(st.Repairs),
			tuple.Int(st.BucketsLost), tuple.Int(st.DetectMs),
		})
	}

	// Fan-out delivery (one aggregate row per query's subscriber tree).
	for _, tr := range x.FanoutTrees() {
		st := tr.Stats()
		_, _ = x.Push(StreamSubscribers, []tuple.Value{
			tuple.Int(int64(st.Query)), tuple.Int(st.Subs),
			tuple.Int(st.Stages), tuple.Int(st.Published),
			tuple.Int(st.PublishedRows), tuple.Int(st.Offered),
			tuple.Int(st.Shed), tuple.Int(st.Consumed),
			tuple.Int(st.Dedup), tuple.Int(st.Replayed),
			tuple.Int(st.Pending), tuple.Int(st.LiveEncodes),
			tuple.Int(st.ReplayEncodes),
		})
	}
}

// registerCollectors wires the pull-based metrics: every scrape asks
// each EO for a snapshot over its control channel and emits one sample
// per counter. The hot paths pay nothing for this — all cost is at
// scrape time.
func (x *Executor) registerCollectors() {
	x.metrics.Register(func(emit telemetry.Emit) {
		x.mu.Lock()
		eos := append([]*execObject(nil), x.eos...)
		nq := len(x.queries)
		x.mu.Unlock()

		gauge := func(name, help string, v float64, labels ...telemetry.Label) {
			emit(telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindGauge, Labels: labels, Value: v})
		}
		counter := func(name, help string, v int64, labels ...telemetry.Label) {
			emit(telemetry.Sample{Name: name, Help: help, Kind: telemetry.KindCounter, Labels: labels, Value: float64(v)})
		}

		gauge("tcq_eos", "execution objects running", float64(len(eos)))
		gauge("tcq_queries_active", "standing continuous queries", float64(nq))

		x.mu.Lock()
		quarantines := x.quarantines
		x.mu.Unlock()
		counter("tcq_eo_quarantined_total", "EOs retired after an operator panic", quarantines)

		// Per-stream QoS shed accounting (overflow policy outcomes).
		x.qstats.Range(func(k, v any) bool {
			qs := v.(*streamQoS)
			lS := telemetry.L("stream", k.(string))
			counter("tcq_stream_shed_total", "tuples lost at EO ingress under the stream's overflow policy", qs.shed.Load(), lS)
			counter("tcq_stream_block_timeouts_total", "block-policy waits that expired", qs.blockTimeouts.Load(), lS)
			return true
		})

		// Wrapper-side source health (supervision state machine).
		for _, st := range x.sourceStatsSnapshot() {
			lSrc := telemetry.L("source", st.Name)
			up := 0.0
			switch st.State {
			case "up":
				up = 1
			case "degraded":
				up = 0.5
			}
			gauge("tcq_source_up", "source health (1 up, 0.5 degraded, 0 down)", up, lSrc)
			counter("tcq_source_restarts_total", "successful source reconnects", st.Restarts, lSrc)
			counter("tcq_source_failures_total", "source run attempts that failed", st.Failures, lSrc)
			counter("tcq_source_rows_total", "rows delivered by the source", st.Rows, lSrc)
		}

		// Networked-Flux cluster health (coordinator-installed callback):
		// per-node gauges plus the coordinator summary row's counters.
		for _, st := range x.clusterStatsSnapshot() {
			if st.Node == "coordinator" {
				counter("tcq_cluster_routed_total", "entries routed to the cluster", st.Routed)
				counter("tcq_cluster_acked_total", "entries acknowledged by primaries", st.Acked)
				counter("tcq_cluster_retransmits_total", "entries re-sent after reconnect or promotion", st.Retransmits)
				counter("tcq_cluster_promotions_total", "secondaries promoted after a primary death", st.Promotions)
				counter("tcq_cluster_moves_total", "online bucket handoffs", st.Moves)
				counter("tcq_cluster_repairs_total", "replication repairs after failover", st.Repairs)
				counter("tcq_cluster_buckets_lost_total", "buckets restarted empty (no replica survived)", st.BucketsLost)
				gauge("tcq_cluster_detect_ms", "last failure-detection latency", float64(st.DetectMs))
				continue
			}
			lN := telemetry.L("node", st.Node)
			up := 0.0
			switch st.State {
			case "up":
				up = 1
			case "disconnected":
				up = 0.5
			}
			gauge("tcq_cluster_node_up", "cluster node health (1 up, 0.5 disconnected, 0 dead)", up, lN)
			gauge("tcq_cluster_node_primaries", "buckets the node is primary for", float64(st.Primaries), lN)
			gauge("tcq_cluster_node_secondaries", "buckets the node is secondary for", float64(st.Secondaries), lN)
			counter("tcq_cluster_node_processed_total", "entries the node acked", st.Processed, lN)
		}

		for _, eo := range eos {
			lEO := telemetry.L("eo", strconv.Itoa(eo.idx))

			// Ingress Fjord queues (atomic counters on the queues
			// themselves; no EO round-trip needed). Counters advance per
			// tuple, not per batch, so vectorized and scalar producers
			// report identically.
			qs := eo.data.Stats()
			gauge("tcq_eo_queue_depth", "EO ingress data queue occupancy", float64(eo.data.Len()), lEO)
			gauge("tcq_eo_queue_cap", "EO ingress data queue capacity", float64(eo.data.Cap()), lEO)
			counter("tcq_eo_enqueued_total", "tuples accepted by the EO data queue", qs.Enqueued, lEO)
			counter("tcq_eo_dequeued_total", "tuples drained from the EO data queue", qs.Dequeued, lEO)
			counter("tcq_eo_enqueue_stalls_total", "push-side stalls (queue full)", qs.EnqueueFails, lEO)
			counter("tcq_eo_dequeue_empty_total", "pull-side stalls (queue empty)", qs.DequeueEmpty, lEO)
			counter("tcq_eo_shed_total", "tuples shed at EO ingress", eo.shed.Load(), lEO)
			cs := eo.ctl.Stats()
			gauge("tcq_eo_ctl_queue_depth", "EO control queue occupancy", float64(eo.ctl.Len()), lEO)
			counter("tcq_eo_ctl_enqueued_total", "control envelopes accepted", cs.Enqueued, lEO)
			counter("tcq_eo_ctl_dequeued_total", "control envelopes handled", cs.Dequeued, lEO)

			s := eo.statsSnapshot()
			if s == nil {
				continue
			}

			// Eddy totals.
			counter("tcq_eddy_admitted_total", "tuples admitted into routing", s.eddy.Admitted, lEO)
			counter("tcq_eddy_routed_total", "tuple-to-module routing decisions", s.eddy.Routed, lEO)
			counter("tcq_eddy_choose_total", "routing policy invocations", s.eddy.ChooseCalls, lEO)
			counter("tcq_eddy_outputs_total", "tuples completing all modules", s.eddy.Outputs, lEO)
			counter("tcq_eddy_dropped_total", "tuples dropped during routing", s.eddy.Dropped, lEO)

			// Per-module routing observations (the policy's raw material).
			for _, ms := range s.modules {
				lMod := telemetry.L("module", ms.Name)
				counter("tcq_module_routed_total", "tuples routed to the module", ms.Routed, lEO, lMod)
				counter("tcq_module_passed_total", "tuples the module passed", ms.Passed, lEO, lMod)
				counter("tcq_module_dropped_total", "tuples the module dropped", ms.Dropped, lEO, lMod)
				counter("tcq_module_consumed_total", "tuples the module consumed", ms.Consumed, lEO, lMod)
				counter("tcq_module_bounced_total", "tuples the module bounced", ms.Bounced, lEO, lMod)
				counter("tcq_module_work_ns_total", "cumulative module processing time", ms.WorkNs, lEO, lMod)
				gauge("tcq_module_selectivity", "estimated fraction of routed tuples surviving", ms.Selectivity(), lEO, lMod)
				gauge("tcq_module_cost_ns", "estimated processing nanoseconds per routed tuple", ms.CostNs(), lEO, lMod)
			}

			// Engine totals.
			counter("tcq_engine_pushed_total", "tuples pushed into the CACQ engine", s.engine.Pushed, lEO)
			counter("tcq_engine_delivered_total", "result rows delivered by the engine", s.engine.Delivered, lEO)

			// Multi-eddy shard detail (sharded EOs only).
			gauge("tcq_eo_shards", "hash shards of the EO (1 = classic single engine)", float64(eo.shardCount()), lEO)
			for _, sh := range s.shards {
				lSh := telemetry.L("shard", strconv.Itoa(sh.id))
				role := "hash"
				if sh.catchAll {
					role = "catchall"
				}
				lRole := telemetry.L("role", role)
				counter("tcq_shard_ingress_total", "tuples partitioned into the shard", sh.stats.Ingress, lEO, lSh, lRole)
				counter("tcq_shard_fwd_out_total", "tuples repartitioned to sibling shards", sh.stats.FwdOut, lEO, lSh, lRole)
				counter("tcq_shard_fwd_in_total", "tuples received over the exchange", sh.stats.FwdIn, lEO, lSh, lRole)
				counter("tcq_shard_fwd_dropped_total", "exchange forwards dropped at shutdown", sh.stats.FwdDrop, lEO, lSh, lRole)
				counter("tcq_shard_egress_total", "result rows merged from the shard", sh.stats.Egress, lEO, lSh, lRole)
				counter("tcq_shard_admitted_total", "tuples admitted into the shard's eddy", sh.eddy.Admitted, lEO, lSh, lRole)
				counter("tcq_shard_outputs_total", "tuples completing the shard's modules", sh.eddy.Outputs, lEO, lSh, lRole)
				gauge("tcq_shard_ingress_depth", "shard ingress ring occupancy", float64(sh.ingressLen), lEO, lSh, lRole)
				gauge("tcq_shard_egress_depth", "shard egress ring occupancy", float64(sh.egressLen), lEO, lSh, lRole)
			}

			// Shared state: grouped filters and SteMs.
			for _, gf := range s.filters {
				lF := telemetry.L("module", gf.name)
				gauge("tcq_gfilter_queries", "queries sharing the grouped filter", float64(gf.queries), lEO, lF)
				gauge("tcq_gfilter_factors", "boolean factors indexed by the grouped filter", float64(gf.factors), lEO, lF)
			}
			for _, sm := range s.stems {
				lS := telemetry.L("module", sm.name)
				gauge("tcq_stem_size", "tuples held in the SteM", float64(sm.size), lEO, lS)
				counter("tcq_stem_builds_total", "tuples built into the SteM", sm.stats.Builds, lEO, lS)
				counter("tcq_stem_probes_total", "probe operations against the SteM", sm.stats.Probes, lEO, lS)
				counter("tcq_stem_matches_total", "join matches produced by probes", sm.stats.Matches, lEO, lS)
				counter("tcq_stem_evicted_total", "tuples evicted by window movement", sm.stats.Evicted, lEO, lS)
				counter("tcq_stem_index_probes_total", "probes answered by the hash index", sm.stats.IndexProbes, lEO, lS)
				counter("tcq_stem_scan_probes_total", "probes requiring a full scan", sm.stats.ScanProbes, lEO, lS)
			}
			for _, qi := range s.queries {
				counter("tcq_query_delivered_total", "rows delivered to the query",
					qi.Delivered, telemetry.L("query", strconv.Itoa(qi.ID)))
			}
		}

		// Result-side Fjord queues (per external subscriber).
		for _, sub := range x.hub.Subscriptions() {
			lQ := telemetry.L("query", strconv.Itoa(sub.ID))
			gauge("tcq_result_queue_depth", "rows queued for the client", float64(sub.Len()), lQ)
			counter("tcq_result_dropped_total", "result rows shed (slow client)", sub.Dropped(), lQ)
		}

		// Fan-out delivery: per-query aggregates over the subscriber tree
		// (per-subscriber series would explode label cardinality at scale).
		for _, tr := range x.FanoutTrees() {
			st := tr.Stats()
			lQ := telemetry.L("query", strconv.Itoa(st.Query))
			gauge("tcq_subscriber_count", "live fan-out subscribers", float64(st.Subs), lQ)
			gauge("tcq_fanout_stages", "relay stages in the fan-out tree", float64(st.Stages), lQ)
			gauge("tcq_subscriber_pending", "frames buffered across subscriber rings", float64(st.Pending), lQ)
			counter("tcq_fanout_frames_total", "encoded frames published to the tree", st.Published, lQ)
			counter("tcq_fanout_rows_total", "result rows covered by published frames", st.PublishedRows, lQ)
			counter("tcq_fanout_encodes_total", "hot-path batch serializations (encode-once)", st.LiveEncodes, lQ)
			counter("tcq_fanout_replay_encodes_total", "cohort catch-up serializations", st.ReplayEncodes, lQ)
			counter("tcq_subscriber_offered_total", "frame offers across subscribers", st.Offered, lQ)
			counter("tcq_subscriber_shed_total", "frames lost to subscriber overflow policies", st.Shed, lQ)
			counter("tcq_subscriber_block_timeouts_total", "subscriber block-policy waits that expired", st.BlockTimeouts, lQ)
			counter("tcq_subscriber_consumed_total", "frames consumed by subscribers", st.Consumed, lQ)
			counter("tcq_subscriber_dedup_total", "frames skipped as replay duplicates", st.Dedup, lQ)
			counter("tcq_subscriber_replayed_total", "catch-up frames served from the spool", st.Replayed, lQ)
		}
	})
}
