package executor

import (
	"testing"
	"time"
)

// waitFor polls cond with exponential backoff until it holds, failing
// the test if it still does not after timeout. Tests that need an
// "eventually" should use this instead of racing a fixed wall-clock
// deadline against the scheduler: the budget here is a generous hang
// detector, not a performance bound, so a loaded CI box (or -race)
// slows the test down without flaking it.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	sleep := 50 * time.Microsecond
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(sleep)
		if sleep < 5*time.Millisecond {
			sleep *= 2
		}
	}
}
