package fjord

import (
	"testing"
)

func TestMeshTopology(t *testing.T) {
	m := NewMesh[int](3, 8)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			r := m.Ring(from, to)
			if from == to && r != nil {
				t.Fatalf("diagonal ring (%d,%d) not nil", from, to)
			}
			if from != to && r == nil {
				t.Fatalf("ring (%d,%d) is nil", from, to)
			}
		}
	}
	// Inbound order is by producer index — the deterministic drain order.
	in := m.Inbound(1, nil)
	if len(in) != 2 {
		t.Fatalf("inbound count = %d", len(in))
	}
	if in[0] != m.Ring(0, 1) || in[1] != m.Ring(2, 1) {
		t.Fatal("inbound rings out of producer order")
	}
}

func TestMeshMovesBatches(t *testing.T) {
	m := NewMesh[int](2, 16)
	out := m.Ring(0, 1)
	if n := out.TryEnqueueBatch([]int{1, 2, 3}); n != 3 {
		t.Fatalf("enqueued %d", n)
	}
	buf := make([]int, 8)
	if n := m.Inbound(1, nil)[0].DequeueBatch(buf); n != 3 || buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("dequeued %d: %v", n, buf[:n])
	}
	m.CloseAll()
	got := 0
	m.DrainAll(func(int) { got++ })
	if got != 0 {
		t.Fatalf("drained %d from empty mesh", got)
	}
}

func TestMeshDrainAll(t *testing.T) {
	m := NewMesh[int](3, 8)
	m.Ring(0, 1).TryEnqueue(1)
	m.Ring(2, 0).TryEnqueue(2)
	m.Ring(1, 2).TryEnqueue(3)
	m.CloseAll()
	sum := 0
	m.DrainAll(func(v int) { sum += v })
	if sum != 6 {
		t.Fatalf("drained sum = %d", sum)
	}
}

// TestExchangeEnqueueZeroAlloc pins the exchange hot path: moving a
// batch across a mesh ring must not allocate (the repartitioning cost is
// the clone, paid by the sender's tuple pool, never the ring).
func TestExchangeEnqueueZeroAlloc(t *testing.T) {
	m := NewMesh[*int](2, 256)
	ring := m.Ring(0, 1)
	vals := make([]*int, 64)
	for i := range vals {
		v := i
		vals[i] = &v
	}
	sink := make([]*int, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		if n := ring.TryEnqueueBatch(vals); n != len(vals) {
			t.Fatalf("enqueued %d", n)
		}
		if n := ring.DequeueBatch(sink); n != len(vals) {
			t.Fatalf("dequeued %d", n)
		}
	})
	if allocs != 0 {
		t.Fatalf("exchange enqueue allocates: %.1f allocs/op", allocs)
	}
}
