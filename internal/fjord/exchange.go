package fjord

// Mesh is the all-pairs exchange fabric between N dataflow shards: one
// SPSC ring per ordered (producer, consumer) pair. Each ring has exactly
// one producer (the source shard) and one consumer (the destination
// shard), so the lock-free single-producer/single-consumer discipline
// holds across the whole matrix without any cross-shard locks. The
// executor's repartitioning exchange operator moves tuples through it
// when a join's key does not match the ingress partitioning.
type Mesh[T any] struct {
	n     int
	rings []*SPSC[T] // row-major: rings[from*n+to]; diagonal entries nil
}

// NewMesh builds an n×n mesh whose rings hold capacity elements each.
// Diagonal (self) edges are not materialized: a shard never exchanges
// with itself.
func NewMesh[T any](n, capacity int) *Mesh[T] {
	m := &Mesh[T]{n: n, rings: make([]*SPSC[T], n*n)}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			m.rings[from*n+to] = NewSPSC[T](capacity)
		}
	}
	return m
}

// N returns the number of shards the mesh connects.
func (m *Mesh[T]) N() int { return m.n }

// Ring returns the ring carrying elements from shard `from` to shard
// `to` (nil when from == to).
func (m *Mesh[T]) Ring(from, to int) *SPSC[T] {
	return m.rings[from*m.n+to]
}

// Inbound appends every ring delivering into shard `to` onto dst and
// returns it, ordered by producer index — the deterministic drain order
// the exchange consumer uses.
func (m *Mesh[T]) Inbound(to int, dst []*SPSC[T]) []*SPSC[T] {
	for from := 0; from < m.n; from++ {
		if r := m.Ring(from, to); r != nil {
			dst = append(dst, r)
		}
	}
	return dst
}

// CloseAll closes every ring: producers fail fast, consumers drain what
// remains. Used at shard-group teardown and quarantine.
func (m *Mesh[T]) CloseAll() {
	for _, r := range m.rings {
		if r != nil {
			r.Close()
		}
	}
}

// DrainAll dequeues every element left anywhere in the mesh into fn
// (teardown: the caller recycles them).
func (m *Mesh[T]) DrainAll(fn func(T)) {
	for _, r := range m.rings {
		if r == nil {
			continue
		}
		for {
			v, ok := r.TryDequeue()
			if !ok {
				break
			}
			fn(v)
		}
	}
}
