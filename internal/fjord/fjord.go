// Package fjord implements the Fjords inter-module communication API
// (§2.3 of the TelegraphCQ paper; Madden & Franklin, ICDE 2002).
//
// Fjords connect pairs of dataflow modules with queues whose enqueue and
// dequeue ends can independently be blocking or non-blocking, so the same
// module code runs over any combination of streaming (push) and static
// (pull) inputs:
//
//   - pull-queue:     blocking dequeue,     blocking enqueue (iterator-like)
//   - push-queue:     non-blocking dequeue, non-blocking enqueue — control
//     returns to the consumer when the queue is empty, so it can pursue
//     other work instead of stalling on a slow source
//   - Exchange:       blocking dequeue, non-blocking enqueue (Graefe's
//     Exchange semantics [Graf93], provided for the baseline comparison)
//
// The package is generic so the engine can move tuples, query plans, and
// control messages through the same machinery.
package fjord

import (
	"errors"
	"sync"
)

// ErrClosed is returned by blocking operations on a closed queue.
var ErrClosed = errors.New("fjord: queue closed")

// Queue is the Fjord endpoint pair. TryEnqueue/TryDequeue are the
// non-blocking ends; Enqueue/Dequeue the blocking ends. Concrete queues
// implement all four so a plan can mix modalities per connection, but a
// queue's *type* documents the intended discipline.
type Queue[T any] interface {
	// TryEnqueue adds v without blocking. It reports false when the
	// queue is full or closed (the producer may bounce the tuple back
	// to its Eddy or shed it, per QoS policy).
	TryEnqueue(v T) bool
	// TryEnqueueBatch adds a prefix of vs without blocking and returns
	// how many elements were accepted (0 when full or closed). The
	// accepted prefix is enqueued in order under a single queue
	// operation, so producers amortize synchronization over the batch.
	TryEnqueueBatch(vs []T) int
	// Enqueue blocks until space is available; returns ErrClosed if the
	// queue is closed.
	Enqueue(v T) error
	// TryDequeue removes the oldest element without blocking; ok is
	// false when the queue is empty (closed or not).
	TryDequeue() (v T, ok bool)
	// DequeueBatch drains up to len(dst) elements into dst without
	// blocking and returns the count (0 when empty). Elements arrive in
	// FIFO order under a single queue operation — the consumer-side
	// twin of TryEnqueueBatch.
	DequeueBatch(dst []T) int
	// Dequeue blocks until an element is available; returns ErrClosed
	// when the queue is closed and drained.
	Dequeue() (v T, err error)
	// Close marks the queue closed. Enqueues fail afterwards; dequeues
	// drain remaining elements.
	Close()
	// Len returns the number of queued elements (used by back-pressure
	// routing policies).
	Len() int
	// Cap returns the queue capacity.
	Cap() int
	// Closed reports whether Close has been called.
	Closed() bool
}

// ring is the shared bounded FIFO under every queue type.
type ring[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	head     int // index of oldest element
	n        int // number of elements
	closed   bool
}

func newRing[T any](capacity int) *ring[T] {
	if capacity <= 0 {
		capacity = 1
	}
	r := &ring[T]{buf: make([]T, capacity)}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

func (r *ring[T]) tryEnqueue(v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.n == len(r.buf) {
		return false
	}
	r.put(v)
	return true
}

func (r *ring[T]) enqueue(v T) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		return ErrClosed
	}
	r.put(v)
	return nil
}

// put requires r.mu held and space available.
func (r *ring[T]) put(v T) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
	r.notEmpty.Signal()
}

// tryEnqueueBatch appends as much of vs as fits under one lock
// acquisition and returns the accepted count. One signal covers the
// whole batch: the waiting consumer drains everything it can per wake.
func (r *ring[T]) tryEnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0
	}
	n := len(r.buf) - r.n
	if n > len(vs) {
		n = len(vs)
	}
	for i := 0; i < n; i++ {
		r.buf[(r.head+r.n+i)%len(r.buf)] = vs[i]
	}
	r.n += n
	if n > 0 {
		r.notEmpty.Signal()
	}
	return n
}

// dequeueBatch drains up to len(dst) elements under one lock
// acquisition and returns the count.
func (r *ring[T]) dequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if n > len(dst) {
		n = len(dst)
	}
	var zero T
	for i := 0; i < n; i++ {
		dst[i] = r.buf[r.head]
		r.buf[r.head] = zero // release reference for GC
		r.head = (r.head + 1) % len(r.buf)
	}
	r.n -= n
	if n > 0 {
		r.notFull.Signal()
	}
	return n
}

func (r *ring[T]) tryDequeue() (T, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.take(), true
}

func (r *ring[T]) dequeue() (T, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero T
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.n == 0 {
		return zero, ErrClosed
	}
	return r.take(), nil
}

// take requires r.mu held and an element present.
func (r *ring[T]) take() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release reference for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.notFull.Signal()
	return v
}

func (r *ring[T]) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
}

func (r *ring[T]) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *ring[T]) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// queue adapts ring to the Queue interface; the named constructors below
// differ only in which ends their users are expected to call, mirroring
// the paper's queue taxonomy.
type queue[T any] struct{ r *ring[T] }

func (q queue[T]) TryEnqueue(v T) bool        { return q.r.tryEnqueue(v) }
func (q queue[T]) TryEnqueueBatch(vs []T) int { return q.r.tryEnqueueBatch(vs) }
func (q queue[T]) Enqueue(v T) error          { return q.r.enqueue(v) }
func (q queue[T]) TryDequeue() (T, bool)      { return q.r.tryDequeue() }
func (q queue[T]) DequeueBatch(dst []T) int   { return q.r.dequeueBatch(dst) }
func (q queue[T]) Dequeue() (v T, e error)    { return q.r.dequeue() }
func (q queue[T]) Close()                     { q.r.close() }
func (q queue[T]) Len() int                   { return q.r.len() }
func (q queue[T]) Cap() int                   { return len(q.r.buf) }
func (q queue[T]) Closed() bool               { return q.r.isClosed() }

// NewPull returns a pull-queue: both ends blocking (iterator model over a
// bounded buffer).
func NewPull[T any](capacity int) Queue[T] { return queue[T]{newRing[T](capacity)} }

// NewPush returns a push-queue: both ends non-blocking. Producers that
// find it full get false and may shed or bounce; consumers that find it
// empty regain control immediately (the essential Fjords property).
func NewPush[T any](capacity int) Queue[T] { return queue[T]{newRing[T](capacity)} }

// NewExchange returns a queue with Exchange semantics: producers use the
// non-blocking end, consumers the blocking end. Kept distinct so the
// Fjords-vs-Exchange experiment (E8) reads like the paper.
func NewExchange[T any](capacity int) Queue[T] { return queue[T]{newRing[T](capacity)} }
