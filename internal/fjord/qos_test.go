package fjord

import (
	"testing"
	"time"
)

func TestParseOverflowPolicy(t *testing.T) {
	cases := map[string]OverflowPolicy{
		"block": Block, "BLOCK": Block,
		"drop-newest": DropNewest, "drop_newest": DropNewest, "shed": DropNewest,
		"drop-oldest": DropOldest, "DROP_OLDEST": DropOldest, "evict": DropOldest,
		"sample": Sample, "": DropNewest,
	}
	for in, want := range cases {
		got, err := ParseOverflowPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseOverflowPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseOverflowPolicy("lossy"); err == nil {
		t.Fatal("bad policy should not parse")
	}
}

func fill(q Queue[int], n int) {
	for i := 0; i < n; i++ {
		if !q.TryEnqueue(i) {
			panic("fill failed")
		}
	}
}

func TestOfferDropNewest(t *testing.T) {
	q := NewPush[int](2)
	fill(q, 2)
	res := Offer(q, 99, OfferOpts{QoS: QoS{Policy: DropNewest}})
	if res.Accepted || res.DidEvict {
		t.Fatalf("drop-newest on full queue: %+v", res)
	}
	if v, _ := q.TryDequeue(); v != 0 {
		t.Fatalf("oldest element disturbed: %d", v)
	}
}

func TestOfferDropOldest(t *testing.T) {
	q := NewPush[int](2)
	fill(q, 2)
	res := Offer(q, 99, OfferOpts{QoS: QoS{Policy: DropOldest}})
	if !res.Accepted || !res.DidEvict || res.Evicted != 0 {
		t.Fatalf("drop-oldest: %+v", res)
	}
	a, _ := q.TryDequeue()
	b, _ := q.TryDequeue()
	if a != 1 || b != 99 {
		t.Fatalf("queue after eviction: %d, %d (want 1, 99)", a, b)
	}
}

func TestOfferBlock(t *testing.T) {
	q := NewPush[int](1)
	fill(q, 1)
	// A consumer frees the slot shortly; Block must wait and succeed.
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.TryDequeue()
	}()
	res := Offer(q, 99, OfferOpts{QoS: QoS{Policy: Block, BlockTimeout: time.Second}})
	if !res.Accepted || res.TimedOut {
		t.Fatalf("block did not admit after space freed: %+v", res)
	}
	// With no consumer, Block must give up at the timeout.
	res = Offer(q, 100, OfferOpts{QoS: QoS{Policy: Block, BlockTimeout: 5 * time.Millisecond}})
	if res.Accepted || !res.TimedOut {
		t.Fatalf("block on stuck queue: %+v", res)
	}
}

func TestOfferBlockClosedQueue(t *testing.T) {
	q := NewPush[int](1)
	fill(q, 1)
	q.Close()
	res := Offer(q, 99, OfferOpts{QoS: QoS{Policy: Block, BlockTimeout: time.Second}})
	if res.Accepted {
		t.Fatalf("block admitted into closed queue: %+v", res)
	}
}

func TestOfferSample(t *testing.T) {
	q := NewPush[int](1)
	fill(q, 1)
	// Deterministic draws: first below p (admit via eviction), then above
	// (shed the newcomer).
	draws := []float64{0.1, 0.9}
	i := 0
	rnd := func() float64 { v := draws[i%len(draws)]; i++; return v }
	res := Offer(q, 99, OfferOpts{QoS: QoS{Policy: Sample, SampleP: 0.5}, Rand: rnd})
	if !res.Accepted || !res.DidEvict {
		t.Fatalf("sample admit draw: %+v", res)
	}
	res = Offer(q, 100, OfferOpts{QoS: QoS{Policy: Sample, SampleP: 0.5}, Rand: rnd})
	if res.Accepted || res.DidEvict {
		t.Fatalf("sample shed draw: %+v", res)
	}
}

// The chaos Full hook must force the policy to run even when the queue
// has space.
func TestOfferSimulatedFull(t *testing.T) {
	q := NewPush[int](8)
	fill(q, 2)
	res := Offer(q, 99, OfferOpts{QoS: QoS{Policy: DropNewest}, Full: func() bool { return true }})
	if res.Accepted {
		t.Fatalf("simulated full queue still accepted: %+v", res)
	}
	res = Offer(q, 99, OfferOpts{QoS: QoS{Policy: DropOldest}, Full: func() bool { return true }})
	if !res.Accepted || !res.DidEvict {
		t.Fatalf("simulated full + drop-oldest: %+v", res)
	}
	// Block with a transient burst: Full fires once, then clears.
	fired := false
	res = Offer(q, 100, OfferOpts{
		QoS:  QoS{Policy: Block, BlockTimeout: time.Second},
		Full: func() bool { f := !fired; fired = true; return f },
	})
	if !res.Accepted {
		t.Fatalf("block across transient burst: %+v", res)
	}
}
