package fjord

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := NewPull[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		v, err := q.Dequeue()
		if err != nil || v != i {
			t.Fatalf("Dequeue = %d, %v; want %d", v, err, i)
		}
	}
}

func TestWrapAround(t *testing.T) {
	q := NewPush[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !q.TryEnqueue(round*3 + i) {
				t.Fatal("TryEnqueue failed with space available")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryDequeue()
			if !ok || v != round*3+i {
				t.Fatalf("round %d: got %d,%v", round, v, ok)
			}
		}
	}
}

func TestTryEnqueueFull(t *testing.T) {
	q := NewPush[int](2)
	if !q.TryEnqueue(1) || !q.TryEnqueue(2) {
		t.Fatal("enqueue with space failed")
	}
	if q.TryEnqueue(3) {
		t.Fatal("TryEnqueue succeeded on full queue")
	}
	if q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("Len=%d Cap=%d", q.Len(), q.Cap())
	}
}

func TestTryDequeueEmpty(t *testing.T) {
	q := NewPush[string](2)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue succeeded on empty queue")
	}
}

func TestCloseSemantics(t *testing.T) {
	q := NewPull[int](4)
	_ = q.Enqueue(1)
	_ = q.Enqueue(2)
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := q.Enqueue(3); err != ErrClosed {
		t.Fatalf("Enqueue after close = %v", err)
	}
	if q.TryEnqueue(3) {
		t.Fatal("TryEnqueue after close succeeded")
	}
	// Drain remaining.
	if v, err := q.Dequeue(); err != nil || v != 1 {
		t.Fatalf("drain 1: %d, %v", v, err)
	}
	if v, ok := q.TryDequeue(); !ok || v != 2 {
		t.Fatalf("drain 2: %d, %v", v, ok)
	}
	if _, err := q.Dequeue(); err != ErrClosed {
		t.Fatalf("Dequeue after drain = %v", err)
	}
	q.Close() // idempotent
}

func TestBlockingEnqueueWaits(t *testing.T) {
	q := NewPull[int](1)
	_ = q.Enqueue(1)
	done := make(chan error, 1)
	go func() { done <- q.Enqueue(2) }()
	select {
	case <-done:
		t.Fatal("Enqueue returned while queue full")
	case <-time.After(20 * time.Millisecond):
	}
	if v, _ := q.Dequeue(); v != 1 {
		t.Fatal("wrong head")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v, _ := q.Dequeue(); v != 2 {
		t.Fatal("blocked element lost")
	}
}

func TestBlockingDequeueWaits(t *testing.T) {
	q := NewPull[int](1)
	got := make(chan int, 1)
	go func() {
		v, _ := q.Dequeue()
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Dequeue returned on empty queue")
	case <-time.After(20 * time.Millisecond):
	}
	_ = q.Enqueue(42)
	if v := <-got; v != 42 {
		t.Fatalf("got %d", v)
	}
}

func TestCloseWakesBlockedDequeue(t *testing.T) {
	q := NewPull[int](1)
	errc := make(chan error, 1)
	go func() {
		_, err := q.Dequeue()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if err := <-errc; err != ErrClosed {
		t.Fatalf("blocked Dequeue woke with %v", err)
	}
}

func TestCloseWakesBlockedEnqueue(t *testing.T) {
	q := NewPull[int](1)
	_ = q.Enqueue(1)
	errc := make(chan error, 1)
	go func() { errc <- q.Enqueue(2) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if err := <-errc; err != ErrClosed {
		t.Fatalf("blocked Enqueue woke with %v", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 1000
	)
	q := NewPull[int](8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := q.Enqueue(p*perProd + i); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, err := q.Dequeue()
				if err != nil {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if len(seen) != producers*perProd {
		t.Fatalf("delivered %d of %d", len(seen), producers*perProd)
	}
}

// Property: any sequence of try-ops matches a model FIFO slice.
func TestQuickModelFIFO(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewPush[int](8)
		var model []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				ok := q.TryEnqueue(next)
				wantOK := len(model) < 8
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryDequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastDeliversToAll(t *testing.T) {
	b := NewBroadcast[int]()
	q1 := b.Subscribe(4)
	q2 := b.Subscribe(4)
	b.Publish(7)
	for i, q := range []Queue[int]{q1, q2} {
		v, ok := q.TryDequeue()
		if !ok || v != 7 {
			t.Fatalf("sub %d: %d, %v", i, v, ok)
		}
	}
	if b.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d", b.Subscribers())
	}
}

func TestBroadcastShedsOnFullSubscriber(t *testing.T) {
	b := NewBroadcast[int]()
	slow := b.Subscribe(1)
	fast := b.Subscribe(8)
	b.Publish(1)
	b.Publish(2) // slow is full: shed for slow, delivered to fast
	d := b.Dropped()
	if d[0] != 1 || d[1] != 0 {
		t.Fatalf("Dropped = %v", d)
	}
	if fast.Len() != 2 || slow.Len() != 1 {
		t.Fatalf("fast=%d slow=%d", fast.Len(), slow.Len())
	}
}

func TestBroadcastClose(t *testing.T) {
	b := NewBroadcast[int]()
	q := b.Subscribe(2)
	b.Close()
	if !q.Closed() {
		t.Fatal("subscriber not closed")
	}
	late := b.Subscribe(2)
	if !late.Closed() {
		t.Fatal("post-close subscription not closed")
	}
	b.Close() // idempotent
}

func TestBroadcastPublishBlocking(t *testing.T) {
	b := NewBroadcast[int]()
	q := b.Subscribe(1)
	if err := b.PublishBlocking(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.PublishBlocking(2) }()
	time.Sleep(10 * time.Millisecond)
	if v, _ := q.Dequeue(); v != 1 {
		t.Fatal("head wrong")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushQueue(b *testing.B) {
	q := NewPush[int](1024)
	for i := 0; i < b.N; i++ {
		q.TryEnqueue(i)
		q.TryDequeue()
	}
}

func BenchmarkPullQueueContended(b *testing.B) {
	q := NewPull[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := q.Dequeue(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Enqueue(i)
	}
	q.Close()
	<-done
}
