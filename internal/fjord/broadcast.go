package fjord

import "sync"

// Broadcast fans one produced stream out to many subscriber queues. The
// Wrapper process uses it to feed a stream to every Execution Object
// whose query class reads that stream (§4.2.2–4.2.3). Subscribers receive
// the same T; tuple consumers must treat broadcast tuples as read-only
// and Clone before mutating lineage.
type Broadcast[T any] struct {
	mu      sync.Mutex
	subs    []Queue[T]
	dropped []int64 // per-subscriber count of shed elements (full queue)
	closed  bool
}

// NewBroadcast returns an empty broadcast hub.
func NewBroadcast[T any]() *Broadcast[T] { return &Broadcast[T]{} }

// Subscribe attaches a new push-queue of the given capacity and returns
// it. Subscribing after Close returns a closed queue.
func (b *Broadcast[T]) Subscribe(capacity int) Queue[T] {
	q := NewPush[T](capacity)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		q.Close()
		return q
	}
	b.subs = append(b.subs, q)
	b.dropped = append(b.dropped, 0)
	return q
}

// Publish offers v to every subscriber without blocking; subscribers with
// full queues miss this element (counted in Dropped). This is the
// load-shedding behaviour the paper requires of non-blocking dataflow:
// a slow consumer must not stall the stream for everyone else.
func (b *Broadcast[T]) Publish(v T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, q := range b.subs {
		if !q.TryEnqueue(v) {
			b.dropped[i]++
		}
	}
}

// PublishBlocking delivers v to every subscriber, waiting for space. Used
// where losslessness matters more than liveness (e.g. result delivery to
// the client proxy). Returns the first error encountered.
func (b *Broadcast[T]) PublishBlocking(v T) error {
	b.mu.Lock()
	subs := make([]Queue[T], len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	var first error
	for _, q := range subs {
		if err := q.Enqueue(v); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Dropped returns a copy of the per-subscriber shed counts.
func (b *Broadcast[T]) Dropped() []int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int64, len(b.dropped))
	copy(out, b.dropped)
	return out
}

// Subscribers returns the current subscriber count.
func (b *Broadcast[T]) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close closes every subscriber queue and rejects new subscriptions.
func (b *Broadcast[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, q := range b.subs {
		q.Close()
	}
}
