package fjord

import "sync/atomic"

// QueueStats is a snapshot of a counted queue's activity. The
// enqueue-fail count is the push-side stall signal (a full push-queue
// sheds or bounces, per QoS policy); the dequeue-empty count is the
// pull-side stall signal (control returned to the consumer with no
// work — the essential Fjords property made measurable).
type QueueStats struct {
	Enqueued     int64 // elements accepted
	Dequeued     int64 // elements removed
	EnqueueFails int64 // TryEnqueue refusals (full/closed) — push stalls
	DequeueEmpty int64 // TryDequeue misses (empty) — pull stalls
}

// Counted wraps a Queue with atomic activity counters so telemetry can
// observe depth, throughput, and push-vs-pull stalls without adding
// locks to the queue's hot path (one atomic add per operation).
type Counted[T any] struct {
	q        Queue[T]
	enqueued atomic.Int64
	dequeued atomic.Int64
	enqFails atomic.Int64
	deqEmpty atomic.Int64
}

// Count wraps q with counters. The wrapper implements Queue[T].
func Count[T any](q Queue[T]) *Counted[T] { return &Counted[T]{q: q} }

// TryEnqueue implements Queue.
func (c *Counted[T]) TryEnqueue(v T) bool {
	if c.q.TryEnqueue(v) {
		c.enqueued.Add(1)
		return true
	}
	c.enqFails.Add(1)
	return false
}

// TryEnqueueBatch implements Queue. The counters advance by the number
// of *elements* moved, not the number of batch calls, so queue telemetry
// reads the same whether an edge is vectorized or not; a partial accept
// also counts one enqueue-fail (the producer observed back-pressure).
func (c *Counted[T]) TryEnqueueBatch(vs []T) int {
	n := c.q.TryEnqueueBatch(vs)
	if n > 0 {
		c.enqueued.Add(int64(n))
	}
	if n < len(vs) {
		c.enqFails.Add(1)
	}
	return n
}

// Enqueue implements Queue.
func (c *Counted[T]) Enqueue(v T) error {
	if err := c.q.Enqueue(v); err != nil {
		c.enqFails.Add(1)
		return err
	}
	c.enqueued.Add(1)
	return nil
}

// TryDequeue implements Queue.
func (c *Counted[T]) TryDequeue() (T, bool) {
	v, ok := c.q.TryDequeue()
	if ok {
		c.dequeued.Add(1)
	} else {
		c.deqEmpty.Add(1)
	}
	return v, ok
}

// DequeueBatch implements Queue; counters advance per element (see
// TryEnqueueBatch). An empty drain counts one dequeue-empty stall.
func (c *Counted[T]) DequeueBatch(dst []T) int {
	n := c.q.DequeueBatch(dst)
	if n > 0 {
		c.dequeued.Add(int64(n))
	} else {
		c.deqEmpty.Add(1)
	}
	return n
}

// Dequeue implements Queue.
func (c *Counted[T]) Dequeue() (T, error) {
	v, err := c.q.Dequeue()
	if err == nil {
		c.dequeued.Add(1)
	}
	return v, err
}

// Close implements Queue.
func (c *Counted[T]) Close() { c.q.Close() }

// Len implements Queue.
func (c *Counted[T]) Len() int { return c.q.Len() }

// Cap implements Queue.
func (c *Counted[T]) Cap() int { return c.q.Cap() }

// Closed implements Queue.
func (c *Counted[T]) Closed() bool { return c.q.Closed() }

// Stats returns a snapshot of the counters; safe from any goroutine.
func (c *Counted[T]) Stats() QueueStats {
	return QueueStats{
		Enqueued:     c.enqueued.Load(),
		Dequeued:     c.dequeued.Load(),
		EnqueueFails: c.enqFails.Load(),
		DequeueEmpty: c.deqEmpty.Load(),
	}
}
