package fjord

import (
	"sync"
	"sync/atomic"
)

// SPSC is a lock-free single-producer/single-consumer ring buffer
// implementing Queue[T]. It is the fast path for Fjord edges with
// exactly one writer and one reader — an Execution Object feeding a
// client subscription, a wrapper feeding a dedicated parser — where the
// mutex queue's lock round-trip dominates the per-tuple cost. Multi-
// writer edges (fan-out, control channels) must keep using the mutex
// queues from NewPush/NewPull.
//
// "Single producer" and "single consumer" mean at most one goroutine on
// each end *at a time*: handing an end to another goroutine is safe when
// the handoff itself synchronizes (channel send, WaitGroup, ack), which
// is how the executor serializes delivery during query cancellation.
//
// The layout is the classic cached-index SPSC ring: the producer owns
// tail and keeps a local view of head; the consumer owns head and keeps
// a local view of tail. Each side refreshes its cached view of the other
// index only when the cached view says the queue is full/empty, so in
// steady state an enqueue+dequeue pair touches each shared cache line
// once. Capacity is rounded up to a power of two for mask indexing.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	// Consumer-owned line: head is written only by the consumer.
	_          [64]byte
	head       atomic.Uint64
	cachedTail uint64 // consumer's last view of tail

	// Producer-owned line: tail is written only by the producer.
	_          [64]byte
	tail       atomic.Uint64
	cachedHead uint64 // producer's last view of head

	_ [64]byte

	closed atomic.Bool
	once   sync.Once
	done   chan struct{} // closed by Close; wakes blocked ends

	// Blocking support: each side parks on a 1-slot channel after
	// setting its wait flag; the other side posts a token only when the
	// flag is up, keeping the non-blocking fast path signal-free.
	waitNotEmpty atomic.Bool
	notEmpty     chan struct{}
	waitNotFull  atomic.Bool
	notFull      chan struct{}
}

// NewSPSC returns an SPSC queue with capacity rounded up to a power of
// two (minimum 2). The result implements Queue[T]; the SPSC contract is
// documented on the type.
func NewSPSC[T any](capacity int) *SPSC[T] {
	c := uint64(2)
	for int(c) < capacity {
		c <<= 1
	}
	return &SPSC[T]{
		buf:      make([]T, c),
		mask:     c - 1,
		done:     make(chan struct{}),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
	}
}

// TryEnqueue implements Queue. Producer side only.
func (q *SPSC[T]) TryEnqueue(v T) bool {
	if q.closed.Load() {
		return false
	}
	t := q.tail.Load()
	if t-q.cachedHead == uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if t-q.cachedHead == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	q.wakeConsumer()
	return true
}

// TryEnqueueBatch implements Queue: it enqueues a prefix of vs and
// returns how many elements were accepted (0 when full or closed). The
// tail index is published once for the whole batch, so the consumer
// observes the batch atomically and the shared cache line is touched
// once per batch instead of once per element.
func (q *SPSC[T]) TryEnqueueBatch(vs []T) int {
	if q.closed.Load() || len(vs) == 0 {
		return 0
	}
	t := q.tail.Load()
	free := uint64(len(q.buf)) - (t - q.cachedHead)
	if free < uint64(len(vs)) {
		q.cachedHead = q.head.Load()
		free = uint64(len(q.buf)) - (t - q.cachedHead)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		q.buf[(t+i)&q.mask] = vs[i]
	}
	if n > 0 {
		q.tail.Store(t + n)
		q.wakeConsumer()
	}
	return int(n)
}

// Enqueue implements Queue: it blocks until space is available or the
// queue is closed. Producer side only.
func (q *SPSC[T]) Enqueue(v T) error {
	for {
		if q.closed.Load() {
			return ErrClosed
		}
		if q.TryEnqueue(v) {
			return nil
		}
		q.waitNotFull.Store(true)
		if q.TryEnqueue(v) { // recheck after raising the flag
			q.waitNotFull.Store(false)
			return nil
		}
		select {
		case <-q.notFull:
		case <-q.done:
		}
		q.waitNotFull.Store(false)
	}
}

// TryDequeue implements Queue. Consumer side only.
func (q *SPSC[T]) TryDequeue() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if h == q.cachedTail {
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // release reference for GC
	q.head.Store(h + 1)
	q.wakeProducer()
	return v, true
}

// DequeueBatch implements Queue: it drains up to len(dst) elements into
// dst and returns the count (0 when empty). Like TryEnqueueBatch it
// publishes head once per batch.
func (q *SPSC[T]) DequeueBatch(dst []T) int {
	var zero T
	h := q.head.Load()
	avail := q.cachedTail - h
	if avail == 0 {
		q.cachedTail = q.tail.Load()
		avail = q.cachedTail - h
		if avail == 0 {
			return 0
		}
	}
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		idx := (h + i) & q.mask
		dst[i] = q.buf[idx]
		q.buf[idx] = zero
	}
	q.head.Store(h + n)
	q.wakeProducer()
	return int(n)
}

// Dequeue implements Queue: it blocks until an element is available,
// returning ErrClosed once the queue is closed and drained. Consumer
// side only.
func (q *SPSC[T]) Dequeue() (T, error) {
	for {
		if v, ok := q.TryDequeue(); ok {
			return v, nil
		}
		if q.closed.Load() {
			// Drain race: elements may have landed between the failed
			// TryDequeue and the closed check.
			if v, ok := q.TryDequeue(); ok {
				return v, nil
			}
			var zero T
			return zero, ErrClosed
		}
		q.waitNotEmpty.Store(true)
		if v, ok := q.TryDequeue(); ok { // recheck after raising the flag
			q.waitNotEmpty.Store(false)
			return v, nil
		}
		select {
		case <-q.notEmpty:
		case <-q.done:
		}
		q.waitNotEmpty.Store(false)
	}
}

func (q *SPSC[T]) wakeConsumer() {
	if q.waitNotEmpty.Load() {
		select {
		case q.notEmpty <- struct{}{}:
		default:
		}
	}
}

func (q *SPSC[T]) wakeProducer() {
	if q.waitNotFull.Load() {
		select {
		case q.notFull <- struct{}{}:
		default:
		}
	}
}

// Close implements Queue: enqueues fail afterwards; dequeues drain the
// remaining elements. Close may be called from any goroutine.
func (q *SPSC[T]) Close() {
	q.closed.Store(true)
	q.once.Do(func() { close(q.done) })
}

// Len implements Queue: a lock-free head/tail read. Under concurrent
// enqueue/dequeue the result is a linearizable-enough estimate for
// back-pressure routing — it never goes negative and is exact whenever
// either end is quiescent.
func (q *SPSC[T]) Len() int {
	h := q.head.Load() // read head first: tail only grows, so tail ≥ h
	t := q.tail.Load()
	n := t - h
	if n > uint64(len(q.buf)) {
		n = uint64(len(q.buf))
	}
	return int(n)
}

// Cap implements Queue (the rounded-up power-of-two capacity).
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Closed implements Queue.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }
