package fjord

import (
	"fmt"
	"strings"
	"time"
)

// OverflowPolicy selects what a producer does when a push-queue is full
// — the QoS decision of §2.3/§4.2: the engine must never block on a
// slow consumer by accident, but *which* tuples to sacrifice (or whether
// to apply back-pressure deliberately) is a per-stream policy choice,
// not an implicit property of the queue.
type OverflowPolicy uint8

const (
	// DropNewest sheds the arriving tuple (the historical default: the
	// unaccepted suffix of a burst is lost, the window keeps its past).
	DropNewest OverflowPolicy = iota
	// DropOldest evicts the oldest queued tuple to admit the new one
	// (recency-preserving: monitoring queries that care about "now").
	DropOldest
	// Block applies back-pressure: the producer waits, up to a timeout,
	// for space (lossless ingest; the wrapper's connection stalls
	// instead — which is where the paper wants blocking to live).
	Block
	// Sample interpolates: on overflow the new tuple is admitted with
	// probability p (evicting the oldest), else shed — a load-shedding
	// sampler whose expected loss is split between old and new.
	Sample
)

func (p OverflowPolicy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Block:
		return "block"
	case Sample:
		return "sample"
	default:
		return "drop-newest"
	}
}

// ParseOverflowPolicy accepts the DDL spellings ("drop-newest",
// "drop_newest", "block", "sample", ...), case-insensitively.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "_", "-")) {
	case "", "drop-newest", "dropnewest", "shed":
		return DropNewest, nil
	case "drop-oldest", "dropoldest", "evict":
		return DropOldest, nil
	case "block":
		return Block, nil
	case "sample":
		return Sample, nil
	}
	return DropNewest, fmt.Errorf("fjord: unknown overflow policy %q (want block, drop-newest, drop-oldest, or sample)", s)
}

// QoS is a stream's complete overflow behavior. The zero value is the
// historical default: drop-newest.
type QoS struct {
	Policy OverflowPolicy
	// SampleP is the admit probability for Sample (ignored otherwise).
	SampleP float64
	// BlockTimeout bounds how long Block waits for space (0 → 100ms).
	BlockTimeout time.Duration
}

// DefaultBlockTimeout bounds Block waits when DDL gives no timeout.
const DefaultBlockTimeout = 100 * time.Millisecond

// OfferOpts parameterizes one Offer call.
type OfferOpts struct {
	QoS QoS
	// Rand supplies the Bernoulli draw for Sample; nil admits always.
	Rand func() float64
	// Full, when non-nil, simulates a full queue (chaos bursts): each
	// enqueue attempt for which it returns true is treated as refused.
	Full func() bool
}

// OfferResult reports what happened to the offered element — and, for
// eviction policies, which element was sacrificed so the caller can
// retire it (the queue is generic; only the caller knows how to recycle).
type OfferResult[T any] struct {
	// Accepted reports whether the offered element is now queued.
	Accepted bool
	// Evicted holds the sacrificed oldest element when DidEvict is set.
	Evicted  T
	DidEvict bool
	// TimedOut is set when Block gave up waiting.
	TimedOut bool
}

// Offer admits v into q under an overflow policy. It never blocks except
// under Block, and then only up to the timeout. Exactly one element is
// lost per overflow event (the newest or the oldest), so producers can
// reconcile exactly: offered == queued + lost.
func Offer[T any](q Queue[T], v T, o OfferOpts) OfferResult[T] {
	full := o.Full != nil && o.Full()
	if !full && q.TryEnqueue(v) {
		return OfferResult[T]{Accepted: true}
	}
	switch o.QoS.Policy {
	case Block:
		timeout := o.QoS.BlockTimeout
		if timeout <= 0 {
			timeout = DefaultBlockTimeout
		}
		deadline := time.Now().Add(timeout)
		wait := 20 * time.Microsecond
		for {
			if q.Closed() {
				return OfferResult[T]{}
			}
			if !(o.Full != nil && o.Full()) && q.TryEnqueue(v) {
				return OfferResult[T]{Accepted: true}
			}
			if time.Now().After(deadline) {
				return OfferResult[T]{TimedOut: true}
			}
			time.Sleep(wait)
			if wait < time.Millisecond {
				wait *= 2
			}
		}
	case DropOldest:
		return evictAndOffer(q, v)
	case Sample:
		if o.Rand == nil || o.Rand() < o.QoS.SampleP {
			return evictAndOffer(q, v)
		}
		return OfferResult[T]{}
	default: // DropNewest
		return OfferResult[T]{}
	}
}

// evictAndOffer makes room by removing the oldest element, then admits
// v. Under concurrency the freed slot can be stolen, so it retries a few
// times before giving up and shedding the new element instead.
func evictAndOffer[T any](q Queue[T], v T) OfferResult[T] {
	var res OfferResult[T]
	for attempt := 0; attempt < 4; attempt++ {
		// At most one eviction per overflow: a stolen-slot retry must
		// not sacrifice a second element (and every sacrificed element
		// must be reported so the caller can retire it).
		if !res.DidEvict {
			if old, ok := q.TryDequeue(); ok {
				res.Evicted, res.DidEvict = old, true
			}
		}
		if q.TryEnqueue(v) {
			res.Accepted = true
			return res
		}
		if q.Closed() {
			return res
		}
	}
	return res
}
