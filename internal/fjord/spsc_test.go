package fjord

import (
	"sync"
	"testing"
	"time"
)

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) failed on non-full queue", i)
		}
	}
	if q.TryEnqueue(99) {
		t.Fatal("TryEnqueue succeeded on full queue")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("TryDequeue = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue succeeded on empty queue")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 128},
	} {
		if got := NewSPSC[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestSPSCBatchContract(t *testing.T) {
	q := NewSPSC[int](8)
	// Partial accept: batch larger than free space takes a prefix.
	in := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if n := q.TryEnqueueBatch(in); n != 8 {
		t.Fatalf("TryEnqueueBatch accepted %d, want 8", n)
	}
	if n := q.TryEnqueueBatch(in); n != 0 {
		t.Fatalf("TryEnqueueBatch on full queue accepted %d, want 0", n)
	}
	// Drain-up-to-N: small dst drains a prefix in FIFO order.
	dst := make([]int, 3)
	if n := q.DequeueBatch(dst); n != 3 {
		t.Fatalf("DequeueBatch = %d, want 3", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	// Large dst drains what remains.
	big := make([]int, 16)
	if n := q.DequeueBatch(big); n != 5 {
		t.Fatalf("DequeueBatch = %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if big[i] != i+3 {
			t.Fatalf("big[%d] = %d, want %d", i, big[i], i+3)
		}
	}
	if n := q.DequeueBatch(big); n != 0 {
		t.Fatalf("DequeueBatch on empty queue = %d, want 0", n)
	}
}

func TestSPSCFIFOAcrossGoroutines(t *testing.T) {
	const total = 200000
	q := NewSPSC[int](64)
	done := make(chan error, 1)
	go func() {
		next := 0
		buf := make([]int, 17) // odd size to exercise wrap-around
		for next < total {
			n := q.DequeueBatch(buf)
			if n == 0 {
				v, err := q.Dequeue()
				if err != nil {
					done <- err
					return
				}
				buf[0], n = v, 1
			}
			for i := 0; i < n; i++ {
				if buf[i] != next {
					t.Errorf("out of order: got %d, want %d", buf[i], next)
					done <- nil
					return
				}
				next++
			}
		}
		done <- nil
	}()
	batch := make([]int, 13)
	i := 0
	for i < total {
		n := 0
		for n < len(batch) && i < total {
			batch[n] = i
			n++
			i++
		}
		sent := 0
		for sent < n {
			m := q.TryEnqueueBatch(batch[sent:n])
			if m == 0 {
				if err := q.Enqueue(batch[sent]); err != nil {
					t.Fatalf("Enqueue: %v", err)
				}
				m = 1
			}
			sent += m
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("consumer: %v", err)
	}
}

// TestSPSCLenConcurrent pins the Len() contract the back-pressure router
// relies on: under concurrent enqueue/dequeue it must stay within
// [0, Cap] and be exact when both ends are quiescent.
func TestSPSCLenConcurrent(t *testing.T) {
	q := NewSPSC[int](32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q.TryEnqueue(i)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			q.TryDequeue()
		}
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if n := q.Len(); n < 0 || n > q.Cap() {
			close(stop)
			wg.Wait()
			t.Fatalf("Len = %d out of range [0,%d]", n, q.Cap())
		}
	}
	close(stop)
	wg.Wait()
	// Quiescent: Len must be exact — drain and recount.
	want := 0
	for {
		if _, ok := q.TryDequeue(); !ok {
			break
		}
		want++
		_ = want
	}
	if q.Len() != 0 {
		t.Fatalf("quiescent Len = %d after drain, want 0", q.Len())
	}
}

func TestMutexRingLenConcurrent(t *testing.T) {
	q := NewPush[int](32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q.TryEnqueue(i)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]int, 8)
		for {
			select {
			case <-stop:
				return
			default:
			}
			q.DequeueBatch(buf)
		}
	}()
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		if n := q.Len(); n < 0 || n > q.Cap() {
			close(stop)
			wg.Wait()
			t.Fatalf("Len = %d out of range [0,%d]", n, q.Cap())
		}
	}
	close(stop)
	wg.Wait()
}

func TestSPSCClose(t *testing.T) {
	q := NewSPSC[int](4)
	q.TryEnqueue(1)
	q.TryEnqueue(2)
	q.Close()
	if q.TryEnqueue(3) {
		t.Fatal("TryEnqueue succeeded after Close")
	}
	if n := q.TryEnqueueBatch([]int{3, 4}); n != 0 {
		t.Fatalf("TryEnqueueBatch after Close = %d, want 0", n)
	}
	if err := q.Enqueue(3); err != ErrClosed {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
	// Dequeues drain the remainder, then report closed.
	for _, want := range []int{1, 2} {
		v, err := q.Dequeue()
		if err != nil || v != want {
			t.Fatalf("Dequeue = %d,%v, want %d,nil", v, err, want)
		}
	}
	if _, err := q.Dequeue(); err != ErrClosed {
		t.Fatalf("Dequeue on drained closed queue = %v, want ErrClosed", err)
	}
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestSPSCBlockingWakeups(t *testing.T) {
	q := NewSPSC[int](2)
	// Blocked Dequeue wakes on enqueue.
	got := make(chan int, 1)
	go func() {
		v, err := q.Dequeue()
		if err != nil {
			t.Errorf("Dequeue: %v", err)
		}
		got <- v
	}()
	time.Sleep(5 * time.Millisecond) // let the consumer park
	q.TryEnqueue(42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("Dequeue woke with %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Dequeue never woke on enqueue")
	}

	// Blocked Enqueue wakes on dequeue.
	q.TryEnqueue(1)
	q.TryEnqueue(2)
	enqDone := make(chan error, 1)
	go func() { enqDone <- q.Enqueue(3) }()
	time.Sleep(5 * time.Millisecond)
	if _, ok := q.TryDequeue(); !ok {
		t.Fatal("TryDequeue failed on full queue")
	}
	select {
	case err := <-enqDone:
		if err != nil {
			t.Fatalf("Enqueue after space freed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Enqueue never woke on dequeue")
	}

	// Blocked Dequeue wakes on Close.
	q2 := NewSPSC[int](2)
	deqDone := make(chan error, 1)
	go func() {
		_, err := q2.Dequeue()
		deqDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	q2.Close()
	select {
	case err := <-deqDone:
		if err != ErrClosed {
			t.Fatalf("Dequeue on Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Dequeue never woke on Close")
	}
}

func TestMutexRingBatchContract(t *testing.T) {
	q := NewPush[int](8)
	in := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if n := q.TryEnqueueBatch(in); n != 8 {
		t.Fatalf("TryEnqueueBatch accepted %d, want 8", n)
	}
	dst := make([]int, 5)
	if n := q.DequeueBatch(dst); n != 5 {
		t.Fatalf("DequeueBatch = %d, want 5", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	if n := q.TryEnqueueBatch(in[8:]); n != 2 {
		t.Fatalf("TryEnqueueBatch wrap accepted %d, want 2", n)
	}
	want := []int{5, 6, 7, 8, 9}
	big := make([]int, 8)
	if n := q.DequeueBatch(big); n != 5 {
		t.Fatalf("DequeueBatch = %d, want 5", n)
	}
	for i, w := range want {
		if big[i] != w {
			t.Fatalf("big[%d] = %d, want %d", i, big[i], w)
		}
	}
	q.Close()
	if n := q.TryEnqueueBatch(in); n != 0 {
		t.Fatalf("TryEnqueueBatch after Close = %d, want 0", n)
	}
}

func TestCountedBatchCountsElements(t *testing.T) {
	c := Count(NewPush[int](4))
	if n := c.TryEnqueueBatch([]int{1, 2, 3, 4, 5}); n != 4 {
		t.Fatalf("TryEnqueueBatch = %d, want 4", n)
	}
	st := c.Stats()
	if st.Enqueued != 4 {
		t.Fatalf("Enqueued = %d, want 4 (must count tuples, not batches)", st.Enqueued)
	}
	if st.EnqueueFails != 1 {
		t.Fatalf("EnqueueFails = %d, want 1 (partial accept is one stall)", st.EnqueueFails)
	}
	dst := make([]int, 8)
	if n := c.DequeueBatch(dst); n != 4 {
		t.Fatalf("DequeueBatch = %d, want 4", n)
	}
	if n := c.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty = %d, want 0", n)
	}
	st = c.Stats()
	if st.Dequeued != 4 {
		t.Fatalf("Dequeued = %d, want 4 (must count tuples, not batches)", st.Dequeued)
	}
	if st.DequeueEmpty != 1 {
		t.Fatalf("DequeueEmpty = %d, want 1", st.DequeueEmpty)
	}
}
