package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(10)
	if s.Contains(3) {
		t.Fatal("empty set contains 3")
	}
	s.Add(3)
	s.Add(64) // forces growth past the preallocated word
	s.Add(0)
	if !s.Contains(3) || !s.Contains(64) || !s.Contains(0) {
		t.Fatalf("missing added elements: %v", s)
	}
	if s.Contains(2) || s.Contains(65) || s.Contains(1000) {
		t.Fatalf("contains elements never added: %v", s)
	}
	s.Remove(3)
	if s.Contains(3) {
		t.Fatal("remove failed")
	}
	s.Remove(9999) // no-op beyond allocation
	if got := s.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestNegativeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestContainsNegative(t *testing.T) {
	if New(0).Contains(-5) {
		t.Fatal("Contains(-5) = true")
	}
}

func TestCountEmptyClear(t *testing.T) {
	s := FromIndices(1, 2, 3, 100)
	if s.Count() != 4 || s.Empty() {
		t.Fatalf("Count=%d Empty=%v", s.Count(), s.Empty())
	}
	s.Clear()
	if s.Count() != 0 || !s.Empty() {
		t.Fatalf("after Clear: Count=%d Empty=%v", s.Count(), s.Empty())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(1, 2)
	b := a.Clone()
	b.Add(77)
	if a.Contains(77) {
		t.Fatal("Clone shares storage with original")
	}
	if !b.Contains(1) || !b.Contains(2) {
		t.Fatal("Clone lost elements")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromIndices(500)
	b := FromIndices(1, 2, 3)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatalf("CopyFrom: %v != %v", b, a)
	}
	b.Add(600)
	if a.Contains(600) {
		t.Fatal("CopyFrom shares storage")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(1, 2, 3, 70)
	b := FromIndices(2, 3, 4)

	u := a.Clone()
	u.Union(b)
	if want := FromIndices(1, 2, 3, 4, 70); !u.Equal(want) {
		t.Fatalf("Union = %v, want %v", u, want)
	}

	i := a.Clone()
	i.Intersect(b)
	if want := FromIndices(2, 3); !i.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", i, want)
	}

	d := a.Clone()
	d.Subtract(b)
	if want := FromIndices(1, 70); !d.Equal(want) {
		t.Fatalf("Subtract = %v, want %v", d, want)
	}

	if !a.IntersectsWith(b) {
		t.Fatal("IntersectsWith(a,b) = false")
	}
	if a.IntersectsWith(FromIndices(99)) {
		t.Fatal("IntersectsWith disjoint = true")
	}
	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Fatal("intersection not subset of operands")
	}
	if a.SubsetOf(b) {
		t.Fatal("a subset of b")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	a := FromIndices(1)
	b := FromIndices(1)
	b.Add(200)
	b.Remove(200) // leaves trailing zero words
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal is sensitive to trailing zero words")
	}
}

func TestNext(t *testing.T) {
	s := FromIndices(3, 64, 130)
	cases := []struct{ from, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {130, 130}, {131, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(0).Next(0); got != -1 {
		t.Errorf("Next on empty = %d, want -1", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(1, 2, 3, 4)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("early stop: %v", seen)
	}
}

func TestIndicesSorted(t *testing.T) {
	s := FromIndices(130, 3, 64)
	got := s.Indices()
	if !sort.IntsAreSorted(got) || len(got) != 3 {
		t.Fatalf("Indices = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(1, 5).String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Fatalf("String empty = %q", got)
	}
}

// Property: a set behaves like a map[int]bool under a random operation
// sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(0)
		m := map[int]bool{}
		for _, op := range ops {
			i := int(op % 512)
			switch op % 3 {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Contains(i) != m[i] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		for i := range m {
			if !s.Contains(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is commutative and Subtract then Union restores a superset.
func TestQuickAlgebraLaws(t *testing.T) {
	gen := func(r *rand.Rand) *Set {
		s := New(0)
		for i := 0; i < r.Intn(50); i++ {
			s.Add(r.Intn(300))
		}
		return s
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a, b := gen(r), gen(r)
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		// (a - b) ∪ (a ∩ b) == a
		diff := a.Clone()
		diff.Subtract(b)
		inter := a.Clone()
		inter.Intersect(b)
		diff.Union(inter)
		if !diff.Equal(a) {
			t.Fatalf("partition law fails: a=%v b=%v", a, b)
		}
	}
}

func BenchmarkAddContains(b *testing.B) {
	s := New(1024)
	for i := 0; i < b.N; i++ {
		s.Add(i % 1024)
		if !s.Contains(i % 1024) {
			b.Fatal("missing")
		}
	}
}
