// Package bitset provides a dense, growable bitset used throughout the
// engine for tuple lineage (the CACQ ready/done bitmaps) and for sets of
// query identifiers returned by grouped filters.
//
// The zero value is an empty set ready for use. Bitsets are not safe for
// concurrent mutation; in the engine each bitset is owned by exactly one
// tuple or one module at a time, consistent with the Fjords ownership
// discipline (a tuple in a queue belongs to nobody until dequeued).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a growable set of non-negative integers backed by a []uint64.
type Set struct {
	words []uint64
}

// New returns a set with capacity for n bits preallocated.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set containing exactly the given indices.
func FromIndices(idx ...int) *Set {
	s := &Set{}
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	if word < cap(s.words) {
		// Reuse spare capacity, zeroing it explicitly: CopyFrom shrinks
		// len in place, so the region beyond len may hold stale words
		// from a previous generation (or the debug poison pattern).
		n := len(s.words)
		s.words = s.words[:word+1]
		for i := n; i <= word; i++ {
			s.words[i] = 0
		}
		return
	}
	w := make([]uint64, word+1)
	copy(w, s.words)
	s.words = w
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set contains no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements while keeping the allocation.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Poison fills every allocated word (including spare capacity) with a
// sentinel pattern. Debug aid for pooled owners: a stale alias to a
// recycled set observes "everything is a member" instead of silently
// sharing bits with the set's next life. The set must be Cleared before
// reuse; pool Get paths do this.
func (s *Set) Poison() {
	w := s.words[:cap(s.words)]
	for i := range w {
		w[i] = 0xDEADDEADDEADDEAD
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom replaces the contents of s with those of o, reusing storage.
func (s *Set) CopyFrom(o *Set) {
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
}

// Union adds every element of o to s.
func (s *Set) Union(o *Set) {
	s.grow(len(o.words) - 1)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersect removes from s every element not in o.
func (s *Set) Intersect(o *Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Subtract removes from s every element of o.
func (s *Set) Subtract(o *Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &^= o.words[i]
		}
	}
}

// IntersectsWith reports whether s and o share at least one element.
func (s *Set) IntersectsWith(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Next returns the smallest element >= i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	w := i / wordBits
	if w >= len(s.words) {
		return -1
	}
	cur := s.words[w] >> uint(i%wordBits)
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// ForEach calls fn for every element in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Indices returns the elements of the set in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the set as "{1, 5, 9}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
