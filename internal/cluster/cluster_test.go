package cluster

import (
	"fmt"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/flux"
)

// testLogf routes node logs through the test log so failures carry the
// cluster's own narrative.
func testLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// startCluster boots n workers and a coordinator over loopback TCP;
// setup hooks run on each worker before it starts listening.
func startCluster(t *testing.T, n int, cfg Config, setup ...func(*Worker)) (*Coordinator, []*Worker) {
	t.Helper()
	workers := make([]*Worker, n)
	for i := range workers {
		w := NewWorker()
		w.Logf = testLogf(t)
		for _, fn := range setup {
			fn(w)
		}
		addr, err := w.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d listen: %v", i, err)
		}
		workers[i] = w
		cfg.Workers = append(cfg.Workers, addr)
	}
	if cfg.Heartbeat == 0 {
		// Generous for loopback: the race detector's scheduling jitter
		// must never read as worker silence.
		cfg.Heartbeat = 200 * time.Millisecond
	}
	cfg.Logf = testLogf(t)
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return c, workers
}

// feed routes count synthetic observations and returns the reference
// fold — what a single process would compute from the same stream.
func feed(t *testing.T, c *Coordinator, count, keys int) flux.BucketState {
	t.Helper()
	want := flux.BucketState{}
	for i := 0; i < count; i++ {
		key := fmt.Sprintf("g%03d", i%keys)
		val := float64(i%17) - 8
		if err := c.Route(key, val); err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
		want.Fold(key, val)
	}
	return want
}

// assertParity fails unless the cluster's collected result matches the
// reference fold exactly.
func assertParity(t *testing.T, c *Coordinator, want flux.BucketState) {
	t.Helper()
	got, err := c.Collect(10 * time.Second)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("collected %d groups, want %d", len(got), len(want))
	}
	for _, k := range want.Keys() {
		g, w := got[k], want[k]
		if g == nil || g.Count != w.Count || g.Sum != w.Sum {
			t.Fatalf("group %q: got %+v, want %+v", k, g, w)
		}
	}
}

// A healthy 3-worker cluster must produce the exact single-process fold.
func TestClusterParity(t *testing.T) {
	c, workers := startCluster(t, 3, Config{})
	want := feed(t, c, 5000, 97)
	assertParity(t, c, want)
	s := c.Stats()
	if s.Routed != 5000 || s.Acked != 5000 {
		t.Fatalf("routed=%d acked=%d, want 5000/5000", s.Routed, s.Acked)
	}
	if s.Promotions != 0 || s.BucketsLost != 0 {
		t.Fatalf("healthy run recorded failures: %+v", s)
	}
	// Process pairs: every entry folds on a primary and a secondary.
	var folded int64
	for _, w := range workers {
		folded += w.Stats().Processed
	}
	if folded != 2*5000 {
		t.Fatalf("workers folded %d entries, want %d (pairs)", folded, 2*5000)
	}
}

// Killing a primary mid-stream must promote its secondaries within two
// heartbeat intervals and lose zero acked entries.
func TestFailoverZeroAckedLoss(t *testing.T) {
	hb := 400 * time.Millisecond
	// Ack delays keep a sliver of entries perpetually in flight, so the
	// promotion always has an unacked window to retransmit — the exact
	// ambiguity (applied but unacknowledged) dedup must absorb.
	delay := chaos.New(chaos.Config{Seed: 9, AckDelay: 0.3, AckDelayFor: time.Millisecond})
	c, workers := startCluster(t, 3, Config{Heartbeat: hb}, func(w *Worker) { w.SetChaos(delay) })
	want := feed(t, c, 3000, 61)
	if err := c.Barrier(10 * time.Second); err != nil {
		t.Fatalf("pre-kill barrier: %v", err)
	}

	killed := time.Now()
	workers[0].Close() // abrupt: listener gone, live connections severed

	// Keep routing through the entire failure window — detection,
	// promotion, repair — so entries are genuinely in flight when the
	// secondary takes over. The ping deadline is 1.25 heartbeats and the
	// monitor ticks every eighth of an interval, so detection must land
	// within 2 intervals of the last sign of life; allow scheduling
	// slack on the wall-clock check.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; c.Stats().Promotions == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no promotion after 10s")
		}
		key := fmt.Sprintf("g%03d", i%61)
		val := float64(i%17) - 8
		if err := c.Route(key, val); err != nil {
			t.Fatalf("route after kill: %v", err)
		}
		want.Fold(key, val)
		// Throttle to a realistic ingest rate: an unthrottled spin
		// builds a megabyte-deep backlog that turns the rest of the
		// test into a drain benchmark.
		time.Sleep(200 * time.Microsecond)
	}
	detected := time.Since(killed)
	s := c.Stats()
	if s.LastDetect > 2*hb {
		t.Fatalf("declared silence %v exceeds 2 heartbeats (%v)", s.LastDetect, 2*hb)
	}
	if detected > 2*hb+500*time.Millisecond {
		t.Fatalf("promotion took %v wall-clock", detected)
	}
	if s.BucketsLost != 0 {
		t.Fatalf("%d buckets lost despite replication", s.BucketsLost)
	}

	assertParity(t, c, want)
	// Retransmits at promotion only cover acks still in flight when the
	// primary died — racy by nature, so informational here. The
	// mandatory retransmit path is pinned by TestReconnectRetransmit.
	s = c.Stats()
	t.Logf("failover: %d retransmits, detection %v", s.Retransmits, s.LastDetect)
	if s.BucketsLost != 0 {
		t.Fatalf("%d buckets lost by the end of the scenario", s.BucketsLost)
	}
	// Replication must be repaired onto the survivors.
	repairDeadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		missing := 0
		for _, bm := range c.buckets {
			if bm.secondary < 0 {
				missing++
			}
		}
		c.mu.Unlock()
		if missing == 0 {
			break
		}
		if time.Now().After(repairDeadline) {
			t.Fatalf("%d buckets still unreplicated after 10s", missing)
		}
		time.Sleep(time.Millisecond)
	}
	// And the repaired pairs must still fold correctly.
	want2 := feed(t, c, 1000, 61)
	want2.Merge(want)
	assertParity(t, c, want2)
}

// A severed connection to a live worker is not a death: the monitor
// must reconnect and retransmit every entry the worker missed, and the
// worker's dedup must absorb the overlap — at-least-once delivery over
// an unreliable link, with no promotion involved.
func TestReconnectRetransmit(t *testing.T) {
	// A long heartbeat keeps the severed link from ever looking like a
	// node death, even under race-detector scheduling.
	c, workers := startCluster(t, 2, Config{Heartbeat: 500 * time.Millisecond})
	want := feed(t, c, 1000, 37)
	if err := c.Barrier(10 * time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	// Sever-then-route until a retransmission is observed: entries
	// routed before the monitor redials can only reach the worker via
	// the reconnect catch-up. (A single round could in principle race a
	// same-instant reconnect; every round folds into the reference, so
	// retrying keeps the accounting exact.)
	deadline := time.Now().Add(20 * time.Second)
	for round := 0; c.Stats().Retransmits == 0; round++ {
		if time.Now().After(deadline) {
			t.Fatal("no retransmit after 20s of severed connections")
		}
		workers[1].mu.Lock()
		for conn := range workers[1].conns {
			conn.Close()
		}
		workers[1].mu.Unlock()
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("r%02d-%03d", round%100, i%37)
			if err := c.Route(key, float64(i%13)); err != nil {
				t.Fatalf("route: %v", err)
			}
			want.Fold(key, float64(i%13))
		}
	}
	assertParity(t, c, want)
	s := c.Stats()
	if s.Promotions != 0 || s.BucketsLost != 0 {
		t.Fatalf("link loss escalated to node death: %+v", s)
	}
	var deduped int64
	for _, w := range workers {
		deduped += w.Stats().Deduped
	}
	t.Logf("reconnect: %d retransmits, %d deduped", s.Retransmits, deduped)
}

// With every worker dead, declareDead must terminate cleanly rather
// than wedge the coordinator.
func TestAllWorkersDead(t *testing.T) {
	c, workers := startCluster(t, 2, Config{Heartbeat: 100 * time.Millisecond})
	feed(t, c, 100, 7)
	for _, w := range workers {
		w.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		dead := 0
		for _, ns := range c.NodeStates() {
			if ns.State == "dead" {
				dead++
			}
		}
		if dead == len(workers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never declared dead")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Route("x", 1); err != nil {
		t.Fatalf("route into dead cluster should buffer/pend, got %v", err)
	}
}

// Connection-level chaos — seeded drops and delayed acks — must not
// change the answer: reconnects retransmit and dedup absorbs the
// overlap.
func TestDedupUnderConnChaos(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 42, ConnDrop: 0.002, AckDelay: 0.02, AckDelayFor: time.Millisecond})
	c, workers := startCluster(t, 3, Config{}, func(w *Worker) { w.SetChaos(inj) })
	want := feed(t, c, 4000, 83)
	assertParity(t, c, want)
	if inj.Stats().ConnDrops == 0 {
		t.Skip("seed produced no connection drops; parity trivially held")
	}
	if c.Stats().Retransmits == 0 {
		t.Fatal("connections dropped but nothing was retransmitted")
	}
	var deduped int64
	for _, w := range workers {
		deduped += w.Stats().Deduped
	}
	t.Logf("chaos: %d drops, %d retransmits, %d deduped",
		inj.Stats().ConnDrops, c.Stats().Retransmits, deduped)
}

// A half-open partition — the peer reads nothing but the socket stays
// writable — is invisible to writes; only the heartbeat deadline can
// catch it. The partitioned worker must be declared dead and its
// buckets promoted with no acked loss.
func TestHalfOpenPartitionDetected(t *testing.T) {
	c, workers := startCluster(t, 3, Config{})
	want := feed(t, c, 1000, 31)
	if err := c.Barrier(10 * time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	// Partition worker 0: every subsequent read on its connections
	// hangs, while writes keep succeeding.
	workers[0].SetChaos(chaos.New(chaos.Config{Seed: 1, HalfOpen: 1}))
	// Sever its current connection so the coordinator reconnects into
	// the faulty wrapper.
	workers[0].mu.Lock()
	for conn := range workers[0].conns {
		conn.Close()
	}
	workers[0].mu.Unlock()

	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("half-open partition never detected")
		}
		time.Sleep(time.Millisecond)
	}
	want2 := feed(t, c, 1000, 31)
	want2.Merge(want)
	assertParity(t, c, want2)
	if s := c.Stats(); s.BucketsLost != 0 {
		t.Fatalf("half-open failover lost %d buckets", s.BucketsLost)
	}
}

// MoveBucket is the load-balancing path: online handoff of a bucket's
// primary role mid-stream, with parity preserved.
func TestMoveBucketOnline(t *testing.T) {
	c, _ := startCluster(t, 3, Config{})
	want := feed(t, c, 2000, 53)
	c.mu.Lock()
	src := c.buckets[0].primary
	c.mu.Unlock()
	dst := (src + 1) % 3
	if err := c.MoveBucket(0, dst); err != nil {
		t.Fatalf("move: %v", err)
	}
	c.mu.Lock()
	got := c.buckets[0].primary
	c.mu.Unlock()
	if got != dst {
		t.Fatalf("bucket 0 primary = %d, want %d", got, dst)
	}
	if c.Stats().Moves != 1 {
		t.Fatalf("moves = %d, want 1", c.Stats().Moves)
	}
	want2 := feed(t, c, 2000, 53)
	want2.Merge(want)
	assertParity(t, c, want2)
}

// Out-of-order arrival (concurrent routers, retransmit racing the
// original) must dedup exactly: the floor only advances across a
// contiguous prefix, and every sequence folds exactly once.
func TestWorkerExactDedupOutOfOrder(t *testing.T) {
	w := NewWorker()
	e := []Entry{{Key: "k", Val: 1}}
	if got := w.applyData(0, 3, e); got != 0 {
		t.Fatalf("floor after gap arrival = %d, want 0", got)
	}
	// Retransmit of seq 3 while the gap is open: must not refold.
	if got := w.applyData(0, 3, e); got != 0 {
		t.Fatalf("floor after duplicate = %d, want 0", got)
	}
	if got := w.applyData(0, 1, e); got != 1 {
		t.Fatalf("floor after seq 1 = %d, want 1", got)
	}
	// Seq 2 closes the gap: floor jumps over the already-applied 3.
	if got := w.applyData(0, 2, e); got != 3 {
		t.Fatalf("floor after seq 2 = %d, want 3", got)
	}
	// A late duplicate of the whole prefix is skipped wholesale.
	if got := w.applyData(0, 1, []Entry{{Key: "k", Val: 1}, {Key: "k", Val: 1}, {Key: "k", Val: 1}}); got != 3 {
		t.Fatalf("floor after replay = %d, want 3", got)
	}
	st, floor := w.fetchState(0, false)
	if floor != 3 || st["k"] == nil || st["k"].Count != 3 || st["k"].Sum != 3 {
		t.Fatalf("state = %+v floor=%d, want count=3 sum=3 floor=3", st["k"], floor)
	}
	if s := w.Stats(); s.Processed != 3 || s.Deduped != 4 {
		t.Fatalf("processed=%d deduped=%d, want 3/4", s.Processed, s.Deduped)
	}
}

// The protocol codec must round-trip every message the exchange uses.
func TestProtocolRoundTrip(t *testing.T) {
	entries := []Entry{{Key: "alpha", Val: 1.5}, {Key: "", Val: -2}, {Key: "β", Val: 0}}
	frame := appendData(nil, 7, 41, entries)
	if frame[0] != mData {
		t.Fatalf("type = %d", frame[0])
	}
	d := &decoder{buf: frame[1:]}
	bucket, base, got := decodeData(d)
	if d.err != nil {
		t.Fatalf("decode: %v", d.err)
	}
	if bucket != 7 || base != 41 || len(got) != len(entries) {
		t.Fatalf("decoded bucket=%d base=%d n=%d", bucket, base, len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
	// Truncation at any cut must error, never panic or misread.
	for cut := 1; cut < len(frame); cut++ {
		d := &decoder{buf: frame[1:cut]}
		decodeData(d)
		if cut < len(frame) && d.err == nil {
			// The cut may fall exactly on a field boundary past the
			// last entry only at full length; anything shorter errors.
			t.Fatalf("truncated frame (cut %d) decoded cleanly", cut)
		}
	}
	st := flux.BucketState{}
	st.Fold("x", 2)
	sf := appendState(nil, mState, 3, 9, st)
	sd := &decoder{buf: sf[1:]}
	if b := sd.uvarint(); b != 3 {
		t.Fatalf("state bucket = %d", b)
	}
	if u := sd.varint(); u != 9 {
		t.Fatalf("state upTo = %d", u)
	}
	rt := sd.state()
	if sd.err != nil || rt["x"] == nil || rt["x"].Count != 1 || rt["x"].Sum != 2 {
		t.Fatalf("state round-trip: %+v err=%v", rt, sd.err)
	}
}
