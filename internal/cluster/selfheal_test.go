package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"telegraphcq/internal/chaos"
	"telegraphcq/internal/flux"
	"telegraphcq/internal/ingress"
)

// fastBackoff keeps supervised registration loops snappy in tests.
func fastBackoff() ingress.Backoff {
	return ingress.Backoff{Initial: 5 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 1}
}

// registerWorker boots a worker and registers it with the coordinator's
// membership registry under the given name.
func registerWorker(t *testing.T, c *Coordinator, name string) *Worker {
	t.Helper()
	w := NewWorker()
	w.Logf = testLogf(t)
	if _, err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("worker %s listen: %v", name, err)
	}
	w.StartRegister(c.RegistryAddr(), name, fastBackoff())
	t.Cleanup(func() { w.Close() })
	return w
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// upNodes counts workers the coordinator sees as live and connected.
func upNodes(c *Coordinator) int {
	up := 0
	for _, ns := range c.NodeStates() {
		if ns.State == "up" {
			up++
		}
	}
	return up
}

// fullyReplicated reports whether every bucket has a live primary and a
// live secondary and is not mid-movement — the precondition for killing
// any single node without losing one acked entry.
func fullyReplicated(c *Coordinator) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, bm := range c.buckets {
		if bm.paused || bm.primary < 0 || bm.secondary < 0 ||
			!c.nodeConnectedLocked(bm.primary) || !c.nodeConnectedLocked(bm.secondary) {
			return false
		}
	}
	return true
}

// A coordinator with only a registry — no static workers — must admit
// self-registering workers at runtime, adopt the orphaned buckets
// losslessly (including entries routed before any worker existed), and
// produce the exact single-process fold.
func TestDynamicJoinBootstrap(t *testing.T) {
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Heartbeat: 50 * time.Millisecond, Logf: testLogf(t)})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(c.Close)

	// Route before any worker exists: every bucket is orphaned, entries
	// pend, and the eventual adoption must replay them.
	want := feed(t, c, 500, 31)

	registerWorker(t, c, "node-a")
	registerWorker(t, c, "node-b")
	waitFor(t, 10*time.Second, "both workers admitted and connected", func() bool { return upNodes(c) == 2 })

	want2 := feed(t, c, 2000, 31)
	want2.Merge(want)
	assertParity(t, c, want2)

	s := c.Stats()
	if s.Joins < 2 {
		t.Fatalf("joins = %d, want ≥ 2", s.Joins)
	}
	if s.BucketsLost != 0 {
		t.Fatalf("lossless bootstrap lost %d buckets", s.BucketsLost)
	}
	// Process pairs must be re-established on the dynamic roster too.
	waitFor(t, 10*time.Second, "full replication", func() bool { return fullyReplicated(c) })
}

// A joiner added to a loaded static cluster must be filled by the
// joiner-rebalance policy: buckets move onto it until its share is
// within one of the per-node average, with parity preserved throughout.
func TestRebalanceOntoJoiner(t *testing.T) {
	c, _ := startCluster(t, 2, Config{Listen: "127.0.0.1:0", Heartbeat: 50 * time.Millisecond})
	want := feed(t, c, 2000, 53)

	registerWorker(t, c, "joiner")
	waitFor(t, 10*time.Second, "joiner connected", func() bool { return upNodes(c) == 3 })

	// 16 buckets over 3 nodes: average 5; the policy fills the joiner to
	// at least avg-1 = 4 primaries.
	waitFor(t, 20*time.Second, "buckets rebalanced onto joiner", func() bool {
		for _, ns := range c.NodeStates() {
			if ns.Name == "joiner" {
				return ns.Primaries >= 4
			}
		}
		return false
	})
	if s := c.Stats(); s.RebalanceMovesJoin == 0 {
		t.Fatalf("joiner filled without any join-rebalance moves: %+v", s)
	}

	want2 := feed(t, c, 2000, 53)
	want2.Merge(want)
	assertParity(t, c, want2)
}

// A crashed worker rejoining under its old name must get a fresh node id
// (death is terminal for an id, not for a worker) and be folded back
// into the shard map, with the failover itself losing nothing.
func TestRejoinAfterCrash(t *testing.T) {
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Heartbeat: 50 * time.Millisecond, Logf: testLogf(t)})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(c.Close)

	wa := registerWorker(t, c, "node-a")
	registerWorker(t, c, "node-b")
	waitFor(t, 10*time.Second, "initial pair connected", func() bool { return upNodes(c) == 2 })
	want := feed(t, c, 2000, 43)
	if err := c.Barrier(10 * time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	waitFor(t, 10*time.Second, "full replication before crash", func() bool { return fullyReplicated(c) })

	c.mu.Lock()
	oldID := c.byName["node-a"].id
	c.mu.Unlock()
	wa.Close() // crash: listener gone, registration loop stopped
	waitFor(t, 10*time.Second, "node-a declared dead", func() bool {
		for _, ns := range c.NodeStates() {
			if ns.ID == oldID && ns.State == "dead" {
				return true
			}
		}
		return false
	})

	// Rejoin under the same name: a brand-new process, empty state.
	registerWorker(t, c, "node-a")
	waitFor(t, 10*time.Second, "rejoined worker connected", func() bool { return upNodes(c) == 2 })
	rejoinedID := -1
	for _, ns := range c.NodeStates() {
		if ns.Name == "node-a" && ns.State == "up" {
			rejoinedID = ns.ID
		}
	}
	if rejoinedID == oldID || rejoinedID < 0 {
		t.Fatalf("rejoined node-a id %d (dead id %d): %+v", rejoinedID, oldID, c.NodeStates())
	}

	waitFor(t, 10*time.Second, "replication restored onto rejoiner", func() bool { return fullyReplicated(c) })
	want2 := feed(t, c, 2000, 43)
	want2.Merge(want)
	assertParity(t, c, want2)
	s := c.Stats()
	if s.BucketsLost != 0 {
		t.Fatalf("replicated crash lost %d buckets", s.BucketsLost)
	}
	if s.Promotions == 0 {
		t.Fatalf("crash of a loaded primary produced no promotions: %+v", s)
	}
	if s.Joins < 3 {
		t.Fatalf("joins = %d, want ≥ 3 (two initial + rejoin)", s.Joins)
	}
}

// A coordinator restarted from its journal must recover the epoch,
// roster, shard map, and ack floors, reconnect the fleet, and resume
// with zero acked-tuple loss — including after a torn tail write.
func TestCoordinatorJournalRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "coord.journal")
	c1, _ := startCluster(t, 2, Config{Journal: jpath, Heartbeat: 100 * time.Millisecond})
	if c1.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", c1.Epoch())
	}
	want := feed(t, c1, 3000, 61)
	if err := c1.Barrier(10 * time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	c1.Close()

	// Restart purely from the journal: no -workers, no registry needed —
	// the roster and addresses are recovered and re-dialed.
	c2, err := NewCoordinator(Config{Journal: jpath, Heartbeat: 100 * time.Millisecond, Logf: testLogf(t)})
	if err != nil {
		t.Fatalf("recovered coordinator: %v", err)
	}
	if c2.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", c2.Epoch())
	}
	if err := c2.Start(); err != nil {
		t.Fatalf("recovered start: %v", err)
	}
	waitFor(t, 10*time.Second, "fleet reconnected after recovery", func() bool { return upNodes(c2) == 2 })

	want2 := feed(t, c2, 2000, 61)
	want2.Merge(want)
	assertParity(t, c2, want2)
	if s := c2.Stats(); s.BucketsLost != 0 {
		t.Fatalf("recovery lost %d buckets", s.BucketsLost)
	}
	c2.Close()

	// Tear the tail: a crash mid-append leaves a torn record the next
	// replay must truncate away rather than refuse to start.
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03}); err != nil {
		t.Fatalf("tear tail: %v", err)
	}
	f.Close()

	c3, err := NewCoordinator(Config{Journal: jpath, Heartbeat: 100 * time.Millisecond, Logf: testLogf(t)})
	if err != nil {
		t.Fatalf("recovery from torn tail: %v", err)
	}
	if c3.Epoch() != 3 {
		t.Fatalf("post-torn epoch = %d, want 3", c3.Epoch())
	}
	if err := c3.Start(); err != nil {
		t.Fatalf("torn-tail start: %v", err)
	}
	t.Cleanup(c3.Close)
	waitFor(t, 10*time.Second, "fleet reconnected after torn-tail recovery", func() bool { return upNodes(c3) == 2 })
	want3 := feed(t, c3, 1000, 61)
	want3.Merge(want2)
	assertParity(t, c3, want3)
	if s := c3.Stats(); s.BucketsLost != 0 {
		t.Fatalf("torn-tail recovery lost %d buckets", s.BucketsLost)
	}
}

// Worker-side epoch fencing: a hello from an epoch older than the
// highest seen is refused, and a newer epoch seals every bucket's dedup
// floor past its out-of-order applied set — the old epoch's gaps will
// never be filled.
func TestWorkerEpochFencing(t *testing.T) {
	w := NewWorker()
	w.Logf = testLogf(t)
	e := []Entry{{Key: "k", Val: 1}}

	p1a, p1b := net.Pipe()
	defer p1a.Close()
	defer p1b.Close()
	floors, ok := w.greet(p1a, 0, 1)
	if !ok || len(floors) != 0 {
		t.Fatalf("epoch-1 greet: ok=%v floors=%v", ok, floors)
	}
	// Open a gap under epoch 1: seq 3 applied above floor 0.
	if got := w.applyData(0, 3, e); got != 0 {
		t.Fatalf("floor = %d, want 0", got)
	}

	// A newer coordinator greets: the gap seals (floor jumps to 3).
	p2a, p2b := net.Pipe()
	defer p2a.Close()
	defer p2b.Close()
	floors, ok = w.greet(p2a, 0, 2)
	if !ok || floors[0] != 3 {
		t.Fatalf("epoch-2 greet: ok=%v floors=%v, want sealed floor 3", ok, floors)
	}
	if w.MaxEpoch() != 2 {
		t.Fatalf("max epoch = %d, want 2", w.MaxEpoch())
	}

	// The stale coordinator comes back: refused outright.
	p3a, p3b := net.Pipe()
	defer p3a.Close()
	defer p3b.Close()
	if _, ok := w.greet(p3a, 0, 1); ok {
		t.Fatal("stale epoch-1 hello was accepted")
	}

	// Sealing must not have broken dedup: a retransmit of seq 3 is
	// skipped, the next fresh sequence folds.
	if got := w.applyData(0, 3, e); got != 3 {
		t.Fatalf("floor after sealed retransmit = %d, want 3", got)
	}
	if got := w.applyData(0, 4, e); got != 4 {
		t.Fatalf("floor after seq 4 = %d, want 4", got)
	}
	if s := w.Stats(); s.Processed != 2 || s.Deduped != 1 {
		t.Fatalf("processed=%d deduped=%d, want 2/1", s.Processed, s.Deduped)
	}
}

// Coordinator-side fencing: a join reporting a higher epoch than ours
// proves a newer coordinator owns the cluster — this one must refuse the
// join, fence itself, and stop routing, never split-brain the map.
func TestCoordinatorSelfFence(t *testing.T) {
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Heartbeat: 50 * time.Millisecond, Logf: testLogf(t)})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(c.Close)

	if _, _, err := c.admit("w1", "127.0.0.1:1", 0); err != nil {
		t.Fatalf("plain admit: %v", err)
	}
	if _, _, err := c.admit("w2", "127.0.0.1:2", 7); err == nil {
		t.Fatal("admit with a newer epoch succeeded; split-brain possible")
	}
	if !c.Fenced() {
		t.Fatal("coordinator not fenced after seeing a newer epoch")
	}
	if err := c.Route("x", 1); err == nil {
		t.Fatal("fenced coordinator still routes")
	}
	if err := c.Barrier(time.Second); err == nil {
		t.Fatal("fenced coordinator still passes barriers")
	}
}

// hotKeys returns distinct keys whose buckets all land on primaries of
// the given parity under the static b%2 assignment — a worst-case
// content skew aimed at one node.
func hotKeys(buckets, parity, n int) []string {
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("h%05d", i)
		if flux.BucketOf(k, buckets)%2 == parity {
			keys = append(keys, k)
		}
	}
	return keys
}

// A sustained hot node must trigger at least one automatic skew move —
// and only after the hysteresis streak, onto the cold node, with exact
// parity preserved under the concurrent traffic.
func TestSkewAutoMove(t *testing.T) {
	cfg := Config{
		Heartbeat: 40 * time.Millisecond,
		Balance:   BalanceConfig{Interval: 80 * time.Millisecond, After: 2, Cooldown: 2, MinRate: 50},
	}
	c, _ := startCluster(t, 2, cfg)

	// All traffic lands on node 0's primaries (even buckets).
	keys := hotKeys(16, 0, 24)
	want := flux.BucketState{}
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := keys[rng.Intn(len(keys))]
			v := float64(i%9) - 4
			if err := c.Route(k, v); err != nil {
				return
			}
			mu.Lock()
			want.Fold(k, v)
			mu.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	waitFor(t, 30*time.Second, "automatic skew move", func() bool {
		return c.Stats().RebalanceMovesSkew >= 1
	})
	close(stop)
	wg.Wait()

	if err := c.Barrier(10 * time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	mu.Lock()
	ref := want.Clone()
	mu.Unlock()
	assertParity(t, c, ref)

	// The move must actually shed load: node 1 now runs at least one of
	// the formerly node-0 primaries.
	moved := false
	c.mu.Lock()
	for b, bm := range c.buckets {
		if b%2 == 0 && bm.primary == 1 {
			moved = true
		}
	}
	c.mu.Unlock()
	if !moved {
		t.Fatal("skew move recorded but no even bucket runs on node 1")
	}
	s := c.Stats()
	if s.RebalanceChecks == 0 || s.RebalanceSkips == 0 {
		t.Fatalf("policy counters implausible (hysteresis never held): %+v", s)
	}
	t.Logf("skew: %d checks, %d moves, %d skips", s.RebalanceChecks, s.RebalanceMovesSkew, s.RebalanceSkips)
}

// A uniform workload must never trigger the balancer: hysteresis and the
// hot-ratio threshold make zero moves the steady state, so the policy
// cannot flap.
func TestUniformWorkloadNoFlap(t *testing.T) {
	cfg := Config{
		Heartbeat: 40 * time.Millisecond,
		Balance:   BalanceConfig{Interval: 80 * time.Millisecond, After: 2, Cooldown: 2, MinRate: 50},
	}
	c, _ := startCluster(t, 2, cfg)
	want := flux.BucketState{}
	// Route uniformly across many intervals so the policy gets plenty of
	// chances to misfire.
	for i := 0; i < 6000; i++ {
		k := fmt.Sprintf("u%03d", i%97)
		v := float64(i%11) - 5
		if err := c.Route(k, v); err != nil {
			t.Fatalf("route: %v", err)
		}
		want.Fold(k, v)
		if i%200 == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	assertParity(t, c, want)
	s := c.Stats()
	if s.RebalanceChecks == 0 {
		t.Fatal("balancer never ran")
	}
	if s.RebalanceMovesSkew != 0 || s.RebalanceMovesJoin != 0 || s.Moves != 0 {
		t.Fatalf("uniform workload triggered moves: %+v", s)
	}
}

// MoveBucket under concurrent traffic and seeded connection chaos —
// drops and delayed acks racing the pause→quiesce→install handoff —
// must keep the fold exact: every failure path either restores the
// source or hands the bucket to the healer.
func TestMoveBucketUnderChaos(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 11, ConnDrop: 0.0008, AckDelay: 0.05, AckDelayFor: 2 * time.Millisecond})
	c, _ := startCluster(t, 3, Config{Heartbeat: 100 * time.Millisecond}, func(w *Worker) { w.SetChaos(inj) })

	want := flux.BucketState{}
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("m%03d", i%71)
			v := float64(i%13) - 6
			if err := c.Route(k, v); err != nil {
				return
			}
			mu.Lock()
			want.Fold(k, v)
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Keep moving buckets around while the traffic and the chaos run;
	// individual moves may fail (that is the point), but at least two
	// must land.
	deadline := time.Now().Add(30 * time.Second)
	moved := 0
	for b := 0; moved < 4 && time.Now().Before(deadline); b = (b + 1) % 8 {
		c.mu.Lock()
		src := c.buckets[b].primary
		c.mu.Unlock()
		if src < 0 {
			continue // orphaned mid-heal; the healer owns it
		}
		dst := (src + 1) % 3
		if err := c.MoveBucket(b, dst); err != nil {
			t.Logf("move bucket %d → %d (tolerated under chaos): %v", b, dst, err)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		moved++
	}
	close(stop)
	wg.Wait()
	if moved < 2 {
		t.Fatalf("only %d moves landed under chaos", moved)
	}

	if err := c.Barrier(30 * time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	mu.Lock()
	ref := want.Clone()
	mu.Unlock()
	assertParity(t, c, ref)
	t.Logf("chaos moves: %d landed, stats %+v, faults %+v", moved, c.Stats(), inj.Stats())
}

// Close during an in-flight MoveBucket must abort the move promptly and
// must never leave the quiesced bucket paused — the regression the Stop
// path once had.
func TestCloseAbortsInflightMove(t *testing.T) {
	// Acks delayed far beyond the test horizon: quiesce cannot complete,
	// so the move is reliably in flight when Close lands.
	slow := chaos.New(chaos.Config{Seed: 3, AckDelay: 1, AckDelayFor: 30 * time.Second})
	c, _ := startCluster(t, 2, Config{Heartbeat: 100 * time.Millisecond}, func(w *Worker) { w.SetChaos(slow) })

	feed(t, c, 50, 7) // unacked traffic into every bucket
	c.mu.Lock()
	src := c.buckets[0].primary
	c.mu.Unlock()

	moveErr := make(chan error, 1)
	go func() { moveErr <- c.MoveBucket(0, (src+1)%2) }()
	waitFor(t, 5*time.Second, "bucket paused by the move", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.buckets[0].paused
	})

	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case err := <-moveErr:
		if err == nil {
			t.Fatal("in-flight move reported success during Close")
		}
		t.Logf("move aborted: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight move did not abort within 10s of Close")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged behind the aborted move")
	}
	c.mu.Lock()
	paused := c.buckets[0].paused
	c.mu.Unlock()
	if paused {
		t.Fatal("bucket left paused after aborted move")
	}
}

// Batched acks must not change the coordinator's floor math: every
// routed entry is credited exactly once, floors land exactly on the
// assigned high-water mark, and the codec round-trips.
func TestBatchedAckFloorMath(t *testing.T) {
	// Codec round trip.
	frame := appendAckBatch(nil, []int{3, 0, 12}, []int64{7, 41, 0})
	if frame[0] != mAckBatch {
		t.Fatalf("type = %d", frame[0])
	}
	d := &decoder{buf: frame[1:]}
	got := decodeFloorPairs(d)
	if d.err != nil || len(got) != 3 || got[3] != 7 || got[0] != 41 || got[12] != 0 {
		t.Fatalf("round trip = %v err=%v", got, d.err)
	}

	// End to end: acks arrive only as coalesced batches (the worker's
	// flusher), and after a barrier the credit must be exact — no entry
	// double-counted across skipped intermediate floors, none missed.
	c, _ := startCluster(t, 2, Config{Heartbeat: 100 * time.Millisecond})
	want := feed(t, c, 3000, 47)
	if err := c.Barrier(10 * time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	if s := c.Stats(); s.Acked != 3000 {
		t.Fatalf("acked = %d, want exactly 3000", s.Acked)
	}
	c.mu.Lock()
	for b, bm := range c.buckets {
		if bm.ackP != bm.nextSeq-1 {
			c.mu.Unlock()
			t.Fatalf("bucket %d floor %d != assigned %d after barrier", b, bm.ackP, bm.nextSeq-1)
		}
	}
	c.mu.Unlock()
	// A second wave must credit exactly once more.
	want2 := feed(t, c, 2000, 47)
	want2.Merge(want)
	if err := c.Barrier(10 * time.Second); err != nil {
		t.Fatalf("barrier 2: %v", err)
	}
	if s := c.Stats(); s.Acked != 5000 {
		t.Fatalf("acked = %d, want exactly 5000", s.Acked)
	}
	assertParity(t, c, want2)
}

// Thirty rounds of seeded join/leave storm: workers join and crash at
// random (chaos.Churn decides), every kill waits for full replication so
// zero acked loss is the contract, and the final fold must be exact.
func TestMembershipChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("membership churn soak skipped in -short")
	}
	inj := chaos.New(chaos.Config{Seed: 31, Churn: 0.5})
	c, err := NewCoordinator(Config{Listen: "127.0.0.1:0", Heartbeat: 50 * time.Millisecond, Logf: testLogf(t)})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(c.Close)

	want := flux.BucketState{}
	type member struct {
		name string
		w    *Worker
	}
	var live []member
	nextName := 0
	join := func() {
		name := fmt.Sprintf("n%02d", nextName)
		nextName++
		live = append(live, member{name: name, w: registerWorker(t, c, name)})
	}
	join()
	join()
	waitFor(t, 10*time.Second, "seed pair connected", func() bool { return upNodes(c) == 2 })

	joins, kills := 0, 0
	for round := 0; round < 30; round++ {
		if len(live) >= 2 && inj.Churn() {
			// Leave: wait until every bucket is replicated on live nodes,
			// then crash the oldest member — zero acked loss required.
			waitFor(t, 30*time.Second, fmt.Sprintf("round %d replication before kill", round), func() bool { return fullyReplicated(c) })
			victim := live[0]
			live = live[1:]
			victim.w.Close()
			kills++
			t.Logf("round %d: killed %s (%d live)", round, victim.name, len(live))
		} else {
			join()
			joins++
			t.Logf("round %d: joined %s (%d live)", round, live[len(live)-1].name, len(live))
		}
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("c%02d-%02d", round, i%17)
			v := float64(i%7) - 3
			if err := c.Route(k, v); err != nil {
				t.Fatalf("round %d route: %v", round, err)
			}
			want.Fold(k, v)
		}
	}
	// Settle: make sure at least two members survive the storm, let the
	// healer finish, and verify the fold.
	for len(live) < 2 {
		join()
		joins++
	}
	waitFor(t, 30*time.Second, "post-storm replication", func() bool { return fullyReplicated(c) })
	if err := c.Barrier(30 * time.Second); err != nil {
		t.Fatalf("final barrier: %v", err)
	}
	assertParity(t, c, want)
	s := c.Stats()
	if s.BucketsLost != 0 {
		t.Fatalf("churn storm lost %d buckets", s.BucketsLost)
	}
	if joins == 0 || kills == 0 {
		t.Fatalf("storm degenerate: %d joins, %d kills (seed drift?)", joins, kills)
	}
	if s.Joins < int64(joins) {
		t.Fatalf("coordinator admitted %d, storm joined %d", s.Joins, joins)
	}
	t.Logf("churn soak: %d joins, %d kills, stats %+v", joins, kills, s)
}
