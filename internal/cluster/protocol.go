// Package cluster is the networked Flux deployment (§2.4; Shah et al.):
// real tcqd processes in coordinator and worker roles connected by a
// length-prefixed TCP exchange. The coordinator owns the bucket→node
// shard map and routes partitioned consumer input; workers hold the
// movable flux.BucketState partitions. Robustness properties:
//
//   - At-least-once delivery with per-bucket sequence dedup: the
//     coordinator retains every routed entry until both replicas have
//     acknowledged it and retransmits after reconnects and failovers;
//     workers skip (but re-ack) any sequence at or below their applied
//     floor, so retries never double-count.
//   - Loosely coupled process pairs: every bucket has a primary and a
//     secondary fed the same input (the data frame is encoded once and
//     the same bytes written to both — the encode-once discipline of
//     internal/fanout applied to the exchange).
//   - Heartbeat failure detection with deadlines: a node that stays
//     silent past its deadline is declared dead and every bucket it
//     ran as primary is promoted to its secondary, losing zero acked
//     tuples; replication is then repaired onto a surviving node by
//     state movement.
//   - Online state movement: flux.BucketState serializes over the wire
//     (flux.AppendState/DecodeState) for both failover catch-up and
//     bucket handoff under skew.
//
// This file defines the wire protocol shared by both roles.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"telegraphcq/internal/flux"
)

// Message types. Every frame is u32 little-endian payload length, then
// a payload beginning with one of these bytes.
const (
	mHello    byte = iota + 1 // coordinator → worker: node id assignment
	mData                     // a batch of (key,val) entries for one bucket
	mAck                      // worker → coordinator: applied floor for one bucket
	mPing                     // coordinator → worker: heartbeat probe
	mPong                     // worker → coordinator: heartbeat reply + processed count
	mFetch                    // fetch one bucket's state (optionally dropping it)
	mState                    // reply to mFetch: serialized state + applied floor
	mInstall                  // install state + applied floor on a worker
	mInstalled                // reply to mInstall
	mCollect                  // fetch the merged state of a bucket list
	mCollectReply
	mJoin     // worker → coordinator registry: HELLO (name, exchange addr, max epoch seen)
	mAdmit    // coordinator → worker registry: ADMIT (node id, epoch)
	mFloors   // worker → coordinator: applied floors for every held bucket
	mAckBatch // worker → coordinator: coalesced applied floors for dirty buckets
)

// maxFrame bounds one frame; state frames dominate (a bucket's groups).
const maxFrame = 64 << 20

// Entry is one routed (key, value) observation — the flattened tuple
// the partitioned consumer folds.
type Entry struct {
	Key string
	Val float64
}

// wire is a framed duplex connection: reads are exclusive to one reader
// goroutine; writes are serialized by the mutex so routing, heartbeats,
// and control traffic can share the connection.
type wire struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex
	w  *bufio.Writer
}

func newWire(c net.Conn) *wire {
	return &wire{c: c, r: bufio.NewReaderSize(c, 64<<10), w: bufio.NewWriterSize(c, 64<<10)}
}

// writeFrame sends one already-encoded payload. The payload is only
// read, so the same buffer may be written to several wires (the
// encode-once path for process pairs).
func (w *wire) writeFrame(payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	w.wm.Lock()
	defer w.wm.Unlock()
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	return w.w.Flush()
}

// readFrame returns the next payload. The returned slice is owned by
// the caller.
func (w *wire) readFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("cluster: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(w.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (w *wire) close() { w.c.Close() }

// ---------------------------------------------------------------- encode

// appendHello opens an exchange connection: the worker learns its node
// id, the coordinator's epoch (workers fence anything older than the
// highest epoch they have seen), and the heartbeat interval that paces
// its ack coalescing.
func appendHello(dst []byte, nodeID int, epoch int64, heartbeatMs int64) []byte {
	dst = append(dst, mHello)
	dst = binary.AppendUvarint(dst, uint64(nodeID))
	dst = binary.AppendVarint(dst, epoch)
	return binary.AppendVarint(dst, heartbeatMs)
}

// appendJoin is the registry HELLO: a worker announces its stable name,
// the exchange address the coordinator should dial back, and the
// highest coordinator epoch it has ever been admitted under (so a new
// coordinator can detect that it is the stale one and self-fence).
func appendJoin(dst []byte, name, exchangeAddr string, maxEpoch int64) []byte {
	dst = append(dst, mJoin)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	dst = binary.AppendUvarint(dst, uint64(len(exchangeAddr)))
	dst = append(dst, exchangeAddr...)
	return binary.AppendVarint(dst, maxEpoch)
}

// appendAdmit is the registry ADMIT reply carrying the worker's node id
// and the admitting coordinator's epoch.
func appendAdmit(dst []byte, nodeID int, epoch int64) []byte {
	dst = append(dst, mAdmit)
	dst = binary.AppendUvarint(dst, uint64(nodeID))
	return binary.AppendVarint(dst, epoch)
}

// appendFloors reports every bucket floor a worker holds; sent once as
// the first frame after an exchange hello so a recovered coordinator
// can reconcile journaled floors against worker truth before any data
// or control traffic for those buckets.
func appendFloors(dst []byte, floors map[int]int64) []byte {
	dst = append(dst, mFloors)
	dst = binary.AppendUvarint(dst, uint64(len(floors)))
	for b, f := range floors {
		dst = binary.AppendUvarint(dst, uint64(b))
		dst = binary.AppendVarint(dst, f)
	}
	return dst
}

// appendAckBatch coalesces the applied floors of every bucket dirtied
// since the last flush into one frame.
func appendAckBatch(dst []byte, buckets []int, floors []int64) []byte {
	dst = append(dst, mAckBatch)
	dst = binary.AppendUvarint(dst, uint64(len(buckets)))
	for i, b := range buckets {
		dst = binary.AppendUvarint(dst, uint64(b))
		dst = binary.AppendVarint(dst, floors[i])
	}
	return dst
}

// decodeFloorPairs decodes the (bucket, floor) list shared by mFloors
// and mAckBatch.
func decodeFloorPairs(d *decoder) map[int]int64 {
	n := d.uvarint()
	if d.err != nil || n > maxFrame {
		return nil
	}
	m := make(map[int]int64, n)
	for i := uint64(0); i < n; i++ {
		b := int(d.uvarint())
		f := d.varint()
		if d.err != nil {
			return nil
		}
		m[b] = f
	}
	return m
}

// appendData encodes one bucket's entry batch with contiguous sequence
// numbers baseSeq..baseSeq+len(entries)-1. Encoded once per batch; the
// identical bytes go to the primary and the secondary.
func appendData(dst []byte, bucket int, baseSeq int64, entries []Entry) []byte {
	dst = append(dst, mData)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	dst = binary.AppendVarint(dst, baseSeq)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
		dst = append(dst, e.Key...)
		dst = binary.AppendUvarint(dst, math.Float64bits(e.Val))
	}
	return dst
}

func appendAck(dst []byte, bucket int, upTo int64) []byte {
	dst = append(dst, mAck)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	return binary.AppendVarint(dst, upTo)
}

func appendPing(dst []byte) []byte { return append(dst, mPing) }

func appendPong(dst []byte, processed int64) []byte {
	dst = append(dst, mPong)
	return binary.AppendVarint(dst, processed)
}

func appendFetch(dst []byte, bucket int, drop bool) []byte {
	dst = append(dst, mFetch)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	if drop {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendState(dst []byte, msg byte, bucket int, upTo int64, st flux.BucketState) []byte {
	dst = append(dst, msg)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	dst = binary.AppendVarint(dst, upTo)
	return flux.AppendState(dst, st)
}

func appendInstalled(dst []byte, bucket int) []byte {
	dst = append(dst, mInstalled)
	return binary.AppendUvarint(dst, uint64(bucket))
}

func appendCollect(dst []byte, buckets []int) []byte {
	dst = append(dst, mCollect)
	dst = binary.AppendUvarint(dst, uint64(len(buckets)))
	for _, b := range buckets {
		dst = binary.AppendUvarint(dst, uint64(b))
	}
	return dst
}

// ---------------------------------------------------------------- decode

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("cluster: truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("cluster: truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)) < n {
		d.err = fmt.Errorf("cluster: truncated bytes")
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) byteVal() byte {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *decoder) state() flux.BucketState {
	if d.err != nil {
		return nil
	}
	st, rest, err := flux.DecodeState(d.buf)
	if err != nil {
		d.err = err
		return nil
	}
	d.buf = rest
	return st
}

func decodeData(d *decoder) (bucket int, baseSeq int64, entries []Entry) {
	bucket = int(d.uvarint())
	baseSeq = d.varint()
	n := d.uvarint()
	if d.err != nil || n > maxFrame {
		return
	}
	entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		kl := d.uvarint()
		key := string(d.bytes(kl))
		val := math.Float64frombits(d.uvarint())
		if d.err != nil {
			return
		}
		entries = append(entries, Entry{Key: key, Val: val})
	}
	return
}
