// Package cluster is the networked Flux deployment (§2.4; Shah et al.):
// real tcqd processes in coordinator and worker roles connected by a
// length-prefixed TCP exchange. The coordinator owns the bucket→node
// shard map and routes partitioned consumer input; workers hold the
// movable flux.BucketState partitions. Robustness properties:
//
//   - At-least-once delivery with per-bucket sequence dedup: the
//     coordinator retains every routed entry until both replicas have
//     acknowledged it and retransmits after reconnects and failovers;
//     workers skip (but re-ack) any sequence at or below their applied
//     floor, so retries never double-count.
//   - Loosely coupled process pairs: every bucket has a primary and a
//     secondary fed the same input (the data frame is encoded once and
//     the same bytes written to both — the encode-once discipline of
//     internal/fanout applied to the exchange).
//   - Heartbeat failure detection with deadlines: a node that stays
//     silent past its deadline is declared dead and every bucket it
//     ran as primary is promoted to its secondary, losing zero acked
//     tuples; replication is then repaired onto a surviving node by
//     state movement.
//   - Online state movement: flux.BucketState serializes over the wire
//     (flux.AppendState/DecodeState) for both failover catch-up and
//     bucket handoff under skew.
//
// This file defines the wire protocol shared by both roles.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"telegraphcq/internal/flux"
)

// Message types. Every frame is u32 little-endian payload length, then
// a payload beginning with one of these bytes.
const (
	mHello    byte = iota + 1 // coordinator → worker: node id assignment
	mData                     // a batch of (key,val) entries for one bucket
	mAck                      // worker → coordinator: applied floor for one bucket
	mPing                     // coordinator → worker: heartbeat probe
	mPong                     // worker → coordinator: heartbeat reply + processed count
	mFetch                    // fetch one bucket's state (optionally dropping it)
	mState                    // reply to mFetch: serialized state + applied floor
	mInstall                  // install state + applied floor on a worker
	mInstalled                // reply to mInstall
	mCollect                  // fetch the merged state of a bucket list
	mCollectReply
)

// maxFrame bounds one frame; state frames dominate (a bucket's groups).
const maxFrame = 64 << 20

// Entry is one routed (key, value) observation — the flattened tuple
// the partitioned consumer folds.
type Entry struct {
	Key string
	Val float64
}

// wire is a framed duplex connection: reads are exclusive to one reader
// goroutine; writes are serialized by the mutex so routing, heartbeats,
// and control traffic can share the connection.
type wire struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex
	w  *bufio.Writer
}

func newWire(c net.Conn) *wire {
	return &wire{c: c, r: bufio.NewReaderSize(c, 64<<10), w: bufio.NewWriterSize(c, 64<<10)}
}

// writeFrame sends one already-encoded payload. The payload is only
// read, so the same buffer may be written to several wires (the
// encode-once path for process pairs).
func (w *wire) writeFrame(payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	w.wm.Lock()
	defer w.wm.Unlock()
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	return w.w.Flush()
}

// readFrame returns the next payload. The returned slice is owned by
// the caller.
func (w *wire) readFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("cluster: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(w.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (w *wire) close() { w.c.Close() }

// ---------------------------------------------------------------- encode

func appendHello(dst []byte, nodeID int) []byte {
	dst = append(dst, mHello)
	return binary.AppendUvarint(dst, uint64(nodeID))
}

// appendData encodes one bucket's entry batch with contiguous sequence
// numbers baseSeq..baseSeq+len(entries)-1. Encoded once per batch; the
// identical bytes go to the primary and the secondary.
func appendData(dst []byte, bucket int, baseSeq int64, entries []Entry) []byte {
	dst = append(dst, mData)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	dst = binary.AppendVarint(dst, baseSeq)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
		dst = append(dst, e.Key...)
		dst = binary.AppendUvarint(dst, math.Float64bits(e.Val))
	}
	return dst
}

func appendAck(dst []byte, bucket int, upTo int64) []byte {
	dst = append(dst, mAck)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	return binary.AppendVarint(dst, upTo)
}

func appendPing(dst []byte) []byte { return append(dst, mPing) }

func appendPong(dst []byte, processed int64) []byte {
	dst = append(dst, mPong)
	return binary.AppendVarint(dst, processed)
}

func appendFetch(dst []byte, bucket int, drop bool) []byte {
	dst = append(dst, mFetch)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	if drop {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendState(dst []byte, msg byte, bucket int, upTo int64, st flux.BucketState) []byte {
	dst = append(dst, msg)
	dst = binary.AppendUvarint(dst, uint64(bucket))
	dst = binary.AppendVarint(dst, upTo)
	return flux.AppendState(dst, st)
}

func appendInstalled(dst []byte, bucket int) []byte {
	dst = append(dst, mInstalled)
	return binary.AppendUvarint(dst, uint64(bucket))
}

func appendCollect(dst []byte, buckets []int) []byte {
	dst = append(dst, mCollect)
	dst = binary.AppendUvarint(dst, uint64(len(buckets)))
	for _, b := range buckets {
		dst = binary.AppendUvarint(dst, uint64(b))
	}
	return dst
}

// ---------------------------------------------------------------- decode

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("cluster: truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("cluster: truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)) < n {
		d.err = fmt.Errorf("cluster: truncated bytes")
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) byteVal() byte {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

func (d *decoder) state() flux.BucketState {
	if d.err != nil {
		return nil
	}
	st, rest, err := flux.DecodeState(d.buf)
	if err != nil {
		d.err = err
		return nil
	}
	d.buf = rest
	return st
}

func decodeData(d *decoder) (bucket int, baseSeq int64, entries []Entry) {
	bucket = int(d.uvarint())
	baseSeq = d.varint()
	n := d.uvarint()
	if d.err != nil || n > maxFrame {
		return
	}
	entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		kl := d.uvarint()
		key := string(d.bytes(kl))
		val := math.Float64frombits(d.uvarint())
		if d.err != nil {
			return
		}
		entries = append(entries, Entry{Key: key, Val: val})
	}
	return
}
